// The uncertain stream element: a d-dimensional value, an occurrence
// probability, an arrival sequence number kappa (the paper's element
// position/label), and an optional wall-clock timestamp used by time-based
// sliding windows (Section VI).

#ifndef PSKY_STREAM_ELEMENT_H_
#define PSKY_STREAM_ELEMENT_H_

#include <cstdint>

#include "geom/point.h"

namespace psky {

/// One uncertain stream element.
struct UncertainElement {
  /// Position in value space; dominance is minimization per dimension.
  Point pos;

  /// Occurrence probability, in (0, 1].
  double prob = 1.0;

  /// Arrival index kappa(a): the element arrived kappa-th in the stream
  /// (0-based here). Strictly increasing along the stream.
  uint64_t seq = 0;

  /// Arrival timestamp (seconds); only meaningful for time-based windows.
  double time = 0.0;
};

}  // namespace psky

#endif  // PSKY_STREAM_ELEMENT_H_
