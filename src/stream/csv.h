// CSV ingestion of uncertain stream elements.
//
// Line format (whitespace tolerated, '#' comments and blank lines
// skipped):
//
//   v1,v2,...,vd,prob[,timestamp]
//
// i.e. `dims` coordinate values, the occurrence probability in (0, 1],
// and an optional non-decreasing timestamp in seconds for time-based
// windows. Sequence numbers are assigned by the reader in arrival order.
//
// Malformed input is handled per a configurable policy: fail fast
// (default, for pipelines that must not silently drop data), skip bad
// lines under a consecutive-error budget, or additionally salvage lines
// whose only defect is an out-of-range probability by clamping it.

#ifndef PSKY_STREAM_CSV_H_
#define PSKY_STREAM_CSV_H_

#include <istream>
#include <optional>
#include <string>
#include <string_view>

#include "stream/element.h"

namespace psky {

/// Result of parsing one CSV line.
struct CsvParseResult {
  bool ok = false;
  bool skip = false;  ///< blank or comment line: not an error, no element
  UncertainElement element;
  std::string error;  ///< set when !ok
  /// True when the *only* defect is a finite probability outside (0, 1]:
  /// `element` is otherwise fully populated (with the raw probability), so
  /// a clamping policy can salvage the line.
  bool prob_out_of_range = false;
};

/// Parses one line into an element with `dims` coordinates. `seq` is the
/// sequence number to assign. Does not clamp the probability (operators
/// clamp on ingestion) but rejects values outside (0, 1].
CsvParseResult ParseElementCsv(std::string_view line, int dims, uint64_t seq);

/// What CsvElementReader does with a malformed line.
enum class BadInputPolicy {
  kFail,   ///< stop the stream; the reader reports the error (default)
  kSkip,   ///< drop the line and keep a counter, within an error budget
  kClamp,  ///< like kSkip, but salvage out-of-range probabilities by
           ///< clamping them into (0, 1]
};

struct CsvReaderOptions {
  BadInputPolicy policy = BadInputPolicy::kFail;
  /// Under kSkip/kClamp, abort the stream anyway after this many
  /// *consecutive* unusable lines — a stream that is all garbage is a
  /// configuration error, not noise.
  uint64_t max_consecutive_errors = 100;
  /// Raw input lines to read and discard before parsing (checkpoint
  /// resume: re-opened files fast-forward to the recorded position).
  uint64_t start_line = 0;
  /// First sequence number to assign (checkpoint resume).
  uint64_t start_seq = 0;
};

/// Streams elements from `in`, assigning consecutive sequence numbers.
///
/// Next() yields elements until end of input or a fatal error; after it
/// returns nullopt, check ok() — false means the stream stopped on
/// malformed input (fail-fast policy, or the consecutive-error budget was
/// exhausted) and error() carries a line-numbered diagnostic.
class CsvElementReader {
 public:
  CsvElementReader(std::istream* in, int dims, CsvReaderOptions options = {})
      : in_(in), dims_(dims), options_(options), next_seq_(options.start_seq) {}

  /// Reads the next element; nullopt at end of input or fatal error.
  std::optional<UncertainElement> Next();

  /// False when the stream stopped because of malformed input.
  bool ok() const { return error_.empty(); }
  /// Line-numbered diagnostic for the fatal error ("" while ok()).
  const std::string& error() const { return error_; }
  /// 1-based input line of the fatal error (0 while ok()).
  uint64_t error_line() const { return error_line_; }

  uint64_t lines_read() const { return line_no_; }
  uint64_t next_seq() const { return next_seq_; }
  /// Malformed lines dropped under kSkip/kClamp.
  uint64_t skipped_lines() const { return skipped_lines_; }
  /// Lines salvaged by clamping an out-of-range probability (kClamp).
  uint64_t probs_clamped() const { return probs_clamped_; }

 private:
  std::istream* in_;
  int dims_;
  CsvReaderOptions options_;
  uint64_t line_no_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t skipped_lines_ = 0;
  uint64_t probs_clamped_ = 0;
  uint64_t consecutive_errors_ = 0;
  bool skipped_start_lines_ = false;
  std::string error_;
  uint64_t error_line_ = 0;
};

}  // namespace psky

#endif  // PSKY_STREAM_CSV_H_
