// CSV ingestion of uncertain stream elements.
//
// Line format (whitespace tolerated, '#' comments and blank lines
// skipped):
//
//   v1,v2,...,vd,prob[,timestamp]
//
// i.e. `dims` coordinate values, the occurrence probability in (0, 1],
// and an optional non-decreasing timestamp in seconds for time-based
// windows. Sequence numbers are assigned by the reader in arrival order.

#ifndef PSKY_STREAM_CSV_H_
#define PSKY_STREAM_CSV_H_

#include <istream>
#include <optional>
#include <string>
#include <string_view>

#include "stream/element.h"

namespace psky {

/// Result of parsing one CSV line.
struct CsvParseResult {
  bool ok = false;
  bool skip = false;  ///< blank or comment line: not an error, no element
  UncertainElement element;
  std::string error;  ///< set when !ok
};

/// Parses one line into an element with `dims` coordinates. `seq` is the
/// sequence number to assign. Does not clamp the probability (operators
/// clamp on ingestion) but rejects values outside (0, 1].
CsvParseResult ParseElementCsv(std::string_view line, int dims, uint64_t seq);

/// Streams elements from `in`, assigning consecutive sequence numbers.
class CsvElementReader {
 public:
  CsvElementReader(std::istream* in, int dims) : in_(in), dims_(dims) {}

  /// Reads the next element; nullopt at end of input. Aborts the program
  /// with a line-numbered message on malformed input (stream tools treat
  /// bad input as fatal).
  std::optional<UncertainElement> Next();

  uint64_t lines_read() const { return line_no_; }

 private:
  std::istream* in_;
  int dims_;
  uint64_t line_no_ = 0;
  uint64_t next_seq_ = 0;
};

}  // namespace psky

#endif  // PSKY_STREAM_CSV_H_
