// Synthetic NYSE-style stock transaction stream.
//
// The paper's real dataset (2M Dell Inc. transactions, Dec 2000–May 2001,
// attributes = average price per share and total volume) is proprietary.
// This generator is the documented substitution (DESIGN.md §2.2): a
// geometric random-walk price with intraday mean reversion and log-normal
// volumes with a heavy burst tail, reproducing the dataset's qualitative
// structure — a strongly auto-correlated 2-d stream whose skyline is
// "cheap and large" deals.
//
// Dominance is minimization, so the emitted element is
// (price, -volume): a deal dominates another iff it is cheaper AND larger.
// Occurrence probabilities are uniform in (0,1], exactly as the paper
// assigns them to the real trace.

#ifndef PSKY_STREAM_STOCK_H_
#define PSKY_STREAM_STOCK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/random.h"
#include "stream/element.h"
#include "stream/prob_model.h"

namespace psky {

/// Configuration of the synthetic stock stream.
struct StockConfig {
  uint64_t seed = 7;
  /// Starting price in dollars (Dell traded around $25 in Dec 2000).
  double initial_price = 25.0;
  /// Per-trade log-price volatility.
  double volatility = 0.0008;
  /// Mean-reversion strength toward the slow-moving daily anchor.
  double mean_reversion = 0.001;
  /// Trades per simulated day; controls anchor drift cadence.
  int trades_per_day = 15000;
  /// Median trade size in shares.
  double median_volume = 400.0;
  /// Log-normal sigma of trade sizes.
  double volume_sigma = 1.2;
  /// Probability that a trade is a block-trade burst.
  double burst_prob = 0.01;
  /// Multiplier applied to burst trade volumes.
  double burst_scale = 25.0;
  /// Occurrence-probability model (paper: uniform).
  ProbModelConfig prob;
  /// Mean arrival rate (trades/second) for timestamps.
  double arrival_rate = 1000.0;
};

/// Produces the synthetic 2-d (price, -volume) uncertain stock stream.
class StockStreamGenerator {
 public:
  explicit StockStreamGenerator(const StockConfig& config);

  /// Next transaction as an uncertain element.
  UncertainElement Next();

  /// Next `n` transactions.
  std::vector<UncertainElement> Take(size_t n);

  /// Current simulated price (for examples / display).
  double current_price() const { return price_; }

 private:
  StockConfig config_;
  ProbModel prob_model_;
  Rng rng_;
  Rng prob_rng_;
  Rng time_rng_;
  double price_;
  double anchor_;
  int64_t trades_today_ = 0;
  uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

}  // namespace psky

#endif  // PSKY_STREAM_STOCK_H_
