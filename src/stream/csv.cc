#include "stream/csv.h"

#include <charconv>
#include <cmath>
#include <vector>

namespace psky {

namespace {

// Probabilities salvaged by BadInputPolicy::kClamp land in (0, 1]; the
// lower bound matches the operators' kMinElementProb so a "never occurs"
// input stays representable.
constexpr double kClampFloor = 1e-12;

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view field, double* out) {
  field = Trim(field);
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

CsvParseResult ParseElementCsv(std::string_view line, int dims,
                               uint64_t seq) {
  CsvParseResult result;
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    result.skip = true;
    return result;
  }

  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = trimmed.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(trimmed.substr(start));
      break;
    }
    fields.push_back(trimmed.substr(start, comma - start));
    start = comma + 1;
  }

  const size_t want_min = static_cast<size_t>(dims) + 1;
  if (fields.size() != want_min && fields.size() != want_min + 1) {
    result.error = "expected " + std::to_string(want_min) + " or " +
                   std::to_string(want_min + 1) + " fields, got " +
                   std::to_string(fields.size());
    return result;
  }

  UncertainElement e;
  e.pos = Point(dims);
  for (int i = 0; i < dims; ++i) {
    if (!ParseDouble(fields[static_cast<size_t>(i)], &e.pos[i]) ||
        !std::isfinite(e.pos[i])) {
      result.error =
          "bad coordinate in field " + std::to_string(i + 1);
      return result;
    }
  }
  bool bad_prob = false;
  if (!ParseDouble(fields[static_cast<size_t>(dims)], &e.prob)) {
    result.error = "probability must be a number in (0, 1]";
    return result;
  }
  if (!std::isfinite(e.prob)) {
    result.error = "probability must be finite";
    return result;
  }
  if (e.prob <= 0.0 || e.prob > 1.0) {
    // Keep parsing: when the rest of the line is sound this stays
    // salvageable under a clamping policy.
    bad_prob = true;
  }
  if (fields.size() == want_min + 1) {
    if (!ParseDouble(fields[want_min], &e.time) || !std::isfinite(e.time)) {
      result.error = "bad timestamp";
      return result;
    }
  }
  e.seq = seq;
  result.element = e;
  if (bad_prob) {
    result.error = "probability must be a number in (0, 1]";
    result.prob_out_of_range = true;
    return result;
  }
  result.ok = true;
  return result;
}

std::optional<UncertainElement> CsvElementReader::Next() {
  if (!skipped_start_lines_) {
    skipped_start_lines_ = true;
    std::string discard;
    while (line_no_ < options_.start_line && std::getline(*in_, discard)) {
      ++line_no_;
    }
  }
  if (!error_.empty()) return std::nullopt;

  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    CsvParseResult parsed = ParseElementCsv(line, dims_, next_seq_);
    if (parsed.skip) continue;
    if (parsed.prob_out_of_range &&
        options_.policy == BadInputPolicy::kClamp) {
      parsed.element.prob = parsed.element.prob <= 0.0 ? kClampFloor : 1.0;
      ++probs_clamped_;
      consecutive_errors_ = 0;
      ++next_seq_;
      return parsed.element;
    }
    if (!parsed.ok) {
      if (options_.policy == BadInputPolicy::kFail) {
        error_ = "line " + std::to_string(line_no_) + ": " + parsed.error;
        error_line_ = line_no_;
        return std::nullopt;
      }
      ++skipped_lines_;
      if (++consecutive_errors_ > options_.max_consecutive_errors) {
        error_ = "line " + std::to_string(line_no_) + ": " +
                 std::to_string(consecutive_errors_) +
                 " consecutive malformed lines (budget " +
                 std::to_string(options_.max_consecutive_errors) +
                 "), last: " + parsed.error;
        error_line_ = line_no_;
        return std::nullopt;
      }
      continue;
    }
    consecutive_errors_ = 0;
    ++next_seq_;
    return parsed.element;
  }
  return std::nullopt;
}

}  // namespace psky
