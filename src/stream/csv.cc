#include "stream/csv.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "base/check.h"

namespace psky {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool ParseDouble(std::string_view field, double* out) {
  field = Trim(field);
  if (field.empty()) return false;
  const char* begin = field.data();
  const char* end = begin + field.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

}  // namespace

CsvParseResult ParseElementCsv(std::string_view line, int dims,
                               uint64_t seq) {
  CsvParseResult result;
  const std::string_view trimmed = Trim(line);
  if (trimmed.empty() || trimmed.front() == '#') {
    result.skip = true;
    return result;
  }

  std::vector<std::string_view> fields;
  size_t start = 0;
  while (true) {
    const size_t comma = trimmed.find(',', start);
    if (comma == std::string_view::npos) {
      fields.push_back(trimmed.substr(start));
      break;
    }
    fields.push_back(trimmed.substr(start, comma - start));
    start = comma + 1;
  }

  const size_t want_min = static_cast<size_t>(dims) + 1;
  if (fields.size() != want_min && fields.size() != want_min + 1) {
    result.error = "expected " + std::to_string(want_min) + " or " +
                   std::to_string(want_min + 1) + " fields, got " +
                   std::to_string(fields.size());
    return result;
  }

  UncertainElement e;
  e.pos = Point(dims);
  for (int i = 0; i < dims; ++i) {
    if (!ParseDouble(fields[static_cast<size_t>(i)], &e.pos[i])) {
      result.error =
          "bad coordinate in field " + std::to_string(i + 1);
      return result;
    }
  }
  if (!ParseDouble(fields[static_cast<size_t>(dims)], &e.prob) ||
      e.prob <= 0.0 || e.prob > 1.0) {
    result.error = "probability must be a number in (0, 1]";
    return result;
  }
  if (fields.size() == want_min + 1) {
    if (!ParseDouble(fields[want_min], &e.time)) {
      result.error = "bad timestamp";
      return result;
    }
  }
  e.seq = seq;
  result.ok = true;
  result.element = e;
  return result;
}

std::optional<UncertainElement> CsvElementReader::Next() {
  std::string line;
  while (std::getline(*in_, line)) {
    ++line_no_;
    CsvParseResult parsed = ParseElementCsv(line, dims_, next_seq_);
    if (parsed.skip) continue;
    if (!parsed.ok) {
      std::fprintf(stderr, "csv: line %llu: %s\n",
                   static_cast<unsigned long long>(line_no_),
                   parsed.error.c_str());
      std::exit(2);
    }
    ++next_seq_;
    return parsed.element;
  }
  return std::nullopt;
}

}  // namespace psky
