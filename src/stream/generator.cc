#include "stream/generator.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace psky {

namespace {

// Samples a value in [0,1] from a normal peaked at 0.5, by resampling.
double PeakedUnit(Rng& rng, double stddev) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const double v = rng.NextGaussian(0.5, stddev);
    if (v >= 0.0 && v <= 1.0) return v;
  }
  return std::clamp(rng.NextGaussian(0.5, stddev), 0.0, 1.0);
}

}  // namespace

StreamGenerator::StreamGenerator(const StreamConfig& config)
    : config_(config),
      prob_model_(config.prob),
      pos_rng_(config.seed),
      prob_rng_(config.seed ^ 0xA5A5A5A5DEADBEEFULL),
      time_rng_(config.seed ^ 0x0F0F0F0F12345678ULL) {
  PSKY_CHECK_MSG(config.dims >= 1 && config.dims <= kMaxDims,
                 "dims out of range");
  PSKY_CHECK_MSG(config.arrival_rate > 0.0, "arrival rate must be positive");
}

Point StreamGenerator::NextPosition() {
  const int d = config_.dims;
  Point p(d);
  switch (config_.spatial) {
    case SpatialDistribution::kIndependent: {
      for (int i = 0; i < d; ++i) p[i] = pos_rng_.NextDouble();
      break;
    }
    case SpatialDistribution::kCorrelated: {
      // All dimensions hug a common diagonal value c with small jitter.
      const double c = PeakedUnit(pos_rng_, 0.25);
      for (int i = 0; i < d; ++i) {
        double v;
        for (int attempt = 0;; ++attempt) {
          v = pos_rng_.NextGaussian(c, 0.05);
          if ((v >= 0.0 && v <= 1.0) || attempt >= 32) break;
        }
        p[i] = std::clamp(v, 0.0, 1.0);
      }
      break;
    }
    case SpatialDistribution::kAntiCorrelated: {
      // Börzsönyi-style: pick a plane sum(x) ≈ d*c with c peaked at 0.5,
      // start on the diagonal, then redistribute mass between random
      // coordinate pairs. This keeps the sum constant, producing points
      // scattered along the anti-diagonal where no point dominates many
      // others — the hardest case for skyline maintenance.
      const double c = PeakedUnit(pos_rng_, 0.12);
      for (int i = 0; i < d; ++i) p[i] = c;
      const int transfers = 2 * d;
      for (int t = 0; t < transfers; ++t) {
        const int i = static_cast<int>(pos_rng_.NextBounded(d));
        int j = static_cast<int>(pos_rng_.NextBounded(d));
        if (i == j) j = (j + 1) % d;
        // Largest mass we can move from j to i without leaving [0,1].
        const double room = std::min(1.0 - p[i], p[j]);
        const double room_back = std::min(1.0 - p[j], p[i]);
        const double delta = pos_rng_.NextDouble(-room_back, room);
        p[i] += delta;
        p[j] -= delta;
      }
      for (int i = 0; i < d; ++i) p[i] = std::clamp(p[i], 0.0, 1.0);
      break;
    }
  }
  return p;
}

UncertainElement StreamGenerator::Next() {
  UncertainElement e;
  e.pos = NextPosition();
  e.prob = prob_model_.Sample(prob_rng_);
  e.seq = next_seq_++;
  now_ += time_rng_.NextExponential(config_.arrival_rate);
  e.time = now_;
  return e;
}

std::vector<UncertainElement> StreamGenerator::Take(size_t n) {
  std::vector<UncertainElement> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

const char* SpatialDistributionName(SpatialDistribution d) {
  switch (d) {
    case SpatialDistribution::kIndependent:
      return "inde";
    case SpatialDistribution::kCorrelated:
      return "corr";
    case SpatialDistribution::kAntiCorrelated:
      return "anti";
  }
  return "?";
}

}  // namespace psky
