#include "stream/window.h"

#include "base/check.h"

namespace psky {

CountWindow::CountWindow(size_t capacity) : capacity_(capacity) {
  PSKY_CHECK_MSG(capacity > 0, "window capacity must be positive");
}

std::optional<UncertainElement> CountWindow::Push(const UncertainElement& e) {
  std::optional<UncertainElement> expired;
  if (buffer_.size() == capacity_) {
    expired = buffer_.front();
    buffer_.pop_front();
  }
  buffer_.push_back(e);
  return expired;
}

std::vector<UncertainElement> CountWindow::Snapshot() const {
  return {buffer_.begin(), buffer_.end()};
}

TimeWindow::TimeWindow(double span_seconds) : span_(span_seconds) {
  PSKY_CHECK_MSG(span_seconds > 0.0, "window span must be positive");
}

void TimeWindow::Push(const UncertainElement& e,
                      std::vector<UncertainElement>* expired) {
  PSKY_DCHECK(buffer_.empty() || buffer_.back().time <= e.time);
  const double cutoff = e.time - span_;
  while (!buffer_.empty() && buffer_.front().time <= cutoff) {
    if (expired != nullptr) expired->push_back(buffer_.front());
    buffer_.pop_front();
  }
  buffer_.push_back(e);
}

std::vector<UncertainElement> TimeWindow::Snapshot() const {
  return {buffer_.begin(), buffer_.end()};
}

}  // namespace psky
