#include "stream/window.h"

#include <limits>

#include "base/check.h"

namespace psky {

CountWindow::CountWindow(size_t capacity) : capacity_(capacity) {
  PSKY_CHECK_MSG(capacity > 0, "window capacity must be positive");
}

std::optional<UncertainElement> CountWindow::Push(const UncertainElement& e) {
  std::optional<UncertainElement> expired;
  if (buffer_.size() == capacity_) {
    expired = buffer_.front();
    buffer_.pop_front();
  }
  buffer_.push_back(e);
  return expired;
}

UncertainElement CountWindow::PushRotate(const UncertainElement& e) {
  PSKY_DCHECK(buffer_.size() == capacity_);
  UncertainElement expired = buffer_.front();
  buffer_.pop_front();
  buffer_.push_back(e);
  return expired;
}

std::vector<UncertainElement> CountWindow::Snapshot() const {
  return {buffer_.begin(), buffer_.end()};
}

TimeWindow::TimeWindow(double span_seconds, TimestampPolicy policy)
    : span_(span_seconds),
      policy_(policy),
      watermark_(-std::numeric_limits<double>::infinity()) {
  PSKY_CHECK_MSG(span_seconds > 0.0, "window span must be positive");
}

bool TimeWindow::TryPush(UncertainElement* e,
                         std::vector<UncertainElement>* expired) {
  if (e->time < watermark_) {
    if (policy_ == TimestampPolicy::kReject) {
      ++rejected_;
      return false;
    }
    e->time = watermark_;
    ++clamped_;
  }
  watermark_ = e->time;
  const double cutoff = e->time - span_;
  while (!buffer_.empty() && buffer_.front().time <= cutoff) {
    if (expired != nullptr) expired->push_back(buffer_.front());
    buffer_.pop_front();
  }
  buffer_.push_back(*e);
  return true;
}

void TimeWindow::Push(const UncertainElement& e,
                      std::vector<UncertainElement>* expired) {
  UncertainElement copy = e;
  PSKY_CHECK_MSG(TryPush(&copy, expired),
                 "out-of-order timestamp pushed through the in-order "
                 "TimeWindow::Push interface");
}

std::vector<UncertainElement> TimeWindow::Snapshot() const {
  return {buffer_.begin(), buffer_.end()};
}

}  // namespace psky
