// Occurrence-probability models (paper Section V):
//
//   * uniform:  P(a) ~ U(0, 1]
//   * normal:   P(a) ~ N(P_mu, S_d = 0.3), truncated to (0, 1]
//
// Truncation uses resampling so the realized distribution is the genuine
// truncated normal rather than a clamped one with probability mass spikes
// at the boundaries.

#ifndef PSKY_STREAM_PROB_MODEL_H_
#define PSKY_STREAM_PROB_MODEL_H_

#include "base/random.h"

namespace psky {

/// Which occurrence-probability distribution a stream uses.
enum class ProbDistribution {
  kUniform,  ///< U(0, 1]
  kNormal,   ///< N(mean, stddev) truncated to (0, 1]
};

/// Configuration of an occurrence-probability model.
struct ProbModelConfig {
  ProbDistribution distribution = ProbDistribution::kUniform;
  /// Mean P_mu for the normal model (paper varies 0.1 .. 0.9).
  double mean = 0.5;
  /// Standard deviation S_d; the paper fixes 0.3.
  double stddev = 0.3;
};

/// Draws occurrence probabilities according to a ProbModelConfig.
class ProbModel {
 public:
  explicit ProbModel(const ProbModelConfig& config) : config_(config) {}

  /// Samples one probability in (0, 1].
  double Sample(Rng& rng) const;

  const ProbModelConfig& config() const { return config_; }

 private:
  ProbModelConfig config_;
};

}  // namespace psky

#endif  // PSKY_STREAM_PROB_MODEL_H_
