#include "stream/prob_model.h"

#include "base/check.h"

namespace psky {

namespace {
// Smallest probability we will ever emit; P(a) must be strictly positive.
constexpr double kMinProb = 1e-9;
}  // namespace

double ProbModel::Sample(Rng& rng) const {
  switch (config_.distribution) {
    case ProbDistribution::kUniform: {
      // U(0, 1]: flip U[0,1) around so 1.0 is attainable and 0.0 is not.
      return 1.0 - rng.NextDouble();
    }
    case ProbDistribution::kNormal: {
      // Truncated normal via resampling; falls back to a clamp after a
      // bounded number of rejections so adversarial configs (e.g. mean far
      // outside (0,1]) cannot loop forever.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const double p = rng.NextGaussian(config_.mean, config_.stddev);
        if (p > 0.0 && p <= 1.0) return p;
      }
      const double p = rng.NextGaussian(config_.mean, config_.stddev);
      if (p <= 0.0) return kMinProb;
      if (p > 1.0) return 1.0;
      return p;
    }
  }
  PSKY_CHECK_MSG(false, "unknown probability distribution");
  return 1.0;
}

}  // namespace psky
