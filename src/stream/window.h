// Sliding-window buffers.
//
// CountWindow implements the paper's primary model: the most recent N
// elements. TimeWindow implements the Section VI extension: elements
// within the most recent time span T. Both hand expired elements back to
// the caller so the skyline operator can run its Expiring() path.

#ifndef PSKY_STREAM_WINDOW_H_
#define PSKY_STREAM_WINDOW_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "stream/element.h"

namespace psky {

/// Count-based sliding window over the most recent `capacity` elements.
class CountWindow {
 public:
  explicit CountWindow(size_t capacity);

  /// Appends `e`. If the window overflows, removes and returns the oldest
  /// element (exactly one, since arrivals come one at a time).
  std::optional<UncertainElement> Push(const UncertainElement& e);

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return buffer_.size() == capacity_; }

  const UncertainElement& oldest() const { return buffer_.front(); }
  const UncertainElement& newest() const { return buffer_.back(); }

  /// Window contents, oldest first (for oracles / debugging).
  std::vector<UncertainElement> Snapshot() const;

 private:
  size_t capacity_;
  std::deque<UncertainElement> buffer_;
};

/// Time-based sliding window over the most recent `span` seconds.
class TimeWindow {
 public:
  explicit TimeWindow(double span_seconds);

  /// Appends `e` (timestamps must be non-decreasing) and moves every
  /// element with time <= e.time - span into `*expired`, oldest first.
  void Push(const UncertainElement& e,
            std::vector<UncertainElement>* expired);

  size_t size() const { return buffer_.size(); }
  double span() const { return span_; }

  /// Window contents, oldest first.
  std::vector<UncertainElement> Snapshot() const;

 private:
  double span_;
  std::deque<UncertainElement> buffer_;
};

}  // namespace psky

#endif  // PSKY_STREAM_WINDOW_H_
