// Sliding-window buffers.
//
// CountWindow implements the paper's primary model: the most recent N
// elements. TimeWindow implements the Section VI extension: elements
// within the most recent time span T. Both hand expired elements back to
// the caller so the skyline operator can run its Expiring() path.

#ifndef PSKY_STREAM_WINDOW_H_
#define PSKY_STREAM_WINDOW_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "stream/element.h"

namespace psky {

/// Count-based sliding window over the most recent `capacity` elements.
class CountWindow {
 public:
  explicit CountWindow(size_t capacity);

  /// Appends `e`. If the window overflows, removes and returns the oldest
  /// element (exactly one, since arrivals come one at a time).
  std::optional<UncertainElement> Push(const UncertainElement& e);

  /// Steady-state rotation: appends `e`, removes and returns the oldest
  /// element without the optional wrapper. Requires full().
  UncertainElement PushRotate(const UncertainElement& e);

  size_t size() const { return buffer_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return buffer_.size() == capacity_; }

  const UncertainElement& oldest() const { return buffer_.front(); }
  const UncertainElement& newest() const { return buffer_.back(); }

  /// Window contents, oldest first (for oracles / debugging).
  std::vector<UncertainElement> Snapshot() const;

 private:
  size_t capacity_;
  std::deque<UncertainElement> buffer_;
};

/// What a TimeWindow does with an element whose timestamp is older than
/// the watermark (the maximum timestamp seen so far). Real feeds deliver
/// slightly out-of-order data; a window must either refuse it cleanly or
/// repair it — never corrupt its ordering invariant.
enum class TimestampPolicy {
  kReject,            ///< TryPush returns false; the element is dropped
  kClampToWatermark,  ///< the timestamp is raised to the watermark
};

/// Time-based sliding window over the most recent `span` seconds.
class TimeWindow {
 public:
  explicit TimeWindow(double span_seconds,
                      TimestampPolicy policy = TimestampPolicy::kReject);

  /// Appends `*e` and moves every element with time <= e->time - span into
  /// `*expired`, oldest first. Returns false iff `e->time` is behind the
  /// watermark under kReject (the window is unchanged); under
  /// kClampToWatermark a late `e->time` is rewritten to the watermark
  /// before insertion, so the caller feeds the operator the same timestamp
  /// the window holds. Equal timestamps (duplicates) are always accepted.
  bool TryPush(UncertainElement* e, std::vector<UncertainElement>* expired);

  /// Legacy in-order interface: appends `e`, aborting the process if the
  /// stream violates timestamp ordering under kReject.
  void Push(const UncertainElement& e,
            std::vector<UncertainElement>* expired);

  size_t size() const { return buffer_.size(); }
  double span() const { return span_; }
  TimestampPolicy policy() const { return policy_; }
  /// Largest timestamp accepted so far (-infinity before the first push).
  double watermark() const { return watermark_; }
  /// Elements dropped by TimestampPolicy::kReject.
  uint64_t rejected() const { return rejected_; }
  /// Timestamps rewritten by TimestampPolicy::kClampToWatermark.
  uint64_t clamped() const { return clamped_; }

  /// Window contents, oldest first.
  std::vector<UncertainElement> Snapshot() const;

 private:
  double span_;
  TimestampPolicy policy_;
  double watermark_;
  uint64_t rejected_ = 0;
  uint64_t clamped_ = 0;
  std::deque<UncertainElement> buffer_;
};

}  // namespace psky

#endif  // PSKY_STREAM_WINDOW_H_
