// Synthetic uncertain-stream generators.
//
// Spatial locations follow the Börzsönyi et al. (ICDE'01) methodology used
// by the paper: independent, correlated, and anti-correlated distributions
// over [0,1]^d. Occurrence probabilities come from a ProbModel. Arrival
// order is random (independent of position), and timestamps follow Poisson
// arrivals so the same streams drive time-based windows.

#ifndef PSKY_STREAM_GENERATOR_H_
#define PSKY_STREAM_GENERATOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/random.h"
#include "stream/element.h"
#include "stream/prob_model.h"

namespace psky {

/// Spatial location distribution of stream elements.
enum class SpatialDistribution {
  kIndependent,     ///< Each dimension i.i.d. U[0,1].
  kCorrelated,      ///< Clustered around the main diagonal.
  kAntiCorrelated,  ///< Clustered around the anti-diagonal hyperplane.
};

/// Full configuration of a synthetic stream.
struct StreamConfig {
  int dims = 3;
  SpatialDistribution spatial = SpatialDistribution::kAntiCorrelated;
  ProbModelConfig prob;
  uint64_t seed = 42;
  /// Mean arrival rate (elements/second) for Poisson timestamps.
  double arrival_rate = 1000.0;
};

/// Produces an unbounded uncertain data stream per a StreamConfig.
///
/// Deterministic: the same config yields the same stream.
class StreamGenerator {
 public:
  explicit StreamGenerator(const StreamConfig& config);

  /// Generates the next element (seq and time filled in).
  UncertainElement Next();

  /// Generates the next `n` elements.
  std::vector<UncertainElement> Take(size_t n);

  const StreamConfig& config() const { return config_; }

 private:
  Point NextPosition();

  StreamConfig config_;
  ProbModel prob_model_;
  Rng pos_rng_;
  Rng prob_rng_;
  Rng time_rng_;
  uint64_t next_seq_ = 0;
  double now_ = 0.0;
};

/// Short human-readable dataset label, e.g. "anti" / "inde" / "corr".
const char* SpatialDistributionName(SpatialDistribution d);

}  // namespace psky

#endif  // PSKY_STREAM_GENERATOR_H_
