#include "stream/stock.h"

#include <cmath>

#include "base/check.h"

namespace psky {

StockStreamGenerator::StockStreamGenerator(const StockConfig& config)
    : config_(config),
      prob_model_(config.prob),
      rng_(config.seed),
      prob_rng_(config.seed ^ 0x5BD1E995CAFEF00DULL),
      time_rng_(config.seed ^ 0x8DA6B343C2B2AE35ULL),
      price_(config.initial_price),
      anchor_(config.initial_price) {
  PSKY_CHECK_MSG(config.initial_price > 0.0, "price must be positive");
  PSKY_CHECK_MSG(config.trades_per_day > 0, "trades_per_day must be > 0");
}

UncertainElement StockStreamGenerator::Next() {
  // Log-price random walk with mean reversion toward a daily anchor that
  // itself drifts once per simulated day. This mirrors how the real trace
  // wanders across price levels over months while staying locally tight.
  const double eps = rng_.NextGaussian();
  const double pull = config_.mean_reversion *
                      (std::log(anchor_) - std::log(price_));
  price_ = std::exp(std::log(price_) + pull + config_.volatility * eps);

  if (++trades_today_ >= config_.trades_per_day) {
    trades_today_ = 0;
    // Overnight gap: anchor follows the close plus a larger shock.
    anchor_ = std::exp(std::log(price_) + 0.02 * rng_.NextGaussian());
  }

  double volume = config_.median_volume *
                  std::exp(config_.volume_sigma * rng_.NextGaussian());
  if (rng_.NextBernoulli(config_.burst_prob)) {
    volume *= config_.burst_scale;
  }
  volume = std::max(1.0, std::round(volume));

  UncertainElement e;
  e.pos = Point({price_, -volume});
  e.prob = prob_model_.Sample(prob_rng_);
  e.seq = next_seq_++;
  now_ += time_rng_.NextExponential(config_.arrival_rate);
  e.time = now_;
  return e;
}

std::vector<UncertainElement> StockStreamGenerator::Take(size_t n) {
  std::vector<UncertainElement> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

}  // namespace psky
