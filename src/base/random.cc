#include "base/random.h"

#include <cmath>

#include "base/check.h"

namespace psky {

namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBounded(uint64_t bound) {
  PSKY_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded generation with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  PSKY_DCHECK(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double lambda) {
  PSKY_DCHECK(lambda > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

Rng Rng::Split() { return Rng(Next() ^ 0xD2B74407B1CE6E93ULL); }

}  // namespace psky
