// Lightweight assertion macros for invariant checking.
//
// The library is built without exceptions (Google style); fatal invariant
// violations print a diagnostic, invoke the installed failure handler (so
// long-running processes can dump a post-mortem — see core/audit.h's crash
// quarantine), and abort. PSKY_DCHECK compiles away in release builds
// (NDEBUG) and is used on hot paths.

#ifndef PSKY_BASE_CHECK_H_
#define PSKY_BASE_CHECK_H_

namespace psky {

/// Invoked once, after the diagnostic is printed and before abort(), when
/// any PSKY_CHECK fails. Re-entrant failures (a check failing inside the
/// handler) skip straight to abort. The handler must not return control to
/// the failing code path — the process aborts regardless.
using CheckFailureHandler = void (*)(const char* condition, const char* file,
                                     int line);

/// Installs `handler` process-wide; pass nullptr to clear. Returns the
/// previously installed handler.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

/// Prints the diagnostic, runs the failure handler, and aborts. `msg` may
/// be nullptr.
[[noreturn]] void CheckFailed(const char* condition, const char* file,
                              int line, const char* msg);

}  // namespace psky

#define PSKY_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      ::psky::CheckFailed(#cond, __FILE__, __LINE__, nullptr);    \
    }                                                             \
  } while (0)

#define PSKY_CHECK_MSG(cond, msg)                                 \
  do {                                                            \
    if (!(cond)) {                                                \
      ::psky::CheckFailed(#cond, __FILE__, __LINE__, msg);        \
    }                                                             \
  } while (0)

#ifdef NDEBUG
#define PSKY_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PSKY_DCHECK(cond) PSKY_CHECK(cond)
#endif

#endif  // PSKY_BASE_CHECK_H_
