// Lightweight assertion macros for invariant checking.
//
// The library is built without exceptions (Google style); fatal invariant
// violations abort with a diagnostic. PSKY_DCHECK compiles away in release
// builds (NDEBUG) and is used on hot paths.

#ifndef PSKY_BASE_CHECK_H_
#define PSKY_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define PSKY_CHECK(cond)                                                    \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PSKY_CHECK failed: %s at %s:%d\n", #cond,       \
                   __FILE__, __LINE__);                                     \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define PSKY_CHECK_MSG(cond, msg)                                           \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "PSKY_CHECK failed: %s (%s) at %s:%d\n", #cond,  \
                   msg, __FILE__, __LINE__);                                \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define PSKY_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define PSKY_DCHECK(cond) PSKY_CHECK(cond)
#endif

#endif  // PSKY_BASE_CHECK_H_
