// Byte-level wire primitives shared by the durable-state serializers
// (core/checkpoint.cc, core/audit.cc): little-endian integers, IEEE-754
// doubles as raw bit patterns, and length-prefixed strings, with a
// bounds-checked cursor for decoding. Values round-trip bit-exactly.

#ifndef PSKY_BASE_WIRE_H_
#define PSKY_BASE_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace psky {
namespace wire {

inline void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  AppendU64(out, bits);
}

inline void AppendString(std::string* out, std::string_view s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Sequential decoder over a byte view; every read reports truncation
/// instead of walking off the end.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > bytes_.size()) return false;
    *v = static_cast<uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > bytes_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
            << (8 * i);
    }
    return true;
  }
  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof *v);
    return true;
  }
  /// Length-prefixed string; rejects lengths above `max_bytes` so a
  /// corrupted prefix cannot demand a huge allocation.
  bool ReadString(std::string* v, uint64_t max_bytes) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > max_bytes || pos_ + len > bytes_.size()) return false;
    v->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }
  /// A raw byte run of exactly `len` bytes.
  bool ReadBytes(std::string* v, uint64_t len) {
    // Compare against the remainder rather than pos_ + len: a corrupted
    // length near 2^64 would wrap the sum past the bounds check.
    if (len > bytes_.size() - pos_) return false;
    v->assign(bytes_.substr(pos_, len));
    pos_ += len;
    return true;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

}  // namespace wire
}  // namespace psky

#endif  // PSKY_BASE_WIRE_H_
