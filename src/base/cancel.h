// Cooperative cancellation and deadlines for long read-only queries.
//
// Ad-hoc QSKY / top-k queries traverse the whole candidate tree; under
// overload a serving loop cannot afford an unbounded traversal holding the
// query thread. These primitives make traversals interruptible without
// locks on the hot path: a query carries a QueryControl (an optional
// cancel token plus an optional deadline), and the traversal ticks a
// QueryTicker per node visit. Tokens are a single relaxed atomic;
// deadline clock reads are amortized over `check_stride` ticks, so an
// inactive control costs one predictable branch per node.

#ifndef PSKY_BASE_CANCEL_H_
#define PSKY_BASE_CANCEL_H_

#include <atomic>
#include <chrono>

namespace psky {

/// One-shot cancellation flag, settable from any thread.
///
/// Release/acquire ordering is load-bearing: anything the cancelling
/// thread wrote before Cancel() (a reason, a result, freed budget) is
/// visible to the traversal thread once it observes cancelled() == true,
/// so callers need no extra fence to read "why" after "whether".
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Cancellation/deadline context threaded through query traversals. A
/// default-constructed control is inert: queries under it never stop
/// early.
struct QueryControl {
  const CancelToken* cancel = nullptr;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};
  /// Traversal ticks between deadline clock reads (clock reads are the
  /// expensive part; token checks happen on every tick).
  int check_stride = 64;

  static QueryControl Unbounded() { return QueryControl{}; }

  static QueryControl WithDeadline(std::chrono::milliseconds budget) {
    QueryControl ctl;
    ctl.has_deadline = true;
    ctl.deadline = std::chrono::steady_clock::now() + budget;
    return ctl;
  }

  bool active() const { return cancel != nullptr || has_deadline; }
};

/// Per-query tick counter amortizing deadline checks. Not thread-safe;
/// one ticker per traversal.
class QueryTicker {
 public:
  explicit QueryTicker(const QueryControl& ctl)
      : ctl_(&ctl), active_(ctl.active()) {}

  /// Returns true while the query may continue. Once false, stays false.
  bool Tick() {
    if (!active_) return true;
    if (stopped_) return false;
    if (ctl_->cancel != nullptr && ctl_->cancel->cancelled()) {
      stopped_ = true;
      return false;
    }
    if (ctl_->has_deadline && ++tick_ >= ctl_->check_stride) {
      tick_ = 0;
      if (std::chrono::steady_clock::now() >= ctl_->deadline) {
        stopped_ = true;
        return false;
      }
    }
    return true;
  }

  bool stopped() const { return stopped_; }

 private:
  const QueryControl* ctl_;
  bool active_;
  bool stopped_ = false;
  int tick_ = 0;
};

}  // namespace psky

#endif  // PSKY_BASE_CANCEL_H_
