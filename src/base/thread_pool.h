// Fixed-size worker pool for fan-out of independent read-only work.
//
// The streaming operators are single-writer by design (the sky-tree is
// mutated only between queries), but several consumers fan out
// embarrassingly parallel *read* work: the MSKY operator evaluates k
// thresholds independently, and the audit subsystem replays a naive
// oracle over a window snapshot off the hot path. This pool serves those
// cases: a handful of long-lived std::thread workers, a mutex/condvar
// guarded deque of type-erased jobs, and a future-returning Async()
// wrapper. No work stealing, no priorities — job counts here are tiny
// (tens, not millions) and job bodies are large, so a single lock is
// nowhere near contention.
//
// Threads are joined in the destructor; submitting after Shutdown() (or
// during destruction) aborts. All public methods are thread-safe;
// concurrent Shutdown() calls are safe and every caller returns only
// after the workers are joined.

#ifndef PSKY_BASE_THREAD_POOL_H_
#define PSKY_BASE_THREAD_POOL_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/sync.h"

namespace psky {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The configured worker count (stable across Shutdown).
  int num_threads() const { return num_threads_; }

  /// Enqueues a fire-and-forget job.
  void Submit(std::function<void()> job) PSKY_EXCLUDES(mu_);

  /// Enqueues `fn` and returns a future for its result.
  template <typename Fn>
  auto Async(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Submit([task]() { (*task)(); });
    return result;
  }

  /// Blocks until every queued and running job has finished. New jobs may
  /// be submitted concurrently; this returns once the pool is drained.
  void Wait() PSKY_EXCLUDES(mu_);

  /// Drains outstanding jobs and joins the workers. Idempotent and safe
  /// to call concurrently: one caller performs the join, the rest block
  /// until it completes, so no caller returns while a worker is live.
  /// Called by the destructor.
  void Shutdown() PSKY_EXCLUDES(mu_);

  /// A sensible default worker count for this machine (hardware
  /// concurrency, at least 1).
  static int DefaultThreads();

  /// Point-in-time health snapshot for watchdogs (core/overload.h): how
  /// deep the queue is, how long its head has been waiting, and how long
  /// the longest in-flight job has been running. Ages are measured at the
  /// moment of the call; a wedged worker shows up as a monotonically
  /// growing `longest_running_ms`.
  struct Status {
    size_t queued = 0;
    int active = 0;
    uint64_t oldest_queued_ms = 0;
    uint64_t longest_running_ms = 0;
  };
  Status GetStatus() const PSKY_EXCLUDES(mu_);

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    std::function<void()> fn;
    Clock::time_point enqueued;
  };

  void WorkerLoop(size_t worker_index) PSKY_EXCLUDES(mu_);

  const int num_threads_;
  mutable Mutex mu_{"thread-pool", lockrank::kThreadPool};
  CondVar work_available_;
  CondVar idle_;
  std::deque<Job> queue_ PSKY_GUARDED_BY(mu_);
  int active_ PSKY_GUARDED_BY(mu_) = 0;
  bool shutting_down_ PSKY_GUARDED_BY(mu_) = false;
  /// True once the shutdown joiner has reaped every worker; concurrent
  /// Shutdown() callers wait on idle_ for it.
  bool workers_joined_ PSKY_GUARDED_BY(mu_) = false;
  // Per-worker start time of the job currently running; meaningful only
  // where running_[i] is true.
  std::vector<Clock::time_point> running_since_ PSKY_GUARDED_BY(mu_);
  std::vector<bool> running_ PSKY_GUARDED_BY(mu_);
  /// Swapped out under mu_ by the winning Shutdown() caller, joined
  /// outside the lock (joining under mu_ would deadlock the workers'
  /// own queue access).
  std::vector<std::thread> workers_ PSKY_GUARDED_BY(mu_);
};

}  // namespace psky

#endif  // PSKY_BASE_THREAD_POOL_H_
