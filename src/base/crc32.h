// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used to detect
// corruption in checkpoint files. Table-driven, one byte per step; no
// external dependency so the library stays self-contained.

#ifndef PSKY_BASE_CRC32_H_
#define PSKY_BASE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace psky {

namespace internal {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace internal

/// CRC-32 of `len` bytes at `data`. Pass a previous result as `seed` to
/// checksum data in chunks: Crc32(b, nb, Crc32(a, na)) == Crc32(a+b).
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace psky

#endif  // PSKY_BASE_CRC32_H_
