// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), used to detect
// corruption in checkpoint and WAL files. Slicing-by-8: eight derived
// tables let the hot loop fold 8 bytes per iteration instead of 1, which
// matters on the WAL append path where every record is checksummed. No
// external dependency so the library stays self-contained.

#ifndef PSKY_BASE_CRC32_H_
#define PSKY_BASE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace psky {

namespace internal {

// kCrc32Tables[0] is the classic byte-at-a-time table; table k extends
// it so that kCrc32Tables[k][b] is the CRC of byte b followed by k zero
// bytes. Folding one table lookup per input byte across 8 staggered
// tables gives the same polynomial division as the serial loop.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeCrc32Tables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t k = 1; k < 8; ++k) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[k][i] = c;
    }
  }
  return tables;
}

inline constexpr std::array<std::array<uint32_t, 256>, 8> kCrc32Tables =
    MakeCrc32Tables();

// Back-compat alias for the byte-at-a-time table.
inline constexpr const std::array<uint32_t, 256>& kCrc32Table =
    kCrc32Tables[0];

}  // namespace internal

/// CRC-32 of `len` bytes at `data`. Pass a previous result as `seed` to
/// checksum data in chunks: Crc32(b, nb, Crc32(a, na)) == Crc32(a+b).
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  using internal::kCrc32Tables;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  // The 8-byte folding assumes little-endian loads, like every other
  // wire-format reader in this codebase (base/wire.h).
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = kCrc32Tables[7][lo & 0xFFu] ^ kCrc32Tables[6][(lo >> 8) & 0xFFu] ^
        kCrc32Tables[5][(lo >> 16) & 0xFFu] ^ kCrc32Tables[4][lo >> 24] ^
        kCrc32Tables[3][hi & 0xFFu] ^ kCrc32Tables[2][(hi >> 8) & 0xFFu] ^
        kCrc32Tables[1][(hi >> 16) & 0xFFu] ^ kCrc32Tables[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  for (size_t i = 0; i < len; ++i) {
    c = kCrc32Tables[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace psky

#endif  // PSKY_BASE_CRC32_H_
