#include "base/retry.h"

#include <cerrno>
#include <chrono>
#include <thread>

#include "base/random.h"

namespace psky {

bool IsTransientIoError(int err) {
  switch (err) {
    case EIO:
    case ENOSPC:
    case EINTR:
    case EAGAIN:
    case EBUSY:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return true;
    default:
      return false;
  }
}

uint64_t BackoffMs(const RetryPolicy& policy, int retry_index, double u01) {
  // base * 2^retry_index, capped; shifting by more than 63 is UB, but the
  // cap makes anything past ~60 doublings equivalent anyway.
  uint64_t backoff = policy.max_backoff_ms;
  if (retry_index < 60) {
    const uint64_t scaled = policy.base_backoff_ms << retry_index;
    // Detect wrap from the shift: un-shifting must give the base back.
    if ((scaled >> retry_index) == policy.base_backoff_ms &&
        scaled < policy.max_backoff_ms) {
      backoff = scaled;
    }
  }
  double jitter = policy.jitter;
  if (jitter < 0.0) jitter = 0.0;
  if (jitter > 1.0) jitter = 1.0;
  const double scale = 1.0 - jitter * u01;
  return static_cast<uint64_t>(static_cast<double>(backoff) * scale);
}

bool RetryWithBackoff(const RetryPolicy& policy,
                      const std::function<bool(int* err)>& attempt,
                      RetryStats* stats, const SleepFn& sleeper) {
  RetryStats local;
  RetryStats* s = stats != nullptr ? stats : &local;
  Rng rng(policy.seed);
  const int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  for (int i = 0; i < budget; ++i) {
    if (i > 0) {
      const uint64_t ms = BackoffMs(policy, i - 1, rng.NextDouble());
      s->backoff_ms_total += ms;
      if (sleeper) {
        sleeper(ms);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
      }
      ++s->retries;
    }
    ++s->attempts;
    int err = 0;
    if (attempt(&err)) return true;
    if (!IsTransientIoError(err)) {
      ++s->permanent_failures;
      return false;
    }
  }
  ++s->exhausted;
  return false;
}

}  // namespace psky
