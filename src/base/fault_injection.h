// Seeded, schedule-driven fault injection for chaos testing.
//
// Production code is littered with failure points that almost never fire:
// fsync returning EIO, a rename hitting ENOSPC, a worker task stalling, a
// pipeline step wedging. This module lets tests (and the psky_stream
// `--chaos-schedule` flag) drive those points deterministically: a
// schedule names injection *sites* and, per site, which occurrences fail
// (with which errno), or how long they are delayed.
//
// The hooks are compiled in always but cost one relaxed atomic load when
// no schedule is armed — call sites guard with fault::Enabled(), so the
// disarmed path never takes a lock or touches the schedule state.
//
// Schedule grammar — semicolon-separated clauses:
//
//   seed=<u64>                       seeds probabilistic clauses
//   fail=<site>@<occ>[:<err>]        fail those occurrences of <site>
//   pfail=<site>:<prob>[:<err>]      fail each occurrence with prob <prob>
//   delay=<site>@<occ>:<ms>          delay those occurrences by <ms>
//
//   <occ>  := N | N..M | N+          1-based occurrence index / range /
//                                    open range
//   <err>  := eio | enospc | eintr   injected errno (default eio)
//   <site> := ckpt-open | ckpt-write | ckpt-fsync | ckpt-rename |
//             qrtn-write | pool-task | step | wal-append | wal-fsync |
//             segment-map | segment-recycle
//
// Example: "seed=7;fail=ckpt-fsync@2..3;delay=step@100..200:5" fails the
// 2nd and 3rd checkpoint fsyncs with EIO and slows pipeline steps 100-200
// by 5 ms each (saturating a bounded ingest queue).
//
// All functions are thread-safe; occurrence counting is per-site and
// global to the process.

#ifndef PSKY_BASE_FAULT_INJECTION_H_
#define PSKY_BASE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace psky::fault {

/// Injection sites. Each names one class of failure point; occurrences
/// are counted per site from 1.
enum class Site : int {
  kCheckpointOpen = 0,  ///< opening the checkpoint temp file
  kCheckpointWrite,     ///< writing checkpoint payload bytes
  kCheckpointFsync,     ///< fsync of the checkpoint temp file
  kCheckpointRename,    ///< rename of temp over final checkpoint
  kQuarantineWrite,     ///< any stage of a quarantine dump write
  kPoolTask,            ///< start of a thread-pool task (delay only)
  kStep,                ///< one pipeline step (delay only)
  kWalAppend,           ///< appending one record to the write-ahead log
  kWalFsync,            ///< group-commit fsync of the write-ahead log
  kSegmentMap,          ///< mapping a new window-store segment file
  kSegmentRecycle,      ///< recycling a drained window-store segment
};
inline constexpr int kSiteCount = 11;

/// Canonical schedule-syntax name of a site ("ckpt-fsync", ...).
const char* SiteName(Site site);

/// Parses a schedule-syntax site name. Returns false on unknown names.
bool ParseSiteName(std::string_view name, Site* out);

namespace internal {
extern std::atomic<bool> g_armed;
int FailErrnoSlow(Site site);
uint64_t DelayMsSlow(Site site);
}  // namespace internal

/// True when a schedule is armed. The only cost paid by call sites when
/// fault injection is idle.
inline bool Enabled() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Counts one occurrence of `site`; returns the errno it should fail with
/// (nonzero) or 0 to proceed normally. Zero-cost when disarmed.
inline int FailErrno(Site site) {
  return Enabled() ? internal::FailErrnoSlow(site) : 0;
}

/// Counts one occurrence of `site`; returns the injected delay in
/// milliseconds (0 = none). Does not sleep.
inline uint64_t DelayMs(Site site) {
  return Enabled() ? internal::DelayMsSlow(site) : 0;
}

/// Sleeps for DelayMs(site) when nonzero. Zero-cost when disarmed.
void MaybeDelay(Site site);

/// Cumulative effect counters since the schedule was armed.
struct Stats {
  uint64_t failures_injected = 0;
  uint64_t delays_injected = 0;
  uint64_t delay_ms_total = 0;
};

/// Parses `spec` and arms it, replacing any previous schedule and
/// resetting occurrence counters and stats. Empty spec disarms. Returns
/// false with a diagnostic in `*error` on malformed input (the previous
/// schedule stays armed).
bool LoadSchedule(std::string_view spec, std::string* error);

/// Disarms fault injection and clears the schedule and counters.
void Clear();

Stats StatsSnapshot();

/// Occurrences of `site` counted so far (for tests).
uint64_t Occurrences(Site site);

}  // namespace psky::fault

#endif  // PSKY_BASE_FAULT_INJECTION_H_
