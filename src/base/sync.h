// Annotated synchronization primitives: the project's lock vocabulary.
//
// Every mutex and condition variable in library code goes through these
// wrappers (enforced by the psky-lint `sync-wrappers` rule) so that two
// independent checkers see the whole lock protocol:
//
//  1. Clang's capability-based thread-safety analysis. The PSKY_* macros
//     below expand to the Clang attributes when compiling under Clang
//     (CI's thread-safety job adds -Wthread-safety -Wthread-safety-beta
//     -Werror) and to nothing under GCC, so annotations are free on every
//     other build.
//
//  2. A runtime lock-rank checker (lockdep-lite). Each Mutex declares a
//     rank from the table in lockrank below; acquiring a mutex while
//     holding one of equal or higher rank is an ordering violation and
//     PSKY_CHECK-fails with both lock names and the full held stack.
//     Armed by default in debug and sanitizer builds, where every chaos
//     and TSan test exercises it for free; in release builds the disarmed
//     cost is one relaxed atomic load per acquisition (the same
//     convention as fault::Enabled()).
//
// Conventions (see docs/operations.md, "Analysis matrix"):
//   - members protected by a Mutex carry PSKY_GUARDED_BY(mu_);
//   - functions called with a lock held carry PSKY_REQUIRES(mu_);
//   - condition-variable predicates run with the lock held but inside a
//     lambda the analysis cannot see through — they call mu.AssertHeld()
//     first instead of being suppressed;
//   - PSKY_NO_THREAD_SAFETY_ANALYSIS is a last resort and every use needs
//     a comment justifying why the analysis cannot express the protocol.

#ifndef PSKY_BASE_SYNC_H_
#define PSKY_BASE_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>  // psky-lint: allow(sync-wrappers)
#include <mutex>               // psky-lint: allow(sync-wrappers)
#include <utility>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define PSKY_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PSKY_THREAD_ANNOTATION_(x)
#endif

#define PSKY_CAPABILITY(x) PSKY_THREAD_ANNOTATION_(capability(x))
#define PSKY_SCOPED_CAPABILITY PSKY_THREAD_ANNOTATION_(scoped_lockable)
#define PSKY_GUARDED_BY(x) PSKY_THREAD_ANNOTATION_(guarded_by(x))
#define PSKY_PT_GUARDED_BY(x) PSKY_THREAD_ANNOTATION_(pt_guarded_by(x))
#define PSKY_ACQUIRE(...) \
  PSKY_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define PSKY_RELEASE(...) \
  PSKY_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define PSKY_TRY_ACQUIRE(...) \
  PSKY_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define PSKY_REQUIRES(...) \
  PSKY_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define PSKY_EXCLUDES(...) PSKY_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define PSKY_ASSERT_CAPABILITY(x) \
  PSKY_THREAD_ANNOTATION_(assert_capability(x))
#define PSKY_RETURN_CAPABILITY(x) PSKY_THREAD_ANNOTATION_(lock_returned(x))
#define PSKY_NO_THREAD_SAFETY_ANALYSIS \
  PSKY_THREAD_ANNOTATION_(no_thread_safety_analysis)

// ThreadSanitizer detection, for primitives that need a TSan-visible
// formulation (TSan does not model standalone fences).
#if defined(__SANITIZE_THREAD__)
#define PSKY_SYNC_TSAN_ 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PSKY_SYNC_TSAN_ 1
#endif
#endif
#ifndef PSKY_SYNC_TSAN_
#define PSKY_SYNC_TSAN_ 0
#endif

namespace psky {

/// std::atomic_thread_fence(seq_cst), phrased so ThreadSanitizer can see
/// it. TSan does not intercept standalone fences (GCC's -Wtsan makes
/// that an error under -Werror, and a fence-based protocol is invisible
/// to the race detector), so sanitized builds substitute a seq_cst RMW
/// on `hint`: RMWs on one location are totally ordered and each acquires
/// everything published before the previous one, which yields the same
/// store-load ordering the fence provides. Every thread in the protocol
/// must pass the *same* hint object.
inline void SeqCstFence(std::atomic<unsigned>& hint) {
#if PSKY_SYNC_TSAN_
  hint.fetch_add(1, std::memory_order_seq_cst);
#else
  (void)hint;
  std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
}

// ---------------------------------------------------------------------------
// Lock ranks.
// ---------------------------------------------------------------------------

namespace lockrank {

/// Rank table: a thread may only acquire a mutex whose rank is strictly
/// greater than every rank it already holds, so any deadlock cycle would
/// need a rank decrease somewhere — which the checker catches on the
/// first occurrence, not the unlucky interleaving. Leaf mutexes (never
/// held across another acquisition) sit at the top. Gaps are deliberate:
/// new subsystems slot in without renumbering. Keep this table in sync
/// with docs/operations.md.
inline constexpr int kIngestQueue = 10;    ///< BoundedIngestQueue::mu_
inline constexpr int kWatchdog = 20;       ///< Watchdog::mu_
inline constexpr int kShardDoorbell = 30;  ///< SpscQueue<T>::door_mu_
inline constexpr int kThreadPool = 40;     ///< ThreadPool::mu_
inline constexpr int kWalAsync = 50;       ///< WalWriter::AsyncSync::mu
inline constexpr int kFaultSchedule = 60;  ///< fault_injection's g_mu
inline constexpr int kLeaf = 90;           ///< generic leaf (tests, tools)

namespace internal {
// Armed flag, mirrored after fault::internal::g_armed: library call
// sites pay one relaxed load when the checker is off.
extern std::atomic<bool> g_armed;
void OnAcquire(const void* mu, const char* name, int rank);
void OnAcquired(const void* mu, const char* name, int rank);
void OnRelease(const void* mu);
}  // namespace internal

/// True when acquisitions are being rank-checked. Defaults to on in
/// debug (!NDEBUG) and sanitizer builds, off in release.
inline bool Armed() {
  return internal::g_armed.load(std::memory_order_relaxed);
}

/// Arms or disarms the checker process-wide; returns the previous state.
/// Tests use this to exercise the checker in release builds (and to
/// silence it around deliberately-misordered fixtures).
bool SetArmed(bool armed);

/// Called instead of aborting when a violation is found, if installed
/// (tests assert the checker fires without dying). The message names the
/// acquired mutex and the held stack. Returns the previous handler.
using ViolationHandler = void (*)(const char* message);
ViolationHandler SetViolationHandlerForTest(ViolationHandler handler);

/// Ranks held by the calling thread right now, innermost last (for
/// tests and post-mortem dumps). Returns the number written to `out`,
/// at most `max`.
int HeldRanks(int* out, int max);

}  // namespace lockrank

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A std::mutex with a name, a lock rank, and Clang capability
/// annotations. Constant-initializable, so file-scope instances (e.g.
/// fault injection's schedule lock) dodge static-init order.
class PSKY_CAPABILITY("mutex") Mutex {
 public:
  constexpr Mutex(const char* name, int rank) noexcept
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PSKY_ACQUIRE() {
    // Record intent *before* blocking: if this acquisition deadlocks,
    // the held stack already names the lock being waited on.
    if (lockrank::Armed()) {
      lockrank::internal::OnAcquire(this, name_, rank_);
    }
    mu_.lock();
  }

  void Unlock() PSKY_RELEASE() {
    mu_.unlock();
    if (lockrank::Armed()) lockrank::internal::OnRelease(this);
  }

  /// Never blocks, so misordered try-acquisitions cannot deadlock; the
  /// checker records success without a rank check (lockdep's rule).
  bool TryLock() PSKY_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (lockrank::Armed()) {
      lockrank::internal::OnAcquired(this, name_, rank_);
    }
    return true;
  }

  /// Tells the static analysis this thread holds the mutex in contexts
  /// it cannot see through (condition-variable predicate lambdas). No
  /// runtime effect.
  void AssertHeld() const PSKY_ASSERT_CAPABILITY(this) {}

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex& native() { return mu_; }  // psky-lint: allow(sync-wrappers)

  std::mutex mu_;  // psky-lint: allow(sync-wrappers)
  const char* name_;
  int rank_;
};

// ---------------------------------------------------------------------------
// MutexLock
// ---------------------------------------------------------------------------

/// RAII lock (std::lock_guard with a Release() escape for the
/// unlock-before-notify pattern).
class PSKY_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PSKY_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() PSKY_RELEASE() {
    if (held_) mu_->Unlock();
  }

  /// Unlocks early (e.g. before a condvar notify). The destructor then
  /// does nothing.
  void Release() PSKY_RELEASE() {
    held_ = false;
    mu_->Unlock();
  }

 private:
  Mutex* mu_;
  bool held_ = true;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// Condition variable bound to the annotated Mutex. Waits take the Mutex
/// explicitly so REQUIRES() expresses the protocol; internally each wait
/// adopts the already-held native mutex and releases it back un-owned,
/// keeping the annotated Mutex conceptually held across the wait (the
/// lock-rank stack likewise keeps it: the thread is blocked, not running
/// past it).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) PSKY_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // psky-lint: allow(sync-wrappers)
        mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  /// Waits until `pred()` holds. `pred` runs with `mu` held; it should
  /// open with `mu.AssertHeld()` so the static analysis knows.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) PSKY_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // psky-lint: allow(sync-wrappers)
        mu.native(), std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  /// Returns pred() after waiting at most `timeout` (false = timed out
  /// with the predicate still false). `pred` runs with `mu` held.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) PSKY_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(  // psky-lint: allow(sync-wrappers)
        mu.native(), std::adopt_lock);
    const bool satisfied = cv_.wait_for(native, timeout, std::move(pred));
    native.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // psky-lint: allow(sync-wrappers)
};

}  // namespace psky

#endif  // PSKY_BASE_SYNC_H_
