// Small statistics accumulators: running summaries and batch-latency
// recording used by the figure-reproduction harnesses (the paper reports
// "average time for each batch of 1K elements").

#ifndef PSKY_BASE_STATS_H_
#define PSKY_BASE_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace psky {

/// Streaming min / max / mean / variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double mean() const { return count_ ? mean_ : 0.0; }

  /// Sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
};

/// Records per-batch processing latencies and derives throughput numbers.
///
/// Usage: call StartBatch() / EndBatch() around every `batch_size` stream
/// elements; query summary statistics afterwards.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t batch_size = 1000)
      : batch_size_(batch_size) {}

  /// Adds one measured batch duration (seconds).
  void AddBatchSeconds(double seconds);

  size_t batch_size() const { return batch_size_; }
  size_t batches() const { return stats_.count(); }

  /// Mean delay per element in microseconds.
  double MeanDelayPerElementMicros() const;

  /// Mean sustainable throughput in elements per second.
  double ElementsPerSecond() const;

  const RunningStats& batch_stats() const { return stats_; }

 private:
  size_t batch_size_;
  RunningStats stats_;
};

/// Tracks the maximum of a size-like series; used for the paper's
/// "maximal |S_{N,q}| / |SKY_{N,q}| over the whole stream" space metric.
class PeakTracker {
 public:
  void Observe(size_t value) {
    if (value > peak_) peak_ = value;
    sum_ += value;
    ++count_;
  }

  size_t peak() const { return peak_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }
  size_t count() const { return count_; }

 private:
  size_t peak_ = 0;
  uint64_t sum_ = 0;
  size_t count_ = 0;
};

}  // namespace psky

#endif  // PSKY_BASE_STATS_H_
