// Monotonic wall-clock timing helpers used by the benchmark harnesses.

#ifndef PSKY_BASE_TIMER_H_
#define PSKY_BASE_TIMER_H_

#include <chrono>
#include <cstdint>

namespace psky {

/// Monotonic stopwatch; Start() is implicit at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed time in nanoseconds as an integer.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace psky

#endif  // PSKY_BASE_TIMER_H_
