// Bounded retry with jittered exponential backoff for transient I/O.
//
// Checkpoint and quarantine writes can hit transient kernel-level errors
// (EIO on a flaky device, ENOSPC during a log-rotation race, EINTR) that
// clear within milliseconds. Aborting a long-running stream on the first
// such error throws away a healthy window; retrying forever wedges the
// pipeline. This module implements the standard middle ground: classify
// the errno, retry transient failures up to a budget with exponential
// backoff, and jitter the backoff (seeded, reproducible) so a fleet of
// processes does not stampede the recovering device in lockstep.
//
// Permanent errors (EACCES, EROFS, ...) fail immediately: no number of
// retries fixes a permission problem.

#ifndef PSKY_BASE_RETRY_H_
#define PSKY_BASE_RETRY_H_

#include <cstdint>
#include <functional>

namespace psky {

/// Retry budget and backoff shape. `max_attempts` counts the first try:
/// 1 disables retrying entirely.
struct RetryPolicy {
  int max_attempts = 1;
  uint64_t base_backoff_ms = 10;  ///< backoff before the first retry
  uint64_t max_backoff_ms = 2000;
  /// Fraction of each backoff randomized: sleep in
  /// [backoff * (1 - jitter), backoff]. 0 = deterministic backoff.
  double jitter = 0.5;
  /// Seed for the jitter stream; fixed seed = reproducible schedule.
  uint64_t seed = 0x5EEDu;
};

/// Outcome counters for one or more RetryWithBackoff calls.
struct RetryStats {
  uint64_t attempts = 0;       ///< total attempts, including first tries
  uint64_t retries = 0;        ///< attempts beyond the first
  uint64_t backoff_ms_total = 0;
  uint64_t exhausted = 0;      ///< operations that ran out of budget
  uint64_t permanent_failures = 0;  ///< operations failed non-transiently
};

/// True for errno values worth retrying: the error can clear on its own
/// (EIO, ENOSPC, EINTR, EAGAIN, EBUSY, EDQUOT). Everything else — and
/// errno 0, "failed but no errno captured" — is permanent.
bool IsTransientIoError(int err);

/// Backoff for the `retry_index`-th retry (0-based), jittered by `u01`
/// (a uniform [0,1) draw). Exposed for tests.
uint64_t BackoffMs(const RetryPolicy& policy, int retry_index, double u01);

/// Sleep hook; tests inject a recorder to avoid real sleeping.
using SleepFn = std::function<void(uint64_t ms)>;

/// Runs `attempt` until it succeeds, fails permanently, or the budget is
/// exhausted. `attempt` returns true on success; on failure it sets
/// `*err` to the errno-style cause (0 = unknown, treated as permanent).
/// Between transient failures, sleeps the jittered backoff via `sleeper`
/// (nullptr = real sleep). `stats` may be null. Returns overall success.
bool RetryWithBackoff(const RetryPolicy& policy,
                      const std::function<bool(int* err)>& attempt,
                      RetryStats* stats, const SleepFn& sleeper = nullptr);

}  // namespace psky

#endif  // PSKY_BASE_RETRY_H_
