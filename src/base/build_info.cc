#include "base/build_info.h"

#ifndef PSKY_GIT_HASH
#define PSKY_GIT_HASH "unknown"
#endif
#ifndef PSKY_BUILD_TYPE
#define PSKY_BUILD_TYPE "unknown"
#endif

namespace psky {

const char* BuildGitHash() { return PSKY_GIT_HASH; }

const char* BuildType() { return PSKY_BUILD_TYPE; }

std::string BuildInfoString() {
  return std::string("psky ") + PSKY_GIT_HASH + " (" + PSKY_BUILD_TYPE + ")";
}

}  // namespace psky
