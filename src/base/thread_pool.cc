#include "base/thread_pool.h"

#include <algorithm>

#include "base/check.h"
#include "base/fault_injection.h"

namespace psky {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  running_since_.resize(static_cast<size_t>(num_threads));
  running_.resize(static_cast<size_t>(num_threads), false);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PSKY_CHECK_MSG(!shutting_down_, "Submit() on a shut-down ThreadPool");
    queue_.push_back(Job{std::move(job), Clock::now()});
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::Status ThreadPool::GetStatus() const {
  const Clock::time_point now = Clock::now();
  auto age_ms = [now](Clock::time_point since) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
            .count());
  };
  std::lock_guard<std::mutex> lock(mu_);
  Status status;
  status.queued = queue_.size();
  status.active = active_;
  if (!queue_.empty()) status.oldest_queued_ms = age_ms(queue_.front().enqueued);
  for (size_t i = 0; i < running_.size(); ++i) {
    if (running_[i]) {
      status.longest_running_ms =
          std::max(status.longest_running_ms, age_ms(running_since_[i]));
    }
  }
  return status;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front().fn);
      queue_.pop_front();
      ++active_;
      running_since_[worker_index] = Clock::now();
      running_[worker_index] = true;
    }
    // Chaos harness: an injected pre-task delay models a wedged worker;
    // the watchdog must notice via longest_running_ms.
    if (fault::Enabled()) fault::MaybeDelay(fault::Site::kPoolTask);
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      running_[worker_index] = false;
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace psky
