#include "base/thread_pool.h"

#include "base/check.h"

namespace psky {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    PSKY_CHECK_MSG(!shutting_down_, "Submit() on a shut-down ThreadPool");
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this]() { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) return;
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this]() { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace psky
