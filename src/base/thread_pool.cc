#include "base/thread_pool.h"

#include <algorithm>

#include "base/check.h"
#include "base/fault_injection.h"

namespace psky {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  MutexLock lock(mu_);
  workers_.reserve(static_cast<size_t>(num_threads_));
  running_since_.resize(static_cast<size_t>(num_threads_));
  running_.resize(static_cast<size_t>(num_threads_), false);
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back(
        [this, i]() { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> job) {
  {
    MutexLock lock(mu_);
    PSKY_CHECK_MSG(!shutting_down_, "Submit() on a shut-down ThreadPool");
    queue_.push_back(Job{std::move(job), Clock::now()});
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() {
    mu_.AssertHeld();
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::Shutdown() {
  // Exactly one caller (the first) swaps the workers out and joins them;
  // later or concurrent callers wait for workers_joined_ so that *every*
  // Shutdown() return means "no worker thread is live" — previously a
  // second caller could return while the first was still joining.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mu_);
    if (shutting_down_) {
      idle_.Wait(mu_, [this]() {
        mu_.AssertHeld();
        return workers_joined_;
      });
      return;
    }
    shutting_down_ = true;
    workers.swap(workers_);
  }
  work_available_.NotifyAll();
  for (std::thread& t : workers) t.join();
  {
    MutexLock lock(mu_);
    workers_joined_ = true;
  }
  idle_.NotifyAll();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::Status ThreadPool::GetStatus() const {
  const Clock::time_point now = Clock::now();
  auto age_ms = [now](Clock::time_point since) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - since)
            .count());
  };
  MutexLock lock(mu_);
  Status status;
  status.queued = queue_.size();
  status.active = active_;
  if (!queue_.empty()) status.oldest_queued_ms = age_ms(queue_.front().enqueued);
  for (size_t i = 0; i < running_.size(); ++i) {
    if (running_[i]) {
      status.longest_running_ms =
          std::max(status.longest_running_ms, age_ms(running_since_[i]));
    }
  }
  return status;
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lock(mu_);
      work_available_.Wait(mu_, [this]() {
        mu_.AssertHeld();
        return shutting_down_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // shutting down and drained
      job = std::move(queue_.front().fn);
      queue_.pop_front();
      ++active_;
      running_since_[worker_index] = Clock::now();
      running_[worker_index] = true;
    }
    // Chaos harness: an injected pre-task delay models a wedged worker;
    // the watchdog must notice via longest_running_ms.
    if (fault::Enabled()) fault::MaybeDelay(fault::Site::kPoolTask);
    job();
    {
      MutexLock lock(mu_);
      running_[worker_index] = false;
      --active_;
      if (queue_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace psky
