#include "base/stats.h"

#include <cmath>

namespace psky {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void LatencyRecorder::AddBatchSeconds(double seconds) {
  stats_.Add(seconds);
}

double LatencyRecorder::MeanDelayPerElementMicros() const {
  if (stats_.count() == 0 || batch_size_ == 0) return 0.0;
  return stats_.mean() * 1e6 / static_cast<double>(batch_size_);
}

double LatencyRecorder::ElementsPerSecond() const {
  const double per_elem_s = stats_.mean() / static_cast<double>(batch_size_);
  if (stats_.count() == 0 || per_elem_s <= 0.0) return 0.0;
  return 1.0 / per_elem_s;
}

}  // namespace psky
