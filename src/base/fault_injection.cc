#include "base/fault_injection.h"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "base/random.h"
#include "base/sync.h"

namespace psky::fault {

namespace {

struct Clause {
  // Occurrence window [first, last], 1-based inclusive; last = UINT64_MAX
  // for open ranges. Ignored by probabilistic clauses (probability >= 0).
  uint64_t first = 0;
  uint64_t last = 0;
  double probability = -1.0;  // < 0: deterministic occurrence match
  int fail_errno = 0;         // nonzero: fail clause
  uint64_t delay_ms = 0;      // nonzero: delay clause

  bool Matches(uint64_t occurrence, Rng* rng) const {
    if (probability >= 0.0) return rng->NextBernoulli(probability);
    return occurrence >= first && occurrence <= last;
  }
};

struct Schedule {
  std::vector<Clause> per_site[kSiteCount];
  uint64_t occurrences[kSiteCount] = {};
  Rng rng{0x5EEDu};
  Stats stats;
};

// Constant-initialized (constexpr ctor), so hooks that fire during
// static init/teardown never touch an unconstructed lock.
Mutex g_mu{"fault-schedule", lockrank::kFaultSchedule};
Schedule g_schedule PSKY_GUARDED_BY(g_mu);

constexpr const char* kSiteNames[kSiteCount] = {
    "ckpt-open",  "ckpt-write",  "ckpt-fsync", "ckpt-rename",
    "qrtn-write", "pool-task",   "step",       "wal-append",
    "wal-fsync",  "segment-map", "segment-recycle",
};

bool ParseU64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseErrnoName(std::string_view name, int* out) {
  if (name == "eio") {
    *out = EIO;
  } else if (name == "enospc") {
    *out = ENOSPC;
  } else if (name == "eintr") {
    *out = EINTR;
  } else {
    return false;
  }
  return true;
}

// "N" | "N..M" | "N+" into [first, last].
bool ParseOccurrenceSpec(std::string_view spec, uint64_t* first,
                         uint64_t* last) {
  const size_t dots = spec.find("..");
  if (dots != std::string_view::npos) {
    return ParseU64(spec.substr(0, dots), first) &&
           ParseU64(spec.substr(dots + 2), last) && *first >= 1 &&
           *last >= *first;
  }
  if (!spec.empty() && spec.back() == '+') {
    *last = UINT64_MAX;
    return ParseU64(spec.substr(0, spec.size() - 1), first) && *first >= 1;
  }
  if (!ParseU64(spec, first)) return false;
  *last = *first;
  return *first >= 1;
}

bool FailParse(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = "chaos schedule: " + msg;
  return false;
}

// One "key=value" clause into `out`; seed clauses update `*seed`.
bool ParseClause(std::string_view clause, Schedule* out, uint64_t* seed,
                 std::string* error) {
  const size_t eq = clause.find('=');
  if (eq == std::string_view::npos) {
    return FailParse(error, "clause '" + std::string(clause) +
                                "' is not key=value");
  }
  const std::string_view key = clause.substr(0, eq);
  const std::string_view value = clause.substr(eq + 1);

  if (key == "seed") {
    if (!ParseU64(value, seed)) {
      return FailParse(error, "bad seed '" + std::string(value) + "'");
    }
    return true;
  }

  if (key == "fail" || key == "delay") {
    const size_t at = value.find('@');
    if (at == std::string_view::npos) {
      return FailParse(error, std::string(key) + " clause needs <site>@<occ>");
    }
    Site site;
    if (!ParseSiteName(value.substr(0, at), &site)) {
      return FailParse(error, "unknown site '" +
                                  std::string(value.substr(0, at)) + "'");
    }
    std::string_view rest = value.substr(at + 1);
    Clause c;
    if (key == "fail") {
      // occ[:err]
      const size_t colon = rest.find(':');
      std::string_view occ = rest;
      c.fail_errno = EIO;
      if (colon != std::string_view::npos) {
        occ = rest.substr(0, colon);
        if (!ParseErrnoName(rest.substr(colon + 1), &c.fail_errno)) {
          return FailParse(error, "unknown errno name '" +
                                      std::string(rest.substr(colon + 1)) +
                                      "'");
        }
      }
      if (!ParseOccurrenceSpec(occ, &c.first, &c.last)) {
        return FailParse(error,
                         "bad occurrence spec '" + std::string(occ) + "'");
      }
    } else {
      // occ:ms
      const size_t colon = rest.rfind(':');
      if (colon == std::string_view::npos) {
        return FailParse(error, "delay clause needs <occ>:<ms>");
      }
      if (!ParseOccurrenceSpec(rest.substr(0, colon), &c.first, &c.last) ||
          !ParseU64(rest.substr(colon + 1), &c.delay_ms)) {
        return FailParse(error,
                         "bad delay clause '" + std::string(rest) + "'");
      }
    }
    out->per_site[static_cast<int>(site)].push_back(c);
    return true;
  }

  if (key == "pfail") {
    // <site>:<prob>[:<err>]
    const size_t colon = value.find(':');
    if (colon == std::string_view::npos) {
      return FailParse(error, "pfail clause needs <site>:<prob>");
    }
    Site site;
    if (!ParseSiteName(value.substr(0, colon), &site)) {
      return FailParse(error, "unknown site '" +
                                  std::string(value.substr(0, colon)) + "'");
    }
    std::string_view rest = value.substr(colon + 1);
    Clause c;
    c.fail_errno = EIO;
    const size_t colon2 = rest.find(':');
    std::string_view prob = rest;
    if (colon2 != std::string_view::npos) {
      prob = rest.substr(0, colon2);
      if (!ParseErrnoName(rest.substr(colon2 + 1), &c.fail_errno)) {
        return FailParse(error, "unknown errno name '" +
                                    std::string(rest.substr(colon2 + 1)) +
                                    "'");
      }
    }
    char* end = nullptr;
    const std::string prob_str(prob);
    c.probability = std::strtod(prob_str.c_str(), &end);
    // Pointer/char equality, not a float compare: strtod end-pointer check.
    if (end == prob_str.c_str() || *end != '\0' ||  // psky-lint: allow(float-eq)
        c.probability < 0.0 || c.probability > 1.0) {
      return FailParse(error, "bad probability '" + prob_str + "'");
    }
    out->per_site[static_cast<int>(site)].push_back(c);
    return true;
  }

  return FailParse(error, "unknown clause key '" + std::string(key) + "'");
}

}  // namespace

namespace internal {

std::atomic<bool> g_armed{false};

int FailErrnoSlow(Site site) {
  MutexLock lock(g_mu);
  const int s = static_cast<int>(site);
  const uint64_t occurrence = ++g_schedule.occurrences[s];
  for (const Clause& c : g_schedule.per_site[s]) {
    if (c.fail_errno != 0 && c.Matches(occurrence, &g_schedule.rng)) {
      ++g_schedule.stats.failures_injected;
      return c.fail_errno;
    }
  }
  return 0;
}

uint64_t DelayMsSlow(Site site) {
  MutexLock lock(g_mu);
  const int s = static_cast<int>(site);
  const uint64_t occurrence = ++g_schedule.occurrences[s];
  for (const Clause& c : g_schedule.per_site[s]) {
    if (c.delay_ms != 0 && c.Matches(occurrence, &g_schedule.rng)) {
      ++g_schedule.stats.delays_injected;
      g_schedule.stats.delay_ms_total += c.delay_ms;
      return c.delay_ms;
    }
  }
  return 0;
}

}  // namespace internal

const char* SiteName(Site site) {
  return kSiteNames[static_cast<int>(site)];
}

bool ParseSiteName(std::string_view name, Site* out) {
  for (int i = 0; i < kSiteCount; ++i) {
    if (name == kSiteNames[i]) {
      *out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

void MaybeDelay(Site site) {
  const uint64_t ms = DelayMs(site);
  if (ms != 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool LoadSchedule(std::string_view spec, std::string* error) {
  Schedule fresh;
  uint64_t seed = 0x5EEDu;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view clause = spec.substr(start, end - start);
    if (!clause.empty() && !ParseClause(clause, &fresh, &seed, error)) {
      return false;
    }
    start = end + 1;
  }
  fresh.rng = Rng(seed);

  bool any = false;
  for (const auto& clauses : fresh.per_site) any = any || !clauses.empty();
  {
    MutexLock lock(g_mu);
    g_schedule = std::move(fresh);
  }
  internal::g_armed.store(any, std::memory_order_relaxed);
  return true;
}

void Clear() {
  internal::g_armed.store(false, std::memory_order_relaxed);
  MutexLock lock(g_mu);
  g_schedule = Schedule{};
}

Stats StatsSnapshot() {
  MutexLock lock(g_mu);
  return g_schedule.stats;
}

uint64_t Occurrences(Site site) {
  MutexLock lock(g_mu);
  return g_schedule.occurrences[static_cast<int>(site)];
}

}  // namespace psky::fault
