// Build identification: the git revision and build type this binary was
// compiled from. Stamped into checkpoint headers and crash-quarantine
// dumps so a post-mortem always identifies the producing binary.
//
// The values are injected at CMake configure time (PSKY_GIT_HASH /
// PSKY_BUILD_TYPE compile definitions); outside a git checkout they fall
// back to "unknown".

#ifndef PSKY_BASE_BUILD_INFO_H_
#define PSKY_BASE_BUILD_INFO_H_

#include <string>

namespace psky {

/// Short git revision of the source tree ("unknown" outside a checkout).
const char* BuildGitHash();

/// CMake build type ("Release", "Debug", ... or "unknown").
const char* BuildType();

/// One-line stamp, e.g. "psky 1a2b3c4d5e6f (Release)".
std::string BuildInfoString();

}  // namespace psky

#endif  // PSKY_BASE_BUILD_INFO_H_
