#include "base/sync.h"

#include <cstdio>
#include <string>

#include "base/check.h"

namespace psky::lockrank {
namespace {

// Default: armed wherever a debugging build is already paying for
// checks — assertions on (!NDEBUG) or any sanitizer — so every existing
// chaos/TSan test exercises rank order for free. Release builds pay one
// relaxed load per acquisition until a test arms it explicitly.
#if defined(__has_feature)
#define PSKY_LOCKRANK_HAS_FEATURE_(x) __has_feature(x)
#else
#define PSKY_LOCKRANK_HAS_FEATURE_(x) 0
#endif
#if !defined(NDEBUG) || defined(__SANITIZE_THREAD__) ||      \
    defined(__SANITIZE_ADDRESS__) ||                         \
    PSKY_LOCKRANK_HAS_FEATURE_(thread_sanitizer) ||          \
    PSKY_LOCKRANK_HAS_FEATURE_(address_sanitizer)
constexpr bool kDefaultArmed = true;
#else
constexpr bool kDefaultArmed = false;
#endif

struct HeldLock {
  const void* mu;
  const char* name;
  int rank;
};

// Per-thread held-lock stack. A fixed, trivially-destructible array so
// acquisitions during thread teardown (or from file-scope mutexes at
// process exit) never touch a destroyed thread_local. Depth 16 is ~3x
// the deepest real nesting; overflow degrades to not-recorded, never to
// a false positive.
constexpr int kMaxHeld = 16;
thread_local HeldLock t_held[kMaxHeld];
thread_local int t_held_count = 0;

std::atomic<ViolationHandler> g_violation_handler{nullptr};

void ReportViolation(const char* name, int rank) {
  std::string msg = "lock-rank violation: acquiring \"";
  msg += name;
  msg += "\" (rank ";
  msg += std::to_string(rank);
  msg += ") while holding";
  for (int i = 0; i < t_held_count; ++i) {
    msg += i == 0 ? " " : ", ";
    msg += '"';
    msg += t_held[i].name;
    msg += "\" (rank ";
    msg += std::to_string(t_held[i].rank);
    msg += ')';
  }
  msg += "; acquire in increasing rank order (see lockrank table in "
         "base/sync.h)";
  ViolationHandler handler =
      g_violation_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(msg.c_str());
    return;  // test mode: record the would-be abort and continue
  }
  CheckFailed("lockrank::OrderRespected", __FILE__, __LINE__, msg.c_str());
}

}  // namespace

namespace internal {

std::atomic<bool> g_armed{kDefaultArmed};

void OnAcquire(const void* mu, const char* name, int rank) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].rank >= rank) {
      ReportViolation(name, rank);
      break;
    }
  }
  OnAcquired(mu, name, rank);
}

void OnAcquired(const void* mu, const char* name, int rank) {
  if (t_held_count >= kMaxHeld) return;
  t_held[t_held_count++] = HeldLock{mu, name, rank};
}

void OnRelease(const void* mu) {
  // Search from the top: releases are almost always LIFO, but nothing
  // requires it. Not-found is ignored (the lock was acquired while the
  // checker was disarmed).
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu == mu) {
      for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
      --t_held_count;
      return;
    }
  }
}

}  // namespace internal

bool SetArmed(bool armed) {
  return internal::g_armed.exchange(armed, std::memory_order_relaxed);
}

ViolationHandler SetViolationHandlerForTest(ViolationHandler handler) {
  return g_violation_handler.exchange(handler, std::memory_order_acq_rel);
}

int HeldRanks(int* out, int max) {
  int n = t_held_count < max ? t_held_count : max;
  for (int i = 0; i < n; ++i) out[i] = t_held[i].rank;
  return n;
}

}  // namespace psky::lockrank
