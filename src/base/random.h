// Deterministic pseudo-random number generation for reproducible streams.
//
// Rng wraps xoshiro256++ seeded via splitmix64; all experiments and tests
// in this repository derive their randomness from explicit Rng seeds so
// every table and figure is reproducible bit-for-bit.

#ifndef PSKY_BASE_RANDOM_H_
#define PSKY_BASE_RANDOM_H_

#include <cstdint>

namespace psky {

/// Deterministic 64-bit PRNG (xoshiro256++, splitmix64 seeding).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also drive
/// <random> distributions, though the built-in helpers below are preferred
/// for portability of generated sequences across standard libraries.
class Rng {
 public:
  using result_type = uint64_t;

  /// Creates a generator whose full 256-bit state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Next raw 64-bit value.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box–Muller, cached pair).
  double NextGaussian();

  /// Normal deviate with the given mean and standard deviation.
  double NextGaussian(double mean, double stddev);

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponential deviate with rate `lambda` (> 0).
  double NextExponential(double lambda);

  /// Creates an independent generator; used to give each stream component
  /// (coordinates, probabilities, arrival shuffle) its own substream.
  Rng Split();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace psky

#endif  // PSKY_BASE_RANDOM_H_
