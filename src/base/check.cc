#include "base/check.h"

#include <cstdio>
#include <cstdlib>

namespace psky {

namespace {
CheckFailureHandler g_handler = nullptr;
bool g_in_handler = false;
}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  CheckFailureHandler previous = g_handler;
  g_handler = handler;
  return previous;
}

void CheckFailed(const char* condition, const char* file, int line,
                 const char* msg) {
  if (msg != nullptr) {
    std::fprintf(stderr, "PSKY_CHECK failed: %s (%s) at %s:%d\n", condition,
                 msg, file, line);
  } else {
    std::fprintf(stderr, "PSKY_CHECK failed: %s at %s:%d\n", condition, file,
                 line);
  }
  // A check failing while the handler runs (corrupt state is corrupt state)
  // must not recurse forever.
  if (g_handler != nullptr && !g_in_handler) {
    g_in_handler = true;
    g_handler(condition, file, line);
  }
  std::abort();
}

}  // namespace psky
