// Bounded single-producer / single-consumer queue.
//
// The sharded ingestion engine (core/shard_engine.h) gives every shard
// one of these: the router thread is the only producer and the shard
// worker the only consumer, so the fast path is two relaxed loads, one
// store, and one release/acquire pair per element — no CAS loops, no
// locks, no allocation after construction.
//
// The slow path (queue full or empty) parks on a mutex + condvar
// doorbell instead of spinning. That choice is deliberate: the engine
// must behave well when shards outnumber cores (including the
// single-core CI runners), where busy-waiting consumers would starve
// the producer that is trying to feed them.
//
// Memory ordering contract: the producer publishes an element with a
// release store of head_; the consumer observes it with an acquire load.
// Everything the producer wrote to the slot before Push() therefore
// happens-before the consumer's read after Pop() — the property the
// shard-state determinism proof in shard_engine.h leans on.

#ifndef PSKY_BASE_SPSC_QUEUE_H_
#define PSKY_BASE_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "base/sync.h"

namespace psky {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so index
  /// wrapping is a mask, not a modulo.
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  size_t capacity() const { return slots_.size(); }

  /// Producer side. Blocks while the queue is full; returns false only
  /// when Close() raced ahead (no element is enqueued then).
  bool Push(T value) PSKY_EXCLUDES(door_mu_) {
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) {
      if (!WaitNotFull(head)) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    RingDoorbell(&consumer_waiting_);
    return true;
  }

  /// Producer side, non-blocking: returns false when full or closed.
  bool TryPush(T value) PSKY_EXCLUDES(door_mu_) {
    if (closed_.load(std::memory_order_relaxed)) return false;
    const size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    RingDoorbell(&consumer_waiting_);
    return true;
  }

  /// Consumer side: moves up to `max` available elements into `*out`
  /// (appended; `*out` is not cleared). Blocks while the queue is empty
  /// and not closed. Returns the number popped; 0 means closed-and-
  /// drained.
  size_t PopBatch(std::vector<T>* out, size_t max) PSKY_EXCLUDES(door_mu_) {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      if (!WaitNotEmpty(tail, &head)) return 0;
    }
    size_t n = head - tail;
    if (n > max) n = max;
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(slots_[(tail + i) & mask_]));
    }
    tail_.store(tail + n, std::memory_order_release);
    RingDoorbell(&producer_waiting_);
    return n;
  }

  /// Producer side: marks the stream complete. Consumers drain what is
  /// queued and then see PopBatch() == 0.
  void Close() PSKY_EXCLUDES(door_mu_) {
    {
      MutexLock lock(door_mu_);
      closed_.store(true, std::memory_order_release);
    }
    door_cv_.NotifyAll();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Instantaneous depth; racy by nature, for stats only.
  size_t SizeApprox() const {
    const size_t head = head_.load(std::memory_order_acquire);
    const size_t tail = tail_.load(std::memory_order_acquire);
    return head - tail;
  }

 private:
  // Doorbell protocol (eventcount-style): the waiter sets its waiting
  // flag, fences seq_cst, then re-checks the index; the publisher stores
  // the index, fences seq_cst, then checks the flag. The paired fences
  // (SeqCstFence on the shared hint, so TSan models them too) guarantee
  // at least one side observes the other, so either the publisher
  // notifies (under the mutex, where the waiter re-checks the predicate
  // before sleeping — no lost wakeup) or the waiter sees the fresh index
  // and never sleeps.
  void RingDoorbell(std::atomic<bool>* flag) PSKY_EXCLUDES(door_mu_) {
    SeqCstFence(fence_hint_);
    if (flag->load(std::memory_order_relaxed)) {
      MutexLock lock(door_mu_);
      door_cv_.NotifyAll();
    }
  }

  bool WaitNotFull(size_t head) PSKY_EXCLUDES(door_mu_) {
    MutexLock lock(door_mu_);
    producer_waiting_.store(true, std::memory_order_relaxed);
    SeqCstFence(fence_hint_);
    door_cv_.Wait(door_mu_, [&] {
      return closed_.load(std::memory_order_acquire) ||
             head - tail_.load(std::memory_order_acquire) < slots_.size();
    });
    producer_waiting_.store(false, std::memory_order_relaxed);
    return !closed_.load(std::memory_order_acquire);
  }

  bool WaitNotEmpty(size_t tail, size_t* head) PSKY_EXCLUDES(door_mu_) {
    MutexLock lock(door_mu_);
    consumer_waiting_.store(true, std::memory_order_relaxed);
    SeqCstFence(fence_hint_);
    door_cv_.Wait(door_mu_, [&] {
      *head = head_.load(std::memory_order_acquire);
      return *head != tail || closed_.load(std::memory_order_acquire);
    });
    consumer_waiting_.store(false, std::memory_order_relaxed);
    return *head != tail;
  }

  std::vector<T> slots_;
  size_t mask_ = 0;
  std::atomic<size_t> head_{0};  // next slot the producer writes
  std::atomic<size_t> tail_{0};  // next slot the consumer reads
  // The atomics below are *not* GUARDED_BY(door_mu_): the fast path
  // reads them lock-free; the doorbell protocol (seq_cst fences + the
  // re-check under the mutex) is what prevents lost wakeups.
  std::atomic<bool> closed_{false};
  std::atomic<bool> producer_waiting_{false};
  std::atomic<bool> consumer_waiting_{false};
  /// Shared hint for SeqCstFence (only touched in TSan builds).
  std::atomic<unsigned> fence_hint_{0};
  /// Parking lot for the full/empty slow path only; no queue state is
  /// guarded by it.
  Mutex door_mu_{"spsc-doorbell", lockrank::kShardDoorbell};
  CondVar door_cv_;
};

}  // namespace psky

#endif  // PSKY_BASE_SPSC_QUEUE_H_
