// Uniform grid over the dimension space, used by the sharded ingestion
// engine (core/shard_engine.h) for two jobs:
//
//   1. Routing: hashing an element's cell id spreads spatially clustered
//      arrivals across shards (`--shard-by grid`).
//   2. Merge pruning: each shard keeps a per-cell occupancy count of its
//      in-window elements. A candidate in cell c can only be refuted by
//      elements in cells c' <= c componentwise (dominance is monotone in
//      the cell coordinates because cells are axis-aligned half-open
//      boxes with a clamped last row/column), so the cross-shard merge
//      skips every shard with no occupied cell in that dominating
//      region.
//
// Coordinates are expected in [0, 1] (the Börzsönyi generators and the
// CSV reader produce this range); out-of-range values clamp to the edge
// cells, which preserves the monotonicity the pruning relies on: for any
// x dominating y, cell(x) <= cell(y) componentwise still holds after
// clamping because clamping is monotone per dimension.

#ifndef PSKY_GEOM_CELL_GRID_H_
#define PSKY_GEOM_CELL_GRID_H_

#include <cstdint>

#include "geom/point.h"

namespace psky {

class CellGrid {
 public:
  /// Cell coordinates of one point, one index per dimension.
  struct Cell {
    uint32_t coord[kMaxDims] = {};
  };

  CellGrid(int dims, uint32_t resolution)
      : dims_(dims), resolution_(resolution) {
    num_cells_ = 1;
    for (int d = 0; d < dims_; ++d) num_cells_ *= resolution_;
  }

  /// Per-dimension resolution keeping the total cell count (res^dims)
  /// near `budget`, so occupancy tables stay cache-resident. At least 2
  /// per dimension — a 1-wide grid can prune nothing.
  static uint32_t ChooseResolution(int dims, uint32_t budget = 4096) {
    uint32_t res = 2;
    while (true) {
      const uint32_t next = res + 1;
      uint64_t cells = 1;
      for (int d = 0; d < dims; ++d) cells *= next;
      if (cells > budget) break;
      res = next;
    }
    return res;
  }

  int dims() const { return dims_; }
  uint32_t resolution() const { return resolution_; }
  uint64_t num_cells() const { return num_cells_; }

  Cell CellOf(const Point& p) const {
    Cell c;
    for (int d = 0; d < dims_; ++d) {
      double scaled = p[d] * static_cast<double>(resolution_);
      if (!(scaled > 0.0)) scaled = 0.0;  // clamp lows and NaN to cell 0
      uint32_t idx = static_cast<uint32_t>(scaled);
      if (idx >= resolution_) idx = resolution_ - 1;  // clamp highs
      c.coord[d] = idx;
    }
    return c;
  }

  /// Row-major linear index of a cell, in [0, num_cells()).
  uint64_t IndexOf(const Cell& c) const {
    uint64_t idx = 0;
    for (int d = 0; d < dims_; ++d) {
      idx = idx * resolution_ + c.coord[d];
    }
    return idx;
  }

  uint64_t IndexOf(const Point& p) const { return IndexOf(CellOf(p)); }

  /// Decodes a linear index back into cell coordinates.
  Cell CellAt(uint64_t index) const {
    Cell c;
    for (int d = dims_ - 1; d >= 0; --d) {
      c.coord[d] = static_cast<uint32_t>(index % resolution_);
      index /= resolution_;
    }
    return c;
  }

  /// True when an element somewhere in cell `a` could dominate an
  /// element somewhere in cell `b`: a <= b componentwise. (Conservative:
  /// equal cells always pass, since both points share the box.)
  static bool MayDominate(const Cell& a, const Cell& b, int dims) {
    for (int d = 0; d < dims; ++d) {
      if (a.coord[d] > b.coord[d]) return false;
    }
    return true;
  }

  /// Mixes a cell index into a routing hash (splitmix64 finalizer), so
  /// grid-sharded streams spread clustered cells across shards instead
  /// of striping them.
  static uint64_t HashCell(uint64_t cell_index) {
    uint64_t z = cell_index + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  int dims_;
  uint32_t resolution_;
  uint64_t num_cells_;
};

}  // namespace psky

#endif  // PSKY_GEOM_CELL_GRID_H_
