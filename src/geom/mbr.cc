#include "geom/mbr.h"

#include <algorithm>

namespace psky {

Mbr Mbr::Empty(int dims) {
  Mbr m;
  m.min_ = Point(dims);
  m.max_ = Point(dims);
  m.empty_ = true;
  return m;
}

void Mbr::Expand(const Point& p) {
  if (empty_) {
    min_ = p;
    max_ = p;
    empty_ = false;
    return;
  }
  PSKY_DCHECK(p.dims() == dims());
  for (int i = 0; i < dims(); ++i) {
    min_[i] = std::min(min_[i], p[i]);
    max_[i] = std::max(max_[i], p[i]);
  }
}

void Mbr::Expand(const Mbr& other) {
  if (other.empty_) return;
  Expand(other.min_);
  Expand(other.max_);
}

bool Mbr::Contains(const Point& p) const {
  if (empty_) return false;
  for (int i = 0; i < dims(); ++i) {
    if (p[i] < min_[i] || p[i] > max_[i]) return false;
  }
  return true;
}

bool Mbr::Contains(const Mbr& other) const {
  if (empty_ || other.empty_) return false;
  return Contains(other.min_) && Contains(other.max_);
}

bool Mbr::Intersects(const Mbr& other) const {
  if (empty_ || other.empty_) return false;
  for (int i = 0; i < dims(); ++i) {
    if (other.max_[i] < min_[i] || other.min_[i] > max_[i]) return false;
  }
  return true;
}

double Mbr::Area() const {
  if (empty_) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dims(); ++i) area *= max_[i] - min_[i];
  return area;
}

double Mbr::Margin() const {
  if (empty_) return 0.0;
  double margin = 0.0;
  for (int i = 0; i < dims(); ++i) margin += max_[i] - min_[i];
  return margin;
}

double Mbr::OverlapArea(const Mbr& other) const {
  if (empty_ || other.empty_) return 0.0;
  double area = 1.0;
  for (int i = 0; i < dims(); ++i) {
    const double lo = std::max(min_[i], other.min_[i]);
    const double hi = std::min(max_[i], other.max_[i]);
    if (hi <= lo) return 0.0;
    area *= hi - lo;
  }
  return area;
}

double Mbr::Enlargement(const Mbr& other) const {
  if (empty_) return other.Area();
  Mbr merged = *this;
  merged.Expand(other);
  return merged.Area() - Area();
}

}  // namespace psky
