// Dominance tests between points and between R-tree entries (MBRs).
//
// Dominance is minimization: u dominates v (u ≺ v) iff u.i <= v.i on every
// dimension and u.j < v.j on at least one. Entry-level dominance follows
// Section II-B of the paper:
//
//   * E fully dominates E'   if E.max ≺ E'.min (every element of E
//     dominates every element of E');
//   * E partially dominates E' if E.min ≺ E'.max but not fully (some
//     elements of E' *might* be dominated by elements of E — Theorem 1);
//   * otherwise E does not dominate E' (no element of E' can be dominated
//     by any element of E).
//
// The paper additionally counts E.max == E'.min as full dominance when no
// element sits at the shared corner; tracking corner occupancy is not worth
// its cost, so we conservatively classify that case as partial. This only
// means one extra level of descent in degenerate ties — never an incorrect
// probability.
//
// Everything here is inline: these predicates run hundreds of times per
// stream step inside the sky-tree traversals, and an out-of-line call per
// point pair dominates the hot-path profile. The block-oriented SoA kernel
// lives in dominance_kernel.h.

#ifndef PSKY_GEOM_DOMINANCE_H_
#define PSKY_GEOM_DOMINANCE_H_

#include "geom/mbr.h"
#include "geom/point.h"

namespace psky {

/// Relation of an entry E to another entry E' (or a point).
enum class DomRelation {
  kFull,     ///< E ≺ E': every element under E dominates everything in E'.
  kPartial,  ///< E ≺_partial E': some elements of E' might be dominated.
  kNone,     ///< E ⊀ E': nothing in E' is dominated by anything in E.
};

/// True iff `u` dominates `v` (u ≺ v).
inline bool Dominates(const Point& u, const Point& v) {
  PSKY_DCHECK(u.dims() == v.dims());
  bool strict = false;
  for (int i = 0; i < u.dims(); ++i) {
    if (u[i] > v[i]) return false;
    if (u[i] < v[i]) strict = true;
  }
  return strict;
}

/// Bitmask of the mutual dominance relation, computed in one pass:
/// bit 0 set iff u ≺ v, bit 1 set iff v ≺ u (never both). Hot-path helper
/// for code that needs both directions.
inline int DominanceCompare(const Point& u, const Point& v) {
  PSKY_DCHECK(u.dims() == v.dims());
  bool u_le = true, v_le = true;
  bool strict = false;
  for (int i = 0; i < u.dims(); ++i) {
    if (u[i] < v[i]) {
      v_le = false;
      strict = true;
    } else if (u[i] > v[i]) {
      u_le = false;
      strict = true;
    }
    if (!u_le && !v_le) return 0;
  }
  if (!strict) return 0;  // equal points dominate neither way
  return (u_le ? 1 : 0) | (v_le ? 2 : 0);
}

/// True iff `u` dominates or equals `v` component-wise (u ⪯ v).
inline bool DominatesOrEqual(const Point& u, const Point& v) {
  PSKY_DCHECK(u.dims() == v.dims());
  for (int i = 0; i < u.dims(); ++i) {
    if (u[i] > v[i]) return false;
  }
  return true;
}

/// Classifies the dominance relation of entry `e` over entry `ep`.
inline DomRelation Classify(const Mbr& e, const Mbr& ep) {
  PSKY_DCHECK(!e.empty() && !ep.empty());
  if (Dominates(e.max(), ep.min())) return DomRelation::kFull;
  if (Dominates(e.min(), ep.max())) return DomRelation::kPartial;
  return DomRelation::kNone;
}

/// Classifies the dominance relation of point `p` over entry `e`.
inline DomRelation Classify(const Point& p, const Mbr& e) {
  return Classify(Mbr(p), e);
}

/// Classifies the dominance relation of entry `e` over point `p`.
inline DomRelation Classify(const Mbr& e, const Point& p) {
  return Classify(e, Mbr(p));
}

/// Both directions of the point-vs-entry relation, computed in a single
/// pass over the dimensions (hot path of the sky-tree's arrival probe).
struct PointEntryRelation {
  DomRelation entry_over_point = DomRelation::kNone;  ///< E vs p
  DomRelation point_over_entry = DomRelation::kNone;  ///< p vs E
};

inline PointEntryRelation ClassifyPointEntry(const Point& p, const Mbr& e) {
  PSKY_DCHECK(!e.empty());
  PSKY_DCHECK(p.dims() == e.dims());
  const Point& lo = e.min();
  const Point& hi = e.max();
  bool p_ge_min = true, p_gt_min = false;  // lo ⪯ p / with a strict dim
  bool p_le_min = true, p_lt_min = false;  // p ⪯ lo / with a strict dim
  bool p_ge_max = true, p_gt_max = false;
  bool p_le_max = true, p_lt_max = false;
  for (int i = 0; i < p.dims(); ++i) {
    const double v = p[i];
    if (v > lo[i]) {
      p_le_min = false;
      p_gt_min = true;
    } else if (v < lo[i]) {
      p_ge_min = false;
      p_lt_min = true;
    }
    if (v > hi[i]) {
      p_le_max = false;
      p_gt_max = true;
    } else if (v < hi[i]) {
      p_ge_max = false;
      p_lt_max = true;
    }
  }
  PointEntryRelation rel;
  if (p_ge_max && p_gt_max) {
    rel.entry_over_point = DomRelation::kFull;  // e.max ≺ p
  } else if (p_ge_min && p_gt_min) {
    rel.entry_over_point = DomRelation::kPartial;  // e.min ≺ p
  }
  if (p_le_min && p_lt_min) {
    rel.point_over_entry = DomRelation::kFull;  // p ≺ e.min
  } else if (p_le_max && p_lt_max) {
    rel.point_over_entry = DomRelation::kPartial;  // p ≺ e.max
  }
  return rel;
}

}  // namespace psky

#endif  // PSKY_GEOM_DOMINANCE_H_
