// Dominance tests between points and between R-tree entries (MBRs).
//
// Dominance is minimization: u dominates v (u ≺ v) iff u.i <= v.i on every
// dimension and u.j < v.j on at least one. Entry-level dominance follows
// Section II-B of the paper:
//
//   * E fully dominates E'   if E.max ≺ E'.min (every element of E
//     dominates every element of E');
//   * E partially dominates E' if E.min ≺ E'.max but not fully (some
//     elements of E' *might* be dominated by elements of E — Theorem 1);
//   * otherwise E does not dominate E' (no element of E' can be dominated
//     by any element of E).
//
// The paper additionally counts E.max == E'.min as full dominance when no
// element sits at the shared corner; tracking corner occupancy is not worth
// its cost, so we conservatively classify that case as partial. This only
// means one extra level of descent in degenerate ties — never an incorrect
// probability.

#ifndef PSKY_GEOM_DOMINANCE_H_
#define PSKY_GEOM_DOMINANCE_H_

#include "geom/mbr.h"
#include "geom/point.h"

namespace psky {

/// Relation of an entry E to another entry E' (or a point).
enum class DomRelation {
  kFull,     ///< E ≺ E': every element under E dominates everything in E'.
  kPartial,  ///< E ≺_partial E': some elements of E' might be dominated.
  kNone,     ///< E ⊀ E': nothing in E' is dominated by anything in E.
};

/// True iff `u` dominates `v` (u ≺ v).
bool Dominates(const Point& u, const Point& v);

/// Bitmask of the mutual dominance relation, computed in one pass:
/// bit 0 set iff u ≺ v, bit 1 set iff v ≺ u (never both). Hot-path helper
/// for code that needs both directions.
int DominanceCompare(const Point& u, const Point& v);

/// True iff `u` dominates or equals `v` component-wise (u ⪯ v).
bool DominatesOrEqual(const Point& u, const Point& v);

/// Classifies the dominance relation of entry `e` over entry `ep`.
DomRelation Classify(const Mbr& e, const Mbr& ep);

/// Classifies the dominance relation of point `p` over entry `e`.
DomRelation Classify(const Point& p, const Mbr& e);

/// Classifies the dominance relation of entry `e` over point `p`.
DomRelation Classify(const Mbr& e, const Point& p);

/// Both directions of the point-vs-entry relation, computed in a single
/// pass over the dimensions (hot path of the sky-tree's arrival probe).
struct PointEntryRelation {
  DomRelation entry_over_point = DomRelation::kNone;  ///< E vs p
  DomRelation point_over_entry = DomRelation::kNone;  ///< p vs E
};
PointEntryRelation ClassifyPointEntry(const Point& p, const Mbr& e);

}  // namespace psky

#endif  // PSKY_GEOM_DOMINANCE_H_
