// Block dominance kernel: one probe point against a contiguous SoA block
// of candidate coordinates, branchlessly.
//
// The sky-tree's arrival and expiry traversals spend most of their time in
// leaf loops testing one probe point against every element of a leaf. With
// the leaf coordinates mirrored into a dim-major structure-of-arrays block
// (sky_tree.h SoaArena), the mutual dominance relation of the probe
// against all n candidates reduces to d passes of elementwise compares
// over contiguous rows — no branches, no pointer chasing, and directly
// vectorizable.
//
// The kernel emits two bitmasks rather than per-element bytes: bit i of
// `cand_over_probe` is set iff candidate i ≺ probe, bit i of
// `probe_over_cand` iff probe ≺ candidate i (never both; ties dominate
// neither way). Dominance relations are sparse in practice, so callers
// walk set bits with countr_zero instead of branching on every element —
// and walking bits ascending preserves element order, which keeps
// floating-point accumulations bit-identical to the scalar loops this
// kernel replaces. Per element the semantics are EXACTLY
// DominanceCompare(candidate_i, probe) (see dominance.h): exact IEEE
// compares, no tolerance.
//
// Two implementations behind one entry point:
//   * a portable branchless fallback (flag-byte accumulation, no
//     data-dependent branches) that works on every target;
//   * an explicit AVX2 path (4 doubles per lane group). On x86-64
//     GCC/Clang it is compiled via the target("avx2") function attribute
//     regardless of the baseline -march, and selected at runtime with
//     __builtin_cpu_supports — the default build stays safe on pre-AVX2
//     CPUs yet uses 256-bit compares where the hardware has them.
//
// NaN coordinates are not supported (same contract as dominance.h: the
// ingestion layer rejects them); all compares are ordered.

#ifndef PSKY_GEOM_DOMINANCE_KERNEL_H_
#define PSKY_GEOM_DOMINANCE_KERNEL_H_

#include <cstdint>

#include "base/check.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PSKY_DOMKERNEL_X86_DISPATCH 1
#include <immintrin.h>
#else
#define PSKY_DOMKERNEL_X86_DISPATCH 0
#endif

namespace psky {

/// Upper bound on the block size a single kernel call supports; callers
/// keep per-leaf blocks (fanout + 1) at or below this.
inline constexpr int kDominanceKernelMaxBlock = 256;

/// 64-bit words needed for one mask over a maximal block.
inline constexpr int kDominanceKernelMaskWords = kDominanceKernelMaxBlock / 64;

namespace dominance_internal {

// Portable branchless path: flag bytes per candidate, dimension-major
// sweeps over contiguous rows, then a packing pass into the mask words.
// The sweeps have no data-dependent branches, so -O2/-O3 auto-vectorizes
// them at the target's native width. `i0` is the first candidate to
// process (the AVX2 path hands its tail here); mask words must be zeroed
// by the caller for [i0, n).
inline void BlockComparePortable(const double* probe, int dims,
                                 const double* block, int stride, int i0,
                                 int n, uint64_t* cand_over_probe,
                                 uint64_t* probe_over_cand) {
  if (i0 >= n) return;
  uint8_t cand_le[kDominanceKernelMaxBlock];
  uint8_t probe_le[kDominanceKernelMaxBlock];
  uint8_t strict[kDominanceKernelMaxBlock];
  const int cnt = n - i0;
  for (int t = 0; t < cnt; ++t) {
    cand_le[t] = 1;
    probe_le[t] = 1;
    strict[t] = 0;
  }
  for (int k = 0; k < dims; ++k) {
    const double pv = probe[k];
    const double* row = block + k * stride + i0;
    for (int t = 0; t < cnt; ++t) {
      const uint8_t gt = row[t] > pv;
      const uint8_t lt = row[t] < pv;
      cand_le[t] = static_cast<uint8_t>(cand_le[t] & (gt ^ 1));
      probe_le[t] = static_cast<uint8_t>(probe_le[t] & (lt ^ 1));
      strict[t] = static_cast<uint8_t>(strict[t] | gt | lt);
    }
  }
  for (int t = 0; t < cnt; ++t) {
    const int i = i0 + t;
    cand_over_probe[i >> 6] |= static_cast<uint64_t>(cand_le[t] & strict[t])
                               << (i & 63);
    probe_over_cand[i >> 6] |= static_cast<uint64_t>(probe_le[t] & strict[t])
                               << (i & 63);
  }
}

#if PSKY_DOMKERNEL_X86_DISPATCH

// Four candidates per iteration: lane masks accumulate "candidate <=
// probe on every dim so far", "probe <= candidate ...", and "some dim
// differs". One movemask pair per group lands the four relation bits
// directly in the output words (groups are 4-aligned, so they never
// straddle a word). Compiled for AVX2 via the target attribute; call only
// after CpuHasAvx2() returns true.
__attribute__((target("avx2"))) inline void BlockCompareAvx2(
    const double* probe, int dims, const double* block, int stride, int n,
    uint64_t* cand_over_probe, uint64_t* probe_over_cand) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d cand_le = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    __m256d probe_le = cand_le;
    __m256d strict = _mm256_setzero_pd();
    for (int k = 0; k < dims; ++k) {
      const __m256d row = _mm256_loadu_pd(block + k * stride + i);
      const __m256d pv = _mm256_set1_pd(probe[k]);
      const __m256d gt = _mm256_cmp_pd(row, pv, _CMP_GT_OQ);
      const __m256d lt = _mm256_cmp_pd(row, pv, _CMP_LT_OQ);
      cand_le = _mm256_andnot_pd(gt, cand_le);
      probe_le = _mm256_andnot_pd(lt, probe_le);
      strict = _mm256_or_pd(strict, _mm256_or_pd(gt, lt));
    }
    const uint64_t cand_bits = static_cast<uint64_t>(
        _mm256_movemask_pd(_mm256_and_pd(cand_le, strict)));
    const uint64_t probe_bits = static_cast<uint64_t>(
        _mm256_movemask_pd(_mm256_and_pd(probe_le, strict)));
    cand_over_probe[i >> 6] |= cand_bits << (i & 63);
    probe_over_cand[i >> 6] |= probe_bits << (i & 63);
  }
  BlockComparePortable(probe, dims, block, stride, i, n, cand_over_probe,
                       probe_over_cand);
}

inline bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
}

#endif  // PSKY_DOMKERNEL_X86_DISPATCH

}  // namespace dominance_internal

/// Computes the mutual dominance relation of `probe` (a d-dimensional
/// coordinate array) against `n` candidates stored dim-major in `block`:
/// dimension k of candidate i lives at block[k * stride + i]. Sets bit i
/// of `cand_over_probe` iff candidate i ≺ probe and bit i of
/// `probe_over_cand` iff probe ≺ candidate i; both outputs must hold
/// (n + 63) / 64 words and are fully overwritten. Requires n <= stride
/// and n <= kDominanceKernelMaxBlock.
inline void DominanceBlockCompare(const double* probe, int dims,
                                  const double* block, int stride, int n,
                                  uint64_t* cand_over_probe,
                                  uint64_t* probe_over_cand) {
  PSKY_DCHECK(n >= 0 && n <= stride && n <= kDominanceKernelMaxBlock);
  PSKY_DCHECK(dims >= 1);
  for (int w = 0; w < (n + 63) / 64; ++w) {
    cand_over_probe[w] = 0;
    probe_over_cand[w] = 0;
  }
#if PSKY_DOMKERNEL_X86_DISPATCH
  if (dominance_internal::CpuHasAvx2()) {
    dominance_internal::BlockCompareAvx2(probe, dims, block, stride, n,
                                         cand_over_probe, probe_over_cand);
    return;
  }
#endif
  dominance_internal::BlockComparePortable(probe, dims, block, stride, 0, n,
                                           cand_over_probe, probe_over_cand);
}

/// Name of the kernel variant DominanceBlockCompare will use on this
/// machine, for bench metadata.
inline const char* DominanceKernelVariant() {
#if PSKY_DOMKERNEL_X86_DISPATCH
  if (dominance_internal::CpuHasAvx2()) return "avx2";
#endif
  return "portable";
}

}  // namespace psky

#endif  // PSKY_GEOM_DOMINANCE_KERNEL_H_
