// Minimum bounding rectangles for R-tree entries.
//
// All methods are inline: MBR expansion, containment and enlargement run on
// every node of every tree descent, and an out-of-line call per invocation
// is measurable on the stream hot path.

#ifndef PSKY_GEOM_MBR_H_
#define PSKY_GEOM_MBR_H_

#include <algorithm>

#include "geom/point.h"

namespace psky {

/// Axis-aligned minimum bounding rectangle.
///
/// `min()` is the lower-left corner and `max()` the upper-right corner, the
/// paper's `E.min` / `E.max`. A single point degenerates to min == max.
class Mbr {
 public:
  Mbr() = default;

  /// Degenerate MBR covering exactly one point.
  explicit Mbr(const Point& p) : min_(p), max_(p) {}

  Mbr(const Point& lo, const Point& hi) : min_(lo), max_(hi) {
    PSKY_DCHECK(lo.dims() == hi.dims());
  }

  /// An "empty" MBR that absorbs the first Expand() call.
  static Mbr Empty(int dims) {
    Mbr m;
    m.min_ = Point(dims);
    m.max_ = Point(dims);
    m.empty_ = true;
    return m;
  }

  int dims() const { return min_.dims(); }
  bool empty() const { return empty_; }

  const Point& min() const { return min_; }
  const Point& max() const { return max_; }

  /// Grows the MBR to cover `p`.
  void Expand(const Point& p) {
    if (empty_) {
      min_ = p;
      max_ = p;
      empty_ = false;
      return;
    }
    PSKY_DCHECK(p.dims() == dims());
    for (int i = 0; i < dims(); ++i) {
      min_[i] = std::min(min_[i], p[i]);
      max_[i] = std::max(max_[i], p[i]);
    }
  }

  /// Grows the MBR to cover `other`.
  void Expand(const Mbr& other) {
    if (other.empty_) return;
    Expand(other.min_);
    Expand(other.max_);
  }

  /// True if `p` lies inside (inclusive) this MBR.
  bool Contains(const Point& p) const {
    if (empty_) return false;
    for (int i = 0; i < dims(); ++i) {
      if (p[i] < min_[i] || p[i] > max_[i]) return false;
    }
    return true;
  }

  /// True if `other` lies fully inside (inclusive) this MBR.
  bool Contains(const Mbr& other) const {
    if (empty_ || other.empty_) return false;
    return Contains(other.min_) && Contains(other.max_);
  }

  /// True if the two MBRs intersect (inclusive).
  bool Intersects(const Mbr& other) const {
    if (empty_ || other.empty_) return false;
    for (int i = 0; i < dims(); ++i) {
      if (other.max_[i] < min_[i] || other.min_[i] > max_[i]) return false;
    }
    return true;
  }

  /// True if `p` touches the boundary of the MBR: some coordinate equals
  /// the min or max corner on its dimension. Removing an interior point
  /// can never shrink an MBR; removing a boundary point might.
  bool OnBoundary(const Point& p) const {
    if (empty_) return false;
    for (int i = 0; i < dims(); ++i) {
      if (p[i] == min_[i] || p[i] == max_[i]) return true;
    }
    return false;
  }

  /// d-dimensional volume (product of extents).
  double Area() const {
    if (empty_) return 0.0;
    double area = 1.0;
    for (int i = 0; i < dims(); ++i) area *= max_[i] - min_[i];
    return area;
  }

  /// Sum of extents (the R*-tree "margin" measure).
  double Margin() const {
    if (empty_) return 0.0;
    double margin = 0.0;
    for (int i = 0; i < dims(); ++i) margin += max_[i] - min_[i];
    return margin;
  }

  /// Volume of the intersection with `other`; 0 when disjoint.
  double OverlapArea(const Mbr& other) const {
    if (empty_ || other.empty_) return 0.0;
    double area = 1.0;
    for (int i = 0; i < dims(); ++i) {
      const double lo = std::max(min_[i], other.min_[i]);
      const double hi = std::min(max_[i], other.max_[i]);
      if (hi <= lo) return 0.0;
      area *= hi - lo;
    }
    return area;
  }

  /// Area increase required to also cover `other`.
  double Enlargement(const Mbr& other) const {
    if (empty_) return other.Area();
    Mbr merged = *this;
    merged.Expand(other);
    return merged.Area() - Area();
  }

  /// Center coordinate along dimension `dim`.
  double Center(int dim) const { return 0.5 * (min_[dim] + max_[dim]); }

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.empty_ == b.empty_ && a.min_ == b.min_ && a.max_ == b.max_;
  }

 private:
  Point min_;
  Point max_;
  bool empty_ = false;
};

}  // namespace psky

#endif  // PSKY_GEOM_MBR_H_
