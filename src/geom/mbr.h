// Minimum bounding rectangles for R-tree entries.

#ifndef PSKY_GEOM_MBR_H_
#define PSKY_GEOM_MBR_H_

#include "geom/point.h"

namespace psky {

/// Axis-aligned minimum bounding rectangle.
///
/// `min()` is the lower-left corner and `max()` the upper-right corner, the
/// paper's `E.min` / `E.max`. A single point degenerates to min == max.
class Mbr {
 public:
  Mbr() = default;

  /// Degenerate MBR covering exactly one point.
  explicit Mbr(const Point& p) : min_(p), max_(p) {}

  Mbr(const Point& lo, const Point& hi) : min_(lo), max_(hi) {
    PSKY_DCHECK(lo.dims() == hi.dims());
  }

  /// An "empty" MBR that absorbs the first Expand() call.
  static Mbr Empty(int dims);

  int dims() const { return min_.dims(); }
  bool empty() const { return empty_; }

  const Point& min() const { return min_; }
  const Point& max() const { return max_; }

  /// Grows the MBR to cover `p`.
  void Expand(const Point& p);

  /// Grows the MBR to cover `other`.
  void Expand(const Mbr& other);

  /// True if `p` lies inside (inclusive) this MBR.
  bool Contains(const Point& p) const;

  /// True if `other` lies fully inside (inclusive) this MBR.
  bool Contains(const Mbr& other) const;

  /// True if the two MBRs intersect (inclusive).
  bool Intersects(const Mbr& other) const;

  /// d-dimensional volume (product of extents).
  double Area() const;

  /// Sum of extents (the R*-tree "margin" measure).
  double Margin() const;

  /// Volume of the intersection with `other`; 0 when disjoint.
  double OverlapArea(const Mbr& other) const;

  /// Area increase required to also cover `other`.
  double Enlargement(const Mbr& other) const;

  /// Center coordinate along dimension `dim`.
  double Center(int dim) const { return 0.5 * (min_[dim] + max_[dim]); }

  friend bool operator==(const Mbr& a, const Mbr& b) {
    return a.empty_ == b.empty_ && a.min_ == b.min_ && a.max_ == b.max_;
  }

 private:
  Point min_;
  Point max_;
  bool empty_ = false;
};

}  // namespace psky

#endif  // PSKY_GEOM_MBR_H_
