// Fixed-capacity d-dimensional point.
//
// Streams in this library carry millions of elements, so points avoid heap
// allocation: coordinates live inline with capacity kMaxDims. Dominance is
// minimization on every dimension (smaller is better), matching the paper.

#ifndef PSKY_GEOM_POINT_H_
#define PSKY_GEOM_POINT_H_

#include <array>
#include <initializer_list>

#include "base/check.h"

namespace psky {

/// Maximum supported dimensionality. The paper evaluates d in [2, 5];
/// 8 leaves headroom without hurting cache behaviour.
inline constexpr int kMaxDims = 8;

/// A d-dimensional point with inline storage.
class Point {
 public:
  Point() = default;

  /// Point of `dims` dimensions, every coordinate set to `fill`.
  explicit Point(int dims, double fill = 0.0) : dims_(dims) {
    PSKY_DCHECK(dims >= 0 && dims <= kMaxDims);
    for (int i = 0; i < dims; ++i) coords_[i] = fill;
  }

  /// Point from an explicit coordinate list, e.g. Point({1.0, 2.0}).
  Point(std::initializer_list<double> coords)
      : dims_(static_cast<int>(coords.size())) {
    PSKY_DCHECK(dims_ <= kMaxDims);
    int i = 0;
    for (double c : coords) coords_[i++] = c;
  }

  int dims() const { return dims_; }

  /// Contiguous coordinate storage (dims() leading entries are valid);
  /// feed for the block dominance kernel.
  const double* data() const { return coords_.data(); }

  double& operator[](int i) {
    PSKY_DCHECK(i >= 0 && i < dims_);
    return coords_[i];
  }
  double operator[](int i) const {
    PSKY_DCHECK(i >= 0 && i < dims_);
    return coords_[i];
  }

  friend bool operator==(const Point& a, const Point& b) {
    if (a.dims_ != b.dims_) return false;
    for (int i = 0; i < a.dims_; ++i) {
      if (a.coords_[i] != b.coords_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Point& a, const Point& b) { return !(a == b); }

 private:
  std::array<double, kMaxDims> coords_ = {};
  int dims_ = 0;
};

}  // namespace psky

#endif  // PSKY_GEOM_POINT_H_
