#include "geom/dominance.h"

namespace psky {

bool Dominates(const Point& u, const Point& v) {
  PSKY_DCHECK(u.dims() == v.dims());
  bool strict = false;
  for (int i = 0; i < u.dims(); ++i) {
    if (u[i] > v[i]) return false;
    if (u[i] < v[i]) strict = true;
  }
  return strict;
}

int DominanceCompare(const Point& u, const Point& v) {
  PSKY_DCHECK(u.dims() == v.dims());
  bool u_le = true, v_le = true;
  bool strict = false;
  for (int i = 0; i < u.dims(); ++i) {
    if (u[i] < v[i]) {
      v_le = false;
      strict = true;
    } else if (u[i] > v[i]) {
      u_le = false;
      strict = true;
    }
    if (!u_le && !v_le) return 0;
  }
  if (!strict) return 0;  // equal points dominate neither way
  return (u_le ? 1 : 0) | (v_le ? 2 : 0);
}

bool DominatesOrEqual(const Point& u, const Point& v) {
  PSKY_DCHECK(u.dims() == v.dims());
  for (int i = 0; i < u.dims(); ++i) {
    if (u[i] > v[i]) return false;
  }
  return true;
}

DomRelation Classify(const Mbr& e, const Mbr& ep) {
  PSKY_DCHECK(!e.empty() && !ep.empty());
  if (Dominates(e.max(), ep.min())) return DomRelation::kFull;
  if (Dominates(e.min(), ep.max())) return DomRelation::kPartial;
  return DomRelation::kNone;
}

DomRelation Classify(const Point& p, const Mbr& e) {
  return Classify(Mbr(p), e);
}

DomRelation Classify(const Mbr& e, const Point& p) {
  return Classify(e, Mbr(p));
}

PointEntryRelation ClassifyPointEntry(const Point& p, const Mbr& e) {
  PSKY_DCHECK(!e.empty());
  PSKY_DCHECK(p.dims() == e.dims());
  const Point& lo = e.min();
  const Point& hi = e.max();
  bool p_ge_min = true, p_gt_min = false;  // lo ⪯ p / with a strict dim
  bool p_le_min = true, p_lt_min = false;  // p ⪯ lo / with a strict dim
  bool p_ge_max = true, p_gt_max = false;
  bool p_le_max = true, p_lt_max = false;
  for (int i = 0; i < p.dims(); ++i) {
    const double v = p[i];
    if (v > lo[i]) {
      p_le_min = false;
      p_gt_min = true;
    } else if (v < lo[i]) {
      p_ge_min = false;
      p_lt_min = true;
    }
    if (v > hi[i]) {
      p_le_max = false;
      p_gt_max = true;
    } else if (v < hi[i]) {
      p_ge_max = false;
      p_lt_max = true;
    }
  }
  PointEntryRelation rel;
  if (p_ge_max && p_gt_max) {
    rel.entry_over_point = DomRelation::kFull;  // e.max ≺ p
  } else if (p_ge_min && p_gt_min) {
    rel.entry_over_point = DomRelation::kPartial;  // e.min ≺ p
  }
  if (p_le_min && p_lt_min) {
    rel.point_over_entry = DomRelation::kFull;  // p ≺ e.min
  } else if (p_le_max && p_lt_max) {
    rel.point_over_entry = DomRelation::kPartial;  // p ≺ e.max
  }
  return rel;
}

}  // namespace psky
