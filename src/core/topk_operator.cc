#include "core/topk_operator.h"

namespace psky {

TopKSkylineOperator::TopKSkylineOperator(int dims, double q, size_t k,
                                         SkyTree::Options options)
    : k_(k), tree_(dims, {q}, options) {
  PSKY_CHECK_MSG(k > 0, "k must be positive");
}

void TopKSkylineOperator::Insert(const UncertainElement& e) {
  UncertainElement clamped = e;
  clamped.prob = ClampProb(clamped.prob);
  tree_.Arrive(clamped);
}

void TopKSkylineOperator::Expire(const UncertainElement& e) {
  tree_.Expire(e);
}

std::vector<SkylineMember> TopKSkylineOperator::TopK() const {
  std::vector<SkylineMember> best = tree_.TopK(k_);
  // The tree retains candidates below q (they may re-enter the skyline
  // later); the reported top-k must not include them.
  const double q = threshold();
  while (!best.empty() && best.back().psky < q) best.pop_back();
  return best;
}

}  // namespace psky
