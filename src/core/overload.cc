#include "core/overload.h"

#include <algorithm>

#include "base/check.h"

namespace psky {

bool ParseOverloadPolicy(std::string_view name, OverloadPolicy* out) {
  if (name == "block") {
    *out = OverloadPolicy::kBlock;
  } else if (name == "shed-oldest") {
    *out = OverloadPolicy::kShedOldest;
  } else if (name == "shed-low-prob") {
    *out = OverloadPolicy::kShedLowProb;
  } else {
    return false;
  }
  return true;
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kShedLowProb:
      return "shed-low-prob";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// BoundedIngestQueue
// ---------------------------------------------------------------------------

BoundedIngestQueue::BoundedIngestQueue(size_t capacity, OverloadPolicy policy)
    : capacity_(capacity), policy_(policy) {
  PSKY_CHECK_MSG(capacity > 0, "ingest queue capacity must be positive");
}

bool BoundedIngestQueue::Push(IngestItem item) {
  MutexLock lock(mu_);
  if (stop_requested_ || producer_closed_) {
    ++stats_.dropped_on_stop;
    return false;
  }
  if (items_.size() >= capacity_) {
    switch (policy_) {
      case OverloadPolicy::kBlock: {
        ++stats_.producer_blocks;
        can_push_.Wait(mu_, [this]() {
          mu_.AssertHeld();
          return items_.size() < capacity_ || stop_requested_;
        });
        if (stop_requested_) {
          ++stats_.dropped_on_stop;
          return false;
        }
        break;
      }
      case OverloadPolicy::kShedOldest: {
        items_.pop_front();
        ++stats_.shed_oldest;
        break;
      }
      case OverloadPolicy::kShedLowProb: {
        // The element with the lowest occurrence probability has the
        // lowest attainable P_sky; if the arrival itself is the weakest,
        // it is the one shed.
        size_t min_idx = 0;
        double min_prob = items_[0].element.prob;
        for (size_t i = 1; i < items_.size(); ++i) {
          if (items_[i].element.prob < min_prob) {
            min_prob = items_[i].element.prob;
            min_idx = i;
          }
        }
        if (item.element.prob <= min_prob) {
          ++stats_.shed_incoming;
          return true;  // admitted-and-shed: the push itself succeeded
        }
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(min_idx));
        ++stats_.shed_low_prob;
        break;
      }
    }
  }
  items_.push_back(std::move(item));
  ++stats_.enqueued;
  stats_.peak_depth = std::max(stats_.peak_depth, items_.size());
  lock.Release();
  can_pop_.NotifyOne();
  return true;
}

void BoundedIngestQueue::CloseProducer() {
  {
    MutexLock lock(mu_);
    producer_closed_ = true;
  }
  can_pop_.NotifyAll();
  can_push_.NotifyAll();
}

void BoundedIngestQueue::RequestStop() {
  {
    MutexLock lock(mu_);
    stop_requested_ = true;
  }
  can_pop_.NotifyAll();
  can_push_.NotifyAll();
}

size_t BoundedIngestQueue::PopBatch(std::vector<IngestItem>* out,
                                    size_t max_items, uint64_t wait_ms) {
  out->clear();
  if (max_items == 0) return 0;
  MutexLock lock(mu_);
  if (items_.empty()) {
    can_pop_.WaitFor(mu_, std::chrono::milliseconds(wait_ms), [this]() {
      mu_.AssertHeld();
      return !items_.empty() || producer_closed_ || stop_requested_;
    });
  }
  const size_t n = std::min(max_items, items_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
  }
  stats_.dequeued += n;
  lock.Release();
  if (n > 0) can_push_.NotifyAll();
  return n;
}

bool BoundedIngestQueue::drained() const {
  MutexLock lock(mu_);
  return (producer_closed_ || stop_requested_) && items_.empty();
}

size_t BoundedIngestQueue::depth() const {
  MutexLock lock(mu_);
  return items_.size();
}

double BoundedIngestQueue::pressure() const {
  MutexLock lock(mu_);
  return static_cast<double>(items_.size()) / static_cast<double>(capacity_);
}

QueueStats BoundedIngestQueue::StatsSnapshot() const {
  MutexLock lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// DegradationLadder
// ---------------------------------------------------------------------------

DegradationLadder::DegradationLadder(Options options, Listener listener)
    : options_(options), listener_(std::move(listener)) {
  PSKY_CHECK_MSG(options_.release_pressure < options_.engage_pressure,
                 "ladder hysteresis requires release < engage pressure");
}

int DegradationLadder::Observe(double pressure) {
  if (pressure >= options_.engage_pressure) {
    ++above_streak_;
    below_streak_ = 0;
  } else if (pressure <= options_.release_pressure) {
    ++below_streak_;
    above_streak_ = 0;
  } else {
    // Between the thresholds: both streaks reset, the rung holds. This
    // dead band is the hysteresis.
    above_streak_ = 0;
    below_streak_ = 0;
  }

  const int old_rung = stats_.rung;
  if (above_streak_ >= options_.engage_hold &&
      stats_.rung < options_.max_rung) {
    ++stats_.rung;
    ++stats_.escalations;
    above_streak_ = 0;
  } else if (below_streak_ >= options_.release_hold && stats_.rung > 0) {
    --stats_.rung;
    ++stats_.recoveries;
    below_streak_ = 0;
  }
  stats_.peak_rung = std::max(stats_.peak_rung, stats_.rung);
  if (stats_.rung != old_rung && listener_) {
    listener_(old_rung, stats_.rung, pressure);
  }
  return stats_.rung;
}

DegradationLadder::Effects DegradationLadder::effects() const {
  Effects e;
  if (stats_.rung >= 1) e.batch_multiplier = options_.batch_multiplier;
  if (stats_.rung >= 2) {
    e.suspend_oracle = true;
    e.segment_budget_divisor = options_.segment_budget_divisor;
  }
  if (stats_.rung >= 3) e.audit_stretch = options_.audit_stretch;
  if (stats_.rung >= 4) e.checkpoint_stretch = options_.checkpoint_stretch;
  return e;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

Watchdog::Watchdog(Options options, AlarmFn alarm)
    : options_(options), alarm_(std::move(alarm)) {
  PSKY_CHECK_MSG(options_.poll_ms > 0, "watchdog poll interval must be > 0");
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  MutexLock lock(mu_);
  // kStopping: a Stop() owns the join but has not finished; starting a
  // fresh thread would race the join on thread_.
  if (state_ != State::kIdle) return;
  state_ = State::kRunning;
  thread_ = std::thread([this]() { Loop(); });
}

void Watchdog::Stop() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    switch (state_) {
      case State::kIdle:
        return;
      case State::kRunning:
        // This caller wins the join. Claim the handle under the lock so
        // no other Stop (or Start) can touch it.
        state_ = State::kStopping;
        to_join = std::move(thread_);
        break;
      case State::kStopping:
        // Another Stop is joining; wait until it reports completion so
        // every Stop() return means "the poll thread is gone".
        stop_cv_.Wait(mu_, [this]() {
          mu_.AssertHeld();
          return state_ == State::kIdle;
        });
        return;
    }
  }
  stop_cv_.NotifyAll();  // wake the poll loop out of its interval wait
  to_join.join();
  {
    MutexLock lock(mu_);
    state_ = State::kIdle;
  }
  stop_cv_.NotifyAll();  // release Stops that lost the claim
}

Watchdog::Stats Watchdog::StatsSnapshot() const {
  MutexLock lock(mu_);
  return stats_;
}

void Watchdog::Loop() {
  uint64_t prev_step = last_step_.load(std::memory_order_relaxed);
  uint64_t gap_ms = 0;
  bool step_alarmed = false;
  bool pool_alarmed = false;
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_cv_.WaitFor(mu_, std::chrono::milliseconds(options_.poll_ms),
                           [this]() {
                             mu_.AssertHeld();
                             return state_ == State::kStopping;
                           })) {
        return;
      }
    }

    const uint64_t step = last_step_.load(std::memory_order_relaxed);
    if (step != prev_step || !busy_.load(std::memory_order_relaxed)) {
      prev_step = step;
      gap_ms = 0;
      step_alarmed = false;
    } else {
      gap_ms += options_.poll_ms;
      bool fire = false;
      {
        MutexLock lock(mu_);
        stats_.max_step_gap_ms = std::max(stats_.max_step_gap_ms, gap_ms);
        if (gap_ms >= options_.stall_ms && !step_alarmed) {
          ++stats_.step_stalls;
          fire = true;
        }
      }
      if (fire) {
        step_alarmed = true;
        if (alarm_) {
          alarm_("pipeline stalled: no step completed for " +
                 std::to_string(gap_ms) + " ms (last step " +
                 std::to_string(step) + ")");
        }
      }
    }

    if (pool_ != nullptr) {
      const ThreadPool::Status status = pool_->GetStatus();
      const uint64_t worst =
          std::max(status.oldest_queued_ms, status.longest_running_ms);
      if (worst >= options_.task_stall_ms) {
        if (!pool_alarmed) {
          pool_alarmed = true;
          {
            MutexLock lock(mu_);
            ++stats_.pool_stalls;
          }
          if (alarm_) {
            alarm_("thread-pool task wedged: " + std::to_string(worst) +
                   " ms (queued=" + std::to_string(status.queued) +
                   " active=" + std::to_string(status.active) + ")");
          }
        }
      } else {
        pool_alarmed = false;
      }
    }
  }
}

}  // namespace psky
