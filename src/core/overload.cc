#include "core/overload.h"

#include <algorithm>

#include "base/check.h"

namespace psky {

bool ParseOverloadPolicy(std::string_view name, OverloadPolicy* out) {
  if (name == "block") {
    *out = OverloadPolicy::kBlock;
  } else if (name == "shed-oldest") {
    *out = OverloadPolicy::kShedOldest;
  } else if (name == "shed-low-prob") {
    *out = OverloadPolicy::kShedLowProb;
  } else {
    return false;
  }
  return true;
}

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "block";
    case OverloadPolicy::kShedOldest:
      return "shed-oldest";
    case OverloadPolicy::kShedLowProb:
      return "shed-low-prob";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// BoundedIngestQueue
// ---------------------------------------------------------------------------

BoundedIngestQueue::BoundedIngestQueue(size_t capacity, OverloadPolicy policy)
    : capacity_(capacity), policy_(policy) {
  PSKY_CHECK_MSG(capacity > 0, "ingest queue capacity must be positive");
}

bool BoundedIngestQueue::Push(IngestItem item) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stop_requested_ || producer_closed_) {
    ++stats_.dropped_on_stop;
    return false;
  }
  if (items_.size() >= capacity_) {
    switch (policy_) {
      case OverloadPolicy::kBlock: {
        ++stats_.producer_blocks;
        can_push_.wait(lock, [this]() {
          return items_.size() < capacity_ || stop_requested_;
        });
        if (stop_requested_) {
          ++stats_.dropped_on_stop;
          return false;
        }
        break;
      }
      case OverloadPolicy::kShedOldest: {
        items_.pop_front();
        ++stats_.shed_oldest;
        break;
      }
      case OverloadPolicy::kShedLowProb: {
        // The element with the lowest occurrence probability has the
        // lowest attainable P_sky; if the arrival itself is the weakest,
        // it is the one shed.
        size_t min_idx = 0;
        double min_prob = items_[0].element.prob;
        for (size_t i = 1; i < items_.size(); ++i) {
          if (items_[i].element.prob < min_prob) {
            min_prob = items_[i].element.prob;
            min_idx = i;
          }
        }
        if (item.element.prob <= min_prob) {
          ++stats_.shed_incoming;
          return true;  // admitted-and-shed: the push itself succeeded
        }
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(min_idx));
        ++stats_.shed_low_prob;
        break;
      }
    }
  }
  items_.push_back(std::move(item));
  ++stats_.enqueued;
  stats_.peak_depth = std::max(stats_.peak_depth, items_.size());
  lock.unlock();
  can_pop_.notify_one();
  return true;
}

void BoundedIngestQueue::CloseProducer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    producer_closed_ = true;
  }
  can_pop_.notify_all();
  can_push_.notify_all();
}

void BoundedIngestQueue::RequestStop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  can_pop_.notify_all();
  can_push_.notify_all();
}

size_t BoundedIngestQueue::PopBatch(std::vector<IngestItem>* out,
                                    size_t max_items, uint64_t wait_ms) {
  out->clear();
  if (max_items == 0) return 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (items_.empty()) {
    can_pop_.wait_for(lock, std::chrono::milliseconds(wait_ms), [this]() {
      return !items_.empty() || producer_closed_ || stop_requested_;
    });
  }
  const size_t n = std::min(max_items, items_.size());
  for (size_t i = 0; i < n; ++i) {
    out->push_back(std::move(items_.front()));
    items_.pop_front();
  }
  stats_.dequeued += n;
  lock.unlock();
  if (n > 0) can_push_.notify_all();
  return n;
}

bool BoundedIngestQueue::drained() const {
  std::lock_guard<std::mutex> lock(mu_);
  return (producer_closed_ || stop_requested_) && items_.empty();
}

size_t BoundedIngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

double BoundedIngestQueue::pressure() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<double>(items_.size()) / static_cast<double>(capacity_);
}

QueueStats BoundedIngestQueue::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// ---------------------------------------------------------------------------
// DegradationLadder
// ---------------------------------------------------------------------------

DegradationLadder::DegradationLadder(Options options, Listener listener)
    : options_(options), listener_(std::move(listener)) {
  PSKY_CHECK_MSG(options_.release_pressure < options_.engage_pressure,
                 "ladder hysteresis requires release < engage pressure");
}

int DegradationLadder::Observe(double pressure) {
  if (pressure >= options_.engage_pressure) {
    ++above_streak_;
    below_streak_ = 0;
  } else if (pressure <= options_.release_pressure) {
    ++below_streak_;
    above_streak_ = 0;
  } else {
    // Between the thresholds: both streaks reset, the rung holds. This
    // dead band is the hysteresis.
    above_streak_ = 0;
    below_streak_ = 0;
  }

  const int old_rung = stats_.rung;
  if (above_streak_ >= options_.engage_hold &&
      stats_.rung < options_.max_rung) {
    ++stats_.rung;
    ++stats_.escalations;
    above_streak_ = 0;
  } else if (below_streak_ >= options_.release_hold && stats_.rung > 0) {
    --stats_.rung;
    ++stats_.recoveries;
    below_streak_ = 0;
  }
  stats_.peak_rung = std::max(stats_.peak_rung, stats_.rung);
  if (stats_.rung != old_rung && listener_) {
    listener_(old_rung, stats_.rung, pressure);
  }
  return stats_.rung;
}

DegradationLadder::Effects DegradationLadder::effects() const {
  Effects e;
  if (stats_.rung >= 1) e.batch_multiplier = options_.batch_multiplier;
  if (stats_.rung >= 2) {
    e.suspend_oracle = true;
    e.segment_budget_divisor = options_.segment_budget_divisor;
  }
  if (stats_.rung >= 3) e.audit_stretch = options_.audit_stretch;
  if (stats_.rung >= 4) e.checkpoint_stretch = options_.checkpoint_stretch;
  return e;
}

// ---------------------------------------------------------------------------
// Watchdog
// ---------------------------------------------------------------------------

Watchdog::Watchdog(Options options, AlarmFn alarm)
    : options_(options), alarm_(std::move(alarm)) {
  PSKY_CHECK_MSG(options_.poll_ms > 0, "watchdog poll interval must be > 0");
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this]() { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

Watchdog::Stats Watchdog::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Watchdog::Loop() {
  uint64_t prev_step = last_step_.load(std::memory_order_relaxed);
  uint64_t gap_ms = 0;
  bool step_alarmed = false;
  bool pool_alarmed = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.poll_ms),
                            [this]() { return stopping_; })) {
        return;
      }
    }

    const uint64_t step = last_step_.load(std::memory_order_relaxed);
    if (step != prev_step || !busy_.load(std::memory_order_relaxed)) {
      prev_step = step;
      gap_ms = 0;
      step_alarmed = false;
    } else {
      gap_ms += options_.poll_ms;
      bool fire = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.max_step_gap_ms = std::max(stats_.max_step_gap_ms, gap_ms);
        if (gap_ms >= options_.stall_ms && !step_alarmed) {
          ++stats_.step_stalls;
          fire = true;
        }
      }
      if (fire) {
        step_alarmed = true;
        if (alarm_) {
          alarm_("pipeline stalled: no step completed for " +
                 std::to_string(gap_ms) + " ms (last step " +
                 std::to_string(step) + ")");
        }
      }
    }

    if (pool_ != nullptr) {
      const ThreadPool::Status status = pool_->GetStatus();
      const uint64_t worst =
          std::max(status.oldest_queued_ms, status.longest_running_ms);
      if (worst >= options_.task_stall_ms) {
        if (!pool_alarmed) {
          pool_alarmed = true;
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.pool_stalls;
          }
          if (alarm_) {
            alarm_("thread-pool task wedged: " + std::to_string(worst) +
                   " ms (queued=" + std::to_string(status.queued) +
                   " active=" + std::to_string(status.active) + ")");
          }
        }
      } else {
        pool_alarmed = false;
      }
    }
  }
}

}  // namespace psky
