#include "core/possible_worlds.h"

#include "base/check.h"
#include "geom/dominance.h"

namespace psky {

double SkylineProbabilityByEnumeration(
    const std::vector<UncertainElement>& elems, size_t index) {
  const size_t n = elems.size();
  PSKY_CHECK_MSG(n <= kMaxEnumerationElements,
                 "enumeration oracle limited to small sets");
  PSKY_CHECK(index < n);

  double total = 0.0;
  const uint64_t worlds = uint64_t{1} << n;
  for (uint64_t world = 0; world < worlds; ++world) {
    if ((world & (uint64_t{1} << index)) == 0) continue;  // a not in W
    // Is elems[index] on the skyline of this world?
    bool on_skyline = true;
    for (size_t j = 0; j < n && on_skyline; ++j) {
      if ((world & (uint64_t{1} << j)) == 0) continue;
      if (Dominates(elems[j].pos, elems[index].pos)) on_skyline = false;
    }
    if (!on_skyline) continue;
    double pw = 1.0;
    for (size_t j = 0; j < n; ++j) {
      const bool present = (world & (uint64_t{1} << j)) != 0;
      pw *= present ? elems[j].prob : (1.0 - elems[j].prob);
    }
    total += pw;
  }
  return total;
}

double SkylineProbabilityByFormula(const std::vector<UncertainElement>& elems,
                                   size_t index) {
  PSKY_CHECK(index < elems.size());
  double p = elems[index].prob;
  for (size_t j = 0; j < elems.size(); ++j) {
    if (j == index) continue;
    if (Dominates(elems[j].pos, elems[index].pos)) {
      p *= 1.0 - elems[j].prob;
    }
  }
  return p;
}

std::vector<double> AllSkylineProbabilities(
    const std::vector<UncertainElement>& elems) {
  std::vector<double> out(elems.size());
  for (size_t i = 0; i < elems.size(); ++i) {
    out[i] = SkylineProbabilityByFormula(elems, i);
  }
  return out;
}

double PnewOf(const std::vector<UncertainElement>& elems, size_t index) {
  PSKY_CHECK(index < elems.size());
  double p = 1.0;
  for (size_t j = 0; j < elems.size(); ++j) {
    if (elems[j].seq > elems[index].seq &&
        Dominates(elems[j].pos, elems[index].pos)) {
      p *= 1.0 - elems[j].prob;
    }
  }
  return p;
}

double PoldOf(const std::vector<UncertainElement>& elems, size_t index) {
  PSKY_CHECK(index < elems.size());
  double p = 1.0;
  for (size_t j = 0; j < elems.size(); ++j) {
    if (elems[j].seq < elems[index].seq &&
        Dominates(elems[j].pos, elems[index].pos)) {
      p *= 1.0 - elems[j].prob;
    }
  }
  return p;
}

}  // namespace psky
