#include "core/msky_operator.h"

#include <algorithm>
#include <utility>

namespace psky {

MskyOperator::MskyOperator(int dims, std::vector<double> thresholds,
                           SkyTree::Options options)
    : tree_(dims, std::move(thresholds), options) {}

void MskyOperator::Insert(const UncertainElement& e) {
  UncertainElement clamped = e;
  clamped.prob = ClampProb(clamped.prob);
  tree_.Arrive(clamped);
}

void MskyOperator::Expire(const UncertainElement& e) { tree_.Expire(e); }

std::vector<SkylineMember> MskyOperator::Skyline(int i) const {
  PSKY_CHECK(i >= 1 && i <= num_thresholds());
  std::vector<SkylineMember> out;
  tree_.ForEach([&out, i](const SkylineMember& m, int band) {
    if (band <= i) out.push_back(m);
  });
  std::sort(out.begin(), out.end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return out;
}

std::vector<SkylineMember> MskyOperator::AdHocQuery(double q_prime) const {
  return tree_.CollectAtLeast(q_prime);
}

size_t MskyOperator::AdHocCount(double q_prime) const {
  return tree_.CountAtLeast(q_prime);
}

}  // namespace psky
