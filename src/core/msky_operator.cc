#include "core/msky_operator.h"

#include <algorithm>
#include <future>
#include <utility>

namespace psky {

namespace {

// Runs one independent job per item, either sequentially or fanned out
// across `pool`. The jobs must be read-only with respect to shared state;
// results come back in input order either way.
template <typename Result, typename Job>
std::vector<Result> FanOut(size_t count, ThreadPool* pool, const Job& job) {
  std::vector<Result> out(count);
  if (pool == nullptr || pool->num_threads() <= 1 || count <= 1) {
    for (size_t i = 0; i < count; ++i) out[i] = job(i);
    return out;
  }
  std::vector<std::future<Result>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(pool->Async([&job, i] { return job(i); }));
  }
  for (size_t i = 0; i < count; ++i) out[i] = futures[i].get();
  return out;
}

}  // namespace

MskyOperator::MskyOperator(int dims, std::vector<double> thresholds,
                           SkyTree::Options options)
    : tree_(dims, std::move(thresholds), options) {}

void MskyOperator::Insert(const UncertainElement& e) {
  UncertainElement clamped = e;
  clamped.prob = ClampProb(clamped.prob);
  tree_.Arrive(clamped);
}

void MskyOperator::Expire(const UncertainElement& e) { tree_.Expire(e); }

std::vector<SkylineMember> MskyOperator::Skyline(int i) const {
  PSKY_CHECK(i >= 1 && i <= num_thresholds());
  std::vector<SkylineMember> out;
  out.reserve(tree_.CountUpToBand(i));
  tree_.ForEach([&out, i](const SkylineMember& m, int band) {
    if (band <= i) out.push_back(m);
  });
  std::sort(out.begin(), out.end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return out;
}

std::vector<SkylineMember> MskyOperator::AdHocQuery(double q_prime) const {
  return tree_.CollectAtLeast(q_prime);
}

size_t MskyOperator::AdHocCount(double q_prime) const {
  return tree_.CountAtLeast(q_prime);
}

std::vector<std::vector<SkylineMember>> MskyOperator::SkylineAll(
    ThreadPool* pool) const {
  const size_t k = static_cast<size_t>(num_thresholds());
  return FanOut<std::vector<SkylineMember>>(
      k, pool, [this](size_t i) { return Skyline(static_cast<int>(i) + 1); });
}

std::vector<std::vector<SkylineMember>> MskyOperator::AdHocQueryMany(
    const std::vector<double>& q_primes, ThreadPool* pool) const {
  return FanOut<std::vector<SkylineMember>>(
      q_primes.size(), pool,
      [this, &q_primes](size_t i) { return AdHocQuery(q_primes[i]); });
}

std::vector<size_t> MskyOperator::AdHocCountMany(
    const std::vector<double>& q_primes, ThreadPool* pool) const {
  return FanOut<size_t>(q_primes.size(), pool, [this, &q_primes](size_t i) {
    return AdHocCount(q_primes[i]);
  });
}

// The ctl-aware batch variants share one QueryControl across all fanned-out
// traversals — safe because the control is read-only; each traversal keeps
// its own QueryTicker inside the tree query.

bool MskyOperator::AdHocQueryMany(
    const std::vector<double>& q_primes, const QueryControl& ctl,
    ThreadPool* pool, std::vector<std::vector<SkylineMember>>* out) const {
  using One = std::pair<bool, std::vector<SkylineMember>>;
  std::vector<One> results =
      FanOut<One>(q_primes.size(), pool, [this, &q_primes, &ctl](size_t i) {
        One r;
        r.first = tree_.CollectAtLeast(q_primes[i], ctl, &r.second);
        return r;
      });
  out->clear();
  out->reserve(results.size());
  bool completed = true;
  for (One& r : results) {
    completed = completed && r.first;
    out->push_back(std::move(r.second));
  }
  return completed;
}

bool MskyOperator::AdHocCountMany(const std::vector<double>& q_primes,
                                  const QueryControl& ctl, ThreadPool* pool,
                                  std::vector<size_t>* out) const {
  using One = std::pair<bool, size_t>;
  std::vector<One> results =
      FanOut<One>(q_primes.size(), pool, [this, &q_primes, &ctl](size_t i) {
        One r{false, 0};
        r.first = tree_.CountAtLeast(q_primes[i], ctl, &r.second);
        return r;
      });
  out->clear();
  out->reserve(results.size());
  bool completed = true;
  for (const One& r : results) {
    completed = completed && r.first;
    out->push_back(r.second);
  }
  return completed;
}

}  // namespace psky
