// Probabilistic top-k skyline over sliding windows (paper Section VI):
// the k elements with the highest skyline probabilities among those with
// P_sky >= q.
//
// Maintenance is identical to SSKY; queries run best-first on the
// P_sky,max aggregates — the paper's "treat R1 and R2 as heap trees".

#ifndef PSKY_CORE_TOPK_OPERATOR_H_
#define PSKY_CORE_TOPK_OPERATOR_H_

#include <vector>

#include "core/operator.h"
#include "core/sky_tree.h"

namespace psky {

/// Continuous top-k probabilistic skyline operator.
class TopKSkylineOperator {
 public:
  /// `q` is the minimum admissible skyline probability; `k` the result
  /// size cap.
  TopKSkylineOperator(int dims, double q, size_t k,
                      SkyTree::Options options = {});

  void Insert(const UncertainElement& e);
  void Expire(const UncertainElement& e);

  int dims() const { return tree_.dims(); }
  double threshold() const { return tree_.thresholds().front(); }
  size_t k() const { return k_; }
  size_t candidate_count() const { return tree_.size(); }

  /// The current top-k: at most k members with P_sky >= q, ordered by
  /// decreasing P_sky.
  std::vector<SkylineMember> TopK() const;

  const SkyTree& tree() const { return tree_; }

 private:
  size_t k_;
  SkyTree tree_;
};

}  // namespace psky

#endif  // PSKY_CORE_TOPK_OPERATOR_H_
