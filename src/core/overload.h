// Overload management for the streaming pipeline: a bounded ingest queue
// with pluggable pressure policies, a hysteresis-driven degradation
// ladder, and a watchdog for stalled steps and wedged pool tasks.
//
// The paper's sliding-window semantics give load shedding a principled
// currency that random dropping lacks: an element with a low occurrence
// probability enters the window with a proportionally low P_sky ceiling,
// so under pressure it is the cheapest element to sacrifice (shed-low-prob
// policy); and the oldest *queued* element is the one closest to expiring
// out of the window anyway (shed-oldest policy). Every shed decision is
// counted exactly, per policy, so "produced = processed + shed" is an
// auditable invariant, not a hope.
//
// Nothing here prints or allocates on the disarmed path; transitions are
// reported through caller-supplied listeners (library code stays silent
// per the no-iostream convention).

#ifndef PSKY_CORE_OVERLOAD_H_
#define PSKY_CORE_OVERLOAD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "base/thread_pool.h"
#include "stream/element.h"

namespace psky {

/// What a full ingest queue does with the next element.
enum class OverloadPolicy {
  kBlock,        ///< producer waits for space (lossless; backpressure)
  kShedOldest,   ///< drop the oldest queued element (closest to expiry)
  kShedLowProb,  ///< drop the queued element with the lowest occurrence
                 ///< probability (lowest P_sky ceiling, paper Sec. III)
};

bool ParseOverloadPolicy(std::string_view name, OverloadPolicy* out);
const char* OverloadPolicyName(OverloadPolicy policy);

/// One queued stream element plus the source position *after* producing
/// it. Carrying positions with the element (instead of reading the live
/// source from the consumer) keeps checkpoints race-free when ingestion
/// runs on its own thread, and exact under shedding: a checkpoint resumes
/// from the position after the last *processed* element, so shed or
/// still-queued elements are re-read on restart rather than lost.
struct IngestItem {
  UncertainElement element;
  uint64_t produced_after = 0;   ///< elements produced by the source so far
  uint64_t next_seq_after = 0;   ///< next sequence the source will assign
  uint64_t lines_after = 0;      ///< CSV lines consumed (0 for generators)
  uint64_t skipped_after = 0;    ///< cumulative bad lines skipped
  uint64_t clamped_after = 0;    ///< cumulative probabilities clamped
};

/// Exact per-policy drop accounting. Monotone counters; the invariant
/// enqueued == dequeued + shed_oldest + shed_low_prob + dropped_on_stop +
/// depth() holds at every quiescent point, and produced elements that
/// were never admitted are in shed_incoming.
struct QueueStats {
  uint64_t enqueued = 0;
  uint64_t dequeued = 0;
  uint64_t shed_oldest = 0;     ///< queued elements dropped by kShedOldest
  uint64_t shed_low_prob = 0;   ///< queued elements dropped by kShedLowProb
  uint64_t shed_incoming = 0;   ///< arrivals rejected by kShedLowProb
  uint64_t dropped_on_stop = 0; ///< pushes refused after RequestStop
  uint64_t producer_blocks = 0; ///< times a push actually waited (kBlock)
  size_t peak_depth = 0;
};

/// Bounded MPSC-safe ingest queue between a stream source and the
/// operator. All methods are thread-safe.
class BoundedIngestQueue {
 public:
  BoundedIngestQueue(size_t capacity, OverloadPolicy policy);

  /// Producer side: admits `item` per the pressure policy. Under kBlock a
  /// full queue makes this wait; under the shed policies it never waits.
  /// Returns false only after RequestStop (the item is counted dropped).
  bool Push(IngestItem item) PSKY_EXCLUDES(mu_);

  /// Marks the producer done: consumers drain the remainder, then PopBatch
  /// returns 0 forever.
  void CloseProducer() PSKY_EXCLUDES(mu_);

  /// Emergency unblock (signal path): pending and future pushes fail fast;
  /// queued items remain drainable.
  void RequestStop() PSKY_EXCLUDES(mu_);

  /// Consumer side: appends up to `max_items` items to `*out` (which is
  /// cleared first), blocking up to `wait_ms` for the first one. Returns
  /// the number delivered; 0 means timeout, or closed-and-drained (check
  /// drained()).
  size_t PopBatch(std::vector<IngestItem>* out, size_t max_items,
                  uint64_t wait_ms) PSKY_EXCLUDES(mu_);

  /// True once the producer closed (or stop was requested) and every
  /// queued item has been popped.
  bool drained() const PSKY_EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  OverloadPolicy policy() const { return policy_; }
  size_t depth() const PSKY_EXCLUDES(mu_);
  /// Instantaneous fullness in [0, 1]; the degradation ladder's input.
  double pressure() const PSKY_EXCLUDES(mu_);
  QueueStats StatsSnapshot() const PSKY_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  const OverloadPolicy policy_;
  mutable Mutex mu_{"ingest-queue", lockrank::kIngestQueue};
  CondVar can_push_;
  CondVar can_pop_;
  std::deque<IngestItem> items_ PSKY_GUARDED_BY(mu_);
  bool producer_closed_ PSKY_GUARDED_BY(mu_) = false;
  bool stop_requested_ PSKY_GUARDED_BY(mu_) = false;
  QueueStats stats_ PSKY_GUARDED_BY(mu_);
};

/// Hysteresis-driven overload response. Pressure observations (queue
/// fullness in [0,1]) move the ladder up one rung at a time after
/// `engage_hold` consecutive observations above `engage_pressure`, and
/// back down after `release_hold` consecutive observations below
/// `release_pressure` — the gap between the two thresholds plus the hold
/// counts is what prevents rung flapping at a noisy boundary.
///
/// Rungs trade auxiliary work for ingest headroom, mildest first:
///   1  widen the consumer batch (amortize per-batch overheads)
///   2  suspend the asynchronous audit shadow-oracle replay and shrink
///      the disk window store's resident-segment budget (cheap,
///      reversible RSS relief for out-of-core windows)
///   3  stretch the slice-audit cadence (sampled audit)
///   4  stretch the checkpoint interval
/// Effects are cumulative: rung 3 implies rungs 1 and 2.
class DegradationLadder {
 public:
  struct Options {
    double engage_pressure = 0.85;
    double release_pressure = 0.30;
    int engage_hold = 4;
    int release_hold = 16;
    int max_rung = 4;
    size_t batch_multiplier = 4;       ///< rung >= 1
    size_t segment_budget_divisor = 2; ///< rung >= 2
    uint64_t audit_stretch = 8;        ///< rung >= 3
    uint64_t checkpoint_stretch = 4;   ///< rung >= 4
  };

  /// What the pipeline should currently be doing.
  struct Effects {
    size_t batch_multiplier = 1;
    bool suspend_oracle = false;
    /// Divide the disk window store's resident-segment budget by this
    /// (SegmentStore::SetResidentBudget clamps at its minimum); 1
    /// restores the configured budget.
    size_t segment_budget_divisor = 1;
    uint64_t audit_stretch = 1;
    uint64_t checkpoint_stretch = 1;
  };

  struct Stats {
    uint64_t escalations = 0;
    uint64_t recoveries = 0;
    int rung = 0;
    int peak_rung = 0;
  };

  /// Called on every rung change, from the observing thread.
  using Listener =
      std::function<void(int old_rung, int new_rung, double pressure)>;

  DegradationLadder() : DegradationLadder(Options()) {}
  explicit DegradationLadder(Options options, Listener listener = nullptr);

  /// Feeds one pressure observation; returns the rung after applying
  /// hysteresis. Not thread-safe; call from the consumer loop.
  int Observe(double pressure);

  int rung() const { return stats_.rung; }
  Effects effects() const;
  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Listener listener_;
  Stats stats_;
  int above_streak_ = 0;
  int below_streak_ = 0;
};

/// Detects a wedged pipeline: a consumer that claims to be busy but has
/// not completed a step within `stall_ms`, or a thread-pool task queued or
/// running longer than `task_stall_ms`. Alarms are edge-triggered — one
/// per excursion, re-armed when the condition clears — so a hard wedge
/// produces one alarm, not one per poll.
class Watchdog {
 public:
  struct Options {
    uint64_t poll_ms = 100;
    uint64_t stall_ms = 2000;
    uint64_t task_stall_ms = 2000;
  };

  struct Stats {
    uint64_t step_stalls = 0;
    uint64_t pool_stalls = 0;
    uint64_t max_step_gap_ms = 0;
  };

  /// Invoked from the watchdog thread; must be thread-safe.
  using AlarmFn = std::function<void(const std::string& what)>;

  Watchdog(Options options, AlarmFn alarm);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Optional: also monitor `pool` for wedged tasks. Set before Start().
  void WatchPool(const ThreadPool* pool) { pool_ = pool; }

  /// Starts the poll thread. No-op while it is running or while a
  /// concurrent Stop() is still joining it.
  void Start() PSKY_EXCLUDES(mu_);

  /// Stops and joins the poll thread. Idempotent and safe to call
  /// concurrently: one caller joins, the rest block until the join
  /// completes (previously two concurrent Stops could both call
  /// thread_.join() — undefined behavior).
  void Stop() PSKY_EXCLUDES(mu_);

  /// Heartbeat from the consumer loop: one completed pipeline step.
  void OnStep(uint64_t step) {
    last_step_.store(step, std::memory_order_relaxed);
  }

  /// The consumer is busy processing (true) vs. idle waiting for input
  /// (false). Stall detection only runs while busy — a starved consumer
  /// is not a stalled one.
  void SetBusy(bool busy) { busy_.store(busy, std::memory_order_relaxed); }

  Stats StatsSnapshot() const PSKY_EXCLUDES(mu_);

 private:
  /// Thread lifecycle: kIdle -> (Start) -> kRunning -> (first Stop)
  /// -> kStopping -> (join done) -> kIdle. Exactly the kRunning->
  /// kStopping winner moves thread_ out and joins it.
  enum class State { kIdle, kRunning, kStopping };

  void Loop() PSKY_EXCLUDES(mu_);

  Options options_;
  AlarmFn alarm_;
  const ThreadPool* pool_ = nullptr;
  std::atomic<uint64_t> last_step_{0};
  std::atomic<bool> busy_{false};
  mutable Mutex mu_{"watchdog", lockrank::kWatchdog};
  /// Doubles as the poll-loop alarm clock and the join-completion
  /// broadcast for waiting Stop() callers.
  CondVar stop_cv_;
  State state_ PSKY_GUARDED_BY(mu_) = State::kIdle;
  Stats stats_ PSKY_GUARDED_BY(mu_);
  std::thread thread_ PSKY_GUARDED_BY(mu_);
};

}  // namespace psky

#endif  // PSKY_CORE_OVERLOAD_H_
