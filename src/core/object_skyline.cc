#include "core/object_skyline.h"

#include <algorithm>

#include "base/check.h"
#include "geom/dominance.h"
#include "geom/mbr.h"

namespace psky {

UncertainObject DiscretizeByMonteCarlo(
    uint64_t id, int m, Rng& rng, const std::function<Point(Rng&)>& sampler) {
  PSKY_CHECK_MSG(m > 0, "instance count must be positive");
  UncertainObject obj;
  obj.id = id;
  obj.instances.reserve(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) obj.instances.push_back(sampler(rng));
  return obj;
}

double ObjectSkylineProbability(const std::vector<UncertainObject>& window,
                                size_t index) {
  PSKY_CHECK(index < window.size());
  const UncertainObject& u = window[index];
  PSKY_CHECK(!u.instances.empty());
  double total = 0.0;
  for (const Point& inst : u.instances) {
    double prod = 1.0;
    for (size_t v = 0; v < window.size(); ++v) {
      if (v == index) continue;
      const UncertainObject& other = window[v];
      size_t dominating = 0;
      for (const Point& vi : other.instances) {
        if (Dominates(vi, inst)) ++dominating;
      }
      prod *= 1.0 - static_cast<double>(dominating) /
                        static_cast<double>(other.instances.size());
    }
    total += prod;
  }
  return total / static_cast<double>(u.instances.size());
}

ObjectSkylineOperator::ObjectSkylineOperator(int dims, double q)
    : dims_(dims), q_(q), instances_(dims) {
  PSKY_CHECK_MSG(q > 0.0 && q <= 1.0, "threshold must be in (0, 1]");
}

void ObjectSkylineOperator::Insert(const UncertainObject& obj) {
  PSKY_CHECK_MSG(!obj.instances.empty(), "object must have instances");
  PSKY_CHECK_MSG(slot_by_id_.find(obj.id) == slot_by_id_.end(),
                 "duplicate live object id");
  PSKY_CHECK_MSG(obj.instances.size() < (uint64_t{1} << 20),
                 "too many instances per object");
  const uint64_t slot = next_slot_++;
  for (size_t i = 0; i < obj.instances.size(); ++i) {
    PSKY_CHECK(obj.instances[i].dims() == dims_);
    instances_.Insert(obj.instances[i], PackId(slot, i));
  }
  slot_by_id_[obj.id] = slot;
  objects_by_slot_[slot] = obj;
}

void ObjectSkylineOperator::Expire(uint64_t id) {
  auto it = slot_by_id_.find(id);
  if (it == slot_by_id_.end()) return;
  const uint64_t slot = it->second;
  const UncertainObject& obj = objects_by_slot_.at(slot);
  for (size_t i = 0; i < obj.instances.size(); ++i) {
    const bool erased = instances_.Erase(obj.instances[i], PackId(slot, i));
    PSKY_CHECK_MSG(erased, "instance missing from index");
  }
  objects_by_slot_.erase(slot);
  slot_by_id_.erase(it);
}

double ObjectSkylineOperator::SkylineProbabilityOfSlot(uint64_t slot) const {
  const UncertainObject& u = objects_by_slot_.at(slot);
  double total = 0.0;
  // Reused dominance-count scratch; sized lazily per query.
  std::unordered_map<uint64_t, size_t> dominating;
  for (const Point& inst : u.instances) {
    dominating.clear();
    // All indexed instances inside the dominance region of `inst`.
    instances_.Traverse(
        [&inst](const Mbr& mbr) {
          for (int i = 0; i < inst.dims(); ++i) {
            if (mbr.min()[i] > inst[i]) return false;
          }
          return true;
        },
        [&inst, &dominating, slot](const RTree::Item& item) {
          if (SlotOf(item.id) == slot) return;
          if (Dominates(item.pos, inst)) ++dominating[SlotOf(item.id)];
        });
    double prod = 1.0;
    for (const auto& [other_slot, count] : dominating) {
      const auto& other = objects_by_slot_.at(other_slot);
      prod *= 1.0 - static_cast<double>(count) /
                        static_cast<double>(other.instances.size());
    }
    total += prod;
  }
  return total / static_cast<double>(u.instances.size());
}

double ObjectSkylineOperator::SkylineProbability(uint64_t id) const {
  auto it = slot_by_id_.find(id);
  if (it == slot_by_id_.end()) return 0.0;
  return SkylineProbabilityOfSlot(it->second);
}

std::vector<uint64_t> ObjectSkylineOperator::Skyline() const {
  std::vector<uint64_t> out;
  for (const auto& [id, slot] : slot_by_id_) {
    if (SkylineProbabilityOfSlot(slot) >= q_) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace psky
