// Durable operator state: versioned, CRC-checksummed binary snapshots of a
// sliding-window skyline pipeline.
//
// A checkpoint captures everything needed to resume a continuous q-skyline
// query after a process restart: the operator/window configuration, the
// stream position, and the full ordered window contents. Restoring is
// deterministic replay — the window elements are re-inserted oldest-first
// into a fresh operator, which rebuilds exactly the candidate set and
// probability state of the original run (the operator state is a function
// of the window contents; see the paper's Theorems 2-4).
//
// File layout (all integers little-endian, doubles IEEE-754 bit patterns):
//
//   [0,  8)   magic "PSKYCKPT"
//   [8, 12)   format version (u32, currently 2)
//   [12,16)   CRC-32 of the payload
//   [16,24)   payload size in bytes (u64)
//   [24, ..)  payload (see EncodeCheckpoint)
//
// Version 2 prepends a build-info stamp (git hash + build type of the
// producing binary, see base/build_info.h) to the payload so post-mortems
// can identify which binary wrote a snapshot.
//
// Writers persist atomically: the bytes go to "<path>.tmp" which is then
// renamed over <path>, so a crash mid-write never clobbers an existing
// good checkpoint. Readers reject bad magic, unknown versions, truncated
// files and CRC mismatches with a diagnostic — never a crash.

#ifndef PSKY_CORE_CHECKPOINT_H_
#define PSKY_CORE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/retry.h"
#include "core/operator.h"
#include "stream/element.h"

namespace psky {

/// Which sliding-window model the checkpointed pipeline ran.
enum class WindowKind : uint8_t {
  kCount = 0,  ///< most recent `window_capacity` elements
  kTime = 1,   ///< most recent `time_span` seconds
};

/// Complete resumable state of a streaming skyline pipeline.
struct CheckpointState {
  /// Build-info stamp of the binary that wrote the snapshot. Filled by
  /// EncodeCheckpoint (writers need not set it) and recovered by
  /// DecodeCheckpoint.
  std::string producer;

  // --- operator / window configuration ---------------------------------
  int dims = 2;
  double q = 0.3;
  WindowKind window_kind = WindowKind::kCount;
  uint64_t window_capacity = 0;  ///< count windows; 0 for time windows
  double time_span = 0.0;        ///< time windows; 0 for count windows

  // --- stream position --------------------------------------------------
  /// Elements fed into the operator so far (pipeline steps).
  uint64_t elements_consumed = 0;
  /// Raw input lines read so far (CSV sources; 0 for generators).
  uint64_t lines_consumed = 0;
  /// Next sequence number the source will assign.
  uint64_t next_seq = 0;

  // --- ingestion counters (carried across restarts for reporting) ------
  uint64_t bad_lines_skipped = 0;
  uint64_t probs_clamped = 0;
  uint64_t ooo_dropped = 0;

  /// Window contents, oldest first.
  std::vector<UncertainElement> window;
};

/// Serializes `state` into the versioned, checksummed binary format.
std::string EncodeCheckpoint(const CheckpointState& state);

/// Parses bytes produced by EncodeCheckpoint. On failure returns false and
/// sets `*error` (bad magic, unsupported version, truncation, CRC mismatch,
/// or malformed payload); `*out` is left unspecified.
bool DecodeCheckpoint(std::string_view bytes, CheckpointState* out,
                      std::string* error);

/// Writes `state` to `path` atomically (write "<path>.tmp", fsync, rename).
/// Returns false and sets `*error` on any I/O failure.
bool WriteCheckpointFile(const std::string& path, const CheckpointState& state,
                         std::string* error);

/// As above, but also reports the failing errno through `*out_errno` (0 for
/// non-errno failures such as an injected crash hook) so callers can tell
/// transient I/O conditions (EIO, ENOSPC, EINTR, ...) from permanent ones.
/// Honors the fault-injection sites ckpt-open/-write/-fsync/-rename
/// (base/fault_injection.h).
bool WriteCheckpointFile(const std::string& path, const CheckpointState& state,
                         std::string* error, int* out_errno);

/// Retrying wrapper: re-attempts WriteCheckpointFile under `policy` with
/// jittered exponential backoff while the failure is a transient I/O errno
/// (IsTransientIoError). Permanent failures return immediately; a
/// transient failure that outlives the budget reports exhaustion in
/// `*stats`. `*error` carries the last attempt's diagnostic on failure.
bool WriteCheckpointFileRetry(const std::string& path,
                              const CheckpointState& state,
                              const RetryPolicy& policy, RetryStats* stats,
                              std::string* error);

// --- streaming variants (out-of-core windows) ----------------------------
//
// A 100M-element disk window must never be materialized just to
// checkpoint it: the streaming writer pulls elements one at a time (e.g.
// from a SegmentStore::Cursor) and the streaming reader pushes them one
// at a time (e.g. straight into a StoredCountWindow + operator), so
// encode/decode hold at most one I/O chunk of elements in memory. The
// bytes produced are identical to WriteCheckpointFile for the same
// logical state — the CRC header is back-patched after the payload has
// streamed through an incremental CRC-32.

/// Pull-source of window elements, oldest first. Must yield exactly the
/// element count promised to the writer; returning false early fails the
/// write.
using CheckpointElementSource = std::function<bool(UncertainElement*)>;

/// Receives decoded window elements oldest-first during streaming reads.
using CheckpointElementSink = std::function<void(const UncertainElement&)>;

/// As the errno-reporting WriteCheckpointFile, but the window contents
/// come from `source` (`window_count` elements) and `state.window` is
/// ignored. Honors the same fault-injection sites and crash hooks.
bool WriteCheckpointFileStreamed(const std::string& path,
                                 const CheckpointState& state,
                                 uint64_t window_count,
                                 const CheckpointElementSource& source,
                                 std::string* error, int* out_errno);

/// Retrying wrapper mirroring WriteCheckpointFileRetry. Each attempt
/// consumes a fresh source from `source_factory` (a cursor cannot be
/// rewound mid-stream).
bool WriteCheckpointFileStreamedRetry(
    const std::string& path, const CheckpointState& state,
    uint64_t window_count,
    const std::function<CheckpointElementSource()>& source_factory,
    const RetryPolicy& policy, RetryStats* stats, std::string* error);

/// Reads and validates a checkpoint file without materializing its
/// window: configuration and counters land in `*out` (with `out->window`
/// left empty) and each window element is delivered to `sink` oldest
/// first. Validation is two-pass — the payload CRC is verified before
/// any element reaches the sink, so a corrupt file delivers nothing.
bool ReadCheckpointFileStreamed(const std::string& path, CheckpointState* out,
                                const CheckpointElementSink& sink,
                                std::string* error);

/// Reads and validates a checkpoint file. Returns false with `*error` on
/// I/O failure or any corruption.
bool ReadCheckpointFile(const std::string& path, CheckpointState* out,
                        std::string* error);

/// Canonical file name for a checkpoint taken after `elements_consumed`
/// steps: "ckpt-<20-digit count>.psky" (zero-padded so lexicographic order
/// is stream order).
std::string CheckpointFileName(uint64_t elements_consumed);

/// Checkpoint files in `dir` (by CheckpointFileName convention), newest
/// first. Ignores temp files and unrelated names. Missing or unreadable
/// directories yield an empty list.
std::vector<std::string> ListCheckpointFiles(const std::string& dir);

/// Loads the newest *valid* checkpoint in `dir`, skipping corrupt or
/// truncated files (their diagnostics are appended to `*error`). Returns
/// false when no valid checkpoint exists.
bool LoadLatestCheckpoint(const std::string& dir, CheckpointState* out,
                          std::string* error);

/// Deletes all but the `keep` newest checkpoint files in `dir`, plus any
/// stale ".tmp" leftovers from interrupted writes.
void PruneCheckpoints(const std::string& dir, size_t keep);

/// Removes ".tmp" leftovers from crashed mid-write attempts without
/// touching any completed checkpoint. Called on startup and before each
/// write so interrupted runs cannot accumulate temp wreckage. Returns the
/// number of files removed; a missing directory is a no-op.
size_t RemoveStaleCheckpointTemps(const std::string& dir);

/// Creates `dir` (and missing parents) if it does not exist, so a fresh
/// `--checkpoint-dir` works without manual setup. Returns false with a
/// diagnostic in `*error` when the path cannot be created or names a
/// non-directory.
bool EnsureCheckpointDir(const std::string& dir, std::string* error);

/// Rebuilds operator state by replaying the checkpointed window contents
/// oldest-first into `op` (which must be freshly constructed with the
/// checkpoint's dims and q).
void ReplayWindow(const CheckpointState& state, WindowSkylineOperator* op);

// --- fault injection (tests only) ---------------------------------------

/// Stages of WriteCheckpointFile where a simulated crash can be injected.
enum class CheckpointCrashPoint {
  kMidPayload,    ///< temp file holds the header + a payload prefix
  kBeforeRename,  ///< temp file complete, rename not yet performed
};

/// Test hook: return false from the hook to make WriteCheckpointFile stop
/// at that point as if the process died there — the temp file is left in
/// whatever state it reached and the target file is untouched. Pass
/// nullptr to clear.
using CheckpointCrashHook = bool (*)(CheckpointCrashPoint);
void SetCheckpointCrashHook(CheckpointCrashHook hook);

}  // namespace psky

#endif  // PSKY_CORE_CHECKPOINT_H_
