// Common interface of sliding-window probabilistic skyline operators.
//
// Both the naive reference operator (the paper's "trivial algorithm") and
// the efficient SSKY operator implement this interface, so drivers, tests
// and benchmarks can run them interchangeably. The driver contract follows
// the paper's Algorithm 1: when the window is full, Expire(oldest) is
// called before Insert(new).

#ifndef PSKY_CORE_OPERATOR_H_
#define PSKY_CORE_OPERATOR_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "stream/element.h"
#include "stream/window.h"

namespace psky {

/// A candidate-set member with its probability decomposition.
///
/// `pnew` / `pold` are restricted to the maintained candidate set S_{N,q};
/// by the paper's Theorems 2–4 this loses nothing: skyline membership
/// decided on the restricted values is exact.
struct SkylineMember {
  UncertainElement element;
  double pnew = 1.0;
  double pold = 1.0;
  double psky = 1.0;  ///< element.prob * pnew * pold
  bool in_skyline = false;
};

/// Operation counters for efficiency studies.
struct OperatorStats {
  uint64_t arrivals = 0;
  uint64_t expirations = 0;
  /// Elements dropped from S_{N,q} because P_new fell below q.
  uint64_t evictions = 0;
  /// Tree nodes (or naive entries) visited across all operations.
  uint64_t nodes_visited = 0;
  /// Individual elements whose state was read or written.
  uint64_t elements_touched = 0;
};

/// Abstract continuous q-skyline operator over a sliding window.
class WindowSkylineOperator {
 public:
  virtual ~WindowSkylineOperator() = default;

  /// Processes the arrival of a new element (the paper's Inserting()).
  virtual void Insert(const UncertainElement& e) = 0;

  /// Processes the expiry of the window's oldest element (Expiring()).
  /// `e` must be the element leaving the window; it may or may not still
  /// be in the candidate set.
  virtual void Expire(const UncertainElement& e) = 0;

  /// |S_{N,q}|: current candidate-set size.
  virtual size_t candidate_count() const = 0;

  /// |SKY_{N,q}|: current number of q-skyline elements.
  virtual size_t skyline_count() const = 0;

  /// Current q-skyline, sorted by arrival sequence.
  virtual std::vector<SkylineMember> Skyline() const = 0;

  /// Entire candidate set S_{N,q}, sorted by arrival sequence.
  virtual std::vector<SkylineMember> Candidates() const = 0;

  virtual const OperatorStats& stats() const = 0;

  virtual double threshold() const = 0;
  virtual int dims() const = 0;
};

/// Convenience driver implementing the paper's Algorithm 1 over a
/// count-based window: feeds arrivals, triggers expiries.
class StreamProcessor {
 public:
  StreamProcessor(WindowSkylineOperator* op, size_t window_size)
      : op_(op), window_(window_size) {}

  /// Advances the stream by one element.
  void Step(const UncertainElement& e) {
    if (auto expired = window_.Push(e)) {
      op_->Expire(*expired);
    }
    op_->Insert(e);
  }

  /// Advances the stream by batch.size() elements. Exactly equivalent to
  /// calling Step() on each element in order — the window ordering, the
  /// expire-before-insert interleaving and every floating-point result
  /// are bit-identical — but amortizes per-element overhead: once the
  /// window is full every push expires exactly one element, so the
  /// steady-state loop rotates the window without the optional's
  /// disengaged branch.
  void StepBatch(std::span<const UncertainElement> batch) {
    size_t i = 0;
    while (i < batch.size() && !window_.full()) Step(batch[i++]);
    for (; i < batch.size(); ++i) {
      const UncertainElement expired = window_.PushRotate(batch[i]);
      op_->Expire(expired);
      op_->Insert(batch[i]);
    }
  }

  const CountWindow& window() const { return window_; }
  WindowSkylineOperator* op() const { return op_; }

 private:
  WindowSkylineOperator* op_;
  CountWindow window_;
};

/// Occurrence probabilities are clamped into [kMinElementProb,
/// kMaxElementProb] on ingestion so that (1 - P) factors are never exactly
/// zero; this keeps the multiplicative P_old bookkeeping invertible. The
/// induced error on any reported probability is below 1e-9 and therefore
/// invisible at any meaningful threshold q.
inline constexpr double kMinElementProb = 1e-12;
inline constexpr double kMaxElementProb = 1.0 - 1e-12;

/// Clamps an occurrence probability to the supported open interval.
inline double ClampProb(double p) {
  if (p < kMinElementProb) return kMinElementProb;
  if (p > kMaxElementProb) return kMaxElementProb;
  return p;
}

/// All operators keep P_new / P_old bookkeeping in log space: an element
/// can accumulate thousands of (1 - P) factors, whose product underflows
/// double precision, and P_old must remain exactly divisible when a
/// dominator leaves the candidate set. log1p(-p) of a clamped probability
/// is finite (>= ~-27.6), sums never underflow, and subtracting the same
/// rounded constant that was added cancels exactly.
inline double LogOneMinusProb(double p) { return std::log1p(-p); }

}  // namespace psky

#endif  // PSKY_CORE_OPERATOR_H_
