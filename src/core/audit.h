// Online state-integrity auditing for the SSKY operator.
//
// SSKY's probability state is maintained by lazy log-domain addends
// (sky_tree.h): every arrival and eviction adds or restores factors, so
// floating-point rounding drifts without bound over an unbounded stream.
// The paper's minimal-candidate-set guarantees (Theorems 2-5) are exact in
// real arithmetic but say nothing about accumulated rounding — an element
// whose P_sky sits near a threshold can silently flip bands. This module
// keeps a long-running operator provably honest:
//
//  1. An *incremental amortized auditor*: every `audit_every` steps it
//     re-derives exact P_new/P_old for a rotating slice of window
//     elements — from raw element probabilities only, never from lazy
//     state — and compares against the operator's materialized values
//     within a drift tolerance. Sweep cost is O(1) amortized per stream
//     step for a fixed window size and cadence.
//  2. *Self-healing repair*: in kRepair mode, drift beyond tolerance (or a
//     band misclassification) renormalizes the affected leaf path in
//     place (SkyTree::RepairElement) and recounts. Counters record the
//     max observed drift, repairs applied, and band flips prevented.
//  3. A *sampled shadow oracle*: every `oracle_every` steps the current
//     window is replayed through the naive reference operator and the
//     reported q-skylines are diffed. A mismatch escalates to a full
//     audit-and-repair sweep (kRepair) or an unrepaired violation.
//  4. *Crash quarantine*: on PSKY_CHECK failure or fatal signal, callers
//     dump window state + audit counters to a post-mortem file that
//     reuses the checkpoint serializer (WriteQuarantineFile), stamped
//     with the producing binary's build info.
//
// Exactness of the re-derivation: for a live element e, the window W and
// candidate set S determine the true values —
//
//   pnew_log(e) = Σ log(1-P(b))  over b ∈ W, b newer than e, b ≺ e
//   pold_log(e) = Σ log(1-P(a))  over a ∈ S, a ≺ e   minus the newer
//                 evicted dominators' factors, i.e. exactly
//                 (Σ over S dominators) − pnew_log(e)
//
// since every newer dominator of a live element is still in the window
// (windows expire oldest-first) and eviction compensation is booked
// against P_old (sky_tree.cc Phase C, paper Lemma 2). For an element
// *evicted* from S the auditor checks eviction soundness instead: its
// exact P_new must sit below the retention threshold, and stays there
// because newer dominators only shrink it.

#ifndef PSKY_CORE_AUDIT_H_
#define PSKY_CORE_AUDIT_H_

#include <cstdint>
#include <functional>
#include <future>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/thread_pool.h"
#include "core/checkpoint.h"
#include "core/ssky_operator.h"
#include "stream/element.h"

namespace psky {

/// What the auditor does with what it finds.
enum class AuditMode {
  kOff,     ///< auditing disabled; Step() is a no-op
  kCheck,   ///< detect and count violations, never mutate operator state
  kRepair,  ///< renormalize drifted elements in place
};

struct AuditOptions {
  AuditMode mode = AuditMode::kCheck;
  /// Steps between slice audits (0 disables the per-element auditor).
  uint64_t audit_every = 64;
  /// Window elements re-derived per audit (the rotating slice width).
  int elements_per_audit = 4;
  /// Absolute log-domain drift beyond which a value counts as corrupted.
  /// Rounding accrues ~1 ulp per lazy addend; 1e-7 is orders of magnitude
  /// above honest drift for any realistic stream yet far below any gap
  /// that could matter at a threshold.
  double tolerance = 1e-7;
  /// Steps between shadow-oracle replays (0 disables the oracle). Each
  /// replay costs O(window^2); sample accordingly.
  uint64_t oracle_every = 0;
  /// When set, shadow-oracle replays run asynchronously on this pool: the
  /// window and the operator's reported skyline are snapshotted on the
  /// main thread, the O(window^2) naive replay happens on a worker, and
  /// the verdict is harvested at the next oracle step (or Drain()). A
  /// stale disagreement is re-confirmed synchronously against the live
  /// operator before it counts as a violation. The pool must outlive the
  /// AuditManager. Slice audits always stay on the main thread: they read
  /// and repair live tree state.
  ThreadPool* pool = nullptr;
};

/// Per-run integrity counters. All monotone; suitable for logging and for
/// embedding in quarantine dumps.
struct AuditReport {
  uint64_t steps_seen = 0;
  uint64_t elements_audited = 0;
  /// Largest |materialized - exact| observed in the log domain, over both
  /// P_new and P_old, including drift below tolerance.
  double max_drift = 0.0;
  uint64_t drift_beyond_tolerance = 0;
  uint64_t repairs_applied = 0;
  /// Repairs whose element was banded wrong before renormalization — each
  /// one a q-band misreport that will no longer happen.
  uint64_t band_flips_prevented = 0;
  /// Evicted elements whose exact P_new is at or above the retention
  /// threshold: an unrepairable past misclassification.
  uint64_t false_evictions = 0;
  uint64_t oracle_replays = 0;
  /// Oracle disagreements that survived escalation (see class comment).
  uint64_t oracle_mismatches = 0;
  /// Total violations left unrepaired (kCheck-mode drift, false
  /// evictions, and unresolved oracle mismatches). The --strict CLI mode
  /// aborts when this grows.
  uint64_t violations_unrepaired = 0;
};

/// Drives the audit schedule against one SskyOperator.
///
/// The window callback returns the current window contents oldest-first
/// (e.g. CountWindow::Snapshot); it is only invoked on steps where an
/// audit or oracle check actually fires.
class AuditManager {
 public:
  using WindowSnapshotFn = std::function<std::vector<UncertainElement>()>;

  /// Streaming window access for out-of-core windows (SegmentStore):
  /// the window is visited in place, one segment mapped at a time,
  /// instead of snapshotted into an O(N) vector. Slice audits batch
  /// their targets so one oldest→newest scan serves the whole slice.
  struct WindowStream {
    /// Current window size.
    std::function<uint64_t()> size;
    /// Element `i` from the oldest (segment-cached random access).
    std::function<UncertainElement(uint64_t)> at;
    /// Visits every element oldest-first.
    std::function<void(const std::function<void(const UncertainElement&)>&)>
        scan;
  };

  AuditManager(SskyOperator* op, AuditOptions options,
               WindowSnapshotFn window);

  /// Streaming variant. Shadow-oracle replays always run synchronously
  /// on the pipeline thread in this mode (the scan faults segments in
  /// and out of the live store, which is not thread-safe), so
  /// `options.pool` is ignored.
  AuditManager(SskyOperator* op, AuditOptions options, WindowStream window);

  /// Blocks on any in-flight asynchronous oracle replay (without counting
  /// its verdict — a destroyed auditor reports what it has harvested).
  ~AuditManager();

  /// Advances the audit schedule by one stream step (call after the
  /// operator processed the element). Returns false when this step
  /// detected a violation it could not repair.
  bool Step();

  /// Harvests the in-flight asynchronous oracle replay, if any, blocking
  /// until its verdict is in. Call at end of stream so no replay's result
  /// is dropped. Returns false on an unrepaired violation.
  bool Drain();

  /// Audits every window element immediately (repairing per mode),
  /// regardless of cadence. Returns the number of violations left
  /// unrepaired by this sweep. Used for escalation and final sweeps.
  uint64_t AuditAll();

  /// Overload response (core/overload.h): stretches the slice-audit
  /// cadence by `audit_stretch` (1 restores the configured cadence) and,
  /// while `suspend_oracle` is set, skips shadow-oracle launches and
  /// harvests entirely — an in-flight replay is picked up by the next
  /// oracle step after release, or by Drain(). Reversible at any step.
  void SetDegradation(bool suspend_oracle, uint64_t audit_stretch) {
    suspend_oracle_ = suspend_oracle;
    audit_stretch_ = audit_stretch == 0 ? 1 : audit_stretch;
  }

  /// Steps since the last slice audit actually ran — the audit lag a
  /// heartbeat line reports; grows while the ladder has auditing
  /// stretched or the cadence simply has not come due.
  uint64_t steps_since_last_audit() const {
    return report_.steps_seen - last_slice_audit_step_;
  }

  /// Replays the window through the naive reference operator and diffs
  /// the q-skyline, escalating per mode. Returns true when the skylines
  /// agree (possibly after repair).
  bool RunOracleCheck();

  const AuditReport& report() const { return report_; }
  const AuditOptions& options() const { return options_; }

 private:
  // An asynchronous oracle replay in flight: the skyline the operator
  // reported at snapshot time, plus the future delivering what the naive
  // oracle says it should have been.
  //
  // Concurrency contract (why this class carries no Mutex of its own):
  // the worker job owns value *copies* captured at launch — it never
  // touches the live operator, window, or this object — and its only
  // communication back is the future, whose set/get pair is the
  // synchronization edge. Everything else in AuditManager runs on the
  // single pipeline thread.
  struct PendingOracle {
    std::vector<uint64_t> reported;
    std::future<std::vector<uint64_t>> want;
  };

  bool streamed() const { return static_cast<bool>(stream_.size); }
  // Audits window[idx]; window is oldest-first. Returns false on an
  // unrepaired violation.
  bool AuditOne(const std::vector<UncertainElement>& window, size_t idx);
  // Shared exact-state check given `e`'s window-exact P_new; all the
  // tree lookups, drift accounting, and repairs live here.
  bool AuditOneExact(const UncertainElement& e, double exact_pnew);
  // Streamed-mode audit of `targets` ({window index, element} pairs):
  // one oldest→newest scan accumulates every target's exact P_new.
  void AuditBatchStreamed(
      const std::vector<std::pair<uint64_t, UncertainElement>>& targets);
  void RunSliceAudit();
  // Snapshots window + reported skyline and queues the replay on pool.
  void LaunchOracleAsync();
  // Joins pending_oracle_ (if any) and applies its verdict. A stale
  // mismatch escalates to a synchronous RunOracleCheck against live
  // state. Returns false on an unrepaired violation.
  bool HarvestOracle();

  SskyOperator* op_;
  AuditOptions options_;
  WindowSnapshotFn window_;  ///< snapshot access; empty in streamed mode
  WindowStream stream_;      ///< streaming access; empty in snapshot mode
  AuditReport report_;
  uint64_t cursor_ = 0;  // rotating position into the window
  double q_log_;
  std::optional<PendingOracle> pending_oracle_;
  // Degradation state (SetDegradation); defaults are "no degradation".
  bool suspend_oracle_ = false;
  uint64_t audit_stretch_ = 1;
  uint64_t last_slice_audit_step_ = 0;
};

// --- crash quarantine ----------------------------------------------------

/// Post-mortem dump: everything needed to reproduce and diagnose the state
/// a crashed or integrity-violating run died with.
struct QuarantineDump {
  /// Build info of the producing binary (filled by WriteQuarantineFile
  /// when left empty).
  std::string producer;
  /// Why the dump was taken ("PSKY_CHECK failed: ...", "signal 11",
  /// "unrepaired integrity violation", ...).
  std::string reason;
  AuditReport report;
  /// Full window state, reusing the checkpoint serializer — a quarantine
  /// file can be replayed exactly like a checkpoint.
  CheckpointState state;
};

/// Canonical quarantine file name for a dump taken after
/// `elements_consumed` steps: "quarantine-<20-digit count>.pskyq".
std::string QuarantineFileName(uint64_t elements_consumed);

/// As above but carrying a per-run monotonic dump sequence number (from
/// QuarantineGovernor), so repeated failures at the same stream position
/// cannot overwrite each other's evidence:
/// "quarantine-<20-digit count>-<3-digit seq>.pskyq".
std::string QuarantineFileName(uint64_t elements_consumed, uint64_t dump_seq);

/// Writes `dump` to `path` atomically (same temp-and-rename discipline as
/// checkpoints). Returns false and sets `*error` on I/O failure.
bool WriteQuarantineFile(const std::string& path, const QuarantineDump& dump,
                         std::string* error);

/// Errno-reporting variant (same contract as the WriteCheckpointFile
/// overload); honors the qrtn-write fault-injection site.
bool WriteQuarantineFile(const std::string& path, const QuarantineDump& dump,
                         std::string* error, int* out_errno);

/// Retrying wrapper mirroring WriteCheckpointFileRetry: transient I/O
/// errnos are retried with jittered backoff under `policy`; only after
/// budget exhaustion (or a permanent error) does the dump fail.
bool WriteQuarantineFileRetry(const std::string& path,
                              const QuarantineDump& dump,
                              const RetryPolicy& policy, RetryStats* stats,
                              std::string* error);

/// Rate-limits quarantine dumps so a failure *burst* — a PSKY_CHECK storm
/// or an integrity violation detected on every subsequent step — produces
/// one post-mortem file, not thousands. The first failure of a burst is
/// admitted and assigned a monotonic sequence number; further failures
/// within `burst_window_steps` stream steps of the last admitted dump are
/// suppressed (and counted). A failure after the window has passed starts
/// a new burst.
///
/// Not thread-safe: the crash paths that consult it are terminal and
/// single-threaded (fatal-signal handler, strict-mode exit).
class QuarantineGovernor {
 public:
  struct Options {
    /// Failures within this many steps of the last admitted dump belong
    /// to the same burst.
    uint64_t burst_window_steps = 1024;
  };

  QuarantineGovernor() = default;
  explicit QuarantineGovernor(Options options) : options_(options) {}

  /// Asks to dump for a failure observed at stream step `step`. Returns
  /// true and writes the dump's sequence number (1-based, monotonic) to
  /// `*seq_out` when admitted; returns false (failure counted suppressed)
  /// when the failure belongs to the current burst.
  bool Admit(uint64_t step, uint64_t* seq_out);

  uint64_t dumps_admitted() const { return dumps_admitted_; }
  uint64_t dumps_suppressed() const { return dumps_suppressed_; }

 private:
  Options options_;
  uint64_t dumps_admitted_ = 0;
  uint64_t dumps_suppressed_ = 0;
  uint64_t last_dump_step_ = 0;
};

/// Reads and validates a quarantine file (magic, version, CRC, embedded
/// checkpoint). Returns false with `*error` on failure.
bool ReadQuarantineFile(const std::string& path, QuarantineDump* out,
                        std::string* error);

}  // namespace psky

#endif  // PSKY_CORE_AUDIT_H_
