// Sharded parallel ingestion engine: per-shard sky-trees behind SPSC
// queues, with an exact cross-shard merge at query time.
//
// Architecture
// ------------
//
//   router thread                      shard workers (one thread each)
//   ─────────────                      ──────────────────────────────
//   Route(e):                          loop:
//     window policy (count ring /        PopBatch(commands)
//     time watermark, replicated         kExpireOldest -> pop own FIFO,
//     exactly from stream/window.h)        occupancy--, op.Expire()
//     pop expired ring entries ->        kInsert -> FIFO push,
//       kExpireOldest to owner shard       occupancy++, op.Insert(),
//     kInsert(e) to owner shard             audit.Step()
//                                        publish applied counter
//
// The router owns every windowing decision: it keeps a global ring of
// (owner shard, time) entries mirroring CountWindow / TimeWindow
// semantics bit-for-bit, and turns each global expiry into a
// kExpireOldest command for the owning shard. A shard therefore sees
// exactly the global command sequence restricted to its partition, in
// global order (SPSC FIFO) — shard state is a pure function of the
// element stream, independent of thread scheduling, which is what makes
// sharded runs deterministic and checkpoint/replay-compatible.
//
// Routing is a pure function of the element (grid: splitmix-hashed cell
// id of the position; band: occurrence-probability band), so a stream
// routes identically across runs, shard counts permitting.
//
// Exactness of the merge (GlobalSkyline)
// --------------------------------------
//
// Each shard runs the unmodified sequential SSKY operator on its
// substream, so a shard evicts a candidate only when its *local* P_new
// (newer same-shard dominators only) falls below q. Local P_new is an
// upper bound on full-window P_new (fewer factors), hence every locally
// evicted element is also evicted by the sequential operator: the union
// U of shard candidate sets is a superset of the sequential candidate
// set S_{N,q}.
//
// P_new of a live element only shrinks over its lifetime (newer arrivals
// add factors; expirations remove *older* elements and touch P_old
// only), so "was never evicted" equals "current full-window P_new >= q".
// The merge exploits this in two phases:
//
//   1. For every a in U, compute pnew_U(a) = sum of log(1-P(b)) over
//      newer dominators b in U (per-shard SkyTree::ExactDominators,
//      summed in shard-index order). Define S* = { a : pnew_U(a) >= q }.
//      Then S* = S_{N,q} exactly: for a in S_{N,q} every newer window
//      dominator is itself in S_{N,q} (subset of U), so pnew_U = the
//      true full-window P_new >= q; for a not in S_{N,q}, induction over
//      descending arrival order shows pnew_U(a) < q (any missing
//      dominator b not in U has pnew_U(b) < q by hypothesis, and a's
//      U-dominators include all of b's, so pnew_U(a) <= pnew_U(b)).
//   2. Restrict the phase-1 sums to S* by subtracting the factors of
//      dominators in U \ S*, giving the same restricted P_new/P_old
//      decomposition the sequential operator reports (see core/audit.h
//      for why restricted P_sky = prob * P_new * P_old decides
//      membership exactly — the paper's Theorems 2-4).
//
// The merged skyline therefore contains exactly the sequential skyline
// members with exactly the same probability factor multisets; reported
// doubles can differ from the sequential operator's lazily accumulated
// values only by summation-order rounding (ulps — the equivalence tests
// bound it at 1e-9).
//
// The cell-grid precheck (geom/cell_grid.h) prunes phase 1: each shard
// maintains per-cell occupancy counts over its *window* elements (a
// superset of its candidates), and the merge probes shard j for
// candidate a only if j occupies some cell in the region dominating
// cell(a). Skips are exact negatives, never false ones.
//
// Thread-safety: Route/Barrier/GlobalSkyline/WindowSnapshot/Restore must
// all be called from one thread (the router). Stats() is safe from any
// thread. Barrier() returns only after every routed command is applied,
// with acquire/release ordering on the per-shard applied counters, so
// reading shard state after a barrier is race-free.

#ifndef PSKY_CORE_SHARD_ENGINE_H_
#define PSKY_CORE_SHARD_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "base/spsc_queue.h"
#include "core/audit.h"
#include "core/operator.h"
#include "core/ssky_operator.h"
#include "geom/cell_grid.h"
#include "stream/element.h"
#include "stream/window.h"

namespace psky {

/// How elements map to shards.
enum class ShardStrategy {
  kGrid,  ///< splitmix-hashed grid-cell id of the position (default)
  kBand,  ///< occurrence-probability band: floor(prob * shards)
};

/// Parses "grid" / "band". Returns false on anything else.
bool ParseShardStrategy(const std::string& text, ShardStrategy* out);

class ShardEngine {
 public:
  struct Options {
    int dims = 2;
    double q = 0.3;
    int shards = 2;
    ShardStrategy strategy = ShardStrategy::kGrid;
    /// Windowing: count-based when window_capacity > 0, else time-based
    /// over time_span seconds with `ooo_policy` (mirrors psky_stream).
    size_t window_capacity = 0;
    double time_span = 0.0;
    TimestampPolicy ooo_policy = TimestampPolicy::kReject;
    /// Per-shard SPSC queue capacity (elements in flight per shard).
    size_t queue_capacity = 4096;
    /// Cell-grid resolution per dimension; 0 picks
    /// CellGrid::ChooseResolution(dims).
    uint32_t grid_resolution = 0;
    SkyTree::Options tree_options;
    /// Per-shard integrity auditing (core/audit.h), run inside the shard
    /// worker against the shard's own substream. `pool` must be null —
    /// oracle replays run synchronously on the worker.
    AuditOptions audit;
  };

  explicit ShardEngine(const Options& options);
  ~ShardEngine();
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Routes one arrival: applies the window policy, emits the expiry
  /// command(s) the sequential window would, and enqueues the insert to
  /// the owning shard. Returns false iff the element was rejected as
  /// out-of-order (time windows under TimestampPolicy::kReject) — the
  /// exact condition TimeWindow::TryPush rejects on. When `admitted` is
  /// non-null and the element was accepted, it receives the element as
  /// actually windowed (timestamp clamp applied) — what a WAL should
  /// stamp.
  bool Route(const UncertainElement& e, UncertainElement* admitted = nullptr);

  /// Blocks until every routed command has been applied by its shard.
  void Barrier();

  /// Barrier + exact cross-shard merge (see file comment). Sorted by
  /// arrival sequence; only q-skyline members are returned (every entry
  /// has in_skyline = true). When `candidate_count` is non-null it
  /// receives |S*| — exactly the sequential operator's candidate count.
  std::vector<SkylineMember> GlobalSkyline(size_t* candidate_count = nullptr);

  /// Barrier + merged window contents in global arrival order — the
  /// byte-identical input to CheckpointState::window that a sequential
  /// run would snapshot.
  std::vector<UncertainElement> WindowSnapshot();

  /// Re-feeds a checkpointed window (oldest first) through the router,
  /// bypassing policy counters: the elements were already admitted once.
  void Restore(std::span<const UncertainElement> window);

  /// Drains and joins all shard workers. Idempotent; called by the
  /// destructor. The engine cannot be reused afterwards.
  void Shutdown();

  int shards() const { return static_cast<int>(shards_.size()); }
  int dims() const { return options_.dims; }
  double threshold() const { return options_.q; }
  const CellGrid& grid() const { return grid_; }

  /// Owning shard of an element (pure function; exposed for tests).
  int ShardOf(const UncertainElement& e) const;

  /// Elements currently windowed across all shards (router-side count,
  /// exact: the router owns all windowing decisions).
  size_t window_size() const { return ring_.size(); }

  /// Time-window policy counters (router-side, mirror TimeWindow's).
  uint64_t rejected() const { return rejected_; }
  uint64_t clamped() const { return clamped_; }
  double watermark() const { return watermark_; }

  struct ShardStats {
    uint64_t routed = 0;       ///< commands sent (inserts + expiries)
    uint64_t applied = 0;      ///< commands the worker has applied
    uint64_t inserted = 0;     ///< insert commands sent
    size_t queue_depth = 0;    ///< commands waiting in the SPSC queue
    size_t window_elements = 0;
    size_t candidates = 0;
    uint64_t audit_violations = 0;
  };

  struct Stats {
    std::vector<ShardStats> shards;
    /// max over shards of window_elements / (total / shard count); 1.0
    /// is perfectly balanced. 0 when the window is empty.
    double imbalance = 0.0;
    uint64_t merges = 0;            ///< GlobalSkyline calls
    uint64_t merge_candidates = 0;  ///< |U| summed over merges
    uint64_t merge_probes = 0;      ///< ExactDominators calls
    uint64_t merge_cell_skips = 0;  ///< shard probes pruned by the grid
    uint64_t barriers = 0;
  };

  /// Heartbeat snapshot, callable from the router thread at any time
  /// without a barrier: worker-side fields come from atomics published
  /// per command batch (slightly stale, never torn).
  Stats GetStats() const;

  /// Aggregated per-shard audit reports. Requires a preceding Barrier()
  /// (shard state is read directly).
  AuditReport AuditReportMerged();

  /// Per-shard operator access for tests and post-barrier inspection.
  const SskyOperator& shard_operator(int shard) const {
    return shards_[static_cast<size_t>(shard)]->op;
  }

 private:
  struct Command {
    enum Kind : uint8_t { kInsert, kExpireOldest };
    Kind kind = kInsert;
    UncertainElement element;
  };

  /// Router-side record of one windowed element.
  struct RingEntry {
    double time = 0.0;
    uint8_t shard = 0;
  };

  struct Shard {
    Shard(const Options& opts, uint64_t cells);

    SpscQueue<Command> queue;
    SskyOperator op;
    std::deque<UncertainElement> fifo;  ///< shard window, oldest first
    /// Window-element counts per grid cell (worker-owned; router reads
    /// after a barrier).
    std::vector<uint32_t> occupancy;
    /// Per-dimension histograms of occupied cell coordinates, for the
    /// O(dims) min-corner precheck when the exact region is too large.
    std::vector<uint32_t> dim_histogram;  // dims * resolution
    std::unique_ptr<AuditManager> audit;
    /// Commands applied; the worker's release store after each batch is
    /// the publication point for everything above (fifo, occupancy,
    /// op...) — the router's acquire load in Barrier() pairs with it,
    /// which is the whole happens-before edge the merge relies on.
    std::atomic<uint64_t> applied{0};
    // Heartbeat gauges: monotonically refreshed, read relaxed by
    // GetStats() with no ordering relative to anything — stale values
    // are fine, torn ones impossible. Every access spells its
    // memory_order (psky-lint `atomic-order`).
    std::atomic<uint64_t> window_elements{0};
    std::atomic<uint64_t> candidates{0};
    std::atomic<uint64_t> audit_violations{0};
    uint64_t routed = 0;    ///< router-side; commands enqueued
    uint64_t inserted = 0;  ///< router-side; insert commands enqueued
    std::thread worker;
  };

  void WorkerLoop(Shard* shard);
  void ApplyCommand(Shard* shard, const Command& cmd);
  void SendExpireOldest(uint8_t shard);
  void SendInsert(const UncertainElement& e, uint8_t shard);

  /// True when shard `j` holds a window element in some cell dominating
  /// `cell` (conservative; exact when the dominating region is small).
  bool ShardMayRefute(const Shard& shard, const CellGrid::Cell& cell) const;

  Options options_;
  CellGrid grid_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::deque<RingEntry> ring_;  ///< global window mirror, oldest first
  double watermark_;
  uint64_t rejected_ = 0;
  uint64_t clamped_ = 0;
  uint64_t merges_ = 0;
  uint64_t merge_candidates_ = 0;
  uint64_t merge_probes_ = 0;
  uint64_t merge_cell_skips_ = 0;
  uint64_t barriers_ = 0;
  bool shutdown_ = false;
};

}  // namespace psky

#endif  // PSKY_CORE_SHARD_ENGINE_H_
