// The aggregate sky-tree: the paper's core data structure (Section IV).
//
// One in-memory aggregate R-tree holds the candidate set S_{N,q}. Every
// node keeps, for the elements beneath it (paper Section IV-A):
//
//   * pnoc            Π (1 − P(e)) — the no-occurrence probability;
//   * min/max P_new   bounds used to evict / keep whole subtrees when a
//                     new dominator arrives (Algorithm 9);
//   * min/max P_sky   bounds used to re-classify whole subtrees into or
//                     out of the reported skyline (Algorithms 10, 11);
//   * lazy_new        pending Π (1 − P(a_new)) multiplier from new
//                     dominating arrivals (the paper's P_new^global);
//   * lazy_old        pending Π 1/(1 − P(a')) multiplier from dominators
//                     that left S_{N,q} (the paper's P_old^global; the
//                     paper stores the divisor, we store the multiplier);
//   * band bounds     classification of descendants into threshold bands.
//
// Lazy multipliers are applied subtree-wide in O(1) and pushed toward the
// leaves only when a traversal must descend (paper's CalProb /
// UpdateOldNew push-down). Aggregates at a node always include the node's
// own pending lazies, so a parent can combine child aggregates directly.
//
// Threshold bands generalize the paper's two trees R1 (skyline) and R2
// (other candidates) and its Section IV-D multi-threshold variant: for
// descending thresholds q_1 > q_2 > ... > q_k, an element with
// P_sky ∈ [q_i, q_{i-1}) is in band i, and band k+1 holds candidates below
// every threshold. With a single threshold, band 1 *is* R1 and band 2 is
// R2; "moving an entry between R1 and R2" becomes a band flip guarded by
// exactly the paper's P_sky,min/max tests, without physically relocating
// subtrees.

#ifndef PSKY_CORE_SKY_TREE_H_
#define PSKY_CORE_SKY_TREE_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/cancel.h"
#include "core/operator.h"
#include "geom/mbr.h"
#include "stream/element.h"

namespace psky {

/// Aggregate R-tree over the candidate set S_{N,q}.
class SkyTree {
 public:
  struct Options {
    /// Node capacity; a node splits above this fanout.
    int max_entries = 128;
    /// Minimum fanout; an underfull node is condensed (contents
    /// reinserted).
    int min_entries = 8;
    /// Ablation knob: when false, probability multipliers are pushed to
    /// every element immediately instead of being kept lazily at nodes.
    bool use_lazy = true;
    /// Ablation knob: when false, min/max aggregate pruning is disabled
    /// and traversals descend to the leaves.
    bool use_minmax_pruning = true;
    /// When true, every band transition (including candidate entry and
    /// departure) is recorded and retrievable via TakeBandChanges() —
    /// the push-style delta feed of the continuous query.
    bool record_events = false;
  };

  /// Internal counters for efficiency studies.
  struct Counters {
    uint64_t nodes_visited = 0;
    uint64_t elements_touched = 0;
    uint64_t evictions = 0;
    uint64_t pushdowns = 0;
    uint64_t band_flips = 0;
  };

  /// `thresholds` must be strictly decreasing values in (1e-9, 1]; the
  /// last one is the retention threshold q_k that gates membership of
  /// S_{N,q}. A single-element vector gives the plain q-skyline operator.
  SkyTree(int dims, std::vector<double> thresholds);
  SkyTree(int dims, std::vector<double> thresholds, Options options);

  SkyTree(const SkyTree&) = delete;
  SkyTree& operator=(const SkyTree&) = delete;

  int dims() const { return dims_; }
  int num_thresholds() const { return static_cast<int>(thresholds_.size()); }
  double retention_threshold() const { return thresholds_.back(); }
  const std::vector<double>& thresholds() const { return thresholds_; }

  /// Number of candidate elements currently held (|S_{N,q}|).
  size_t size() const;

  /// Number of elements in band `band` (1-based; band k+1 = candidates
  /// below every threshold).
  size_t band_size(int band) const;

  /// Elements with P_sky >= thresholds[band-1], i.e. bands 1..band.
  size_t CountUpToBand(int band) const;

  /// |SKY_{N,q_1}| — elements at or above the highest threshold.
  size_t skyline_size() const { return band_size(1); }

  /// Processes the arrival of element `e` (paper Algorithm 4):
  /// updates P_new of dominated candidates, evicts those falling below the
  /// retention threshold, restores P_old of surviving dominated elements,
  /// inserts `e`, and re-bands affected regions.
  /// `e.prob` must already be clamped via ClampProb().
  void Arrive(const UncertainElement& e);

  /// Processes the expiry of `e` (paper Algorithm 11). Returns false when
  /// `e` had already been evicted from S_{N,q} (then nothing changes).
  bool Expire(const UncertainElement& e);

  /// Visits every candidate with fully materialized probabilities, in
  /// arbitrary order. The visitor receives the member and its band.
  void ForEach(
      const std::function<void(const SkylineMember&, int band)>& visit) const;

  /// All candidates with P_sky >= qprime (ad-hoc query, Section IV-D).
  /// `qprime` must be >= the retention threshold.
  std::vector<SkylineMember> CollectAtLeast(double qprime) const;

  /// Count of candidates with P_sky >= qprime without enumerating
  /// qualifying subtrees (uses min/max P_sky pruning).
  size_t CountAtLeast(double qprime) const;

  /// The k candidates with the highest P_sky (all >= the retention
  /// threshold), best-first via the max P_sky aggregates (Section VI
  /// "heap tree" view). Ordered by decreasing P_sky.
  std::vector<SkylineMember> TopK(size_t k) const;

  // --- interruptible queries (base/cancel.h) ----------------------------
  // Deadline/cancellation-aware variants for serving under overload: the
  // traversal ticks `ctl` per node visit and stops cooperatively when the
  // deadline passes or the token fires. Each fills `*out` (cleared first)
  // and returns true when the traversal ran to completion, false when it
  // was cut short — `*out` then holds a well-formed partial result (a
  // subset of the full answer; for TopK, a prefix of the exact ranking).
  // An inert control (QueryControl::Unbounded) adds one predictable
  // branch per node and never stops.

  bool CollectAtLeast(double qprime, const QueryControl& ctl,
                      std::vector<SkylineMember>* out) const;
  bool CountAtLeast(double qprime, const QueryControl& ctl,
                    size_t* out) const;
  bool TopK(size_t k, const QueryControl& ctl,
            std::vector<SkylineMember>* out) const;

  /// One band transition of one element. Band 0 is the pseudo-band
  /// "not in the candidate set": arrivals come from band 0, evictions and
  /// expiries go to band 0. With a single threshold, a change crossing
  /// band 1 is a skyline enter/leave event.
  struct BandChange {
    uint64_t seq = 0;
    int old_band = 0;
    int new_band = 0;
  };

  /// Drains the band-change events recorded since the last call.
  /// Requires Options::record_events; otherwise always empty. Events are
  /// in occurrence order; an element may appear more than once per step
  /// (e.g., evicted after a band flip) — the net effect is the
  /// composition.
  std::vector<BandChange> TakeBandChanges();

  /// Allocation-free variant of TakeBandChanges: swaps the recorded
  /// events into `*out` (clearing it first), so a caller-owned buffer —
  /// and its capacity — is recycled across calls.
  void DrainBandChanges(std::vector<BandChange>* out);

  const Counters& counters() const { return counters_; }

  // --- integrity auditing (see src/core/audit.h) ------------------------
  // The lazy log-domain bookkeeping accumulates one rounding error per
  // applied addend; over a long stream an element near a threshold can
  // silently land in the wrong band. These hooks let an external auditor
  // re-derive exact values and renormalize drifted elements in place.

  /// Materialized probability state of one live element, fetched by
  /// identity. `found` is false when (pos, seq) is not in S_{N,q}.
  struct AuditView {
    bool found = false;
    double prob = 0.0;
    double pnew_log = 0.0;  ///< materialized (all ancestor lazies applied)
    double pold_log = 0.0;
    int band = 0;
  };
  AuditView LookupForAudit(const Point& pos, uint64_t seq) const;

  /// Exact Σ log(1 - P(a)) over live candidates a ≠ (pos, seq) that
  /// dominate `pos`, split by arrival order relative to `seq`. Computed by
  /// fresh traversal from element probabilities only — no lazy state is
  /// consulted, so the result is immune to accumulated drift.
  struct DominatorSums {
    double newer_log = 0.0;  ///< dominators with a.seq > seq
    double older_log = 0.0;  ///< dominators with a.seq < seq
  };
  DominatorSums ExactDominators(const Point& pos, uint64_t seq) const;

  /// Overwrites the materialized P_new/P_old of element (pos, seq), re-bands
  /// it, and renormalizes the probability aggregates along the leaf path.
  /// Used by the audit subsystem to repair drift (and by fault-injection
  /// tests to plant it). Structure (MBRs, counts, P_noc) is untouched.
  struct RepairOutcome {
    bool found = false;
    bool value_changed = false;  ///< stored values differed bitwise
    int old_band = 0;
    int new_band = 0;
  };
  RepairOutcome RepairElement(const Point& pos, uint64_t seq,
                              double pnew_log, double pold_log);

  /// Band a materialized log P_sky value classifies into (1-based).
  int BandOfLog(double psky_log) const { return BandOf(psky_log); }

  /// Validates every structural and aggregate invariant by recomputation;
  /// aborts on violation. Test helper (O(n) per call, O(n^2) with
  /// `deep` = true, which also re-derives every band from scratch).
  void CheckInvariants(bool deep = false) const;

 private:
  // --- SoA leaf coordinate blocks ---------------------------------------
  // Every leaf mirrors its element coordinates into a dim-major
  // structure-of-arrays block (dimension k of element i at
  // data[k * stride + i]) so the block dominance kernel
  // (geom/dominance_kernel.h) can scan a whole leaf branchlessly over
  // contiguous rows. Blocks come from a free-list arena: fixed-size,
  // allocated in contiguous chunks, recycled when nodes die, never
  // malloc'd per insert. The mirror is rebuilt wherever leaf membership
  // changes — exactly the RecomputeAgg() call sites — so it can never
  // drift out of sync with the Elem array.
  class SoaArena {
   public:
    SoaArena() = default;
    SoaArena(const SoaArena&) = delete;
    SoaArena& operator=(const SoaArena&) = delete;

    void Init(size_t block_doubles) { block_doubles_ = block_doubles; }

    double* Alloc() {
      if (free_list_.empty()) Grow();
      double* block = free_list_.back();
      free_list_.pop_back();
      return block;
    }

    void Free(double* block) { free_list_.push_back(block); }

   private:
    static constexpr size_t kBlocksPerChunk = 64;
    void Grow() {
      auto chunk = std::make_unique<double[]>(block_doubles_ * kBlocksPerChunk);
      for (size_t i = 0; i < kBlocksPerChunk; ++i) {
        free_list_.push_back(chunk.get() + i * block_doubles_);
      }
      chunks_.push_back(std::move(chunk));
    }
    size_t block_doubles_ = 0;
    std::vector<std::unique_ptr<double[]>> chunks_;
    std::vector<double*> free_list_;
  };

  /// RAII handle for one arena block, owned by a leaf node.
  struct SoaBlock {
    SoaArena* arena = nullptr;
    double* data = nullptr;
    SoaBlock() = default;
    SoaBlock(const SoaBlock&) = delete;
    SoaBlock& operator=(const SoaBlock&) = delete;
    ~SoaBlock() {
      if (data != nullptr) arena->Free(data);
    }
  };

  // All probability bookkeeping is in log space (see operator.h): products
  // of (1 - P) factors become sums, "divide out a factor" becomes an exact
  // subtraction, and nothing underflows no matter how many dominators an
  // element accumulates. Lazy multipliers are therefore lazy *addends*.
  struct Elem {
    Point pos;
    double prob = 1.0;
    uint64_t seq = 0;
    double time = 0.0;
    double pnew_log = 0.0;
    double pold_log = 0.0;
    // Cached logs of prob / (1 - prob): computed once per element, read on
    // every aggregate recomputation.
    double log_prob = 0.0;
    double log_one_minus_prob = 0.0;
    int band = 1;
  };

  struct Node {
    bool is_leaf = true;
    Mbr mbr;
    int64_t count = 0;
    double pnoc_log = 0.0;      // Σ log(1 - P(e)) over elements below
    double min_pnew_log = 0.0;  // bounds include this node's own lazies
    double max_pnew_log = 0.0;
    double min_psky_log = 0.0;
    double max_psky_log = 0.0;
    int band_lo = 1;
    int band_hi = 1;
    double lazy_new_log = 0.0;  // pending addend for pnew_log below
    double lazy_old_log = 0.0;  // pending addend for pold_log below
    bool dirty_some = false;    // some descendant region changed P_sky
    bool dirty_all = false;     // the whole subtree changed P_sky
    std::vector<std::unique_ptr<Node>> children;
    std::vector<Elem> elems;
    // Dim-major coordinate mirror of `elems` (leaves only); rebuilt by
    // RecomputeAgg whenever leaf membership changes.
    SoaBlock soa;
    int Fanout() const {
      return is_leaf ? static_cast<int>(elems.size())
                     : static_cast<int>(children.size());
    }
  };

  // --- probability plumbing -------------------------------------------
  int BandOf(double psky_log) const;
  void RebandElem(Elem* el);
  static double PskyLogOf(const Elem& e) {
    return e.log_prob + e.pnew_log + e.pold_log;
  }
  void ApplyNewAddend(Node* n, double addend);
  void ApplyOldAddend(Node* n, double addend);
  void PushDown(Node* n);
  void PushDownRecursive(Node* n);
  // Recomputes the probability aggregates (min/max P_new, min/max P_sky,
  // band bounds) of `n` from its children/elements. Positions, counts and
  // P_noc are untouched — used on probability-only update paths.
  void RecomputeProbAgg(Node* n);
  // Full recomputation including MBR, count and P_noc — used when the
  // node's membership changed (insert / remove / evict / split).
  void RecomputeAgg(Node* n);
  // Rebuilds the leaf's dim-major SoA coordinate mirror from its elems.
  void RebuildSoa(Node* n);

  // --- arrival phases ---------------------------------------------------
  // Returns true when some P_new below `n` changed.
  bool ProcessArrival(Node* n, const UncertainElement& e,
                      double arrival_log_factor, double* pold_log_acc);
  bool EvictPhase(Node* n, bool is_root, std::vector<Elem>* evicted,
                  std::vector<Elem>* reinsert);
  // Returns true when some P_old below `n` changed.
  bool ApplyOldForDominator(Node* n, const Point& pos, double addend);
  void Reflag(Node* n);

  // --- structure maintenance --------------------------------------------
  void CollectElems(Node* n, std::vector<Elem>* out);
  std::unique_ptr<Node> Split(Node* n);
  std::unique_ptr<Node> InsertRec(Node* n, Elem elem);
  void InsertElem(Elem elem);
  bool RemoveRec(Node* n, const Point& pos, uint64_t seq, Elem* removed,
                 std::vector<Elem>* orphans);
  void ShrinkRoot();
  bool RepairRec(Node* n, const Point& pos, uint64_t seq, double pnew_log,
                 double pold_log, RepairOutcome* out);

  void ForEachNode(const Node* n, double acc_new_log, double acc_old_log,
                   const std::function<void(const Elem&, double pnew_log,
                                            double pold_log)>& visit) const;

  SkylineMember MakeMember(const Elem& e, double pnew_log,
                           double pold_log) const;

  void RecordEvent(uint64_t seq, int old_band, int new_band) {
    if (options_.record_events) {
      events_.push_back(BandChange{seq, old_band, new_band});
    }
  }

  int dims_;
  std::vector<double> thresholds_;      // strictly decreasing, linear
  std::vector<double> thresholds_log_;  // log of the above
  Options options_;
  int soa_stride_ = 0;  // doubles per dimension row in a leaf SoA block
  // Declared before root_ so nodes (whose SoaBlock handles return blocks
  // to the arena on destruction) are destroyed first.
  SoaArena soa_arena_;
  std::unique_ptr<Node> root_;
  std::vector<size_t> band_counts_;  // 1-based; size k + 2
  std::vector<BandChange> events_;
  // Arrive-phase scratch, reused across steps to avoid per-call heap
  // churn on the hot path.
  std::vector<Elem> scratch_evicted_;
  std::vector<Elem> scratch_reinsert_;
  mutable Counters counters_;
};

}  // namespace psky

#endif  // PSKY_CORE_SKY_TREE_H_
