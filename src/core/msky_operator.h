// MSKY / QSKY: multiple pre-given probability thresholds and ad-hoc
// threshold queries (paper Section IV-D).
//
// For descending thresholds q_1 > q_2 > ... > q_k, the operator maintains
// the candidate set S_{N,q_k} in one aggregate sky-tree whose bands are the
// paper's k + 1 solution sets: band i holds elements with
// P_sky ∈ [q_i, q_{i-1}), band k + 1 the remaining candidates. An ad-hoc
// query with q' >= q_k (QSKY) is answered from the same structure without
// touching any maintained state.

#ifndef PSKY_CORE_MSKY_OPERATOR_H_
#define PSKY_CORE_MSKY_OPERATOR_H_

#include <vector>

#include "base/thread_pool.h"
#include "core/operator.h"
#include "core/sky_tree.h"

namespace psky {

/// Continuous multi-threshold skyline operator.
class MskyOperator {
 public:
  /// `thresholds` must be strictly decreasing, each in (1e-9, 1].
  MskyOperator(int dims, std::vector<double> thresholds,
               SkyTree::Options options = {});

  /// Stream maintenance (same contract as WindowSkylineOperator).
  void Insert(const UncertainElement& e);
  void Expire(const UncertainElement& e);

  int dims() const { return tree_.dims(); }
  int num_thresholds() const { return tree_.num_thresholds(); }
  const std::vector<double>& thresholds() const { return tree_.thresholds(); }

  size_t candidate_count() const { return tree_.size(); }

  /// |SKY_{N,q_i}| for the i-th threshold (1-based): all elements with
  /// P_sky >= q_i.
  size_t skyline_count(int i) const { return tree_.CountUpToBand(i); }

  /// The continuous result for the i-th threshold (1-based), sorted by
  /// arrival sequence.
  std::vector<SkylineMember> Skyline(int i) const;

  /// Ad-hoc query (QSKY): skyline with probability at least q', where
  /// q' >= q_k. Read-only; does not update any aggregate information.
  std::vector<SkylineMember> AdHocQuery(double q_prime) const;

  /// Ad-hoc count-only query; prunes whole subtrees via the P_sky bounds.
  size_t AdHocCount(double q_prime) const;

  /// All k continuous results in one call, result[i-1] == Skyline(i).
  /// With `pool` each threshold's collection runs as an independent
  /// read-only traversal on a worker thread; results are identical to the
  /// sequential loop. The caller must not mutate the operator while a
  /// fan-out is in flight.
  std::vector<std::vector<SkylineMember>> SkylineAll(
      ThreadPool* pool = nullptr) const;

  /// Batched QSKY: one ad-hoc query per entry of `q_primes`, optionally
  /// fanned out across `pool`. Equivalent to calling AdHocQuery on each.
  std::vector<std::vector<SkylineMember>> AdHocQueryMany(
      const std::vector<double>& q_primes, ThreadPool* pool = nullptr) const;

  /// Batched count-only QSKY, optionally fanned out across `pool`.
  std::vector<size_t> AdHocCountMany(const std::vector<double>& q_primes,
                                     ThreadPool* pool = nullptr) const;

  /// Deadline/cancellation-aware batched QSKY: every per-threshold
  /// traversal shares `ctl` (one deadline bounds the whole batch).
  /// Returns false when any traversal was cut short; `(*out)[i]` then
  /// holds that query's well-formed partial result. Results are identical
  /// to AdHocQueryMany when the control never fires.
  bool AdHocQueryMany(const std::vector<double>& q_primes,
                      const QueryControl& ctl, ThreadPool* pool,
                      std::vector<std::vector<SkylineMember>>* out) const;

  /// Deadline/cancellation-aware batched count-only QSKY; same contract.
  bool AdHocCountMany(const std::vector<double>& q_primes,
                      const QueryControl& ctl, ThreadPool* pool,
                      std::vector<size_t>* out) const;

  const SkyTree& tree() const { return tree_; }

 private:
  SkyTree tree_;
};

}  // namespace psky

#endif  // PSKY_CORE_MSKY_OPERATOR_H_
