#include "core/sky_tree.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <utility>

#include "base/check.h"
#include "geom/dominance.h"
#include "geom/dominance_kernel.h"
#include "rtree/split.h"

namespace psky {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

SkyTree::SkyTree(int dims, std::vector<double> thresholds)
    : SkyTree(dims, std::move(thresholds), Options()) {}

SkyTree::SkyTree(int dims, std::vector<double> thresholds, Options options)
    : dims_(dims), thresholds_(std::move(thresholds)), options_(options) {
  PSKY_CHECK_MSG(dims >= 1 && dims <= kMaxDims, "dims out of range");
  PSKY_CHECK_MSG(!thresholds_.empty(), "at least one threshold required");
  for (size_t i = 0; i < thresholds_.size(); ++i) {
    PSKY_CHECK_MSG(thresholds_[i] > 1e-9 && thresholds_[i] <= 1.0,
                   "threshold must be in (1e-9, 1]");
    if (i > 0) {
      PSKY_CHECK_MSG(thresholds_[i] < thresholds_[i - 1],
                     "thresholds must be strictly decreasing");
    }
    thresholds_log_.push_back(std::log(thresholds_[i]));
  }
  PSKY_CHECK_MSG(options_.min_entries >= 2, "min_entries must be >= 2");
  PSKY_CHECK_MSG(options_.max_entries >= 2 * options_.min_entries,
                 "max_entries must be >= 2 * min_entries");
  // Leaf SoA blocks hold fanout + 1 slots (a leaf briefly overflows to
  // max_entries + 1 between insert and split) and must fit one kernel call.
  PSKY_CHECK_MSG(options_.max_entries + 1 <= kDominanceKernelMaxBlock,
                 "max_entries exceeds dominance kernel block capacity");
  soa_stride_ = options_.max_entries + 1;
  soa_arena_.Init(static_cast<size_t>(soa_stride_) *
                  static_cast<size_t>(dims_));
  root_ = std::make_unique<Node>();
  root_->is_leaf = true;
  root_->mbr = Mbr::Empty(dims_);
  RecomputeAgg(root_.get());
  band_counts_.assign(thresholds_.size() + 2, 0);
}

size_t SkyTree::size() const {
  return static_cast<size_t>(root_->count);
}

size_t SkyTree::band_size(int band) const {
  PSKY_CHECK(band >= 1 && band <= num_thresholds() + 1);
  return band_counts_[static_cast<size_t>(band)];
}

size_t SkyTree::CountUpToBand(int band) const {
  PSKY_CHECK(band >= 1 && band <= num_thresholds() + 1);
  size_t total = 0;
  for (int b = 1; b <= band; ++b) {
    total += band_counts_[static_cast<size_t>(b)];
  }
  return total;
}

void SkyTree::RebandElem(Elem* el) {
  const int band = BandOf(PskyLogOf(*el));
  if (band != el->band) {
    --band_counts_[static_cast<size_t>(el->band)];
    ++band_counts_[static_cast<size_t>(band)];
    RecordEvent(el->seq, el->band, band);
    el->band = band;
    ++counters_.band_flips;
  }
}

// Trivial event-queue drain; no tree state is touched, so there is no
// invariant to check.
// psky-lint: allow(mutation-guard)
std::vector<SkyTree::BandChange> SkyTree::TakeBandChanges() {
  std::vector<BandChange> out;
  out.swap(events_);
  return out;
}

// Trivial event-queue drain; no tree state is touched, so there is no
// invariant to check.
// psky-lint: allow(mutation-guard)
void SkyTree::DrainBandChanges(std::vector<BandChange>* out) {
  out->clear();
  out->swap(events_);
}

int SkyTree::BandOf(double psky_log) const {
  const int k = num_thresholds();
  for (int i = 0; i < k; ++i) {
    if (psky_log >= thresholds_log_[static_cast<size_t>(i)]) return i + 1;
  }
  return k + 1;
}

// ---------------------------------------------------------------------------
// Probability plumbing.
// ---------------------------------------------------------------------------

void SkyTree::ApplyNewAddend(Node* n, double addend) {
  n->min_pnew_log += addend;
  n->max_pnew_log += addend;
  n->min_psky_log += addend;
  n->max_psky_log += addend;
  n->lazy_new_log += addend;
  n->dirty_all = true;
  if (!options_.use_lazy) PushDownRecursive(n);
}

void SkyTree::ApplyOldAddend(Node* n, double addend) {
  n->min_psky_log += addend;
  n->max_psky_log += addend;
  n->lazy_old_log += addend;
  n->dirty_all = true;
  if (!options_.use_lazy) PushDownRecursive(n);
}

void SkyTree::PushDown(Node* n) {
  // Exact-zero fast path: lazies start at literal 0.0 and are reset to
  // literal 0.0; any accumulation makes them nonzero, so == is the intended
  // sentinel test, not a tolerance check.
  // psky-lint: allow(float-eq)
  if (n->lazy_new_log == 0.0 && n->lazy_old_log == 0.0) return;
  ++counters_.pushdowns;
  if (n->is_leaf) {
    for (Elem& e : n->elems) {
      e.pnew_log += n->lazy_new_log;
      e.pold_log += n->lazy_old_log;
      ++counters_.elements_touched;
    }
  } else {
    const double psky_addend = n->lazy_new_log + n->lazy_old_log;
    for (auto& child : n->children) {
      child->lazy_new_log += n->lazy_new_log;
      child->lazy_old_log += n->lazy_old_log;
      child->min_pnew_log += n->lazy_new_log;
      child->max_pnew_log += n->lazy_new_log;
      child->min_psky_log += psky_addend;
      child->max_psky_log += psky_addend;
    }
  }
  n->lazy_new_log = 0.0;
  n->lazy_old_log = 0.0;
}

void SkyTree::PushDownRecursive(Node* n) {
  PushDown(n);
  if (!n->is_leaf) {
    for (auto& child : n->children) PushDownRecursive(child.get());
  }
}

void SkyTree::RecomputeProbAgg(Node* n) {
  PSKY_DCHECK(n->lazy_new_log == 0.0 && n->lazy_old_log == 0.0);
  double min_pnew = kInf, max_pnew = -kInf;
  double min_psky = kInf, max_psky = -kInf;
  int band_lo = std::numeric_limits<int>::max();
  int band_hi = 0;
  if (n->is_leaf) {
    for (const Elem& e : n->elems) {
      min_pnew = std::min(min_pnew, e.pnew_log);
      max_pnew = std::max(max_pnew, e.pnew_log);
      const double psky = PskyLogOf(e);
      min_psky = std::min(min_psky, psky);
      max_psky = std::max(max_psky, psky);
      band_lo = std::min(band_lo, e.band);
      band_hi = std::max(band_hi, e.band);
    }
  } else {
    for (const auto& child : n->children) {
      min_pnew = std::min(min_pnew, child->min_pnew_log);
      max_pnew = std::max(max_pnew, child->max_pnew_log);
      min_psky = std::min(min_psky, child->min_psky_log);
      max_psky = std::max(max_psky, child->max_psky_log);
      band_lo = std::min(band_lo, child->band_lo);
      band_hi = std::max(band_hi, child->band_hi);
    }
  }
  n->min_pnew_log = min_pnew;
  n->max_pnew_log = max_pnew;
  n->min_psky_log = min_psky;
  n->max_psky_log = max_psky;
  n->band_lo = band_lo;
  n->band_hi = band_hi;
}

void SkyTree::RecomputeAgg(Node* n) {
  PSKY_DCHECK(n->lazy_new_log == 0.0 && n->lazy_old_log == 0.0);
  Mbr mbr = Mbr::Empty(dims_);
  int64_t count = 0;
  double pnoc_log = 0.0;
  if (n->is_leaf) {
    for (const Elem& e : n->elems) {
      mbr.Expand(e.pos);
      ++count;
      pnoc_log += e.log_one_minus_prob;
    }
  } else {
    for (const auto& child : n->children) {
      mbr.Expand(child->mbr);
      count += child->count;
      pnoc_log += child->pnoc_log;
    }
  }
  n->mbr = mbr;
  n->count = count;
  n->pnoc_log = pnoc_log;
  RecomputeProbAgg(n);
  // Every leaf-membership change funnels through here, so rebuilding the
  // SoA mirror at this single point keeps it consistent by construction.
  if (n->is_leaf) RebuildSoa(n);
}

void SkyTree::RebuildSoa(Node* n) {
  PSKY_DCHECK(n->is_leaf);
  if (n->soa.data == nullptr) {
    n->soa.arena = &soa_arena_;
    n->soa.data = soa_arena_.Alloc();
  }
  const int cnt = static_cast<int>(n->elems.size());
  PSKY_DCHECK(cnt <= soa_stride_);
  for (int k = 0; k < dims_; ++k) {
    double* row = n->soa.data + k * soa_stride_;
    for (int i = 0; i < cnt; ++i) row[i] = n->elems[i].pos[k];
  }
}

// ---------------------------------------------------------------------------
// Arrival (paper Algorithm 4 with Algorithms 5-10 fused into traversals).
// ---------------------------------------------------------------------------

bool SkyTree::ProcessArrival(Node* n, const UncertainElement& e,
                             double arrival_log_factor,
                             double* pold_log_acc) {
  ++counters_.nodes_visited;
  if (n->count == 0) return false;

  const PointEntryRelation rel = ClassifyPointEntry(e.pos, n->mbr);
  // Entries fully dominating the arrival contribute their no-occurrence
  // probability to P_old(a_new) wholesale (Algorithm 4 lines 3-5).
  if (rel.entry_over_point == DomRelation::kFull) {
    // order-sensitive: subtree factors fold in before any per-element
    // factor below, same as the scalar pre-kernel traversal.
    *pold_log_acc += n->pnoc_log;
    return false;
  }
  // Entries fully dominated by the arrival get the (1 - P(a_new)) factor
  // applied to their whole subtree lazily (Algorithm 8 line 6).
  if (rel.point_over_entry == DomRelation::kFull) {
    ApplyNewAddend(n, arrival_log_factor);
    return true;
  }
  if (rel.entry_over_point == DomRelation::kNone &&
      rel.point_over_entry == DomRelation::kNone) {
    return false;
  }

  // Partial overlap in either direction: descend (queues C1/C2/C12 of
  // Algorithms 5, 7, 8 collapse into this recursion).
  PushDown(n);
  bool changed = false;
  if (n->is_leaf) {
    // Block kernel over the leaf's SoA mirror. Walking set bits ascending
    // visits elements in array order, so the P_old accumulation is
    // bit-identical to the original per-element DominanceCompare loop.
    const int cnt = static_cast<int>(n->elems.size());
    counters_.elements_touched += static_cast<uint64_t>(cnt);
    uint64_t cand[kDominanceKernelMaskWords];
    uint64_t dominated[kDominanceKernelMaskWords];
    DominanceBlockCompare(e.pos.data(), dims_, n->soa.data, soa_stride_, cnt,
                          cand, dominated);
    for (int w = 0; w < (cnt + 63) / 64; ++w) {
      for (uint64_t bits = cand[w]; bits != 0; bits &= bits - 1) {
        const int i = w * 64 + std::countr_zero(bits);
        // order-sensitive: ascending bit walk = element order, keeping
        // the sum bit-identical to the scalar loop this replaced.
        *pold_log_acc += n->elems[static_cast<size_t>(i)].log_one_minus_prob;
      }
      for (uint64_t bits = dominated[w]; bits != 0; bits &= bits - 1) {
        const int i = w * 64 + std::countr_zero(bits);
        // order-sensitive: single addend per element; applied in
        // ascending element order like the scalar path.
        n->elems[static_cast<size_t>(i)].pnew_log += arrival_log_factor;
        changed = true;
      }
    }
    if (changed) n->dirty_all = true;
  } else {
    for (auto& child : n->children) {
      changed |= ProcessArrival(child.get(), e, arrival_log_factor,
                                pold_log_acc);
    }
  }
  if (changed) {
    n->dirty_some = true;
    RecomputeProbAgg(n);
  }
  return changed;
}

void SkyTree::CollectElems(Node* n, std::vector<Elem>* out) {
  PushDown(n);
  if (n->is_leaf) {
    counters_.elements_touched += n->elems.size();
    out->insert(out->end(), n->elems.begin(), n->elems.end());
    return;
  }
  for (auto& child : n->children) CollectElems(child.get(), out);
}

bool SkyTree::EvictPhase(Node* n, bool is_root, std::vector<Elem>* evicted,
                         std::vector<Elem>* reinsert) {
  ++counters_.nodes_visited;
  const double qk_log = thresholds_log_.back();
  if (n->count == 0) return !is_root;

  if (options_.use_minmax_pruning) {
    // Nothing below can fall under the retention threshold: keep wholesale
    // (Algorithm 9 line 10).
    if (n->min_pnew_log >= qk_log) return false;
    // Everything below falls under: evict wholesale (Algorithm 9 line 11).
    if (n->max_pnew_log < qk_log) {
      CollectElems(n, evicted);
      if (is_root) {
        // The root has no parent to detach it; empty it in place.
        n->is_leaf = true;
        n->children.clear();
        n->elems.clear();
        n->lazy_new_log = n->lazy_old_log = 0.0;
        n->dirty_some = n->dirty_all = false;
        RecomputeAgg(n);
        return false;
      }
      return true;
    }
  }

  // Note: eviction itself never changes a survivor's P_sky (the departed
  // dominators' factors are restored in the separate P_old phase), so
  // this phase does not dirty anything for Reflag.
  PushDown(n);
  if (n->is_leaf) {
    size_t keep = 0;
    for (size_t i = 0; i < n->elems.size(); ++i) {
      ++counters_.elements_touched;
      if (n->elems[i].pnew_log < qk_log) {
        evicted->push_back(n->elems[i]);
      } else {
        n->elems[keep++] = n->elems[i];
      }
    }
    n->elems.resize(keep);
    RecomputeAgg(n);
    if (n->elems.empty()) return !is_root;
    if (!is_root && n->Fanout() < options_.min_entries) {
      CollectElems(n, reinsert);
      return true;
    }
    return false;
  }

  for (size_t i = 0; i < n->children.size();) {
    if (EvictPhase(n->children[i].get(), /*is_root=*/false, evicted,
                   reinsert)) {
      n->children.erase(n->children.begin() + static_cast<ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  if (n->children.empty()) return !is_root;
  RecomputeAgg(n);
  if (!is_root && n->Fanout() < options_.min_entries) {
    CollectElems(n, reinsert);
    return true;
  }
  return false;
}

bool SkyTree::ApplyOldForDominator(Node* n, const Point& pos,
                                   double addend) {
  ++counters_.nodes_visited;
  if (n->count == 0) return false;
  const DomRelation rel = ClassifyPointEntry(pos, n->mbr).point_over_entry;
  if (rel == DomRelation::kNone) return false;
  if (rel == DomRelation::kFull && options_.use_minmax_pruning) {
    // The departed dominator dominated everything below: restore the
    // whole subtree's P_old lazily (the paper's UpdateOld with P_noc,
    // and Algorithm 11 line 5).
    ApplyOldAddend(n, addend);
    return true;
  }
  PushDown(n);
  bool changed = false;
  if (n->is_leaf) {
    const int cnt = static_cast<int>(n->elems.size());
    counters_.elements_touched += static_cast<uint64_t>(cnt);
    uint64_t cand[kDominanceKernelMaskWords];
    uint64_t dominated[kDominanceKernelMaskWords];
    DominanceBlockCompare(pos.data(), dims_, n->soa.data, soa_stride_, cnt,
                          cand, dominated);
    for (int w = 0; w < (cnt + 63) / 64; ++w) {
      for (uint64_t bits = dominated[w]; bits != 0; bits &= bits - 1) {
        const int i = w * 64 + std::countr_zero(bits);
        // order-sensitive: single addend per element, ascending walk.
        n->elems[static_cast<size_t>(i)].pold_log += addend;
        changed = true;
      }
    }
    if (changed) n->dirty_all = true;
  } else {
    for (auto& child : n->children) {
      changed |= ApplyOldForDominator(child.get(), pos, addend);
    }
  }
  if (changed) {
    n->dirty_some = true;
    RecomputeProbAgg(n);
  }
  return changed;
}

void SkyTree::Reflag(Node* n) {
  if (!n->dirty_some && !n->dirty_all) return;
  ++counters_.nodes_visited;
  if (n->count == 0) {
    n->dirty_some = n->dirty_all = false;
    return;
  }
  if (options_.use_minmax_pruning) {
    // If the P_sky bounds pin the whole subtree into the single band it is
    // already classified as, nothing below can flip (Algorithm 10 line 3's
    // complement, and Algorithm 11's Move pruning).
    const int lo = BandOf(n->max_psky_log);
    const int hi = BandOf(n->min_psky_log);
    if (lo == hi && n->band_lo == lo && n->band_hi == lo) {
      n->dirty_some = n->dirty_all = false;
      return;
    }
  }
  PushDown(n);
  if (n->is_leaf) {
    for (Elem& el : n->elems) {
      ++counters_.elements_touched;
      const int band = BandOf(PskyLogOf(el));
      if (band != el.band) {
        --band_counts_[static_cast<size_t>(el.band)];
        ++band_counts_[static_cast<size_t>(band)];
        RecordEvent(el.seq, el.band, band);
        el.band = band;
        ++counters_.band_flips;
      }
    }
  } else {
    for (auto& child : n->children) {
      if (n->dirty_all) child->dirty_all = true;
      Reflag(child.get());
    }
  }
  RecomputeProbAgg(n);
  n->dirty_some = n->dirty_all = false;
}

// ---------------------------------------------------------------------------
// Structure maintenance.
// ---------------------------------------------------------------------------

std::unique_ptr<SkyTree::Node> SkyTree::Split(Node* n) {
  PSKY_DCHECK(n->lazy_new_log == 0.0 && n->lazy_old_log == 0.0);
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = n->is_leaf;
  sibling->dirty_some = n->dirty_some;
  sibling->dirty_all = n->dirty_all;
  if (n->is_leaf) {
    std::vector<Elem> all = std::move(n->elems);
    n->elems.clear();
    QuadraticSplit(
        &all, &n->elems, &sibling->elems,
        [](const Elem& e) { return Mbr(e.pos); }, options_.min_entries);
  } else {
    std::vector<std::unique_ptr<Node>> all = std::move(n->children);
    n->children.clear();
    QuadraticSplit(
        &all, &n->children, &sibling->children,
        [](const std::unique_ptr<Node>& c) { return c->mbr; },
        options_.min_entries);
  }
  RecomputeAgg(n);
  RecomputeAgg(sibling.get());
  return sibling;
}

std::unique_ptr<SkyTree::Node> SkyTree::InsertRec(Node* n, Elem elem) {
  ++counters_.nodes_visited;
  PushDown(n);
  if (n->is_leaf) {
    n->elems.push_back(std::move(elem));
    RecomputeAgg(n);
    if (n->Fanout() > options_.max_entries) return Split(n);
    return nullptr;
  }
  // Least-enlargement child (ties by area).
  Node* best = nullptr;
  double best_enlarge = kInf, best_area = kInf;
  const Mbr elem_mbr(elem.pos);
  for (const auto& child : n->children) {
    const double enlarge = child->mbr.Enlargement(elem_mbr);
    const double area = child->mbr.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = child.get();
    }
  }
  PSKY_DCHECK(best != nullptr);
  std::unique_ptr<Node> sibling = InsertRec(best, std::move(elem));
  if (sibling != nullptr) n->children.push_back(std::move(sibling));
  RecomputeAgg(n);
  if (n->Fanout() > options_.max_entries) return Split(n);
  return nullptr;
}

void SkyTree::InsertElem(Elem elem) {
  std::unique_ptr<Node> sibling = InsertRec(root_.get(), std::move(elem));
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    // Keep the dirty chain intact: Reflag must still reach the flagged
    // regions now sitting one level deeper.
    new_root->dirty_some = root_->dirty_some || root_->dirty_all ||
                           sibling->dirty_some || sibling->dirty_all;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    RecomputeAgg(new_root.get());
    root_ = std::move(new_root);
  }
}

bool SkyTree::RemoveRec(Node* n, const Point& pos, uint64_t seq,
                        Elem* removed, std::vector<Elem>* orphans) {
  ++counters_.nodes_visited;
  if (n->count == 0 || !n->mbr.Contains(pos)) return false;
  PushDown(n);
  if (n->is_leaf) {
    for (size_t i = 0; i < n->elems.size(); ++i) {
      if (n->elems[i].seq == seq && n->elems[i].pos == pos) {
        *removed = n->elems[i];
        n->elems.erase(n->elems.begin() + static_cast<ptrdiff_t>(i));
        RecomputeAgg(n);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < n->children.size(); ++i) {
    Node* child = n->children[i].get();
    if (!RemoveRec(child, pos, seq, removed, orphans)) continue;
    if (child->count == 0 || child->Fanout() < options_.min_entries) {
      if (child->count > 0) CollectElems(child, orphans);
      n->children.erase(n->children.begin() + static_cast<ptrdiff_t>(i));
    }
    RecomputeAgg(n);
    return true;
  }
  return false;
}

void SkyTree::ShrinkRoot() {
  while (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (!root_->is_leaf && root_->children.empty()) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
    root_->mbr = Mbr::Empty(dims_);
    RecomputeAgg(root_.get());
  }
}

// ---------------------------------------------------------------------------
// Public mutation entry points.
// ---------------------------------------------------------------------------

void SkyTree::Arrive(const UncertainElement& e) {
  PSKY_DCHECK(e.pos.dims() == dims_);
  PSKY_DCHECK(e.prob >= kMinElementProb && e.prob <= kMaxElementProb);
  const double arrival_log_factor = LogOneMinusProb(e.prob);

  // Phase A: P_old(a_new) and P_new updates of dominated candidates.
  double pold_log_acc = 0.0;
  ProcessArrival(root_.get(), e, arrival_log_factor, &pold_log_acc);

  // Phase B: evict candidates whose P_new fell below the retention
  // threshold; condense underfull nodes. The scratch vectors are members
  // so their capacity survives across steps.
  std::vector<Elem>& evicted = scratch_evicted_;
  std::vector<Elem>& reinsert = scratch_reinsert_;
  evicted.clear();
  reinsert.clear();
  EvictPhase(root_.get(), /*is_root=*/true, &evicted, &reinsert);
  ShrinkRoot();
  for (Elem& el : reinsert) {
    // The element left the node that carried its dirty marker; its P_new
    // may have just changed, so re-band it before it lands elsewhere.
    RebandElem(&el);
    InsertElem(std::move(el));
  }

  // Phase C: survivors dominated by an evictee recover that factor in
  // their restricted P_old (every evictee is older than any surviving
  // dominated element, by Lemma 2).
  counters_.evictions += evicted.size();
  for (const Elem& gone : evicted) {
    --band_counts_[static_cast<size_t>(gone.band)];
    RecordEvent(gone.seq, gone.band, 0);
    ApplyOldForDominator(root_.get(), gone.pos,
                         -LogOneMinusProb(gone.prob));
  }

  // Phase D: the arrival itself always joins S_{N,q} (P_new = 1).
  Elem elem;
  elem.pos = e.pos;
  elem.prob = e.prob;
  elem.seq = e.seq;
  elem.time = e.time;
  elem.pnew_log = 0.0;
  elem.pold_log = pold_log_acc;
  elem.log_prob = std::log(e.prob);
  elem.log_one_minus_prob = LogOneMinusProb(e.prob);
  elem.band = BandOf(PskyLogOf(elem));
  ++band_counts_[static_cast<size_t>(elem.band)];
  RecordEvent(elem.seq, 0, elem.band);
  InsertElem(std::move(elem));

  // Phase E: re-band every region whose P_sky changed.
  Reflag(root_.get());
}

bool SkyTree::Expire(const UncertainElement& e) {
  PSKY_DCHECK(e.pos.dims() == dims_);
  Elem removed;
  std::vector<Elem> orphans;
  if (!RemoveRec(root_.get(), e.pos, e.seq, &removed, &orphans)) {
    return false;  // already evicted earlier; nothing to undo
  }
  ShrinkRoot();
  for (Elem& el : orphans) {
    RebandElem(&el);
    InsertElem(std::move(el));
  }
  --band_counts_[static_cast<size_t>(removed.band)];
  RecordEvent(removed.seq, removed.band, 0);

  // Elements it dominated recover the factor in their restricted P_old
  // (Algorithm 11 lines 4-17), then regions it touched are re-banded
  // (Move, Algorithm 11 line 20).
  ApplyOldForDominator(root_.get(), removed.pos,
                       -LogOneMinusProb(removed.prob));
  Reflag(root_.get());
  return true;
}

// ---------------------------------------------------------------------------
// Queries.
// ---------------------------------------------------------------------------

SkylineMember SkyTree::MakeMember(const Elem& e, double pnew_log,
                                  double pold_log) const {
  SkylineMember m;
  m.element.pos = e.pos;
  m.element.prob = e.prob;
  m.element.seq = e.seq;
  m.element.time = e.time;
  m.pnew = std::exp(pnew_log);
  m.pold = std::exp(pold_log);
  m.psky = std::exp(e.log_prob + pnew_log + pold_log);
  m.in_skyline = e.band == 1;
  return m;
}

void SkyTree::ForEachNode(
    const Node* n, double acc_new_log, double acc_old_log,
    const std::function<void(const Elem&, double pnew_log, double pold_log)>&
        visit) const {
  if (n->count == 0) return;
  const double new_log = acc_new_log + n->lazy_new_log;
  const double old_log = acc_old_log + n->lazy_old_log;
  if (n->is_leaf) {
    for (const Elem& e : n->elems) {
      visit(e, e.pnew_log + new_log, e.pold_log + old_log);
    }
    return;
  }
  for (const auto& child : n->children) {
    ForEachNode(child.get(), new_log, old_log, visit);
  }
}

void SkyTree::ForEach(
    const std::function<void(const SkylineMember&, int band)>& visit) const {
  ForEachNode(root_.get(), 0.0, 0.0,
              [this, &visit](const Elem& e, double pnew_log, double pold_log) {
                visit(MakeMember(e, pnew_log, pold_log), e.band);
              });
}

std::vector<SkylineMember> SkyTree::CollectAtLeast(double qprime) const {
  std::vector<SkylineMember> out;
  CollectAtLeast(qprime, QueryControl::Unbounded(), &out);
  return out;
}

bool SkyTree::CollectAtLeast(double qprime, const QueryControl& ctl,
                             std::vector<SkylineMember>* out) const {
  PSKY_CHECK_MSG(qprime >= retention_threshold(),
                 "ad-hoc threshold must be >= the retention threshold");
  const double q_log = std::log(qprime);
  out->clear();
  QueryTicker ticker(ctl);

  struct Walker {
    const SkyTree* tree;
    double q_log;
    std::vector<SkylineMember>* out;
    QueryTicker* ticker;
    void Walk(const Node* n, double acc_new, double acc_old) {
      if (n->count == 0 || !ticker->Tick()) return;
      const double acc_psky = acc_new + acc_old;
      if (tree->options_.use_minmax_pruning &&
          n->max_psky_log + acc_psky < q_log) {
        return;
      }
      const double new_log = acc_new + n->lazy_new_log;
      const double old_log = acc_old + n->lazy_old_log;
      if (n->is_leaf) {
        for (const Elem& e : n->elems) {
          const double pnew = e.pnew_log + new_log;
          const double pold = e.pold_log + old_log;
          if (std::log(e.prob) + pnew + pold >= q_log) {
            out->push_back(tree->MakeMember(e, pnew, pold));
          }
        }
        return;
      }
      for (const auto& child : n->children) {
        Walk(child.get(), new_log, old_log);
      }
    }
  };
  Walker{this, q_log, out, &ticker}.Walk(root_.get(), 0.0, 0.0);
  std::sort(out->begin(), out->end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return !ticker.stopped();
}

size_t SkyTree::CountAtLeast(double qprime) const {
  size_t total = 0;
  CountAtLeast(qprime, QueryControl::Unbounded(), &total);
  return total;
}

bool SkyTree::CountAtLeast(double qprime, const QueryControl& ctl,
                           size_t* out) const {
  PSKY_CHECK_MSG(qprime >= retention_threshold(),
                 "ad-hoc threshold must be >= the retention threshold");
  const double q_log = std::log(qprime);
  QueryTicker ticker(ctl);

  struct Walker {
    const SkyTree* tree;
    double q_log;
    QueryTicker* ticker;
    size_t total = 0;
    void Walk(const Node* n, double acc_psky) {
      if (n->count == 0 || !ticker->Tick()) return;
      if (tree->options_.use_minmax_pruning) {
        if (n->max_psky_log + acc_psky < q_log) return;
        if (n->min_psky_log + acc_psky >= q_log) {
          total += static_cast<size_t>(n->count);
          return;
        }
      }
      const double below = acc_psky + n->lazy_new_log + n->lazy_old_log;
      if (n->is_leaf) {
        for (const Elem& e : n->elems) {
          if (PskyLogOf(e) + below >= q_log) ++total;
        }
        return;
      }
      for (const auto& child : n->children) Walk(child.get(), below);
    }
  };
  Walker walker{this, q_log, &ticker};
  walker.Walk(root_.get(), 0.0);
  *out = walker.total;
  return !ticker.stopped();
}

std::vector<SkylineMember> SkyTree::TopK(size_t k) const {
  std::vector<SkylineMember> out;
  TopK(k, QueryControl::Unbounded(), &out);
  return out;
}

bool SkyTree::TopK(size_t k, const QueryControl& ctl,
                   std::vector<SkylineMember>* out) const {
  // Best-first search on the max P_sky aggregates: the tree acts as the
  // max-heap of Section VI's top-k extension. A cut-short run has already
  // emitted results in exact descending P_sky order, so the partial
  // answer is a true prefix of the full top-k ranking.
  struct Entry {
    double key;  // upper bound (node) or exact (element) log P_sky
    const Node* node;
    const Elem* elem;
    double acc_new, acc_old;
  };
  struct Compare {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.key < b.key;  // max-heap
    }
  };
  out->clear();
  if (root_->count == 0 || k == 0) return true;
  QueryTicker ticker(ctl);

  std::priority_queue<Entry, std::vector<Entry>, Compare> heap;
  heap.push(Entry{root_->max_psky_log, root_.get(), nullptr, 0.0, 0.0});
  while (!heap.empty() && out->size() < k) {
    if (!ticker.Tick()) return false;
    const Entry top = heap.top();
    heap.pop();
    if (top.elem != nullptr) {
      out->push_back(MakeMember(*top.elem, top.elem->pnew_log + top.acc_new,
                                top.elem->pold_log + top.acc_old));
      continue;
    }
    const Node* n = top.node;
    const double new_log = top.acc_new + n->lazy_new_log;
    const double old_log = top.acc_old + n->lazy_old_log;
    if (n->is_leaf) {
      for (const Elem& e : n->elems) {
        heap.push(Entry{PskyLogOf(e) + new_log + old_log, nullptr, &e,
                        new_log, old_log});
      }
    } else {
      for (const auto& child : n->children) {
        if (child->count == 0) continue;
        heap.push(Entry{child->max_psky_log + new_log + old_log, child.get(),
                        nullptr, new_log, old_log});
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Integrity auditing (src/core/audit.h).
// ---------------------------------------------------------------------------

SkyTree::AuditView SkyTree::LookupForAudit(const Point& pos,
                                           uint64_t seq) const {
  AuditView out;
  struct Walker {
    const SkyTree* tree;
    const Point& pos;
    uint64_t seq;
    AuditView* out;
    bool Walk(const Node* n, double acc_new, double acc_old) {
      ++tree->counters_.nodes_visited;
      if (n->count == 0 || !n->mbr.Contains(pos)) return false;
      const double new_log = acc_new + n->lazy_new_log;
      const double old_log = acc_old + n->lazy_old_log;
      if (n->is_leaf) {
        for (const Elem& e : n->elems) {
          if (e.seq != seq || !(e.pos == pos)) continue;
          out->found = true;
          out->prob = e.prob;
          out->pnew_log = e.pnew_log + new_log;
          out->pold_log = e.pold_log + old_log;
          out->band = e.band;
          return true;
        }
        return false;
      }
      for (const auto& child : n->children) {
        if (Walk(child.get(), new_log, old_log)) return true;
      }
      return false;
    }
  };
  Walker{this, pos, seq, &out}.Walk(root_.get(), 0.0, 0.0);
  return out;
}

SkyTree::DominatorSums SkyTree::ExactDominators(const Point& pos,
                                                uint64_t seq) const {
  DominatorSums sums;
  struct Walker {
    const SkyTree* tree;
    const Point& pos;
    uint64_t seq;
    DominatorSums* sums;
    void Walk(const Node* n) {
      ++tree->counters_.nodes_visited;
      if (n->count == 0) return;
      // Only subtrees that might contain a dominator of `pos` matter; the
      // sums are rebuilt purely from element probabilities, so no lazy
      // push-down is needed (or wanted — the audit must not disturb the
      // state it is checking).
      if (ClassifyPointEntry(pos, n->mbr).entry_over_point ==
          DomRelation::kNone) {
        return;
      }
      if (n->is_leaf) {
        const int cnt = static_cast<int>(n->elems.size());
        tree->counters_.elements_touched += static_cast<uint64_t>(cnt);
        uint64_t cand[kDominanceKernelMaskWords];
        uint64_t dominated[kDominanceKernelMaskWords];
        DominanceBlockCompare(pos.data(), tree->dims_, n->soa.data,
                              tree->soa_stride_, cnt, cand, dominated);
        for (int w = 0; w < (cnt + 63) / 64; ++w) {
          for (uint64_t bits = cand[w]; bits != 0; bits &= bits - 1) {
            const int i = w * 64 + std::countr_zero(bits);
            const Elem& e = n->elems[static_cast<size_t>(i)];
            if (e.seq == seq) continue;
            if (e.seq > seq) {
              // order-sensitive: the audit re-derivation must sum in the
              // same ascending element order as the arrival path so its
              // "exact" values are reproducible bit-for-bit.
              sums->newer_log += e.log_one_minus_prob;
            } else {
              // order-sensitive: see above.
              sums->older_log += e.log_one_minus_prob;
            }
          }
        }
        return;
      }
      for (const auto& child : n->children) Walk(child.get());
    }
  };
  Walker{this, pos, seq, &sums}.Walk(root_.get());
  return sums;
}

bool SkyTree::RepairRec(Node* n, const Point& pos, uint64_t seq,
                        double pnew_log, double pold_log,
                        RepairOutcome* out) {
  ++counters_.nodes_visited;
  if (n->count == 0 || !n->mbr.Contains(pos)) return false;
  PushDown(n);
  if (n->is_leaf) {
    for (Elem& e : n->elems) {
      if (e.seq != seq || !(e.pos == pos)) continue;
      out->found = true;
      out->old_band = e.band;
      // Deliberate bitwise comparison: repair must report "changed" on ANY
      // representational difference so the audit drift counters stay exact.
      // psky-lint: allow(float-eq)
      out->value_changed = e.pnew_log != pnew_log || e.pold_log != pold_log;
      e.pnew_log = pnew_log;
      e.pold_log = pold_log;
      RebandElem(&e);
      out->new_band = e.band;
      RecomputeProbAgg(n);
      return true;
    }
    return false;
  }
  for (auto& child : n->children) {
    if (RepairRec(child.get(), pos, seq, pnew_log, pold_log, out)) {
      RecomputeProbAgg(n);
      return true;
    }
  }
  return false;
}

SkyTree::RepairOutcome SkyTree::RepairElement(const Point& pos, uint64_t seq,
                                              double pnew_log,
                                              double pold_log) {
  // <= 0.0 rejects NaN and positive values but permits -inf, which is a
  // legal log-probability when a dominator has prob exactly 1.0.
  PSKY_CHECK_MSG(pnew_log <= 0.0 && pold_log <= 0.0,
                 "RepairElement: repaired log-probabilities must be valid "
                 "log-domain values (<= 0)");
  RepairOutcome out;
  RepairRec(root_.get(), pos, seq, pnew_log, pold_log, &out);
  return out;
}

// ---------------------------------------------------------------------------
// Invariant validation (tests only).
// ---------------------------------------------------------------------------

void SkyTree::CheckInvariants(bool deep) const {
  constexpr double kTol = 1e-6;

  struct Expect {
    int64_t count = 0;
    double pnoc_log = 0.0;
    double min_pnew = kInf, max_pnew = -kInf;
    double min_psky = kInf, max_psky = -kInf;
    int band_lo = std::numeric_limits<int>::max();
    int band_hi = 0;
    Mbr mbr;
  };

  struct Checker {
    const SkyTree* tree;
    bool deep;
    int leaf_depth = -1;
    std::vector<size_t> band_tally;

    Expect Walk(const Node* n, int depth, bool is_root, double acc_new,
                double acc_old) {
      if (!is_root) {
        PSKY_CHECK(n->Fanout() >= tree->options_.min_entries);
      }
      PSKY_CHECK(n->Fanout() <= tree->options_.max_entries);

      Expect ex;
      ex.mbr = Mbr::Empty(tree->dims_);
      const double new_log = acc_new + n->lazy_new_log;
      const double old_log = acc_old + n->lazy_old_log;
      if (n->is_leaf) {
        if (leaf_depth < 0) leaf_depth = depth;
        PSKY_CHECK(leaf_depth == depth);
        // The SoA coordinate mirror must match the element array exactly.
        PSKY_CHECK(n->soa.data != nullptr);
        for (size_t i = 0; i < n->elems.size(); ++i) {
          for (int k = 0; k < tree->dims_; ++k) {
            PSKY_CHECK(n->soa.data[static_cast<size_t>(k) *
                                       static_cast<size_t>(tree->soa_stride_) +
                                   i] == n->elems[i].pos[k]);
          }
        }
        for (const Elem& e : n->elems) {
          ex.mbr.Expand(e.pos);
          ++ex.count;
          ex.pnoc_log += LogOneMinusProb(e.prob);
          // Cached logs must match their definitions exactly.
          PSKY_CHECK(e.log_prob == std::log(e.prob));
          PSKY_CHECK(e.log_one_minus_prob == LogOneMinusProb(e.prob));
          const double pnew = e.pnew_log + new_log;
          const double pold = e.pold_log + old_log;
          const double psky = std::log(e.prob) + pnew + pold;
          ex.min_pnew = std::min(ex.min_pnew, pnew);
          ex.max_pnew = std::max(ex.max_pnew, pnew);
          ex.min_psky = std::min(ex.min_psky, psky);
          ex.max_psky = std::max(ex.max_psky, psky);
          ex.band_lo = std::min(ex.band_lo, e.band);
          ex.band_hi = std::max(ex.band_hi, e.band);
          ++band_tally[static_cast<size_t>(e.band)];
          if (deep) {
            // Band labels must match the element's materialized P_sky,
            // except for values within rounding reach of a threshold.
            const int want = tree->BandOf(psky);
            if (want != e.band) {
              bool near_boundary = false;
              for (double t : tree->thresholds_log_) {
                if (std::abs(psky - t) < 1e-9) near_boundary = true;
              }
              PSKY_CHECK_MSG(near_boundary, "stale band");
            }
          }
        }
      } else {
        PSKY_CHECK(!n->children.empty());
        for (const auto& child : n->children) {
          Expect sub =
              Walk(child.get(), depth + 1, false, new_log, old_log);
          ex.mbr.Expand(sub.mbr);
          ex.count += sub.count;
          ex.pnoc_log += sub.pnoc_log;
          ex.min_pnew = std::min(ex.min_pnew, sub.min_pnew);
          ex.max_pnew = std::max(ex.max_pnew, sub.max_pnew);
          ex.min_psky = std::min(ex.min_psky, sub.min_psky);
          ex.max_psky = std::max(ex.max_psky, sub.max_psky);
          ex.band_lo = std::min(ex.band_lo, sub.band_lo);
          ex.band_hi = std::max(ex.band_hi, sub.band_hi);
        }
      }

      PSKY_CHECK(ex.count == n->count);
      PSKY_CHECK(ex.mbr == n->mbr);
      PSKY_CHECK(std::abs(ex.pnoc_log - n->pnoc_log) <=
                 kTol * (1.0 + std::abs(ex.pnoc_log)));
      if (ex.count > 0) {
        // Stored bounds are relative to ancestors' lazies: compare after
        // adding the accumulated ancestor addends.
        PSKY_CHECK(std::abs(ex.min_pnew - (n->min_pnew_log + acc_new)) <=
                   kTol * (1.0 + std::abs(ex.min_pnew)));
        PSKY_CHECK(std::abs(ex.max_pnew - (n->max_pnew_log + acc_new)) <=
                   kTol * (1.0 + std::abs(ex.max_pnew)));
        PSKY_CHECK(std::abs(ex.min_psky -
                            (n->min_psky_log + acc_new + acc_old)) <=
                   kTol * (1.0 + std::abs(ex.min_psky)));
        PSKY_CHECK(std::abs(ex.max_psky -
                            (n->max_psky_log + acc_new + acc_old)) <=
                   kTol * (1.0 + std::abs(ex.max_psky)));
        PSKY_CHECK(ex.band_lo == n->band_lo);
        PSKY_CHECK(ex.band_hi == n->band_hi);
      }
      return ex;
    }
  };

  Checker checker{this, deep, -1, {}};
  checker.band_tally.assign(band_counts_.size(), 0);
  if (root_->count == 0) {
    PSKY_CHECK(root_->is_leaf && root_->elems.empty());
  } else {
    checker.Walk(root_.get(), 0, /*is_root=*/true, 0.0, 0.0);
  }
  for (size_t b = 0; b < band_counts_.size(); ++b) {
    PSKY_CHECK(checker.band_tally[b] == band_counts_[b]);
  }
}

}  // namespace psky
