// SSKY: the paper's efficient continuous q-skyline operator (Section IV),
// built on the aggregate sky-tree.

#ifndef PSKY_CORE_SSKY_OPERATOR_H_
#define PSKY_CORE_SSKY_OPERATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/operator.h"
#include "core/sky_tree.h"

namespace psky {

/// Continuous q-skyline operator over a sliding window (SSKY).
///
/// Typical use:
///
///   SskyOperator op(/*dims=*/3, /*q=*/0.3);
///   StreamProcessor proc(&op, /*window_size=*/1'000'000);
///   for (const UncertainElement& e : stream) {
///     proc.Step(e);
///     // op.skyline_count(), op.Skyline(), ... reflect the current window
///   }
class SskyOperator : public WindowSkylineOperator {
 public:
  SskyOperator(int dims, double q, SkyTree::Options options = {});

  void Insert(const UncertainElement& e) override;
  void Expire(const UncertainElement& e) override;

  size_t candidate_count() const override { return tree_.size(); }
  size_t skyline_count() const override { return tree_.skyline_size(); }
  std::vector<SkylineMember> Skyline() const override;
  std::vector<SkylineMember> Candidates() const override;
  const OperatorStats& stats() const override;
  double threshold() const override { return q_; }
  int dims() const override { return tree_.dims(); }

  /// Underlying tree, exposed for instrumentation and invariant checks.
  const SkyTree& tree() const { return tree_; }

  /// Mutable tree access for the integrity subsystem (core/audit.h): the
  /// auditor repairs drifted per-element probability state in place via
  /// SkyTree::RepairElement. Not part of the operator interface.
  SkyTree* mutable_tree() { return &tree_; }

  /// Net skyline membership changes since the last call, for push-style
  /// consumers of the continuous query. Requires
  /// SkyTree::Options::record_events (otherwise both lists stay empty).
  struct SkylineDelta {
    std::vector<uint64_t> entered;  ///< seqs that joined SKY_{N,q}
    std::vector<uint64_t> left;     ///< seqs that left SKY_{N,q}
  };
  SkylineDelta TakeSkylineDelta();

 private:
  // Per-element net band move composed from an event chain: only the
  // first origin and the final destination matter for membership.
  struct NetBandMove {
    int first_old = 0;
    int last_new = 0;
  };

  double q_;
  SkyTree tree_;
  mutable OperatorStats stats_;
  // Scratch reused across TakeSkylineDelta calls (the per-step hot path
  // of delta-emitting streams): buffer capacity and hash buckets persist.
  std::vector<SkyTree::BandChange> scratch_events_;
  std::unordered_map<uint64_t, NetBandMove> scratch_net_;
};

}  // namespace psky

#endif  // PSKY_CORE_SSKY_OPERATOR_H_
