#include "core/checkpoint.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "base/build_info.h"
#include "base/crc32.h"
#include "base/fault_injection.h"
#include "base/wire.h"
#include "geom/point.h"

namespace psky {

namespace {

using wire::AppendF64;
using wire::AppendString;
using wire::AppendU32;
using wire::AppendU64;
using wire::Cursor;

constexpr char kMagic[8] = {'P', 'S', 'K', 'Y', 'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 2;
constexpr size_t kHeaderSize = 24;
// Build-info stamps are short one-liners; anything longer than this in the
// length field is corruption, not a stamp.
constexpr uint64_t kMaxProducerBytes = 4096;

CheckpointCrashHook g_crash_hook = nullptr;

// Dies at `point` (returns false) when a crash hook is installed and asks
// for it; no hook means run to completion.
bool SurvivesCrashPoint(CheckpointCrashPoint point) {
  return g_crash_hook == nullptr || g_crash_hook(point);
}

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// strerror's static buffer is not thread-safe in general, but checkpoint
// IO runs entirely on the caller's thread and nothing else in this
// process calls strerror concurrently.
std::string ErrnoString(int err) {
  return std::strerror(err);  // NOLINT(concurrency-mt-unsafe)
}
std::string ErrnoString() { return ErrnoString(errno); }

// Failure with an errno attached, for callers (the retry wrapper) that
// classify transient vs. permanent conditions. `err` of 0 means the
// failure was not errno-shaped (simulated crash hook, logic error) and is
// treated as permanent.
bool FailIo(std::string* error, int* out_errno, int err,
            const std::string& msg) {
  if (out_errno != nullptr) *out_errno = err;
  return Fail(error, msg);
}

// Fixed-field payload prefix shared by EncodeCheckpoint and the
// streaming writer, so both produce identical bytes for the same
// logical state. `window_count` is the element count that follows.
std::string EncodePayloadPrefix(const CheckpointState& state,
                                uint64_t window_count) {
  std::string payload;
  // The stamp identifies the *writer*: an explicitly pre-set producer (a
  // re-encoded foreign snapshot) is preserved, otherwise this binary's.
  AppendString(&payload,
               state.producer.empty() ? BuildInfoString() : state.producer);
  AppendU32(&payload, static_cast<uint32_t>(state.dims));
  AppendF64(&payload, state.q);
  payload.push_back(static_cast<char>(state.window_kind));
  AppendU64(&payload, state.window_capacity);
  AppendF64(&payload, state.time_span);
  AppendU64(&payload, state.elements_consumed);
  AppendU64(&payload, state.lines_consumed);
  AppendU64(&payload, state.next_seq);
  AppendU64(&payload, state.bad_lines_skipped);
  AppendU64(&payload, state.probs_clamped);
  AppendU64(&payload, state.ooo_dropped);
  AppendU64(&payload, window_count);
  return payload;
}

void AppendElement(std::string* payload, const UncertainElement& e, int dims) {
  AppendU64(payload, e.seq);
  AppendF64(payload, e.prob);
  AppendF64(payload, e.time);
  for (int i = 0; i < dims; ++i) AppendF64(payload, e.pos[i]);
}

}  // namespace

void SetCheckpointCrashHook(CheckpointCrashHook hook) { g_crash_hook = hook; }

std::string EncodeCheckpoint(const CheckpointState& state) {
  std::string payload = EncodePayloadPrefix(state, state.window.size());
  payload.reserve(payload.size() + state.window.size() *
                                       (24 + 8 * static_cast<size_t>(state.dims)));
  for (const UncertainElement& e : state.window) {
    AppendElement(&payload, e, state.dims);
  }

  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof kMagic);
  AppendU32(&out, kVersion);
  AppendU32(&out, Crc32(payload.data(), payload.size()));
  AppendU64(&out, payload.size());
  out += payload;
  return out;
}

bool DecodeCheckpoint(std::string_view bytes, CheckpointState* out,
                      std::string* error) {
  if (bytes.size() < kHeaderSize) {
    return Fail(error, "checkpoint truncated: " + std::to_string(bytes.size()) +
                           " bytes, header needs " +
                           std::to_string(kHeaderSize));
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Fail(error, "bad checkpoint magic (not a checkpoint file?)");
  }
  Cursor header(bytes.substr(sizeof kMagic));
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  header.ReadU32(&version);
  header.ReadU32(&crc);
  header.ReadU64(&payload_size);
  if (version != kVersion) {
    return Fail(error, "unsupported checkpoint version " +
                           std::to_string(version) + " (expected " +
                           std::to_string(kVersion) + ")");
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_size) {
    return Fail(error, "checkpoint payload size mismatch: header says " +
                           std::to_string(payload_size) + ", file has " +
                           std::to_string(payload.size()));
  }
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Fail(error, "checkpoint CRC mismatch (corrupted payload)");
  }

  CheckpointState state;
  Cursor c(payload);
  uint32_t dims = 0;
  uint8_t kind = 0;
  uint64_t count = 0;
  if (!c.ReadString(&state.producer, kMaxProducerBytes)) {
    return Fail(error, "checkpoint build-info stamp truncated or oversized");
  }
  if (!c.ReadU32(&dims) || !c.ReadF64(&state.q) || !c.ReadU8(&kind) ||
      !c.ReadU64(&state.window_capacity) || !c.ReadF64(&state.time_span) ||
      !c.ReadU64(&state.elements_consumed) ||
      !c.ReadU64(&state.lines_consumed) || !c.ReadU64(&state.next_seq) ||
      !c.ReadU64(&state.bad_lines_skipped) || !c.ReadU64(&state.probs_clamped) ||
      !c.ReadU64(&state.ooo_dropped) || !c.ReadU64(&count)) {
    return Fail(error, "checkpoint payload truncated in fixed fields");
  }
  if (dims < 1 || dims > static_cast<uint32_t>(kMaxDims)) {
    return Fail(error, "checkpoint dims out of range: " + std::to_string(dims));
  }
  state.dims = static_cast<int>(dims);
  if (!(state.q > 0.0) || !(state.q <= 1.0) || !std::isfinite(state.q)) {
    return Fail(error, "checkpoint q out of range");
  }
  if (kind > static_cast<uint8_t>(WindowKind::kTime)) {
    return Fail(error, "checkpoint window kind unknown: " +
                           std::to_string(kind));
  }
  state.window_kind = static_cast<WindowKind>(kind);
  const size_t elem_bytes = 24 + 8 * static_cast<size_t>(state.dims);
  // Divide instead of multiplying: count is attacker-controlled and
  // count * elem_bytes can wrap mod 2^64 to match remaining(), sending a
  // colossal count into window.reserve() (fuzz regression
  // ckpt-count-overflow).
  if (count > c.remaining() / elem_bytes || c.remaining() != count * elem_bytes) {
    return Fail(error, "checkpoint element section size mismatch: " +
                           std::to_string(count) + " elements need " +
                           std::to_string(count * elem_bytes) + " bytes, " +
                           std::to_string(c.remaining()) + " present");
  }
  state.window.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    UncertainElement e;
    e.pos = Point(state.dims);
    c.ReadU64(&e.seq);
    c.ReadF64(&e.prob);
    c.ReadF64(&e.time);
    for (int d = 0; d < state.dims; ++d) c.ReadF64(&e.pos[d]);
    if (!std::isfinite(e.prob) || e.prob <= 0.0 || e.prob > 1.0) {
      return Fail(error, "checkpoint element " + std::to_string(i) +
                             " has invalid probability");
    }
    for (int d = 0; d < state.dims; ++d) {
      if (!std::isfinite(e.pos[d])) {
        return Fail(error, "checkpoint element " + std::to_string(i) +
                               " has non-finite coordinate");
      }
    }
    state.window.push_back(e);
  }
  *out = std::move(state);
  return true;
}

bool WriteCheckpointFile(const std::string& path, const CheckpointState& state,
                         std::string* error) {
  return WriteCheckpointFile(path, state, error, nullptr);
}

bool WriteCheckpointFile(const std::string& path, const CheckpointState& state,
                         std::string* error, int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  // A crash mid-write leaves a ".tmp" behind; clear that wreckage before
  // producing more so interrupted runs cannot accumulate temp files.
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  RemoveStaleCheckpointTemps(parent.empty() ? "." : parent);
  const std::string bytes = EncodeCheckpoint(state);
  const std::string tmp = path + ".tmp";
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointOpen)) {
      return FailIo(error, out_errno, inj,
                    "cannot open " + tmp + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return FailIo(error, out_errno, errno,
                  "cannot open " + tmp + ": " + ErrnoString());
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointWrite)) {
      std::fclose(f);
      return FailIo(error, out_errno, inj,
                    "cannot write " + tmp + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  // Two-chunk write with an injectable crash between the chunks, so fault
  // tests can produce a genuinely truncated temp file.
  const size_t half = bytes.size() / 2;
  errno = 0;
  if (std::fwrite(bytes.data(), 1, half, f) != half) {
    const int err = errno != 0 ? errno : EIO;
    std::fclose(f);
    return FailIo(error, out_errno, err, "short write to " + tmp);
  }
  if (!SurvivesCrashPoint(CheckpointCrashPoint::kMidPayload)) {
    std::fclose(f);
    return Fail(error, "simulated crash mid-checkpoint-write");
  }
  if (std::fwrite(bytes.data() + half, 1, bytes.size() - half, f) !=
      bytes.size() - half) {
    const int err = errno != 0 ? errno : EIO;
    std::fclose(f);
    return FailIo(error, out_errno, err, "short write to " + tmp);
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointFsync)) {
      std::fclose(f);
      return FailIo(error, out_errno, inj,
                    "cannot flush " + tmp + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  if (std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    const int err = errno;
    std::fclose(f);
    return FailIo(error, out_errno, err,
                  "cannot flush " + tmp + ": " + ErrnoString(err));
  }
  std::fclose(f);
  if (!SurvivesCrashPoint(CheckpointCrashPoint::kBeforeRename)) {
    return Fail(error, "simulated crash before checkpoint rename");
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointRename)) {
      return FailIo(error, out_errno, inj,
                    "cannot rename " + tmp + " to " + path + ": " +
                        ErrnoString(inj) + " (injected)");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return FailIo(error, out_errno, errno,
                  "cannot rename " + tmp + " to " + path + ": " +
                      ErrnoString());
  }
  return true;
}

bool WriteCheckpointFileRetry(const std::string& path,
                              const CheckpointState& state,
                              const RetryPolicy& policy, RetryStats* stats,
                              std::string* error) {
  std::string last_error;
  const bool ok = RetryWithBackoff(
      policy,
      [&](int* err) {
        return WriteCheckpointFile(path, state, &last_error, err);
      },
      stats);
  if (!ok && error != nullptr) *error = last_error;
  return ok;
}

bool WriteCheckpointFileStreamed(const std::string& path,
                                 const CheckpointState& state,
                                 uint64_t window_count,
                                 const CheckpointElementSource& source,
                                 std::string* error, int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  const std::string parent =
      std::filesystem::path(path).parent_path().string();
  RemoveStaleCheckpointTemps(parent.empty() ? "." : parent);
  const std::string tmp = path + ".tmp";
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointOpen)) {
      return FailIo(error, out_errno, inj,
                    "cannot open " + tmp + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return FailIo(error, out_errno, errno,
                  "cannot open " + tmp + ": " + ErrnoString());
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointWrite)) {
      std::fclose(f);
      return FailIo(error, out_errno, inj,
                    "cannot write " + tmp + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  auto fail_write = [&]() {
    const int err = errno != 0 ? errno : EIO;
    std::fclose(f);
    return FailIo(error, out_errno, err, "short write to " + tmp);
  };
  // Placeholder header: the payload CRC and size are only known once the
  // payload has streamed past the incremental checksum, so they are
  // back-patched before the fsync. The rename-into-place discipline means
  // no reader ever sees the placeholder.
  std::string header;
  header.append(kMagic, sizeof kMagic);
  AppendU32(&header, kVersion);
  AppendU32(&header, 0);
  AppendU64(&header, 0);
  errno = 0;
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    return fail_write();
  }
  uint32_t crc = 0;
  uint64_t payload_size = 0;
  std::string chunk = EncodePayloadPrefix(state, window_count);
  auto flush_chunk = [&]() {
    crc = Crc32(chunk.data(), chunk.size(), crc);
    payload_size += chunk.size();
    errno = 0;
    const bool ok =
        std::fwrite(chunk.data(), 1, chunk.size(), f) == chunk.size();
    chunk.clear();
    return ok;
  };
  if (!flush_chunk()) return fail_write();
  if (!SurvivesCrashPoint(CheckpointCrashPoint::kMidPayload)) {
    std::fclose(f);
    return Fail(error, "simulated crash mid-checkpoint-write");
  }
  // One chunk of elements in memory at a time — never the window.
  constexpr size_t kChunkBytes = 1 << 18;
  UncertainElement e;
  for (uint64_t i = 0; i < window_count; ++i) {
    if (!source(&e)) {
      std::fclose(f);
      return Fail(error, "checkpoint element source ended early at " +
                             std::to_string(i) + " of " +
                             std::to_string(window_count));
    }
    AppendElement(&chunk, e, state.dims);
    if (chunk.size() >= kChunkBytes && !flush_chunk()) return fail_write();
  }
  if (!chunk.empty() && !flush_chunk()) return fail_write();
  std::string patched;
  patched.append(kMagic, sizeof kMagic);
  AppendU32(&patched, kVersion);
  AppendU32(&patched, crc);
  AppendU64(&patched, payload_size);
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    const int err = errno;
    std::fclose(f);
    return FailIo(error, out_errno, err,
                  "cannot seek in " + tmp + ": " + ErrnoString(err));
  }
  errno = 0;
  if (std::fwrite(patched.data(), 1, patched.size(), f) != patched.size()) {
    return fail_write();
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointFsync)) {
      std::fclose(f);
      return FailIo(error, out_errno, inj,
                    "cannot flush " + tmp + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  if (std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    const int err = errno;
    std::fclose(f);
    return FailIo(error, out_errno, err,
                  "cannot flush " + tmp + ": " + ErrnoString(err));
  }
  std::fclose(f);
  if (!SurvivesCrashPoint(CheckpointCrashPoint::kBeforeRename)) {
    return Fail(error, "simulated crash before checkpoint rename");
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kCheckpointRename)) {
      return FailIo(error, out_errno, inj,
                    "cannot rename " + tmp + " to " + path + ": " +
                        ErrnoString(inj) + " (injected)");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return FailIo(error, out_errno, errno,
                  "cannot rename " + tmp + " to " + path + ": " +
                      ErrnoString());
  }
  return true;
}

bool WriteCheckpointFileStreamedRetry(
    const std::string& path, const CheckpointState& state,
    uint64_t window_count,
    const std::function<CheckpointElementSource()>& source_factory,
    const RetryPolicy& policy, RetryStats* stats, std::string* error) {
  std::string last_error;
  const bool ok = RetryWithBackoff(
      policy,
      [&](int* err) {
        // A fresh source per attempt: a cursor consumed by a failed
        // attempt cannot be rewound.
        return WriteCheckpointFileStreamed(path, state, window_count,
                                           source_factory(), &last_error, err);
      },
      stats);
  if (!ok && error != nullptr) *error = last_error;
  return ok;
}

bool ReadCheckpointFileStreamed(const std::string& path, CheckpointState* out,
                                const CheckpointElementSink& sink,
                                std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(error, "cannot open " + path + ": " + ErrnoString());
  }
  auto fail_close = [&](const std::string& msg) {
    std::fclose(f);
    return Fail(error, path + ": " + msg);
  };
  char header[kHeaderSize];
  const size_t header_got = std::fread(header, 1, sizeof header, f);
  if (header_got < kHeaderSize) {
    return fail_close("checkpoint truncated: " + std::to_string(header_got) +
                      " bytes, header needs " + std::to_string(kHeaderSize));
  }
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    return fail_close("bad checkpoint magic (not a checkpoint file?)");
  }
  Cursor hc(std::string_view(header + sizeof kMagic,
                             kHeaderSize - sizeof kMagic));
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  hc.ReadU32(&version);
  hc.ReadU32(&crc);
  hc.ReadU64(&payload_size);
  if (version != kVersion) {
    return fail_close("unsupported checkpoint version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kVersion) + ")");
  }
  // Pass 1: checksum the payload without retaining it, so corruption is
  // detected before any element reaches the sink.
  uint32_t actual_crc = 0;
  uint64_t actual_size = 0;
  {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      actual_crc = Crc32(buf, n, actual_crc);
      actual_size += n;
    }
    if (std::ferror(f) != 0) return fail_close("cannot read payload");
  }
  if (actual_size != payload_size) {
    return fail_close("checkpoint payload size mismatch: header says " +
                      std::to_string(payload_size) + ", file has " +
                      std::to_string(actual_size));
  }
  if (actual_crc != crc) {
    return fail_close("checkpoint CRC mismatch (corrupted payload)");
  }
  // Pass 2: decode. The fixed fields fit a small buffer (the producer
  // stamp is capped at kMaxProducerBytes); elements stream in batches.
  if (std::fseek(f, static_cast<long>(kHeaderSize), SEEK_SET) != 0) {
    return fail_close("cannot seek to payload");
  }
  std::string fixed(static_cast<size_t>(std::min<uint64_t>(
                        payload_size, kMaxProducerBytes + 256)),
                    '\0');
  if (std::fread(fixed.data(), 1, fixed.size(), f) != fixed.size()) {
    return fail_close("cannot read payload");
  }
  CheckpointState state;
  Cursor c(fixed);
  uint32_t dims = 0;
  uint8_t kind = 0;
  uint64_t count = 0;
  if (!c.ReadString(&state.producer, kMaxProducerBytes)) {
    return fail_close("checkpoint build-info stamp truncated or oversized");
  }
  if (!c.ReadU32(&dims) || !c.ReadF64(&state.q) || !c.ReadU8(&kind) ||
      !c.ReadU64(&state.window_capacity) || !c.ReadF64(&state.time_span) ||
      !c.ReadU64(&state.elements_consumed) ||
      !c.ReadU64(&state.lines_consumed) || !c.ReadU64(&state.next_seq) ||
      !c.ReadU64(&state.bad_lines_skipped) ||
      !c.ReadU64(&state.probs_clamped) || !c.ReadU64(&state.ooo_dropped) ||
      !c.ReadU64(&count)) {
    return fail_close("checkpoint payload truncated in fixed fields");
  }
  if (dims < 1 || dims > static_cast<uint32_t>(kMaxDims)) {
    return fail_close("checkpoint dims out of range: " + std::to_string(dims));
  }
  state.dims = static_cast<int>(dims);
  if (!(state.q > 0.0) || !(state.q <= 1.0) || !std::isfinite(state.q)) {
    return fail_close("checkpoint q out of range");
  }
  if (kind > static_cast<uint8_t>(WindowKind::kTime)) {
    return fail_close("checkpoint window kind unknown: " +
                      std::to_string(kind));
  }
  state.window_kind = static_cast<WindowKind>(kind);
  const size_t consumed = fixed.size() - c.remaining();
  const uint64_t elem_section = payload_size - consumed;
  const uint64_t elem_bytes = 24 + 8 * static_cast<uint64_t>(state.dims);
  // Same division-first overflow guard as DecodeCheckpoint.
  if (count > elem_section / elem_bytes ||
      elem_section != count * elem_bytes) {
    return fail_close("checkpoint element section size mismatch: " +
                      std::to_string(count) + " elements need " +
                      std::to_string(count * elem_bytes) + " bytes, " +
                      std::to_string(elem_section) + " present");
  }
  if (std::fseek(f, static_cast<long>(kHeaderSize + consumed), SEEK_SET) !=
      0) {
    return fail_close("cannot seek to element section");
  }
  constexpr uint64_t kBatchElements = 4096;
  std::string buf;
  uint64_t i = 0;
  while (i < count) {
    const uint64_t take = std::min(kBatchElements, count - i);
    buf.resize(static_cast<size_t>(take * elem_bytes));
    if (std::fread(buf.data(), 1, buf.size(), f) != buf.size()) {
      return fail_close("cannot read payload");
    }
    Cursor ec(buf);
    for (uint64_t k = 0; k < take; ++k, ++i) {
      UncertainElement e;
      e.pos = Point(state.dims);
      ec.ReadU64(&e.seq);
      ec.ReadF64(&e.prob);
      ec.ReadF64(&e.time);
      for (int d = 0; d < state.dims; ++d) ec.ReadF64(&e.pos[d]);
      if (!std::isfinite(e.prob) || e.prob <= 0.0 || e.prob > 1.0) {
        return fail_close("checkpoint element " + std::to_string(i) +
                          " has invalid probability");
      }
      for (int d = 0; d < state.dims; ++d) {
        if (!std::isfinite(e.pos[d])) {
          return fail_close("checkpoint element " + std::to_string(i) +
                            " has non-finite coordinate");
        }
      }
      sink(e);
    }
  }
  std::fclose(f);
  *out = std::move(state);
  return true;
}

bool ReadCheckpointFile(const std::string& path, CheckpointState* out,
                        std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(error, "cannot open " + path + ": " + ErrnoString());
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Fail(error, "cannot read " + path);
  std::string decode_error;
  if (!DecodeCheckpoint(bytes, out, &decode_error)) {
    return Fail(error, path + ": " + decode_error);
  }
  return true;
}

std::string CheckpointFileName(uint64_t elements_consumed) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "ckpt-%020llu.psky",
                static_cast<unsigned long long>(elements_consumed));
  return buf;
}

std::vector<std::string> ListCheckpointFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() == CheckpointFileName(0).size() &&
        name.rfind("ckpt-", 0) == 0 &&
        name.compare(name.size() - 5, 5, ".psky") == 0) {
      files.push_back(entry.path().string());
    }
  }
  // Zero-padded counts make lexicographic order stream order.
  std::sort(files.begin(), files.end(), std::greater<>());
  return files;
}

bool LoadLatestCheckpoint(const std::string& dir, CheckpointState* out,
                          std::string* error) {
  const std::vector<std::string> files = ListCheckpointFiles(dir);
  std::string diagnostics;
  for (const std::string& path : files) {
    std::string file_error;
    if (ReadCheckpointFile(path, out, &file_error)) {
      if (error != nullptr) *error = diagnostics;  // warnings, if any
      return true;
    }
    diagnostics += (diagnostics.empty() ? "" : "; ") + file_error;
  }
  if (diagnostics.empty()) diagnostics = "no checkpoint files in " + dir;
  return Fail(error, diagnostics);
}

void PruneCheckpoints(const std::string& dir, size_t keep) {
  const std::vector<std::string> files = ListCheckpointFiles(dir);
  std::error_code ec;
  for (size_t i = keep; i < files.size(); ++i) {
    std::filesystem::remove(files[i], ec);
  }
  RemoveStaleCheckpointTemps(dir);
}

size_t RemoveStaleCheckpointTemps(const std::string& dir) {
  size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

bool EnsureCheckpointDir(const std::string& dir, std::string* error) {
  std::error_code ec;
  if (std::filesystem::is_directory(dir, ec)) return true;
  if (std::filesystem::exists(dir, ec)) {
    *error = dir + " exists but is not a directory";
    return false;
  }
  if (!std::filesystem::create_directories(dir, ec)) {
    *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  return true;
}

void ReplayWindow(const CheckpointState& state, WindowSkylineOperator* op) {
  for (const UncertainElement& e : state.window) op->Insert(e);
}

}  // namespace psky
