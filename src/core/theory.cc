#include "core/theory.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/check.h"

namespace psky {

double HarmonicNumber(int d, int64_t l) {
  PSKY_CHECK_MSG(d >= 1, "harmonic order must be >= 1");
  PSKY_CHECK_MSG(l >= 0, "harmonic length must be >= 0");
  if (l == 0) return 0.0;
  // Rolling table: cur[i] = H_{order, i} for i in [1, l].
  std::vector<double> cur(static_cast<size_t>(l) + 1, 0.0);
  for (int64_t i = 1; i <= l; ++i) {
    cur[static_cast<size_t>(i)] = cur[static_cast<size_t>(i - 1)] +
                                  1.0 / static_cast<double>(i);
  }
  for (int order = 2; order <= d; ++order) {
    std::vector<double> next(static_cast<size_t>(l) + 1, 0.0);
    for (int64_t i = 1; i <= l; ++i) {
      next[static_cast<size_t>(i)] =
          next[static_cast<size_t>(i - 1)] +
          cur[static_cast<size_t>(i)] / static_cast<double>(i);
    }
    cur.swap(next);
  }
  return cur[static_cast<size_t>(l)];
}

double DominanceCountBound(int d, int64_t n, int64_t k) {
  PSKY_CHECK(d >= 1 && n >= 1 && k >= 0);
  if (k + 1 >= n) return 1.0;
  const double base = static_cast<double>(k + 1) / static_cast<double>(n);
  if (d == 1) return std::min(1.0, base);
  const double bound =
      base * (1.0 + HarmonicNumber(d - 1, n) - HarmonicNumber(d - 1, k + 1));
  return std::min(1.0, bound);
}

namespace {

// Corollary 3 with per-element weights w_k = w0 * (1-p)^k, where w0 = p
// for the skyline bound (Theorem 6 weights q_{k,i} = P_i * P(¬W)) and
// w0 = 1 for the candidate bound (Theorem 8 weights p_{k,i} = P(¬W)).
double BoundImpl(int d, int64_t n, double p, double q, double w0) {
  PSKY_CHECK(n >= 1);
  PSKY_CHECK_MSG(p > 0.0 && p <= 1.0, "probability must be in (0, 1]");
  PSKY_CHECK_MSG(q > 0.0 && q <= 1.0, "threshold must be in (0, 1]");
  if (w0 < q) return 0.0;  // w_0 < q: nothing can reach the threshold

  // k* = largest k with w0 (1-p)^k >= q.
  int64_t k_star;
  if (p >= 1.0) {
    // Any dominator certainly occurs; only undominated elements qualify.
    k_star = 0;
  } else {
    k_star = static_cast<int64_t>(
        std::floor(std::log(q / w0) / std::log1p(-p)));
    k_star = std::max<int64_t>(0, std::min(k_star, n - 1));
  }

  auto w_of = [p, w0](int64_t k) {
    return w0 * std::pow(1.0 - p, static_cast<double>(k));
  };

  double total = 0.0;
  for (int64_t j = 0; j < k_star; ++j) {
    total += DominanceCountBound(d, n, j) * (w_of(j) - w_of(j + 1));
  }
  total += DominanceCountBound(d, n, k_star) * w_of(k_star);
  return static_cast<double>(n) * total;
}

}  // namespace

double ExpectedSkylineSizeBound(int d, int64_t n, double p, double q) {
  return BoundImpl(d, n, p, q, /*w0=*/p);
}

double ExpectedCandidateSizeBound(int d, int64_t n, double p, double q) {
  // Arrival order behaves as one additional independent dimension
  // (Theorem 8); the element's own probability does not enter P_new.
  return BoundImpl(d + 1, n, p, q, /*w0=*/1.0);
}

}  // namespace psky
