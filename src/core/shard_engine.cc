#include "core/shard_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "base/check.h"
#include "geom/dominance.h"

namespace psky {

bool ParseShardStrategy(const std::string& text, ShardStrategy* out) {
  if (text == "grid") {
    *out = ShardStrategy::kGrid;
    return true;
  }
  if (text == "band") {
    *out = ShardStrategy::kBand;
    return true;
  }
  return false;
}

namespace {

constexpr size_t kWorkerBatch = 256;
/// Dominating-region scans larger than this fall back to the O(dims)
/// min-corner histogram test (still conservative, never a false skip).
constexpr uint64_t kMaxRegionScan = 1024;

}  // namespace

ShardEngine::Shard::Shard(const Options& opts, uint64_t cells)
    : queue(opts.queue_capacity),
      op(opts.dims, opts.q, opts.tree_options),
      occupancy(cells, 0),
      dim_histogram(
          static_cast<size_t>(opts.dims) *
              (opts.grid_resolution != 0
                   ? opts.grid_resolution
                   : CellGrid::ChooseResolution(opts.dims)),
          0) {}

ShardEngine::ShardEngine(const Options& options)
    : options_(options),
      grid_(options.dims, options.grid_resolution != 0
                              ? options.grid_resolution
                              : CellGrid::ChooseResolution(options.dims)),
      watermark_(-std::numeric_limits<double>::infinity()) {
  PSKY_CHECK(options_.shards >= 1 && options_.shards <= 255);
  PSKY_CHECK(options_.window_capacity > 0 || options_.time_span > 0.0);
  PSKY_CHECK(options_.audit.pool == nullptr);
  options_.grid_resolution = grid_.resolution();
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_, grid_.num_cells()));
    Shard* shard = shards_.back().get();
    if (options_.audit.mode != AuditMode::kOff) {
      shard->audit = std::make_unique<AuditManager>(
          &shard->op, options_.audit, [shard]() {
            return std::vector<UncertainElement>(shard->fifo.begin(),
                                                 shard->fifo.end());
          });
    }
    shard->worker = std::thread([this, shard] { WorkerLoop(shard); });
  }
}

ShardEngine::~ShardEngine() { Shutdown(); }

void ShardEngine::Shutdown() {
  if (shutdown_) return;
  shutdown_ = true;
  for (auto& shard : shards_) shard->queue.Close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

int ShardEngine::ShardOf(const UncertainElement& e) const {
  const int n = shards();
  if (n == 1) return 0;
  if (options_.strategy == ShardStrategy::kBand) {
    const double p = ClampProb(e.prob);
    int band = static_cast<int>(p * n);
    if (band >= n) band = n - 1;
    return band;
  }
  return static_cast<int>(CellGrid::HashCell(grid_.IndexOf(e.pos)) %
                          static_cast<uint64_t>(n));
}

void ShardEngine::SendExpireOldest(uint8_t shard) {
  Command cmd;
  cmd.kind = Command::kExpireOldest;
  Shard& s = *shards_[shard];
  s.queue.Push(std::move(cmd));
  ++s.routed;
}

void ShardEngine::SendInsert(const UncertainElement& e, uint8_t shard) {
  Command cmd;
  cmd.kind = Command::kInsert;
  cmd.element = e;
  Shard& s = *shards_[shard];
  s.queue.Push(std::move(cmd));
  ++s.routed;
  ++s.inserted;
}

bool ShardEngine::Route(const UncertainElement& e,
                        UncertainElement* out_admitted) {
  PSKY_CHECK(!shutdown_);
  if (options_.window_capacity > 0) {
    // CountWindow::Push semantics: overflow expires exactly the oldest.
    if (ring_.size() == options_.window_capacity) {
      SendExpireOldest(ring_.front().shard);
      ring_.pop_front();
    }
    const uint8_t owner = static_cast<uint8_t>(ShardOf(e));
    ring_.push_back(RingEntry{e.time, owner});
    SendInsert(e, owner);
    if (out_admitted != nullptr) *out_admitted = e;
    return true;
  }
  // TimeWindow::TryPush semantics, replicated exactly (stream/window.cc).
  UncertainElement admitted = e;
  if (admitted.time < watermark_) {
    if (options_.ooo_policy == TimestampPolicy::kReject) {
      ++rejected_;
      return false;
    }
    admitted.time = watermark_;
    ++clamped_;
  }
  watermark_ = admitted.time;
  const double cutoff = admitted.time - options_.time_span;
  while (!ring_.empty() && ring_.front().time <= cutoff) {
    SendExpireOldest(ring_.front().shard);
    ring_.pop_front();
  }
  const uint8_t owner = static_cast<uint8_t>(ShardOf(admitted));
  ring_.push_back(RingEntry{admitted.time, owner});
  SendInsert(admitted, owner);
  if (out_admitted != nullptr) *out_admitted = admitted;
  return true;
}

void ShardEngine::Restore(std::span<const UncertainElement> window) {
  PSKY_CHECK(ring_.empty());
  for (const UncertainElement& e : window) {
    PSKY_CHECK(options_.window_capacity == 0 ||
               ring_.size() < options_.window_capacity);
    const uint8_t owner = static_cast<uint8_t>(ShardOf(e));
    ring_.push_back(RingEntry{e.time, owner});
    SendInsert(e, owner);
    if (e.time > watermark_) watermark_ = e.time;
  }
  Barrier();
}

void ShardEngine::Barrier() {
  ++barriers_;
  for (auto& shard : shards_) {
    // Workers park in PopBatch when drained, so poll with a short sleep
    // instead of spinning — barriers sit off the per-element hot path
    // (checkpoints, emits, shutdown).
    int spins = 0;
    while (shard->applied.load(std::memory_order_acquire) != shard->routed) {
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }
}

void ShardEngine::WorkerLoop(Shard* shard) {
  std::vector<Command> batch;
  batch.reserve(kWorkerBatch);
  while (true) {
    batch.clear();
    const size_t n = shard->queue.PopBatch(&batch, kWorkerBatch);
    if (n == 0) break;  // closed and drained
    for (const Command& cmd : batch) ApplyCommand(shard, cmd);
    shard->window_elements.store(shard->fifo.size(),
                                 std::memory_order_relaxed);
    shard->candidates.store(shard->op.candidate_count(),
                            std::memory_order_relaxed);
    shard->applied.fetch_add(n, std::memory_order_release);
  }
  if (shard->audit != nullptr) shard->audit->Drain();
}

void ShardEngine::ApplyCommand(Shard* shard, const Command& cmd) {
  if (cmd.kind == Command::kExpireOldest) {
    PSKY_CHECK(!shard->fifo.empty());
    const UncertainElement oldest = shard->fifo.front();
    shard->fifo.pop_front();
    const CellGrid::Cell cell = grid_.CellOf(oldest.pos);
    const uint64_t idx = grid_.IndexOf(cell);
    PSKY_CHECK(shard->occupancy[idx] > 0);
    --shard->occupancy[idx];
    for (int d = 0; d < options_.dims; ++d) {
      uint32_t& h = shard->dim_histogram[static_cast<size_t>(d) *
                                             grid_.resolution() +
                                         cell.coord[d]];
      PSKY_CHECK(h > 0);
      --h;
    }
    shard->op.Expire(oldest);
    return;
  }
  const CellGrid::Cell cell = grid_.CellOf(cmd.element.pos);
  ++shard->occupancy[grid_.IndexOf(cell)];
  for (int d = 0; d < options_.dims; ++d) {
    ++shard->dim_histogram[static_cast<size_t>(d) * grid_.resolution() +
                           cell.coord[d]];
  }
  shard->fifo.push_back(cmd.element);
  shard->op.Insert(cmd.element);
  if (shard->audit != nullptr && !shard->audit->Step()) {
    shard->audit_violations.fetch_add(1, std::memory_order_relaxed);
  }
}

bool ShardEngine::ShardMayRefute(const Shard& shard,
                                 const CellGrid::Cell& cell) const {
  // Min-corner test first: if some dimension's smallest occupied cell
  // coordinate already exceeds the candidate's, nothing in this shard
  // can dominate it.
  const uint32_t res = grid_.resolution();
  for (int d = 0; d < options_.dims; ++d) {
    const uint32_t* hist =
        shard.dim_histogram.data() + static_cast<size_t>(d) * res;
    uint32_t min_coord = res;
    for (uint32_t c = 0; c <= cell.coord[d]; ++c) {
      if (hist[c] != 0) {
        min_coord = c;
        break;
      }
    }
    if (min_coord > cell.coord[d]) return false;
  }
  // Exact region scan when the dominating region is small enough:
  // enumerate every cell c' <= cell componentwise and look for
  // occupancy.
  uint64_t region = 1;
  for (int d = 0; d < options_.dims; ++d) {
    region *= static_cast<uint64_t>(cell.coord[d]) + 1;
  }
  if (region > kMaxRegionScan) return true;  // conservative
  CellGrid::Cell probe;
  const int dims = options_.dims;
  while (true) {
    if (shard.occupancy[grid_.IndexOf(probe)] != 0) return true;
    int d = dims - 1;
    while (d >= 0 && probe.coord[d] == cell.coord[d]) {
      probe.coord[d] = 0;
      --d;
    }
    if (d < 0) return false;
    ++probe.coord[d];
  }
}

std::vector<SkylineMember> ShardEngine::GlobalSkyline(
    size_t* candidate_count) {
  Barrier();
  ++merges_;
  const int n = shards();
  const double q_log = std::log(options_.q);

  // U = union of shard-local candidate sets, each sorted by seq.
  struct MergeCandidate {
    SkylineMember local;
    double newer_log = 0.0;
    double older_log = 0.0;
    bool in_sstar = false;
  };
  std::vector<MergeCandidate> u;
  for (int i = 0; i < n; ++i) {
    for (const SkylineMember& m :
         shards_[static_cast<size_t>(i)]->op.Candidates()) {
      MergeCandidate mc;
      mc.local = m;
      u.push_back(mc);
    }
  }
  merge_candidates_ += u.size();

  // Phase 1: exact dominator sums over U, accumulated in shard-index
  // order so the summation is deterministic.
  for (MergeCandidate& mc : u) {
    const CellGrid::Cell cell = grid_.CellOf(mc.local.element.pos);
    for (int j = 0; j < n; ++j) {
      const Shard& shard = *shards_[static_cast<size_t>(j)];
      if (!ShardMayRefute(shard, cell)) {
        ++merge_cell_skips_;
        continue;
      }
      ++merge_probes_;
      const SkyTree::DominatorSums sums = shard.op.tree().ExactDominators(
          mc.local.element.pos, mc.local.element.seq);
      mc.newer_log += sums.newer_log;
      mc.older_log += sums.older_log;
    }
    // S* membership: full-window P_new >= q (see file comment for why
    // the U-sum equals the full-window sum exactly for true members).
    mc.in_sstar = mc.newer_log >= q_log;
  }

  // Phase 2: restrict the sums to S* by removing the factors of
  // U \ S* dominators, then decide membership on restricted P_sky.
  std::vector<const MergeCandidate*> rejected;
  for (const MergeCandidate& mc : u) {
    if (!mc.in_sstar) rejected.push_back(&mc);
  }
  if (candidate_count != nullptr) *candidate_count = u.size() - rejected.size();
  std::vector<SkylineMember> out;
  for (MergeCandidate& mc : u) {
    if (!mc.in_sstar) continue;
    for (const MergeCandidate* r : rejected) {
      if (!Dominates(r->local.element.pos, mc.local.element.pos)) continue;
      const double factor = LogOneMinusProb(r->local.element.prob);
      if (r->local.element.seq > mc.local.element.seq) {
        mc.newer_log -= factor;
      } else {
        mc.older_log -= factor;
      }
    }
    const double prob_log = std::log(mc.local.element.prob);
    const double psky_log = prob_log + mc.newer_log + mc.older_log;
    if (psky_log >= q_log) {
      SkylineMember m;
      m.element = mc.local.element;
      m.pnew = std::exp(mc.newer_log);
      m.pold = std::exp(mc.older_log);
      m.psky = std::exp(psky_log);
      m.in_skyline = true;
      out.push_back(m);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return out;
}

std::vector<UncertainElement> ShardEngine::WindowSnapshot() {
  Barrier();
  // K-way merge of the shard FIFOs by arrival sequence. Each FIFO is
  // already seq-sorted (commands arrive in global order), so a linear
  // merge reconstructs the exact sequential window.
  std::vector<UncertainElement> out;
  out.reserve(ring_.size());
  std::vector<size_t> cursor(static_cast<size_t>(shards()), 0);
  while (true) {
    int best = -1;
    uint64_t best_seq = 0;
    for (int i = 0; i < shards(); ++i) {
      const auto& fifo = shards_[static_cast<size_t>(i)]->fifo;
      const size_t c = cursor[static_cast<size_t>(i)];
      if (c >= fifo.size()) continue;
      if (best < 0 || fifo[c].seq < best_seq) {
        best = i;
        best_seq = fifo[c].seq;
      }
    }
    if (best < 0) break;
    out.push_back(
        shards_[static_cast<size_t>(best)]->fifo[cursor[static_cast<size_t>(
            best)]++]);
  }
  PSKY_CHECK(out.size() == ring_.size());
  return out;
}

ShardEngine::Stats ShardEngine::GetStats() const {
  Stats stats;
  stats.shards.reserve(shards_.size());
  uint64_t total_window = 0;
  uint64_t max_window = 0;
  for (const auto& shard : shards_) {
    ShardStats s;
    s.routed = shard->routed;
    s.applied = shard->applied.load(std::memory_order_relaxed);
    s.inserted = shard->inserted;
    s.queue_depth = shard->queue.SizeApprox();
    s.window_elements =
        shard->window_elements.load(std::memory_order_relaxed);
    s.candidates = shard->candidates.load(std::memory_order_relaxed);
    s.audit_violations =
        shard->audit_violations.load(std::memory_order_relaxed);
    total_window += s.window_elements;
    max_window = std::max<uint64_t>(max_window, s.window_elements);
    stats.shards.push_back(s);
  }
  if (total_window > 0) {
    const double mean = static_cast<double>(total_window) /
                        static_cast<double>(shards_.size());
    stats.imbalance = static_cast<double>(max_window) / mean;
  }
  stats.merges = merges_;
  stats.merge_candidates = merge_candidates_;
  stats.merge_probes = merge_probes_;
  stats.merge_cell_skips = merge_cell_skips_;
  stats.barriers = barriers_;
  return stats;
}

AuditReport ShardEngine::AuditReportMerged() {
  AuditReport merged;
  for (const auto& shard : shards_) {
    if (shard->audit == nullptr) continue;
    shard->audit->Drain();
    const AuditReport& r = shard->audit->report();
    merged.steps_seen += r.steps_seen;
    merged.elements_audited += r.elements_audited;
    merged.max_drift = std::max(merged.max_drift, r.max_drift);
    merged.drift_beyond_tolerance += r.drift_beyond_tolerance;
    merged.repairs_applied += r.repairs_applied;
    merged.band_flips_prevented += r.band_flips_prevented;
    merged.false_evictions += r.false_evictions;
    merged.oracle_replays += r.oracle_replays;
    merged.oracle_mismatches += r.oracle_mismatches;
    merged.violations_unrepaired += r.violations_unrepaired;
  }
  return merged;
}

}  // namespace psky
