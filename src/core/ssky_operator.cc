#include "core/ssky_operator.h"

#include <algorithm>
#include <unordered_map>

namespace psky {

SskyOperator::SskyOperator(int dims, double q, SkyTree::Options options)
    : q_(q), tree_(dims, {q}, options) {}

void SskyOperator::Insert(const UncertainElement& e) {
  ++stats_.arrivals;
  UncertainElement clamped = e;
  clamped.prob = ClampProb(clamped.prob);
  tree_.Arrive(clamped);
}

void SskyOperator::Expire(const UncertainElement& e) {
  ++stats_.expirations;
  tree_.Expire(e);
}

std::vector<SkylineMember> SskyOperator::Skyline() const {
  std::vector<SkylineMember> out;
  out.reserve(tree_.skyline_size());
  tree_.ForEach([&out](const SkylineMember& m, int band) {
    if (band == 1) out.push_back(m);
  });
  std::sort(out.begin(), out.end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return out;
}

std::vector<SkylineMember> SskyOperator::Candidates() const {
  std::vector<SkylineMember> out;
  out.reserve(tree_.size());
  tree_.ForEach(
      [&out](const SkylineMember& m, int /*band*/) { out.push_back(m); });
  std::sort(out.begin(), out.end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return out;
}

SskyOperator::SkylineDelta SskyOperator::TakeSkylineDelta() {
  tree_.DrainBandChanges(&scratch_events_);
  scratch_net_.clear();
  for (const SkyTree::BandChange& ev : scratch_events_) {
    auto [it, inserted] =
        scratch_net_.try_emplace(ev.seq, NetBandMove{ev.old_band, 0});
    it->second.last_new = ev.new_band;
  }
  SkylineDelta delta;
  for (const auto& [seq, n] : scratch_net_) {
    const bool was_sky = n.first_old == 1;
    const bool is_sky = n.last_new == 1;
    if (!was_sky && is_sky) delta.entered.push_back(seq);
    if (was_sky && !is_sky) delta.left.push_back(seq);
  }
  std::sort(delta.entered.begin(), delta.entered.end());
  std::sort(delta.left.begin(), delta.left.end());
  return delta;
}

const OperatorStats& SskyOperator::stats() const {
  const SkyTree::Counters& c = tree_.counters();
  stats_.evictions = c.evictions;
  stats_.nodes_visited = c.nodes_visited;
  stats_.elements_touched = c.elements_touched;
  return stats_;
}

}  // namespace psky
