#include "core/naive_operator.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "geom/dominance.h"

namespace psky {

NaiveSkylineOperator::NaiveSkylineOperator(int dims, double q)
    : dims_(dims), q_(q), q_log_(std::log(q)) {
  PSKY_CHECK_MSG(dims >= 1 && dims <= kMaxDims, "dims out of range");
  PSKY_CHECK_MSG(q > 1e-9 && q <= 1.0, "threshold must be in (1e-9, 1]");
}

void NaiveSkylineOperator::Insert(const UncertainElement& raw) {
  ++stats_.arrivals;
  UncertainElement e = raw;
  e.prob = ClampProb(e.prob);
  const double e_log_factor = LogOneMinusProb(e.prob);

  // 1) P_old of the arrival over the current candidate set, and P_new
  //    updates of the candidates it dominates.
  double pold_log_new = 0.0;
  for (Entry& entry : set_) {
    ++stats_.elements_touched;
    if (Dominates(entry.elem.pos, e.pos)) {
      pold_log_new += LogOneMinusProb(entry.elem.prob);
    } else if (Dominates(e.pos, entry.elem.pos)) {
      entry.pnew_log += e_log_factor;
    }
  }

  // 2) Evict candidates whose P_new dropped below q.
  std::vector<Entry> evicted;
  size_t keep = 0;
  for (size_t i = 0; i < set_.size(); ++i) {
    if (set_[i].pnew_log < q_log_) {
      evicted.push_back(set_[i]);
    } else {
      set_[keep++] = set_[i];
    }
  }
  set_.resize(keep);
  stats_.evictions += evicted.size();

  // 3) Survivors dominated by an evictee lose that factor from their
  //    restricted P_old. (By Lemma 2 every such evictee is older than the
  //    survivor, so the factor lives in P_old, never in P_new.)
  if (!evicted.empty()) {
    for (Entry& entry : set_) {
      for (const Entry& gone : evicted) {
        ++stats_.elements_touched;
        if (Dominates(gone.elem.pos, entry.elem.pos)) {
          entry.pold_log -= LogOneMinusProb(gone.elem.prob);
        }
      }
    }
  }

  // 4) The arrival always joins S_{N,q} (its P_new is 1).
  set_.push_back(Entry{e, /*pnew_log=*/0.0, /*pold_log=*/pold_log_new});
}

void NaiveSkylineOperator::Expire(const UncertainElement& e) {
  ++stats_.expirations;
  // The expiring element may have been evicted earlier; then its factor is
  // already absent from every restricted probability.
  auto it = std::find_if(set_.begin(), set_.end(), [&e](const Entry& entry) {
    return entry.elem.seq == e.seq;
  });
  if (it == set_.end()) return;
  const UncertainElement gone = it->elem;
  set_.erase(it);
  const double gone_log = LogOneMinusProb(gone.prob);
  for (Entry& entry : set_) {
    ++stats_.elements_touched;
    if (Dominates(gone.pos, entry.elem.pos)) {
      entry.pold_log -= gone_log;
    }
  }
}

size_t NaiveSkylineOperator::skyline_count() const {
  size_t n = 0;
  for (const Entry& entry : set_) {
    if (entry.psky_log() >= q_log_) ++n;
  }
  return n;
}

std::vector<SkylineMember> NaiveSkylineOperator::Collect(
    bool skyline_only) const {
  std::vector<SkylineMember> out;
  for (const Entry& entry : set_) {
    const double psky_log = entry.psky_log();
    const bool in_sky = psky_log >= q_log_;
    if (skyline_only && !in_sky) continue;
    SkylineMember m;
    m.element = entry.elem;
    m.pnew = std::exp(entry.pnew_log);
    m.pold = std::exp(entry.pold_log);
    m.psky = std::exp(psky_log);
    m.in_skyline = in_sky;
    out.push_back(m);
  }
  std::sort(out.begin(), out.end(),
            [](const SkylineMember& a, const SkylineMember& b) {
              return a.element.seq < b.element.seq;
            });
  return out;
}

std::vector<SkylineMember> NaiveSkylineOperator::Skyline() const {
  return Collect(/*skyline_only=*/true);
}

std::vector<SkylineMember> NaiveSkylineOperator::Candidates() const {
  return Collect(/*skyline_only=*/false);
}

}  // namespace psky
