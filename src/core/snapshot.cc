#include "core/snapshot.h"

#include <algorithm>

#include "core/possible_worlds.h"

namespace psky {

std::vector<size_t> CandidateSetIndices(
    const std::vector<UncertainElement>& window, double q) {
  std::vector<size_t> out;
  for (size_t i = 0; i < window.size(); ++i) {
    if (PnewOf(window, i) >= q) out.push_back(i);
  }
  return out;
}

std::vector<size_t> QSkylineIndices(const std::vector<UncertainElement>& window,
                                    double q) {
  std::vector<size_t> out;
  const std::vector<double> psky = AllSkylineProbabilities(window);
  for (size_t i = 0; i < window.size(); ++i) {
    if (psky[i] >= q) out.push_back(i);
  }
  return out;
}

std::vector<size_t> TopKSkylineIndices(
    const std::vector<UncertainElement>& window, double q, size_t k) {
  const std::vector<double> psky = AllSkylineProbabilities(window);
  std::vector<size_t> qualified;
  for (size_t i = 0; i < window.size(); ++i) {
    if (psky[i] >= q) qualified.push_back(i);
  }
  std::sort(qualified.begin(), qualified.end(),
            [&psky, &window](size_t a, size_t b) {
              // Sort tie-break: equality here only decides which comparison
              // key applies; near-equal values falling either way still
              // yield a valid total order.
              // psky-lint: allow(float-eq)
              if (psky[a] != psky[b]) return psky[a] > psky[b];
              return window[a].seq < window[b].seq;
            });
  if (qualified.size() > k) qualified.resize(k);
  return qualified;
}

}  // namespace psky
