// Static (non-incremental) computations over one window snapshot.
//
// These compute, directly from definitions, the candidate set S_{N,q} and
// the q-skyline SKY_{N,q} of a fixed collection of elements. They serve as
// oracles for the incremental operators and as the from-scratch baseline
// for ad-hoc queries.

#ifndef PSKY_CORE_SNAPSHOT_H_
#define PSKY_CORE_SNAPSHOT_H_

#include <cstddef>
#include <vector>

#include "stream/element.h"

namespace psky {

/// Indices of elements with P_new >= q (the candidate set S_{N,q}),
/// in increasing index order. O(n^2).
std::vector<size_t> CandidateSetIndices(
    const std::vector<UncertainElement>& window, double q);

/// Indices of elements with P_sky >= q (the q-skyline SKY_{N,q}),
/// in increasing index order. O(n^2).
std::vector<size_t> QSkylineIndices(const std::vector<UncertainElement>& window,
                                    double q);

/// Indices of the (at most) k elements with the highest P_sky among those
/// with P_sky >= q, ordered by decreasing P_sky (ties by arrival order).
std::vector<size_t> TopKSkylineIndices(
    const std::vector<UncertainElement>& window, double q, size_t k);

}  // namespace psky

#endif  // PSKY_CORE_SNAPSHOT_H_
