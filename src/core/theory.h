// Analytical size bounds from Section III-B of the paper:
// generalized harmonic numbers H_{d,l}, the dominance-count bound of
// Theorem 7, and the expected q-skyline size bound of Corollary 3 under
// identical occurrence probabilities.
//
// bench_theory_bounds compares these against empirically measured
// |SKY_{N,q}| / |S_{N,q}| to confirm the poly-logarithmic behaviour.

#ifndef PSKY_CORE_THEORY_H_
#define PSKY_CORE_THEORY_H_

#include <cstdint>

namespace psky {

/// H_{d,l}: H_{1,l} = sum_{i=1..l} 1/i and
/// H_{d,l} = sum_{i=1..l} H_{d-1,i} / i. Requires d >= 1, l >= 0
/// (H_{d,0} = 0). O(d * l) time, O(l) memory.
double HarmonicNumber(int d, int64_t l);

/// Theorem 7 upper bound on P(DOMT_i^k): the probability that at most k of
/// N i.i.d. elements dominate a random element in d dimensions.
///   d == 1:  (k+1)/N
///   d >= 2:  (k+1)/N * (1 + H_{d-1,N} - H_{d-1,k+1})
double DominanceCountBound(int d, int64_t n, int64_t k);

/// Corollary 3 upper bound on the paper's E[SKY_{N,q}] when every element
/// has the same occurrence probability p: with q_k = p (1-p)^k and k* the
/// largest k with q_k >= q,
///   E <= N * [ sum_{j=0}^{k*-1} P(DOMT^j) (q_j - q_{j+1})
///              + P(DOMT^{k*}) q_{k*} ].
///
/// Note the quantity bounded: Theorem 6 defines E[SKY_{N,q}] with each
/// qualified element weighted by P_i * P(¬W) — i.e., each q-skyline
/// element counts with weight P_sky, the probability that it actually
/// appears undominated in the realized possible world. The raw (unit-
/// weighted) q-skyline count can exceed this bound by up to a 1/q factor.
double ExpectedSkylineSizeBound(int d, int64_t n, double p, double q);

/// Theorem 8 analogue for the candidate set S_{N,q}: identical to
/// ExpectedSkylineSizeBound with dimensionality d + 1 (arrival order acts
/// as one extra independent dimension) and per-element weight P_new
/// (no own-probability factor).
double ExpectedCandidateSizeBound(int d, int64_t n, double p, double q);

}  // namespace psky

#endif  // PSKY_CORE_THEORY_H_
