// Objects with multiple instances over sliding windows (paper Section VI,
// model of Pei et al., VLDB 2007).
//
// An uncertain object U is a set of m instances, each occurring with
// probability 1/m (the discrete uniform instance model; continuous PDFs
// are handled by Monte-Carlo discretization). Objects are atomic in the
// window: all instances arrive and expire together. The skyline
// probability of U is
//
//   P_sky(U) = (1/m) Σ_{u ∈ U} Π_{V ≠ U} (1 − |{v ∈ V : v ≺ u}| / |V|)
//
// and the continuous query reports objects with P_sky(U) >= q.

#ifndef PSKY_CORE_OBJECT_SKYLINE_H_
#define PSKY_CORE_OBJECT_SKYLINE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "base/random.h"
#include "geom/point.h"
#include "rtree/rtree.h"

namespace psky {

/// One uncertain object: a bag of equally likely instances.
struct UncertainObject {
  uint64_t id = 0;
  uint64_t seq = 0;
  double time = 0.0;
  std::vector<Point> instances;
};

/// Samples `m` instances from `sampler` to discretize a continuous object
/// (the Monte-Carlo route of Section VI).
UncertainObject DiscretizeByMonteCarlo(
    uint64_t id, int m, Rng& rng, const std::function<Point(Rng&)>& sampler);

/// Definitional O(|window|^2 m^2) evaluator of P_sky(window[index]);
/// oracle for the operator below.
double ObjectSkylineProbability(const std::vector<UncertainObject>& window,
                                size_t index);

/// Sliding-window skyline operator over multi-instance objects.
///
/// Instances of all window objects are indexed in one R-tree; skyline
/// probabilities are evaluated on demand with per-instance dominance
/// counting (pruned spatially). This extension favours clarity over
/// incrementality — the paper only sketches it, and the instance-level
/// dominance counts do not decompose into the P_new/P_old factors that
/// drive the element-level operator.
class ObjectSkylineOperator {
 public:
  ObjectSkylineOperator(int dims, double q);

  /// Adds an object to the window. Its id must be unique among live
  /// objects, with at least one instance; every instance must have the
  /// operator's dimensionality.
  void Insert(const UncertainObject& obj);

  /// Removes the object with `id` from the window (no-op if absent).
  void Expire(uint64_t id);

  int dims() const { return dims_; }
  double threshold() const { return q_; }
  size_t object_count() const { return objects_by_slot_.size(); }

  /// P_sky of the live object `id` against the current window;
  /// 0 when absent.
  double SkylineProbability(uint64_t id) const;

  /// Ids of objects with P_sky >= q, sorted ascending.
  std::vector<uint64_t> Skyline() const;

 private:
  // Packs (object slot, instance index) into an R-tree item id.
  static uint64_t PackId(uint64_t slot, uint64_t inst) {
    return (slot << 20) | inst;
  }
  static uint64_t SlotOf(uint64_t packed) { return packed >> 20; }

  double SkylineProbabilityOfSlot(uint64_t slot) const;

  int dims_;
  double q_;
  uint64_t next_slot_ = 0;
  // Live objects by slot; slots are never reused within one operator.
  std::unordered_map<uint64_t, UncertainObject> objects_by_slot_;
  std::unordered_map<uint64_t, uint64_t> slot_by_id_;
  RTree instances_;
};

}  // namespace psky

#endif  // PSKY_CORE_OBJECT_SKYLINE_H_
