// The paper's "trivial algorithm" (beginning of Section IV): maintain the
// candidate set S_{N,q} as a flat list and touch every member on each
// arrival / expiry. Amortized O(|S_{N,q}|) per element.
//
// Roles in this repository:
//   * reference semantics — the efficient SSKY operator is validated
//     against it step-by-step;
//   * the baseline of the paper's inline claim that SSKY is ~20x faster
//     (bench/bench_trivial_vs_ssky).

#ifndef PSKY_CORE_NAIVE_OPERATOR_H_
#define PSKY_CORE_NAIVE_OPERATOR_H_

#include <cmath>
#include <vector>

#include "core/operator.h"

namespace psky {

/// Flat-list continuous q-skyline operator.
class NaiveSkylineOperator : public WindowSkylineOperator {
 public:
  /// `dims` is the stream dimensionality, `q` the probability threshold
  /// (must lie in (1e-9, 1]).
  NaiveSkylineOperator(int dims, double q);

  void Insert(const UncertainElement& e) override;
  void Expire(const UncertainElement& e) override;

  size_t candidate_count() const override { return set_.size(); }
  size_t skyline_count() const override;
  std::vector<SkylineMember> Skyline() const override;
  std::vector<SkylineMember> Candidates() const override;
  const OperatorStats& stats() const override { return stats_; }
  double threshold() const override { return q_; }
  int dims() const override { return dims_; }

 private:
  // Probability bookkeeping is kept in log space; see operator.h.
  struct Entry {
    UncertainElement elem;
    double pnew_log = 0.0;
    double pold_log = 0.0;
    double psky_log() const {
      return std::log(elem.prob) + pnew_log + pold_log;
    }
  };

  std::vector<SkylineMember> Collect(bool skyline_only) const;

  int dims_;
  double q_;
  double q_log_;
  std::vector<Entry> set_;
  OperatorStats stats_;
};

}  // namespace psky

#endif  // PSKY_CORE_NAIVE_OPERATOR_H_
