// Ground-truth skyline probabilities.
//
// Two independent evaluators:
//   * enumeration over all 2^n possible worlds (paper Section II-A) — the
//     definition itself, exponential, for n <= kMaxEnumerationElements;
//   * the closed form of Eq. (1): P_sky(a) = P(a) * Π_{a' ≺ a} (1 - P(a')).
//
// Tests verify the two agree, then use the closed form as the oracle for
// the incremental operators.

#ifndef PSKY_CORE_POSSIBLE_WORLDS_H_
#define PSKY_CORE_POSSIBLE_WORLDS_H_

#include <cstddef>
#include <vector>

#include "stream/element.h"

namespace psky {

/// Largest set size accepted by the enumeration evaluator.
inline constexpr size_t kMaxEnumerationElements = 20;

/// P_sky of elems[index] by summing P(W) over every possible world W in
/// which the element occurs and lies on the skyline of W.
double SkylineProbabilityByEnumeration(
    const std::vector<UncertainElement>& elems, size_t index);

/// P_sky of elems[index] by Eq. (1).
double SkylineProbabilityByFormula(const std::vector<UncertainElement>& elems,
                                   size_t index);

/// Eq. (1) for every element; O(n^2).
std::vector<double> AllSkylineProbabilities(
    const std::vector<UncertainElement>& elems);

/// P_new of elems[index] within `elems` (Eq. (2)): product of (1 - P(a'))
/// over dominators that arrived later (larger seq).
double PnewOf(const std::vector<UncertainElement>& elems, size_t index);

/// P_old of elems[index] within `elems` (Eq. (3)): product of (1 - P(a'))
/// over dominators that arrived earlier (smaller seq).
double PoldOf(const std::vector<UncertainElement>& elems, size_t index);

}  // namespace psky

#endif  // PSKY_CORE_POSSIBLE_WORLDS_H_
