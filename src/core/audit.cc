#include "core/audit.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "base/build_info.h"
#include "base/crc32.h"
#include "base/fault_injection.h"
#include "base/wire.h"
#include "core/naive_operator.h"
#include "geom/dominance.h"

namespace psky {

namespace {

std::vector<uint64_t> SkylineSeqs(const std::vector<SkylineMember>& members) {
  std::vector<uint64_t> seqs;
  seqs.reserve(members.size());
  for (const SkylineMember& m : members) seqs.push_back(m.element.seq);
  return seqs;  // Skyline() is already seq-sorted in both operators
}

}  // namespace

AuditManager::AuditManager(SskyOperator* op, AuditOptions options,
                           WindowSnapshotFn window)
    : op_(op),
      options_(options),
      window_(std::move(window)),
      q_log_(std::log(op->threshold())) {}

AuditManager::AuditManager(SskyOperator* op, AuditOptions options,
                           WindowStream window)
    : op_(op),
      options_(options),
      stream_(std::move(window)),
      q_log_(std::log(op->threshold())) {}

AuditManager::~AuditManager() {
  // Wait for the worker so it is not left running against freed inputs;
  // the verdict is discarded (callers that care ran Drain() already).
  if (pending_oracle_.has_value()) pending_oracle_->want.wait();
}

bool AuditManager::AuditOne(const std::vector<UncertainElement>& window,
                            size_t idx) {
  const UncertainElement& e = window[idx];
  // Exact P_new from first principles: every dominator that arrived after
  // `e` is still in the window (windows expire oldest-first), so the sum
  // over newer window dominators *is* the true accumulated P_new — no lazy
  // state consulted.
  double exact_pnew = 0.0;
  for (size_t j = idx + 1; j < window.size(); ++j) {
    if (Dominates(window[j].pos, e.pos)) {
      exact_pnew += LogOneMinusProb(ClampProb(window[j].prob));
    }
  }
  return AuditOneExact(e, exact_pnew);
}

void AuditManager::AuditBatchStreamed(
    const std::vector<std::pair<uint64_t, UncertainElement>>& targets) {
  if (targets.empty()) return;
  // One oldest→newest scan accumulates every target's window-exact P_new
  // (elements newer than the target that dominate it), so a slice of k
  // elements costs one pass over the window, not k.
  std::vector<double> exact_pnew(targets.size(), 0.0);
  uint64_t j = 0;
  stream_.scan([&](const UncertainElement& w) {
    for (size_t t = 0; t < targets.size(); ++t) {
      if (j > targets[t].first && Dominates(w.pos, targets[t].second.pos)) {
        exact_pnew[t] += LogOneMinusProb(ClampProb(w.prob));
      }
    }
    ++j;
  });
  // P_new is a function of raw window contents only, so repairs applied
  // while draining the batch cannot invalidate the accumulated sums.
  for (size_t t = 0; t < targets.size(); ++t) {
    AuditOneExact(targets[t].second, exact_pnew[t]);
  }
}

bool AuditManager::AuditOneExact(const UncertainElement& e,
                                 double exact_pnew) {
  ++report_.elements_audited;
  const SkyTree* tree = &op_->tree();
  const SkyTree::AuditView view = tree->LookupForAudit(e.pos, e.seq);
  if (!view.found) {
    // Evicted from S_{N,q}. Eviction is sound iff exact P_new sits below
    // the retention threshold; newer dominators only shrink P_new, so a
    // correct eviction can never look wrong later. The tolerance margin
    // keeps honest boundary rounding from flagging.
    if (exact_pnew >= q_log_ + options_.tolerance) {
      ++report_.false_evictions;
      ++report_.violations_unrepaired;
      return false;
    }
    return true;
  }

  // Exact P_old: the combined dominator sum over the live candidate set
  // fixes P_sky, and P_old is the remainder after the window-exact P_new
  // (eviction compensation is booked against P_old, paper Lemma 2).
  const SkyTree::DominatorSums sums = tree->ExactDominators(e.pos, e.seq);
  const double exact_total = sums.newer_log + sums.older_log;
  const double exact_pold = exact_total - exact_pnew;

  const double drift_new = std::abs(view.pnew_log - exact_pnew);
  const double drift_old = std::abs(view.pold_log - exact_pold);
  report_.max_drift = std::max({report_.max_drift, drift_new, drift_old});

  const double exact_psky = std::log(ClampProb(e.prob)) + exact_total;
  const int exact_band = tree->BandOfLog(exact_psky);
  const bool drifted =
      drift_new > options_.tolerance || drift_old > options_.tolerance;
  const bool band_wrong = exact_band != view.band;
  if (drifted) ++report_.drift_beyond_tolerance;
  if (!drifted && !band_wrong) return true;

  if (options_.mode != AuditMode::kRepair) {
    ++report_.violations_unrepaired;
    return false;
  }
  const SkyTree::RepairOutcome outcome = op_->mutable_tree()->RepairElement(
      e.pos, e.seq, exact_pnew, exact_pold);
  ++report_.repairs_applied;
  if (outcome.found && outcome.old_band != outcome.new_band) {
    ++report_.band_flips_prevented;
  }
  return true;
}

void AuditManager::RunSliceAudit() {
  if (streamed()) {
    const uint64_t n = stream_.size();
    if (n == 0) return;
    std::vector<std::pair<uint64_t, UncertainElement>> targets;
    targets.reserve(static_cast<size_t>(options_.elements_per_audit));
    for (int k = 0; k < options_.elements_per_audit; ++k) {
      const uint64_t idx = cursor_ % n;
      targets.emplace_back(idx, stream_.at(idx));
      ++cursor_;
    }
    AuditBatchStreamed(targets);
    return;
  }
  const std::vector<UncertainElement> window = window_();
  if (window.empty()) return;
  for (int k = 0; k < options_.elements_per_audit; ++k) {
    AuditOne(window, static_cast<size_t>(cursor_ % window.size()));
    ++cursor_;
  }
}

uint64_t AuditManager::AuditAll() {
  const uint64_t before = report_.violations_unrepaired;
  if (streamed()) {
    // Batched full sweep: bounded target memory per scan regardless of
    // window size.
    constexpr uint64_t kBatch = 256;
    const uint64_t n = stream_.size();
    std::vector<std::pair<uint64_t, UncertainElement>> targets;
    for (uint64_t start = 0; start < n; start += kBatch) {
      const uint64_t stop = std::min(start + kBatch, n);
      targets.clear();
      for (uint64_t idx = start; idx < stop; ++idx) {
        targets.emplace_back(idx, stream_.at(idx));
      }
      AuditBatchStreamed(targets);
    }
    return report_.violations_unrepaired - before;
  }
  const std::vector<UncertainElement> window = window_();
  for (size_t idx = 0; idx < window.size(); ++idx) AuditOne(window, idx);
  return report_.violations_unrepaired - before;
}

bool AuditManager::RunOracleCheck() {
  ++report_.oracle_replays;
  auto replay = [&]() {
    NaiveSkylineOperator oracle(op_->dims(), op_->threshold());
    if (streamed()) {
      stream_.scan(
          [&](const UncertainElement& e) { oracle.Insert(e); });
    } else {
      for (const UncertainElement& e : window_()) oracle.Insert(e);
    }
    return SkylineSeqs(oracle.Skyline());
  };
  const std::vector<uint64_t> want = replay();
  if (SkylineSeqs(op_->Skyline()) == want) return true;

  // Escalate: a q-skyline disagreement means some candidate's band is
  // wrong. Renormalize everything and re-compare; only a disagreement that
  // survives an exact sweep is a genuine (unrepairable) violation.
  if (options_.mode == AuditMode::kRepair) {
    AuditAll();
    if (SkylineSeqs(op_->Skyline()) == want) return true;
  }
  ++report_.oracle_mismatches;
  ++report_.violations_unrepaired;
  return false;
}

void AuditManager::LaunchOracleAsync() {
  ++report_.oracle_replays;
  PendingOracle pending;
  pending.reported = SkylineSeqs(op_->Skyline());
  // The replay touches only its by-value window copy and fresh naive
  // state — never the live tree — so it is safe on a worker thread.
  const int dims = op_->dims();
  const double q = op_->threshold();
  pending.want = options_.pool->Async(
      [dims, q, window = window_()]() {
        NaiveSkylineOperator oracle(dims, q);
        for (const UncertainElement& e : window) oracle.Insert(e);
        return SkylineSeqs(oracle.Skyline());
      });
  pending_oracle_ = std::move(pending);
}

bool AuditManager::HarvestOracle() {
  if (!pending_oracle_.has_value()) return true;
  const std::vector<uint64_t> want = pending_oracle_->want.get();
  const std::vector<uint64_t> reported = std::move(pending_oracle_->reported);
  pending_oracle_.reset();
  if (reported == want) return true;
  // The async verdict is stale by up to oracle_every steps; only a
  // disagreement that also holds against the *live* operator (after repair
  // escalation, per mode) counts as a violation.
  return RunOracleCheck();
}

bool AuditManager::Drain() { return HarvestOracle(); }

bool AuditManager::Step() {
  ++report_.steps_seen;
  if (options_.mode == AuditMode::kOff) return true;
  const uint64_t before = report_.violations_unrepaired;
  // The degradation ladder stretches the slice cadence multiplicatively;
  // stretch 1 is the configured behavior.
  const uint64_t effective_every = options_.audit_every * audit_stretch_;
  if (options_.audit_every > 0 && report_.steps_seen % effective_every == 0) {
    RunSliceAudit();
    last_slice_audit_step_ = report_.steps_seen;
  }
  if (!suspend_oracle_ && options_.oracle_every > 0 &&
      report_.steps_seen % options_.oracle_every == 0) {
    // Streamed windows replay synchronously: the scan faults segments in
    // and out of the live store, which a worker thread cannot share.
    if (options_.pool != nullptr && !streamed()) {
      HarvestOracle();
      LaunchOracleAsync();
    } else {
      RunOracleCheck();
    }
  }
  return report_.violations_unrepaired == before;
}

// ---------------------------------------------------------------------------
// Crash quarantine.
// ---------------------------------------------------------------------------

namespace {

constexpr char kQuarantineMagic[8] = {'P', 'S', 'K', 'Y', 'Q', 'R', 'T', 'N'};
constexpr uint32_t kQuarantineVersion = 1;
constexpr size_t kQuarantineHeaderSize = 24;
constexpr uint64_t kMaxQuarantineString = 1 << 20;

std::string EncodeQuarantine(const QuarantineDump& dump) {
  std::string payload;
  wire::AppendString(&payload, dump.producer.empty() ? BuildInfoString()
                                                     : dump.producer);
  wire::AppendString(&payload, dump.reason);
  const AuditReport& r = dump.report;
  wire::AppendU64(&payload, r.steps_seen);
  wire::AppendU64(&payload, r.elements_audited);
  wire::AppendF64(&payload, r.max_drift);
  wire::AppendU64(&payload, r.drift_beyond_tolerance);
  wire::AppendU64(&payload, r.repairs_applied);
  wire::AppendU64(&payload, r.band_flips_prevented);
  wire::AppendU64(&payload, r.false_evictions);
  wire::AppendU64(&payload, r.oracle_replays);
  wire::AppendU64(&payload, r.oracle_mismatches);
  wire::AppendU64(&payload, r.violations_unrepaired);
  // The window state rides along as a complete embedded checkpoint, so
  // post-mortem tooling can replay it with the ordinary restore path.
  const std::string checkpoint = EncodeCheckpoint(dump.state);
  wire::AppendU64(&payload, checkpoint.size());
  payload += checkpoint;

  std::string out;
  out.reserve(kQuarantineHeaderSize + payload.size());
  out.append(kQuarantineMagic, sizeof kQuarantineMagic);
  wire::AppendU32(&out, kQuarantineVersion);
  wire::AppendU32(&out, Crc32(payload.data(), payload.size()));
  wire::AppendU64(&out, payload.size());
  out += payload;
  return out;
}

bool FailQ(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// strerror's static buffer is not thread-safe in general, but quarantine
// IO runs entirely on the caller's thread and nothing else in this
// process calls strerror concurrently.
std::string ErrnoString() {
  return std::strerror(errno);  // NOLINT(concurrency-mt-unsafe)
}

bool DecodeQuarantine(std::string_view bytes, QuarantineDump* out,
                      std::string* error) {
  if (bytes.size() < kQuarantineHeaderSize) {
    return FailQ(error, "quarantine file truncated in header");
  }
  if (std::memcmp(bytes.data(), kQuarantineMagic, sizeof kQuarantineMagic) !=
      0) {
    return FailQ(error, "bad quarantine magic (not a quarantine file?)");
  }
  wire::Cursor header(bytes.substr(sizeof kQuarantineMagic));
  uint32_t version = 0, crc = 0;
  uint64_t payload_size = 0;
  header.ReadU32(&version);
  header.ReadU32(&crc);
  header.ReadU64(&payload_size);
  if (version != kQuarantineVersion) {
    return FailQ(error, "unsupported quarantine version " +
                            std::to_string(version));
  }
  const std::string_view payload = bytes.substr(kQuarantineHeaderSize);
  if (payload.size() != payload_size) {
    return FailQ(error, "quarantine payload size mismatch");
  }
  if (Crc32(payload.data(), payload.size()) != crc) {
    return FailQ(error, "quarantine CRC mismatch (corrupted payload)");
  }

  QuarantineDump dump;
  wire::Cursor c(payload);
  uint64_t checkpoint_size = 0;
  AuditReport& r = dump.report;
  if (!c.ReadString(&dump.producer, kMaxQuarantineString) ||
      !c.ReadString(&dump.reason, kMaxQuarantineString) ||
      !c.ReadU64(&r.steps_seen) || !c.ReadU64(&r.elements_audited) ||
      !c.ReadF64(&r.max_drift) || !c.ReadU64(&r.drift_beyond_tolerance) ||
      !c.ReadU64(&r.repairs_applied) || !c.ReadU64(&r.band_flips_prevented) ||
      !c.ReadU64(&r.false_evictions) || !c.ReadU64(&r.oracle_replays) ||
      !c.ReadU64(&r.oracle_mismatches) ||
      !c.ReadU64(&r.violations_unrepaired) || !c.ReadU64(&checkpoint_size)) {
    return FailQ(error, "quarantine payload truncated in fixed fields");
  }
  std::string checkpoint;
  if (!c.ReadBytes(&checkpoint, checkpoint_size) || c.remaining() != 0) {
    return FailQ(error, "quarantine embedded checkpoint size mismatch");
  }
  std::string ckpt_error;
  if (!DecodeCheckpoint(checkpoint, &dump.state, &ckpt_error)) {
    return FailQ(error, "quarantine embedded checkpoint: " + ckpt_error);
  }
  *out = std::move(dump);
  return true;
}

}  // namespace

std::string QuarantineFileName(uint64_t elements_consumed) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "quarantine-%020llu.pskyq",
                static_cast<unsigned long long>(elements_consumed));
  return buf;
}

std::string QuarantineFileName(uint64_t elements_consumed, uint64_t dump_seq) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "quarantine-%020llu-%03llu.pskyq",
                static_cast<unsigned long long>(elements_consumed),
                static_cast<unsigned long long>(dump_seq));
  return buf;
}

bool WriteQuarantineFile(const std::string& path, const QuarantineDump& dump,
                         std::string* error) {
  return WriteQuarantineFile(path, dump, error, nullptr);
}

bool WriteQuarantineFile(const std::string& path, const QuarantineDump& dump,
                         std::string* error, int* out_errno) {
  if (out_errno != nullptr) *out_errno = 0;
  auto fail_io = [error, out_errno](int err, const std::string& msg) {
    if (out_errno != nullptr) *out_errno = err;
    return FailQ(error, msg);
  };
  const std::string bytes = EncodeQuarantine(dump);
  const std::string tmp = path + ".tmp";
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kQuarantineWrite)) {
      return fail_io(inj, "cannot write " + tmp + ": " +
                              std::string(std::strerror(inj)) +  // NOLINT(concurrency-mt-unsafe)
                              " (injected)");
    }
  }
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return fail_io(errno, "cannot open " + tmp + ": " + ErrnoString());
  }
  errno = 0;
  if (std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    const int err = errno != 0 ? errno : EIO;
    std::fclose(f);
    return fail_io(err, "short write to " + tmp);
  }
  if (std::fflush(f) != 0 || fsync(fileno(f)) != 0) {
    const int err = errno;
    std::fclose(f);
    return fail_io(err, "cannot flush " + tmp + ": " + ErrnoString());
  }
  std::fclose(f);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail_io(errno, "cannot rename " + tmp + " to " + path + ": " +
                              ErrnoString());
  }
  return true;
}

bool WriteQuarantineFileRetry(const std::string& path,
                              const QuarantineDump& dump,
                              const RetryPolicy& policy, RetryStats* stats,
                              std::string* error) {
  std::string last_error;
  const bool ok = RetryWithBackoff(
      policy,
      [&](int* err) {
        return WriteQuarantineFile(path, dump, &last_error, err);
      },
      stats);
  if (!ok && error != nullptr) *error = last_error;
  return ok;
}

bool QuarantineGovernor::Admit(uint64_t step, uint64_t* seq_out) {
  // A failure while the window since the last admitted dump is still open
  // belongs to that dump's burst. Out-of-order steps (never expected on
  // the crash path) conservatively start a new burst.
  if (dumps_admitted_ > 0 && step >= last_dump_step_ &&
      step - last_dump_step_ < options_.burst_window_steps) {
    ++dumps_suppressed_;
    return false;
  }
  last_dump_step_ = step;
  ++dumps_admitted_;
  if (seq_out != nullptr) *seq_out = dumps_admitted_;
  return true;
}

bool ReadQuarantineFile(const std::string& path, QuarantineDump* out,
                        std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return FailQ(error, "cannot open " + path + ": " + ErrnoString());
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return FailQ(error, "cannot read " + path);
  std::string decode_error;
  if (!DecodeQuarantine(bytes, out, &decode_error)) {
    return FailQ(error, path + ": " + decode_error);
  }
  return true;
}

}  // namespace psky
