// Out-of-core window buffer: a FIFO of stream elements held in
// memory-mapped, fixed-size segment files.
//
// The paper's Theorem 8 bounds the live candidate set S_{N,q} at
// O(polylog^d N), so for giant windows only the sky-tree needs RAM — the
// raw window contents (needed solely to know *which* element expires
// next) can live on disk. This store keeps them there: elements append
// to the newest segment and pop from the oldest, and a fully drained
// segment file is recycled as the next tail segment instead of being
// deleted and recreated (the gtsat in_disk split: hot index in memory,
// bulk data on disk).
//
// Segments are per-run scratch, not durable state: files are recreated
// on startup (the startup sweep deletes leftovers) and carry no CRC —
// durability comes from checkpoints plus the WAL (store/wal.h). Slot
// layout is the checkpoint v2 element encoding (seq u64, prob f64,
// time f64, pos[dims] f64), written via memcpy of host-endian bit
// patterns so reads round-trip bit-exactly.
//
// I/O failures report through bool + *error (no exceptions, no output);
// the segment-map and segment-recycle fault-injection sites cover the
// two mutating I/O paths.

#ifndef PSKY_STORE_SEGMENT_STORE_H_
#define PSKY_STORE_SEGMENT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "stream/element.h"

namespace psky {

/// FIFO of UncertainElements over memory-mapped segment files.
class SegmentStore {
 public:
  struct Options {
    std::string dir;                     ///< segment file directory
    int dims = 2;                        ///< element dimensionality
    size_t elements_per_segment = 4096;  ///< slots per segment file
  };

  struct Stats {
    uint64_t segments_created = 0;   ///< new segment files mapped
    uint64_t segments_recycled = 0;  ///< drained files reused as tails
    uint64_t segments_live = 0;      ///< currently mapped segments
  };

  explicit SegmentStore(const Options& opts);
  ~SegmentStore();
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Creates the directory and validates options. Call once before use.
  bool Init(std::string* error);

  /// Appends `e` as the newest element, mapping a new tail segment when
  /// the current one is full (fault site: segment-map).
  bool PushBack(const UncertainElement& e, std::string* error);

  /// Removes the oldest element into `*out`. A drained front segment is
  /// unmapped and queued for reuse (fault site: segment-recycle).
  /// Requires size() > 0.
  bool PopFront(UncertainElement* out, std::string* error);

  /// The i-th element from the oldest (0 = oldest). Requires i < size().
  UncertainElement At(size_t i) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int dims() const { return opts_.dims; }

  /// All elements, oldest first (for snapshots / oracles).
  std::vector<UncertainElement> Snapshot() const;

  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    uint64_t id = 0;
    std::string path;
    char* map = nullptr;
  };

  size_t SlotBytes() const;
  size_t SegmentBytes() const;
  bool MapTailSegment(std::string* error);
  bool RecycleFrontSegment(std::string* error);
  void UnmapAll();

  Options opts_;
  std::deque<Segment> segments_;
  std::vector<std::string> free_files_;  ///< drained files awaiting reuse
  uint64_t next_id_ = 0;
  size_t head_offset_ = 0;  ///< elements already popped from the front segment
  size_t tail_count_ = 0;   ///< elements in the back segment
  size_t size_ = 0;
  Stats stats_;
};

/// Count-based sliding window with the CountWindow interface but the
/// buffer held in a SegmentStore. `--window-store=disk` swaps this in;
/// its operator-visible behaviour is validated bit-equal to CountWindow.
/// Store I/O failures are fatal (PSKY_CHECK): a window that lost its
/// buffer cannot continue correctly, and the crash-quarantine handler
/// turns the check failure into a post-mortem dump.
class StoredCountWindow {
 public:
  StoredCountWindow(size_t capacity, const SegmentStore::Options& opts);

  /// Creates the backing store. Call once before use; returns false with
  /// a diagnostic when the directory cannot be set up.
  bool Init(std::string* error);

  /// Appends `e`; returns the evicted oldest element when the window
  /// overflows (see CountWindow::Push).
  std::optional<UncertainElement> Push(const UncertainElement& e);

  /// Steady-state rotation; requires full() (see CountWindow::PushRotate).
  UncertainElement PushRotate(const UncertainElement& e);

  size_t size() const { return store_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return store_.size() == capacity_; }

  /// Window contents, oldest first.
  std::vector<UncertainElement> Snapshot() const { return store_.Snapshot(); }

  const SegmentStore::Stats& store_stats() const { return store_.stats(); }

 private:
  size_t capacity_;
  SegmentStore store_;
};

/// Deletes segment files ("seg-*.pskyseg") left in `dir` by earlier
/// runs. Segments are per-run scratch, so at startup every one of them
/// is garbage. Returns the number removed; missing directories are a
/// no-op.
size_t SweepSegmentFiles(const std::string& dir);

}  // namespace psky

#endif  // PSKY_STORE_SEGMENT_STORE_H_
