// Out-of-core window buffer: a FIFO of stream elements held in
// memory-mapped, fixed-size segment files.
//
// The paper's Theorem 8 bounds the live candidate set S_{N,q} at
// O(polylog^d N), so for giant windows only the sky-tree needs RAM — the
// raw window contents (needed solely to know *which* element expires
// next) can live on disk. This store keeps them there: elements append
// to the newest segment and pop from the oldest, and a fully drained
// segment file is recycled as the next tail segment instead of being
// deleted and recreated (the gtsat in_disk split: hot index in memory,
// bulk data on disk).
//
// Residency is bounded, not proportional to the window: only the head
// (expiry frontier), its readahead successor, and the write tail stay
// mapped in steady state. A fully written segment is unmapped as soon as
// the tail moves past it and remapped on demand — under MAP_SHARED the
// pages live in the page cache and file, so unmapping is non-destructive
// and merely drops them from this process's RSS. Random access (audit
// sampling, cursors) maps the containing segment lazily and an LRU
// sweep keeps the total mapped count under Options::resident_budget, so
// peak RSS is O(S_{N,q} + budget * segment bytes) — independent of N.
// Mappings are advised MADV_SEQUENTIAL (FIFO traffic) and the readahead
// cursor advises MADV_WILLNEED on the next expiry-frontier segment
// before PopFront reaches it.
//
// Segments are per-run scratch, not durable state: files are recreated
// on startup (the startup sweep deletes leftovers) and carry no CRC —
// durability comes from checkpoints plus the WAL (store/wal.h). Slot
// layout is the checkpoint v2 element encoding (seq u64, prob f64,
// time f64, pos[dims] f64), written via memcpy of host-endian bit
// patterns so reads round-trip bit-exactly.
//
// I/O failures report through bool + *error (no exceptions, no output);
// the segment-map fault-injection site covers every mapping path
// (tail creation and on-demand remap) and segment-recycle covers the
// head-recycle path.

#ifndef PSKY_STORE_SEGMENT_STORE_H_
#define PSKY_STORE_SEGMENT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "stream/element.h"

namespace psky {

/// FIFO of UncertainElements over memory-mapped segment files.
class SegmentStore {
 public:
  struct Options {
    std::string dir;                     ///< segment file directory
    int dims = 2;                        ///< element dimensionality
    size_t elements_per_segment = 4096;  ///< slots per segment file
    /// Maximum segments kept mapped at once; 0 means unlimited. Values
    /// below kMinResidentBudget are rounded up: the head, its readahead
    /// successor, and the write tail are never evicted.
    size_t resident_budget = 8;
  };

  /// Head + readahead + tail must always be mappable.
  static constexpr size_t kMinResidentBudget = 3;

  struct Stats {
    uint64_t segments_created = 0;   ///< new segment files mapped
    uint64_t segments_recycled = 0;  ///< drained files reused as tails
    uint64_t segments_live = 0;      ///< segments holding window data
    uint64_t segments_resident = 0;  ///< currently memory-mapped segments
    uint64_t readahead_hits = 0;     ///< head advanced onto a mapped segment
    uint64_t readahead_misses = 0;   ///< head advanced onto a cold segment
    uint64_t recycle_pressure = 0;   ///< budget-forced evictions of mapped segments
  };

  /// Streams the live window oldest→newest, mapping one segment at a
  /// time through the store's shared segment cache. The cursor survives
  /// concurrent PopFront/PushBack on its store: elements popped under it
  /// are skipped, elements pushed after creation are not yielded.
  class Cursor {
   public:
    /// Copies the next element into `*out`; returns false when the
    /// cursor is exhausted.
    bool Next(UncertainElement* out);

    /// Elements this cursor can still yield (shrinks if the store pops
    /// past unvisited elements).
    uint64_t remaining() const;

   private:
    friend class SegmentStore;
    Cursor(const SegmentStore* store, uint64_t abs_next, uint64_t abs_end)
        : store_(store), abs_next_(abs_next), abs_end_(abs_end) {}

    const SegmentStore* store_;
    uint64_t abs_next_;  ///< absolute stream index of the next element
    uint64_t abs_end_;   ///< absolute stream index one past the last
  };

  explicit SegmentStore(const Options& opts);
  ~SegmentStore();
  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Creates the directory and validates options. Call once before use.
  bool Init(std::string* error);

  /// Appends `e` as the newest element, mapping a new tail segment when
  /// the current one is full (fault site: segment-map). The previous
  /// tail segment — now fully written — is unmapped unless it is the
  /// head or the readahead frontier.
  bool PushBack(const UncertainElement& e, std::string* error);

  /// Removes the oldest element into `*out`. A drained front segment is
  /// unmapped and queued for reuse (fault site: segment-recycle), and
  /// the next expiry-frontier segment is prefetched (MADV_WILLNEED).
  /// Requires size() > 0.
  bool PopFront(UncertainElement* out, std::string* error);

  /// The i-th element from the oldest (0 = oldest). Requires i < size().
  /// Maps the containing segment on demand through the shared segment
  /// cache, so a cold sample touches one segment, not the whole window.
  UncertainElement At(size_t i) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int dims() const { return opts_.dims; }

  /// All elements, oldest first. O(size) memory — use NewCursor() for
  /// giant windows; this remains for small snapshots and tests.
  std::vector<UncertainElement> Snapshot() const;

  /// Streaming oldest→newest view of the current contents.
  Cursor NewCursor() const;

  /// Re-bounds the number of concurrently mapped segments (0 =
  /// unlimited; floored at kMinResidentBudget) and immediately evicts
  /// down to the new bound. The degradation ladder shrinks this under
  /// memory pressure.
  void SetResidentBudget(size_t budget);
  size_t resident_budget() const { return opts_.resident_budget; }

  const Stats& stats() const { return stats_; }

 private:
  struct Segment {
    uint64_t id = 0;
    std::string path;
    char* map = nullptr;
    uint64_t lru = 0;  ///< last-access tick; meaningful while mapped
  };

  size_t SlotBytes() const;
  size_t SegmentBytes() const;
  /// Maps segments_[seg_index] if it is cold (fault site: segment-map),
  /// refreshes its LRU stamp, and enforces the resident budget.
  bool EnsureMapped(size_t seg_index, std::string* error) const;
  void UnmapSegment(Segment* seg) const;
  /// Evicts least-recently-used mapped segments (never the head, the
  /// readahead frontier, the tail, or `protect_index`) until the
  /// resident count fits the budget.
  void EnforceResidentBudget(size_t protect_index) const;
  void ReadSlot(const char* slot, UncertainElement* e) const;
  bool MapTailSegment(std::string* error);
  bool RecycleFrontSegment(std::string* error);
  void UnmapAll();

  Options opts_;
  // Mapping state is logically const: remapping/evicting segments never
  // changes the FIFO contents, so const readers (At, Snapshot, Cursor)
  // may fault segments in and out.
  mutable std::deque<Segment> segments_;
  std::vector<std::string> free_files_;  ///< drained files awaiting reuse
  uint64_t next_id_ = 0;
  size_t head_offset_ = 0;  ///< elements already popped from the front segment
  size_t tail_count_ = 0;   ///< elements in the back segment
  size_t size_ = 0;
  uint64_t total_popped_ = 0;  ///< lifetime pops; anchors Cursor positions
  mutable uint64_t lru_tick_ = 0;
  mutable Stats stats_;
};

/// Count-based sliding window with the CountWindow interface but the
/// buffer held in a SegmentStore. `--window-store=disk` swaps this in;
/// its operator-visible behaviour is validated bit-equal to CountWindow.
/// Store I/O failures are fatal (PSKY_CHECK): a window that lost its
/// buffer cannot continue correctly, and the crash-quarantine handler
/// turns the check failure into a post-mortem dump.
class StoredCountWindow {
 public:
  StoredCountWindow(size_t capacity, const SegmentStore::Options& opts);

  /// Creates the backing store. Call once before use; returns false with
  /// a diagnostic when the directory cannot be set up.
  bool Init(std::string* error);

  /// Appends `e`; returns the evicted oldest element when the window
  /// overflows (see CountWindow::Push).
  std::optional<UncertainElement> Push(const UncertainElement& e);

  /// Steady-state rotation; requires full() (see CountWindow::PushRotate).
  /// Fused pop+push: the head read and tail write each resolve their
  /// segment once, so rotation touches each mapped page exactly once.
  UncertainElement PushRotate(const UncertainElement& e);

  size_t size() const { return store_.size(); }
  size_t capacity() const { return capacity_; }
  bool full() const { return store_.size() == capacity_; }

  /// The i-th element from the oldest; segment-cached (SegmentStore::At).
  UncertainElement At(size_t i) const { return store_.At(i); }

  /// Window contents, oldest first. O(size) memory — prefer NewCursor().
  std::vector<UncertainElement> Snapshot() const { return store_.Snapshot(); }

  /// Streaming oldest→newest view (see SegmentStore::Cursor).
  SegmentStore::Cursor NewCursor() const { return store_.NewCursor(); }

  void SetResidentBudget(size_t budget) { store_.SetResidentBudget(budget); }
  size_t resident_budget() const { return store_.resident_budget(); }

  const SegmentStore::Stats& store_stats() const { return store_.stats(); }

 private:
  size_t capacity_;
  SegmentStore store_;
};

/// Deletes segment files ("seg-*.pskyseg") left in `dir` by earlier
/// runs. Segments are per-run scratch, so at startup every one of them
/// is garbage. Returns the number removed; missing directories are a
/// no-op.
size_t SweepSegmentFiles(const std::string& dir);

}  // namespace psky

#endif  // PSKY_STORE_SEGMENT_STORE_H_
