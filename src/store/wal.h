// Append-only, CRC-framed write-ahead element log.
//
// The WAL stamps every element the pipeline admits *before* it reaches
// the operator, so a crash loses at most the current group-commit window
// of acknowledged-but-unsynced records — and for replayable sources
// (generators, files) even those are re-read from the source on recovery,
// making restart output bit-identical to an uninterrupted run (the
// operator state is a pure function of the admitted element sequence;
// paper Theorems 2-4). Recovery = latest valid checkpoint + WAL tail
// replay (see store/recovery.h).
//
// File layout (integers little-endian, doubles IEEE-754 bit patterns):
//
//   [0,  8)  magic "PSKYWAL1"
//   [8, 12)  format version (u32, currently 1)
//   [12,16)  dims (u32)
//   [16,24)  start step (u64): pipeline steps consumed when this log
//            began; record N in the file has step_after = start + N
//   [24,..)  records, each framed as
//              u32 body length | u32 CRC-32 of body | body
//            (body layout: see EncodeWalRecord; position/counter stamps
//            are LEB128 varints to keep records small — sync cost
//            scales with bytes flushed)
//
// Logs rotate at every checkpoint: a new file named by the checkpoint's
// step count starts, so "wal-<S>.pskywal" holds exactly the records a
// resume from checkpoint S needs. Readers accept a torn tail — a partial
// or corrupt final frame from a crash mid-append — by truncating to the
// last whole record; everything before it is CRC-protected.
//
// Group commit: Append() buffers in user space, Sync() flushes and
// fsyncs. The caller drives cadence (psky_stream syncs every
// --wal-sync-every records, widened under disk pressure by the
// DiskPressureGovernor below — the disk-pressure rung of the
// degradation ladder).

#ifndef PSKY_STORE_WAL_H_
#define PSKY_STORE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "base/sync.h"
#include "stream/element.h"

namespace psky {

/// One durable ingest record: the admitted element plus the absolute
/// stream position and cumulative ingestion counters *after* it was
/// applied, so recovery can fast-forward the source and restore the
/// reporting counters exactly (counters are totals, not run-relative,
/// because the restarted source restarts its own counts from zero).
struct WalRecord {
  UncertainElement element;
  uint64_t step_after = 0;      ///< pipeline steps after this element
  uint64_t next_seq_after = 0;  ///< next sequence the source will assign
  uint64_t lines_after = 0;     ///< raw input lines consumed (CSV; else 0)
  uint64_t skipped_total = 0;   ///< cumulative bad input lines skipped
  uint64_t clamped_total = 0;   ///< cumulative probabilities clamped
  uint64_t ooo_total = 0;       ///< cumulative out-of-order drops
};

/// Serializes one record body (without the length/CRC frame).
std::string EncodeWalRecord(const WalRecord& r);

/// Parses bytes produced by EncodeWalRecord. Returns false with a
/// diagnostic on truncation or malformed fields; `*out` unspecified.
bool DecodeWalRecordBody(std::string_view body, WalRecord* out,
                         std::string* error);

/// Decoded contents of one WAL file plus tail diagnostics.
struct WalContents {
  uint32_t dims = 0;
  uint64_t start_step = 0;
  std::vector<WalRecord> records;  ///< the valid record prefix, in order
  /// Byte length of the valid prefix (header + whole records). A repair
  /// truncates the file to this length before appending resumes.
  uint64_t valid_bytes = 0;
  /// True when bytes past valid_bytes existed but did not form a whole,
  /// CRC-clean record (torn tail from a crash mid-append).
  bool tail_truncated = false;
  std::string tail_diagnostic;  ///< why the tail was cut (when truncated)
};

/// Decodes a whole WAL byte image. Returns false only for a fatal header
/// problem (bad magic/version/dims, or file shorter than a header); a
/// torn or corrupt record tail still returns true with the valid prefix
/// and tail_truncated set.
bool DecodeWalBytes(std::string_view bytes, WalContents* out,
                    std::string* error);

/// Reads and decodes a WAL file (see DecodeWalBytes for semantics).
bool ReadWalFile(const std::string& path, WalContents* out,
                 std::string* error);

/// Truncates `path` to the valid prefix reported by ReadWalFile so a
/// writer can append after the last whole record. No-op when the tail is
/// already clean.
bool RepairWalFile(const std::string& path, std::string* error);

/// Canonical file name for the log that starts after `start_step`
/// pipeline steps: "wal-<20-digit step>.pskywal" (zero-padded so
/// lexicographic order is stream order).
std::string WalFileName(uint64_t start_step);

/// Recovers the start step encoded in a WalFileName-style base name or
/// path. Returns false for unrelated names.
bool ParseWalStartStep(const std::string& path, uint64_t* start_step);

/// WAL files in `dir` (by WalFileName convention), oldest first. Ignores
/// temp files and unrelated names; missing directories yield an empty
/// list.
std::vector<std::string> ListWalFiles(const std::string& dir);

/// Deletes WAL files no resume can need: every file whose *successor*
/// starts at or below `keep_from_step` (i.e. the file's records all
/// precede the oldest retained checkpoint). Returns the number removed.
size_t PruneWalFiles(const std::string& dir, uint64_t keep_from_step);

/// Appender with group-commit fsync. Not thread-safe; psky_stream owns
/// one on the pipeline thread.
class WalWriter {
 public:
  struct Stats {
    uint64_t records_appended = 0;
    uint64_t syncs = 0;
    uint64_t async_syncs = 0;  ///< Sync() calls that overlapped fdatasync
    uint64_t rotations = 0;
  };

  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Creates a fresh log at `path` (atomically: header to "<path>.tmp",
  /// fsync, rename) and opens it for appending. Fails if `path` exists.
  bool Create(const std::string& path, uint32_t dims, uint64_t start_step,
              std::string* error, int* out_errno);

  /// Opens an existing log for appending, repairing a torn tail first
  /// (RepairWalFile). `*out_next_step` receives the step_after the next
  /// appended record should carry.
  bool OpenForAppend(const std::string& path, std::string* error,
                     int* out_errno, uint64_t* out_next_step);

  /// Buffers one record. Honors the wal-append fault site. Large buffers
  /// are flushed to the file (without fsync) to bound memory.
  bool Append(const WalRecord& r, std::string* error, int* out_errno);

  /// Flushes buffered records and fsyncs. Honors the wal-fsync fault
  /// site. Safe to call with nothing pending (no-op, not counted).
  ///
  /// With SetAsyncSync(true), the file write still happens here but the
  /// fdatasync is handed to a background thread and Sync() returns
  /// immediately — group-commit stalls overlap the next batch instead of
  /// landing on the step path. A background fdatasync failure is sticky:
  /// the next Sync()/SyncBarrier() reports it (once) so the caller's
  /// retry/quarantine machinery engages exactly as in synchronous mode.
  /// The wal-fsync fault site is still evaluated here, on the caller
  /// thread, keeping chaos schedules deterministic.
  bool Sync(std::string* error, int* out_errno);

  /// Opts in/out of overlapped group commit (see Sync). Turning it off
  /// drains the background thread first. Call between, not during,
  /// Sync/Append sequences.
  void SetAsyncSync(bool enabled);
  bool async_sync() const { return async_.enabled; }

  /// Blocks until every overlapped fdatasync completed; reports (and
  /// clears) a sticky background failure. The durability barrier the
  /// checkpoint path needs: after a successful SyncBarrier every record
  /// passed to a successful Sync() is on disk. No-op in sync mode.
  bool SyncBarrier(std::string* error, int* out_errno);

  /// Milliseconds the most recently completed overlapped fdatasync took;
  /// resets to 0 once read. Feeds the DiskPressureGovernor, which would
  /// otherwise only see the (cheap) enqueue latency.
  uint64_t TakeAsyncSyncLatencyMs();

  /// Syncs and closes the current log, then Creates
  /// `dir`/WalFileName(start_step) and switches appending to it.
  bool RotateTo(const std::string& dir, uint64_t start_step,
                std::string* error, int* out_errno);

  /// Syncs (best effort) and closes. Idempotent.
  void Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  uint32_t dims() const { return dims_; }
  /// Records appended since the last successful Sync.
  uint64_t pending() const { return pending_; }
  const Stats& stats() const { return stats_; }

 private:
  bool FlushBuffer(std::string* error, int* out_errno);
  /// The synchronous fdatasync + fadvise tail of Sync().
  bool DataSyncNow(std::string* error, int* out_errno);
  /// Reports and clears the sticky background-sync error, if any, and
  /// queues a fresh fdatasync for the still-unsynced bytes so a retrying
  /// caller's next Sync/SyncBarrier waits on a real attempt.
  bool ConsumeStickyError(std::string* error, int* out_errno);
  void AsyncSyncLoop();
  /// Publishes the current fd *and path* to the worker under async_.mu
  /// (fd < 0 = nothing to sync). The worker must never read the
  /// appender-owned fd_/path_ directly: they mutate on the caller thread
  /// across Create/Rotate/Close with no lock held.
  void UpdateAsyncTarget(int fd);

  // Appender state: owned by the single appender thread (the class is
  // not thread-safe by contract); the async worker sees snapshots of fd
  // and path via UpdateAsyncTarget only.
  int fd_ = -1;
  std::string path_;
  uint32_t dims_ = 0;
  std::string buffer_;
  uint64_t pending_ = 0;
  Stats stats_;

  /// Overlapped group-commit state. `mu` guards the fields below it;
  /// the worker snapshots `fd` and the request ticket under the lock,
  /// runs fdatasync unlocked, then publishes completion — so
  /// SyncBarrier() returning means no fdatasync is in flight and the fd
  /// may be closed.
  struct AsyncSync {
    bool enabled = false;
    std::thread thread;
    Mutex mu{"wal-async", lockrank::kWalAsync};
    CondVar cv;
    uint64_t requested PSKY_GUARDED_BY(mu) = 0;
    uint64_t completed PSKY_GUARDED_BY(mu) = 0;
    int sticky_errno PSKY_GUARDED_BY(mu) = 0;
    std::string sticky_error PSKY_GUARDED_BY(mu);
    uint64_t last_latency_ms PSKY_GUARDED_BY(mu) = 0;
    int fd PSKY_GUARDED_BY(mu) = -1;
    /// Snapshot of path_ taken when `fd` was published; the worker's
    /// error messages name this, not the live path_ (which the appender
    /// may be rewriting during a rotation).
    std::string path PSKY_GUARDED_BY(mu);
    bool stop PSKY_GUARDED_BY(mu) = false;
  };
  AsyncSync async_;
};

/// The disk-pressure rung of the degradation ladder: widens the WAL
/// group-commit window when syncs fail transiently or run slow, and
/// narrows it back after a sustained clean streak (hysteresis, mirroring
/// core/overload.h's DegradationLadder). The WAL is never dropped —
/// callers that exhaust their retry budget quarantine and exit instead.
class DiskPressureGovernor {
 public:
  struct Options {
    uint64_t slow_sync_ms = 50;    ///< sync latency that signals pressure
    uint64_t escalate_factor = 4;  ///< multiplier step per escalation
    uint64_t max_multiplier = 16;  ///< widest group-commit stretch
    uint64_t recover_after = 32;   ///< clean syncs before stepping down
  };

  DiskPressureGovernor() : DiskPressureGovernor(Options{}) {}
  explicit DiskPressureGovernor(const Options& opts) : opts_(opts) {}

  /// Feeds one sync outcome. Returns true when the multiplier changed
  /// (so callers can log the transition).
  bool ObserveSync(bool transient_failure, uint64_t latency_ms);

  /// Current group-commit widening factor (1 = nominal cadence).
  uint64_t multiplier() const { return multiplier_; }
  uint64_t escalations() const { return escalations_; }
  uint64_t recoveries() const { return recoveries_; }

 private:
  Options opts_;
  uint64_t multiplier_ = 1;
  uint64_t clean_streak_ = 0;
  uint64_t escalations_ = 0;
  uint64_t recoveries_ = 0;
};

}  // namespace psky

#endif  // PSKY_STORE_WAL_H_
