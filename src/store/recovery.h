// Crash recovery and deterministic historical replay over the durable
// stores: checkpoints (core/checkpoint.h) plus the write-ahead element
// log (store/wal.h).
//
// Recovery contract: the state reconstructed from the latest valid
// checkpoint plus the WAL tail is bit-identical to the state an
// uninterrupted run had at the same stream position, because operator
// state is a pure function of the admitted element sequence (paper
// Theorems 2-4) and both stores capture that sequence exactly. Records
// past the last group-commit sync may be missing after a crash; for
// replayable sources the caller re-reads them from the source using the
// last surviving record's position stamps, so the final output is still
// bit-identical.
//
// Historical replay answers "what was the q-skyline at position P (or
// time T)?" as a first-class query: pick the newest retained checkpoint
// at or before the target, replay WAL records up to it, and hand the
// caller the exact element sequence — the audit oracle re-derives the
// same state independently as the correctness check.

#ifndef PSKY_STORE_RECOVERY_H_
#define PSKY_STORE_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "store/wal.h"

namespace psky {

/// Everything needed to resume (or rebuild) a pipeline: a base snapshot
/// plus the WAL records to replay on top of it, in stream order.
struct RecoveredState {
  /// Base snapshot. When has_checkpoint is false no valid checkpoint
  /// existed and `checkpoint` is a default state (recovery starts from
  /// an empty window at step 0; the caller supplies the configuration).
  CheckpointState checkpoint;
  bool has_checkpoint = false;

  /// WAL records with step_after > checkpoint.elements_consumed,
  /// contiguous and in stream order.
  std::vector<WalRecord> tail;

  /// Newest WAL file (the append target for the resumed run); empty when
  /// none exists or the newest one is unreadable.
  std::string active_wal;
  uint64_t active_wal_start = 0;

  /// True when any WAL file in the chain had a torn tail (the torn bytes
  /// are ignored here; WalWriter::OpenForAppend repairs them on disk).
  bool tail_truncated = false;

  /// Human-readable notes: skipped corrupt files, truncation reasons,
  /// coverage gaps. Never fatal by itself.
  std::string notes;
};

/// Loads the newest valid checkpoint in `dir` and collects the WAL
/// records that extend it. Returns false only when `dir` holds neither a
/// valid checkpoint nor a readable WAL (nothing to recover from);
/// `*error` then explains why. A missing checkpoint with usable WAL
/// records (crash before the first checkpoint) succeeds with
/// has_checkpoint = false.
bool RecoverState(const std::string& dir, RecoveredState* out,
                  std::string* error);

/// A historical replay target: a stream position (elements consumed) or
/// a stream timestamp.
struct ReplayTarget {
  enum class Kind { kStep, kTime };
  Kind kind = Kind::kStep;
  uint64_t step = 0;  ///< kStep: replay through this many elements
  double time = 0.0;  ///< kTime: replay elements with time <= this
};

/// Parses a --replay-at spec: a bare integer is a position, "ts:<secs>"
/// a timestamp. Returns false with a diagnostic on malformed input.
bool ParseReplayTarget(const std::string& spec, ReplayTarget* out,
                       std::string* error);

/// Plans a historical replay: picks the newest retained checkpoint at or
/// before `target` and the WAL records from there up to (and including)
/// it. Fails when the target predates retained history (base coverage
/// gap) or lies beyond the end of the log.
bool PlanReplay(const std::string& dir, const ReplayTarget& target,
                RecoveredState* out, std::string* error);

/// Recovers the step count a CheckpointFileName-style path encodes.
/// Returns false for unrelated names.
bool ParseCheckpointStep(const std::string& path, uint64_t* step);

}  // namespace psky

#endif  // PSKY_STORE_RECOVERY_H_
