#include "store/segment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "base/check.h"
#include "base/fault_injection.h"
#include "geom/point.h"

namespace psky {

namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// See checkpoint.cc: strerror is fine on the single pipeline thread.
std::string ErrnoString(int err) {
  return std::strerror(err);  // NOLINT(concurrency-mt-unsafe)
}

std::string SegmentFileName(uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "seg-%020llu.pskyseg",
                static_cast<unsigned long long>(id));
  return buf;
}

bool IsSegmentFileName(const std::string& name) {
  if (name.size() != SegmentFileName(0).size() || name.rfind("seg-", 0) != 0 ||
      name.compare(name.size() - 8, 8, ".pskyseg") != 0) {
    return false;
  }
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

}  // namespace

SegmentStore::SegmentStore(const Options& opts) : opts_(opts) {}

SegmentStore::~SegmentStore() {
  UnmapAll();
  // Per-run scratch: leave nothing behind on clean destruction.
  std::error_code ec;
  for (const Segment& seg : segments_) std::filesystem::remove(seg.path, ec);
  for (const std::string& path : free_files_) {
    std::filesystem::remove(path, ec);
  }
}

size_t SegmentStore::SlotBytes() const {
  return 24 + 8 * static_cast<size_t>(opts_.dims);
}

size_t SegmentStore::SegmentBytes() const {
  return SlotBytes() * opts_.elements_per_segment;
}

bool SegmentStore::Init(std::string* error) {
  if (opts_.dims < 1 || opts_.dims > kMaxDims) {
    return Fail(error, "segment store dims " + std::to_string(opts_.dims) +
                           " outside [1, " + std::to_string(kMaxDims) + "]");
  }
  if (opts_.elements_per_segment == 0) {
    return Fail(error, "segment store needs elements_per_segment >= 1");
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(opts_.dir, ec) &&
      !std::filesystem::create_directories(opts_.dir, ec)) {
    return Fail(error, "cannot create " + opts_.dir + ": " + ec.message());
  }
  return true;
}

void SegmentStore::UnmapSegment(Segment* seg) const {
  if (seg->map == nullptr) return;
  ::munmap(seg->map, SegmentBytes());
  seg->map = nullptr;
  seg->lru = 0;
  --stats_.segments_resident;
}

void SegmentStore::EnforceResidentBudget(size_t protect_index) const {
  if (opts_.resident_budget == 0) return;
  const uint64_t budget = static_cast<uint64_t>(
      opts_.resident_budget < kMinResidentBudget ? kMinResidentBudget
                                                 : opts_.resident_budget);
  while (stats_.segments_resident > budget) {
    // Evict the least-recently-used mapped segment. The head, the
    // readahead frontier, the write tail, and the caller's segment are
    // pinned: evicting any of them would immediately thrash.
    size_t victim = segments_.size();
    uint64_t victim_lru = 0;
    const size_t last = segments_.size() - 1;
    for (size_t i = 2; i < segments_.size(); ++i) {
      const Segment& seg = segments_[i];
      if (i == last || i == protect_index || seg.map == nullptr) continue;
      if (victim == segments_.size() || seg.lru < victim_lru) {
        victim = i;
        victim_lru = seg.lru;
      }
    }
    if (victim == segments_.size()) return;  // only pinned segments mapped
    UnmapSegment(&segments_[victim]);
    ++stats_.recycle_pressure;
  }
}

bool SegmentStore::EnsureMapped(size_t seg_index, std::string* error) const {
  Segment& seg = segments_[seg_index];
  if (seg.map != nullptr) {
    seg.lru = ++lru_tick_;
    return true;
  }
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kSegmentMap)) {
      return Fail(error, "cannot map segment in " + opts_.dir + ": " +
                             ErrnoString(inj) + " (injected)");
    }
  }
  // The file was created and sized by MapTailSegment; MAP_SHARED means
  // the pages we dropped on eviction are still in the page cache / file.
  const int fd = ::open(seg.path.c_str(), O_RDWR);
  if (fd < 0) {
    return Fail(error, "cannot open " + seg.path + ": " + ErrnoString(errno));
  }
  void* map = ::mmap(nullptr, SegmentBytes(), PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Fail(error, "cannot map " + seg.path + ": " + ErrnoString(errno));
  }
  ::madvise(map, SegmentBytes(), MADV_SEQUENTIAL);
  seg.map = static_cast<char*>(map);
  seg.lru = ++lru_tick_;
  ++stats_.segments_resident;
  EnforceResidentBudget(seg_index);
  return true;
}

bool SegmentStore::MapTailSegment(std::string* error) {
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kSegmentMap)) {
      return Fail(error, "cannot map segment in " + opts_.dir + ": " +
                             ErrnoString(inj) + " (injected)");
    }
  }
  Segment seg;
  seg.id = next_id_++;
  seg.path =
      (std::filesystem::path(opts_.dir) / SegmentFileName(seg.id)).string();
  bool recycled = false;
  if (!free_files_.empty()) {
    const std::string from = free_files_.back();
    if (std::rename(from.c_str(), seg.path.c_str()) != 0) {
      return Fail(error, "cannot recycle " + from + " to " + seg.path + ": " +
                             ErrnoString(errno));
    }
    free_files_.pop_back();
    recycled = true;
  }
  const int fd = ::open(seg.path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Fail(error,
                "cannot open " + seg.path + ": " + ErrnoString(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(SegmentBytes())) != 0) {
    const int err = errno;
    ::close(fd);
    return Fail(error,
                "cannot size " + seg.path + ": " + ErrnoString(err));
  }
  void* map = ::mmap(nullptr, SegmentBytes(), PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Fail(error, "cannot map " + seg.path + ": " + ErrnoString(errno));
  }
  ::madvise(map, SegmentBytes(), MADV_SEQUENTIAL);
  seg.map = static_cast<char*>(map);
  seg.lru = ++lru_tick_;
  segments_.push_back(seg);
  tail_count_ = 0;
  ++stats_.segments_resident;
  if (recycled) {
    ++stats_.segments_recycled;
  } else {
    ++stats_.segments_created;
  }
  stats_.segments_live = segments_.size();
  // Write-behind: the previous tail is now fully written and will not be
  // touched again until it reaches the expiry frontier — drop it from
  // RSS unless it *is* the frontier (head or readahead successor).
  if (segments_.size() >= 4) {
    UnmapSegment(&segments_[segments_.size() - 2]);
  }
  EnforceResidentBudget(segments_.size() - 1);
  return true;
}

bool SegmentStore::RecycleFrontSegment(std::string* error) {
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kSegmentRecycle)) {
      return Fail(error, "cannot recycle segment in " + opts_.dir + ": " +
                             ErrnoString(inj) + " (injected)");
    }
  }
  Segment seg = segments_.front();
  segments_.pop_front();
  if (seg.map != nullptr) {
    ::munmap(seg.map, SegmentBytes());
    --stats_.segments_resident;
  }
  free_files_.push_back(seg.path);
  head_offset_ = 0;
  stats_.segments_live = segments_.size();
  if (!segments_.empty()) {
    // Readahead accounting: the new expiry frontier should already be
    // mapped by the prefetch below from the previous recycle.
    if (segments_.front().map != nullptr) {
      ++stats_.readahead_hits;
      segments_.front().lru = ++lru_tick_;
    } else {
      ++stats_.readahead_misses;
      std::string ignored;  // best effort; PopFront surfaces real failures
      EnsureMapped(0, &ignored);
    }
    // Prefetch the next frontier so the following recycle is a hit and
    // the kernel starts paging it in now (MADV_WILLNEED).
    if (segments_.size() >= 2) {
      std::string ignored;
      if (EnsureMapped(1, &ignored)) {
        ::madvise(segments_[1].map, SegmentBytes(), MADV_WILLNEED);
      }
    }
  }
  return true;
}

void SegmentStore::UnmapAll() {
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) ::munmap(seg.map, SegmentBytes());
    seg.map = nullptr;
  }
  stats_.segments_resident = 0;
}

void SegmentStore::ReadSlot(const char* slot, UncertainElement* e) const {
  e->pos = Point(opts_.dims);
  std::memcpy(&e->seq, slot, 8);
  std::memcpy(&e->prob, slot + 8, 8);
  std::memcpy(&e->time, slot + 16, 8);
  for (int d = 0; d < opts_.dims; ++d) {
    std::memcpy(&e->pos[d], slot + 24 + 8 * static_cast<size_t>(d), 8);
  }
}

bool SegmentStore::PushBack(const UncertainElement& e, std::string* error) {
  PSKY_CHECK(e.pos.dims() == opts_.dims);
  if (segments_.empty() || tail_count_ == opts_.elements_per_segment) {
    if (!MapTailSegment(error)) return false;
  } else if (segments_.back().map == nullptr) {
    // The tail can only go cold through SetResidentBudget edge cases;
    // fault in before writing.
    if (!EnsureMapped(segments_.size() - 1, error)) return false;
  }
  char* slot = segments_.back().map + tail_count_ * SlotBytes();
  std::memcpy(slot, &e.seq, 8);
  std::memcpy(slot + 8, &e.prob, 8);
  std::memcpy(slot + 16, &e.time, 8);
  std::memcpy(slot + 24, e.pos.data(), 8 * static_cast<size_t>(opts_.dims));
  ++tail_count_;
  ++size_;
  return true;
}

bool SegmentStore::PopFront(UncertainElement* out, std::string* error) {
  PSKY_CHECK(size_ > 0);
  if (!EnsureMapped(0, error)) return false;
  // Direct head read: the expiry frontier advances one slot per pop, so
  // steady-state rotation walks each mapped page exactly once.
  const char* slot = segments_.front().map + head_offset_ * SlotBytes();
  ReadSlot(slot, out);
  ++head_offset_;
  --size_;
  ++total_popped_;
  const bool front_is_tail = segments_.size() == 1;
  const size_t front_used = front_is_tail ? tail_count_
                                          : opts_.elements_per_segment;
  if (head_offset_ == front_used && !front_is_tail) {
    if (!RecycleFrontSegment(error)) {
      // The element is already out; undo nothing, but surface the I/O
      // problem. The drained segment stays mapped and retries next pop.
      ++size_;
      --head_offset_;
      --total_popped_;
      *out = UncertainElement{};
      return false;
    }
  } else if (head_offset_ == front_used && front_is_tail) {
    // Fully drained store: rewind the single segment in place.
    head_offset_ = 0;
    tail_count_ = 0;
  }
  return true;
}

UncertainElement SegmentStore::At(size_t i) const {
  PSKY_CHECK(i < size_);
  const size_t flat = head_offset_ + i;
  const size_t seg_index = flat / opts_.elements_per_segment;
  const size_t slot_index = flat % opts_.elements_per_segment;
  std::string error;
  PSKY_CHECK_MSG(EnsureMapped(seg_index, &error), error.c_str());
  const char* slot = segments_[seg_index].map + slot_index * SlotBytes();
  UncertainElement e;
  ReadSlot(slot, &e);
  return e;
}

std::vector<UncertainElement> SegmentStore::Snapshot() const {
  std::vector<UncertainElement> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
  return out;
}

SegmentStore::Cursor SegmentStore::NewCursor() const {
  return Cursor(this, total_popped_, total_popped_ + size_);
}

void SegmentStore::SetResidentBudget(size_t budget) {
  opts_.resident_budget = budget;
  if (!segments_.empty()) EnforceResidentBudget(segments_.size());
}

bool SegmentStore::Cursor::Next(UncertainElement* out) {
  // Elements popped since the last call are gone; skip to the oldest
  // survivor (total_popped_ is the absolute index of the current head).
  if (abs_next_ < store_->total_popped_) abs_next_ = store_->total_popped_;
  if (abs_next_ >= abs_end_) return false;
  *out = store_->At(static_cast<size_t>(abs_next_ - store_->total_popped_));
  ++abs_next_;
  return true;
}

uint64_t SegmentStore::Cursor::remaining() const {
  const uint64_t next = abs_next_ < store_->total_popped_
                            ? store_->total_popped_
                            : abs_next_;
  return next >= abs_end_ ? 0 : abs_end_ - next;
}

StoredCountWindow::StoredCountWindow(size_t capacity,
                                     const SegmentStore::Options& opts)
    : capacity_(capacity), store_(opts) {}

bool StoredCountWindow::Init(std::string* error) {
  return store_.Init(error);
}

std::optional<UncertainElement> StoredCountWindow::Push(
    const UncertainElement& e) {
  std::string error;
  std::optional<UncertainElement> expired;
  if (store_.size() == capacity_) {
    UncertainElement oldest;
    PSKY_CHECK_MSG(store_.PopFront(&oldest, &error), error.c_str());
    expired = oldest;
  }
  PSKY_CHECK_MSG(store_.PushBack(e, &error), error.c_str());
  return expired;
}

UncertainElement StoredCountWindow::PushRotate(const UncertainElement& e) {
  PSKY_CHECK(full());
  std::string error;
  UncertainElement oldest;
  PSKY_CHECK_MSG(store_.PopFront(&oldest, &error), error.c_str());
  PSKY_CHECK_MSG(store_.PushBack(e, &error), error.c_str());
  return oldest;
}

size_t SweepSegmentFiles(const std::string& dir) {
  size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (IsSegmentFileName(entry.path().filename().string())) {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace psky
