#include "store/segment_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "base/check.h"
#include "base/fault_injection.h"
#include "geom/point.h"

namespace psky {

namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// See checkpoint.cc: strerror is fine on the single pipeline thread.
std::string ErrnoString(int err) {
  return std::strerror(err);  // NOLINT(concurrency-mt-unsafe)
}

std::string SegmentFileName(uint64_t id) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "seg-%020llu.pskyseg",
                static_cast<unsigned long long>(id));
  return buf;
}

bool IsSegmentFileName(const std::string& name) {
  if (name.size() != SegmentFileName(0).size() || name.rfind("seg-", 0) != 0 ||
      name.compare(name.size() - 8, 8, ".pskyseg") != 0) {
    return false;
  }
  for (size_t i = 4; i < 24; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  return true;
}

}  // namespace

SegmentStore::SegmentStore(const Options& opts) : opts_(opts) {}

SegmentStore::~SegmentStore() {
  UnmapAll();
  // Per-run scratch: leave nothing behind on clean destruction.
  std::error_code ec;
  for (const Segment& seg : segments_) std::filesystem::remove(seg.path, ec);
  for (const std::string& path : free_files_) {
    std::filesystem::remove(path, ec);
  }
}

size_t SegmentStore::SlotBytes() const {
  return 24 + 8 * static_cast<size_t>(opts_.dims);
}

size_t SegmentStore::SegmentBytes() const {
  return SlotBytes() * opts_.elements_per_segment;
}

bool SegmentStore::Init(std::string* error) {
  if (opts_.dims < 1 || opts_.dims > kMaxDims) {
    return Fail(error, "segment store dims " + std::to_string(opts_.dims) +
                           " outside [1, " + std::to_string(kMaxDims) + "]");
  }
  if (opts_.elements_per_segment == 0) {
    return Fail(error, "segment store needs elements_per_segment >= 1");
  }
  std::error_code ec;
  if (!std::filesystem::is_directory(opts_.dir, ec) &&
      !std::filesystem::create_directories(opts_.dir, ec)) {
    return Fail(error, "cannot create " + opts_.dir + ": " + ec.message());
  }
  return true;
}

bool SegmentStore::MapTailSegment(std::string* error) {
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kSegmentMap)) {
      return Fail(error, "cannot map segment in " + opts_.dir + ": " +
                             ErrnoString(inj) + " (injected)");
    }
  }
  Segment seg;
  seg.id = next_id_++;
  seg.path =
      (std::filesystem::path(opts_.dir) / SegmentFileName(seg.id)).string();
  bool recycled = false;
  if (!free_files_.empty()) {
    const std::string from = free_files_.back();
    if (std::rename(from.c_str(), seg.path.c_str()) != 0) {
      return Fail(error, "cannot recycle " + from + " to " + seg.path + ": " +
                             ErrnoString(errno));
    }
    free_files_.pop_back();
    recycled = true;
  }
  const int fd = ::open(seg.path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Fail(error,
                "cannot open " + seg.path + ": " + ErrnoString(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(SegmentBytes())) != 0) {
    const int err = errno;
    ::close(fd);
    return Fail(error,
                "cannot size " + seg.path + ": " + ErrnoString(err));
  }
  void* map = ::mmap(nullptr, SegmentBytes(), PROT_READ | PROT_WRITE,
                     MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) {
    return Fail(error, "cannot map " + seg.path + ": " + ErrnoString(errno));
  }
  seg.map = static_cast<char*>(map);
  segments_.push_back(seg);
  tail_count_ = 0;
  if (recycled) {
    ++stats_.segments_recycled;
  } else {
    ++stats_.segments_created;
  }
  stats_.segments_live = segments_.size();
  return true;
}

bool SegmentStore::RecycleFrontSegment(std::string* error) {
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kSegmentRecycle)) {
      return Fail(error, "cannot recycle segment in " + opts_.dir + ": " +
                             ErrnoString(inj) + " (injected)");
    }
  }
  Segment seg = segments_.front();
  segments_.pop_front();
  ::munmap(seg.map, SegmentBytes());
  free_files_.push_back(seg.path);
  head_offset_ = 0;
  stats_.segments_live = segments_.size();
  return true;
}

void SegmentStore::UnmapAll() {
  for (Segment& seg : segments_) {
    if (seg.map != nullptr) ::munmap(seg.map, SegmentBytes());
    seg.map = nullptr;
  }
}

bool SegmentStore::PushBack(const UncertainElement& e, std::string* error) {
  PSKY_CHECK(e.pos.dims() == opts_.dims);
  if (segments_.empty() || tail_count_ == opts_.elements_per_segment) {
    if (!MapTailSegment(error)) return false;
  }
  char* slot = segments_.back().map + tail_count_ * SlotBytes();
  std::memcpy(slot, &e.seq, 8);
  std::memcpy(slot + 8, &e.prob, 8);
  std::memcpy(slot + 16, &e.time, 8);
  std::memcpy(slot + 24, e.pos.data(), 8 * static_cast<size_t>(opts_.dims));
  ++tail_count_;
  ++size_;
  return true;
}

bool SegmentStore::PopFront(UncertainElement* out, std::string* error) {
  PSKY_CHECK(size_ > 0);
  *out = At(0);
  ++head_offset_;
  --size_;
  const bool front_is_tail = segments_.size() == 1;
  const size_t front_used = front_is_tail ? tail_count_
                                          : opts_.elements_per_segment;
  if (head_offset_ == front_used && !front_is_tail) {
    if (!RecycleFrontSegment(error)) {
      // The element is already out; undo nothing, but surface the I/O
      // problem. The drained segment stays mapped and retries next pop.
      ++size_;
      --head_offset_;
      *out = UncertainElement{};
      return false;
    }
  } else if (head_offset_ == front_used && front_is_tail) {
    // Fully drained store: rewind the single segment in place.
    head_offset_ = 0;
    tail_count_ = 0;
  }
  return true;
}

UncertainElement SegmentStore::At(size_t i) const {
  PSKY_CHECK(i < size_);
  const size_t flat = head_offset_ + i;
  const size_t seg_index = flat / opts_.elements_per_segment;
  const size_t slot_index = flat % opts_.elements_per_segment;
  const char* slot = segments_[seg_index].map + slot_index * SlotBytes();
  UncertainElement e;
  e.pos = Point(opts_.dims);
  std::memcpy(&e.seq, slot, 8);
  std::memcpy(&e.prob, slot + 8, 8);
  std::memcpy(&e.time, slot + 16, 8);
  for (int d = 0; d < opts_.dims; ++d) {
    std::memcpy(&e.pos[d], slot + 24 + 8 * static_cast<size_t>(d), 8);
  }
  return e;
}

std::vector<UncertainElement> SegmentStore::Snapshot() const {
  std::vector<UncertainElement> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) out.push_back(At(i));
  return out;
}

StoredCountWindow::StoredCountWindow(size_t capacity,
                                     const SegmentStore::Options& opts)
    : capacity_(capacity), store_(opts) {}

bool StoredCountWindow::Init(std::string* error) {
  return store_.Init(error);
}

std::optional<UncertainElement> StoredCountWindow::Push(
    const UncertainElement& e) {
  std::string error;
  std::optional<UncertainElement> expired;
  if (store_.size() == capacity_) {
    UncertainElement oldest;
    PSKY_CHECK_MSG(store_.PopFront(&oldest, &error), error.c_str());
    expired = oldest;
  }
  PSKY_CHECK_MSG(store_.PushBack(e, &error), error.c_str());
  return expired;
}

UncertainElement StoredCountWindow::PushRotate(const UncertainElement& e) {
  PSKY_CHECK(full());
  std::string error;
  UncertainElement oldest;
  PSKY_CHECK_MSG(store_.PopFront(&oldest, &error), error.c_str());
  PSKY_CHECK_MSG(store_.PushBack(e, &error), error.c_str());
  return oldest;
}

size_t SweepSegmentFiles(const std::string& dir) {
  size_t removed = 0;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (IsSegmentFileName(entry.path().filename().string())) {
      std::error_code rm_ec;
      if (std::filesystem::remove(entry.path(), rm_ec)) ++removed;
    }
  }
  return removed;
}

}  // namespace psky
