#include "store/recovery.h"

#include <cstdlib>
#include <filesystem>

namespace psky {

namespace {

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

void Note(std::string* notes, const std::string& msg) {
  if (!notes->empty()) notes->append("; ");
  notes->append(msg);
}

bool ParsePaddedU64(const std::string& digits, uint64_t* out) {
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

// Collects the contiguous run of WAL records following `base_step` from
// the rotation chain in `dir`: records with step_after = base_step + 1,
// base_step + 2, ... taken across consecutive files. Stops (with a note)
// at the first gap or unreadable stretch; everything collected is safe
// to apply in order. Also reports the newest readable WAL file so the
// resumed run can keep appending to it.
struct ChainScan {
  std::vector<WalRecord> records;
  std::string active_wal;
  uint64_t active_wal_start = 0;
  bool tail_truncated = false;
  bool any_readable = false;
  std::string notes;
};

ChainScan ScanWalChain(const std::string& dir, uint64_t base_step) {
  ChainScan scan;
  const std::vector<std::string> files = ListWalFiles(dir);
  // The chain relevant to `base_step` starts at the last file whose
  // start step is at or below it; earlier files only hold older records.
  size_t first = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    uint64_t start = 0;
    if (ParseWalStartStep(files[i], &start) && start <= base_step) first = i;
  }
  uint64_t expected = base_step + 1;
  bool chain_broken = false;
  for (size_t i = first; i < files.size(); ++i) {
    WalContents contents;
    std::string file_error;
    if (!ReadWalFile(files[i], &contents, &file_error)) {
      Note(&scan.notes, file_error);
      chain_broken = true;
      continue;
    }
    scan.any_readable = true;
    scan.active_wal = files[i];
    scan.active_wal_start = contents.start_step;
    if (contents.tail_truncated) {
      scan.tail_truncated = true;
      Note(&scan.notes, files[i] + ": " + contents.tail_diagnostic);
    }
    if (chain_broken) continue;  // still track the append target
    for (const WalRecord& r : contents.records) {
      if (r.step_after < expected) continue;  // pre-base or duplicate
      if (r.step_after != expected) {
        Note(&scan.notes, files[i] + ": gap before step " +
                              std::to_string(r.step_after) + " (expected " +
                              std::to_string(expected) + ")");
        chain_broken = true;
        break;
      }
      scan.records.push_back(r);
      ++expected;
    }
  }
  return scan;
}

}  // namespace

bool ParseCheckpointStep(const std::string& path, uint64_t* step) {
  const std::string name = std::filesystem::path(path).filename().string();
  if (name.size() != CheckpointFileName(0).size() ||
      name.rfind("ckpt-", 0) != 0 ||
      name.compare(name.size() - 5, 5, ".psky") != 0) {
    return false;
  }
  return ParsePaddedU64(name.substr(5, 20), step);
}

bool RecoverState(const std::string& dir, RecoveredState* out,
                  std::string* error) {
  RecoveredState state;
  std::string ckpt_error;
  state.has_checkpoint =
      LoadLatestCheckpoint(dir, &state.checkpoint, &ckpt_error);
  if (!state.has_checkpoint) {
    state.checkpoint = CheckpointState{};
    if (!ckpt_error.empty()) Note(&state.notes, ckpt_error);
  } else if (!ckpt_error.empty()) {
    Note(&state.notes, ckpt_error);  // older corrupt files, warnings only
  }

  ChainScan scan = ScanWalChain(dir, state.checkpoint.elements_consumed);
  state.tail = std::move(scan.records);
  state.active_wal = scan.active_wal;
  state.active_wal_start = scan.active_wal_start;
  state.tail_truncated = scan.tail_truncated;
  if (!scan.notes.empty()) Note(&state.notes, scan.notes);

  if (!state.has_checkpoint && !scan.any_readable) {
    return Fail(error, state.notes.empty()
                           ? "nothing to recover in " + dir
                           : "nothing to recover in " + dir + ": " +
                                 state.notes);
  }
  *out = std::move(state);
  return true;
}

bool ParseReplayTarget(const std::string& spec, ReplayTarget* out,
                       std::string* error) {
  ReplayTarget target;
  if (spec.rfind("ts:", 0) == 0) {
    const std::string value = spec.substr(3);
    char* end = nullptr;
    target.kind = ReplayTarget::Kind::kTime;
    target.time = std::strtod(value.c_str(), &end);
    if (value.empty() || end == nullptr || *end != '\0') {
      return Fail(error, "bad --replay-at timestamp '" + value + "'");
    }
  } else {
    target.kind = ReplayTarget::Kind::kStep;
    if (!ParsePaddedU64(spec, &target.step) || spec.empty()) {
      return Fail(error, "bad --replay-at position '" + spec +
                             "' (want a step count or ts:<seconds>)");
    }
  }
  *out = target;
  return true;
}

bool PlanReplay(const std::string& dir, const ReplayTarget& target,
                RecoveredState* out, std::string* error) {
  RecoveredState state;

  // Newest checkpoint whose state is a prefix of the target sequence.
  // For a step target that is any checkpoint at or before the step; for
  // a time target the admitted-timestamp monotonicity (window policies
  // reject or clamp out-of-order arrivals) makes "newest window element
  // at or before T" the same prefix condition.
  const std::vector<std::string> files = ListCheckpointFiles(dir);
  for (const std::string& path : files) {  // newest first
    uint64_t step = 0;
    if (!ParseCheckpointStep(path, &step)) continue;
    if (target.kind == ReplayTarget::Kind::kStep && step > target.step) {
      continue;
    }
    CheckpointState candidate;
    std::string file_error;
    if (!ReadCheckpointFile(path, &candidate, &file_error)) {
      Note(&state.notes, file_error);
      continue;
    }
    if (target.kind == ReplayTarget::Kind::kTime &&
        !candidate.window.empty() &&
        candidate.window.back().time > target.time) {
      continue;
    }
    state.checkpoint = std::move(candidate);
    state.has_checkpoint = true;
    break;
  }

  const uint64_t base_step =
      state.has_checkpoint ? state.checkpoint.elements_consumed : 0;
  ChainScan scan = ScanWalChain(dir, base_step);
  if (!scan.notes.empty()) Note(&state.notes, scan.notes);
  state.tail_truncated = scan.tail_truncated;
  state.active_wal = scan.active_wal;
  state.active_wal_start = scan.active_wal_start;

  if (target.kind == ReplayTarget::Kind::kStep) {
    if (base_step > target.step) {
      return Fail(error, "replay target " + std::to_string(target.step) +
                             " predates the oldest retained checkpoint");
    }
    const uint64_t need = target.step - base_step;
    if (scan.records.size() < need) {
      return Fail(error,
                  "replay target " + std::to_string(target.step) +
                      " is beyond retained WAL coverage (have steps up to " +
                      std::to_string(base_step + scan.records.size()) + ")");
    }
    scan.records.resize(need);
  } else {
    size_t keep = 0;
    while (keep < scan.records.size() &&
           scan.records[keep].element.time <= target.time) {
      ++keep;
    }
    scan.records.resize(keep);
  }
  if (!state.has_checkpoint) {
    // With no checkpoint base the WAL must cover the stream from the
    // start; ScanWalChain already enforced contiguity from step 1.
    if (!scan.records.empty() && scan.records.front().step_after != 1) {
      return Fail(error, "replay target predates retained WAL history");
    }
    if (scan.records.empty() && !scan.any_readable) {
      return Fail(error, "nothing to replay in " + dir +
                             (state.notes.empty() ? "" : ": " + state.notes));
    }
  }
  state.tail = std::move(scan.records);
  *out = std::move(state);
  return true;
}

}  // namespace psky
