#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "base/crc32.h"
#include "base/fault_injection.h"
#include "base/wire.h"
#include "geom/point.h"

namespace psky {

namespace {

using wire::AppendF64;
using wire::AppendU32;
using wire::AppendU64;
using wire::Cursor;

constexpr char kMagic[8] = {'P', 'S', 'K', 'Y', 'W', 'A', 'L', '1'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderSize = 24;
constexpr uint8_t kRecordElement = 1;
// type u8 + dims u8 + 7 LEB128 position/counter stamps (10 bytes worst
// case each) + prob/time f64 + kMaxDims coordinates. Any frame length
// above this is corruption. The stamps are varint-coded because their
// values are small (step counts, near-zero counters): fixed u64s would
// more than double the record, and sync cost scales with bytes flushed.
constexpr uint64_t kMaxBodyBytes = 2 + 7 * 10 + 16 + 8 * kMaxDims;
// Flush (without fsync) whenever the user-space buffer grows past this,
// so a stretched group-commit window cannot hoard memory.
constexpr size_t kFlushThreshold = 1 << 16;

bool Fail(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
  return false;
}

// See checkpoint.cc: strerror is fine on the single pipeline thread.
std::string ErrnoString(int err) {
  return std::strerror(err);  // NOLINT(concurrency-mt-unsafe)
}

bool FailIo(std::string* error, int* out_errno, int err,
            const std::string& msg) {
  if (out_errno != nullptr) *out_errno = err;
  return Fail(error, msg);
}

std::string EncodeWalHeader(uint32_t dims, uint64_t start_step) {
  std::string out;
  out.reserve(kHeaderSize);
  out.append(kMagic, sizeof kMagic);
  AppendU32(&out, kVersion);
  AppendU32(&out, dims);
  AppendU64(&out, start_step);
  return out;
}

// Writes all of `bytes` to `fd`, resuming short writes.
bool WriteAll(int fd, const char* bytes, size_t len, int* out_err) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, bytes + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      *out_err = errno != 0 ? errno : EIO;
      return false;
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

namespace {

constexpr size_t kMaxRecordBody = kMaxBodyBytes;

// Unsigned LEB128: 7 value bits per byte, high bit = continuation.
inline char* PutVarint(char* p, uint64_t v) {
  while (v >= 0x80u) {
    *p++ = static_cast<char>(v | 0x80u);
    v >>= 7;
  }
  *p++ = static_cast<char>(v);
  return p;
}

inline char* PutF64(char* p, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) *p++ = static_cast<char>(bits >> (8 * i));
  return p;
}

bool ReadVarint(Cursor* c, uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    uint8_t b = 0;
    if (!c->ReadU8(&b)) return false;
    if (shift == 63 && (b & ~uint8_t{1}) != 0) return false;  // overflow
    v |= static_cast<uint64_t>(b & 0x7Fu) << shift;
    if ((b & 0x80u) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

// Encodes the record body into `scratch` (>= kMaxRecordBody bytes) and
// returns its length. Pointer-bumping into a stack buffer: the append
// hot path runs this once per admitted element, and byte-wise
// std::string::push_back was the dominant cost there.
size_t EncodeWalRecordTo(const WalRecord& r, char* scratch) {
  const int dims = r.element.pos.dims();
  char* p = scratch;
  *p++ = static_cast<char>(kRecordElement);
  *p++ = static_cast<char>(dims);
  p = PutVarint(p, r.step_after);
  p = PutVarint(p, r.next_seq_after);
  p = PutVarint(p, r.lines_after);
  p = PutVarint(p, r.skipped_total);
  p = PutVarint(p, r.clamped_total);
  p = PutVarint(p, r.ooo_total);
  p = PutVarint(p, r.element.seq);
  p = PutF64(p, r.element.prob);
  p = PutF64(p, r.element.time);
  for (int i = 0; i < dims; ++i) p = PutF64(p, r.element.pos[i]);
  return static_cast<size_t>(p - scratch);
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& r) {
  char scratch[kMaxRecordBody];
  return std::string(scratch, EncodeWalRecordTo(r, scratch));
}

bool DecodeWalRecordBody(std::string_view body, WalRecord* out,
                         std::string* error) {
  Cursor c(body);
  uint8_t type = 0;
  uint8_t dims = 0;
  if (!c.ReadU8(&type) || !c.ReadU8(&dims)) {
    return Fail(error, "record body truncated before type/dims");
  }
  if (type != kRecordElement) {
    return Fail(error, "unknown record type " + std::to_string(type));
  }
  if (dims < 1 || dims > kMaxDims) {
    return Fail(error, "record dims " + std::to_string(dims) +
                           " outside [1, " + std::to_string(kMaxDims) + "]");
  }
  WalRecord r;
  if (!ReadVarint(&c, &r.step_after) || !ReadVarint(&c, &r.next_seq_after) ||
      !ReadVarint(&c, &r.lines_after) || !ReadVarint(&c, &r.skipped_total) ||
      !ReadVarint(&c, &r.clamped_total) || !ReadVarint(&c, &r.ooo_total) ||
      !ReadVarint(&c, &r.element.seq) || !c.ReadF64(&r.element.prob) ||
      !c.ReadF64(&r.element.time)) {
    return Fail(error, "record body truncated or malformed in stamps");
  }
  r.element.pos = Point(dims);
  for (int i = 0; i < dims; ++i) {
    if (!c.ReadF64(&r.element.pos[i])) {
      return Fail(error, "record body truncated in coordinates");
    }
  }
  if (c.remaining() != 0) {
    return Fail(error, "record body has trailing bytes");
  }
  *out = r;
  return true;
}

bool DecodeWalBytes(std::string_view bytes, WalContents* out,
                    std::string* error) {
  if (bytes.size() < kHeaderSize) {
    return Fail(error, "file shorter than a WAL header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    return Fail(error, "bad magic (not a WAL file)");
  }
  Cursor header(bytes.substr(sizeof kMagic));
  uint32_t version = 0;
  WalContents contents;
  if (!header.ReadU32(&version) || !header.ReadU32(&contents.dims) ||
      !header.ReadU64(&contents.start_step)) {
    return Fail(error, "truncated WAL header");
  }
  if (version != kVersion) {
    return Fail(error, "unsupported WAL version " + std::to_string(version));
  }
  if (contents.dims < 1 || contents.dims > static_cast<uint32_t>(kMaxDims)) {
    return Fail(error,
                "WAL header dims " + std::to_string(contents.dims) +
                    " outside [1, " + std::to_string(kMaxDims) + "]");
  }

  contents.valid_bytes = kHeaderSize;
  size_t pos = kHeaderSize;
  auto cut_tail = [&](const std::string& why) {
    contents.tail_truncated = true;
    contents.tail_diagnostic =
        why + " at offset " + std::to_string(contents.valid_bytes);
  };
  while (pos < bytes.size()) {
    Cursor frame(bytes.substr(pos));
    uint32_t body_len = 0;
    uint32_t crc = 0;
    if (!frame.ReadU32(&body_len) || !frame.ReadU32(&crc)) {
      cut_tail("torn frame header");
      break;
    }
    if (body_len > kMaxBodyBytes) {
      cut_tail("frame length " + std::to_string(body_len) +
               " exceeds record maximum");
      break;
    }
    if (frame.remaining() < body_len) {
      cut_tail("torn record body");
      break;
    }
    const std::string_view body = bytes.substr(pos + 8, body_len);
    if (Crc32(body.data(), body.size()) != crc) {
      cut_tail("record CRC mismatch");
      break;
    }
    WalRecord r;
    std::string body_error;
    if (!DecodeWalRecordBody(body, &r, &body_error)) {
      cut_tail(body_error);
      break;
    }
    if (r.element.pos.dims() != static_cast<int>(contents.dims)) {
      cut_tail("record dims disagree with WAL header");
      break;
    }
    contents.records.push_back(r);
    pos += 8 + body_len;
    contents.valid_bytes = pos;
  }
  *out = std::move(contents);
  return true;
}

bool ReadWalFile(const std::string& path, WalContents* out,
                 std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Fail(error, "cannot open " + path + ": " + ErrnoString(errno));
  }
  std::string bytes;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Fail(error, "cannot read " + path);
  std::string decode_error;
  if (!DecodeWalBytes(bytes, out, &decode_error)) {
    return Fail(error, path + ": " + decode_error);
  }
  return true;
}

bool RepairWalFile(const std::string& path, std::string* error) {
  WalContents contents;
  if (!ReadWalFile(path, &contents, error)) return false;
  if (!contents.tail_truncated) return true;
  if (::truncate(path.c_str(), static_cast<off_t>(contents.valid_bytes)) !=
      0) {
    return Fail(error, "cannot truncate " + path + " to " +
                           std::to_string(contents.valid_bytes) + ": " +
                           ErrnoString(errno));
  }
  return true;
}

std::string WalFileName(uint64_t start_step) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "wal-%020llu.pskywal",
                static_cast<unsigned long long>(start_step));
  return buf;
}

bool ParseWalStartStep(const std::string& path, uint64_t* start_step) {
  const std::string name = std::filesystem::path(path).filename().string();
  if (name.size() != WalFileName(0).size() || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 8, 8, ".pskywal") != 0) {
    return false;
  }
  uint64_t v = 0;
  for (size_t i = 4; i < 24; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    const auto digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *start_step = v;
  return true;
}

std::vector<std::string> ListWalFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    uint64_t step = 0;
    if (ParseWalStartStep(entry.path().filename().string(), &step)) {
      files.push_back(entry.path().string());
    }
  }
  // Zero-padded start steps make lexicographic order stream order.
  std::sort(files.begin(), files.end());
  return files;
}

size_t PruneWalFiles(const std::string& dir, uint64_t keep_from_step) {
  const std::vector<std::string> files = ListWalFiles(dir);
  size_t removed = 0;
  for (size_t i = 0; i + 1 < files.size(); ++i) {
    uint64_t next_start = 0;
    if (!ParseWalStartStep(files[i + 1], &next_start)) continue;
    // Records in files[i] all have step_after <= next_start; once the
    // oldest retained checkpoint is at or past that, no resume reads it.
    if (next_start <= keep_from_step) {
      std::error_code ec;
      if (std::filesystem::remove(files[i], ec)) ++removed;
    }
  }
  return removed;
}

WalWriter::~WalWriter() {
  Close();
  SetAsyncSync(false);  // joins the overlapped-sync worker, if any
}

bool WalWriter::Create(const std::string& path, uint32_t dims,
                       uint64_t start_step, std::string* error,
                       int* out_errno) {
  Close();
  if (dims < 1 || dims > static_cast<uint32_t>(kMaxDims)) {
    return FailIo(error, out_errno, 0,
                  "WAL dims " + std::to_string(dims) + " outside [1, " +
                      std::to_string(kMaxDims) + "]");
  }
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    return FailIo(error, out_errno, EEXIST, path + " already exists");
  }
  // Header goes through tmp+rename so a crash mid-create never leaves a
  // torn header behind (the startup sweep reaps the ".tmp").
  const std::string tmp = path + ".tmp";
  const std::string header = EncodeWalHeader(dims, start_step);
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return FailIo(error, out_errno, errno,
                  "cannot open " + tmp + ": " + ErrnoString(errno));
  }
  int err = 0;
  if (!WriteAll(fd, header.data(), header.size(), &err)) {
    ::close(fd);
    return FailIo(error, out_errno, err,
                  "cannot write " + tmp + ": " + ErrnoString(err));
  }
  if (::fsync(fd) != 0) {
    err = errno;
    ::close(fd);
    return FailIo(error, out_errno, err,
                  "cannot flush " + tmp + ": " + ErrnoString(err));
  }
  ::close(fd);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return FailIo(error, out_errno, errno,
                  "cannot rename " + tmp + " to " + path + ": " +
                      ErrnoString(errno));
  }
  // Persist the directory entry too, so a crash right after a rotation
  // cannot lose the new log file; Sync() then only needs fdatasync.
  {
    const std::string dir =
        std::filesystem::path(path).parent_path().string();
    const int dfd =
        ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      ::fsync(dfd);  // best effort: some filesystems reject dir fsync
      ::close(dfd);
    }
  }
  fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return FailIo(error, out_errno, errno,
                  "cannot reopen " + path + ": " + ErrnoString(errno));
  }
  fd_ = fd;
  UpdateAsyncTarget(fd_);
  path_ = path;
  dims_ = dims;
  buffer_.clear();
  pending_ = 0;
  return true;
}

bool WalWriter::OpenForAppend(const std::string& path, std::string* error,
                              int* out_errno, uint64_t* out_next_step) {
  Close();
  if (!RepairWalFile(path, error)) {
    if (out_errno != nullptr) *out_errno = 0;
    return false;
  }
  WalContents contents;
  if (!ReadWalFile(path, &contents, error)) {
    if (out_errno != nullptr) *out_errno = 0;
    return false;
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return FailIo(error, out_errno, errno,
                  "cannot open " + path + ": " + ErrnoString(errno));
  }
  fd_ = fd;
  UpdateAsyncTarget(fd_);
  path_ = path;
  dims_ = contents.dims;
  buffer_.clear();
  pending_ = 0;
  if (out_next_step != nullptr) {
    *out_next_step = contents.records.empty()
                         ? contents.start_step + 1
                         : contents.records.back().step_after + 1;
  }
  return true;
}

bool WalWriter::FlushBuffer(std::string* error, int* out_errno) {
  if (buffer_.empty()) return true;
  int err = 0;
  if (!WriteAll(fd_, buffer_.data(), buffer_.size(), &err)) {
    return FailIo(error, out_errno, err,
                  "cannot write " + path_ + ": " + ErrnoString(err));
  }
  buffer_.clear();
  return true;
}

bool WalWriter::Append(const WalRecord& r, std::string* error,
                       int* out_errno) {
  if (fd_ < 0) return FailIo(error, out_errno, 0, "WAL is not open");
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kWalAppend)) {
      return FailIo(error, out_errno, inj,
                    "cannot append to " + path_ + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  if (r.element.pos.dims() != static_cast<int>(dims_)) {
    return FailIo(error, out_errno, 0,
                  "record dims disagree with WAL header");
  }
  // Frame and body are laid out in one stack scratch buffer and land in
  // the group-commit buffer with a single append — no per-record heap
  // allocation and no byte-wise string growth on the hot path.
  char scratch[8 + kMaxRecordBody];
  const size_t body_len = EncodeWalRecordTo(r, scratch + 8);
  const uint32_t crc = Crc32(scratch + 8, body_len);
  char* p = scratch;
  for (int i = 0; i < 4; ++i) {
    *p++ = static_cast<char>(static_cast<uint32_t>(body_len) >> (8 * i));
  }
  for (int i = 0; i < 4; ++i) *p++ = static_cast<char>(crc >> (8 * i));
  buffer_.append(scratch, 8 + body_len);
  ++pending_;
  ++stats_.records_appended;
  if (buffer_.size() >= kFlushThreshold) {
    return FlushBuffer(error, out_errno);
  }
  return true;
}

bool WalWriter::DataSyncNow(std::string* error, int* out_errno) {
  // fdatasync is enough for crash safety here: record data and the file
  // size reach the journal, and the directory entry was already fsynced
  // by Create/RotateTo. Skipping the timestamp flush shaves a solid
  // fraction off every group commit.
  if (::fdatasync(fd_) != 0) {
    return FailIo(error, out_errno, errno,
                  "cannot sync " + path_ + ": " + ErrnoString(errno));
  }
  // The log is write-only until recovery: drop the flushed pages so an
  // hours-long stream doesn't evict the operator's working set from the
  // page cache. Advisory only — failure is not an error.
  (void)::posix_fadvise(fd_, 0, 0, POSIX_FADV_DONTNEED);
  return true;
}

bool WalWriter::ConsumeStickyError(std::string* error, int* out_errno) {
  {
    MutexLock lock(async_.mu);
    if (async_.sticky_errno == 0 && async_.sticky_error.empty()) return true;
    if (error != nullptr) *error = async_.sticky_error;
    if (out_errno != nullptr) *out_errno = async_.sticky_errno;
    async_.sticky_errno = 0;
    async_.sticky_error.clear();
    // The failed fdatasync left appended bytes unsynced. Queue another
    // attempt so a retrying caller's next Sync()/SyncBarrier() waits on
    // a fresh fdatasync instead of vacuously succeeding.
    ++async_.requested;
  }
  async_.cv.NotifyAll();
  return false;
}

bool WalWriter::Sync(std::string* error, int* out_errno) {
  if (fd_ < 0) return FailIo(error, out_errno, 0, "WAL is not open");
  // Surface a background-sync failure before anything else, so the
  // caller's retry path sees overlapped failures exactly where it would
  // see synchronous ones.
  if (async_.enabled && !ConsumeStickyError(error, out_errno)) return false;
  if (pending_ == 0 && buffer_.empty()) return true;
  if (fault::Enabled()) {
    if (const int inj = fault::FailErrno(fault::Site::kWalFsync)) {
      return FailIo(error, out_errno, inj,
                    "cannot sync " + path_ + ": " + ErrnoString(inj) +
                        " (injected)");
    }
  }
  if (!FlushBuffer(error, out_errno)) return false;
  if (async_.enabled) {
    {
      MutexLock lock(async_.mu);
      ++async_.requested;
    }
    async_.cv.NotifyAll();
    pending_ = 0;
    ++stats_.syncs;
    ++stats_.async_syncs;
    return true;
  }
  if (!DataSyncNow(error, out_errno)) return false;
  pending_ = 0;
  ++stats_.syncs;
  return true;
}

void WalWriter::AsyncSyncLoop() {
  while (true) {
    uint64_t target = 0;
    int fd = -1;
    std::string path;
    {
      MutexLock lock(async_.mu);
      async_.cv.Wait(async_.mu, [this] {
        async_.mu.AssertHeld();
        return async_.stop || async_.requested > async_.completed;
      });
      if (async_.stop && async_.requested == async_.completed) return;
      target = async_.requested;
      fd = async_.fd;
      path = async_.path;
    }
    const auto started = std::chrono::steady_clock::now();
    int err = 0;
    if (fd < 0) {
      err = EBADF;
    } else if (::fdatasync(fd) != 0) {
      err = errno;
    } else {
      (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
    }
    const uint64_t latency_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - started)
            .count());
    {
      MutexLock lock(async_.mu);
      // One fdatasync covers every request issued before it started.
      if (target > async_.completed) async_.completed = target;
      async_.last_latency_ms = latency_ms;
      if (err != 0) {
        async_.sticky_errno = err;
        // Name the snapshot path published with the fd, not the live
        // path_: the appender thread mutates path_ during Create/Rotate/
        // Close with no lock held (pre-fix this was a data race, and the
        // message could name the *next* log for a failure in the old one).
        async_.sticky_error = "cannot sync " + (path.empty() ? "WAL" : path) +
                              ": " + ErrnoString(err) + " (overlapped)";
      }
    }
    async_.cv.NotifyAll();
  }
}

void WalWriter::SetAsyncSync(bool enabled) {
  if (enabled == async_.enabled) return;
  if (enabled) {
    {
      MutexLock lock(async_.mu);
      async_.stop = false;
      async_.fd = fd_;
      async_.path = path_;
    }
    async_.thread = std::thread([this] { AsyncSyncLoop(); });
    async_.enabled = true;
    return;
  }
  SyncBarrier(nullptr, nullptr);  // best effort; sticky error survives
  {
    MutexLock lock(async_.mu);
    async_.stop = true;
  }
  async_.cv.NotifyAll();
  if (async_.thread.joinable()) async_.thread.join();
  async_.enabled = false;
}

bool WalWriter::SyncBarrier(std::string* error, int* out_errno) {
  if (!async_.enabled) return true;
  {
    MutexLock lock(async_.mu);
    async_.cv.Wait(async_.mu, [this] {
      async_.mu.AssertHeld();
      return async_.completed >= async_.requested;
    });
  }
  return ConsumeStickyError(error, out_errno);
}

uint64_t WalWriter::TakeAsyncSyncLatencyMs() {
  MutexLock lock(async_.mu);
  const uint64_t latency = async_.last_latency_ms;
  async_.last_latency_ms = 0;
  return latency;
}

void WalWriter::UpdateAsyncTarget(int fd) {
  MutexLock lock(async_.mu);
  async_.fd = fd;
  if (fd >= 0) {
    async_.path = path_;
  } else {
    async_.path.clear();
  }
}

bool WalWriter::RotateTo(const std::string& dir, uint64_t start_step,
                         std::string* error, int* out_errno) {
  if (fd_ >= 0) {
    if (!Sync(error, out_errno)) return false;
    // Overlapped mode: wait out any in-flight fdatasync before the fd
    // closes — SyncBarrier returning means the worker is idle.
    if (!SyncBarrier(error, out_errno)) return false;
    UpdateAsyncTarget(-1);
    ::close(fd_);
    fd_ = -1;
  }
  const uint32_t dims = dims_;
  const std::string path =
      (std::filesystem::path(dir) / WalFileName(start_step)).string();
  if (!Create(path, dims, start_step, error, out_errno)) return false;
  ++stats_.rotations;
  return true;
}

void WalWriter::Close() {
  if (fd_ < 0) return;
  std::string error;
  Sync(&error, nullptr);  // best effort; Close has no failure channel
  SyncBarrier(&error, nullptr);
  UpdateAsyncTarget(-1);
  ::close(fd_);
  fd_ = -1;
  path_.clear();
  buffer_.clear();
  pending_ = 0;
}

bool DiskPressureGovernor::ObserveSync(bool transient_failure,
                                       uint64_t latency_ms) {
  if (transient_failure || latency_ms >= opts_.slow_sync_ms) {
    clean_streak_ = 0;
    if (multiplier_ < opts_.max_multiplier) {
      multiplier_ = std::min(multiplier_ * opts_.escalate_factor,
                             opts_.max_multiplier);
      ++escalations_;
      return true;
    }
    return false;
  }
  if (multiplier_ == 1) return false;
  if (++clean_streak_ >= opts_.recover_after) {
    clean_streak_ = 0;
    multiplier_ = std::max<uint64_t>(1, multiplier_ / opts_.escalate_factor);
    ++recoveries_;
    return true;
  }
  return false;
}

}  // namespace psky
