// Branch-and-bound skyline on an R-tree (Papadias, Tao, Fu, Seeger —
// SIGMOD 2003). Progressive and I/O-optimal on the certain-data problem;
// the paper's aggregate sky-tree borrows its spatial pruning style.

#ifndef PSKY_SKYLINE_BBS_H_
#define PSKY_SKYLINE_BBS_H_

#include <cstdint>
#include <vector>

#include "rtree/rtree.h"

namespace psky {

/// Skyline points (with their ids) of everything indexed in `tree`,
/// emitted in mindist order (the algorithm's natural progressive order).
std::vector<RTree::Item> BbsSkyline(const RTree& tree);

}  // namespace psky

#endif  // PSKY_SKYLINE_BBS_H_
