#include "skyline/sfs.h"

#include <algorithm>
#include <numeric>

#include "geom/dominance.h"

namespace psky {

namespace {

double CoordSum(const Point& p) {
  double s = 0.0;
  for (int i = 0; i < p.dims(); ++i) s += p[i];
  return s;
}

}  // namespace

std::vector<size_t> SfsSkyline(const std::vector<Point>& points) {
  std::vector<size_t> order(points.size());
  std::iota(order.begin(), order.end(), size_t{0});
  // If u dominates v then sum(u) < sum(v): sorting by coordinate sum
  // guarantees a point is only ever dominated by earlier points.
  std::sort(order.begin(), order.end(), [&points](size_t a, size_t b) {
    return CoordSum(points[a]) < CoordSum(points[b]);
  });

  std::vector<size_t> skyline;
  for (size_t idx : order) {
    const Point& p = points[idx];
    bool dominated = false;
    for (size_t s : skyline) {
      if (Dominates(points[s], p)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(idx);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

}  // namespace psky
