#include "skyline/bbs.h"

#include <queue>
#include <variant>

#include "geom/dominance.h"

namespace psky {

namespace {

double MinDist(const Point& p) {
  double s = 0.0;
  for (int i = 0; i < p.dims(); ++i) s += p[i];
  return s;
}

struct HeapEntry {
  double mindist;
  const RTree::Node* node;  // nullptr when this is a point entry
  RTree::Item item;
};

struct HeapCompare {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const {
    return a.mindist > b.mindist;  // min-heap
  }
};

bool DominatedBySkyline(const std::vector<RTree::Item>& skyline,
                        const Point& p) {
  for (const RTree::Item& s : skyline) {
    if (Dominates(s.pos, p)) return true;
  }
  return false;
}

}  // namespace

std::vector<RTree::Item> BbsSkyline(const RTree& tree) {
  std::vector<RTree::Item> skyline;
  const RTree::Node* root = tree.root();
  if (root == nullptr) return skyline;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapCompare> heap;
  heap.push(HeapEntry{MinDist(root->mbr.min()), root, {}});

  while (!heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.node == nullptr) {
      // A concrete point: dominance may have been established since it was
      // enqueued, so re-check before reporting.
      if (!DominatedBySkyline(skyline, top.item.pos)) {
        skyline.push_back(top.item);
      }
      continue;
    }
    // Prune the whole entry if its best corner is already dominated.
    if (DominatedBySkyline(skyline, top.node->mbr.min())) continue;
    if (top.node->is_leaf) {
      for (const RTree::Item& item : top.node->items) {
        if (!DominatedBySkyline(skyline, item.pos)) {
          heap.push(HeapEntry{MinDist(item.pos), nullptr, item});
        }
      }
    } else {
      for (const auto& child : top.node->children) {
        if (!DominatedBySkyline(skyline, child->mbr.min())) {
          heap.push(HeapEntry{MinDist(child->mbr.min()), child.get(), {}});
        }
      }
    }
  }
  return skyline;
}

}  // namespace psky
