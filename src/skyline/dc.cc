#include "skyline/dc.h"

#include <algorithm>

#include "geom/dominance.h"

namespace psky {

namespace {

// Threshold below which plain nested-loop filtering beats recursion.
constexpr size_t kBaseCase = 64;

// Skyline of the subset `idx` by nested-loop filtering.
std::vector<size_t> BaseSkyline(const std::vector<Point>& pts,
                                const std::vector<size_t>& idx) {
  std::vector<size_t> out;
  for (size_t i : idx) {
    bool dominated = false;
    for (size_t j : idx) {
      if (j != i && Dominates(pts[j], pts[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<size_t> SkylineRec(const std::vector<Point>& pts,
                               std::vector<size_t> idx) {
  if (idx.size() <= kBaseCase) return BaseSkyline(pts, idx);

  // Split at the median of dimension 0.
  const size_t mid = idx.size() / 2;
  std::nth_element(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(mid),
                   idx.end(), [&pts](size_t a, size_t b) {
                     return pts[a][0] < pts[b][0];
                   });
  std::vector<size_t> lo(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(mid));
  std::vector<size_t> hi(idx.begin() + static_cast<ptrdiff_t>(mid), idx.end());
  if (lo.empty() || hi.empty()) return BaseSkyline(pts, idx);

  const std::vector<size_t> sky_lo = SkylineRec(pts, std::move(lo));
  const std::vector<size_t> sky_hi = SkylineRec(pts, std::move(hi));

  // Merge: a high-half survivor must not be dominated by any low-half
  // skyline point; the reverse can only happen through dimension-0 ties,
  // so it is filtered symmetrically for exactness.
  std::vector<size_t> out;
  for (size_t a : sky_lo) {
    bool dominated = false;
    for (size_t b : sky_hi) {
      if (Dominates(pts[b], pts[a])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(a);
  }
  for (size_t b : sky_hi) {
    bool dominated = false;
    for (size_t a : sky_lo) {
      if (Dominates(pts[a], pts[b])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(b);
  }
  return out;
}

}  // namespace

std::vector<size_t> DcSkyline(const std::vector<Point>& points) {
  std::vector<size_t> idx(points.size());
  for (size_t i = 0; i < points.size(); ++i) idx[i] = i;
  std::vector<size_t> out = SkylineRec(points, std::move(idx));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace psky
