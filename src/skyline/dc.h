// Divide-and-conquer skyline (Börzsönyi, Kossmann, Stocker — ICDE 2001).
//
// The second of the two original skyline algorithms: split on the median
// of one dimension, solve the halves, and merge by removing points of the
// "worse" half dominated by the "better" half. Completes the certain-data
// baseline family (BNL, D&C, SFS, BBS).

#ifndef PSKY_SKYLINE_DC_H_
#define PSKY_SKYLINE_DC_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"

namespace psky {

/// Computes the skyline of `points` (minimization on all dimensions).
/// Returns the indices of skyline points in increasing order.
std::vector<size_t> DcSkyline(const std::vector<Point>& points);

}  // namespace psky

#endif  // PSKY_SKYLINE_DC_H_
