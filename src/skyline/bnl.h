// Block-nested-loop skyline (Börzsönyi, Kossmann, Stocker — ICDE 2001).
//
// Certain-data skyline substrate: the paper's historical baseline family.
// Used here as an oracle for the spatial algorithms and by the
// multi-instance extension.

#ifndef PSKY_SKYLINE_BNL_H_
#define PSKY_SKYLINE_BNL_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"

namespace psky {

/// Computes the skyline of `points` (minimization on all dimensions).
/// Returns the indices of skyline points in increasing order.
///
/// Duplicate points are all reported (none dominates its twin).
std::vector<size_t> BnlSkyline(const std::vector<Point>& points);

}  // namespace psky

#endif  // PSKY_SKYLINE_BNL_H_
