#include "skyline/bnl.h"

#include <algorithm>

#include "geom/dominance.h"

namespace psky {

std::vector<size_t> BnlSkyline(const std::vector<Point>& points) {
  // The classical algorithm keeps a self-organizing window of incomparable
  // tuples; in memory the window is simply the running candidate list.
  std::vector<size_t> window;
  for (size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    bool dominated = false;
    size_t keep = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const Point& q = points[window[w]];
      if (Dominates(q, p)) {
        dominated = true;
        // Everything not yet scanned stays.
        for (size_t r = w; r < window.size(); ++r) {
          window[keep++] = window[r];
        }
        break;
      }
      if (!Dominates(p, q)) {
        window[keep++] = window[w];
      }
    }
    window.resize(keep);
    if (!dominated) window.push_back(i);
  }
  std::sort(window.begin(), window.end());
  return window;
}

}  // namespace psky
