// Sort-filter-skyline (Chomicki, Godfrey, Gryz, Liang — ICDE 2003).
//
// Pre-sorts by a monotone scoring function (sum of coordinates) so that no
// point can be dominated by a later one; a single filtering pass against
// the accumulated skyline then suffices.

#ifndef PSKY_SKYLINE_SFS_H_
#define PSKY_SKYLINE_SFS_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"

namespace psky {

/// Computes the skyline of `points`; returns indices in increasing order.
std::vector<size_t> SfsSkyline(const std::vector<Point>& points);

}  // namespace psky

#endif  // PSKY_SKYLINE_SFS_H_
