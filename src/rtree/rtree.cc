#include "rtree/rtree.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "base/check.h"
#include "rtree/split.h"

namespace psky {

RTree::RTree(int dims) : RTree(dims, Options()) {}

RTree::RTree(int dims, Options options) : dims_(dims), options_(options) {
  PSKY_CHECK_MSG(dims >= 1 && dims <= kMaxDims, "dims out of range");
  PSKY_CHECK_MSG(options_.min_entries >= 1, "min_entries must be >= 1");
  PSKY_CHECK_MSG(options_.max_entries >= 2 * options_.min_entries,
                 "max_entries must be >= 2 * min_entries");
  root_ = std::make_unique<Node>();
  root_->is_leaf = true;
  root_->mbr = Mbr::Empty(dims_);
}

Mbr RTree::bounds() const {
  return size_ == 0 ? Mbr::Empty(dims_) : root_->mbr;
}

void RTree::RecomputeMbr(Node* node) const {
  Mbr m = Mbr::Empty(dims_);
  if (node->is_leaf) {
    for (const Item& item : node->items) m.Expand(item.pos);
  } else {
    for (const auto& child : node->children) m.Expand(child->mbr);
  }
  node->mbr = m;
}

std::unique_ptr<RTree::Node> RTree::SplitNode(Node* node) {
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    std::vector<Item> all = std::move(node->items);
    node->items.clear();
    QuadraticSplit(
        &all, &node->items, &sibling->items,
        [](const Item& item) { return Mbr(item.pos); },
        options_.min_entries);
  } else {
    std::vector<std::unique_ptr<Node>> all = std::move(node->children);
    node->children.clear();
    QuadraticSplit(
        &all, &node->children, &sibling->children,
        [](const std::unique_ptr<Node>& child) { return child->mbr; },
        options_.min_entries);
  }
  RecomputeMbr(node);
  RecomputeMbr(sibling.get());
  return sibling;
}

namespace {

// Chooses the child of `node` needing least enlargement (area tie-break).
RTree::Node* PickChild(RTree::Node* node, const Point& pos) {
  RTree::Node* best = nullptr;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  const Mbr point_mbr((pos));
  for (const auto& child : node->children) {
    const double enlarge = child->mbr.Enlargement(point_mbr);
    const double area = child->mbr.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best_enlarge = enlarge;
      best_area = area;
      best = child.get();
    }
  }
  return best;
}

}  // namespace

void RTree::Insert(const Point& pos, uint64_t id) {
  PSKY_DCHECK(pos.dims() == dims_);

  // Recursive insert returning the new sibling when a split propagates.
  struct Inserter {
    RTree* tree;
    const Point& pos;
    uint64_t id;
    std::unique_ptr<Node> Run(Node* node) {
      node->mbr.Expand(pos);
      if (node->is_leaf) {
        node->items.push_back(Item{pos, id});
        if (node->Fanout() > tree->options_.max_entries) {
          return tree->SplitNode(node);
        }
        return nullptr;
      }
      Node* child = PickChild(node, pos);
      PSKY_DCHECK(child != nullptr);
      std::unique_ptr<Node> sibling = Run(child);
      if (sibling != nullptr) {
        node->children.push_back(std::move(sibling));
        if (node->Fanout() > tree->options_.max_entries) {
          return tree->SplitNode(node);
        }
      }
      return nullptr;
    }
  };

  Inserter inserter{this, pos, id};
  std::unique_ptr<Node> sibling = inserter.Run(root_.get());
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    RecomputeMbr(new_root.get());
    root_ = std::move(new_root);
  }
  ++size_;
}

bool RTree::EraseRecursive(Node* node, const Point& pos, uint64_t id,
                           std::vector<Item>* orphans, bool* mbr_shrunk) {
  *mbr_shrunk = false;
  if (node->is_leaf) {
    for (size_t i = 0; i < node->items.size(); ++i) {
      if (node->items[i].id == id && node->items[i].pos == pos) {
        node->items.erase(node->items.begin() + static_cast<ptrdiff_t>(i));
        // An interior point defines no MBR face, so removing it cannot
        // change the box; only boundary points force a rescan.
        if (node->mbr.OnBoundary(pos)) {
          const Mbr before = node->mbr;
          RecomputeMbr(node);
          *mbr_shrunk = !(node->mbr == before);
        }
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    Node* child = node->children[i].get();
    if (!child->mbr.Contains(pos)) continue;
    bool child_shrunk = false;
    if (!EraseRecursive(child, pos, id, orphans, &child_shrunk)) continue;
    bool recompute = child_shrunk;
    if (child->Fanout() < options_.min_entries) {
      // Condense: orphan everything under the child and drop it.
      struct Collector {
        static void Collect(Node* n, std::vector<Item>* out) {
          if (n->is_leaf) {
            out->insert(out->end(), n->items.begin(), n->items.end());
            return;
          }
          for (const auto& c : n->children) Collect(c.get(), out);
        }
      };
      Collector::Collect(child, orphans);
      node->children.erase(node->children.begin() +
                           static_cast<ptrdiff_t>(i));
      recompute = true;
    }
    if (recompute) {
      const Mbr before = node->mbr;
      RecomputeMbr(node);
      *mbr_shrunk = !(node->mbr == before);
    }
    return true;
  }
  return false;
}

bool RTree::Erase(const Point& pos, uint64_t id) {
  PSKY_DCHECK(pos.dims() == dims_);
  std::vector<Item> orphans;
  bool mbr_shrunk = false;
  if (!EraseRecursive(root_.get(), pos, id, &orphans, &mbr_shrunk)) {
    return false;
  }
  --size_;

  // Shrink the root while it is an internal node with a single child.
  while (!root_->is_leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  if (!root_->is_leaf && root_->children.empty()) {
    root_ = std::make_unique<Node>();
    root_->is_leaf = true;
    root_->mbr = Mbr::Empty(dims_);
  }

  // Reinsert orphans without touching size_ (they never left the set).
  for (const Item& item : orphans) {
    Insert(item.pos, item.id);
    --size_;
  }
  return true;
}

void RTree::RangeQuery(const Mbr& range,
                       const std::function<void(const Item&)>& visit) const {
  Traverse([&range](const Mbr& mbr) { return mbr.Intersects(range); },
           [&range, &visit](const Item& item) {
             if (range.Contains(item.pos)) visit(item);
           });
}

void RTree::Traverse(const std::function<bool(const Mbr&)>& descend,
                     const std::function<void(const Item&)>& visit) const {
  if (size_ == 0) return;
  struct Walker {
    const std::function<bool(const Mbr&)>& descend;
    const std::function<void(const Item&)>& visit;
    void Walk(const Node* node) {
      if (!descend(node->mbr)) return;
      if (node->is_leaf) {
        for (const Item& item : node->items) visit(item);
        return;
      }
      for (const auto& child : node->children) Walk(child.get());
    }
  };
  Walker{descend, visit}.Walk(root_.get());
}

int RTree::Height() const {
  if (size_ == 0) return 0;
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

void RTree::CheckInvariants() const {
  struct Checker {
    const RTree* tree;
    size_t item_count = 0;
    int leaf_depth = -1;
    void Check(const Node* node, int depth, bool is_root) {
      if (!is_root) {
        PSKY_CHECK(node->Fanout() >= tree->options_.min_entries);
      }
      PSKY_CHECK(node->Fanout() <= tree->options_.max_entries);
      Mbr expect = Mbr::Empty(tree->dims_);
      if (node->is_leaf) {
        if (leaf_depth < 0) leaf_depth = depth;
        PSKY_CHECK(leaf_depth == depth);
        for (const Item& item : node->items) {
          expect.Expand(item.pos);
          ++item_count;
        }
      } else {
        PSKY_CHECK(!node->children.empty());
        for (const auto& child : node->children) {
          Check(child.get(), depth + 1, false);
          expect.Expand(child->mbr);
        }
      }
      PSKY_CHECK(expect == node->mbr);
    }
  };
  if (size_ == 0) {
    PSKY_CHECK(root_->is_leaf && root_->items.empty());
    return;
  }
  Checker checker{this};
  checker.Check(root_.get(), 0, /*is_root=*/true);
  PSKY_CHECK(checker.item_count == size_);
}

}  // namespace psky
