// Guttman's quadratic node-split, shared by the generic R-tree and the
// core aggregate sky-tree.

#ifndef PSKY_RTREE_SPLIT_H_
#define PSKY_RTREE_SPLIT_H_

#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "base/check.h"
#include "geom/mbr.h"

namespace psky {

/// Distributes the entries of *all into *left and *right using Guttman's
/// quadratic PickSeeds/PickNext heuristic. `mbr_of` maps an entry to its
/// MBR; both groups end with at least `min_entries` members. *all is left
/// empty.
template <typename Entry, typename MbrOf>
void QuadraticSplit(std::vector<Entry>* all, std::vector<Entry>* left,
                    std::vector<Entry>* right, MbrOf mbr_of,
                    int min_entries) {
  const int n = static_cast<int>(all->size());
  PSKY_DCHECK(n >= 2);
  PSKY_DCHECK(n >= 2 * min_entries);

  // PickSeeds: the pair wasting the most area if grouped together.
  int seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      Mbr merged = mbr_of((*all)[i]);
      merged.Expand(mbr_of((*all)[j]));
      const double waste =
          merged.Area() - mbr_of((*all)[i]).Area() - mbr_of((*all)[j]).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Mbr left_mbr = mbr_of((*all)[seed_a]);
  Mbr right_mbr = mbr_of((*all)[seed_b]);
  left->push_back(std::move((*all)[seed_a]));
  right->push_back(std::move((*all)[seed_b]));

  std::vector<bool> assigned(static_cast<size_t>(n), false);
  assigned[static_cast<size_t>(seed_a)] = true;
  assigned[static_cast<size_t>(seed_b)] = true;
  int remaining = n - 2;

  while (remaining > 0) {
    // If one group needs every remaining entry to reach min fill, assign
    // them wholesale.
    const int left_need = min_entries - static_cast<int>(left->size());
    const int right_need = min_entries - static_cast<int>(right->size());
    if (left_need >= remaining || right_need >= remaining) {
      const bool to_left = left_need >= remaining;
      for (int i = 0; i < n; ++i) {
        if (assigned[static_cast<size_t>(i)]) continue;
        assigned[static_cast<size_t>(i)] = true;
        if (to_left) {
          left->push_back(std::move((*all)[i]));
        } else {
          right->push_back(std::move((*all)[i]));
        }
      }
      break;
    }

    // PickNext: the entry with the strongest group preference.
    int best = -1;
    double best_diff = -1.0;
    double best_dl = 0.0, best_dr = 0.0;
    for (int i = 0; i < n; ++i) {
      if (assigned[static_cast<size_t>(i)]) continue;
      const double dl = left_mbr.Enlargement(mbr_of((*all)[i]));
      const double dr = right_mbr.Enlargement(mbr_of((*all)[i]));
      const double diff = std::abs(dl - dr);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_dl = dl;
        best_dr = dr;
      }
    }
    PSKY_DCHECK(best >= 0);
    assigned[static_cast<size_t>(best)] = true;
    --remaining;
    bool to_left = best_dl < best_dr;
    if (best_dl == best_dr) {
      if (left_mbr.Area() != right_mbr.Area()) {
        to_left = left_mbr.Area() < right_mbr.Area();
      } else {
        to_left = left->size() <= right->size();
      }
    }
    if (to_left) {
      left_mbr.Expand(mbr_of((*all)[best]));
      left->push_back(std::move((*all)[best]));
    } else {
      right_mbr.Expand(mbr_of((*all)[best]));
      right->push_back(std::move((*all)[best]));
    }
  }
  all->clear();
}

}  // namespace psky

#endif  // PSKY_RTREE_SPLIT_H_
