// In-memory R-tree over points (Guttman, quadratic split).
//
// This is the spatial substrate used by the certain-data BBS skyline
// algorithm and the multi-instance object operator. The core sliding-window
// operator uses its own specialized aggregate tree (core/sky_tree.*), which
// follows the same structural conventions but fuses the paper's probability
// aggregates into every node.

#ifndef PSKY_RTREE_RTREE_H_
#define PSKY_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/mbr.h"
#include "geom/point.h"

namespace psky {

/// In-memory point R-tree with exact-match deletion.
class RTree {
 public:
  struct Options {
    /// Maximum entries per node before a split.
    int max_entries = 16;
    /// Minimum entries per node before condensation (reinsert).
    int min_entries = 6;
  };

  /// One indexed point.
  struct Item {
    Point pos;
    uint64_t id = 0;
  };

  /// Tree node; exposed read-only so best-first algorithms (BBS) can run
  /// their own priority traversals.
  struct Node {
    bool is_leaf = true;
    Mbr mbr;
    std::vector<std::unique_ptr<Node>> children;  // when !is_leaf
    std::vector<Item> items;                      // when is_leaf
    int Fanout() const {
      return is_leaf ? static_cast<int>(items.size())
                     : static_cast<int>(children.size());
    }
  };

  explicit RTree(int dims);
  RTree(int dims, Options options);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  int dims() const { return dims_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Bounding box of all indexed points (empty MBR when the tree is empty).
  Mbr bounds() const;

  /// Inserts a point with an id. Duplicate (pos, id) pairs are allowed.
  void Insert(const Point& pos, uint64_t id);

  /// Removes one item matching (pos, id) exactly; false if not present.
  bool Erase(const Point& pos, uint64_t id);

  /// Visits every item inside `range` (inclusive).
  void RangeQuery(const Mbr& range,
                  const std::function<void(const Item&)>& visit) const;

  /// Guided traversal: `descend(mbr)` is consulted for every node; when it
  /// returns false the subtree is skipped. `visit` sees surviving items.
  void Traverse(const std::function<bool(const Mbr&)>& descend,
                const std::function<void(const Item&)>& visit) const;

  /// Root node for external best-first traversals; nullptr when empty.
  const Node* root() const { return size_ == 0 ? nullptr : root_.get(); }

  /// Height of the tree (1 = single leaf); 0 when empty.
  int Height() const;

  /// Validates structural invariants (MBB consistency, fanout bounds,
  /// uniform leaf depth); aborts on violation. Test helper.
  void CheckInvariants() const;

 private:
  Node* ChooseLeaf(Node* node, const Point& pos,
                   std::vector<Node*>* path) const;
  std::unique_ptr<Node> SplitNode(Node* node);
  void RecomputeMbr(Node* node) const;
  // Removes (pos, id) under `node`. Sets *mbr_shrunk when node->mbr
  // actually changed, so ancestors can skip their own recompute for the
  // common interior deletion (inserts grow MBRs incrementally; only
  // boundary deletions and condensations can shrink one).
  bool EraseRecursive(Node* node, const Point& pos, uint64_t id,
                      std::vector<Item>* orphans, bool* mbr_shrunk);

  int dims_;
  Options options_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace psky

#endif  // PSKY_RTREE_RTREE_H_
