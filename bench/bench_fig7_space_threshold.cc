// Figure 7: space usage vs probability threshold q (anti-correlated 3-d,
// uniform probabilities).
//
// Paper shape to reproduce: both the candidate-set size and the skyline
// size drop monotonically as q increases.

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 7: space usage vs probability threshold q", scale);

  const int d = 3;
  std::printf("%6s %12s %12s\n", "q", "max|S_{N,q}|", "max|SKY|");
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto source = MakeSource(Dataset::kAntiUniform, d);
    SskyOperator op(d, q);
    const RunResult r = DriveOperator(&op, source.get(), scale.n, scale.w);
    std::printf("%6.1f %12zu %12zu\n", q, r.max_candidates, r.max_skyline);
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
