// Shared infrastructure for the figure-reproduction harnesses.
//
// Every bench binary prints the rows/series of one table or figure from
// the paper's evaluation (Section V). Scale is controlled by the
// PSKY_BENCH_SCALE environment variable:
//
//   tiny   n =  20K, N =  10K   (smoke)
//   quick  n = 100K, N =  50K   (default; preserves all trends)
//   full   n =   2M, N =   1M   (paper Table II scale)

#ifndef PSKY_BENCH_BENCH_COMMON_H_
#define PSKY_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "base/stats.h"
#include "base/timer.h"
#include "core/operator.h"
#include "stream/generator.h"
#include "stream/stock.h"
#include "stream/window.h"

namespace psky::bench {

struct Scale {
  const char* name;
  size_t n;  // stream length (paper: 2M)
  size_t w;  // window size N (paper: 1M)
};

inline Scale GetScale() {
  // Read once at startup before any worker threads exist.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* env = std::getenv("PSKY_BENCH_SCALE");
  if (env != nullptr && std::strcmp(env, "full") == 0) {
    return {"full", 2'000'000, 1'000'000};
  }
  if (env != nullptr && std::strcmp(env, "tiny") == 0) {
    return {"tiny", 20'000, 10'000};
  }
  return {"quick", 100'000, 50'000};
}

/// The paper's dataset labels.
enum class Dataset { kIndeUniform, kAntiUniform, kAntiNormal, kStockUniform };

inline const char* DatasetName(Dataset d) {
  switch (d) {
    case Dataset::kIndeUniform:
      return "Inde-Uniform";
    case Dataset::kAntiUniform:
      return "Anti-Uniform";
    case Dataset::kAntiNormal:
      return "Anti-Normal";
    case Dataset::kStockUniform:
      return "Stock-Uniform";
  }
  return "?";
}

/// Type-erased element source covering both synthetic and stock streams.
class ElementSource {
 public:
  virtual ~ElementSource() = default;
  virtual UncertainElement Next() = 0;
};

class SyntheticSource : public ElementSource {
 public:
  explicit SyntheticSource(const StreamConfig& cfg) : gen_(cfg) {}
  UncertainElement Next() override { return gen_.Next(); }

 private:
  StreamGenerator gen_;
};

class StockSource : public ElementSource {
 public:
  explicit StockSource(const StockConfig& cfg) : gen_(cfg) {}
  UncertainElement Next() override { return gen_.Next(); }

 private:
  StockSource(const StockSource&) = delete;
  StockStreamGenerator gen_;
};

/// Builds the source for a paper dataset. `dims` is ignored for stock
/// (always 2-d). `pmu` only matters for the normal probability model.
inline std::unique_ptr<ElementSource> MakeSource(Dataset dataset, int dims,
                                                 double pmu = 0.5,
                                                 uint64_t seed = 42) {
  switch (dataset) {
    case Dataset::kIndeUniform:
    case Dataset::kAntiUniform:
    case Dataset::kAntiNormal: {
      StreamConfig cfg;
      cfg.dims = dims;
      cfg.spatial = dataset == Dataset::kIndeUniform
                        ? SpatialDistribution::kIndependent
                        : SpatialDistribution::kAntiCorrelated;
      cfg.prob.distribution = dataset == Dataset::kAntiNormal
                                  ? ProbDistribution::kNormal
                                  : ProbDistribution::kUniform;
      cfg.prob.mean = pmu;
      cfg.seed = seed;
      return std::make_unique<SyntheticSource>(cfg);
    }
    case Dataset::kStockUniform: {
      StockConfig cfg;
      cfg.seed = seed;
      return std::make_unique<StockSource>(cfg);
    }
  }
  return nullptr;
}

/// Result of driving one operator over one stream.
struct RunResult {
  size_t max_candidates = 0;
  size_t max_skyline = 0;
  /// Mean per-element delay (microseconds), measured over 1K-element
  /// batches from the moment the window is full (steady state).
  double delay_us = 0.0;
  double elements_per_second = 0.0;
  double total_seconds = 0.0;
};

/// Drives `op` over `n` elements from `source` with a count window of
/// `window` elements, batching the clock every 1K elements as the paper
/// does.
inline RunResult DriveOperator(WindowSkylineOperator* op,
                               ElementSource* source, size_t n,
                               size_t window) {
  RunResult result;
  StreamProcessor proc(op, window);
  LatencyRecorder recorder(1000);
  Timer total;
  Timer batch;
  size_t in_batch = 0;
  for (size_t i = 0; i < n; ++i) {
    proc.Step(source->Next());
    if (op->candidate_count() > result.max_candidates) {
      result.max_candidates = op->candidate_count();
    }
    if (op->skyline_count() > result.max_skyline) {
      result.max_skyline = op->skyline_count();
    }
    if (i >= window) {
      if (++in_batch == recorder.batch_size()) {
        recorder.AddBatchSeconds(batch.ElapsedSeconds());
        batch.Reset();
        in_batch = 0;
      }
    } else if (i == window - 1) {
      batch.Reset();  // steady state starts now
    }
  }
  result.total_seconds = total.ElapsedSeconds();
  result.delay_us = recorder.MeanDelayPerElementMicros();
  result.elements_per_second = recorder.ElementsPerSecond();
  return result;
}

inline void PrintHeader(const char* title, const Scale& scale) {
  std::printf("== %s ==\n", title);
  std::printf("scale=%s  n=%zu  N=%zu  (PSKY_BENCH_SCALE=tiny|quick|full)\n\n",
              scale.name, scale.n, scale.w);
}

}  // namespace psky::bench

#endif  // PSKY_BENCH_BENCH_COMMON_H_
