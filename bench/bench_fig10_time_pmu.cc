// Figure 10: SSKY per-element delay vs mean appearance probability P_mu
// (normal probability model, anti-correlated 3-d).
//
// Paper shape to reproduce: larger P_mu means a smaller candidate set
// (Figure 6a) and therefore faster processing.

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 10: per-element delay vs P_mu", scale);

  const double q = 0.3;
  const int d = 3;
  std::printf("%6s %14s %14s\n", "P_mu", "delay (us/elem)", "elements/sec");
  for (double pmu : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto source = MakeSource(Dataset::kAntiNormal, d, pmu);
    SskyOperator op(d, q);
    const RunResult r = DriveOperator(&op, source.get(), scale.n, scale.w);
    std::printf("%6.1f %14.3f %14.0f\n", pmu, r.delay_us,
                r.elements_per_second);
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
