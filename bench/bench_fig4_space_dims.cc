// Figure 4: maximum |S_{N,q}| (candidates) and |SKY_{N,q}| (skyline) vs
// dimensionality, on the paper's four datasets
// (Inde-Uniform, Anti-Uniform, Anti-Normal, Stock-Uniform; stock is 2-d).
// Defaults per Table II: q = 0.3, P_mu = 0.5.
//
// Paper shape to reproduce: sizes grow quickly with d; anti-correlated is
// the hardest; even the worst case stays far below the window size
// (>= 89% space saving at 5-d anti); |SKY| << |S|.

#include <vector>

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 4: space usage vs dimensionality", scale);

  std::printf("%-14s %3s %12s %12s %14s\n", "dataset", "d", "max|S_{N,q}|",
              "max|SKY|", "space saving");
  const double q = 0.3;
  for (Dataset ds : {Dataset::kIndeUniform, Dataset::kAntiUniform,
                     Dataset::kAntiNormal, Dataset::kStockUniform}) {
    const std::vector<int> dims_list =
        ds == Dataset::kStockUniform ? std::vector<int>{2}
                                     : std::vector<int>{2, 3, 4, 5};
    for (int d : dims_list) {
      auto source = MakeSource(ds, d);
      SskyOperator op(d, q);
      const RunResult r =
          DriveOperator(&op, source.get(), scale.n, scale.w);
      std::printf("%-14s %3d %12zu %12zu %13.2f%%\n", DatasetName(ds), d,
                  r.max_candidates, r.max_skyline,
                  100.0 * (1.0 - static_cast<double>(r.max_candidates) /
                                     static_cast<double>(scale.w)));
    }
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
