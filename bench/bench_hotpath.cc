// Hot-path throughput harness with a machine-readable result file.
//
// Drives the SSKY operator over the paper's Fig. 9 configuration (d = 3,
// q = 0.3, count window) for each spatial distribution (anti / inde /
// corr) using the batched stream path, and writes BENCH_hotpath.json:
// sustained elements/second plus p50/p99 per-element step latency per
// workload, stamped with the dominance-kernel variant the CPU dispatched
// to. The inde_wal / inde_disk rows repeat the independent stream with
// the write-ahead log and the mmap'd segment-store window respectively,
// feeding the wal_overhead / disk_overhead keys. Shard rows
// (anti_s{1,2,4,8}, inde_s{1,2,4,8}) repeat the anti/inde streams
// through the sharded ingestion engine and feed the
// shard_scaling_efficiency key. tools/bench_report.py validates the file
// and diffs two of them with a regression gate; the repository tracks a
// full-scale baseline at the root.
//
//   bench_hotpath [output.json]     (default: BENCH_hotpath.json)
//
// Scale comes from PSKY_BENCH_SCALE (tiny|quick|full) as for every other
// bench binary. Latency percentiles are computed from per-element times
// of kBatch-element StepBatch calls measured from the moment the window
// is full (steady state).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "base/timer.h"
#include "bench/bench_common.h"
#include "core/shard_engine.h"
#include "core/ssky_operator.h"
#include "geom/dominance_kernel.h"
#include "store/segment_store.h"
#include "store/wal.h"
#include "stream/generator.h"

namespace psky::bench {
namespace {

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kBatch = 64;

struct WorkloadResult {
  std::string name;
  double elements_per_second = 0.0;
  double total_seconds = 0.0;
  double p50_step_us = 0.0;
  double p99_step_us = 0.0;
  size_t max_candidates = 0;
  size_t max_skyline = 0;
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(),
                   samples->begin() + static_cast<ptrdiff_t>(idx),
                   samples->end());
  return (*samples)[idx];
}

// Group-commit cadence matching psky_stream's --wal-sync-every default,
// so the wal-on row reflects the durability cost a production run pays.
constexpr uint64_t kWalSyncEvery = 4096;

WorkloadResult RunWorkload(const char* name, SpatialDistribution spatial,
                           const Scale& scale, bool wal_on) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = spatial;
  cfg.seed = 42;
  StreamGenerator gen(cfg);

  SskyOperator op(kDims, kQ);
  StreamProcessor proc(&op, scale.w);

  const std::string wal_dir = "bench-wal-tmp";
  WalWriter wal;
  if (wal_on) {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    std::string error;
    int saved_errno = 0;
    if (!wal.Create(wal_dir + "/" + WalFileName(0), kDims, 0, &error,
                    &saved_errno)) {
      std::fprintf(stderr, "error: bench WAL: %s\n", error.c_str());
      std::exit(1);
    }
    // Overlapped group commit, as psky_stream's default --wal-sync-mode:
    // the fdatasync runs on a background thread instead of landing its
    // full latency on whichever step crosses the cadence boundary (the
    // p99 outlier the sync-mode row used to show).
    wal.SetAsyncSync(true);
  }

  WorkloadResult result;
  result.name = name;
  std::vector<UncertainElement> batch;
  batch.reserve(kBatch);
  std::vector<double> step_us;
  step_us.reserve(scale.n / kBatch + 1);

  Timer total;
  size_t fed = 0;
  bool steady = false;
  while (fed < scale.n) {
    const size_t take = std::min(kBatch, scale.n - fed);
    batch.clear();
    for (size_t i = 0; i < take; ++i) batch.push_back(gen.Next());
    // Percentiles only sample steady state: the fill phase has no
    // expiries and would skew them optimistically.
    if (!steady && fed >= scale.w) steady = true;
    Timer t;
    if (wal_on) {
      std::string error;
      int saved_errno = 0;
      WalRecord r;
      for (size_t i = 0; i < take; ++i) {
        r.element = batch[i];
        r.step_after = static_cast<uint64_t>(fed + i) + 1;
        r.next_seq_after = r.element.seq + 1;
        if (!wal.Append(r, &error, &saved_errno) ||
            (wal.pending() >= kWalSyncEvery &&
             !wal.Sync(&error, &saved_errno))) {
          std::fprintf(stderr, "error: bench WAL: %s\n", error.c_str());
          std::exit(1);
        }
      }
    }
    proc.StepBatch(batch);
    if (steady) {
      step_us.push_back(t.ElapsedMicros() / static_cast<double>(take));
    }
    fed += take;
    if (op.candidate_count() > result.max_candidates) {
      result.max_candidates = op.candidate_count();
    }
    if (op.skyline_count() > result.max_skyline) {
      result.max_skyline = op.skyline_count();
    }
  }
  if (wal_on) wal.Close();  // final group commit counts; deletion doesn't
  result.total_seconds = total.ElapsedSeconds();
  if (wal_on) std::filesystem::remove_all(wal_dir);
  result.elements_per_second =
      static_cast<double>(scale.n) / result.total_seconds;
  result.p50_step_us = Percentile(&step_us, 0.50);
  result.p99_step_us = Percentile(&step_us, 0.99);
  return result;
}

// Same independent workload with the raw window living in the mmap'd
// segment store (psky_stream --window-store disk): steady-state rotation
// is a fused PushRotate against the head/tail segments with the default
// resident budget, so the row measures the out-of-core paging tax the
// production disk mode pays. The inde vs inde_disk throughput gap is
// reported as disk_overhead and gated by tools/bench_report.py.
WorkloadResult RunDiskWorkload(const char* name, SpatialDistribution spatial,
                               const Scale& scale) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = spatial;
  cfg.seed = 42;
  StreamGenerator gen(cfg);

  SskyOperator op(kDims, kQ);

  const std::string store_dir = "bench-segstore-tmp";
  std::filesystem::remove_all(store_dir);
  std::filesystem::create_directories(store_dir);
  WorkloadResult result;
  result.name = name;
  {
    SegmentStore::Options sopts;
    sopts.dir = store_dir;
    sopts.dims = kDims;
    StoredCountWindow window(scale.w, sopts);
    std::string error;
    if (!window.Init(&error)) {
      std::fprintf(stderr, "error: bench segment store: %s\n", error.c_str());
      std::exit(1);
    }

    std::vector<UncertainElement> batch;
    batch.reserve(kBatch);
    std::vector<double> step_us;
    step_us.reserve(scale.n / kBatch + 1);

    Timer total;
    size_t fed = 0;
    bool steady = false;
    while (fed < scale.n) {
      const size_t take = std::min(kBatch, scale.n - fed);
      batch.clear();
      for (size_t i = 0; i < take; ++i) batch.push_back(gen.Next());
      if (!steady && fed >= scale.w) steady = true;
      Timer t;
      for (const auto& e : batch) {
        if (window.full()) {
          op.Expire(window.PushRotate(e));
        } else {
          window.Push(e);
        }
        op.Insert(e);
      }
      if (steady) {
        step_us.push_back(t.ElapsedMicros() / static_cast<double>(take));
      }
      fed += take;
      if (op.candidate_count() > result.max_candidates) {
        result.max_candidates = op.candidate_count();
      }
      if (op.skyline_count() > result.max_skyline) {
        result.max_skyline = op.skyline_count();
      }
    }
    result.total_seconds = total.ElapsedSeconds();
    result.elements_per_second =
        static_cast<double>(scale.n) / result.total_seconds;
    result.p50_step_us = Percentile(&step_us, 0.50);
    result.p99_step_us = Percentile(&step_us, 0.99);
  }
  // The window's destructor (scope above) unlinked its segment files.
  std::filesystem::remove_all(store_dir);
  return result;
}

// Shard rows run on a capped stream (recorded as shard_n / shard_window
// in the JSON): per-shard candidate sets are supersets of the
// sequential one — local-only dominators keep P_new near the shards-th
// root of the global value, so shards retain roughly S_{N,q^shards} —
// and on anti-correlated data at the full 1M window the inflated
// per-shard trees make the rows take hours on small hosts (see
// docs/algorithm.md §7). The cap keeps every shard count on the same
// stream, so the s1-vs-s8 comparison behind shard_scaling_efficiency
// stays apples-to-apples.
constexpr size_t kShardRowMaxN = 400'000;
constexpr size_t kShardRowMaxW = 100'000;

// Same Fig. 9 configuration driven through the sharded ingestion engine
// (count window, grid routing). Timed region covers routing every element
// plus the final drain barrier and cross-shard merge, so
// elements_per_second is end-to-end; step latency samples measure the
// router-side enqueue path (the shard workers run concurrently), again
// steady-state only. max_candidates / max_skyline come from the single
// final merge — sampling them per batch would serialize the pipeline on
// a barrier every kBatch elements.
WorkloadResult RunShardedWorkload(const char* name,
                                  SpatialDistribution spatial, int shards,
                                  size_t n, size_t w) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = spatial;
  cfg.seed = 42;
  StreamGenerator gen(cfg);

  ShardEngine::Options opts;
  opts.dims = kDims;
  opts.q = kQ;
  opts.shards = shards;
  opts.strategy = ShardStrategy::kGrid;
  opts.window_capacity = w;
  ShardEngine engine(opts);

  WorkloadResult result;
  result.name = name;
  std::vector<UncertainElement> batch;
  batch.reserve(kBatch);
  std::vector<double> step_us;
  step_us.reserve(n / kBatch + 1);

  Timer total;
  size_t fed = 0;
  bool steady = false;
  while (fed < n) {
    const size_t take = std::min(kBatch, n - fed);
    batch.clear();
    for (size_t i = 0; i < take; ++i) batch.push_back(gen.Next());
    if (!steady && fed >= w) steady = true;
    Timer t;
    for (const auto& e : batch) engine.Route(e);
    if (steady) {
      step_us.push_back(t.ElapsedMicros() / static_cast<double>(take));
    }
    fed += take;
  }
  size_t candidates = 0;
  const std::vector<SkylineMember> merged = engine.GlobalSkyline(&candidates);
  result.total_seconds = total.ElapsedSeconds();
  result.max_candidates = candidates;
  result.max_skyline = merged.size();
  result.elements_per_second =
      static_cast<double>(n) / result.total_seconds;
  result.p50_step_us = Percentile(&step_us, 0.50);
  result.p99_step_us = Percentile(&step_us, 0.99);
  return result;
}

void AppendWorkloadJson(std::string* out, const WorkloadResult& r,
                        bool last) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    \"%s\": {\n"
                "      \"elements_per_second\": %.1f,\n"
                "      \"total_seconds\": %.3f,\n"
                "      \"p50_step_us\": %.3f,\n"
                "      \"p99_step_us\": %.3f,\n"
                "      \"max_candidates\": %zu,\n"
                "      \"max_skyline\": %zu\n"
                "    }%s\n",
                r.name.c_str(), r.elements_per_second, r.total_seconds,
                r.p50_step_us, r.p99_step_us, r.max_candidates,
                r.max_skyline, last ? "" : ",");
  *out += buf;
}

}  // namespace
}  // namespace psky::bench

int main(int argc, char** argv) {
  using namespace psky::bench;
  const std::string path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  const Scale scale = GetScale();
  PrintHeader("hot-path throughput (SSKY, d=3, q=0.3, batched)", scale);

  // "inde_wal" repeats the independent workload with the write-ahead log
  // stamping every element (group commit as in psky_stream --wal); the
  // inde vs inde_wal throughput gap is reported as wal_overhead and
  // gated by tools/bench_report.py at full scale.
  const struct {
    const char* name;
    psky::SpatialDistribution spatial;
    bool wal_on;
  } kWorkloads[] = {
      {"anti", psky::SpatialDistribution::kAntiCorrelated, false},
      {"inde", psky::SpatialDistribution::kIndependent, false},
      {"corr", psky::SpatialDistribution::kCorrelated, false},
      {"inde_wal", psky::SpatialDistribution::kIndependent, true},
  };

  // Shard-scaling rows: the same anti/inde streams through the sharded
  // ingestion engine at 1/2/4/8 shards. The sN rows measure end-to-end
  // sharded throughput (routing + workers + final merge); the s1 row is
  // the scaling baseline (it carries the engine's queue/merge overhead,
  // unlike the plain sequential rows above). Scaling efficiency above
  // ~1/shards requires that many spare cores — single-core hosts will
  // report fractions near 1/N by construction.
  const struct {
    const char* name;
    psky::SpatialDistribution spatial;
    int shards;
  } kShardRows[] = {
      {"anti_s1", psky::SpatialDistribution::kAntiCorrelated, 1},
      {"anti_s2", psky::SpatialDistribution::kAntiCorrelated, 2},
      {"anti_s4", psky::SpatialDistribution::kAntiCorrelated, 4},
      {"anti_s8", psky::SpatialDistribution::kAntiCorrelated, 8},
      {"inde_s1", psky::SpatialDistribution::kIndependent, 1},
      {"inde_s2", psky::SpatialDistribution::kIndependent, 2},
      {"inde_s4", psky::SpatialDistribution::kIndependent, 4},
      {"inde_s8", psky::SpatialDistribution::kIndependent, 8},
  };

  std::vector<WorkloadResult> results;
  for (const auto& w : kWorkloads) {
    WorkloadResult r = RunWorkload(w.name, w.spatial, scale, w.wal_on);
    std::printf(
        "%-8s %10.0f elem/s  total %7.3fs  p50 %7.3fus  p99 %7.3fus  "
        "|S|max=%zu |SKY|max=%zu\n",
        r.name.c_str(), r.elements_per_second, r.total_seconds,
        r.p50_step_us, r.p99_step_us, r.max_candidates, r.max_skyline);
    results.push_back(std::move(r));
  }
  {
    WorkloadResult r = RunDiskWorkload(
        "inde_disk", psky::SpatialDistribution::kIndependent, scale);
    std::printf(
        "%-8s %10.0f elem/s  total %7.3fs  p50 %7.3fus  p99 %7.3fus  "
        "|S|max=%zu |SKY|max=%zu\n",
        r.name.c_str(), r.elements_per_second, r.total_seconds,
        r.p50_step_us, r.p99_step_us, r.max_candidates, r.max_skyline);
    results.push_back(std::move(r));
  }
  const size_t shard_n = std::min(scale.n, kShardRowMaxN);
  const size_t shard_w = std::min(scale.w, kShardRowMaxW);
  if (shard_n != scale.n || shard_w != scale.w) {
    std::printf("shard rows capped at n=%zu window=%zu (see source)\n",
                shard_n, shard_w);
  }
  for (const auto& w : kShardRows) {
    WorkloadResult r =
        RunShardedWorkload(w.name, w.spatial, w.shards, shard_n, shard_w);
    std::printf(
        "%-8s %10.0f elem/s  total %7.3fs  p50 %7.3fus  p99 %7.3fus  "
        "|S|=%zu |SKY|=%zu\n",
        r.name.c_str(), r.elements_per_second, r.total_seconds,
        r.p50_step_us, r.p99_step_us, r.max_candidates, r.max_skyline);
    results.push_back(std::move(r));
  }

  const auto overhead_vs_inde = [&results](const char* name) {
    double overhead = 0.0;
    for (const auto& r : results) {
      if (r.name == name) {
        for (const auto& b : results) {
          if (b.name == "inde" && b.elements_per_second > 0.0) {
            overhead = 1.0 - r.elements_per_second / b.elements_per_second;
          }
        }
      }
    }
    return overhead;
  };
  const double wal_overhead = overhead_vs_inde("inde_wal");
  const double disk_overhead = overhead_vs_inde("inde_disk");
  std::printf("wal overhead vs inde: %+.1f%%\n", wal_overhead * 100.0);
  std::printf("disk overhead vs inde: %+.1f%%\n", disk_overhead * 100.0);

  // Parallel-scaling efficiency at the widest shard count:
  // eps(s8) / (8 * eps(s1)). 1.0 is perfect linear scaling; a 1-core
  // host caps it near 1/8 regardless of the engine.
  const auto eps_of = [&results](const char* name) {
    for (const auto& r : results) {
      if (r.name == name) return r.elements_per_second;
    }
    return 0.0;
  };
  const auto efficiency = [&eps_of](const char* s1, const char* s8) {
    const double base = eps_of(s1);
    return base > 0.0 ? eps_of(s8) / (8.0 * base) : 0.0;
  };
  const double eff_anti = efficiency("anti_s1", "anti_s8");
  const double eff_inde = efficiency("inde_s1", "inde_s8");
  std::printf("shard scaling efficiency (s8 vs 8*s1): anti %.3f  inde %.3f\n",
              eff_anti, eff_inde);

  std::string json;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"schema\": \"psky-bench-hotpath-v1\",\n"
                "  \"scale\": \"%s\",\n"
                "  \"n\": %zu,\n"
                "  \"window\": %zu,\n"
                "  \"dims\": %d,\n"
                "  \"q\": %.2f,\n"
                "  \"batch_size\": %zu,\n"
                "  \"kernel_variant\": \"%s\",\n"
                "  \"wal_overhead\": %.4f,\n"
                "  \"disk_overhead\": %.4f,\n"
                "  \"shard_n\": %zu,\n"
                "  \"shard_window\": %zu,\n"
                "  \"shard_scaling_efficiency\": {\n"
                "    \"anti\": %.4f,\n"
                "    \"inde\": %.4f\n"
                "  },\n"
                "  \"workloads\": {\n",
                scale.name, scale.n, scale.w, kDims, kQ, kBatch,
                psky::DominanceKernelVariant(), wal_overhead, disk_overhead,
                shard_n, shard_w, eff_anti, eff_inde);
  json += buf;
  for (size_t i = 0; i < results.size(); ++i) {
    AppendWorkloadJson(&json, results[i], i + 1 == results.size());
  }
  json += "  }\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (kernel=%s)\n", path.c_str(),
              psky::DominanceKernelVariant());
  return 0;
}
