// Hot-path throughput harness with a machine-readable result file.
//
// Drives the SSKY operator over the paper's Fig. 9 configuration (d = 3,
// q = 0.3, count window) for each spatial distribution (anti / inde /
// corr) using the batched stream path, and writes BENCH_hotpath.json:
// sustained elements/second plus p50/p99 per-element step latency per
// workload, stamped with the dominance-kernel variant the CPU dispatched
// to. tools/bench_report.py validates the file and diffs two of them with
// a regression gate; the repository tracks a full-scale baseline at the
// root.
//
//   bench_hotpath [output.json]     (default: BENCH_hotpath.json)
//
// Scale comes from PSKY_BENCH_SCALE (tiny|quick|full) as for every other
// bench binary. Latency percentiles are computed from per-element times
// of kBatch-element StepBatch calls measured from the moment the window
// is full (steady state).

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "base/timer.h"
#include "bench/bench_common.h"
#include "core/ssky_operator.h"
#include "geom/dominance_kernel.h"
#include "store/wal.h"
#include "stream/generator.h"

namespace psky::bench {
namespace {

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kBatch = 64;

struct WorkloadResult {
  std::string name;
  double elements_per_second = 0.0;
  double total_seconds = 0.0;
  double p50_step_us = 0.0;
  double p99_step_us = 0.0;
  size_t max_candidates = 0;
  size_t max_skyline = 0;
};

double Percentile(std::vector<double>* samples, double p) {
  if (samples->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(samples->size() - 1) + 0.5);
  std::nth_element(samples->begin(),
                   samples->begin() + static_cast<ptrdiff_t>(idx),
                   samples->end());
  return (*samples)[idx];
}

// Group-commit cadence matching psky_stream's --wal-sync-every default,
// so the wal-on row reflects the durability cost a production run pays.
constexpr uint64_t kWalSyncEvery = 4096;

WorkloadResult RunWorkload(const char* name, SpatialDistribution spatial,
                           const Scale& scale, bool wal_on) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = spatial;
  cfg.seed = 42;
  StreamGenerator gen(cfg);

  SskyOperator op(kDims, kQ);
  StreamProcessor proc(&op, scale.w);

  const std::string wal_dir = "bench-wal-tmp";
  WalWriter wal;
  if (wal_on) {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);
    std::string error;
    int saved_errno = 0;
    if (!wal.Create(wal_dir + "/" + WalFileName(0), kDims, 0, &error,
                    &saved_errno)) {
      std::fprintf(stderr, "error: bench WAL: %s\n", error.c_str());
      std::exit(1);
    }
  }

  WorkloadResult result;
  result.name = name;
  std::vector<UncertainElement> batch;
  batch.reserve(kBatch);
  std::vector<double> step_us;
  step_us.reserve(scale.n / kBatch + 1);

  Timer total;
  size_t fed = 0;
  bool steady = false;
  while (fed < scale.n) {
    const size_t take = std::min(kBatch, scale.n - fed);
    batch.clear();
    for (size_t i = 0; i < take; ++i) batch.push_back(gen.Next());
    // Percentiles only sample steady state: the fill phase has no
    // expiries and would skew them optimistically.
    if (!steady && fed >= scale.w) steady = true;
    Timer t;
    if (wal_on) {
      std::string error;
      int saved_errno = 0;
      WalRecord r;
      for (size_t i = 0; i < take; ++i) {
        r.element = batch[i];
        r.step_after = static_cast<uint64_t>(fed + i) + 1;
        r.next_seq_after = r.element.seq + 1;
        if (!wal.Append(r, &error, &saved_errno) ||
            (wal.pending() >= kWalSyncEvery &&
             !wal.Sync(&error, &saved_errno))) {
          std::fprintf(stderr, "error: bench WAL: %s\n", error.c_str());
          std::exit(1);
        }
      }
    }
    proc.StepBatch(batch);
    if (steady) {
      step_us.push_back(t.ElapsedMicros() / static_cast<double>(take));
    }
    fed += take;
    if (op.candidate_count() > result.max_candidates) {
      result.max_candidates = op.candidate_count();
    }
    if (op.skyline_count() > result.max_skyline) {
      result.max_skyline = op.skyline_count();
    }
  }
  if (wal_on) wal.Close();  // final group commit counts; deletion doesn't
  result.total_seconds = total.ElapsedSeconds();
  if (wal_on) std::filesystem::remove_all(wal_dir);
  result.elements_per_second =
      static_cast<double>(scale.n) / result.total_seconds;
  result.p50_step_us = Percentile(&step_us, 0.50);
  result.p99_step_us = Percentile(&step_us, 0.99);
  return result;
}

void AppendWorkloadJson(std::string* out, const WorkloadResult& r,
                        bool last) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "    \"%s\": {\n"
                "      \"elements_per_second\": %.1f,\n"
                "      \"total_seconds\": %.3f,\n"
                "      \"p50_step_us\": %.3f,\n"
                "      \"p99_step_us\": %.3f,\n"
                "      \"max_candidates\": %zu,\n"
                "      \"max_skyline\": %zu\n"
                "    }%s\n",
                r.name.c_str(), r.elements_per_second, r.total_seconds,
                r.p50_step_us, r.p99_step_us, r.max_candidates,
                r.max_skyline, last ? "" : ",");
  *out += buf;
}

}  // namespace
}  // namespace psky::bench

int main(int argc, char** argv) {
  using namespace psky::bench;
  const std::string path = argc > 1 ? argv[1] : "BENCH_hotpath.json";
  const Scale scale = GetScale();
  PrintHeader("hot-path throughput (SSKY, d=3, q=0.3, batched)", scale);

  // "inde_wal" repeats the independent workload with the write-ahead log
  // stamping every element (group commit as in psky_stream --wal); the
  // inde vs inde_wal throughput gap is reported as wal_overhead and
  // gated by tools/bench_report.py at full scale.
  const struct {
    const char* name;
    psky::SpatialDistribution spatial;
    bool wal_on;
  } kWorkloads[] = {
      {"anti", psky::SpatialDistribution::kAntiCorrelated, false},
      {"inde", psky::SpatialDistribution::kIndependent, false},
      {"corr", psky::SpatialDistribution::kCorrelated, false},
      {"inde_wal", psky::SpatialDistribution::kIndependent, true},
  };

  std::vector<WorkloadResult> results;
  for (const auto& w : kWorkloads) {
    WorkloadResult r = RunWorkload(w.name, w.spatial, scale, w.wal_on);
    std::printf(
        "%-8s %10.0f elem/s  total %7.3fs  p50 %7.3fus  p99 %7.3fus  "
        "|S|max=%zu |SKY|max=%zu\n",
        r.name.c_str(), r.elements_per_second, r.total_seconds,
        r.p50_step_us, r.p99_step_us, r.max_candidates, r.max_skyline);
    results.push_back(std::move(r));
  }

  double wal_overhead = 0.0;
  for (const auto& r : results) {
    if (r.name == "inde_wal") {
      for (const auto& b : results) {
        if (b.name == "inde" && b.elements_per_second > 0.0) {
          wal_overhead = 1.0 - r.elements_per_second / b.elements_per_second;
        }
      }
    }
  }
  std::printf("wal overhead vs inde: %+.1f%%\n", wal_overhead * 100.0);

  std::string json;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"schema\": \"psky-bench-hotpath-v1\",\n"
                "  \"scale\": \"%s\",\n"
                "  \"n\": %zu,\n"
                "  \"window\": %zu,\n"
                "  \"dims\": %d,\n"
                "  \"q\": %.2f,\n"
                "  \"batch_size\": %zu,\n"
                "  \"kernel_variant\": \"%s\",\n"
                "  \"wal_overhead\": %.4f,\n"
                "  \"workloads\": {\n",
                scale.name, scale.n, scale.w, kDims, kQ, kBatch,
                psky::DominanceKernelVariant(), wal_overhead);
  json += buf;
  for (size_t i = 0; i < results.size(); ++i) {
    AppendWorkloadJson(&json, results[i], i + 1 == results.size());
  }
  json += "  }\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s (kernel=%s)\n", path.c_str(),
              psky::DominanceKernelVariant());
  return 0;
}
