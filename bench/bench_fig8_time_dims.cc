// Figure 8: SSKY time efficiency vs dimensionality / dataset — average
// per-element delay measured over 1K-element batches, and sustainable
// throughput.
//
// Paper shape to reproduce: very fast at 2-d (the paper reports > 38K
// elements/second even on stock and anti-correlated data, on 2008
// hardware), slowing sharply with dimensionality (~728 elem/s at 5-d
// anti). Absolute numbers differ with hardware; the ordering and the
// steep growth with d are the reproduced signal.

#include <vector>

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 8: per-element delay vs dimensionality", scale);

  std::printf("%-14s %3s %14s %14s\n", "dataset", "d", "delay (us/elem)",
              "elements/sec");
  const double q = 0.3;
  for (Dataset ds : {Dataset::kIndeUniform, Dataset::kAntiUniform,
                     Dataset::kAntiNormal, Dataset::kStockUniform}) {
    const std::vector<int> dims_list =
        ds == Dataset::kStockUniform ? std::vector<int>{2}
                                     : std::vector<int>{2, 3, 4, 5};
    for (int d : dims_list) {
      auto source = MakeSource(ds, d);
      SskyOperator op(d, q);
      const RunResult r =
          DriveOperator(&op, source.get(), scale.n, scale.w);
      std::printf("%-14s %3d %14.3f %14.0f\n", DatasetName(ds), d,
                  r.delay_us, r.elements_per_second);
    }
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
