// Ablation study of the sky-tree's two key devices (DESIGN.md §3):
//   * lazy probability multipliers (the paper's P_new^global/P_old^global)
//   * min/max aggregate pruning (wholesale keep / evict / re-band)
// plus a node-fanout sweep. All configurations are functionally identical
// (asserted by the test suite); this harness measures their cost.

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void RunOne(const char* label, SkyTree::Options opt, size_t n,
            size_t window) {
  auto source = MakeSource(Dataset::kAntiUniform, 3);
  SskyOperator op(3, 0.3, opt);
  const RunResult r = DriveOperator(&op, source.get(), n, window);
  const OperatorStats& s = op.stats();
  std::printf("%-28s %14.3f %14.0f %14llu %12llu\n", label, r.delay_us,
              r.elements_per_second,
              static_cast<unsigned long long>(s.elements_touched),
              static_cast<unsigned long long>(s.nodes_visited));
}

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Ablation: lazy multipliers / min-max pruning / fanout",
              scale);
  const size_t window = scale.w / 2;
  const size_t n = std::min(scale.n, 3 * window);

  std::printf("%-28s %14s %14s %14s %12s\n", "configuration",
              "delay (us/elem)", "elements/sec", "elems touched",
              "nodes visited");

  SkyTree::Options base;
  RunOne("full (lazy + pruning)", base, n, window);

  SkyTree::Options no_lazy = base;
  no_lazy.use_lazy = false;
  RunOne("eager multipliers", no_lazy, n, window);

  SkyTree::Options no_prune = base;
  no_prune.use_minmax_pruning = false;
  RunOne("no min/max pruning", no_prune, n, window);

  SkyTree::Options neither = base;
  neither.use_lazy = false;
  neither.use_minmax_pruning = false;
  RunOne("neither", neither, n, window);

  std::printf("\nfanout sweep (lazy + pruning):\n");
  for (int max_entries : {6, 12, 24, 48}) {
    SkyTree::Options opt;
    opt.max_entries = max_entries;
    opt.min_entries = max_entries / 3;
    char label[64];
    std::snprintf(label, sizeof(label), "max_entries = %d", max_entries);
    RunOne(label, opt, n, window);
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
