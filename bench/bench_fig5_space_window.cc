// Figure 5: maximum candidate-set and skyline sizes vs window size N, for
// uniform and normal occurrence probabilities (anti-correlated 3-d,
// q = 0.3, P_mu = 0.5).
//
// Paper shape to reproduce: sizes grow with N, but slowly (the
// poly-logarithmic candidate bound), which is why SSKY's per-element cost
// is insensitive to N in Figure 9.

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 5: space usage vs window size", scale);

  const double q = 0.3;
  const int d = 3;
  for (Dataset ds : {Dataset::kAntiUniform, Dataset::kAntiNormal}) {
    std::printf("[%s, %dd]\n", DatasetName(ds), d);
    std::printf("%10s %12s %12s\n", "N", "max|S_{N,q}|", "max|SKY|");
    for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      const size_t window = static_cast<size_t>(
          frac * static_cast<double>(scale.w));
      // Stream twice the window so the window slides over a full period.
      const size_t n = std::min(scale.n, 2 * window + window);
      auto source = MakeSource(ds, d);
      SskyOperator op(d, q);
      const RunResult r = DriveOperator(&op, source.get(), n, window);
      std::printf("%10zu %12zu %12zu\n", window, r.max_candidates,
                  r.max_skyline);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
