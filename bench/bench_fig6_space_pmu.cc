// Figure 6: space usage vs mean appearance probability P_mu (normal
// probability model, S_d = 0.3), anti-correlated and independent 3-d.
//
// Paper shape to reproduce: the candidate set SHRINKS as P_mu grows
// (strong dominators evict more), while the skyline GROWS with P_mu
// (small occurrence probabilities prevent elements from reaching q) —
// the interesting crossing of Figure 6(a) vs 6(b).

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 6: space usage vs appearance probability P_mu", scale);

  const double q = 0.3;
  const int d = 3;
  for (Dataset ds : {Dataset::kAntiNormal, Dataset::kIndeUniform}) {
    // The independent dataset also runs with normal probabilities here,
    // matching the figure's multi-dataset panels.
    std::printf("[%s spatial, normal probabilities, %dd]\n",
                ds == Dataset::kAntiNormal ? "anti" : "inde", d);
    std::printf("%6s %12s %12s\n", "P_mu", "max|S_{N,q}|", "max|SKY|");
    for (double pmu : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      StreamConfig cfg;
      cfg.dims = d;
      cfg.spatial = ds == Dataset::kAntiNormal
                        ? SpatialDistribution::kAntiCorrelated
                        : SpatialDistribution::kIndependent;
      cfg.prob.distribution = ProbDistribution::kNormal;
      cfg.prob.mean = pmu;
      cfg.seed = 42;
      SyntheticSource source(cfg);
      SskyOperator op(d, q);
      const RunResult r = DriveOperator(&op, &source, scale.n, scale.w);
      std::printf("%6.1f %12zu %12zu\n", pmu, r.max_candidates,
                  r.max_skyline);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
