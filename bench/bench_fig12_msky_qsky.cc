// Figure 12: multi-threshold maintenance and ad-hoc queries.
//   (a) MSKY: per-element maintenance cost vs the number of pre-given
//       thresholds k (k values evenly spread over [0.3, 1], as in the
//       paper) — cost INCREASES with k;
//   (b) QSKY: average cost of an ad-hoc query "skyline with probability
//       >= q'", 1000 random q' in [q_k, 1] — cost DECREASES with k since
//       finer bands let more of the answer be taken wholesale.

#include <vector>

#include "base/random.h"
#include "base/timer.h"
#include "bench/bench_common.h"
#include "core/msky_operator.h"

namespace psky::bench {
namespace {

std::vector<double> EvenThresholds(int k, double q_min) {
  // k thresholds evenly spread over [q_min, 1], strictly decreasing.
  std::vector<double> qs;
  for (int i = 1; i <= k; ++i) {
    qs.push_back(q_min + (1.0 - q_min) * static_cast<double>(k - i) /
                             static_cast<double>(k));
  }
  return qs;
}

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 12: MSKY maintenance and QSKY ad-hoc queries", scale);

  const int d = 3;
  const double q_min = 0.3;
  // MSKY is heavier per element than SSKY; cap the driven stream length
  // so the sweep stays interactive at every scale.
  const size_t window = scale.w / 2;
  const size_t n = std::min(scale.n, 3 * window);

  std::printf("%4s %22s %22s\n", "k", "MSKY delay (us/elem)",
              "QSKY query cost (us)");
  for (int k : {1, 2, 4, 8, 16}) {
    auto source = MakeSource(Dataset::kAntiUniform, d);
    MskyOperator op(d, EvenThresholds(k, q_min));
    CountWindow win(window);

    LatencyRecorder recorder(1000);
    Timer batch;
    size_t in_batch = 0;
    for (size_t i = 0; i < n; ++i) {
      const UncertainElement e = source->Next();
      if (auto expired = win.Push(e)) op.Expire(*expired);
      op.Insert(e);
      // Keep every continuous result set warm, as a k-subscription
      // deployment would: query the size of each band's skyline.
      for (int j = 1; j <= k; ++j) {
        volatile size_t sink = op.skyline_count(j);
        (void)sink;
      }
      if (i >= window) {
        if (++in_batch == recorder.batch_size()) {
          recorder.AddBatchSeconds(batch.ElapsedSeconds());
          batch.Reset();
          in_batch = 0;
        }
      } else if (i == window - 1) {
        batch.Reset();
      }
    }

    // (b) 1000 ad-hoc queries across [q_min, 1].
    Rng qrng(99);
    Timer adhoc;
    size_t total_hits = 0;
    const int kQueries = 1000;
    for (int t = 0; t < kQueries; ++t) {
      const double qp = q_min + (1.0 - q_min) * qrng.NextDouble();
      total_hits += op.AdHocQuery(qp).size();
    }
    const double adhoc_us = adhoc.ElapsedMicros() / kQueries;

    std::printf("%4d %22.3f %22.3f   (avg result size %.1f)\n", k,
                recorder.MeanDelayPerElementMicros(), adhoc_us,
                static_cast<double>(total_hits) / kQueries);
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
