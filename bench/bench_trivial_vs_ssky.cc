// Section V-B inline claim: "We first compare SSKY with the trivial
// algorithm ... We find it is about 20 times slower than SSKY against
// anti (3d)."
//
// This harness reproduces that comparison: the naive flat-list operator
// (amortized O(|S_{N,q}|) per element) vs the aggregate-tree SSKY, on
// anti-correlated 3-d data. The naive operator is quadratic-ish, so the
// driven stream is capped; both operators see identical input.

#include <algorithm>

#include "bench/bench_common.h"
#include "core/naive_operator.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Section V-B: trivial algorithm vs SSKY (anti 3d)", scale);

  const int d = 3;
  const double q = 0.3;
  // Cap the stream so the trivial algorithm finishes promptly.
  const size_t window = std::min<size_t>(scale.w, 400'000);
  const size_t n = std::min(scale.n, 2 * window);

  auto run = [&](WindowSkylineOperator* op) {
    auto source = MakeSource(Dataset::kAntiUniform, d);
    return DriveOperator(op, source.get(), n, window);
  };

  NaiveSkylineOperator naive(d, q);
  const RunResult naive_r = run(&naive);
  SskyOperator ssky(d, q);
  const RunResult ssky_r = run(&ssky);

  std::printf("%-10s %14s %14s %16s\n", "operator", "delay (us/elem)",
              "elements/sec", "elems touched");
  std::printf("%-10s %14.3f %14.0f %16llu\n", "trivial", naive_r.delay_us,
              naive_r.elements_per_second,
              static_cast<unsigned long long>(naive.stats().elements_touched));
  std::printf("%-10s %14.3f %14.0f %16llu\n", "SSKY", ssky_r.delay_us,
              ssky_r.elements_per_second,
              static_cast<unsigned long long>(ssky.stats().elements_touched));
  std::printf("\nSSKY speedup: %.1fx (paper reports ~20x at full scale)\n",
              naive_r.delay_us / ssky_r.delay_us);
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
