// Figure 9: SSKY per-element delay vs window size N (anti-correlated 3-d).
//
// Paper shape to reproduce: performance is INSENSITIVE to N, because the
// candidate set grows only poly-logarithmically with the window
// (Figure 5 / Theorem 8).

#include <algorithm>

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 9: per-element delay vs window size", scale);

  const double q = 0.3;
  const int d = 3;
  std::printf("%10s %14s %14s\n", "N", "delay (us/elem)", "elements/sec");
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const size_t window =
        static_cast<size_t>(frac * static_cast<double>(scale.w));
    const size_t n = std::min(scale.n, 3 * window);
    auto source = MakeSource(Dataset::kAntiUniform, d);
    SskyOperator op(d, q);
    const RunResult r = DriveOperator(&op, source.get(), n, window);
    std::printf("%10zu %14.3f %14.0f\n", window, r.delay_us,
                r.elements_per_second);
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
