// Figure 11: SSKY per-element delay vs probability threshold q
// (anti-correlated 3-d, uniform probabilities).
//
// Paper shape to reproduce: processing gets faster as q increases,
// because both the candidate and skyline sets shrink (Figure 7).

#include "bench/bench_common.h"
#include "core/ssky_operator.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Figure 11: per-element delay vs threshold q", scale);

  const int d = 3;
  std::printf("%6s %14s %14s\n", "q", "delay (us/elem)", "elements/sec");
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    auto source = MakeSource(Dataset::kAntiUniform, d);
    SskyOperator op(d, q);
    const RunResult r = DriveOperator(&op, source.get(), scale.n, scale.w);
    std::printf("%6.1f %14.3f %14.0f\n", q, r.delay_us,
                r.elements_per_second);
  }
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
