// Section III-B: empirical weighted sizes of SKY_{N,q} and S_{N,q}
// against the analytic Corollary 3 / Theorem 8 bounds, and the
// poly-logarithmic growth of both with N.
//
// The bounded quantity follows Theorem 6: each q-skyline element counts
// with weight P_sky and each candidate with weight P_new (see
// core/theory.h). Raw counts are printed alongside for context.

#include <algorithm>

#include "bench/bench_common.h"
#include "core/ssky_operator.h"
#include "core/theory.h"

namespace psky::bench {
namespace {

void Run() {
  const Scale scale = GetScale();
  PrintHeader("Theory: measured sizes vs Section III-B bounds", scale);

  const double p = 0.5;  // constant occurrence probability (the analysis)
  const double q = 0.3;

  std::printf(
      "%3s %9s %14s %12s %14s %12s %10s %10s\n", "d", "N", "sky(weighted)",
      "sky bound", "cand(weighted)", "cand bound", "|SKY|", "|S|");
  for (int d : {2, 3, 4}) {
    for (double frac : {0.25, 1.0}) {
      const size_t window = std::min<size_t>(
          static_cast<size_t>(frac * static_cast<double>(scale.w)), 200'000);
      const size_t n = 4 * window;  // long steady state: stable estimates

      // The bounds are on expectations: average the weighted sizes over
      // periodic snapshots of several independent streams. (At d = 2 the
      // skyline bound holds with equality, so the estimate fluctuates
      // around it rather than sitting below it.)
      double sky_weighted = 0.0, cand_weighted = 0.0;
      int samples = 0;
      size_t last_sky = 0, last_cand = 0;
      for (uint64_t seed = 7; seed < 10; ++seed) {
        StreamConfig cfg;
        cfg.dims = d;
        cfg.spatial = SpatialDistribution::kIndependent;
        cfg.seed = seed;
        StreamGenerator gen(cfg);
        SskyOperator op(d, q);
        StreamProcessor proc(&op, window);
        const size_t sample_every = window / 8 + 1;
        for (size_t i = 0; i < n; ++i) {
          UncertainElement e = gen.Next();
          e.prob = p;
          proc.Step(e);
          if (i >= window && i % sample_every == 0) {
            for (const SkylineMember& m : op.Candidates()) {
              cand_weighted += m.pnew;
              if (m.in_skyline) sky_weighted += m.psky;
            }
            ++samples;
          }
        }
        last_sky = op.skyline_count();
        last_cand = op.candidate_count();
      }
      sky_weighted /= samples;
      cand_weighted /= samples;
      const int64_t nn = static_cast<int64_t>(window);
      std::printf("%3d %9zu %14.1f %12.1f %14.1f %12.1f %10zu %10zu\n", d,
                  window, sky_weighted, ExpectedSkylineSizeBound(d, nn, p, q),
                  cand_weighted, ExpectedCandidateSizeBound(d, nn, p, q),
                  last_sky, last_cand);
    }
  }
  std::printf(
      "\nExpected: measured weighted sizes track the bounds from below\n"
      "(they are statistical estimates of an expectation the bound caps;\n"
      "the d = 2 skyline bound is an equality, so its estimate straddles\n"
      "it), and 4x growth in N inflates sizes only poly-logarithmically.\n");
}

}  // namespace
}  // namespace psky::bench

int main() {
  psky::bench::Run();
  return 0;
}
