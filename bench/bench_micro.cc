// Micro-benchmarks (google-benchmark) of the individual building blocks:
// R-tree maintenance, certain-data skyline algorithms, steady-state
// sky-tree arrivals, and the ad-hoc / top-k query paths.

#include <benchmark/benchmark.h>

#include "base/random.h"
#include "core/msky_operator.h"
#include "geom/dominance_kernel.h"
#include "core/ssky_operator.h"
#include "core/topk_operator.h"
#include "rtree/rtree.h"
#include "skyline/bbs.h"
#include "skyline/bnl.h"
#include "skyline/sfs.h"
#include "stream/generator.h"

namespace psky {
namespace {

std::vector<Point> RandomPoints(size_t n, int dims, uint64_t seed) {
  StreamConfig cfg;
  cfg.dims = dims;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = seed;
  StreamGenerator gen(cfg);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(gen.Next().pos);
  return out;
}

void BM_RTreeInsert(benchmark::State& state) {
  const auto pts = RandomPoints(10000, 3, 1);
  for (auto _ : state) {
    RTree tree(3);
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(pts[i], i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pts.size()));
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeEraseReinsert(benchmark::State& state) {
  const auto pts = RandomPoints(10000, 3, 2);
  RTree tree(3);
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  size_t idx = 0;
  for (auto _ : state) {
    tree.Erase(pts[idx], idx);
    tree.Insert(pts[idx], idx);
    idx = (idx + 1) % pts.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeEraseReinsert);

void BM_RTreeRangeQuery(benchmark::State& state) {
  const auto pts = RandomPoints(20000, 3, 3);
  RTree tree(3);
  for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  Rng rng(4);
  for (auto _ : state) {
    Point lo(3), hi(3);
    for (int j = 0; j < 3; ++j) {
      const double c = rng.NextDouble(0.0, 0.9);
      lo[j] = c;
      hi[j] = c + 0.1;
    }
    size_t hits = 0;
    tree.RangeQuery(Mbr(lo, hi),
                    [&hits](const RTree::Item&) { ++hits; });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_RTreeRangeQuery);

// One probe against a full 128-entry SoA leaf block — the sky-tree's
// innermost loop. `which` selects the portable sweep or the runtime
// dispatcher (AVX2 where the CPU has it).
void BM_DominanceKernel(benchmark::State& state, bool dispatch) {
  constexpr int kDims = 3;
  constexpr int kStride = 129;  // max_entries + 1, as the sky-tree sizes it
  constexpr int kCount = 128;
  const auto pts = RandomPoints(kCount + 1, kDims, 11);
  std::vector<double> block(static_cast<size_t>(kStride) * kDims);
  for (int k = 0; k < kDims; ++k) {
    for (int i = 0; i < kCount; ++i) block[k * kStride + i] = pts[i][k];
  }
  const Point& probe = pts[kCount];
  uint64_t cand[kDominanceKernelMaskWords];
  uint64_t dominated[kDominanceKernelMaskWords];
  for (auto _ : state) {
    if (dispatch) {
      DominanceBlockCompare(probe.data(), kDims, block.data(), kStride,
                            kCount, cand, dominated);
    } else {
      cand[0] = cand[1] = dominated[0] = dominated[1] = 0;
      dominance_internal::BlockComparePortable(probe.data(), kDims,
                                               block.data(), kStride, 0,
                                               kCount, cand, dominated);
    }
    benchmark::DoNotOptimize(cand[0]);
    benchmark::DoNotOptimize(dominated[0]);
  }
  state.SetItemsProcessed(state.iterations() * kCount);
  state.SetLabel(dispatch ? DominanceKernelVariant() : "portable");
}
void BM_DominanceKernelPortable(benchmark::State& s) {
  BM_DominanceKernel(s, false);
}
void BM_DominanceKernelDispatch(benchmark::State& s) {
  BM_DominanceKernel(s, true);
}
BENCHMARK(BM_DominanceKernelPortable);
BENCHMARK(BM_DominanceKernelDispatch);

void BM_CertainSkyline(benchmark::State& state, int which) {
  const auto pts =
      RandomPoints(static_cast<size_t>(state.range(0)), 3, 5);
  RTree tree(3);
  if (which == 2) {
    for (size_t i = 0; i < pts.size(); ++i) tree.Insert(pts[i], i);
  }
  for (auto _ : state) {
    switch (which) {
      case 0:
        benchmark::DoNotOptimize(BnlSkyline(pts));
        break;
      case 1:
        benchmark::DoNotOptimize(SfsSkyline(pts));
        break;
      case 2:
        benchmark::DoNotOptimize(BbsSkyline(tree));
        break;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pts.size()));
}
void BM_Bnl(benchmark::State& s) { BM_CertainSkyline(s, 0); }
void BM_Sfs(benchmark::State& s) { BM_CertainSkyline(s, 1); }
void BM_Bbs(benchmark::State& s) { BM_CertainSkyline(s, 2); }
BENCHMARK(BM_Bnl)->Arg(2000)->Arg(10000);
BENCHMARK(BM_Sfs)->Arg(2000)->Arg(10000);
BENCHMARK(BM_Bbs)->Arg(2000)->Arg(10000);

void BM_SskyArriveSteadyState(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  StreamConfig cfg;
  cfg.dims = d;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 6;
  StreamGenerator gen(cfg);
  SskyOperator op(d, 0.3);
  const size_t window = 20000;
  StreamProcessor proc(&op, window);
  for (size_t i = 0; i < window; ++i) proc.Step(gen.Next());
  for (auto _ : state) {
    proc.Step(gen.Next());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["candidates"] =
      static_cast<double>(op.candidate_count());
}
BENCHMARK(BM_SskyArriveSteadyState)->Arg(2)->Arg(3)->Arg(5);

void BM_AdHocQuery(benchmark::State& state) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 7;
  StreamGenerator gen(cfg);
  MskyOperator op(3, {0.8, 0.55, 0.3});
  CountWindow win(20000);
  for (int i = 0; i < 40000; ++i) {
    const UncertainElement e = gen.Next();
    if (auto expired = win.Push(e)) op.Expire(*expired);
    op.Insert(e);
  }
  Rng rng(8);
  for (auto _ : state) {
    const double qp = 0.3 + 0.7 * rng.NextDouble();
    benchmark::DoNotOptimize(op.AdHocQuery(qp));
  }
}
BENCHMARK(BM_AdHocQuery);

void BM_AdHocCount(benchmark::State& state) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 7;
  StreamGenerator gen(cfg);
  MskyOperator op(3, {0.8, 0.55, 0.3});
  CountWindow win(20000);
  for (int i = 0; i < 40000; ++i) {
    const UncertainElement e = gen.Next();
    if (auto expired = win.Push(e)) op.Expire(*expired);
    op.Insert(e);
  }
  Rng rng(9);
  for (auto _ : state) {
    const double qp = 0.3 + 0.7 * rng.NextDouble();
    benchmark::DoNotOptimize(op.AdHocCount(qp));
  }
}
BENCHMARK(BM_AdHocCount);

void BM_TopKQuery(benchmark::State& state) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 10;
  StreamGenerator gen(cfg);
  TopKSkylineOperator op(3, 0.1, static_cast<size_t>(state.range(0)));
  CountWindow win(20000);
  for (int i = 0; i < 40000; ++i) {
    const UncertainElement e = gen.Next();
    if (auto expired = win.Push(e)) op.Expire(*expired);
    op.Insert(e);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.TopK());
  }
}
BENCHMARK(BM_TopKQuery)->Arg(1)->Arg(10)->Arg(100);

}  // namespace
}  // namespace psky

BENCHMARK_MAIN();
