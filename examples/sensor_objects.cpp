// Section VI extensions in one scenario: a network of environmental
// sensors reports (response latency, power draw) readings. Each sensor's
// state is an uncertain OBJECT - a cloud of instances from repeated
// noisy measurements (or a Monte-Carlo discretized PDF) - and stale
// sensors drop out by TIME, not by count.
//
// Shows:
//   * time-based sliding windows (TimeWindow),
//   * multi-instance objects with Pei-et-al. skyline semantics,
//   * Monte-Carlo discretization of continuous uncertainty.

#include <cstdio>
#include <deque>

#include "base/random.h"
#include "core/object_skyline.h"

int main() {
  psky::Rng rng(99);
  psky::ObjectSkylineOperator op(/*dims=*/2, /*q=*/0.4);

  // Each sensor's true operating point; readings scatter around it.
  struct Sensor {
    uint64_t id;
    double latency_ms;
    double power_mw;
    double noise;
    double reported_at;
  };
  std::deque<Sensor> live;

  const double kWindowSeconds = 10.0;
  double now = 0.0;
  uint64_t next_id = 1;

  for (int round = 0; round < 40; ++round) {
    now += 0.5 + rng.NextExponential(1.0);

    // A sensor reports: discretize its noisy state into 64 instances.
    Sensor s;
    s.id = next_id++;
    s.latency_ms = 5.0 + 45.0 * rng.NextDouble();
    s.power_mw = 20.0 + 180.0 * rng.NextDouble();
    s.noise = 0.5 + 2.5 * rng.NextDouble();
    s.reported_at = now;
    const psky::UncertainObject obj = psky::DiscretizeByMonteCarlo(
        s.id, /*m=*/64, rng, [&s](psky::Rng& r) {
          return psky::Point({s.latency_ms + s.noise * r.NextGaussian(),
                              s.power_mw + 4.0 * s.noise * r.NextGaussian()});
        });
    live.push_back(s);
    op.Insert(obj);

    // Time-based expiry: drop sensors that have not reported recently.
    while (!live.empty() && live.front().reported_at <= now - kWindowSeconds) {
      op.Expire(live.front().id);
      live.pop_front();
    }
  }

  std::printf("live sensors: %zu (reports within the last %.0f s)\n\n",
              op.object_count(), kWindowSeconds);
  std::printf("Pareto-efficient sensors (P_sky >= %.1f):\n", op.threshold());
  for (uint64_t id : op.Skyline()) {
    for (const auto& s : live) {
      if (s.id == id) {
        std::printf(
            "  sensor %2llu: ~%4.1f ms, ~%5.1f mW (noise %.1f)  P_sky=%.3f\n",
            static_cast<unsigned long long>(id), s.latency_ms, s.power_mw,
            s.noise, op.SkylineProbability(id));
      }
    }
  }
  return 0;
}
