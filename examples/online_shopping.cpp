// The paper's Section I motivating scenario (Table I): continuously
// monitor on-line laptop advertisements for the best deals.
//
// Each advertisement has a price, a condition grade (1 = brand new ...
// 5 = poor; smaller is better, like price), and the seller's
// "trustability", which acts as the ad's occurrence probability. Old ads
// fall out of a sliding window; ads from untrustworthy sellers must not
// suppress better-looking deals - exactly the probabilistic q-skyline.

#include <cstdio>
#include <string>
#include <vector>

#include "base/random.h"
#include "core/ssky_operator.h"
#include "stream/element.h"

namespace {

struct Ad {
  std::string item;
  double price;
  int condition;  // 1 = excellent ... 5 = poor
  double trust;   // seller trustability in (0, 1]
};

const char* kConditionNames[] = {"", "excellent", "good", "average", "worn",
                                 "poor"};

psky::UncertainElement ToElement(const Ad& ad, uint64_t seq) {
  psky::UncertainElement e;
  e.pos = psky::Point({ad.price, static_cast<double>(ad.condition)});
  e.prob = ad.trust;
  e.seq = seq;
  return e;
}

void PrintSkyline(const psky::SskyOperator& op, const std::vector<Ad>& ads) {
  std::printf("  current best-deal candidates (P_sky >= %.2f):\n",
              op.threshold());
  for (const psky::SkylineMember& m : op.Skyline()) {
    const Ad& ad = ads[m.element.seq];
    std::printf("    $%-6.0f %-10s trust=%.2f  ->  P_sky=%.3f\n", ad.price,
                kConditionNames[ad.condition], ad.trust, m.psky);
  }
}

}  // namespace

int main() {
  // Table I of the paper, followed by a simulated feed of further ads.
  std::vector<Ad> ads = {
      {"ThinkPad T61", 550, 1, 0.80},  // L1: posted long ago
      {"ThinkPad T61", 680, 1, 0.90},  // L2
      {"ThinkPad T61", 530, 2, 1.00},  // L3
      {"ThinkPad T61", 200, 2, 0.48},  // L4: great price, shaky seller
  };
  psky::Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    Ad ad;
    ad.item = "ThinkPad T61";
    ad.price = 150.0 + 600.0 * rng.NextDouble();
    ad.condition = 1 + static_cast<int>(rng.NextBounded(5));
    ad.trust = 0.3 + 0.7 * rng.NextDouble();
    ads.push_back(ad);
  }

  // Keep the 8 most recent ads; report deals with P_sky >= 0.3.
  psky::SskyOperator op(/*dims=*/2, /*q=*/0.3);
  psky::StreamProcessor market(&op, /*window_size=*/8);

  for (size_t i = 0; i < ads.size(); ++i) {
    const Ad& ad = ads[i];
    std::printf("new ad #%zu: $%.0f, %s, trust %.2f\n", i, ad.price,
                kConditionNames[ad.condition], ad.trust);
    market.Step(ToElement(ad, i));
    if (i == 3 || i + 1 == ads.size()) PrintSkyline(op, ads);
  }

  std::printf(
      "\nNote how low-trust sellers only *discount* better offers instead\n"
      "of hiding them, and how stale ads disappear as the window slides.\n");
  return 0;
}
