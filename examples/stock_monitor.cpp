// The paper's second motivating scenario: monitor "top deals" among the
// most recent N stock transactions, where each recorded deal is only
// probably real (recording errors). A deal dominates another when it is
// cheaper per share AND larger in volume.
//
// Demonstrates three query styles on one maintained structure:
//   * the continuous q-skyline,
//   * the continuous top-k skyline (Section VI),
//   * ad-hoc queries with a stricter confidence (Section IV-D).

#include <cstdio>

#include "core/msky_operator.h"
#include "core/topk_operator.h"
#include "stream/stock.h"
#include "stream/window.h"

int main() {
  psky::StockConfig config;
  config.seed = 20260705;
  psky::StockStreamGenerator ticker(config);

  const int kWindow = 5000;
  const double q = 0.3;

  // One operator instance per query style (they share the stream).
  psky::TopKSkylineOperator top5(/*dims=*/2, q, /*k=*/5);
  psky::MskyOperator bands(/*dims=*/2, {0.9, 0.6, q});
  psky::CountWindow window(kWindow);

  for (int i = 0; i < 30000; ++i) {
    const psky::UncertainElement deal = ticker.Next();
    if (auto expired = window.Push(deal)) {
      top5.Expire(*expired);
      bands.Expire(*expired);
    }
    top5.Insert(deal);
    bands.Insert(deal);
  }

  std::printf("last price: $%.2f, window = %d most recent deals\n\n",
              ticker.current_price(), kWindow);

  std::printf("top-5 deals by skyline probability (P_sky >= %.1f):\n", q);
  for (const psky::SkylineMember& m : top5.TopK()) {
    std::printf("  $%7.2f x %6.0f shares   P=%.2f  P_sky=%.3f\n",
                m.element.pos[0], -m.element.pos[1], m.element.prob, m.psky);
  }

  std::printf("\ncontinuous multi-confidence subscription:\n");
  for (int band = 1; band <= bands.num_thresholds(); ++band) {
    std::printf("  >= %.1f confidence: %zu deals\n",
                bands.thresholds()[static_cast<size_t>(band) - 1],
                bands.skyline_count(band));
  }

  std::printf("\nad-hoc query: deals with P_sky >= 0.75:\n");
  for (const psky::SkylineMember& m : bands.AdHocQuery(0.75)) {
    std::printf("  $%7.2f x %6.0f shares   P_sky=%.3f\n", m.element.pos[0],
                -m.element.pos[1], m.psky);
  }
  return 0;
}
