// Quickstart: continuous q-skyline over a sliding window in ~30 lines.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/ssky_operator.h"
#include "stream/generator.h"

int main() {
  // A 3-dimensional uncertain stream: anti-correlated positions in
  // [0,1]^3 (smaller is better on every axis), occurrence probabilities
  // uniform in (0,1].
  psky::StreamConfig config;
  config.dims = 3;
  config.spatial = psky::SpatialDistribution::kAntiCorrelated;
  config.seed = 2026;
  psky::StreamGenerator stream(config);

  // Continuous skyline with probability threshold q = 0.3 over the most
  // recent 1000 elements.
  psky::SskyOperator op(/*dims=*/3, /*q=*/0.3);
  psky::StreamProcessor processor(&op, /*window_size=*/1000);

  for (int i = 0; i < 5000; ++i) {
    processor.Step(stream.Next());
    if ((i + 1) % 1000 == 0) {
      std::printf("after %5d elements: |S_{N,q}| = %4zu, |SKY_{N,q}| = %3zu\n",
                  i + 1, op.candidate_count(), op.skyline_count());
    }
  }

  std::printf("\ncurrent q-skyline (q = %.1f):\n", op.threshold());
  for (const psky::SkylineMember& m : op.Skyline()) {
    std::printf("  seq=%6llu  pos=(%.3f, %.3f, %.3f)  P=%.2f  P_sky=%.3f\n",
                static_cast<unsigned long long>(m.element.seq),
                m.element.pos[0], m.element.pos[1], m.element.pos[2],
                m.element.prob, m.psky);
  }
  return 0;
}
