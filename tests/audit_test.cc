// Integrity-audit subsystem tests: clean streams audit clean, injected
// corruption is detected (check mode) and healed (repair mode), the shadow
// oracle escalates correctly, and quarantine dumps round-trip. Long-stream
// metamorphic soaks live in audit_soak_test.cc (ctest label "soak").

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/build_info.h"
#include "base/check.h"
#include "core/audit.h"
#include "core/ssky_operator.h"
#include "store/segment_store.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "test_util.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kWindow = 300;

StreamConfig ConfigFor(SpatialDistribution dist, uint64_t seed = 0xA0D17u) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = dist;
  cfg.seed = seed + static_cast<uint64_t>(dist);
  return cfg;
}

// An operator plus its window and audit manager, advanced in lockstep.
struct Pipeline {
  explicit Pipeline(AuditOptions options,
                    SpatialDistribution dist = SpatialDistribution::kIndependent)
      : op(kDims, kQ),
        window(kWindow),
        gen(ConfigFor(dist)),
        audit(&op, options, [this]() { return window.Snapshot(); }) {}

  void Run(size_t steps) {
    for (size_t i = 0; i < steps; ++i) {
      const UncertainElement e = gen.Next();
      if (auto expired = window.Push(e)) op.Expire(*expired);
      op.Insert(e);
      audit.Step();
    }
  }

  // Corrupts a current skyline member's probability state in place by the
  // given log-domain deltas — the damage unbounded rounding drift would
  // cause, writ large. Safe for pnew here because the tests audit before
  // any further arrival can act on the corrupted retention value. Returns
  // the victim's seq.
  uint64_t CorruptSkylineMember(double delta_new, double delta_old) {
    const std::vector<SkylineMember> sky = op.Skyline();
    EXPECT_FALSE(sky.empty()) << "stream produced no skyline to corrupt";
    const SkylineMember& victim = sky.front();
    const SkyTree::AuditView view =
        op.tree().LookupForAudit(victim.element.pos, victim.element.seq);
    EXPECT_TRUE(view.found);
    op.mutable_tree()->RepairElement(victim.element.pos, victim.element.seq,
                                     view.pnew_log + delta_new,
                                     view.pold_log + delta_old);
    return victim.element.seq;
  }

  SskyOperator op;
  CountWindow window;
  StreamGenerator gen;
  AuditManager audit;
};

AuditOptions Options(AuditMode mode) {
  AuditOptions o;
  o.mode = mode;
  o.audit_every = 4;
  o.elements_per_audit = 4;
  return o;
}

class AuditDistTest : public ::testing::TestWithParam<SpatialDistribution> {};

TEST_P(AuditDistTest, CleanStreamAuditsClean) {
  AuditOptions options = Options(AuditMode::kCheck);
  options.oracle_every = 2000;
  Pipeline p(options, GetParam());
  p.Run(10000);
  const AuditReport& r = p.audit.report();
  EXPECT_GT(r.elements_audited, 1000u);
  EXPECT_LT(r.max_drift, options.tolerance);
  EXPECT_EQ(r.drift_beyond_tolerance, 0u);
  EXPECT_EQ(r.false_evictions, 0u);
  EXPECT_EQ(r.oracle_replays, 5u);
  EXPECT_EQ(r.oracle_mismatches, 0u);
  EXPECT_EQ(r.violations_unrepaired, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, AuditDistTest,
                         ::testing::Values(
                             SpatialDistribution::kAntiCorrelated,
                             SpatialDistribution::kIndependent,
                             SpatialDistribution::kCorrelated),
                         [](const auto& param_info) {
                           return std::string(
                               SpatialDistributionName(param_info.param));
                         });

TEST(AuditTest, StepHonorsCadence) {
  AuditOptions options = Options(AuditMode::kCheck);
  Pipeline p(options);
  p.Run(16);
  // Four slice audits (steps 4, 8, 12, 16) of four elements each.
  EXPECT_EQ(p.audit.report().elements_audited, 16u);
  EXPECT_EQ(p.audit.report().steps_seen, 16u);
}

TEST(AuditTest, OffModeNeverAudits) {
  Pipeline p(Options(AuditMode::kOff));
  p.Run(1000);
  EXPECT_EQ(p.audit.report().elements_audited, 0u);
  EXPECT_EQ(p.audit.report().oracle_replays, 0u);
}

TEST(AuditTest, CheckModeDetectsInjectedDriftWithoutMutating) {
  Pipeline p(Options(AuditMode::kCheck));
  p.Run(2000);
  const uint64_t seq = p.CorruptSkylineMember(-2.0, 0.0);

  EXPECT_GT(p.audit.AuditAll(), 0u);
  const AuditReport& r = p.audit.report();
  EXPECT_GE(r.drift_beyond_tolerance, 1u);
  EXPECT_GE(r.max_drift, 1.9);
  EXPECT_GT(r.violations_unrepaired, 0u);
  EXPECT_EQ(r.repairs_applied, 0u);

  // Check mode reports but never touches state: the corruption is intact.
  const std::vector<SkylineMember> sky = p.op.Skyline();
  for (const SkylineMember& m : sky) EXPECT_NE(m.element.seq, seq);
}

TEST(AuditTest, RepairModeHealsInjectedDrift) {
  Pipeline p(Options(AuditMode::kRepair));
  p.Run(2000);
  const std::vector<SkylineMember> before = p.op.Candidates();
  p.CorruptSkylineMember(-2.0, 0.0);

  EXPECT_EQ(p.audit.AuditAll(), 0u);
  const AuditReport& r = p.audit.report();
  EXPECT_GE(r.repairs_applied, 1u);
  EXPECT_EQ(r.violations_unrepaired, 0u);
  p.op.tree().CheckInvariants(/*deep=*/true);

  // The healed operator is value-identical to its pre-corruption self.
  const std::vector<SkylineMember> after = p.op.Candidates();
  ASSERT_EQ(SeqsOf(before), SeqsOf(after));
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_NEAR(before[i].psky, after[i].psky, 1e-9)
        << "seq " << before[i].element.seq;
  }
}

TEST(AuditTest, RepairCountsPreventedBandFlips) {
  Pipeline p(Options(AuditMode::kRepair));
  p.Run(2000);
  const size_t skyline_before = p.op.skyline_count();
  // -5.0 in the log domain shrinks P_sky by >100x: a guaranteed band flip
  // for a skyline member, which repair must reverse and count.
  p.CorruptSkylineMember(0.0, -5.0);
  EXPECT_LT(p.op.skyline_count(), skyline_before);

  EXPECT_EQ(p.audit.AuditAll(), 0u);
  EXPECT_GE(p.audit.report().band_flips_prevented, 1u);
  EXPECT_EQ(p.op.skyline_count(), skyline_before);
}

TEST(AuditTest, OracleFlagsCorruptionInCheckMode) {
  Pipeline p(Options(AuditMode::kCheck));
  p.Run(2000);
  EXPECT_TRUE(p.audit.RunOracleCheck());
  p.CorruptSkylineMember(0.0, -5.0);
  EXPECT_FALSE(p.audit.RunOracleCheck());
  const AuditReport& r = p.audit.report();
  EXPECT_EQ(r.oracle_replays, 2u);
  EXPECT_EQ(r.oracle_mismatches, 1u);
}

TEST(AuditTest, OracleEscalatesToFullRepair) {
  Pipeline p(Options(AuditMode::kRepair));
  p.Run(2000);
  p.CorruptSkylineMember(0.0, -5.0);
  EXPECT_TRUE(p.audit.RunOracleCheck());
  const AuditReport& r = p.audit.report();
  EXPECT_EQ(r.oracle_mismatches, 0u);
  EXPECT_GE(r.repairs_applied, 1u);
  EXPECT_EQ(r.violations_unrepaired, 0u);
}

// --- quarantine files ----------------------------------------------------

QuarantineDump MakeDump() {
  QuarantineDump dump;
  dump.reason = "PSKY_CHECK failed: 1 == 2 at somewhere.cc:42";
  dump.report.steps_seen = 123456;
  dump.report.elements_audited = 7890;
  dump.report.max_drift = 3.25e-9;
  dump.report.drift_beyond_tolerance = 3;
  dump.report.repairs_applied = 2;
  dump.report.band_flips_prevented = 1;
  dump.report.false_evictions = 0;
  dump.report.oracle_replays = 12;
  dump.report.oracle_mismatches = 1;
  dump.report.violations_unrepaired = 2;
  dump.state.dims = 2;
  dump.state.q = kQ;
  dump.state.window_kind = WindowKind::kCount;
  dump.state.window_capacity = 16;
  dump.state.elements_consumed = 123456;
  dump.state.next_seq = 123456;
  dump.state.window = {MakeElement({0.1, 0.9}, 0.5, 123450),
                       MakeElement({0.4, 0.2}, 0.9, 123455)};
  return dump;
}

std::string TempPath(const std::string& name) {
  return (fs::path(::testing::TempDir()) / name).string();
}

TEST(QuarantineTest, RoundTripsDumpExactly) {
  const QuarantineDump dump = MakeDump();
  const std::string path = TempPath("roundtrip.pskyq");
  std::string error;
  ASSERT_TRUE(WriteQuarantineFile(path, dump, &error)) << error;

  QuarantineDump got;
  ASSERT_TRUE(ReadQuarantineFile(path, &got, &error)) << error;
  EXPECT_EQ(got.producer, BuildInfoString());  // stamped on write
  EXPECT_EQ(got.reason, dump.reason);
  EXPECT_EQ(got.report.steps_seen, dump.report.steps_seen);
  EXPECT_EQ(got.report.elements_audited, dump.report.elements_audited);
  EXPECT_EQ(got.report.max_drift, dump.report.max_drift);
  EXPECT_EQ(got.report.drift_beyond_tolerance,
            dump.report.drift_beyond_tolerance);
  EXPECT_EQ(got.report.repairs_applied, dump.report.repairs_applied);
  EXPECT_EQ(got.report.band_flips_prevented,
            dump.report.band_flips_prevented);
  EXPECT_EQ(got.report.oracle_replays, dump.report.oracle_replays);
  EXPECT_EQ(got.report.oracle_mismatches, dump.report.oracle_mismatches);
  EXPECT_EQ(got.report.violations_unrepaired,
            dump.report.violations_unrepaired);
  ASSERT_EQ(got.state.window.size(), dump.state.window.size());
  EXPECT_EQ(got.state.window[1].seq, dump.state.window[1].seq);
  EXPECT_EQ(got.state.window[1].prob, dump.state.window[1].prob);
  fs::remove(path);
}

TEST(QuarantineTest, EmbeddedStateReplaysLikeACheckpoint) {
  // The point of embedding a full checkpoint: post-mortem tooling rebuilds
  // the crashed operator with the ordinary restore path.
  const QuarantineDump dump = MakeDump();
  const std::string path = TempPath("replayable.pskyq");
  std::string error;
  ASSERT_TRUE(WriteQuarantineFile(path, dump, &error)) << error;
  QuarantineDump got;
  ASSERT_TRUE(ReadQuarantineFile(path, &got, &error)) << error;

  SskyOperator op(got.state.dims, got.state.q);
  ReplayWindow(got.state, &op);
  EXPECT_EQ(op.candidate_count(), 2u);
  op.tree().CheckInvariants(/*deep=*/true);
  fs::remove(path);
}

TEST(QuarantineTest, RejectsFlippedByteAndTruncation) {
  const std::string path = TempPath("corrupt.pskyq");
  std::string error;
  ASSERT_TRUE(WriteQuarantineFile(path, MakeDump(), &error)) << error;
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }

  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  }
  QuarantineDump got;
  EXPECT_FALSE(ReadQuarantineFile(path, &got, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;

  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 3));
  }
  EXPECT_FALSE(ReadQuarantineFile(path, &got, &error));
  fs::remove(path);
}

TEST(QuarantineTest, FileNameIsZeroPaddedAndSortable) {
  EXPECT_EQ(QuarantineFileName(5000), "quarantine-00000000000000005000.pskyq");
  EXPECT_LT(QuarantineFileName(999), QuarantineFileName(1000));
}

// --- streamed-window auditing (out-of-core windows) ----------------------

// An operator over a StoredCountWindow with the streaming AuditManager,
// mirroring Pipeline but visiting the window through segment cursors.
struct StreamedPipeline {
  explicit StreamedPipeline(
      AuditOptions options, const std::string& tag,
      SpatialDistribution dist = SpatialDistribution::kIndependent)
      : op(kDims, kQ),
        window(kWindow, StoreOptions(tag)),
        gen(ConfigFor(dist)),
        audit(&op, options, MakeStream(&window)) {
    std::string error;
    PSKY_CHECK_MSG(window.Init(&error), error.c_str());
  }

  static SegmentStore::Options StoreOptions(const std::string& tag) {
    SegmentStore::Options o;
    o.dir = TempPath("audit_stream_" + tag);
    fs::remove_all(o.dir);
    o.dims = kDims;
    o.elements_per_segment = 32;  // kWindow=300 spans ~10 segments
    o.resident_budget = 3;        // force remaps during audit scans
    return o;
  }

  static AuditManager::WindowStream MakeStream(StoredCountWindow* w) {
    AuditManager::WindowStream ws;
    ws.size = [w]() { return static_cast<uint64_t>(w->size()); };
    ws.at = [w](uint64_t i) { return w->At(static_cast<size_t>(i)); };
    ws.scan = [w](const std::function<void(const UncertainElement&)>& fn) {
      SegmentStore::Cursor cur = w->NewCursor();
      UncertainElement e;
      while (cur.Next(&e)) fn(e);
    };
    return ws;
  }

  void Run(size_t steps) {
    for (size_t i = 0; i < steps; ++i) {
      const UncertainElement e = gen.Next();
      if (auto expired = window.Push(e)) op.Expire(*expired);
      op.Insert(e);
      audit.Step();
    }
  }

  SskyOperator op;
  StoredCountWindow window;
  StreamGenerator gen;
  AuditManager audit;
};

// Same stream, same cadence: the streamed auditor must reach the same
// verdicts as the snapshot auditor — clean stream, zero violations, and
// identical audit/oracle counts (the exact P_new sums are computed over
// the same elements in the same order).
TEST(AuditStreamedTest, MatchesSnapshotAuditOnCleanStream) {
  AuditOptions options = Options(AuditMode::kCheck);
  options.oracle_every = 1000;
  Pipeline snap(options);
  StreamedPipeline streamed(options, "clean");
  snap.Run(4000);
  streamed.Run(4000);
  const AuditReport& a = snap.audit.report();
  const AuditReport& b = streamed.audit.report();
  EXPECT_EQ(a.elements_audited, b.elements_audited);
  EXPECT_EQ(a.oracle_replays, b.oracle_replays);
  EXPECT_EQ(a.max_drift, b.max_drift);  // same sums, same order: bitwise
  EXPECT_EQ(b.drift_beyond_tolerance, 0u);
  EXPECT_EQ(b.false_evictions, 0u);
  EXPECT_EQ(b.oracle_mismatches, 0u);
  EXPECT_EQ(b.violations_unrepaired, 0u);
}

TEST(AuditStreamedTest, RepairsInjectedDriftThroughTheCursor) {
  StreamedPipeline p(Options(AuditMode::kRepair), "repair");
  p.Run(2000);
  // Corrupt a live skyline member exactly as the snapshot tests do.
  const std::vector<SkylineMember> sky = p.op.Skyline();
  ASSERT_FALSE(sky.empty());
  const SkylineMember& victim = sky.front();
  const SkyTree::AuditView view =
      p.op.tree().LookupForAudit(victim.element.pos, victim.element.seq);
  ASSERT_TRUE(view.found);
  p.op.mutable_tree()->RepairElement(victim.element.pos, victim.element.seq,
                                     view.pnew_log - 2.0, view.pold_log);
  EXPECT_EQ(p.audit.AuditAll(), 0u);
  const AuditReport& r = p.audit.report();
  EXPECT_GE(r.repairs_applied, 1u);
  EXPECT_EQ(r.violations_unrepaired, 0u);
  // The repaired value is exact again.
  const SkyTree::AuditView healed =
      p.op.tree().LookupForAudit(victim.element.pos, victim.element.seq);
  ASSERT_TRUE(healed.found);
  EXPECT_NEAR(healed.pnew_log, view.pnew_log, 1e-9);
}

}  // namespace
}  // namespace psky
