// Tests for the block dominance kernel (geom/dominance_kernel.h): the
// mask outputs must match the scalar DominanceCompare reference bit for
// bit — including ties, equal points, and every dimensionality the
// operators use — and the portable and SIMD paths must agree exactly.

#include "geom/dominance_kernel.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "base/random.h"
#include "geom/dominance.h"
#include "geom/point.h"

namespace psky {
namespace {

constexpr int kStride = kDominanceKernelMaxBlock;

// Dim-major SoA block plus the same points as Point objects for the
// scalar reference.
struct Block {
  std::vector<double> soa;
  std::vector<Point> points;
};

Block MakeBlock(const std::vector<Point>& pts, int dims) {
  Block b;
  b.points = pts;
  b.soa.assign(static_cast<size_t>(kStride) * dims, 0.0);
  for (int k = 0; k < dims; ++k) {
    for (size_t i = 0; i < pts.size(); ++i) {
      b.soa[static_cast<size_t>(k) * kStride + i] = pts[i][k];
    }
  }
  return b;
}

// Random coordinates from a small discrete grid, so equal coordinates
// (and fully equal points) occur constantly.
std::vector<Point> GridPoints(int n, int dims, Rng* rng) {
  std::vector<Point> pts;
  pts.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    Point p(dims);
    for (int k = 0; k < dims; ++k) {
      p[k] = 0.25 * static_cast<double>(rng->NextBounded(5));
    }
    pts.push_back(p);
  }
  return pts;
}

void ExpectMatchesReference(const Point& probe, const Block& block,
                            const uint64_t* cand, const uint64_t* dominated) {
  for (size_t i = 0; i < block.points.size(); ++i) {
    const int rel = DominanceCompare(block.points[i], probe);
    const bool want_cand = (rel & 1) != 0;       // candidate ≺ probe
    const bool want_dominated = (rel & 2) != 0;  // probe ≺ candidate
    const bool got_cand = (cand[i >> 6] >> (i & 63)) & 1;
    const bool got_dominated = (dominated[i >> 6] >> (i & 63)) & 1;
    EXPECT_EQ(got_cand, want_cand) << "candidate " << i;
    EXPECT_EQ(got_dominated, want_dominated) << "candidate " << i;
  }
}

TEST(DominanceKernel, MatchesScalarReferenceAcrossDimsAndSizes) {
  Rng rng(7);
  for (int dims = 2; dims <= 5; ++dims) {
    for (int n : {0, 1, 3, 4, 5, 63, 64, 65, 127, 128, 200, 256}) {
      const Block block = MakeBlock(GridPoints(n, dims, &rng), dims);
      for (int trial = 0; trial < 8; ++trial) {
        Point probe(dims);
        for (int k = 0; k < dims; ++k) {
          probe[k] = 0.25 * static_cast<double>(rng.NextBounded(5));
        }
        uint64_t cand[kDominanceKernelMaskWords];
        uint64_t dominated[kDominanceKernelMaskWords];
        DominanceBlockCompare(probe.data(), dims, block.soa.data(), kStride,
                              n, cand, dominated);
        ExpectMatchesReference(probe, block, cand, dominated);
      }
    }
  }
}

TEST(DominanceKernel, EqualPointsDominateNeitherWay) {
  const int dims = 3;
  Point p(dims);
  p[0] = 0.5;
  p[1] = 0.25;
  p[2] = 0.75;
  const Block block = MakeBlock(std::vector<Point>(10, p), dims);
  uint64_t cand[kDominanceKernelMaskWords];
  uint64_t dominated[kDominanceKernelMaskWords];
  DominanceBlockCompare(p.data(), dims, block.soa.data(), kStride, 10, cand,
                        dominated);
  EXPECT_EQ(cand[0], 0u);
  EXPECT_EQ(dominated[0], 0u);
}

TEST(DominanceKernel, TiesOnSomeDimsResolveLikeScalar) {
  // Candidates share coordinates with the probe on one or two dims; the
  // strict-on-some-dim rule must match DominanceCompare exactly.
  const int dims = 3;
  Point probe(dims);
  probe[0] = 0.5;
  probe[1] = 0.5;
  probe[2] = 0.5;
  std::vector<Point> pts;
  for (double a : {0.25, 0.5, 0.75}) {
    for (double b : {0.25, 0.5, 0.75}) {
      for (double c : {0.25, 0.5, 0.75}) {
        Point p(dims);
        p[0] = a;
        p[1] = b;
        p[2] = c;
        pts.push_back(p);
      }
    }
  }
  const Block block = MakeBlock(pts, dims);
  uint64_t cand[kDominanceKernelMaskWords];
  uint64_t dominated[kDominanceKernelMaskWords];
  DominanceBlockCompare(probe.data(), dims, block.soa.data(), kStride,
                        static_cast<int>(pts.size()), cand, dominated);
  ExpectMatchesReference(probe, block, cand, dominated);
}

TEST(DominanceKernel, NeverReportsBothDirections) {
  Rng rng(11);
  const int dims = 4;
  const int n = 256;
  const Block block = MakeBlock(GridPoints(n, dims, &rng), dims);
  for (int trial = 0; trial < 32; ++trial) {
    Point probe(dims);
    for (int k = 0; k < dims; ++k) {
      probe[k] = 0.25 * static_cast<double>(rng.NextBounded(5));
    }
    uint64_t cand[kDominanceKernelMaskWords];
    uint64_t dominated[kDominanceKernelMaskWords];
    DominanceBlockCompare(probe.data(), dims, block.soa.data(), kStride, n,
                          cand, dominated);
    for (int w = 0; w < kDominanceKernelMaskWords; ++w) {
      EXPECT_EQ(cand[w] & dominated[w], 0u);
    }
  }
}

#if PSKY_DOMKERNEL_X86_DISPATCH
TEST(DominanceKernel, PortableAndDispatchedPathsAgree) {
  // On AVX2 hardware DominanceBlockCompare takes the SIMD path; diff its
  // masks against a forced portable run on identical inputs. (On
  // pre-AVX2 hardware both calls run the portable path and the test is a
  // tautology — still worth keeping as a determinism check.)
  Rng rng(13);
  for (int dims = 2; dims <= 5; ++dims) {
    for (int n : {1, 4, 7, 64, 65, 130, 256}) {
      const Block block = MakeBlock(GridPoints(n, dims, &rng), dims);
      Point probe(dims);
      for (int k = 0; k < dims; ++k) {
        probe[k] = 0.25 * static_cast<double>(rng.NextBounded(5));
      }
      uint64_t cand[kDominanceKernelMaskWords];
      uint64_t dominated[kDominanceKernelMaskWords];
      DominanceBlockCompare(probe.data(), dims, block.soa.data(), kStride, n,
                            cand, dominated);
      uint64_t pcand[kDominanceKernelMaskWords] = {};
      uint64_t pdominated[kDominanceKernelMaskWords] = {};
      dominance_internal::BlockComparePortable(probe.data(), dims,
                                               block.soa.data(), kStride, 0,
                                               n, pcand, pdominated);
      for (int w = 0; w < (n + 63) / 64; ++w) {
        EXPECT_EQ(cand[w], pcand[w]) << "dims=" << dims << " n=" << n;
        EXPECT_EQ(dominated[w], pdominated[w])
            << "dims=" << dims << " n=" << n;
      }
    }
  }
}
#endif  // PSKY_DOMKERNEL_X86_DISPATCH

}  // namespace
}  // namespace psky
