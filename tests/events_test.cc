// Delta-event feed: reconstructing the skyline purely from
// TakeSkylineDelta() / TakeBandChanges() must reproduce the full result
// at every stream step.

#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "test_util.h"

namespace psky {
namespace {

TEST(Events, DisabledByDefault) {
  SskyOperator op(2, 0.3);
  op.Insert(MakeElement({0.5, 0.5}, 0.9, 1));
  EXPECT_TRUE(op.TakeSkylineDelta().entered.empty());
}

TEST(Events, SingleArrivalAndExpiry) {
  SkyTree::Options opt;
  opt.record_events = true;
  SskyOperator op(2, 0.3, opt);
  const UncertainElement e = MakeElement({0.5, 0.5}, 0.9, 1);
  op.Insert(e);
  auto delta = op.TakeSkylineDelta();
  EXPECT_EQ(delta.entered, std::vector<uint64_t>{1});
  EXPECT_TRUE(delta.left.empty());
  op.Expire(e);
  delta = op.TakeSkylineDelta();
  EXPECT_TRUE(delta.entered.empty());
  EXPECT_EQ(delta.left, std::vector<uint64_t>{1});
}

TEST(Events, DominationMovesElementOutAndBack) {
  SkyTree::Options opt;
  opt.record_events = true;
  SskyOperator op(2, 0.5, opt);
  op.Insert(MakeElement({0.5, 0.5}, 0.9, 1));
  (void)op.TakeSkylineDelta();
  // A dominator with P = 0.5 demotes seq 1 below q (P_sky = 0.45) while
  // keeping it in the candidate set (P_new = 0.5 >= q); anything stronger
  // would *evict* seq 1, which is irreversible by design (Theorem 5).
  const UncertainElement dom = MakeElement({0.1, 0.1}, 0.5, 2);
  op.Insert(dom);
  auto delta = op.TakeSkylineDelta();
  EXPECT_EQ(delta.entered, std::vector<uint64_t>{2});
  EXPECT_EQ(delta.left, std::vector<uint64_t>{1});
  // ...and its expiry brings seq 1 back.
  op.Expire(dom);
  delta = op.TakeSkylineDelta();
  EXPECT_EQ(delta.entered, std::vector<uint64_t>{1});
  EXPECT_EQ(delta.left, std::vector<uint64_t>{2});
}

TEST(Events, ReconstructsSkylineOnRandomStream) {
  SkyTree::Options opt;
  opt.record_events = true;
  for (int dims : {2, 3}) {
    StreamConfig cfg;
    cfg.dims = dims;
    cfg.spatial = SpatialDistribution::kAntiCorrelated;
    cfg.seed = 500 + static_cast<uint64_t>(dims);
    StreamGenerator gen(cfg);
    SskyOperator op(dims, 0.3, opt);
    StreamProcessor proc(&op, 60);
    std::set<uint64_t> reconstructed;
    for (const UncertainElement& e : gen.Take(600)) {
      proc.Step(e);
      const auto delta = op.TakeSkylineDelta();
      for (uint64_t seq : delta.left) {
        ASSERT_TRUE(reconstructed.erase(seq)) << "left but absent: " << seq;
      }
      for (uint64_t seq : delta.entered) {
        ASSERT_TRUE(reconstructed.insert(seq).second)
            << "entered but present: " << seq;
      }
      ASSERT_EQ(reconstructed, [&op] {
        std::set<uint64_t> s;
        for (const auto& m : op.Skyline()) s.insert(m.element.seq);
        return s;
      }()) << "at seq " << e.seq;
    }
  }
}

TEST(Events, BandChangesReconstructAllBandsForMsky) {
  SkyTree::Options opt;
  opt.record_events = true;
  SkyTree tree(3, {0.7, 0.4, 0.2}, opt);
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 901;
  StreamGenerator gen(cfg);
  CountWindow window(50);
  std::unordered_map<uint64_t, int> bands;
  for (UncertainElement e : gen.Take(400)) {
    e.prob = ClampProb(e.prob);
    if (auto expired = window.Push(e)) tree.Expire(*expired);
    tree.Arrive(e);
    for (const auto& ev : tree.TakeBandChanges()) {
      if (ev.new_band == 0) {
        bands.erase(ev.seq);
      } else {
        bands[ev.seq] = ev.new_band;
      }
    }
    // Reconstructed bands must match the tree's own classification.
    std::unordered_map<uint64_t, int> want;
    tree.ForEach([&want](const SkylineMember& m, int band) {
      want[m.element.seq] = band;
    });
    ASSERT_EQ(want, bands) << "at seq " << e.seq;
  }
}

}  // namespace
}  // namespace psky
