// Property test: StreamProcessor::StepBatch is exactly equivalent to the
// same sequence of Step() calls — identical skylines and candidate sets
// down to the last bit of every probability, identical operation
// counters, and identical checkpoint bytes — across spatial
// distributions and randomized batch sizes.

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "base/random.h"
#include "core/checkpoint.h"
#include "core/operator.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"

namespace psky {
namespace {

constexpr size_t kStream = 6000;
constexpr size_t kWindow = 2000;

std::vector<UncertainElement> MakeStream(SpatialDistribution spatial) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = spatial;
  cfg.seed = 77;
  StreamGenerator gen(cfg);
  std::vector<UncertainElement> out;
  out.reserve(kStream);
  for (size_t i = 0; i < kStream; ++i) out.push_back(gen.Next());
  return out;
}

void ExpectMembersIdentical(const std::vector<SkylineMember>& a,
                            const std::vector<SkylineMember>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].element.seq, b[i].element.seq);
    // Bit-identity, not tolerance: the batched path must execute the
    // exact same floating-point operations in the exact same order.
    EXPECT_EQ(a[i].pnew, b[i].pnew);
    EXPECT_EQ(a[i].pold, b[i].pold);
    EXPECT_EQ(a[i].psky, b[i].psky);
    EXPECT_EQ(a[i].in_skyline, b[i].in_skyline);
  }
}

std::string CheckpointBytes(const StreamProcessor& proc, uint64_t steps) {
  CheckpointState state;
  state.dims = proc.op()->dims();
  state.q = proc.op()->threshold();
  state.window_kind = WindowKind::kCount;
  state.window_capacity = proc.window().capacity();
  state.window = proc.window().Snapshot();
  state.elements_consumed = steps;
  state.next_seq = steps;
  return EncodeCheckpoint(state);
}

void RunEquivalence(SpatialDistribution spatial, uint64_t batch_seed) {
  const std::vector<UncertainElement> stream = MakeStream(spatial);

  SskyOperator seq_op(3, 0.3);
  StreamProcessor seq_proc(&seq_op, kWindow);
  for (const UncertainElement& e : stream) seq_proc.Step(e);

  SskyOperator batch_op(3, 0.3);
  StreamProcessor batch_proc(&batch_op, kWindow);
  Rng rng(batch_seed);
  size_t i = 0;
  while (i < stream.size()) {
    // Randomized batch sizes, including 1 and sizes straddling the
    // window-fill boundary.
    const size_t take =
        std::min<size_t>(1 + rng.NextBounded(97), stream.size() - i);
    batch_proc.StepBatch(
        std::span<const UncertainElement>(stream.data() + i, take));
    i += take;
  }

  ExpectMembersIdentical(seq_op.Skyline(), batch_op.Skyline());
  ExpectMembersIdentical(seq_op.Candidates(), batch_op.Candidates());

  const OperatorStats& s = seq_op.stats();
  const OperatorStats& b = batch_op.stats();
  EXPECT_EQ(s.arrivals, b.arrivals);
  EXPECT_EQ(s.expirations, b.expirations);
  EXPECT_EQ(s.evictions, b.evictions);
  EXPECT_EQ(s.nodes_visited, b.nodes_visited);
  EXPECT_EQ(s.elements_touched, b.elements_touched);

  EXPECT_EQ(CheckpointBytes(seq_proc, stream.size()),
            CheckpointBytes(batch_proc, stream.size()));
}

TEST(BatchEquivalence, AntiCorrelated) {
  RunEquivalence(SpatialDistribution::kAntiCorrelated, 1);
}

TEST(BatchEquivalence, Independent) {
  RunEquivalence(SpatialDistribution::kIndependent, 2);
}

TEST(BatchEquivalence, Correlated) {
  RunEquivalence(SpatialDistribution::kCorrelated, 3);
}

TEST(BatchEquivalence, SingleElementBatchesDegenerateToStep) {
  const std::vector<UncertainElement> stream =
      MakeStream(SpatialDistribution::kIndependent);
  SskyOperator seq_op(3, 0.3);
  StreamProcessor seq_proc(&seq_op, kWindow);
  SskyOperator batch_op(3, 0.3);
  StreamProcessor batch_proc(&batch_op, kWindow);
  for (const UncertainElement& e : stream) {
    seq_proc.Step(e);
    batch_proc.StepBatch(std::span<const UncertainElement>(&e, 1));
  }
  ExpectMembersIdentical(seq_op.Candidates(), batch_op.Candidates());
}

}  // namespace
}  // namespace psky
