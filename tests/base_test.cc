#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "base/stats.h"
#include "base/timer.h"

namespace psky {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, NextBoundedCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> hist(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    ++hist[rng.NextBounded(10)];
  }
  for (int count : hist) {
    // Each bucket expects 10000; allow 10% slack.
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextGaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

TEST(Rng, GaussianShifted) {
  Rng rng(19);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.NextGaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.Add(rng.NextExponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.005);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, SplitGivesIndependentStream) {
  Rng a(5);
  Rng b = a.Split();
  // The split stream must not replay the parent stream.
  Rng a2(5);
  a2.Next();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (b.Next() == a2.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(LatencyRecorder, DelayAndThroughput) {
  LatencyRecorder rec(1000);
  rec.AddBatchSeconds(0.001);  // 1 ms per 1000 elements = 1 us each
  rec.AddBatchSeconds(0.003);
  EXPECT_EQ(rec.batches(), 2u);
  EXPECT_NEAR(rec.MeanDelayPerElementMicros(), 2.0, 1e-9);
  EXPECT_NEAR(rec.ElementsPerSecond(), 500000.0, 1e-6);
}

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder rec(1000);
  EXPECT_EQ(rec.MeanDelayPerElementMicros(), 0.0);
  EXPECT_EQ(rec.ElementsPerSecond(), 0.0);
}

TEST(PeakTracker, TracksPeakAndMean) {
  PeakTracker t;
  t.Observe(3);
  t.Observe(10);
  t.Observe(7);
  EXPECT_EQ(t.peak(), 10u);
  EXPECT_NEAR(t.mean(), 20.0 / 3.0, 1e-12);
  EXPECT_EQ(t.count(), 3u);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GE(t.ElapsedNanos(), 0);
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace psky
