// MSKY (multiple thresholds), QSKY (ad-hoc queries) and the top-k
// extension, validated against snapshot oracles and the naive operator.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/msky_operator.h"
#include "core/naive_operator.h"
#include "core/snapshot.h"
#include "core/topk_operator.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "test_util.h"

namespace psky {
namespace {

std::set<uint64_t> SeqSet(const std::vector<SkylineMember>& ms) {
  std::set<uint64_t> out;
  for (const auto& m : ms) out.insert(m.element.seq);
  return out;
}

TEST(Msky, ThresholdValidation) {
  MskyOperator op(2, {0.9, 0.6, 0.3});
  EXPECT_EQ(op.num_thresholds(), 3);
  EXPECT_DOUBLE_EQ(op.thresholds()[0], 0.9);
  EXPECT_DOUBLE_EQ(op.thresholds()[2], 0.3);
}

TEST(Msky, BandsMatchSnapshotOracleAtEveryStep) {
  const std::vector<double> qs = {0.8, 0.5, 0.3, 0.1};
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 42;
  StreamGenerator gen(cfg);

  MskyOperator op(3, qs);
  CountWindow window(40);
  for (const UncertainElement& e : gen.Take(250)) {
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);

    const auto snap = window.Snapshot();
    for (size_t i = 0; i < qs.size(); ++i) {
      std::set<uint64_t> want;
      for (size_t idx : QSkylineIndices(snap, qs[i])) {
        want.insert(snap[idx].seq);
      }
      const auto got = op.Skyline(static_cast<int>(i) + 1);
      ASSERT_EQ(want, SeqSet(got))
          << "threshold " << qs[i] << " at seq " << e.seq;
      ASSERT_EQ(op.skyline_count(static_cast<int>(i) + 1), want.size());
    }
  }
}

TEST(Msky, SkylinesAreNestedAcrossThresholds) {
  const std::vector<double> qs = {0.9, 0.6, 0.3};
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 17;
  StreamGenerator gen(cfg);
  MskyOperator op(2, qs);
  CountWindow window(60);
  for (const UncertainElement& e : gen.Take(300)) {
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);
  }
  const auto s1 = SeqSet(op.Skyline(1));
  const auto s2 = SeqSet(op.Skyline(2));
  const auto s3 = SeqSet(op.Skyline(3));
  EXPECT_TRUE(std::includes(s2.begin(), s2.end(), s1.begin(), s1.end()));
  EXPECT_TRUE(std::includes(s3.begin(), s3.end(), s2.begin(), s2.end()));
  EXPECT_LE(s3.size(), op.candidate_count());
}

TEST(Qsky, AdHocMatchesSnapshotAndCount) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 23;
  StreamGenerator gen(cfg);
  MskyOperator op(3, {0.7, 0.4, 0.2});
  CountWindow window(50);
  Rng qrng(5);
  for (const UncertainElement& e : gen.Take(300)) {
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);
    // Ad-hoc thresholds q' uniform in [q_k, 1].
    const double qp = 0.2 + 0.8 * qrng.NextDouble();
    const auto snap = window.Snapshot();
    std::set<uint64_t> want;
    for (size_t idx : QSkylineIndices(snap, qp)) want.insert(snap[idx].seq);
    const auto got = op.AdHocQuery(qp);
    ASSERT_EQ(want, SeqSet(got)) << "q' = " << qp << " at seq " << e.seq;
    ASSERT_EQ(op.AdHocCount(qp), want.size());
  }
}

TEST(Qsky, AdHocIsReadOnly) {
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 31;
  StreamGenerator gen(cfg);
  MskyOperator op(2, {0.6, 0.3});
  for (const UncertainElement& e : gen.Take(100)) op.Insert(e);
  const size_t before_candidates = op.candidate_count();
  const auto before_sky = SeqSet(op.Skyline(1));
  for (double qp : {0.3, 0.5, 0.7, 0.95}) {
    (void)op.AdHocQuery(qp);
    (void)op.AdHocCount(qp);
  }
  EXPECT_EQ(op.candidate_count(), before_candidates);
  EXPECT_EQ(SeqSet(op.Skyline(1)), before_sky);
  op.tree().CheckInvariants(true);
}

TEST(Msky, SingleThresholdEquivalentToNaive) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 37;
  StreamGenerator gen(cfg);
  MskyOperator msky(3, {0.3});
  NaiveSkylineOperator naive(3, 0.3);
  CountWindow window(45);
  for (const UncertainElement& e : gen.Take(250)) {
    if (auto expired = window.Push(e)) {
      msky.Expire(*expired);
      naive.Expire(*expired);
    }
    msky.Insert(e);
    naive.Insert(e);
    ASSERT_EQ(SeqSet(naive.Skyline()), SeqSet(msky.Skyline(1)));
  }
}

TEST(TopK, MatchesSnapshotOracle) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 53;
  StreamGenerator gen(cfg);
  TopKSkylineOperator op(3, 0.1, 5);
  CountWindow window(40);
  for (const UncertainElement& e : gen.Take(250)) {
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);

    const auto snap = window.Snapshot();
    const auto want_idx = TopKSkylineIndices(snap, 0.1, 5);
    std::vector<uint64_t> want;
    for (size_t idx : want_idx) want.push_back(snap[idx].seq);

    const auto got = op.TopK();
    std::vector<uint64_t> got_seqs;
    for (const auto& m : got) got_seqs.push_back(m.element.seq);

    // Ordered by decreasing P_sky; ties may order differently, so compare
    // the probability sequences and the sets.
    ASSERT_EQ(want.size(), got_seqs.size()) << "at seq " << e.seq;
    const auto want_set = std::set<uint64_t>(want.begin(), want.end());
    const auto got_set = std::set<uint64_t>(got_seqs.begin(), got_seqs.end());
    if (want_set != got_set) {
      // Allow only tie-induced differences: the k-th probability equals
      // the (k+1)-th.
      const auto all = TopKSkylineIndices(snap, 0.1, snap.size());
      ASSERT_GT(all.size(), want.size());
    }
    for (size_t i = 1; i < got.size(); ++i) {
      EXPECT_GE(got[i - 1].psky, got[i].psky - 1e-12);
    }
    for (const auto& m : got) EXPECT_GE(m.psky, 0.1 - 1e-9);
  }
}

TEST(TopK, KLargerThanSkyline) {
  TopKSkylineOperator op(2, 0.2, 100);
  op.Insert(MakeElement({0.1, 0.9}, 0.8, 1));
  op.Insert(MakeElement({0.9, 0.1}, 0.6, 2));
  op.Insert(MakeElement({0.5, 0.5}, 0.9, 3));
  const auto top = op.TopK();
  EXPECT_EQ(top.size(), 3u);  // all qualify, fewer than k
  EXPECT_NEAR(top[0].psky, 0.9, 1e-9);
}

TEST(TopK, ExcludesBelowThreshold) {
  TopKSkylineOperator op(2, 0.5, 10);
  op.Insert(MakeElement({0.1, 0.1}, 0.9, 1));
  op.Insert(MakeElement({0.5, 0.5}, 0.9, 2));  // dominated: psky = 0.09
  const auto top = op.TopK();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].element.seq, 1u);
}

}  // namespace
}  // namespace psky
