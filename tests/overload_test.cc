// Overload machinery: the bounded ingest queue and its shed policies (with
// exact accounting), the hysteresis degradation ladder, the stall watchdog,
// and cooperative cancellation / deadlines on the ad-hoc query paths.

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "base/cancel.h"
#include "base/thread_pool.h"
#include "core/msky_operator.h"
#include "core/overload.h"
#include "core/sky_tree.h"
#include "core/ssky_operator.h"
#include "test_util.h"

namespace psky {
namespace {

IngestItem Item(uint64_t seq, double prob = 0.5) {
  IngestItem item;
  item.element = MakeElement({1.0, 2.0}, prob, seq);
  item.produced_after = seq + 1;
  item.next_seq_after = seq + 1;
  return item;
}

// Exact accounting invariant: everything enqueued is either delivered,
// shed under a named policy, or still queued.
void ExpectExactAccounting(const BoundedIngestQueue& queue) {
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.enqueued,
            s.dequeued + s.shed_oldest + s.shed_low_prob + queue.depth());
}

TEST(BoundedIngestQueueTest, FifoOrderAndCounters) {
  BoundedIngestQueue queue(8, OverloadPolicy::kBlock);
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(Item(i)));
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 3, 0), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].element.seq, 0u);
  EXPECT_EQ(out[2].element.seq, 2u);
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 2u);
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.enqueued, 5u);
  EXPECT_EQ(s.dequeued, 5u);
  EXPECT_EQ(s.peak_depth, 5u);
  ExpectExactAccounting(queue);
}

TEST(BoundedIngestQueueTest, BlockPolicyWaitsForSpaceAndCountsBlocks) {
  BoundedIngestQueue queue(2, OverloadPolicy::kBlock);
  ASSERT_TRUE(queue.Push(Item(0)));
  ASSERT_TRUE(queue.Push(Item(1)));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(Item(2)));  // must wait: queue is full
    pushed.store(true);
  });
  // Give the producer time to actually block before making space.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 1, 0), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.enqueued, 3u);
  EXPECT_GE(s.producer_blocks, 1u);
  EXPECT_EQ(s.shed_oldest + s.shed_low_prob + s.shed_incoming, 0u);
  ExpectExactAccounting(queue);
}

TEST(BoundedIngestQueueTest, RequestStopUnblocksPendingPush) {
  BoundedIngestQueue queue(1, OverloadPolicy::kBlock);
  ASSERT_TRUE(queue.Push(Item(0)));
  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(Item(1)));  // refused after stop
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  queue.RequestStop();
  producer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(queue.StatsSnapshot().dropped_on_stop, 1u);
  // Queued items remain drainable after a stop.
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 1u);
  EXPECT_TRUE(queue.drained());
}

TEST(BoundedIngestQueueTest, ShedOldestDropsFrontOfQueue) {
  BoundedIngestQueue queue(3, OverloadPolicy::kShedOldest);
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(queue.Push(Item(i)));
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 3u);
  // Elements 0 and 1 were shed to admit 3 and 4.
  EXPECT_EQ(out[0].element.seq, 2u);
  EXPECT_EQ(out[2].element.seq, 4u);
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.shed_oldest, 2u);
  EXPECT_EQ(s.enqueued, 5u);
  ExpectExactAccounting(queue);
}

TEST(BoundedIngestQueueTest, ShedLowProbEvictsLowestProbabilityElement) {
  BoundedIngestQueue queue(3, OverloadPolicy::kShedLowProb);
  ASSERT_TRUE(queue.Push(Item(0, 0.9)));
  ASSERT_TRUE(queue.Push(Item(1, 0.1)));  // lowest in queue
  ASSERT_TRUE(queue.Push(Item(2, 0.5)));
  // Incoming 0.7 > min 0.1: evict seq 1, admit seq 3.
  ASSERT_TRUE(queue.Push(Item(3, 0.7)));
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 3u);
  std::vector<uint64_t> seqs;
  for (const auto& item : out) seqs.push_back(item.element.seq);
  EXPECT_EQ(seqs, (std::vector<uint64_t>{0, 2, 3}));
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.shed_low_prob, 1u);
  EXPECT_EQ(s.shed_incoming, 0u);
  ExpectExactAccounting(queue);
}

TEST(BoundedIngestQueueTest, ShedLowProbRejectsIncomingWhenItIsTheLowest) {
  BoundedIngestQueue queue(2, OverloadPolicy::kShedLowProb);
  ASSERT_TRUE(queue.Push(Item(0, 0.8)));
  ASSERT_TRUE(queue.Push(Item(1, 0.6)));
  // Incoming 0.05 <= everything queued: it is itself the cheapest shed.
  ASSERT_TRUE(queue.Push(Item(2, 0.05)));
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.shed_incoming, 1u);
  EXPECT_EQ(s.shed_low_prob, 0u);
  EXPECT_EQ(s.enqueued, 2u);
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 2u);
  EXPECT_EQ(out[0].element.seq, 0u);
  EXPECT_EQ(out[1].element.seq, 1u);
}

TEST(BoundedIngestQueueTest, CloseProducerDrainsThenReportsDone) {
  BoundedIngestQueue queue(4, OverloadPolicy::kBlock);
  ASSERT_TRUE(queue.Push(Item(0)));
  queue.CloseProducer();
  EXPECT_FALSE(queue.drained());  // one item still queued
  std::vector<IngestItem> out;
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 1u);
  EXPECT_TRUE(queue.drained());
  EXPECT_EQ(queue.PopBatch(&out, 10, 0), 0u);
  // Pushing after close is refused and accounted.
  EXPECT_FALSE(queue.Push(Item(1)));
  EXPECT_EQ(queue.StatsSnapshot().dropped_on_stop, 1u);
}

TEST(BoundedIngestQueueTest, PopBatchTimesOutOnEmptyQueue) {
  BoundedIngestQueue queue(4, OverloadPolicy::kBlock);
  std::vector<IngestItem> out;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(queue.PopBatch(&out, 10, 30), 0u);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            25);
  EXPECT_FALSE(queue.drained());  // producer still open: just a timeout
}

TEST(BoundedIngestQueueTest, ConcurrentProducerConsumerLosesNothing) {
  BoundedIngestQueue queue(16, OverloadPolicy::kBlock);
  constexpr uint64_t kCount = 20000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(queue.Push(Item(i)));
    queue.CloseProducer();
  });
  std::vector<IngestItem> out;
  uint64_t next_expected = 0;
  for (;;) {
    const size_t n = queue.PopBatch(&out, 64, 50);
    if (n == 0) {
      if (queue.drained()) break;
      continue;
    }
    for (const auto& item : out) {
      ASSERT_EQ(item.element.seq, next_expected);  // FIFO, no loss
      ++next_expected;
    }
  }
  producer.join();
  EXPECT_EQ(next_expected, kCount);
  const QueueStats s = queue.StatsSnapshot();
  EXPECT_EQ(s.enqueued, kCount);
  EXPECT_EQ(s.dequeued, kCount);
  ExpectExactAccounting(queue);
}

// --- degradation ladder --------------------------------------------------

DegradationLadder::Options FastLadder() {
  DegradationLadder::Options o;
  o.engage_hold = 2;
  o.release_hold = 3;
  return o;
}

TEST(DegradationLadderTest, StaysAtZeroUnderLightPressure) {
  DegradationLadder ladder(FastLadder());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ladder.Observe(0.2), 0);
  const auto e = ladder.effects();
  EXPECT_EQ(e.batch_multiplier, 1u);
  EXPECT_FALSE(e.suspend_oracle);
  EXPECT_EQ(e.audit_stretch, 1u);
  EXPECT_EQ(e.checkpoint_stretch, 1u);
}

TEST(DegradationLadderTest, EscalatesOneRungPerHoldPeriod) {
  DegradationLadder ladder(FastLadder());
  EXPECT_EQ(ladder.Observe(0.95), 0);  // streak 1 of 2
  EXPECT_EQ(ladder.Observe(0.95), 1);  // engage_hold reached
  EXPECT_EQ(ladder.Observe(0.95), 1);  // streak resets after a move
  EXPECT_EQ(ladder.Observe(0.95), 2);
  EXPECT_EQ(ladder.Observe(0.95), 2);
  EXPECT_EQ(ladder.Observe(0.95), 3);
  EXPECT_EQ(ladder.Observe(0.95), 3);
  EXPECT_EQ(ladder.Observe(0.95), 4);
  // Capped at max_rung.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(ladder.Observe(0.95), 4);
  EXPECT_EQ(ladder.stats().escalations, 4u);
  EXPECT_EQ(ladder.stats().peak_rung, 4);
}

TEST(DegradationLadderTest, DeadBandHoldsTheRung) {
  DegradationLadder ladder(FastLadder());
  ladder.Observe(0.95);
  ASSERT_EQ(ladder.Observe(0.95), 1);
  // Pressure between release (0.30) and engage (0.85): no movement, and
  // the dead band also resets both streaks.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(ladder.Observe(0.5), 1);
  EXPECT_EQ(ladder.stats().escalations, 1u);
  EXPECT_EQ(ladder.stats().recoveries, 0u);
}

TEST(DegradationLadderTest, RecoversAfterReleaseHold) {
  DegradationLadder ladder(FastLadder());
  ladder.Observe(0.95);
  ladder.Observe(0.95);
  ladder.Observe(0.95);
  ASSERT_EQ(ladder.Observe(0.95), 2);
  EXPECT_EQ(ladder.Observe(0.1), 2);
  EXPECT_EQ(ladder.Observe(0.1), 2);
  EXPECT_EQ(ladder.Observe(0.1), 1);  // release_hold=3 reached
  EXPECT_EQ(ladder.Observe(0.1), 1);
  EXPECT_EQ(ladder.Observe(0.1), 1);
  EXPECT_EQ(ladder.Observe(0.1), 0);
  EXPECT_EQ(ladder.stats().recoveries, 2u);
  EXPECT_EQ(ladder.stats().rung, 0);
  EXPECT_EQ(ladder.stats().peak_rung, 2);
}

TEST(DegradationLadderTest, EffectsAreCumulativePerRung) {
  DegradationLadder::Options o = FastLadder();
  o.engage_hold = 1;
  DegradationLadder ladder(o);
  ladder.Observe(0.95);  // rung 1
  auto e = ladder.effects();
  EXPECT_EQ(e.batch_multiplier, o.batch_multiplier);
  EXPECT_FALSE(e.suspend_oracle);
  ladder.Observe(0.95);  // rung 2
  e = ladder.effects();
  EXPECT_EQ(e.batch_multiplier, o.batch_multiplier);
  EXPECT_TRUE(e.suspend_oracle);
  EXPECT_EQ(e.audit_stretch, 1u);
  ladder.Observe(0.95);  // rung 3
  e = ladder.effects();
  EXPECT_TRUE(e.suspend_oracle);
  EXPECT_EQ(e.audit_stretch, o.audit_stretch);
  EXPECT_EQ(e.checkpoint_stretch, 1u);
  ladder.Observe(0.95);  // rung 4
  e = ladder.effects();
  EXPECT_EQ(e.audit_stretch, o.audit_stretch);
  EXPECT_EQ(e.checkpoint_stretch, o.checkpoint_stretch);
}

TEST(DegradationLadderTest, ListenerSeesEveryTransition) {
  DegradationLadder::Options o = FastLadder();
  o.engage_hold = 1;
  o.release_hold = 1;
  std::vector<std::pair<int, int>> transitions;
  DegradationLadder ladder(o, [&](int from, int to, double /*pressure*/) {
    transitions.emplace_back(from, to);
  });
  ladder.Observe(0.95);
  ladder.Observe(0.95);
  ladder.Observe(0.1);
  ASSERT_EQ(transitions.size(), 3u);
  EXPECT_EQ(transitions[0], std::make_pair(0, 1));
  EXPECT_EQ(transitions[1], std::make_pair(1, 2));
  EXPECT_EQ(transitions[2], std::make_pair(2, 1));
}

// --- watchdog ------------------------------------------------------------

struct AlarmLog {
  std::mutex mu;
  std::vector<std::string> alarms;
  void Add(const std::string& what) {
    std::lock_guard<std::mutex> lock(mu);
    alarms.push_back(what);
  }
  size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return alarms.size();
  }
};

Watchdog::Options FastWatchdog() {
  Watchdog::Options o;
  o.poll_ms = 10;
  o.stall_ms = 60;
  o.task_stall_ms = 60;
  return o;
}

TEST(WatchdogTest, AlarmsOnceOnStepStallWhileBusy) {
  AlarmLog log;
  Watchdog dog(FastWatchdog(), [&](const std::string& w) { log.Add(w); });
  dog.Start();
  dog.SetBusy(true);
  dog.OnStep(1);
  // Stall: busy with no further steps. Edge-triggered → exactly one alarm
  // even though many polls elapse.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  dog.Stop();
  EXPECT_EQ(log.count(), 1u);
  const Watchdog::Stats s = dog.StatsSnapshot();
  EXPECT_EQ(s.step_stalls, 1u);
  EXPECT_GE(s.max_step_gap_ms, 60u);
}

TEST(WatchdogTest, NoAlarmWhileIdleOrProgressing) {
  AlarmLog log;
  Watchdog dog(FastWatchdog(), [&](const std::string& w) { log.Add(w); });
  dog.Start();
  // Idle (busy=false): a starved consumer is not a stalled one.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Busy but making steady progress.
  dog.SetBusy(true);
  for (uint64_t step = 1; step <= 10; ++step) {
    dog.OnStep(step);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  dog.Stop();
  EXPECT_EQ(log.count(), 0u);
  EXPECT_EQ(dog.StatsSnapshot().step_stalls, 0u);
}

TEST(WatchdogTest, ReArmsAfterStallClears) {
  AlarmLog log;
  Watchdog dog(FastWatchdog(), [&](const std::string& w) { log.Add(w); });
  dog.Start();
  dog.SetBusy(true);
  dog.OnStep(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(log.count(), 1u);
  dog.OnStep(2);  // progress clears the excursion
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // stall again
  dog.Stop();
  EXPECT_EQ(log.count(), 2u);
  EXPECT_EQ(dog.StatsSnapshot().step_stalls, 2u);
}

TEST(WatchdogTest, DetectsWedgedPoolTask) {
  AlarmLog log;
  ThreadPool pool(1);
  Watchdog dog(FastWatchdog(), [&](const std::string& w) { log.Add(w); });
  dog.WatchPool(&pool);
  dog.Start();
  std::atomic<bool> release{false};
  auto wedged = pool.Async([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  release.store(true);
  wedged.get();
  dog.Stop();
  EXPECT_GE(dog.StatsSnapshot().pool_stalls, 1u);
  EXPECT_GE(log.count(), 1u);
}

// Regression: two threads calling Stop() concurrently used to race to
// join the same std::thread (UB); the loser could also return while the
// poller was still running. Every Stop() caller must return only once
// the poll thread is fully joined, and the watchdog must be restartable
// afterwards.
TEST(WatchdogTest, ConcurrentStopJoinsExactlyOnceAndStaysRestartable) {
  AlarmLog log;
  Watchdog dog(FastWatchdog(), [&](const std::string& w) { log.Add(w); });
  for (int round = 0; round < 10; ++round) {
    dog.Start();
    dog.Start();  // second Start while running is a no-op
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&dog] { dog.Stop(); });
    }
    for (auto& t : stoppers) t.join();
    // After every Stop() returned the poller is gone; a fresh Start()
    // in the next round must spawn a new one (restartability).
  }
  dog.Stop();  // stop-when-idle is a no-op
  EXPECT_EQ(log.count(), 0u);
}

TEST(ThreadPoolStatusTest, ReportsQueuedAndRunningAges) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  auto running = pool.Async([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  auto queued = pool.Async([] {});
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  const ThreadPool::Status status = pool.GetStatus();
  EXPECT_EQ(status.active, 1);
  EXPECT_EQ(status.queued, 1u);
  EXPECT_GE(status.longest_running_ms, 50u);
  EXPECT_GE(status.oldest_queued_ms, 50u);
  release.store(true);
  running.get();
  queued.get();
  const ThreadPool::Status idle = pool.GetStatus();
  EXPECT_EQ(idle.active, 0);
  EXPECT_EQ(idle.queued, 0u);
}

// --- cooperative cancellation on query paths -----------------------------

class CancellableQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A few hundred incomparable candidates so traversals have real work.
    for (uint64_t i = 0; i < 400; ++i) {
      const double x = 1.0 + 0.001 * static_cast<double>(i);
      const double y = 1.0 + 0.001 * static_cast<double>(400 - i);
      op_.Insert(MakeElement({x, y}, 0.9, i));
    }
  }
  SskyOperator op_{2, 0.3};
};

TEST_F(CancellableQueryTest, UnboundedControlMatchesPlainQueries) {
  const QueryControl ctl = QueryControl::Unbounded();
  std::vector<SkylineMember> members;
  EXPECT_TRUE(op_.tree().CollectAtLeast(0.3, ctl, &members));
  EXPECT_EQ(SeqsOf(members), SeqsOf(op_.tree().CollectAtLeast(0.3)));
  size_t count = 0;
  EXPECT_TRUE(op_.tree().CountAtLeast(0.3, ctl, &count));
  EXPECT_EQ(count, op_.tree().CountAtLeast(0.3));
  std::vector<SkylineMember> top;
  EXPECT_TRUE(op_.tree().TopK(10, ctl, &top));
  EXPECT_EQ(SeqsOf(top), SeqsOf(op_.tree().TopK(10)));
}

TEST_F(CancellableQueryTest, PreCancelledTokenStopsImmediately) {
  CancelToken token;
  token.Cancel();
  QueryControl ctl;
  ctl.cancel = &token;
  std::vector<SkylineMember> members;
  EXPECT_FALSE(op_.tree().CollectAtLeast(0.3, ctl, &members));
  size_t count = 0;
  EXPECT_FALSE(op_.tree().CountAtLeast(0.3, ctl, &count));
  std::vector<SkylineMember> top;
  EXPECT_FALSE(op_.tree().TopK(10, ctl, &top));
}

TEST_F(CancellableQueryTest, ExpiredDeadlineCutsTraversalShort) {
  QueryControl ctl = QueryControl::WithDeadline(std::chrono::milliseconds(0));
  ctl.check_stride = 1;  // read the clock every tick: deterministic cutoff
  std::vector<SkylineMember> members;
  EXPECT_FALSE(op_.tree().CollectAtLeast(0.3, ctl, &members));
  // Partial results are well-formed: every member genuinely qualifies.
  for (const auto& m : members) EXPECT_GE(m.psky, 0.3);
}

TEST_F(CancellableQueryTest, PartialTopKIsExactPrefix) {
  QueryControl ctl = QueryControl::WithDeadline(std::chrono::milliseconds(0));
  ctl.check_stride = 1;
  std::vector<SkylineMember> partial;
  EXPECT_FALSE(op_.tree().TopK(50, ctl, &partial));
  const std::vector<SkylineMember> full = op_.tree().TopK(50);
  ASSERT_LE(partial.size(), full.size());
  for (size_t i = 0; i < partial.size(); ++i) {
    EXPECT_EQ(partial[i].element.seq, full[i].element.seq);
  }
}

TEST(MskyCancellationTest, BatchQueriesShareOneControl) {
  MskyOperator op(2, {0.6, 0.4, 0.2});
  for (uint64_t i = 0; i < 200; ++i) {
    const double x = 1.0 + 0.001 * static_cast<double>(i);
    const double y = 1.0 + 0.001 * static_cast<double>(200 - i);
    op.Insert(MakeElement({x, y}, 0.9, i));
  }
  ThreadPool pool(2);
  const std::vector<double> qs = {0.25, 0.45, 0.65};
  std::vector<std::vector<SkylineMember>> results;
  EXPECT_TRUE(
      op.AdHocQueryMany(qs, QueryControl::Unbounded(), &pool, &results));
  ASSERT_EQ(results.size(), 3u);
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(SeqsOf(results[i]), SeqsOf(op.AdHocQuery(qs[i])));
  }
  std::vector<size_t> counts;
  EXPECT_TRUE(
      op.AdHocCountMany(qs, QueryControl::Unbounded(), &pool, &counts));
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(counts[i], op.AdHocCount(qs[i]));
  }
  // One cancelled control stops the whole batch.
  CancelToken token;
  token.Cancel();
  QueryControl ctl;
  ctl.cancel = &token;
  EXPECT_FALSE(op.AdHocQueryMany(qs, ctl, &pool, &results));
  EXPECT_FALSE(op.AdHocCountMany(qs, ctl, &pool, &counts));
}

}  // namespace
}  // namespace psky
