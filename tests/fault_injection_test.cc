// Fault injection: kill the streaming pipeline at arbitrary points —
// including mid-checkpoint-write via the crash hook — restore from the
// newest valid checkpoint, and require the resumed run to finish with
// exactly the state an uninterrupted run reaches. Also proves corrupted
// checkpoint files are rejected with diagnostics, never a crash.
//
// Process death is simulated by abandoning the in-memory pipeline: the
// checkpoint directory is the only state that survives, exactly as after
// SIGKILL. The crash hook makes WriteCheckpointFile stop partway, leaving
// the same on-disk wreckage (truncated temp file / unrenamed temp file) a
// real mid-write crash leaves.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kWindow = 400;
constexpr size_t kStreamLen = 2500;
constexpr uint64_t kCheckpointEvery = 300;

std::string FreshDir(const std::string& tag) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("psky_fault_" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

StreamConfig ConfigFor(SpatialDistribution dist) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = dist;
  cfg.seed = 0xFEEDu + static_cast<uint64_t>(dist);
  return cfg;
}

// Final observable state of a run: the candidate set with exact P_sky
// values (the skyline is the subset with psky >= q, so candidate equality
// subsumes skyline equality; we still record both).
struct RunResult {
  std::vector<SkylineMember> skyline;
  std::vector<SkylineMember> candidates;
};

RunResult Finish(const SskyOperator& op) {
  return RunResult{op.Skyline(), op.Candidates()};
}

void ExpectSameResult(const RunResult& want, const RunResult& got,
                      const std::string& label) {
  ASSERT_EQ(want.skyline.size(), got.skyline.size()) << label;
  for (size_t i = 0; i < want.skyline.size(); ++i) {
    EXPECT_EQ(want.skyline[i].element.seq, got.skyline[i].element.seq)
        << label << " skyline[" << i << "]";
  }
  ASSERT_EQ(want.candidates.size(), got.candidates.size()) << label;
  for (size_t i = 0; i < want.candidates.size(); ++i) {
    const SkylineMember& w = want.candidates[i];
    const SkylineMember& g = got.candidates[i];
    ASSERT_EQ(w.element.seq, g.element.seq) << label << " candidate " << i;
    EXPECT_EQ(w.in_skyline, g.in_skyline) << label << " seq " << w.element.seq;
    EXPECT_NEAR(w.psky, g.psky, 1e-12) << label << " seq " << w.element.seq;
  }
}

RunResult RunUninterrupted(SpatialDistribution dist) {
  StreamGenerator gen(ConfigFor(dist));
  SskyOperator op(kDims, kQ);
  CountWindow window(kWindow);
  for (size_t i = 0; i < kStreamLen; ++i) {
    const UncertainElement e = gen.Next();
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);
  }
  return Finish(op);
}

CheckpointState Capture(const CountWindow& window, uint64_t consumed) {
  CheckpointState state;
  state.dims = kDims;
  state.q = kQ;
  state.window_kind = WindowKind::kCount;
  state.window_capacity = kWindow;
  state.elements_consumed = consumed;
  state.next_seq = consumed;
  state.window = window.Snapshot();
  return state;
}

// Runs the pipeline from scratch, checkpointing into `dir` every
// kCheckpointEvery steps, and "dies" (returns, dropping all in-memory
// state) after `kill_at` steps. Checkpoint write failures are ignored,
// as a crashing process cannot act on them either.
void RunAndDie(SpatialDistribution dist, const std::string& dir,
               size_t kill_at) {
  StreamGenerator gen(ConfigFor(dist));
  SskyOperator op(kDims, kQ);
  CountWindow window(kWindow);
  for (size_t step = 1; step <= kill_at; ++step) {
    const UncertainElement e = gen.Next();
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);
    if (step % kCheckpointEvery == 0) {
      std::string error;
      if (WriteCheckpointFile(dir + "/" + CheckpointFileName(step),
                              Capture(window, step), &error)) {
        PruneCheckpoints(dir, 2);
      }
    }
  }
}

// Restores from the newest valid checkpoint in `dir` and runs the stream
// to its end, exactly as `psky_stream --resume` does: replay the window,
// fast-forward the deterministic source, continue stepping.
RunResult ResumeAndFinish(SpatialDistribution dist, const std::string& dir) {
  CheckpointState state;
  std::string error;
  EXPECT_TRUE(LoadLatestCheckpoint(dir, &state, &error)) << error;

  SskyOperator op(kDims, kQ);
  CountWindow window(kWindow);
  ReplayWindow(state, &op);
  // The rebuilt tree must be structurally sound before any new element
  // touches it, or resume bugs masquerade as stream bugs downstream.
  op.tree().CheckInvariants(/*deep=*/true);
  for (const UncertainElement& e : state.window) window.Push(e);

  StreamGenerator gen(ConfigFor(dist));
  for (uint64_t i = 0; i < state.elements_consumed; ++i) gen.Next();
  for (uint64_t step = state.elements_consumed; step < kStreamLen; ++step) {
    const UncertainElement e = gen.Next();
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);
  }
  return Finish(op);
}

class FaultInjectionTest
    : public ::testing::TestWithParam<SpatialDistribution> {};

TEST_P(FaultInjectionTest, KillAtArbitraryStepsThenResumeMatchesUninterrupted) {
  const SpatialDistribution dist = GetParam();
  const RunResult want = RunUninterrupted(dist);
  // Kill right after a checkpoint, far between checkpoints, one step
  // before the next checkpoint, late in the stream, and before the window
  // has even filled once.
  const size_t kill_points[] = {300, 301, 599, 757, 1199, 2047, 2499};
  for (size_t kill_at : kill_points) {
    const std::string dir =
        FreshDir(SpatialDistributionName(dist) + std::to_string(kill_at));
    RunAndDie(dist, dir, kill_at);
    const RunResult got = ResumeAndFinish(dist, dir);
    ExpectSameResult(want, got,
                     std::string(SpatialDistributionName(dist)) + "/kill@" +
                         std::to_string(kill_at));
    fs::remove_all(dir);
  }
}

TEST_P(FaultInjectionTest, ResumeBeforeFirstCheckpointReplaysFromScratch) {
  // Death before any checkpoint exists: resume must fail cleanly, and the
  // operator restarts from the beginning (the caller's decision) — here we
  // just assert the failure is a diagnostic, not a crash.
  const SpatialDistribution dist = GetParam();
  const std::string dir =
      FreshDir(std::string("none_") + SpatialDistributionName(dist));
  RunAndDie(dist, dir, kCheckpointEvery - 1);
  CheckpointState state;
  std::string error;
  EXPECT_FALSE(LoadLatestCheckpoint(dir, &state, &error));
  EXPECT_FALSE(error.empty());
  fs::remove_all(dir);
}

// Crash hooks are process-global; each test clears them on exit.
struct CrashAt {
  static CheckpointCrashPoint point;
  static int countdown;  // die on the countdown-th hook hit at `point`
  static bool Hook(CheckpointCrashPoint p) {
    if (p != point) return true;
    return --countdown > 0;
  }
};
CheckpointCrashPoint CrashAt::point = CheckpointCrashPoint::kMidPayload;
int CrashAt::countdown = 0;

class CrashHookGuard {
 public:
  CrashHookGuard(CheckpointCrashPoint point, int nth) {
    CrashAt::point = point;
    CrashAt::countdown = nth;
    SetCheckpointCrashHook(&CrashAt::Hook);
  }
  ~CrashHookGuard() { SetCheckpointCrashHook(nullptr); }
};

TEST_P(FaultInjectionTest, DeathMidCheckpointWriteFallsBackToPreviousOne) {
  const SpatialDistribution dist = GetParam();
  const RunResult want = RunUninterrupted(dist);
  for (CheckpointCrashPoint point : {CheckpointCrashPoint::kMidPayload,
                                     CheckpointCrashPoint::kBeforeRename}) {
    const std::string dir =
        FreshDir(std::string("midwrite_") + SpatialDistributionName(dist));
    {
      // The 3rd checkpoint write (step 900) dies partway; the process dies
      // with it, right after its last complete checkpoint at step 600.
      CrashHookGuard guard(point, 3);
      RunAndDie(dist, dir, 900);
    }
    // The wreckage must contain a usable older checkpoint.
    CheckpointState state;
    std::string error;
    ASSERT_TRUE(LoadLatestCheckpoint(dir, &state, &error)) << error;
    EXPECT_EQ(state.elements_consumed, 600u);
    const RunResult got = ResumeAndFinish(dist, dir);
    ExpectSameResult(want, got, "mid-write crash resume");
    fs::remove_all(dir);
  }
}

TEST(FaultInjection, TamperedCheckpointFilesAreRejectedOnResume) {
  const std::string dir = FreshDir("tamper");
  RunAndDie(SpatialDistribution::kIndependent, dir, 700);
  const auto files = ListCheckpointFiles(dir);
  ASSERT_FALSE(files.empty());
  const std::string victim = files.front();

  std::string bytes;
  {
    std::ifstream in(victim, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  auto rewrite = [&](const std::string& contents) {
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << contents;
  };

  CheckpointState state;
  std::string error;

  // Truncation.
  rewrite(bytes.substr(0, bytes.size() / 3));
  EXPECT_FALSE(ReadCheckpointFile(victim, &state, &error));
  EXPECT_FALSE(error.empty());

  // Bit flip in the header.
  std::string flipped = bytes;
  flipped[2] = static_cast<char>(flipped[2] ^ 0x01);
  rewrite(flipped);
  EXPECT_FALSE(ReadCheckpointFile(victim, &state, &error));

  // Bit flip in the body.
  flipped = bytes;
  flipped[bytes.size() - 9] = static_cast<char>(flipped[bytes.size() - 9] ^ 0x40);
  rewrite(flipped);
  EXPECT_FALSE(ReadCheckpointFile(victim, &state, &error));
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;

  // With every file tampered, resume must fail with diagnostics — but the
  // original bytes restored must load again (the reject paths are pure).
  EXPECT_FALSE(LoadLatestCheckpoint(dir, &state, &error) &&
               state.elements_consumed == 600u);
  rewrite(bytes);
  EXPECT_TRUE(ReadCheckpointFile(victim, &state, &error)) << error;
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, FaultInjectionTest,
    ::testing::Values(SpatialDistribution::kAntiCorrelated,
                      SpatialDistribution::kIndependent,
                      SpatialDistribution::kCorrelated),
    [](const ::testing::TestParamInfo<SpatialDistribution>& param_info) {
      return SpatialDistributionName(param_info.param);
    });

}  // namespace
}  // namespace psky
