// CSV ingestion parsing.

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "stream/csv.h"

namespace psky {
namespace {

TEST(CsvParse, ValidLine) {
  const auto r = ParseElementCsv("1.5, 2.25, 0.8", 2, 7);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.element.pos, Point({1.5, 2.25}));
  EXPECT_DOUBLE_EQ(r.element.prob, 0.8);
  EXPECT_EQ(r.element.seq, 7u);
  EXPECT_DOUBLE_EQ(r.element.time, 0.0);
}

TEST(CsvParse, ValidLineWithTimestamp) {
  const auto r = ParseElementCsv("1,2,3,0.5,12.75", 3, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.element.time, 12.75);
}

TEST(CsvParse, SkipsCommentsAndBlanks) {
  EXPECT_TRUE(ParseElementCsv("# header", 2, 0).skip);
  EXPECT_TRUE(ParseElementCsv("", 2, 0).skip);
  EXPECT_TRUE(ParseElementCsv("   \t ", 2, 0).skip);
}

TEST(CsvParse, RejectsWrongFieldCount) {
  EXPECT_FALSE(ParseElementCsv("1,2", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,3,4,5,6", 2, 0).ok);
}

TEST(CsvParse, RejectsBadNumbers) {
  EXPECT_FALSE(ParseElementCsv("1,x,0.5", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,zebra", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,", 2, 0).ok);
}

TEST(CsvParse, RejectsOutOfRangeProbability) {
  EXPECT_FALSE(ParseElementCsv("1,2,0.0", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,1.5", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,-0.2", 2, 0).ok);
  EXPECT_TRUE(ParseElementCsv("1,2,1.0", 2, 0).ok);
}

TEST(CsvParse, NegativeAndScientificCoordinates) {
  const auto r = ParseElementCsv("-3.5,1e-3,0.9", 2, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.element.pos[0], -3.5);
  EXPECT_DOUBLE_EQ(r.element.pos[1], 1e-3);
}

TEST(CsvParse, RejectsNonFiniteValues) {
  EXPECT_FALSE(ParseElementCsv("nan,2,0.5", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,inf,0.5", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,nan", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,0.5,inf", 2, 0).ok);
  // A non-finite probability is NOT salvageable by clamping.
  EXPECT_FALSE(ParseElementCsv("1,2,inf", 2, 0).prob_out_of_range);
}

TEST(CsvParse, FlagsSalvageableOutOfRangeProbability) {
  const auto r = ParseElementCsv("1,2,1.5,3.25", 2, 9);
  EXPECT_FALSE(r.ok);
  ASSERT_TRUE(r.prob_out_of_range);
  // Everything but the probability parsed: a clamping policy can use it.
  EXPECT_EQ(r.element.pos, Point({1.0, 2.0}));
  EXPECT_DOUBLE_EQ(r.element.prob, 1.5);
  EXPECT_DOUBLE_EQ(r.element.time, 3.25);
  EXPECT_EQ(r.element.seq, 9u);
  // A bad coordinate is not salvageable even if the probability is the
  // only *range* problem.
  EXPECT_FALSE(ParseElementCsv("x,2,1.5", 2, 0).prob_out_of_range);
}

TEST(CsvReader, AssignsSequentialSeqsAndSkips) {
  std::istringstream in("# two elements\n1,2,0.5\n\n3,4,0.25\n");
  CsvElementReader reader(&in, 2);
  auto a = reader.Next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->seq, 0u);
  auto b = reader.Next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->seq, 1u);
  EXPECT_DOUBLE_EQ(b->prob, 0.25);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.ok());
}

TEST(CsvReader, FailFastStopsWithLineNumberedError) {
  std::istringstream in("1,2,0.5\nbad,line,0.5\n3,4,0.25\n");
  CsvElementReader reader(&in, 2);
  ASSERT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error_line(), 2u);
  EXPECT_NE(reader.error().find("line 2"), std::string::npos)
      << reader.error();
  // The reader stays stopped: no element after the poisoned line.
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(CsvReader, SkipPolicyDropsAndCounts) {
  std::istringstream in(
      "1,2,0.5\nbad,line,0.5\n7,8\n3,4,0.25\n5,6,2.0\n9,10,0.75\n");
  CsvReaderOptions options;
  options.policy = BadInputPolicy::kSkip;
  CsvElementReader reader(&in, 2, options);
  std::vector<uint64_t> seqs;
  while (auto e = reader.Next()) seqs.push_back(e->seq);
  EXPECT_TRUE(reader.ok());
  // Three good lines survive with consecutive seqs; the out-of-range
  // probability is dropped too (kSkip does not clamp).
  EXPECT_EQ(seqs, (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(reader.skipped_lines(), 3u);
  EXPECT_EQ(reader.probs_clamped(), 0u);
}

TEST(CsvReader, SkipPolicyExhaustsConsecutiveErrorBudget) {
  std::istringstream in("1,2,0.5\nbad\nbad\nbad\nbad\n3,4,0.25\n");
  CsvReaderOptions options;
  options.policy = BadInputPolicy::kSkip;
  options.max_consecutive_errors = 3;
  CsvElementReader reader(&in, 2, options);
  ASSERT_TRUE(reader.Next().has_value());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.error_line(), 5u);
  EXPECT_NE(reader.error().find("consecutive"), std::string::npos);
}

TEST(CsvReader, GoodLinesResetTheConsecutiveErrorBudget) {
  std::istringstream in("bad\nbad\n1,2,0.5\nbad\nbad\n3,4,0.25\n");
  CsvReaderOptions options;
  options.policy = BadInputPolicy::kSkip;
  options.max_consecutive_errors = 2;
  CsvElementReader reader(&in, 2, options);
  size_t elements = 0;
  while (reader.Next()) ++elements;
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(elements, 2u);
  EXPECT_EQ(reader.skipped_lines(), 4u);
}

TEST(CsvReader, BudgetResetAfterGoodLineIsFullNotResidual) {
  // The reset must re-arm the whole budget: after a good line, exactly
  // `max` consecutive errors are again tolerable, any repeated number of
  // times. A residual-budget bug (counter decremented but never cleared)
  // fails the later bursts.
  std::string input;
  for (int burst = 0; burst < 4; ++burst) {
    input += "bad\nbad\nbad\n";  // exactly max_consecutive_errors
    input += "1,2,0.5\n";
  }
  std::istringstream in(input);
  CsvReaderOptions options;
  options.policy = BadInputPolicy::kSkip;
  options.max_consecutive_errors = 3;
  CsvElementReader reader(&in, 2, options);
  size_t elements = 0;
  while (reader.Next()) ++elements;
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(elements, 4u);
  EXPECT_EQ(reader.skipped_lines(), 12u);

  // One error past the re-armed budget still trips it.
  std::istringstream in2("1,2,0.5\nbad\nbad\nbad\nbad\n3,4,0.25\n");
  CsvElementReader reader2(&in2, 2, options);
  ASSERT_TRUE(reader2.Next().has_value());
  EXPECT_FALSE(reader2.Next().has_value());
  EXPECT_FALSE(reader2.ok());
}

TEST(CsvReader, ClampPolicySalvagesOutOfRangeProbabilities) {
  std::istringstream in("1,2,1.5\n3,4,-0.25\n5,6,0.5\nbad,line,1\n");
  CsvReaderOptions options;
  options.policy = BadInputPolicy::kClamp;
  CsvElementReader reader(&in, 2, options);
  auto a = reader.Next();
  ASSERT_TRUE(a.has_value());
  EXPECT_DOUBLE_EQ(a->prob, 1.0);  // 1.5 clamped down
  auto b = reader.Next();
  ASSERT_TRUE(b.has_value());
  EXPECT_GT(b->prob, 0.0);  // -0.25 clamped to the representable floor
  EXPECT_LE(b->prob, 1e-12);
  auto c = reader.Next();
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->prob, 0.5);  // in-range values pass through untouched
  EXPECT_FALSE(reader.Next().has_value());  // structurally bad: still skipped
  EXPECT_TRUE(reader.ok());
  EXPECT_EQ(reader.probs_clamped(), 2u);
  EXPECT_EQ(reader.skipped_lines(), 1u);
}

TEST(CsvReader, ResumeOptionsFastForwardLinesAndSeqs) {
  // A resumed pipeline re-opens the file, discards the lines it already
  // consumed (however malformed), and keeps numbering where it left off.
  std::istringstream in("1,2,0.5\ngarbage\n3,4,0.25\n5,6,0.75\n");
  CsvReaderOptions options;
  options.start_line = 3;
  options.start_seq = 2;
  CsvElementReader reader(&in, 2, options);
  auto e = reader.Next();
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->seq, 2u);
  EXPECT_DOUBLE_EQ(e->prob, 0.75);
  EXPECT_EQ(reader.lines_read(), 4u);
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.ok());
}

}  // namespace
}  // namespace psky
