// CSV ingestion parsing.

#include <sstream>

#include <gtest/gtest.h>

#include "stream/csv.h"

namespace psky {
namespace {

TEST(CsvParse, ValidLine) {
  const auto r = ParseElementCsv("1.5, 2.25, 0.8", 2, 7);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.element.pos, Point({1.5, 2.25}));
  EXPECT_DOUBLE_EQ(r.element.prob, 0.8);
  EXPECT_EQ(r.element.seq, 7u);
  EXPECT_DOUBLE_EQ(r.element.time, 0.0);
}

TEST(CsvParse, ValidLineWithTimestamp) {
  const auto r = ParseElementCsv("1,2,3,0.5,12.75", 3, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.element.time, 12.75);
}

TEST(CsvParse, SkipsCommentsAndBlanks) {
  EXPECT_TRUE(ParseElementCsv("# header", 2, 0).skip);
  EXPECT_TRUE(ParseElementCsv("", 2, 0).skip);
  EXPECT_TRUE(ParseElementCsv("   \t ", 2, 0).skip);
}

TEST(CsvParse, RejectsWrongFieldCount) {
  EXPECT_FALSE(ParseElementCsv("1,2", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,3,4,5,6", 2, 0).ok);
}

TEST(CsvParse, RejectsBadNumbers) {
  EXPECT_FALSE(ParseElementCsv("1,x,0.5", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,zebra", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,", 2, 0).ok);
}

TEST(CsvParse, RejectsOutOfRangeProbability) {
  EXPECT_FALSE(ParseElementCsv("1,2,0.0", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,1.5", 2, 0).ok);
  EXPECT_FALSE(ParseElementCsv("1,2,-0.2", 2, 0).ok);
  EXPECT_TRUE(ParseElementCsv("1,2,1.0", 2, 0).ok);
}

TEST(CsvParse, NegativeAndScientificCoordinates) {
  const auto r = ParseElementCsv("-3.5,1e-3,0.9", 2, 0);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.element.pos[0], -3.5);
  EXPECT_DOUBLE_EQ(r.element.pos[1], 1e-3);
}

TEST(CsvReader, AssignsSequentialSeqsAndSkips) {
  std::istringstream in("# two elements\n1,2,0.5\n\n3,4,0.25\n");
  CsvElementReader reader(&in, 2);
  auto a = reader.Next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->seq, 0u);
  auto b = reader.Next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->seq, 1u);
  EXPECT_DOUBLE_EQ(b->prob, 0.25);
  EXPECT_FALSE(reader.Next().has_value());
}

}  // namespace
}  // namespace psky
