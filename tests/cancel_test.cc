// Concurrent edge cases for cooperative cancellation (base/cancel.h):
// cancel racing deadline expiry, ticker/token reuse after a stop, the
// CancelToken release/acquire visibility contract, and partial-result
// exactness when a traversal is cancelled from another thread. The
// cross-thread tests are written to be meaningful under TSan.

#include "base/cancel.h"

#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/sky_tree.h"
#include "core/ssky_operator.h"
#include "test_util.h"

namespace psky {
namespace {

TEST(CancelTokenTest, WritesBeforeCancelAreVisibleAfterObservation) {
  // The documented contract: release on Cancel() pairs with acquire on
  // cancelled(), so the reason written before Cancel() needs no fence.
  CancelToken token;
  int reason = 0;
  std::thread canceller([&] {
    reason = 42;
    token.Cancel();
  });
  while (!token.cancelled()) std::this_thread::yield();
  EXPECT_EQ(reason, 42);
  canceller.join();
}

TEST(QueryTickerTest, CancelRacingDeadlineExpiryStopsExactlyOnce) {
  // Both stop conditions arrive around the same tick; whichever wins,
  // the ticker transitions false once and stays false.
  CancelToken token;
  QueryControl ctl = QueryControl::WithDeadline(std::chrono::milliseconds(5));
  ctl.cancel = &token;
  ctl.check_stride = 1;
  QueryTicker ticker(ctl);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel();
  });
  while (ticker.Tick()) std::this_thread::yield();
  canceller.join();
  EXPECT_TRUE(ticker.stopped());
  // Once stopped, later ticks stay false even though the deadline logic
  // would otherwise re-read the clock.
  EXPECT_FALSE(ticker.Tick());
  EXPECT_FALSE(ticker.Tick());
}

TEST(QueryTickerTest, FreshTickerOverCancelledControlStopsOnFirstTick) {
  // Ticker reuse pattern: a serving loop builds one ticker per traversal
  // over a shared control. After cancellation, every later ticker stops
  // on its first tick rather than inheriting stale "running" state.
  CancelToken token;
  QueryControl ctl;
  ctl.cancel = &token;
  QueryTicker first(ctl);
  EXPECT_TRUE(first.Tick());
  token.Cancel();
  EXPECT_FALSE(first.Tick());
  QueryTicker second(ctl);
  EXPECT_FALSE(second.Tick());
  EXPECT_TRUE(second.stopped());
}

TEST(QueryTickerTest, ControlsAreIndependentAfterACancelledQuery) {
  CancelToken token;
  QueryControl cancelled;
  cancelled.cancel = &token;
  token.Cancel();
  EXPECT_FALSE(QueryTicker(cancelled).Tick());
  // A different control (no token) over the same serving loop is
  // unaffected: tokens are per-query, not process state.
  QueryControl fresh = QueryControl::Unbounded();
  QueryTicker ticker(fresh);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(ticker.Tick());
}

class ConcurrentCancelQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Anti-correlated candidates: a wide incomparable band, so the
    // traversal visits many leaves and a mid-flight cancel lands inside
    // the walk rather than before or after it.
    for (uint64_t i = 0; i < 400; ++i) {
      const double x = 1.0 + 0.001 * static_cast<double>(i);
      const double y = 1.0 + 0.001 * static_cast<double>(400 - i);
      op_.Insert(MakeElement({x, y}, 0.9, i));
    }
  }
  SskyOperator op_{2, 0.3};
};

TEST_F(ConcurrentCancelQueryTest, PartialCollectIsAnExactSubsetOfFull) {
  const std::vector<SkylineMember> full = op_.tree().CollectAtLeast(0.3);
  std::set<uint64_t> full_seqs;
  for (const auto& m : full) full_seqs.insert(m.element.seq);

  // Race a canceller against repeated traversals until one is actually
  // cut short mid-walk (a cancel landing before/after a traversal is
  // legal but uninteresting).
  bool observed_partial = false;
  for (int attempt = 0; attempt < 50 && !observed_partial; ++attempt) {
    CancelToken token;
    QueryControl ctl;
    ctl.cancel = &token;
    std::thread canceller([&] { token.Cancel(); });
    std::vector<SkylineMember> members;
    const bool completed = op_.tree().CollectAtLeast(0.3, ctl, &members);
    canceller.join();
    if (completed) {
      // The walk won the race: the result must be the full answer.
      ASSERT_EQ(members.size(), full.size());
      continue;
    }
    // Cut short: every returned member is a genuine qualifier, in seq
    // order, with no duplicates or inventions.
    observed_partial = members.size() < full.size();
    uint64_t prev_seq = 0;
    bool first = true;
    for (const auto& m : members) {
      EXPECT_TRUE(full_seqs.count(m.element.seq) != 0)
          << "partial result invented seq " << m.element.seq;
      EXPECT_GE(m.psky, 0.3);
      if (!first) {
        EXPECT_GT(m.element.seq, prev_seq);
      }
      prev_seq = m.element.seq;
      first = false;
    }
  }
  // Not asserting observed_partial: on a slow machine every cancel may
  // land pre-walk (returning empty) — the invariants above still ran.
}

TEST_F(ConcurrentCancelQueryTest, CancelledQueryLeavesTreeReusable) {
  CancelToken token;
  token.Cancel();
  QueryControl ctl;
  ctl.cancel = &token;
  std::vector<SkylineMember> members;
  EXPECT_FALSE(op_.tree().CollectAtLeast(0.3, ctl, &members));
  // The next, uncancelled query over the same tree is complete.
  const auto full = op_.tree().CollectAtLeast(0.3);
  std::vector<SkylineMember> again;
  EXPECT_TRUE(
      op_.tree().CollectAtLeast(0.3, QueryControl::Unbounded(), &again));
  EXPECT_EQ(again.size(), full.size());
}

}  // namespace
}  // namespace psky
