// Long-stream metamorphic drift soak (ctest label "soak"; excluded from the
// fast PR suite, run nightly — see .github/workflows/nightly.yml).
//
// Millions of steps per spatial distribution through the full
// operator+window+audit pipeline in repair mode, with corruption injected
// periodically to prove the auditor keeps a drifting, occasionally damaged
// operator convergent with ground truth: every sampled shadow-oracle replay
// must agree on q-skyline membership exactly — zero band
// misclassifications — and the run must end with zero unrepaired
// violations.

#include <cinttypes>
#include <cstdio>

#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"

namespace psky {
namespace {

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kWindow = 500;
constexpr uint64_t kSteps = 2'000'000;
constexpr uint64_t kOracleEvery = 200'000;
// Injection sites sit far from oracle sample points: the rotating slice
// audits the full window every (window / elements_per_audit) * audit_every
// = 1000 steps, so every injection is found and repaired long before the
// next oracle replay can see it.
constexpr uint64_t kInjectEvery = 500'000;
constexpr uint64_t kInjectPhase = 250'000;

class AuditSoakTest : public ::testing::TestWithParam<SpatialDistribution> {};

TEST_P(AuditSoakTest, MillionsOfStepsZeroBandMismatches) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = GetParam();
  cfg.seed = 0x50A4u ^ static_cast<uint64_t>(GetParam());

  SskyOperator op(kDims, kQ);
  CountWindow window(kWindow);
  StreamGenerator gen(cfg);

  AuditOptions options;
  options.mode = AuditMode::kRepair;
  options.audit_every = 8;
  options.elements_per_audit = 4;
  options.oracle_every = kOracleEvery;
  AuditManager audit(&op, options, [&window]() { return window.Snapshot(); });

  uint64_t injected = 0;
  for (uint64_t step = 1; step <= kSteps; ++step) {
    const UncertainElement e = gen.Next();
    if (auto expired = window.Push(e)) op.Expire(*expired);
    op.Insert(e);

    if (step % kInjectEvery == kInjectPhase && op.skyline_count() > 0) {
      // Corrupt P_old only: P_new also drives candidate retention, so
      // damaging it can trigger an (unrepairable) eviction before the
      // auditor's next pass. P_old corruption flips the band — the failure
      // mode users observe — yet stays repairable. The immediate full
      // sweep makes detection deterministic: depending on distribution,
      // the victim can be dominated out of the candidate set (taking its
      // corruption with it) before the rotating cursor would come around.
      const SkylineMember victim = op.Skyline().back();
      const SkyTree::AuditView view =
          op.tree().LookupForAudit(victim.element.pos, victim.element.seq);
      ASSERT_TRUE(view.found);
      op.mutable_tree()->RepairElement(victim.element.pos, victim.element.seq,
                                       view.pnew_log, view.pold_log - 3.0);
      ++injected;
      EXPECT_EQ(audit.AuditAll(), 0u) << "injected corruption not repaired";
    }

    audit.Step();
  }

  EXPECT_TRUE(audit.RunOracleCheck());
  op.tree().CheckInvariants(/*deep=*/true);

  const AuditReport& r = audit.report();
  std::printf(
      "soak[%s]: steps=%" PRIu64 " audited=%" PRIu64 " injected=%" PRIu64
      " max_drift=%.3g beyond_tolerance=%" PRIu64 " repairs=%" PRIu64
      " band_flips_prevented=%" PRIu64 " false_evictions=%" PRIu64
      " oracle_replays=%" PRIu64 " oracle_mismatches=%" PRIu64
      " unrepaired=%" PRIu64 "\n",
      SpatialDistributionName(GetParam()), r.steps_seen, r.elements_audited,
      injected, r.max_drift, r.drift_beyond_tolerance, r.repairs_applied,
      r.band_flips_prevented, r.false_evictions, r.oracle_replays,
      r.oracle_mismatches, r.violations_unrepaired);

  EXPECT_EQ(r.steps_seen, kSteps);
  EXPECT_GT(injected, 0u);
  EXPECT_GE(r.drift_beyond_tolerance, injected);
  EXPECT_GE(r.repairs_applied, injected);
  EXPECT_GE(r.band_flips_prevented, injected);
  EXPECT_EQ(r.oracle_replays, kSteps / kOracleEvery + 1);
  EXPECT_EQ(r.oracle_mismatches, 0u) << "q-band misclassification vs oracle";
  EXPECT_EQ(r.false_evictions, 0u);
  EXPECT_EQ(r.violations_unrepaired, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, AuditSoakTest,
                         ::testing::Values(
                             SpatialDistribution::kAntiCorrelated,
                             SpatialDistribution::kIndependent,
                             SpatialDistribution::kCorrelated),
                         [](const auto& param_info) {
                           return std::string(
                               SpatialDistributionName(param_info.param));
                         });

}  // namespace
}  // namespace psky
