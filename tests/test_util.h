// Shared helpers for the test suite.

#ifndef PSKY_TESTS_TEST_UTIL_H_
#define PSKY_TESTS_TEST_UTIL_H_

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include <gtest/gtest.h>

#include "core/operator.h"
#include "stream/element.h"

namespace psky {

/// Builds an element with explicit coordinates, probability and arrival
/// sequence number.
inline UncertainElement MakeElement(std::initializer_list<double> coords,
                                    double prob, uint64_t seq,
                                    double time = 0.0) {
  UncertainElement e;
  e.pos = Point(coords);
  e.prob = prob;
  e.seq = seq;
  e.time = time;
  return e;
}

/// Sequence numbers of the given members.
inline std::vector<uint64_t> SeqsOf(const std::vector<SkylineMember>& ms) {
  std::vector<uint64_t> out;
  out.reserve(ms.size());
  for (const SkylineMember& m : ms) out.push_back(m.element.seq);
  return out;
}

/// Asserts that two operators hold identical candidate sets with matching
/// probabilities and identical skyline membership. Near-threshold values
/// (|P - q| < boundary_tol) are allowed to differ in membership, since the
/// two implementations accumulate rounding differently.
inline void ExpectOperatorsAgree(const WindowSkylineOperator& expected,
                                 const WindowSkylineOperator& actual,
                                 double value_tol = 1e-7,
                                 double boundary_tol = 1e-9) {
  const std::vector<SkylineMember> want = expected.Candidates();
  const std::vector<SkylineMember> got = actual.Candidates();
  ASSERT_EQ(SeqsOf(want), SeqsOf(got)) << "candidate sets differ";
  const double q = expected.threshold();
  for (size_t i = 0; i < want.size(); ++i) {
    const SkylineMember& w = want[i];
    const SkylineMember& g = got[i];
    EXPECT_NEAR(w.pnew, g.pnew, value_tol * (1.0 + w.pnew))
        << "seq " << w.element.seq;
    EXPECT_NEAR(w.pold, g.pold, value_tol * (1.0 + w.pold))
        << "seq " << w.element.seq;
    EXPECT_NEAR(w.psky, g.psky, value_tol * (1.0 + w.psky))
        << "seq " << w.element.seq;
    if (w.in_skyline != g.in_skyline) {
      EXPECT_LT(std::abs(w.psky - q), boundary_tol)
          << "skyline membership differs away from the boundary, seq "
          << w.element.seq << " psky " << w.psky;
    }
  }
  EXPECT_EQ(expected.candidate_count(), actual.candidate_count());
}

}  // namespace psky

#endif  // PSKY_TESTS_TEST_UTIL_H_
