// Checkpoint format: encode/decode round trips, corruption rejection,
// atomic file persistence, directory management, and the replay-restore
// property against both the definitional oracle and a continuously-run
// operator.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/build_info.h"
#include "base/random.h"
#include "core/checkpoint.h"
#include "core/snapshot.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      (std::string("psky_ckpt_") + tag + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

CheckpointState MakeState(int dims, size_t n, uint64_t seed) {
  StreamConfig cfg;
  cfg.dims = dims;
  cfg.seed = seed;
  StreamGenerator gen(cfg);
  CheckpointState state;
  state.dims = dims;
  state.q = 0.3;
  state.window_kind = WindowKind::kCount;
  state.window_capacity = n;
  state.elements_consumed = 12345;
  state.lines_consumed = 23456;
  state.next_seq = 34567;
  state.bad_lines_skipped = 7;
  state.probs_clamped = 3;
  state.ooo_dropped = 1;
  state.window = gen.Take(n);
  return state;
}

void ExpectStatesEqual(const CheckpointState& a, const CheckpointState& b) {
  EXPECT_EQ(a.dims, b.dims);
  EXPECT_EQ(a.q, b.q);
  EXPECT_EQ(a.window_kind, b.window_kind);
  EXPECT_EQ(a.window_capacity, b.window_capacity);
  EXPECT_EQ(a.time_span, b.time_span);
  EXPECT_EQ(a.elements_consumed, b.elements_consumed);
  EXPECT_EQ(a.lines_consumed, b.lines_consumed);
  EXPECT_EQ(a.next_seq, b.next_seq);
  EXPECT_EQ(a.bad_lines_skipped, b.bad_lines_skipped);
  EXPECT_EQ(a.probs_clamped, b.probs_clamped);
  EXPECT_EQ(a.ooo_dropped, b.ooo_dropped);
  ASSERT_EQ(a.window.size(), b.window.size());
  for (size_t i = 0; i < a.window.size(); ++i) {
    EXPECT_EQ(a.window[i].seq, b.window[i].seq);
    // Bitwise double equality: the format stores raw IEEE-754 bits.
    EXPECT_EQ(a.window[i].prob, b.window[i].prob);
    EXPECT_EQ(a.window[i].time, b.window[i].time);
    EXPECT_EQ(a.window[i].pos, b.window[i].pos);
  }
}

TEST(CheckpointFormat, EncodeDecodeRoundTrip) {
  const CheckpointState state = MakeState(3, 200, 11);
  const std::string bytes = EncodeCheckpoint(state);
  CheckpointState decoded;
  std::string error;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &decoded, &error)) << error;
  ExpectStatesEqual(state, decoded);
}

TEST(CheckpointFormat, TimeWindowRoundTrip) {
  CheckpointState state = MakeState(2, 50, 13);
  state.window_kind = WindowKind::kTime;
  state.window_capacity = 0;
  state.time_span = 2.5;
  const std::string bytes = EncodeCheckpoint(state);
  CheckpointState decoded;
  std::string error;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &decoded, &error)) << error;
  ExpectStatesEqual(state, decoded);
}

TEST(CheckpointFormat, EmptyWindowRoundTrip) {
  CheckpointState state;
  state.dims = 5;
  state.q = 1.0;
  const std::string bytes = EncodeCheckpoint(state);
  CheckpointState decoded;
  std::string error;
  ASSERT_TRUE(DecodeCheckpoint(bytes, &decoded, &error)) << error;
  ExpectStatesEqual(state, decoded);
}

TEST(CheckpointFormat, RejectsTruncationAtEveryBoundary) {
  const std::string bytes = EncodeCheckpoint(MakeState(3, 20, 17));
  CheckpointState decoded;
  // Chop at a spread of prefix lengths, including inside the header and
  // inside the element section: every prefix must fail cleanly.
  for (size_t len : {size_t{0}, size_t{7}, size_t{12}, size_t{23}, size_t{24},
                     size_t{40}, bytes.size() / 2, bytes.size() - 1}) {
    std::string error;
    EXPECT_FALSE(
        DecodeCheckpoint(std::string_view(bytes).substr(0, len), &decoded,
                         &error))
        << "prefix of " << len << " bytes decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CheckpointFormat, RejectsBitFlipsInHeaderAndBody) {
  const std::string bytes = EncodeCheckpoint(MakeState(2, 30, 19));
  CheckpointState decoded;
  // One flipped bit in: magic, version, CRC field, payload size, the fixed
  // payload fields, and deep in the element section.
  for (size_t pos : {size_t{0}, size_t{9}, size_t{13}, size_t{17}, size_t{30},
                     bytes.size() - 3}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x10);
    std::string error;
    EXPECT_FALSE(DecodeCheckpoint(corrupted, &decoded, &error))
        << "bit flip at " << pos << " decoded";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CheckpointFormat, RejectsTrailingGarbage) {
  std::string bytes = EncodeCheckpoint(MakeState(2, 5, 23));
  bytes += "extra";
  CheckpointState decoded;
  std::string error;
  EXPECT_FALSE(DecodeCheckpoint(bytes, &decoded, &error));
}

TEST(CheckpointFile, WriteReadRoundTripIsAtomic) {
  const std::string dir = TempDir("atomic");
  const std::string path = dir + "/" + CheckpointFileName(42);
  const CheckpointState state = MakeState(3, 100, 29);
  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(path, state, &error)) << error;
  EXPECT_FALSE(fs::exists(path + ".tmp")) << "temp file must be renamed away";
  CheckpointState loaded;
  ASSERT_TRUE(ReadCheckpointFile(path, &loaded, &error)) << error;
  ExpectStatesEqual(state, loaded);
}

TEST(CheckpointFile, MissingFileIsAnErrorNotACrash) {
  CheckpointState loaded;
  std::string error;
  EXPECT_FALSE(ReadCheckpointFile("/nonexistent/dir/x.psky", &loaded, &error));
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointDir, LatestWinsAndCorruptFilesAreSkipped) {
  const std::string dir = TempDir("latest");
  std::string error;
  CheckpointState s100 = MakeState(2, 10, 31);
  s100.elements_consumed = 100;
  CheckpointState s200 = MakeState(2, 10, 37);
  s200.elements_consumed = 200;
  ASSERT_TRUE(WriteCheckpointFile(dir + "/" + CheckpointFileName(100), s100,
                                  &error));
  ASSERT_TRUE(WriteCheckpointFile(dir + "/" + CheckpointFileName(200), s200,
                                  &error));

  CheckpointState loaded;
  ASSERT_TRUE(LoadLatestCheckpoint(dir, &loaded, &error)) << error;
  EXPECT_EQ(loaded.elements_consumed, 200u);

  // Corrupt the newest: the loader must fall back to the older one and
  // surface a diagnostic for the skipped file.
  {
    std::ofstream f(dir + "/" + CheckpointFileName(200),
                    std::ios::binary | std::ios::trunc);
    f << "garbage";
  }
  ASSERT_TRUE(LoadLatestCheckpoint(dir, &loaded, &error));
  EXPECT_EQ(loaded.elements_consumed, 100u);
  EXPECT_FALSE(error.empty()) << "skipped-corrupt warning expected";
}

TEST(CheckpointDir, EmptyDirFailsCleanly) {
  const std::string dir = TempDir("empty");
  CheckpointState loaded;
  std::string error;
  EXPECT_FALSE(LoadLatestCheckpoint(dir, &loaded, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(LoadLatestCheckpoint("/nonexistent/dir", &loaded, &error));
}

TEST(CheckpointDir, PruneKeepsNewestAndClearsTemps) {
  const std::string dir = TempDir("prune");
  std::string error;
  for (uint64_t n : {100u, 200u, 300u, 400u}) {
    CheckpointState s = MakeState(2, 5, n);
    s.elements_consumed = n;
    ASSERT_TRUE(
        WriteCheckpointFile(dir + "/" + CheckpointFileName(n), s, &error));
  }
  {
    std::ofstream f(dir + "/" + CheckpointFileName(50) + ".tmp");
    f << "interrupted";
  }
  PruneCheckpoints(dir, 2);
  const auto files = ListCheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  CheckpointState loaded;
  ASSERT_TRUE(LoadLatestCheckpoint(dir, &loaded, &error));
  EXPECT_EQ(loaded.elements_consumed, 400u);
  size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 2u) << "temp leftovers must be pruned";
}

// --- replay-restore property --------------------------------------------

std::set<uint64_t> SeqSet(const std::vector<SkylineMember>& ms) {
  std::set<uint64_t> out;
  for (const auto& m : ms) out.insert(m.element.seq);
  return out;
}

TEST(CheckpointReplay, RandomStreamsMatchOracleAndContinuousOperator) {
  // Property test: at random cut points of random streams, a snapshot of
  // the window replayed into a fresh operator must agree with (a) the
  // definitional oracle on the window contents and (b) the continuously
  // maintained operator — same seqs, same P_sky values.
  Rng rng(20260806);
  const SpatialDistribution kDists[] = {SpatialDistribution::kAntiCorrelated,
                                        SpatialDistribution::kIndependent,
                                        SpatialDistribution::kCorrelated};
  for (int round = 0; round < 12; ++round) {
    StreamConfig cfg;
    cfg.dims = 2 + static_cast<int>(rng.NextBounded(3));
    cfg.spatial = kDists[rng.NextBounded(3)];
    cfg.seed = rng.Next();
    const size_t window_size = 50 + rng.NextBounded(150);
    const size_t cut = 1 + rng.NextBounded(4 * window_size);
    const double q = 0.1 + 0.2 * static_cast<double>(rng.NextBounded(4));

    StreamGenerator gen(cfg);
    SskyOperator continuous(cfg.dims, q);
    CountWindow window(window_size);
    for (size_t i = 0; i < cut; ++i) {
      const UncertainElement e = gen.Next();
      if (auto expired = window.Push(e)) continuous.Expire(*expired);
      continuous.Insert(e);
    }

    CheckpointState state;
    state.dims = cfg.dims;
    state.q = q;
    state.window_capacity = window_size;
    state.elements_consumed = cut;
    state.window = window.Snapshot();

    // Round-trip through the wire format before replaying, so the test
    // also proves serialization loses nothing that matters.
    CheckpointState restored;
    std::string error;
    ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(state), &restored, &error))
        << error;

    SskyOperator replayed(cfg.dims, q);
    ReplayWindow(restored, &replayed);

    const auto snap = window.Snapshot();
    std::set<uint64_t> oracle_sky;
    for (size_t idx : QSkylineIndices(snap, q)) oracle_sky.insert(snap[idx].seq);
    std::set<uint64_t> oracle_cand;
    for (size_t idx : CandidateSetIndices(snap, q)) {
      oracle_cand.insert(snap[idx].seq);
    }

    const auto cont_sky = continuous.Skyline();
    const auto repl_sky = replayed.Skyline();
    ASSERT_EQ(SeqSet(repl_sky), oracle_sky)
        << "round " << round << ": replayed skyline diverges from oracle";
    ASSERT_EQ(SeqSet(repl_sky), SeqSet(cont_sky))
        << "round " << round
        << ": replayed skyline diverges from continuous operator";

    const auto cont_cand = continuous.Candidates();
    const auto repl_cand = replayed.Candidates();
    ASSERT_EQ(SeqSet(repl_cand), oracle_cand) << "round " << round;
    ASSERT_EQ(repl_cand.size(), cont_cand.size());
    for (size_t i = 0; i < repl_cand.size(); ++i) {
      ASSERT_EQ(repl_cand[i].element.seq, cont_cand[i].element.seq);
      ASSERT_NEAR(repl_cand[i].psky, cont_cand[i].psky, 1e-12)
          << "round " << round << " seq " << repl_cand[i].element.seq;
    }
    replayed.tree().CheckInvariants(true);
  }
}

TEST(CheckpointFormat, ProducerStampIsEmbeddedAndRecovered) {
  const CheckpointState state = MakeState(2, 5, 21);
  CheckpointState got;
  std::string error;
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(state), &got, &error))
      << error;
  // An empty producer is stamped with this binary's build info on encode.
  EXPECT_EQ(got.producer, BuildInfoString());
  EXPECT_NE(got.producer.find("psky "), std::string::npos);

  // A pre-set producer (a re-encoded foreign snapshot) is preserved.
  CheckpointState foreign = MakeState(2, 5, 21);
  foreign.producer = "psky deadbeef0123 (Release)";
  ASSERT_TRUE(DecodeCheckpoint(EncodeCheckpoint(foreign), &got, &error))
      << error;
  EXPECT_EQ(got.producer, foreign.producer);
}

TEST(CheckpointDir, StaleTempsAreSweptOnWriteAndOnDemand) {
  const std::string dir = TempDir("stale_tmp");
  // Wreckage from two hypothetical earlier crashes, plus one unrelated
  // file that must survive the sweep.
  { std::ofstream f(dir + "/" + CheckpointFileName(10) + ".tmp"); f << "x"; }
  { std::ofstream f(dir + "/" + CheckpointFileName(20) + ".tmp"); f << "y"; }
  { std::ofstream f(dir + "/README.txt"); f << "keep me"; }

  std::string error;
  ASSERT_TRUE(WriteCheckpointFile(dir + "/" + CheckpointFileName(30),
                                  MakeState(2, 5, 22), &error))
      << error;

  size_t temps = 0, others = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".tmp") ++temps;
    if (entry.path().filename() == "README.txt") ++others;
  }
  EXPECT_EQ(temps, 0u) << "pre-seeded stale temps must be removed";
  EXPECT_EQ(others, 1u);
  EXPECT_TRUE(fs::exists(dir + "/" + CheckpointFileName(30)));

  // Direct sweep: counts what it removes, leaves everything else alone.
  { std::ofstream f(dir + "/orphan.tmp"); f << "z"; }
  EXPECT_EQ(RemoveStaleCheckpointTemps(dir), 1u);
  EXPECT_EQ(RemoveStaleCheckpointTemps(dir), 0u);
  EXPECT_TRUE(fs::exists(dir + "/README.txt"));

  // A directory that does not exist is a no-op, not an error.
  EXPECT_EQ(RemoveStaleCheckpointTemps(dir + "/nope"), 0u);
  fs::remove_all(dir);
}

// The streamed writer must produce the same bytes as the materialized
// writer for the same logical state — resumability cannot depend on
// which code path wrote the file.
TEST(CheckpointStreamed, WriteIsByteIdenticalToMaterializedWrite) {
  const std::string dir = TempDir("stream_ident");
  const CheckpointState state = MakeState(3, 200, 61);
  std::string error;
  const std::string mat_path = dir + "/mat.psky";
  ASSERT_TRUE(WriteCheckpointFile(mat_path, state, &error)) << error;

  CheckpointState header = state;
  header.window.clear();  // the streamed writer must ignore this field
  size_t cursor = 0;
  const auto source = [&](UncertainElement* e) {
    if (cursor >= state.window.size()) return false;
    *e = state.window[cursor++];
    return true;
  };
  const std::string str_path = dir + "/streamed.psky";
  int saved_errno = 0;
  ASSERT_TRUE(WriteCheckpointFileStreamed(str_path, header,
                                          state.window.size(), source,
                                          &error, &saved_errno))
      << error;

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string mat_bytes = slurp(mat_path);
  ASSERT_FALSE(mat_bytes.empty());
  EXPECT_EQ(mat_bytes, slurp(str_path));
  fs::remove_all(dir);
}

TEST(CheckpointStreamed, ReadRoundTripsWithoutMaterializing) {
  const std::string dir = TempDir("stream_read");
  const CheckpointState state = MakeState(2, 150, 67);
  std::string error;
  const std::string path = dir + "/" + CheckpointFileName(1);
  ASSERT_TRUE(WriteCheckpointFile(path, state, &error)) << error;

  CheckpointState header;
  std::vector<UncertainElement> collected;
  ASSERT_TRUE(ReadCheckpointFileStreamed(
      path, &header,
      [&](const UncertainElement& e) { collected.push_back(e); }, &error))
      << error;
  EXPECT_TRUE(header.window.empty());
  CheckpointState got = header;
  got.window = std::move(collected);
  ExpectStatesEqual(state, got);
  fs::remove_all(dir);
}

// Corruption anywhere in the file must be detected before any element
// reaches the sink: a half-delivered window would rebuild wrong operator
// state on resume.
TEST(CheckpointStreamed, CorruptionDeliversNothingToTheSink) {
  const std::string dir = TempDir("stream_corrupt");
  const CheckpointState state = MakeState(2, 80, 71);
  std::string error;
  const std::string path = dir + "/" + CheckpointFileName(1);
  ASSERT_TRUE(WriteCheckpointFile(path, state, &error)) << error;

  // Flip one bit near the end of the payload — past where a single-pass
  // reader would already have delivered most elements.
  const auto size = fs::file_size(path);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size - 9));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    f.seekp(static_cast<std::streamoff>(size - 9));
    f.write(&byte, 1);
  }
  CheckpointState header;
  size_t delivered = 0;
  EXPECT_FALSE(ReadCheckpointFileStreamed(
      path, &header, [&](const UncertainElement&) { ++delivered; }, &error));
  EXPECT_EQ(delivered, 0u) << "sink ran before CRC validation";
  EXPECT_NE(error.find("CRC"), std::string::npos) << error;
  fs::remove_all(dir);
}

// A source that ends before yielding the promised element count is an
// error, and the target file must not appear (temp-and-rename).
TEST(CheckpointStreamed, SourceEndingEarlyFailsWithoutATarget) {
  const std::string dir = TempDir("stream_short");
  const CheckpointState state = MakeState(2, 20, 73);
  CheckpointState header = state;
  header.window.clear();
  size_t cursor = 0;
  const auto source = [&](UncertainElement* e) {
    if (cursor >= 10) return false;  // promised 20, deliver 10
    *e = state.window[cursor++];
    return true;
  };
  const std::string path = dir + "/" + CheckpointFileName(1);
  std::string error;
  int saved_errno = 0;
  EXPECT_FALSE(WriteCheckpointFileStreamed(path, header, 20, source, &error,
                                           &saved_errno));
  EXPECT_NE(error.find("ended early"), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(path));
  fs::remove_all(dir);
}

TEST(CheckpointDir, EnsureCreatesMissingDirsAndRejectsFiles) {
  const std::string base = TempDir("ensure_dir");
  std::string error;

  // Nested path created in one call; idempotent on the second.
  const std::string nested = base + "/a/b";
  EXPECT_TRUE(EnsureCheckpointDir(nested, &error)) << error;
  EXPECT_TRUE(fs::is_directory(nested));
  EXPECT_TRUE(EnsureCheckpointDir(nested, &error)) << error;

  // A plain file under the requested name is refused, not clobbered.
  const std::string file_path = base + "/not_a_dir";
  { std::ofstream f(file_path); f << "x"; }
  EXPECT_FALSE(EnsureCheckpointDir(file_path, &error));
  EXPECT_NE(error.find("not a directory"), std::string::npos) << error;
  EXPECT_TRUE(fs::is_regular_file(file_path));
  fs::remove_all(base);
}

}  // namespace
}  // namespace psky
