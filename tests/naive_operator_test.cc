// Validates the naive operator against the definitional snapshot oracle at
// every stream step, and checks the paper's worked Examples 2 and 3 plus
// the structural lemmas of Section III-A.

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/naive_operator.h"
#include "core/possible_worlds.h"
#include "core/snapshot.h"
#include "geom/dominance.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "test_util.h"

namespace psky {
namespace {

std::vector<UncertainElement> PaperExample() {
  return {
      MakeElement({3.0, 4.0}, 0.9, 1),  // a1
      MakeElement({2.0, 2.0}, 0.4, 2),  // a2
      MakeElement({1.0, 3.0}, 0.3, 3),  // a3
      MakeElement({4.0, 5.0}, 0.9, 4),  // a4
      MakeElement({3.5, 4.5}, 0.1, 5),  // a5
  };
}

std::set<uint64_t> SeqSet(const std::vector<SkylineMember>& ms) {
  std::set<uint64_t> out;
  for (const auto& m : ms) out.insert(m.element.seq);
  return out;
}

// Runs the operator over a stream with window size N and, at every step,
// compares S_{N,q} and SKY_{N,q} against the snapshot oracle.
void ValidateAgainstSnapshots(WindowSkylineOperator* op, size_t window_size,
                              const std::vector<UncertainElement>& stream) {
  StreamProcessor proc(op, window_size);
  for (const UncertainElement& e : stream) {
    proc.Step(e);
    const std::vector<UncertainElement> window = proc.window().Snapshot();
    const double q = op->threshold();

    std::set<uint64_t> want_cand;
    for (size_t idx : CandidateSetIndices(window, q)) {
      want_cand.insert(window[idx].seq);
    }
    std::set<uint64_t> want_sky;
    for (size_t idx : QSkylineIndices(window, q)) {
      want_sky.insert(window[idx].seq);
    }
    ASSERT_EQ(want_cand, SeqSet(op->Candidates()))
        << "candidate set mismatch at seq " << e.seq;
    ASSERT_EQ(want_sky, SeqSet(op->Skyline()))
        << "skyline mismatch at seq " << e.seq;
    ASSERT_EQ(op->candidate_count(), want_cand.size());
    ASSERT_EQ(op->skyline_count(), want_sky.size());

    // Reported probabilities must match the definitional values computed
    // over the candidate set.
    std::vector<UncertainElement> restricted;
    for (size_t idx : CandidateSetIndices(window, q)) {
      restricted.push_back(window[idx]);
    }
    for (const SkylineMember& m : op->Candidates()) {
      const auto it = std::find_if(
          restricted.begin(), restricted.end(),
          [&m](const UncertainElement& w) { return w.seq == m.element.seq; });
      ASSERT_TRUE(it != restricted.end());
      const size_t ridx = static_cast<size_t>(it - restricted.begin());
      EXPECT_NEAR(m.pnew, PnewOf(restricted, ridx), 1e-9);
      EXPECT_NEAR(m.pold, PoldOf(restricted, ridx), 1e-9);
      EXPECT_NEAR(m.psky, SkylineProbabilityByFormula(restricted, ridx),
                  1e-9);
    }
  }
}

TEST(NaiveOperator, PaperExample2RestrictedProbabilities) {
  // Window = {a1..a5}, N = 5, q = 0.5. S = {a2,a3,a4,a5};
  // P_old(a4)|S = 0.6 * 0.7 = 0.42 (a1 is excluded from S).
  NaiveSkylineOperator op(2, 0.5);
  for (const auto& e : PaperExample()) op.Insert(e);
  const auto cands = op.Candidates();
  EXPECT_EQ(SeqSet(cands), (std::set<uint64_t>{2, 3, 4, 5}));
  for (const auto& m : cands) {
    if (m.element.seq == 4) {
      EXPECT_NEAR(m.pnew, 0.9, 1e-9);
      EXPECT_NEAR(m.pold, 0.42, 1e-9);
    }
  }
}

TEST(NaiveOperator, PaperExample3WindowProgression) {
  // N = 4, q = 0.5 over a1..a6 (a6 = (0.5, 10) does not dominate a4).
  auto stream = PaperExample();
  stream.push_back(MakeElement({0.5, 10.0}, 0.5, 6));  // a6

  NaiveSkylineOperator op(2, 0.5);
  StreamProcessor proc(&op, 4);

  // First window: a1..a4. S = {a2,a3,a4}; P_sky|S(a4) = 0.9*0.42 = 0.378.
  for (int i = 0; i < 4; ++i) proc.Step(stream[static_cast<size_t>(i)]);
  EXPECT_EQ(SeqSet(op.Candidates()), (std::set<uint64_t>{2, 3, 4}));
  for (const auto& m : op.Candidates()) {
    if (m.element.seq == 4) {
      EXPECT_NEAR(m.psky, 0.378, 1e-9);
    }
  }
  // No element reaches q = 0.5 in this window (max is a4's 0.378).
  EXPECT_TRUE(op.Skyline().empty());

  // Second window: a2..a5. P_sky(a4) = 0.9*0.42*0.9 = 0.3402 < 0.5;
  // P_sky(a3) = 0.3 < 0.5.
  proc.Step(stream[4]);
  EXPECT_EQ(SeqSet(op.Candidates()), (std::set<uint64_t>{2, 3, 4, 5}));
  for (const auto& m : op.Candidates()) {
    if (m.element.seq == 4) {
      EXPECT_NEAR(m.psky, 0.3402, 1e-9);
    }
    if (m.element.seq == 3) {
      EXPECT_NEAR(m.psky, 0.3, 1e-9);
    }
  }

  // Third window: a3..a6. P_sky(a4) = 0.9*0.7*0.9 = 0.567 >= 0.5: a4 is
  // now a skyline point (Theorem 5's "may become a skyline point").
  proc.Step(stream[5]);
  bool found_a4 = false;
  for (const auto& m : op.Skyline()) {
    if (m.element.seq == 4) {
      found_a4 = true;
      EXPECT_NEAR(m.psky, 0.567, 1e-9);
    }
  }
  EXPECT_TRUE(found_a4);
}

TEST(NaiveOperator, MatchesSnapshotsOnRandomStreams) {
  for (auto dist : {SpatialDistribution::kIndependent,
                    SpatialDistribution::kAntiCorrelated}) {
    for (int dims : {2, 3}) {
      StreamConfig cfg;
      cfg.dims = dims;
      cfg.spatial = dist;
      cfg.seed = 100 + static_cast<uint64_t>(dims);
      StreamGenerator gen(cfg);
      NaiveSkylineOperator op(dims, 0.3);
      ValidateAgainstSnapshots(&op, 25, gen.Take(150));
    }
  }
}

TEST(NaiveOperator, MatchesSnapshotsAtHighThreshold) {
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 55;
  StreamGenerator gen(cfg);
  NaiveSkylineOperator op(2, 0.9);
  ValidateAgainstSnapshots(&op, 20, gen.Take(120));
}

TEST(NaiveOperator, Lemma2CandidateSetClosedUnderNewerDominators) {
  // For every candidate a, every newer dominator of a is also a candidate.
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 77;
  StreamGenerator gen(cfg);
  NaiveSkylineOperator op(3, 0.4);
  StreamProcessor proc(&op, 40);
  for (const auto& e : gen.Take(200)) {
    proc.Step(e);
    const auto cands = op.Candidates();
    const auto window = proc.window().Snapshot();
    const auto in_cands = SeqSet(cands);
    for (const auto& m : cands) {
      for (const auto& w : window) {
        if (w.seq > m.element.seq && Dominates(w.pos, m.element.pos)) {
          EXPECT_TRUE(in_cands.count(w.seq))
              << "newer dominator " << w.seq << " of candidate "
              << m.element.seq << " missing from S";
        }
      }
    }
  }
}

TEST(NaiveOperator, PnewMonotoneNonIncreasingPerElement) {
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 31;
  StreamGenerator gen(cfg);
  NaiveSkylineOperator op(2, 0.2);
  StreamProcessor proc(&op, 30);
  std::unordered_map<uint64_t, double> last_pnew;
  for (const auto& e : gen.Take(200)) {
    proc.Step(e);
    for (const auto& m : op.Candidates()) {
      auto it = last_pnew.find(m.element.seq);
      if (it != last_pnew.end()) {
        EXPECT_LE(m.pnew, it->second + 1e-12);
        it->second = m.pnew;
      } else {
        last_pnew.emplace(m.element.seq, m.pnew);
      }
    }
  }
}

TEST(NaiveOperator, ExpireOfEvictedElementIsNoOp) {
  // a1 gets evicted by dominators; expiring it later must not disturb
  // restricted probabilities.
  NaiveSkylineOperator op(2, 0.5);
  op.Insert(MakeElement({5.0, 5.0}, 0.9, 1));
  op.Insert(MakeElement({1.0, 1.0}, 0.9, 2));  // dominates and evicts seq 1
  EXPECT_EQ(op.candidate_count(), 1u);
  op.Expire(MakeElement({5.0, 5.0}, 0.9, 1));
  EXPECT_EQ(op.candidate_count(), 1u);
  const auto cands = op.Candidates();
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_NEAR(cands[0].psky, 0.9, 1e-12);
}

TEST(NaiveOperator, CertainElementZeroesDominatedPsky) {
  NaiveSkylineOperator op(2, 0.3);
  op.Insert(MakeElement({2.0, 2.0}, 0.8, 1));
  op.Insert(MakeElement({1.0, 1.0}, 1.0, 2));  // certain dominator
  // seq 1 is evicted: P_new = (1 - ~1.0) ~ 0 < 0.3.
  EXPECT_EQ(op.candidate_count(), 1u);
  EXPECT_EQ(op.Candidates()[0].element.seq, 2u);
}

}  // namespace
}  // namespace psky
