// Multi-instance objects (Section VI, Pei et al. semantics): the operator
// must agree with the definitional evaluator, and Monte-Carlo
// discretization must converge for continuous objects.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "core/object_skyline.h"

namespace psky {
namespace {

UncertainObject MakeObject(uint64_t id,
                           std::vector<std::vector<double>> instances) {
  UncertainObject obj;
  obj.id = id;
  for (const auto& coords : instances) {
    Point p(static_cast<int>(coords.size()));
    for (size_t i = 0; i < coords.size(); ++i) {
      p[static_cast<int>(i)] = coords[i];
    }
    obj.instances.push_back(p);
  }
  return obj;
}

TEST(ObjectOracle, SingleObjectIsCertainSkyline) {
  std::vector<UncertainObject> w = {MakeObject(1, {{0.5, 0.5}, {0.7, 0.2}})};
  EXPECT_DOUBLE_EQ(ObjectSkylineProbability(w, 0), 1.0);
}

TEST(ObjectOracle, HandComputedTwoObjects) {
  // U has instances u1=(1,1), u2=(5,5); V has v1=(2,2), v2=(9,9).
  // For u1: no V instance dominates -> factor 1.
  // For u2: v1 dominates (1 of 2) -> factor 1 - 1/2 = 0.5.
  // P_sky(U) = (1 + 0.5) / 2 = 0.75.
  std::vector<UncertainObject> w = {
      MakeObject(1, {{1.0, 1.0}, {5.0, 5.0}}),
      MakeObject(2, {{2.0, 2.0}, {9.0, 9.0}}),
  };
  EXPECT_DOUBLE_EQ(ObjectSkylineProbability(w, 0), 0.75);
  // For v1=(2,2): u1 dominates (1 of 2) -> 0.5; v2: both u dominate -> 0.
  // P_sky(V) = (0.5 + 0) / 2 = 0.25.
  EXPECT_DOUBLE_EQ(ObjectSkylineProbability(w, 1), 0.25);
}

TEST(ObjectOperator, MatchesOracleOnRandomWindows) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(2));
    std::vector<UncertainObject> window;
    ObjectSkylineOperator op(d, 0.3);
    const size_t n_objects = 3 + rng.NextBounded(8);
    for (uint64_t id = 0; id < n_objects; ++id) {
      UncertainObject obj;
      obj.id = id + 1;
      const size_t m = 1 + rng.NextBounded(5);
      for (size_t i = 0; i < m; ++i) {
        Point p(d);
        for (int j = 0; j < d; ++j) p[j] = rng.NextDouble();
        obj.instances.push_back(p);
      }
      window.push_back(obj);
      op.Insert(obj);
    }
    for (size_t i = 0; i < window.size(); ++i) {
      EXPECT_NEAR(op.SkylineProbability(window[i].id),
                  ObjectSkylineProbability(window, i), 1e-12);
    }
    // Skyline = objects whose oracle probability clears the threshold.
    std::vector<uint64_t> want;
    for (size_t i = 0; i < window.size(); ++i) {
      if (ObjectSkylineProbability(window, i) >= 0.3) {
        want.push_back(window[i].id);
      }
    }
    EXPECT_EQ(op.Skyline(), want);
  }
}

TEST(ObjectOperator, ExpireRestoresProbabilities) {
  ObjectSkylineOperator op(2, 0.3);
  op.Insert(MakeObject(1, {{5.0, 5.0}}));
  EXPECT_DOUBLE_EQ(op.SkylineProbability(1), 1.0);
  op.Insert(MakeObject(2, {{1.0, 1.0}}));  // dominates object 1 certainly
  EXPECT_DOUBLE_EQ(op.SkylineProbability(1), 0.0);
  op.Expire(2);
  EXPECT_DOUBLE_EQ(op.SkylineProbability(1), 1.0);
  EXPECT_EQ(op.object_count(), 1u);
  op.Expire(99);  // unknown id: no-op
  EXPECT_EQ(op.object_count(), 1u);
}

TEST(ObjectOperator, AtomicExpiryRemovesAllInstances) {
  ObjectSkylineOperator op(2, 0.3);
  UncertainObject big;
  big.id = 7;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Point p(2);
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    big.instances.push_back(p);
  }
  op.Insert(big);
  op.Insert(MakeObject(8, {{2.0, 2.0}}));
  op.Expire(7);
  EXPECT_EQ(op.object_count(), 1u);
  EXPECT_DOUBLE_EQ(op.SkylineProbability(8), 1.0);
}

TEST(ObjectOperator, SkylineProbabilityOfAbsentObjectIsZero) {
  ObjectSkylineOperator op(2, 0.3);
  EXPECT_DOUBLE_EQ(op.SkylineProbability(1), 0.0);
}

TEST(MonteCarlo, DiscretizationConvergesForGaussianObjects) {
  // Two Gaussian objects whose centers are ordered: with tight spread the
  // dominated one's skyline probability must approach the instance-count
  // fraction predicted by the overlap; with far-apart centers it tends to
  // 0 and the dominating one's to 1.
  Rng rng(21);
  auto gaussian_at = [](double cx, double cy, double sd) {
    return [cx, cy, sd](Rng& r) {
      Point p(2);
      p[0] = cx + sd * r.NextGaussian();
      p[1] = cy + sd * r.NextGaussian();
      return p;
    };
  };
  const UncertainObject front =
      DiscretizeByMonteCarlo(1, 400, rng, gaussian_at(0.2, 0.2, 0.02));
  const UncertainObject back =
      DiscretizeByMonteCarlo(2, 400, rng, gaussian_at(0.8, 0.8, 0.02));
  EXPECT_EQ(front.instances.size(), 400u);

  std::vector<UncertainObject> w = {front, back};
  EXPECT_GT(ObjectSkylineProbability(w, 0), 0.999);
  EXPECT_LT(ObjectSkylineProbability(w, 1), 1e-3);

  ObjectSkylineOperator op(2, 0.5);
  op.Insert(front);
  op.Insert(back);
  EXPECT_EQ(op.Skyline(), std::vector<uint64_t>{1});
}

}  // namespace
}  // namespace psky
