// Sharded-vs-sequential equivalence suite.
//
// The contract under test (see core/shard_engine.h): the merged global
// skyline contains exactly the same members, by arrival sequence, as the
// sequential SSKY operator run over the same stream, and every reported
// probability agrees within summation-order rounding. The sequential
// side accumulates P_new/P_old lazily in arrival order while the merge
// recomputes them canonically per shard, so doubles are compared within
// 1e-9 — far above ulp noise, far below any honest probability gap —
// while membership and ordering are compared exactly. Window snapshots,
// by contrast, pass elements through untouched and must be
// byte-identical (checkpoint interchangeability).

#include "core/shard_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "core/checkpoint.h"
#include "geom/dominance.h"
#include "core/operator.h"
#include "core/ssky_operator.h"
#include "geom/cell_grid.h"
#include "stream/generator.h"
#include "stream/window.h"

namespace psky {
namespace {

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kStream = 6000;
constexpr size_t kWindow = 2000;
constexpr double kTol = 1e-9;

std::vector<UncertainElement> MakeStream(SpatialDistribution spatial,
                                         uint64_t seed = 77) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = spatial;
  cfg.seed = seed;
  return StreamGenerator(cfg).Take(kStream);
}

void ExpectSkylineEquivalent(const std::vector<SkylineMember>& seq,
                             const std::vector<SkylineMember>& sharded) {
  ASSERT_EQ(seq.size(), sharded.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].element.seq, sharded[i].element.seq);
    EXPECT_NEAR(seq[i].pnew, sharded[i].pnew, kTol);
    EXPECT_NEAR(seq[i].pold, sharded[i].pold, kTol);
    EXPECT_NEAR(seq[i].psky, sharded[i].psky, kTol);
    EXPECT_TRUE(sharded[i].in_skyline);
  }
}

void ExpectWindowsIdentical(const std::vector<UncertainElement>& a,
                            const std::vector<UncertainElement>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, b[i].seq);
    EXPECT_EQ(a[i].pos, b[i].pos);
    // Bit-identity: elements pass through the router untouched.
    EXPECT_EQ(a[i].prob, b[i].prob);
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

ShardEngine::Options CountOptions(int shards,
                                  ShardStrategy strategy =
                                      ShardStrategy::kGrid) {
  ShardEngine::Options opts;
  opts.dims = kDims;
  opts.q = kQ;
  opts.shards = shards;
  opts.strategy = strategy;
  opts.window_capacity = kWindow;
  return opts;
}

// Runs the stream through a sequential StreamProcessor and a sharded
// engine side by side, comparing skylines at several mid-stream barriers
// (window filling, full, steady state) and at the end.
void RunCountEquivalence(SpatialDistribution spatial, int shards,
                         ShardStrategy strategy) {
  const std::vector<UncertainElement> stream = MakeStream(spatial);
  SskyOperator seq_op(kDims, kQ);
  StreamProcessor seq(&seq_op, kWindow);
  ShardEngine engine(CountOptions(shards, strategy));

  const size_t checkpoints[] = {kWindow / 2, kWindow, kStream / 2, kStream};
  size_t next = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    seq.Step(stream[i]);
    ASSERT_TRUE(engine.Route(stream[i]));
    if (next < std::size(checkpoints) && i + 1 == checkpoints[next]) {
      ++next;
      ExpectSkylineEquivalent(seq_op.Skyline(), engine.GlobalSkyline());
      ExpectWindowsIdentical(seq.window().Snapshot(),
                             engine.WindowSnapshot());
    }
  }
  ASSERT_EQ(next, std::size(checkpoints));
}

TEST(ShardEquivalence, AntiCorrelatedGrid) {
  RunCountEquivalence(SpatialDistribution::kAntiCorrelated, 4,
                      ShardStrategy::kGrid);
}

TEST(ShardEquivalence, IndependentGrid) {
  RunCountEquivalence(SpatialDistribution::kIndependent, 3,
                      ShardStrategy::kGrid);
}

TEST(ShardEquivalence, CorrelatedGrid) {
  RunCountEquivalence(SpatialDistribution::kCorrelated, 2,
                      ShardStrategy::kGrid);
}

TEST(ShardEquivalence, AntiCorrelatedBandStrategy) {
  RunCountEquivalence(SpatialDistribution::kAntiCorrelated, 4,
                      ShardStrategy::kBand);
}

TEST(ShardEquivalence, SingleShardDegeneratesToSequential) {
  RunCountEquivalence(SpatialDistribution::kIndependent, 1,
                      ShardStrategy::kGrid);
}

// Time-window equivalence: the engine's router replicates
// TimeWindow::TryPush decision for decision.
void RunTimeEquivalence(SpatialDistribution spatial, int shards,
                        TimestampPolicy policy, bool scramble) {
  std::vector<UncertainElement> stream = MakeStream(spatial);
  if (scramble) {
    // Pull every 7th timestamp backwards so the policy actually fires.
    for (size_t i = 7; i < stream.size(); i += 7) {
      stream[i].time = stream[i - 3].time;
    }
  }
  const double span = 2.0;  // seconds; ~2000 elements at the default rate

  SskyOperator seq_op(kDims, kQ);
  TimeWindow seq_win(span, policy);
  ShardEngine::Options opts;
  opts.dims = kDims;
  opts.q = kQ;
  opts.shards = shards;
  opts.time_span = span;
  opts.ooo_policy = policy;
  ShardEngine engine(opts);

  std::vector<UncertainElement> expired;
  const size_t checkpoints[] = {kStream / 4, kStream / 2, kStream};
  size_t next = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    UncertainElement e = stream[i];
    expired.clear();
    const bool seq_ok = seq_win.TryPush(&e, &expired);
    const bool shard_ok = engine.Route(stream[i]);
    ASSERT_EQ(seq_ok, shard_ok);
    if (seq_ok) {
      for (const UncertainElement& x : expired) seq_op.Expire(x);
      seq_op.Insert(e);
    }
    if (next < std::size(checkpoints) && i + 1 == checkpoints[next]) {
      ++next;
      ExpectSkylineEquivalent(seq_op.Skyline(), engine.GlobalSkyline());
      ExpectWindowsIdentical(seq_win.Snapshot(), engine.WindowSnapshot());
    }
  }
  EXPECT_EQ(seq_win.rejected(), engine.rejected());
  EXPECT_EQ(seq_win.clamped(), engine.clamped());
  EXPECT_EQ(seq_win.watermark(), engine.watermark());
}

TEST(ShardEquivalence, TimeWindowInOrder) {
  RunTimeEquivalence(SpatialDistribution::kAntiCorrelated, 3,
                     TimestampPolicy::kReject, /*scramble=*/false);
}

TEST(ShardEquivalence, TimeWindowRejectsOutOfOrder) {
  RunTimeEquivalence(SpatialDistribution::kIndependent, 2,
                     TimestampPolicy::kReject, /*scramble=*/true);
}

TEST(ShardEquivalence, TimeWindowClampsOutOfOrder) {
  RunTimeEquivalence(SpatialDistribution::kCorrelated, 4,
                     TimestampPolicy::kClampToWatermark, /*scramble=*/true);
}

// Resume-from-checkpoint equivalence, both directions: a sequential
// window snapshot restores into a sharded engine (and vice versa via
// WindowSnapshot), and the continued streams stay equivalent.
TEST(ShardEquivalence, ResumeSequentialCheckpointIntoShardedRun) {
  const std::vector<UncertainElement> stream =
      MakeStream(SpatialDistribution::kAntiCorrelated);
  const size_t cut = kStream / 2;

  SskyOperator warm_op(kDims, kQ);
  StreamProcessor warm(&warm_op, kWindow);
  for (size_t i = 0; i < cut; ++i) warm.Step(stream[i]);
  const std::vector<UncertainElement> snapshot = warm.window().Snapshot();

  // Restored sharded engine vs. the uninterrupted sequential run.
  ShardEngine engine(CountOptions(4));
  engine.Restore(std::span<const UncertainElement>(snapshot));
  ExpectWindowsIdentical(snapshot, engine.WindowSnapshot());
  for (size_t i = cut; i < stream.size(); ++i) {
    warm.Step(stream[i]);
    ASSERT_TRUE(engine.Route(stream[i]));
  }
  ExpectSkylineEquivalent(warm_op.Skyline(), engine.GlobalSkyline());
}

TEST(ShardEquivalence, ShardedCheckpointRestoresIntoSequentialRun) {
  const std::vector<UncertainElement> stream =
      MakeStream(SpatialDistribution::kIndependent);
  const size_t cut = kStream / 2;

  ShardEngine engine(CountOptions(3));
  for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(engine.Route(stream[i]));
  const std::vector<UncertainElement> snapshot = engine.WindowSnapshot();

  // The snapshot must be what a sequential run would have checkpointed —
  // byte-for-byte, through the real checkpoint encoder.
  SskyOperator seq_op(kDims, kQ);
  StreamProcessor seq(&seq_op, kWindow);
  for (size_t i = 0; i < cut; ++i) seq.Step(stream[i]);
  CheckpointState a;
  a.dims = kDims;
  a.q = kQ;
  a.window_kind = WindowKind::kCount;
  a.window_capacity = kWindow;
  a.window = seq.window().Snapshot();
  CheckpointState b = a;
  b.window = snapshot;
  EXPECT_EQ(EncodeCheckpoint(a), EncodeCheckpoint(b));

  // Replay the sharded snapshot into a fresh sequential operator and
  // continue both; they must stay equivalent.
  SskyOperator resumed_op(kDims, kQ);
  StreamProcessor resumed(&resumed_op, kWindow);
  for (const UncertainElement& e : snapshot) resumed.Step(e);
  ShardEngine resumed_engine(CountOptions(5));
  resumed_engine.Restore(std::span<const UncertainElement>(snapshot));
  for (size_t i = cut; i < stream.size(); ++i) {
    resumed.Step(stream[i]);
    ASSERT_TRUE(resumed_engine.Route(stream[i]));
  }
  ExpectSkylineEquivalent(resumed_op.Skyline(),
                          resumed_engine.GlobalSkyline());
}

TEST(ShardEquivalence, ResumeWithDifferentShardCountAndTimeWindow) {
  const std::vector<UncertainElement> stream =
      MakeStream(SpatialDistribution::kCorrelated);
  const size_t cut = kStream / 3;
  const double span = 1.5;

  ShardEngine::Options opts;
  opts.dims = kDims;
  opts.q = kQ;
  opts.shards = 2;
  opts.time_span = span;
  ShardEngine first(opts);
  for (size_t i = 0; i < cut; ++i) ASSERT_TRUE(first.Route(stream[i]));
  const std::vector<UncertainElement> snapshot = first.WindowSnapshot();

  opts.shards = 4;
  ShardEngine second(opts);
  second.Restore(std::span<const UncertainElement>(snapshot));

  SskyOperator seq_op(kDims, kQ);
  TimeWindow seq_win(span);
  std::vector<UncertainElement> expired;
  for (size_t i = 0; i < stream.size(); ++i) {
    UncertainElement e = stream[i];
    expired.clear();
    ASSERT_TRUE(seq_win.TryPush(&e, &expired));
    for (const UncertainElement& x : expired) seq_op.Expire(x);
    seq_op.Insert(e);
    if (i >= cut) {
      ASSERT_TRUE(second.Route(stream[i]));
    }
  }
  ExpectSkylineEquivalent(seq_op.Skyline(), second.GlobalSkyline());
}

// Per-shard auditing rides inside the workers; on an honest stream it
// must observe elements and report no violations.
TEST(ShardEngine, PerShardAuditRunsClean) {
  const std::vector<UncertainElement> stream =
      MakeStream(SpatialDistribution::kIndependent);
  ShardEngine::Options opts = CountOptions(3);
  opts.audit.mode = AuditMode::kCheck;
  opts.audit.audit_every = 32;
  opts.audit.oracle_every = 2000;
  ShardEngine engine(opts);
  for (const UncertainElement& e : stream) ASSERT_TRUE(engine.Route(e));
  engine.Barrier();
  const AuditReport report = engine.AuditReportMerged();
  EXPECT_EQ(report.steps_seen, kStream);
  EXPECT_GT(report.elements_audited, 0u);
  EXPECT_GT(report.oracle_replays, 0u);
  EXPECT_EQ(report.violations_unrepaired, 0u);
  EXPECT_EQ(report.oracle_mismatches, 0u);
}

TEST(ShardEngine, StatsExposeDepthImbalanceAndMergeCounters) {
  const std::vector<UncertainElement> stream =
      MakeStream(SpatialDistribution::kAntiCorrelated);
  ShardEngine engine(CountOptions(4));
  for (const UncertainElement& e : stream) ASSERT_TRUE(engine.Route(e));
  (void)engine.GlobalSkyline();
  engine.Barrier();
  const ShardEngine::Stats stats = engine.GetStats();
  ASSERT_EQ(stats.shards.size(), 4u);
  uint64_t window_total = 0;
  uint64_t inserted_total = 0;
  for (const ShardEngine::ShardStats& s : stats.shards) {
    EXPECT_EQ(s.routed, s.applied);  // post-barrier
    EXPECT_EQ(s.queue_depth, 0u);
    window_total += s.window_elements;
    inserted_total += s.inserted;
  }
  EXPECT_EQ(window_total, kWindow);
  EXPECT_EQ(inserted_total, kStream);
  EXPECT_GE(stats.imbalance, 1.0);
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_GT(stats.merge_candidates, 0u);
  EXPECT_GT(stats.merge_probes, 0u);
  // Anti-correlated data occupies a thin diagonal band of cells, so the
  // grid precheck must actually skip some shard probes.
  EXPECT_GT(stats.merge_cell_skips, 0u);
}

TEST(ShardEngine, RoutingIsDeterministicAndStrategySensitive) {
  ShardEngine grid(CountOptions(4, ShardStrategy::kGrid));
  ShardEngine band(CountOptions(4, ShardStrategy::kBand));
  StreamConfig cfg;
  cfg.dims = kDims;
  StreamGenerator gen(cfg);
  for (int i = 0; i < 100; ++i) {
    const UncertainElement e = gen.Next();
    EXPECT_EQ(grid.ShardOf(e), grid.ShardOf(e));
    const int b = band.ShardOf(e);
    EXPECT_EQ(b, std::min(3, static_cast<int>(e.prob * 4)));
  }
}

// --- CellGrid ---------------------------------------------------------

TEST(CellGrid, ChooseResolutionRespectsBudget) {
  EXPECT_EQ(CellGrid::ChooseResolution(2), 64u);   // 64^2 = 4096
  EXPECT_EQ(CellGrid::ChooseResolution(3), 16u);   // 16^3 = 4096
  EXPECT_EQ(CellGrid::ChooseResolution(5), 5u);    // 5^5 = 3125
  EXPECT_EQ(CellGrid::ChooseResolution(8), 2u);    // floor
}

TEST(CellGrid, CellMappingClampsAndRoundTrips) {
  CellGrid grid(2, 4);
  EXPECT_EQ(grid.num_cells(), 16u);
  EXPECT_EQ(grid.IndexOf(Point{0.0, 0.0}), 0u);
  EXPECT_EQ(grid.IndexOf(Point{0.99, 0.99}), 15u);
  EXPECT_EQ(grid.IndexOf(Point{1.0, 1.0}), 15u);    // edge clamp
  EXPECT_EQ(grid.IndexOf(Point{-0.5, 2.0}), 3u);    // out-of-range clamp
  for (uint64_t i = 0; i < grid.num_cells(); ++i) {
    EXPECT_EQ(grid.IndexOf(grid.CellAt(i)), i);
  }
}

TEST(CellGrid, MayDominateIsMonotoneWithDominance) {
  CellGrid grid(3, 16);
  StreamConfig cfg;
  cfg.dims = 3;
  StreamGenerator gen(cfg);
  for (int i = 0; i < 200; ++i) {
    const Point a = gen.Next().pos;
    const Point b = gen.Next().pos;
    if (Dominates(a, b)) {
      EXPECT_TRUE(
          CellGrid::MayDominate(grid.CellOf(a), grid.CellOf(b), 3));
    }
  }
}

}  // namespace
}  // namespace psky
