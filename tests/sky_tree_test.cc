// The heart of the validation: the aggregate sky-tree operator (SSKY) must
// behave exactly like the naive reference operator on every stream step,
// across dimensionalities, spatial distributions, probability models,
// thresholds, window sizes and tree options — including the ablation
// configurations (no lazy multipliers / no min-max pruning), which must be
// functionally identical and only differ in work done.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/naive_operator.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/stock.h"
#include "test_util.h"

namespace psky {
namespace {

struct RunConfig {
  int dims = 2;
  SpatialDistribution dist = SpatialDistribution::kAntiCorrelated;
  ProbDistribution prob_dist = ProbDistribution::kUniform;
  double pmu = 0.5;
  double q = 0.3;
  size_t window = 50;
  size_t stream_len = 400;
  uint64_t seed = 1;
  SkyTree::Options tree_options;
};

void RunAgreementTest(const RunConfig& rc) {
  StreamConfig cfg;
  cfg.dims = rc.dims;
  cfg.spatial = rc.dist;
  cfg.prob.distribution = rc.prob_dist;
  cfg.prob.mean = rc.pmu;
  cfg.seed = rc.seed;
  StreamGenerator gen(cfg);

  NaiveSkylineOperator naive(rc.dims, rc.q);
  SskyOperator ssky(rc.dims, rc.q, rc.tree_options);
  StreamProcessor naive_proc(&naive, rc.window);
  StreamProcessor ssky_proc(&ssky, rc.window);

  size_t step = 0;
  for (const UncertainElement& e : gen.Take(rc.stream_len)) {
    naive_proc.Step(e);
    ssky_proc.Step(e);
    ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky))
        << "diverged at step " << step;
    if (step % 37 == 0) {
      ssky.tree().CheckInvariants(/*deep=*/true);
    }
    ++step;
  }
  ssky.tree().CheckInvariants(/*deep=*/true);
}

TEST(SkyTreeBasics, EmptyTree) {
  SkyTree tree(2, {0.3});
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.skyline_size(), 0u);
  tree.CheckInvariants(true);
  EXPECT_TRUE(tree.CollectAtLeast(0.5).empty());
  EXPECT_EQ(tree.CountAtLeast(0.5), 0u);
  EXPECT_TRUE(tree.TopK(3).empty());
}

TEST(SkyTreeBasics, SingleElement) {
  SkyTree tree(2, {0.3});
  UncertainElement e = MakeElement({0.5, 0.5}, 0.7, 1);
  tree.Arrive(e);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.skyline_size(), 1u);
  const auto sky = tree.CollectAtLeast(0.3);
  ASSERT_EQ(sky.size(), 1u);
  EXPECT_NEAR(sky[0].psky, 0.7, 1e-9);
  tree.CheckInvariants(true);
  EXPECT_TRUE(tree.Expire(e));
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.skyline_size(), 0u);
  EXPECT_FALSE(tree.Expire(e));
  tree.CheckInvariants(true);
}

TEST(SkyTreeBasics, PaperExample3Progression) {
  // Same scenario as the naive-operator test, via the tree.
  SskyOperator op(2, 0.5);
  StreamProcessor proc(&op, 4);
  std::vector<UncertainElement> stream = {
      MakeElement({3.0, 4.0}, 0.9, 1),   MakeElement({2.0, 2.0}, 0.4, 2),
      MakeElement({1.0, 3.0}, 0.3, 3),   MakeElement({4.0, 5.0}, 0.9, 4),
      MakeElement({3.5, 4.5}, 0.1, 5),   MakeElement({0.5, 10.0}, 0.5, 6),
  };
  for (int i = 0; i < 4; ++i) proc.Step(stream[static_cast<size_t>(i)]);
  EXPECT_EQ(op.candidate_count(), 3u);  // a1 evicted: P_new = 0.42
  EXPECT_EQ(op.skyline_count(), 0u);

  proc.Step(stream[4]);
  EXPECT_EQ(op.candidate_count(), 4u);

  proc.Step(stream[5]);
  bool a4_in_sky = false;
  for (const auto& m : op.Skyline()) {
    if (m.element.seq == 4) {
      a4_in_sky = true;
      EXPECT_NEAR(m.psky, 0.567, 1e-9);
    }
  }
  EXPECT_TRUE(a4_in_sky);
  op.tree().CheckInvariants(true);
}

class SkyTreeAgreement
    : public ::testing::TestWithParam<
          std::tuple<int, SpatialDistribution, double>> {};

TEST_P(SkyTreeAgreement, MatchesNaiveStepByStep) {
  const auto [dims, dist, q] = GetParam();
  RunConfig rc;
  rc.dims = dims;
  rc.dist = dist;
  rc.q = q;
  rc.seed = 1000 + static_cast<uint64_t>(dims * 10) +
            static_cast<uint64_t>(q * 100);
  RunAgreementTest(rc);
}

INSTANTIATE_TEST_SUITE_P(
    DimsDistsThresholds, SkyTreeAgreement,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(SpatialDistribution::kIndependent,
                                         SpatialDistribution::kCorrelated,
                                         SpatialDistribution::kAntiCorrelated),
                       ::testing::Values(0.1, 0.3, 0.7)));

class SkyTreeWindows : public ::testing::TestWithParam<size_t> {};

TEST_P(SkyTreeWindows, MatchesNaiveAcrossWindowSizes) {
  RunConfig rc;
  rc.window = GetParam();
  rc.stream_len = 4 * GetParam() + 100;
  rc.seed = 2000 + GetParam();
  RunAgreementTest(rc);
}

INSTANTIATE_TEST_SUITE_P(Windows, SkyTreeWindows,
                         ::testing::Values(1, 2, 5, 16, 64, 200));

class SkyTreeProbModels
    : public ::testing::TestWithParam<std::tuple<ProbDistribution, double>> {
};

TEST_P(SkyTreeProbModels, MatchesNaiveAcrossProbabilityModels) {
  const auto [prob_dist, pmu] = GetParam();
  RunConfig rc;
  rc.prob_dist = prob_dist;
  rc.pmu = pmu;
  rc.dims = 3;
  rc.seed = 3000 + static_cast<uint64_t>(pmu * 10);
  RunAgreementTest(rc);
}

INSTANTIATE_TEST_SUITE_P(
    ProbModels, SkyTreeProbModels,
    ::testing::Combine(::testing::Values(ProbDistribution::kUniform,
                                         ProbDistribution::kNormal),
                       ::testing::Values(0.1, 0.5, 0.9)));

class SkyTreeOptions
    : public ::testing::TestWithParam<std::tuple<bool, bool, int>> {};

TEST_P(SkyTreeOptions, AblationModesAreFunctionallyIdentical) {
  const auto [use_lazy, use_pruning, max_entries] = GetParam();
  RunConfig rc;
  rc.tree_options.use_lazy = use_lazy;
  rc.tree_options.use_minmax_pruning = use_pruning;
  rc.tree_options.max_entries = max_entries;
  rc.tree_options.min_entries = max_entries / 3 > 2 ? max_entries / 3 : 2;
  rc.dims = 3;
  rc.seed = 4000 + static_cast<uint64_t>(max_entries);
  RunAgreementTest(rc);
}

INSTANTIATE_TEST_SUITE_P(
    Ablations, SkyTreeOptions,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(6, 12, 32)));

TEST(SkyTree, StockStreamAgreement) {
  StockConfig cfg;
  cfg.seed = 8;
  StockStreamGenerator gen(cfg);
  NaiveSkylineOperator naive(2, 0.3);
  SskyOperator ssky(2, 0.3);
  StreamProcessor naive_proc(&naive, 80);
  StreamProcessor ssky_proc(&ssky, 80);
  for (const UncertainElement& e : gen.Take(600)) {
    naive_proc.Step(e);
    ssky_proc.Step(e);
    ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky));
  }
  ssky.tree().CheckInvariants(true);
}

TEST(SkyTree, DuplicatePositionsAndProbabilityExtremes) {
  // Ties in every coordinate plus certain (p = 1) and near-zero elements.
  SskyOperator ssky(2, 0.4);
  NaiveSkylineOperator naive(2, 0.4);
  StreamProcessor sp(&ssky, 6), np(&naive, 6);
  std::vector<UncertainElement> stream = {
      MakeElement({0.5, 0.5}, 1.0, 0),
      MakeElement({0.5, 0.5}, 0.5, 1),   // duplicate position
      MakeElement({0.5, 0.5}, 1e-15, 2),  // clamped up to min prob
      MakeElement({0.2, 0.8}, 1.0, 3),
      MakeElement({0.1, 0.1}, 1.0, 4),   // dominates everything
      MakeElement({0.5, 0.5}, 0.9, 5),
      MakeElement({0.05, 0.05}, 0.5, 6),
      MakeElement({0.6, 0.6}, 0.7, 7),
      MakeElement({0.1, 0.1}, 0.3, 8),
      MakeElement({0.9, 0.9}, 0.99, 9),
      MakeElement({0.01, 0.99}, 0.6, 10),
      MakeElement({0.99, 0.01}, 0.6, 11),
  };
  for (const auto& e : stream) {
    sp.Step(e);
    np.Step(e);
    ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky));
    ssky.tree().CheckInvariants(true);
  }
}

TEST(SkyTree, LongChurnDeepInvariants) {
  // Longer run with a small window: many expiries, evictions, splits and
  // condensations; deep invariants checked sparsely.
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 99;
  StreamGenerator gen(cfg);
  SkyTree::Options small_nodes;
  small_nodes.max_entries = 4;
  small_nodes.min_entries = 2;
  SskyOperator ssky(3, 0.3, small_nodes);
  NaiveSkylineOperator naive(3, 0.3);
  StreamProcessor sp(&ssky, 64), np(&naive, 64);
  size_t step = 0;
  for (const UncertainElement& e : gen.Take(2000)) {
    sp.Step(e);
    np.Step(e);
    if (step % 101 == 0) {
      ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky));
      ssky.tree().CheckInvariants(true);
    }
    ++step;
  }
  ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky));
}

TEST(SkyTree, EvictionsAreCountedAndPruningReducesWork) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 123;
  auto run = [&cfg](bool lazy, bool pruning) {
    SkyTree::Options opt;
    // Small fanout so this 500-element window spans enough nodes for
    // wholesale keep/evict decisions to be measurable.
    opt.max_entries = 12;
    opt.min_entries = 4;
    opt.use_lazy = lazy;
    opt.use_minmax_pruning = pruning;
    SskyOperator op(3, 0.3, opt);
    StreamProcessor proc(&op, 500);
    StreamGenerator gen(cfg);
    for (const auto& e : gen.Take(2000)) proc.Step(e);
    return op.stats();
  };
  const OperatorStats fast = run(true, true);
  const OperatorStats eager = run(false, true);
  const OperatorStats unpruned = run(true, false);
  // Same semantics, hence identical eviction counts...
  EXPECT_EQ(fast.evictions, eager.evictions);
  EXPECT_EQ(fast.evictions, unpruned.evictions);
  // ...but min/max pruning must cut the work substantially (the paper's
  // wholesale keep/evict decisions), and laziness must never add work.
  EXPECT_LT(2 * fast.elements_touched, unpruned.elements_touched);
  EXPECT_LT(fast.nodes_visited, unpruned.nodes_visited);
  EXPECT_LE(fast.elements_touched, eager.elements_touched);
}

}  // namespace
}  // namespace psky
