// Tests for the annotated synchronization primitives (base/sync.h): the
// Mutex/MutexLock/CondVar wrappers and the runtime lock-rank checker.
//
// The rank checker's violation path is exercised directly: a test-scoped
// violation handler replaces the PSKY_CHECK failure so a deliberate rank
// inversion records its diagnostic instead of aborting the binary.

#include "base/sync.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace psky {
namespace {

// The violation handler is a plain function pointer, so captured state
// lives in globals; each test clears them in the fixture.
std::string* g_last_violation = nullptr;
std::atomic<int> g_violation_count{0};

void RecordViolation(const char* message) {
  if (g_last_violation != nullptr) *g_last_violation = message;
  g_violation_count.fetch_add(1, std::memory_order_relaxed);
}

// Arms the checker and installs the recording handler for one test,
// restoring both on the way out so release-build neighbours are
// unaffected.
class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_last_violation = &last_message_;
    g_violation_count.store(0, std::memory_order_relaxed);
    was_armed_ = lockrank::SetArmed(true);
    prev_handler_ = lockrank::SetViolationHandlerForTest(&RecordViolation);
  }

  void TearDown() override {
    lockrank::SetViolationHandlerForTest(prev_handler_);
    lockrank::SetArmed(was_armed_);
    g_last_violation = nullptr;
  }

  int ViolationCount() const {
    return g_violation_count.load(std::memory_order_relaxed);
  }

  std::string last_message_;
  bool was_armed_ = false;
  lockrank::ViolationHandler prev_handler_ = nullptr;
};

TEST_F(LockRankTest, IncreasingRankOrderIsClean) {
  Mutex low{"low", lockrank::kIngestQueue};
  Mutex mid{"mid", lockrank::kThreadPool};
  Mutex high{"high", lockrank::kLeaf};
  {
    MutexLock l1(low);
    MutexLock l2(mid);
    MutexLock l3(high);
    int ranks[8];
    const int n = lockrank::HeldRanks(ranks, 8);
    ASSERT_EQ(n, 3);
    EXPECT_EQ(ranks[0], lockrank::kIngestQueue);
    EXPECT_EQ(ranks[1], lockrank::kThreadPool);
    EXPECT_EQ(ranks[2], lockrank::kLeaf);
  }
  EXPECT_EQ(ViolationCount(), 0);
  int ranks[8];
  EXPECT_EQ(lockrank::HeldRanks(ranks, 8), 0);
}

TEST_F(LockRankTest, RankInversionFiresWithBothNames) {
  Mutex outer{"outer-leaf", lockrank::kLeaf};
  Mutex inner{"inner-watchdog", lockrank::kWatchdog};
  {
    MutexLock l1(outer);
    MutexLock l2(inner);  // kWatchdog < kLeaf: out of order
  }
  EXPECT_EQ(ViolationCount(), 1);
  EXPECT_NE(last_message_.find("inner-watchdog"), std::string::npos)
      << last_message_;
  EXPECT_NE(last_message_.find("outer-leaf"), std::string::npos)
      << last_message_;
}

TEST_F(LockRankTest, EqualRankAlsoViolates) {
  // Two same-rank locks can deadlock against each other, so equal rank
  // counts as an inversion too.
  Mutex a{"leaf-a", lockrank::kLeaf};
  Mutex b{"leaf-b", lockrank::kLeaf};
  {
    MutexLock l1(a);
    MutexLock l2(b);
  }
  EXPECT_EQ(ViolationCount(), 1);
}

TEST_F(LockRankTest, TryLockNeverRankChecks) {
  // try_lock cannot block, so lockdep's rule exempts it from ordering.
  Mutex outer{"outer", lockrank::kLeaf};
  Mutex inner{"inner", lockrank::kWatchdog};
  MutexLock l1(outer);
  ASSERT_TRUE(inner.TryLock());
  int ranks[8];
  EXPECT_EQ(lockrank::HeldRanks(ranks, 8), 2);
  inner.Unlock();
  EXPECT_EQ(ViolationCount(), 0);
}

TEST_F(LockRankTest, DisarmedCheckerIsSilent) {
  lockrank::SetArmed(false);
  Mutex outer{"outer", lockrank::kLeaf};
  Mutex inner{"inner", lockrank::kWatchdog};
  {
    MutexLock l1(outer);
    MutexLock l2(inner);
  }
  EXPECT_EQ(ViolationCount(), 0);
}

TEST_F(LockRankTest, HeldStackIsPerThread) {
  Mutex mine{"mine", lockrank::kLeaf};
  MutexLock lock(mine);
  std::thread other([&] {
    // The spawned thread holds nothing, so a low-rank acquisition there
    // is clean even while this thread holds a leaf lock.
    Mutex theirs{"theirs", lockrank::kIngestQueue};
    MutexLock l(theirs);
    int ranks[8];
    EXPECT_EQ(lockrank::HeldRanks(ranks, 8), 1);
  });
  other.join();
  EXPECT_EQ(ViolationCount(), 0);
}

TEST(MutexTest, ProvidesMutualExclusion) {
  Mutex mu{"counter", lockrank::kLeaf};
  int counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu{"contended", lockrank::kLeaf};
  mu.Lock();
  std::atomic<bool> failed{false};
  std::thread other([&] { failed.store(!mu.TryLock()); });
  other.join();
  EXPECT_TRUE(failed.load());
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexLockTest, ReleaseUnlocksEarlyAndDtorIsInert) {
  Mutex mu{"early", lockrank::kLeaf};
  {
    MutexLock lock(mu);
    lock.Release();
    // Provably unlocked: another thread can take it before the dtor runs.
    std::atomic<bool> acquired{false};
    std::thread other([&] {
      MutexLock inner(mu);
      acquired.store(true);
    });
    other.join();
    EXPECT_TRUE(acquired.load());
  }
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, PredicateWaitSeesNotifiedState) {
  Mutex mu{"cv", lockrank::kLeaf};
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    MutexLock lock(mu);
    ready = true;
    lock.Release();
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&] {
      mu.AssertHeld();
      return ready;
    });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVarTest, WaitForTimesOutWithFalsePredicate) {
  Mutex mu{"cv-timeout", lockrank::kLeaf};
  CondVar cv;
  MutexLock lock(mu);
  const bool satisfied =
      cv.WaitFor(mu, std::chrono::milliseconds(10), [&] {
        mu.AssertHeld();
        return false;
      });
  EXPECT_FALSE(satisfied);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu{"cv-broadcast", lockrank::kLeaf};
  CondVar cv;
  bool go = false;
  int awake = 0;
  std::vector<std::thread> waiters;
  constexpr int kWaiters = 3;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      cv.Wait(mu, [&] {
        mu.AssertHeld();
        return go;
      });
      ++awake;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
    lock.Release();
    cv.NotifyAll();
  }
  for (auto& t : waiters) t.join();
  MutexLock lock(mu);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace psky
