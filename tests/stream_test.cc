#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/stats.h"
#include "stream/generator.h"
#include "stream/prob_model.h"
#include "stream/stock.h"
#include "stream/window.h"

namespace psky {
namespace {

TEST(ProbModel, UniformInHalfOpenUnitInterval) {
  ProbModelConfig cfg;
  cfg.distribution = ProbDistribution::kUniform;
  ProbModel model(cfg);
  Rng rng(1);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double p = model.Sample(rng);
    ASSERT_GT(p, 0.0);
    ASSERT_LE(p, 1.0);
    stats.Add(p);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(ProbModel, NormalTruncatedMeanTracksPmu) {
  double prev_mean = -1.0;
  for (double pmu : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    ProbModelConfig cfg;
    cfg.distribution = ProbDistribution::kNormal;
    cfg.mean = pmu;
    cfg.stddev = 0.3;
    ProbModel model(cfg);
    Rng rng(2);
    RunningStats stats;
    for (int i = 0; i < 50000; ++i) {
      const double p = model.Sample(rng);
      ASSERT_GT(p, 0.0);
      ASSERT_LE(p, 1.0);
      stats.Add(p);
    }
    // Truncation to (0,1] pulls extreme means toward 0.5 (by about
    // sigma * phi/Phi ~ 0.18 at pmu = 0.1); the realized means must still
    // track pmu and be strictly increasing in it.
    EXPECT_NEAR(stats.mean(), pmu, 0.25);
    EXPECT_GT(stats.mean(), prev_mean);
    prev_mean = stats.mean();
  }
}

TEST(StreamGenerator, DeterministicPerSeed) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 77;
  StreamGenerator a(cfg), b(cfg);
  for (int i = 0; i < 100; ++i) {
    const UncertainElement ea = a.Next();
    const UncertainElement eb = b.Next();
    ASSERT_EQ(ea.pos, eb.pos);
    ASSERT_EQ(ea.prob, eb.prob);
    ASSERT_EQ(ea.seq, eb.seq);
    ASSERT_EQ(ea.time, eb.time);
  }
}

TEST(StreamGenerator, SeqAndTimeMonotone) {
  StreamConfig cfg;
  StreamGenerator gen(cfg);
  uint64_t prev_seq = 0;
  double prev_time = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const UncertainElement e = gen.Next();
    ASSERT_EQ(e.seq, prev_seq) << "seq must be consecutive from zero";
    ++prev_seq;
    ASSERT_GT(e.time, prev_time);
    prev_time = e.time;
  }
}

TEST(StreamGenerator, CoordinatesInUnitCube) {
  for (auto dist : {SpatialDistribution::kIndependent,
                    SpatialDistribution::kCorrelated,
                    SpatialDistribution::kAntiCorrelated}) {
    StreamConfig cfg;
    cfg.dims = 4;
    cfg.spatial = dist;
    StreamGenerator gen(cfg);
    for (int i = 0; i < 2000; ++i) {
      const UncertainElement e = gen.Next();
      for (int j = 0; j < 4; ++j) {
        ASSERT_GE(e.pos[j], 0.0);
        ASSERT_LE(e.pos[j], 1.0);
      }
    }
  }
}

// Pairwise Pearson correlation between the first two dimensions.
double DimCorrelation(SpatialDistribution dist, int n) {
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.spatial = dist;
  cfg.seed = 5;
  StreamGenerator gen(cfg);
  RunningStats x, y;
  std::vector<UncertainElement> elems = gen.Take(static_cast<size_t>(n));
  for (const auto& e : elems) {
    x.Add(e.pos[0]);
    y.Add(e.pos[1]);
  }
  double cov = 0.0;
  for (const auto& e : elems) {
    cov += (e.pos[0] - x.mean()) * (e.pos[1] - y.mean());
  }
  cov /= n - 1;
  return cov / (x.stddev() * y.stddev());
}

TEST(StreamGenerator, CorrelationSignsMatchDistributions) {
  EXPECT_NEAR(DimCorrelation(SpatialDistribution::kIndependent, 20000), 0.0,
              0.05);
  EXPECT_GT(DimCorrelation(SpatialDistribution::kCorrelated, 20000), 0.7);
  EXPECT_LT(DimCorrelation(SpatialDistribution::kAntiCorrelated, 20000),
            -0.5);
}

TEST(StreamGenerator, DistributionNames) {
  EXPECT_STREQ(SpatialDistributionName(SpatialDistribution::kIndependent),
               "inde");
  EXPECT_STREQ(SpatialDistributionName(SpatialDistribution::kCorrelated),
               "corr");
  EXPECT_STREQ(SpatialDistributionName(SpatialDistribution::kAntiCorrelated),
               "anti");
}

TEST(StockStream, ShapeAndDeterminism) {
  StockConfig cfg;
  cfg.seed = 3;
  StockStreamGenerator a(cfg), b(cfg);
  for (int i = 0; i < 1000; ++i) {
    const UncertainElement ea = a.Next();
    const UncertainElement eb = b.Next();
    ASSERT_EQ(ea.pos, eb.pos);
    ASSERT_EQ(ea.prob, eb.prob);
    ASSERT_EQ(ea.pos.dims(), 2);
    ASSERT_GT(ea.pos[0], 0.0) << "price positive";
    ASSERT_LE(ea.pos[1], -1.0) << "negated volume <= -1 share";
    ASSERT_GT(ea.prob, 0.0);
    ASSERT_LE(ea.prob, 1.0);
  }
}

TEST(StockStream, PriceStaysNearAnchorShortTerm) {
  StockConfig cfg;
  StockStreamGenerator gen(cfg);
  RunningStats price;
  for (int i = 0; i < 5000; ++i) price.Add(gen.Next().pos[0]);
  // A few thousand trades should not move the price by an order of
  // magnitude.
  EXPECT_GT(price.min(), cfg.initial_price / 3.0);
  EXPECT_LT(price.max(), cfg.initial_price * 3.0);
}

TEST(StockStream, VolumeHasHeavyTail) {
  StockConfig cfg;
  StockStreamGenerator gen(cfg);
  RunningStats vol;
  for (int i = 0; i < 50000; ++i) vol.Add(-gen.Next().pos[1]);
  // Bursts make the max far exceed the median scale.
  EXPECT_GT(vol.max(), 20.0 * cfg.median_volume);
}

TEST(CountWindow, ExpiresOldestInFifoOrder) {
  CountWindow w(3);
  UncertainElement e;
  for (uint64_t i = 0; i < 3; ++i) {
    e.seq = i;
    EXPECT_FALSE(w.Push(e).has_value());
  }
  EXPECT_TRUE(w.full());
  for (uint64_t i = 3; i < 10; ++i) {
    e.seq = i;
    auto expired = w.Push(e);
    ASSERT_TRUE(expired.has_value());
    EXPECT_EQ(expired->seq, i - 3);
    EXPECT_EQ(w.size(), 3u);
  }
  EXPECT_EQ(w.oldest().seq, 7u);
  EXPECT_EQ(w.newest().seq, 9u);
}

TEST(CountWindow, SnapshotOldestFirst) {
  CountWindow w(2);
  UncertainElement e;
  e.seq = 1;
  w.Push(e);
  e.seq = 2;
  w.Push(e);
  auto snap = w.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].seq, 1u);
  EXPECT_EQ(snap[1].seq, 2u);
}

TEST(TimeWindow, ExpiresByTimestamp) {
  TimeWindow w(10.0);
  std::vector<UncertainElement> expired;
  UncertainElement e;
  e.seq = 0;
  e.time = 0.0;
  w.Push(e, &expired);
  e.seq = 1;
  e.time = 5.0;
  w.Push(e, &expired);
  EXPECT_TRUE(expired.empty());
  EXPECT_EQ(w.size(), 2u);

  e.seq = 2;
  e.time = 10.5;  // cutoff 0.5: expires seq 0 (time 0.0)
  w.Push(e, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].seq, 0u);

  expired.clear();
  e.seq = 3;
  e.time = 100.0;  // everything except itself expires
  w.Push(e, &expired);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].seq, 1u);
  EXPECT_EQ(expired[1].seq, 2u);
  EXPECT_EQ(w.size(), 1u);
}

TEST(TimeWindow, BoundaryIsInclusiveExpiry) {
  // An element exactly `span` old is expired (time <= cutoff).
  TimeWindow w(10.0);
  std::vector<UncertainElement> expired;
  UncertainElement e;
  e.seq = 0;
  e.time = 0.0;
  w.Push(e, &expired);
  e.seq = 1;
  e.time = 10.0;
  w.Push(e, &expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].seq, 0u);
}

TEST(TimeWindow, RejectPolicyDropsOutOfOrderElements) {
  TimeWindow w(10.0, TimestampPolicy::kReject);
  std::vector<UncertainElement> expired;
  UncertainElement e;
  e.seq = 0;
  e.time = 5.0;
  EXPECT_TRUE(w.TryPush(&e, &expired));
  EXPECT_EQ(w.watermark(), 5.0);

  // Behind the watermark: refused, window untouched, counted.
  e.seq = 1;
  e.time = 4.0;
  EXPECT_FALSE(w.TryPush(&e, &expired));
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.rejected(), 1u);
  EXPECT_EQ(w.watermark(), 5.0);

  // The stream recovers afterwards as if the straggler never arrived.
  e.seq = 2;
  e.time = 6.0;
  EXPECT_TRUE(w.TryPush(&e, &expired));
  EXPECT_EQ(w.size(), 2u);
  auto snap = w.Snapshot();
  EXPECT_EQ(snap[0].seq, 0u);
  EXPECT_EQ(snap[1].seq, 2u);
}

TEST(TimeWindow, DuplicateTimestampsAreAcceptedUnderBothPolicies) {
  for (TimestampPolicy policy :
       {TimestampPolicy::kReject, TimestampPolicy::kClampToWatermark}) {
    TimeWindow w(10.0, policy);
    std::vector<UncertainElement> expired;
    UncertainElement e;
    for (uint64_t seq = 0; seq < 3; ++seq) {
      e.seq = seq;
      e.time = 7.0;  // ties are legal: timestamps are non-decreasing
      EXPECT_TRUE(w.TryPush(&e, &expired));
    }
    EXPECT_EQ(w.size(), 3u);
    EXPECT_EQ(w.rejected(), 0u);
    EXPECT_EQ(w.clamped(), 0u);
    EXPECT_EQ(w.watermark(), 7.0);
  }
}

TEST(TimeWindow, ClampPolicyRaisesLateTimestampsToWatermark) {
  TimeWindow w(10.0, TimestampPolicy::kClampToWatermark);
  std::vector<UncertainElement> expired;
  UncertainElement e;
  e.seq = 0;
  e.time = 8.0;
  EXPECT_TRUE(w.TryPush(&e, &expired));

  e.seq = 1;
  e.time = 3.0;  // late: rewritten to 8.0, caller sees the repair
  EXPECT_TRUE(w.TryPush(&e, &expired));
  EXPECT_EQ(e.time, 8.0);
  EXPECT_EQ(w.clamped(), 1u);
  EXPECT_EQ(w.rejected(), 0u);
  EXPECT_EQ(w.watermark(), 8.0);

  auto snap = w.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[1].time, 8.0) << "window must hold the repaired timestamp";

  // Expiry still works off the repaired ordering.
  e.seq = 2;
  e.time = 18.5;
  EXPECT_TRUE(w.TryPush(&e, &expired));
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(w.size(), 1u);
}

TEST(TimeWindow, ClampPolicyTimestampEqualToWatermarkIsNotALateArrival) {
  // Boundary semantics: lateness is strict (time < watermark). An element
  // whose timestamp ties the watermark is in order — accepted verbatim,
  // no repair counted — even right after a genuine clamp.
  TimeWindow w(10.0, TimestampPolicy::kClampToWatermark);
  std::vector<UncertainElement> expired;
  UncertainElement e;
  e.seq = 0;
  e.time = 8.0;
  EXPECT_TRUE(w.TryPush(&e, &expired));

  e.seq = 1;
  e.time = 8.0;  // == watermark: in order, not clamped
  EXPECT_TRUE(w.TryPush(&e, &expired));
  EXPECT_EQ(e.time, 8.0);
  EXPECT_EQ(w.clamped(), 0u);
  EXPECT_EQ(w.watermark(), 8.0);

  e.seq = 2;
  e.time = 7.999;  // strictly behind: repaired and counted
  EXPECT_TRUE(w.TryPush(&e, &expired));
  EXPECT_EQ(e.time, 8.0);
  EXPECT_EQ(w.clamped(), 1u);

  e.seq = 3;
  e.time = 8.0;  // ties the clamped value: still not a late arrival
  EXPECT_TRUE(w.TryPush(&e, &expired));
  EXPECT_EQ(w.clamped(), 1u);
  EXPECT_EQ(w.size(), 4u);
}

TEST(TimeWindow, OutOfOrderStreamKeepsOrderingInvariantUnderClamp) {
  // A jittered stream: every element lands, the buffer stays
  // non-decreasing in time, and the watermark never moves backwards.
  TimeWindow w(50.0, TimestampPolicy::kClampToWatermark);
  std::vector<UncertainElement> expired;
  UncertainElement e;
  const double times[] = {1.0, 3.0, 2.0, 2.5, 3.0, 7.0, 4.0, 9.0};
  uint64_t seq = 0;
  for (double t : times) {
    e.seq = seq++;
    e.time = t;
    EXPECT_TRUE(w.TryPush(&e, &expired));
  }
  EXPECT_EQ(w.size(), 8u);
  EXPECT_EQ(w.clamped(), 3u);
  const auto snap = w.Snapshot();
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LE(snap[i - 1].time, snap[i].time);
  }
  EXPECT_EQ(w.watermark(), 9.0);
}

}  // namespace
}  // namespace psky
