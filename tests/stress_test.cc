// Adversarial stress: patterns engineered to hit the sky-tree's hard
// paths — monotone fronts (mass evictions), duplicate clusters (tie
// handling in splits and dominance), alternating extreme probabilities
// (huge log-space addends), tiny windows with high churn, and randomized
// mixed regimes. Every configuration is cross-checked against the naive
// operator and the deep structural invariants.

#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "core/naive_operator.h"
#include "core/ssky_operator.h"
#include "test_util.h"

namespace psky {
namespace {

void RunBoth(const std::vector<UncertainElement>& stream, int dims, double q,
             size_t window, int check_every = 25) {
  SkyTree::Options small_nodes;
  small_nodes.max_entries = 4;
  small_nodes.min_entries = 2;
  NaiveSkylineOperator naive(dims, q);
  SskyOperator ssky(dims, q, small_nodes);
  StreamProcessor np(&naive, window), sp(&ssky, window);
  int step = 0;
  for (const UncertainElement& e : stream) {
    np.Step(e);
    sp.Step(e);
    if (step % check_every == 0) {
      ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky))
          << "step " << step;
      ssky.tree().CheckInvariants(true);
    }
    ++step;
  }
  ASSERT_NO_FATAL_FAILURE(ExpectOperatorsAgree(naive, ssky));
  ssky.tree().CheckInvariants(true);
}

TEST(Stress, StrictlyImprovingFront) {
  // Every arrival dominates everything before it: maximal eviction load.
  std::vector<UncertainElement> stream;
  for (int i = 0; i < 300; ++i) {
    stream.push_back(
        MakeElement({300.0 - i, 300.0 - i}, 0.9, static_cast<uint64_t>(i)));
  }
  RunBoth(stream, 2, 0.3, 40, 10);
}

TEST(Stress, StrictlyWorseningFront) {
  // Every arrival is dominated by everything before it: the candidate set
  // is pruned only by the threshold, and expiries re-promote elements.
  std::vector<UncertainElement> stream;
  for (int i = 0; i < 300; ++i) {
    stream.push_back(MakeElement({static_cast<double>(i), i + 0.5}, 0.4,
                                 static_cast<uint64_t>(i)));
  }
  RunBoth(stream, 2, 0.2, 30, 10);
}

TEST(Stress, SingleRepeatedPoint) {
  // All elements identical: nobody dominates anybody (strict dominance),
  // every element is a candidate, splits must cope with zero-area MBBs.
  std::vector<UncertainElement> stream;
  for (int i = 0; i < 250; ++i) {
    stream.push_back(
        MakeElement({0.5, 0.5, 0.5}, 0.6, static_cast<uint64_t>(i)));
  }
  RunBoth(stream, 3, 0.3, 60, 10);
}

TEST(Stress, FewClusteredDuplicatePositions) {
  // A handful of distinct positions, many copies each, mixed probs.
  Rng rng(4242);
  std::vector<Point> sites;
  for (int s = 0; s < 6; ++s) {
    Point p(2);
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    sites.push_back(p);
  }
  std::vector<UncertainElement> stream;
  for (int i = 0; i < 500; ++i) {
    UncertainElement e;
    e.pos = sites[rng.NextBounded(sites.size())];
    e.prob = 0.05 + 0.95 * rng.NextDouble();
    e.seq = static_cast<uint64_t>(i);
    stream.push_back(e);
  }
  RunBoth(stream, 2, 0.25, 50, 20);
}

TEST(Stress, ExtremeProbabilityAlternation) {
  // Alternate near-certain and near-impossible elements along a rough
  // staircase: log-space addends swing between ~0 and ~-27.6.
  Rng rng(777);
  std::vector<UncertainElement> stream;
  for (int i = 0; i < 400; ++i) {
    UncertainElement e;
    e.pos = Point(2);
    e.pos[0] = rng.NextDouble();
    e.pos[1] = rng.NextDouble();
    e.prob = (i % 2 == 0) ? 1.0 : 1e-14;  // both get clamped
    e.seq = static_cast<uint64_t>(i);
    stream.push_back(e);
  }
  RunBoth(stream, 2, 0.5, 45, 15);
}

TEST(Stress, AxisAlignedLines) {
  // Degenerate geometry: all points share one coordinate, so every MBB is
  // a segment and partial-dominance cases concentrate on boundaries.
  Rng rng(31337);
  std::vector<UncertainElement> stream;
  for (int i = 0; i < 300; ++i) {
    UncertainElement e;
    e.pos = Point(3);
    e.pos[0] = 0.5;
    e.pos[1] = rng.NextDouble();
    e.pos[2] = rng.NextDouble();
    e.prob = 0.2 + 0.8 * rng.NextDouble();
    e.seq = static_cast<uint64_t>(i);
    stream.push_back(e);
  }
  RunBoth(stream, 3, 0.3, 35, 15);
}

TEST(Stress, RegimeSwitchingStream) {
  // The stream alternates between improving bursts, worsening bursts and
  // uniform noise; windows repeatedly fill with one regime then flush.
  Rng rng(90210);
  std::vector<UncertainElement> stream;
  double level = 100.0;
  for (int i = 0; i < 900; ++i) {
    UncertainElement e;
    e.pos = Point(2);
    const int regime = (i / 90) % 3;
    if (regime == 0) {
      level -= 0.1;
      e.pos[0] = level + rng.NextDouble();
      e.pos[1] = level + rng.NextDouble();
    } else if (regime == 1) {
      level += 0.15;
      e.pos[0] = level + rng.NextDouble();
      e.pos[1] = level - rng.NextDouble();
    } else {
      e.pos[0] = level + 10.0 * rng.NextDouble();
      e.pos[1] = level + 10.0 * rng.NextDouble();
    }
    e.prob = 0.05 + 0.95 * rng.NextDouble();
    e.seq = static_cast<uint64_t>(i);
    stream.push_back(e);
  }
  RunBoth(stream, 2, 0.3, 64, 30);
}

TEST(Stress, ManySeedsShortRuns) {
  // Breadth over depth: many independent short random streams.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 7919);
    std::vector<UncertainElement> stream;
    const int dims = 2 + static_cast<int>(seed % 3);
    for (int i = 0; i < 120; ++i) {
      UncertainElement e;
      e.pos = Point(dims);
      for (int j = 0; j < dims; ++j) {
        // Quantized coordinates: frequent ties across all dimensions.
        e.pos[j] = static_cast<double>(rng.NextBounded(12)) / 11.0;
      }
      e.prob = 0.05 + 0.95 * rng.NextDouble();
      e.seq = static_cast<uint64_t>(i);
      stream.push_back(e);
    }
    const double q = 0.1 + 0.2 * static_cast<double>(seed % 4);
    ASSERT_NO_FATAL_FAILURE(
        RunBoth(stream, dims, q, 10 + seed, /*check_every=*/10))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace psky
