// Segment store: FIFO equivalence against an in-memory deque across
// segment boundaries, file recycling, fault-injection sites, the startup
// sweep, and bit-equality of a StoredCountWindow-backed operator against
// the in-memory CountWindow pipeline.

#include <deque>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injection.h"
#include "base/random.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "store/segment_store.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      (std::string("psky_seg_") + tag + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

SegmentStore::Options MakeOptions(const std::string& dir, int dims,
                                  size_t per_segment) {
  SegmentStore::Options opts;
  opts.dir = dir;
  opts.dims = dims;
  opts.elements_per_segment = per_segment;
  return opts;
}

void ExpectElementsEqual(const UncertainElement& a,
                         const UncertainElement& b) {
  EXPECT_EQ(a.seq, b.seq);
  // Bitwise double equality: slots hold raw IEEE-754 bit patterns.
  EXPECT_EQ(a.prob, b.prob);
  EXPECT_EQ(a.time, b.time);
  EXPECT_EQ(a.pos, b.pos);
}

TEST(SegmentStoreTest, InitValidatesOptions) {
  std::string error;
  SegmentStore bad_dims(MakeOptions(TempDir("dims"), 0, 4));
  EXPECT_FALSE(bad_dims.Init(&error));
  SegmentStore bad_slots(MakeOptions(TempDir("slots"), 2, 0));
  EXPECT_FALSE(bad_slots.Init(&error));
  SegmentStore ok(MakeOptions(TempDir("ok"), 2, 4));
  EXPECT_TRUE(ok.Init(&error)) << error;
}

// Mixed pushes and pops against a reference deque, with a segment size
// small enough that every operation class crosses file boundaries.
TEST(SegmentStoreTest, MatchesDequeAcrossSegmentBoundaries) {
  const std::string dir = TempDir("fifo");
  SegmentStore store(MakeOptions(dir, 3, 5));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;

  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 77;
  StreamGenerator gen(cfg);
  Rng rng(123);
  std::deque<UncertainElement> reference;

  for (int op = 0; op < 5000; ++op) {
    const bool push = reference.empty() || rng.NextDouble() < 0.55;
    if (push) {
      const UncertainElement e = gen.Take(1).front();
      reference.push_back(e);
      ASSERT_TRUE(store.PushBack(e, &error)) << error;
    } else {
      UncertainElement out;
      ASSERT_TRUE(store.PopFront(&out, &error)) << error;
      ExpectElementsEqual(reference.front(), out);
      reference.pop_front();
    }
    ASSERT_EQ(store.size(), reference.size());
    if (op % 97 == 0 && !reference.empty()) {
      ExpectElementsEqual(reference.front(), store.At(0));
      ExpectElementsEqual(reference.back(), store.At(store.size() - 1));
      const size_t mid = reference.size() / 2;
      ExpectElementsEqual(reference[mid], store.At(mid));
    }
  }
  const std::vector<UncertainElement> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), reference.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    ExpectElementsEqual(reference[i], snap[i]);
  }
}

// Steady-state rotation drains front segments while filling tails: the
// store must reuse drained files instead of growing the directory.
TEST(SegmentStoreTest, RecyclesDrainedSegments) {
  const std::string dir = TempDir("recycle");
  SegmentStore store(MakeOptions(dir, 2, 8));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;

  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 5;
  StreamGenerator gen(cfg);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(store.PushBack(gen.Take(1).front(), &error)) << error;
  }
  for (int i = 0; i < 1000; ++i) {
    UncertainElement out;
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ASSERT_TRUE(store.PushBack(gen.Take(1).front(), &error)) << error;
  }
  const SegmentStore::Stats stats = store.stats();
  EXPECT_GT(stats.segments_recycled, 0u);
  // Live mappings stay bounded by the FIFO's footprint, not its history.
  EXPECT_LE(stats.segments_live, 5u);
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_LE(files, 6u);  // live segments plus the free list
}

TEST(SegmentStoreTest, DestructorRemovesScratchFiles) {
  const std::string dir = TempDir("cleanup");
  {
    SegmentStore store(MakeOptions(dir, 2, 4));
    std::string error;
    ASSERT_TRUE(store.Init(&error)) << error;
    StreamConfig cfg;
    cfg.dims = 2;
    StreamGenerator gen(cfg);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store.PushBack(gen.Take(1).front(), &error)) << error;
    }
    UncertainElement out;
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    }
  }
  EXPECT_TRUE(fs::is_empty(dir));
}

TEST(SegmentStoreTest, SweepReapsLeftoverSegmentFiles) {
  const std::string dir = TempDir("sweep");
  // Orphans a crashed run could leave behind, plus files the sweep must
  // not touch.
  std::ofstream(dir + "/seg-00000000000000000003.pskyseg") << "junk";
  std::ofstream(dir + "/seg-00000000000000000009.pskyseg") << "junk";
  std::ofstream(dir + "/seg-123.pskyseg") << "not ours";
  std::ofstream(dir + "/ckpt-00000000000000000001.psky") << "not ours";
  EXPECT_EQ(SweepSegmentFiles(dir), 2u);
  EXPECT_TRUE(fs::exists(dir + "/seg-123.pskyseg"));
  EXPECT_TRUE(fs::exists(dir + "/ckpt-00000000000000000001.psky"));
  EXPECT_EQ(SweepSegmentFiles(dir), 0u);
  EXPECT_EQ(SweepSegmentFiles(dir + "/missing"), 0u);
}

TEST(SegmentStoreTest, MapFaultSiteFailsPushBack) {
  const std::string dir = TempDir("mapfault");
  SegmentStore store(MakeOptions(dir, 2, 4));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  ASSERT_TRUE(fault::LoadSchedule("fail=segment-map@1:enospc", &error))
      << error;
  StreamConfig cfg;
  cfg.dims = 2;
  StreamGenerator gen(cfg);
  const UncertainElement e = gen.Take(1).front();
  EXPECT_FALSE(store.PushBack(e, &error));
  EXPECT_EQ(store.size(), 0u);
  // The next occurrence is clean: the push succeeds and the store works.
  EXPECT_TRUE(store.PushBack(e, &error)) << error;
  EXPECT_EQ(store.size(), 1u);
  fault::Clear();
}

TEST(SegmentStoreTest, RecycleFaultSiteFailsPopAndRetries) {
  const std::string dir = TempDir("recfault");
  SegmentStore store(MakeOptions(dir, 2, 2));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 2;
  StreamGenerator gen(cfg);
  std::vector<UncertainElement> pushed = gen.Take(4);
  for (const auto& e : pushed) {
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  ASSERT_TRUE(fault::LoadSchedule("fail=segment-recycle@1", &error))
      << error;
  UncertainElement out;
  ASSERT_TRUE(store.PopFront(&out, &error)) << error;
  ExpectElementsEqual(pushed[0], out);
  // Draining the front segment hits the injected recycle failure; the
  // element stays queued and the next attempt succeeds.
  EXPECT_FALSE(store.PopFront(&out, &error));
  EXPECT_EQ(store.size(), 3u);
  ASSERT_TRUE(store.PopFront(&out, &error)) << error;
  ExpectElementsEqual(pushed[1], out);
  fault::Clear();
}

// One element per segment: every push maps a fresh tail and every pop
// lands exactly on a segment boundary — the degenerate geometry where
// off-by-one bugs in boundary handling live.
TEST(SegmentStoreTest, SingleElementSegments) {
  const std::string dir = TempDir("one");
  SegmentStore store(MakeOptions(dir, 2, 1));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 9;
  StreamGenerator gen(cfg);
  std::deque<UncertainElement> reference;
  for (int i = 0; i < 64; ++i) {
    const UncertainElement e = gen.Take(1).front();
    reference.push_back(e);
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  for (int i = 0; i < 200; ++i) {
    UncertainElement out;
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ExpectElementsEqual(reference.front(), out);
    reference.pop_front();
    const UncertainElement e = gen.Take(1).front();
    reference.push_back(e);
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  while (!reference.empty()) {
    UncertainElement out;
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ExpectElementsEqual(reference.front(), out);
    reference.pop_front();
  }
  EXPECT_TRUE(store.empty());
  EXPECT_GT(store.stats().segments_recycled, 0u);
}

// A pop that drains the front segment must recycle it on that exact pop
// (not one early, not one late), and draining the store completely must
// rewind the lone tail segment in place.
TEST(SegmentStoreTest, PopDrainsExactlyAtSegmentBoundary) {
  const std::string dir = TempDir("boundary");
  SegmentStore store(MakeOptions(dir, 2, 4));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 41;
  StreamGenerator gen(cfg);
  const std::vector<UncertainElement> pushed = gen.Take(8);
  for (const auto& e : pushed) {
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  ASSERT_EQ(store.stats().segments_live, 2u);
  UncertainElement out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ExpectElementsEqual(pushed[static_cast<size_t>(i)], out);
    EXPECT_EQ(store.stats().segments_live, 2u) << "pop " << i;
  }
  // The 4th pop empties the front segment: it must recycle right here.
  ASSERT_TRUE(store.PopFront(&out, &error)) << error;
  ExpectElementsEqual(pushed[3], out);
  EXPECT_EQ(store.stats().segments_live, 1u);
  EXPECT_EQ(store.stats().segments_recycled, 0u);  // queued, reused later
  for (int i = 4; i < 8; ++i) {
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ExpectElementsEqual(pushed[static_cast<size_t>(i)], out);
  }
  EXPECT_TRUE(store.empty());
  // Fully drained: the next push reuses the rewound tail in place.
  const UncertainElement e = gen.Take(1).front();
  ASSERT_TRUE(store.PushBack(e, &error)) << error;
  ExpectElementsEqual(e, store.At(0));
}

// Steady-state rotation long enough for every segment file to be
// recycled several times over: contents must stay exact and the
// directory footprint bounded across >= 3 wrap-arounds of the free list.
TEST(SegmentStoreTest, RecyclesAcrossMultipleWrapArounds) {
  const std::string dir = TempDir("wrap");
  SegmentStore store(MakeOptions(dir, 2, 4));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 43;
  StreamGenerator gen(cfg);
  std::deque<UncertainElement> reference;
  for (int i = 0; i < 12; ++i) {  // 3 full segments
    const UncertainElement e = gen.Take(1).front();
    reference.push_back(e);
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  // 160 rotations = 40 segment drains = each of the ~4 files recycled
  // ~10 times.
  for (int i = 0; i < 160; ++i) {
    UncertainElement out;
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ExpectElementsEqual(reference.front(), out);
    reference.pop_front();
    const UncertainElement e = gen.Take(1).front();
    reference.push_back(e);
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  const SegmentStore::Stats stats = store.stats();
  EXPECT_GE(stats.segments_recycled, 30u);
  EXPECT_LE(stats.segments_live, 5u);
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_LE(files, 6u);
  const std::vector<UncertainElement> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), reference.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    ExpectElementsEqual(reference[i], snap[i]);
  }
}

// A cursor opened before the head segment is drained keeps yielding the
// surviving elements in order: popped elements are skipped, elements
// pushed after creation are not yielded.
TEST(SegmentStoreTest, CursorSurvivesHeadRecycleMidIteration) {
  const std::string dir = TempDir("cursor");
  SegmentStore::Options opts = MakeOptions(dir, 3, 4);
  opts.resident_budget = 3;  // floor: cursor remaps evicted segments
  SegmentStore store(opts);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.seed = 47;
  StreamGenerator gen(cfg);
  const std::vector<UncertainElement> pushed = gen.Take(16);
  for (const auto& e : pushed) {
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  SegmentStore::Cursor cur = store.NewCursor();
  EXPECT_EQ(cur.remaining(), 16u);
  UncertainElement out;
  ASSERT_TRUE(cur.Next(&out));
  ExpectElementsEqual(pushed[0], out);
  ASSERT_TRUE(cur.Next(&out));
  ExpectElementsEqual(pushed[1], out);
  // Pop past the cursor position — including the whole head segment —
  // and push two replacements the cursor must NOT see.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
  }
  for (const auto& e : gen.Take(2)) {
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  EXPECT_EQ(cur.remaining(), 10u);  // pushed[6..16)
  for (size_t i = 6; i < 16; ++i) {
    ASSERT_TRUE(cur.Next(&out)) << "element " << i;
    ExpectElementsEqual(pushed[i], out);
  }
  EXPECT_FALSE(cur.Next(&out));
  EXPECT_EQ(cur.remaining(), 0u);
}

// Random access under a resident budget: the mapped-segment count stays
// within budget + 1 (the segment being read is protected while hot), and
// evicted segments fault back in with exact contents.
TEST(SegmentStoreTest, ResidentBudgetBoundsMappedSegments) {
  const std::string dir = TempDir("budget");
  SegmentStore::Options opts = MakeOptions(dir, 2, 4);
  opts.resident_budget = 4;
  SegmentStore store(opts);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 53;
  StreamGenerator gen(cfg);
  const std::vector<UncertainElement> pushed = gen.Take(64);  // 16 segments
  for (const auto& e : pushed) {
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  EXPECT_LE(store.stats().segments_resident, 4u);
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const size_t idx = static_cast<size_t>(rng.NextBounded(pushed.size()));
    ExpectElementsEqual(pushed[idx], store.At(idx));
    EXPECT_LE(store.stats().segments_resident, 5u) << "access " << i;
  }
  EXPECT_GT(store.stats().recycle_pressure, 0u);
  // Shrinking the budget evicts immediately, down to the pinned set.
  store.SetResidentBudget(3);
  EXPECT_LE(store.stats().segments_resident, 3u);
  // Unlimited budget: a full sweep maps everything and nothing evicts.
  store.SetResidentBudget(0);
  const uint64_t pressure_before = store.stats().recycle_pressure;
  const std::vector<UncertainElement> snap = store.Snapshot();
  ASSERT_EQ(snap.size(), pushed.size());
  for (size_t i = 0; i < snap.size(); ++i) {
    ExpectElementsEqual(pushed[i], snap[i]);
  }
  EXPECT_EQ(store.stats().segments_resident, store.stats().segments_live);
  EXPECT_EQ(store.stats().recycle_pressure, pressure_before);
}

// Steady-state FIFO rotation: the readahead cursor keeps the next expiry
// frontier mapped before PopFront reaches it, so front recycles are hits
// and residency stays at the steady-state minimum, independent of how
// many segments the window spans.
TEST(SegmentStoreTest, ReadaheadKeepsExpiryFrontierHot) {
  const std::string dir = TempDir("readahead");
  SegmentStore store(MakeOptions(dir, 2, 8));
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 59;
  StreamGenerator gen(cfg);
  for (int i = 0; i < 80; ++i) {  // 10 segments
    ASSERT_TRUE(store.PushBack(gen.Take(1).front(), &error)) << error;
  }
  // Pure FIFO traffic never needs more than head + readahead + tail.
  for (int i = 0; i < 800; ++i) {
    UncertainElement out;
    ASSERT_TRUE(store.PopFront(&out, &error)) << error;
    ASSERT_TRUE(store.PushBack(gen.Take(1).front(), &error)) << error;
    ASSERT_LE(store.stats().segments_resident, 4u) << "rotation " << i;
  }
  const SegmentStore::Stats stats = store.stats();
  EXPECT_GT(stats.readahead_hits, 0u);
  // The frontier was prefetched by the preceding recycle every time.
  EXPECT_EQ(stats.readahead_misses, 0u);
  EXPECT_EQ(stats.recycle_pressure, 0u);
}

// The operator-visible contract: a stream driven through StoredCountWindow
// produces bit-identical skyline state to the same stream through
// CountWindow (the --window-store=disk acceptance check, in-process).
TEST(StoredCountWindowTest, OperatorStateMatchesInMemoryWindow) {
  const std::string dir = TempDir("bitequal");
  const int dims = 3;
  const size_t capacity = 64;
  StoredCountWindow stored(capacity, MakeOptions(dir, dims, 16));
  std::string error;
  ASSERT_TRUE(stored.Init(&error)) << error;
  CountWindow window(capacity);

  SskyOperator disk_op(dims, 0.3);
  SskyOperator mem_op(dims, 0.3);
  StreamConfig cfg;
  cfg.dims = dims;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 31;
  StreamGenerator gen(cfg);

  for (int i = 0; i < 1500; ++i) {
    const UncertainElement e = gen.Take(1).front();
    if (stored.full()) {
      const UncertainElement disk_old = stored.PushRotate(e);
      const UncertainElement mem_old = window.PushRotate(e);
      ExpectElementsEqual(mem_old, disk_old);
      disk_op.Expire(disk_old);
      mem_op.Expire(mem_old);
    } else {
      stored.Push(e);
      window.Push(e);
    }
    disk_op.Insert(e);
    mem_op.Insert(e);
    ASSERT_EQ(disk_op.candidate_count(), mem_op.candidate_count())
        << "step " << i;
    ASSERT_EQ(disk_op.skyline_count(), mem_op.skyline_count())
        << "step " << i;
  }
  const auto disk_sky = disk_op.Skyline();
  const auto mem_sky = mem_op.Skyline();
  ASSERT_EQ(disk_sky.size(), mem_sky.size());
  for (size_t i = 0; i < disk_sky.size(); ++i) {
    EXPECT_EQ(disk_sky[i].element.seq, mem_sky[i].element.seq);
    EXPECT_EQ(disk_sky[i].psky, mem_sky[i].psky);  // bitwise
  }
  EXPECT_GT(stored.store_stats().segments_recycled, 0u);
}

}  // namespace
}  // namespace psky
