#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "geom/dominance.h"
#include "rtree/rtree.h"
#include "skyline/bbs.h"
#include "skyline/bnl.h"
#include "skyline/dc.h"
#include "skyline/sfs.h"
#include "stream/generator.h"

namespace psky {
namespace {

// Quadratic reference skyline.
std::vector<size_t> BruteSkyline(const std::vector<Point>& pts) {
  std::vector<size_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < pts.size() && !dominated; ++j) {
      if (j != i && Dominates(pts[j], pts[i])) dominated = true;
    }
    if (!dominated) out.push_back(i);
  }
  return out;
}

TEST(CertainSkyline, EmptyAndSingleton) {
  EXPECT_TRUE(BnlSkyline({}).empty());
  EXPECT_TRUE(SfsSkyline({}).empty());
  EXPECT_TRUE(DcSkyline({}).empty());
  std::vector<Point> one = {Point({1.0, 2.0})};
  EXPECT_EQ(BnlSkyline(one), std::vector<size_t>{0});
  EXPECT_EQ(SfsSkyline(one), std::vector<size_t>{0});
  EXPECT_EQ(DcSkyline(one), std::vector<size_t>{0});
}

TEST(CertainSkyline, DcHandlesHeavyDimensionTies) {
  // Many identical dim-0 values stress the divide step's tie handling.
  std::vector<Point> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back(Point({1.0, 300.0 - i}));
  }
  pts.push_back(Point({0.5, 500.0}));
  EXPECT_EQ(DcSkyline(pts), BnlSkyline(pts));
}

TEST(CertainSkyline, HandExample) {
  std::vector<Point> pts = {
      Point({1.0, 5.0}),  // skyline
      Point({2.0, 4.0}),  // skyline
      Point({3.0, 4.5}),  // dominated by (2,4)
      Point({0.5, 9.0}),  // skyline
      Point({2.0, 4.0}),  // duplicate of index 1: also skyline
  };
  const std::vector<size_t> expected = {0, 1, 3, 4};
  EXPECT_EQ(BnlSkyline(pts), expected);
  EXPECT_EQ(SfsSkyline(pts), expected);
}

TEST(CertainSkyline, AllOnAntiDiagonalAreSkyline) {
  std::vector<Point> pts;
  for (int i = 0; i <= 10; ++i) {
    pts.push_back(Point({i / 10.0, 1.0 - i / 10.0}));
  }
  EXPECT_EQ(BnlSkyline(pts).size(), pts.size());
  EXPECT_EQ(SfsSkyline(pts).size(), pts.size());
}

TEST(CertainSkyline, ChainHasSingleSkylinePoint) {
  std::vector<Point> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back(Point({1.0 + i, 1.0 + i, 1.0 + i}));
  }
  EXPECT_EQ(BnlSkyline(pts), std::vector<size_t>{0});
  EXPECT_EQ(SfsSkyline(pts), std::vector<size_t>{0});
}

class CertainSkylineParam
    : public ::testing::TestWithParam<std::tuple<int, SpatialDistribution>> {
};

TEST_P(CertainSkylineParam, AllAlgorithmsAgreeOnRandomData) {
  const auto [dims, dist] = GetParam();
  StreamConfig cfg;
  cfg.dims = dims;
  cfg.spatial = dist;
  cfg.seed = 1234 + dims;
  StreamGenerator gen(cfg);

  std::vector<Point> pts;
  RTree tree(dims);
  for (uint64_t i = 0; i < 800; ++i) {
    const Point p = gen.Next().pos;
    pts.push_back(p);
    tree.Insert(p, i);
  }

  const std::vector<size_t> brute = BruteSkyline(pts);
  EXPECT_EQ(BnlSkyline(pts), brute);
  EXPECT_EQ(SfsSkyline(pts), brute);
  EXPECT_EQ(DcSkyline(pts), brute);

  std::set<uint64_t> bbs_ids;
  for (const RTree::Item& item : BbsSkyline(tree)) bbs_ids.insert(item.id);
  const std::set<uint64_t> brute_ids(brute.begin(), brute.end());
  EXPECT_EQ(bbs_ids, brute_ids);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndDistributions, CertainSkylineParam,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(SpatialDistribution::kIndependent,
                                         SpatialDistribution::kCorrelated,
                                         SpatialDistribution::kAntiCorrelated)));

TEST(Bbs, ProgressiveOrderIsByMinDist) {
  Rng rng(5);
  RTree tree(2);
  for (uint64_t i = 0; i < 300; ++i) {
    Point p(2);
    p[0] = rng.NextDouble();
    p[1] = rng.NextDouble();
    tree.Insert(p, i);
  }
  const auto sky = BbsSkyline(tree);
  for (size_t i = 1; i < sky.size(); ++i) {
    const double prev = sky[i - 1].pos[0] + sky[i - 1].pos[1];
    const double cur = sky[i].pos[0] + sky[i].pos[1];
    EXPECT_LE(prev, cur + 1e-12);
  }
}

TEST(Bbs, EmptyTree) {
  RTree tree(3);
  EXPECT_TRUE(BbsSkyline(tree).empty());
}

}  // namespace
}  // namespace psky
