// Section III-B: harmonic numbers, the Theorem 7 dominance-count bound,
// and the Corollary 3 / Theorem 8 expected-size bounds, checked both
// analytically and against empirical measurements.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "base/stats.h"
#include "core/naive_operator.h"
#include "core/theory.h"
#include "geom/dominance.h"
#include "stream/generator.h"
#include "stream/window.h"

namespace psky {
namespace {

TEST(Harmonic, FirstOrderKnownValues) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1, 2), 1.5);
  EXPECT_NEAR(HarmonicNumber(1, 4), 25.0 / 12.0, 1e-12);
}

TEST(Harmonic, SecondOrderByDefinition) {
  // H_{2,l} = sum_{i<=l} H_{1,i}/i.
  double expect = 0.0;
  for (int64_t i = 1; i <= 10; ++i) {
    expect += HarmonicNumber(1, i) / static_cast<double>(i);
  }
  EXPECT_NEAR(HarmonicNumber(2, 10), expect, 1e-12);
}

TEST(Harmonic, GrowsLikeLogPower) {
  // H_{d,N} = O(ln^d N): the ratio H_{d,N} / ln^d N stays bounded.
  for (int d : {1, 2, 3}) {
    const double h = HarmonicNumber(d, 1 << 16);
    const double lnn = std::log(static_cast<double>(1 << 16));
    EXPECT_GT(h, std::pow(lnn, d) / 50.0);
    EXPECT_LT(h, 3.0 * std::pow(lnn, d));
  }
}

TEST(Harmonic, MonotoneInBothArguments) {
  for (int d = 1; d <= 4; ++d) {
    EXPECT_LT(HarmonicNumber(d, 100), HarmonicNumber(d, 200));
  }
  for (int64_t l : {10, 100, 1000}) {
    EXPECT_LT(HarmonicNumber(1, l), HarmonicNumber(2, l));
    EXPECT_LT(HarmonicNumber(2, l), HarmonicNumber(3, l));
  }
}

TEST(DominanceBound, OneDimensionalExact) {
  EXPECT_DOUBLE_EQ(DominanceCountBound(1, 100, 0), 0.01);
  EXPECT_DOUBLE_EQ(DominanceCountBound(1, 100, 9), 0.10);
  EXPECT_DOUBLE_EQ(DominanceCountBound(1, 100, 99), 1.0);
}

TEST(DominanceBound, CappedAtOne) {
  EXPECT_LE(DominanceCountBound(3, 10, 9), 1.0);
  EXPECT_LE(DominanceCountBound(2, 100, 80), 1.0);
}

// Empirical check of Theorem 7: P(DOMT_i^k) <= bound for uniform i.i.d.
// data.
TEST(DominanceBound, HoldsEmpirically) {
  Rng rng(2025);
  const int d = 2;
  const int n = 200;
  const int trials = 300;
  for (int64_t k : {0, 2, 8}) {
    int satisfied = 0;
    for (int t = 0; t < trials; ++t) {
      std::vector<Point> pts;
      for (int i = 0; i < n; ++i) {
        Point p(d);
        for (int j = 0; j < d; ++j) p[j] = rng.NextDouble();
        pts.push_back(p);
      }
      // Count dominators of point 0.
      int dom = 0;
      for (int i = 1; i < n; ++i) {
        if (Dominates(pts[static_cast<size_t>(i)], pts[0])) ++dom;
      }
      if (dom <= k) ++satisfied;
    }
    const double empirical = static_cast<double>(satisfied) / trials;
    const double bound = DominanceCountBound(d, n, k);
    // Allow 3-sigma statistical slack on the empirical side.
    const double sigma = std::sqrt(empirical * (1 - empirical) / trials);
    EXPECT_LE(empirical - 3 * sigma, bound)
        << "k = " << k << " empirical " << empirical << " bound " << bound;
  }
}

TEST(ExpectedSizeBounds, ZeroWhenThresholdAboveProbability) {
  EXPECT_DOUBLE_EQ(ExpectedSkylineSizeBound(3, 1000, 0.2, 0.5), 0.0);
}

TEST(ExpectedSizeBounds, MonotoneInThreshold) {
  double prev = 1e18;
  for (double q : {0.1, 0.3, 0.5, 0.7}) {
    const double b = ExpectedSkylineSizeBound(3, 10000, 0.8, q);
    EXPECT_LE(b, prev + 1e-9);
    prev = b;
  }
}

TEST(ExpectedSizeBounds, PolylogarithmicGrowth) {
  // Doubling N repeatedly must grow the bound far slower than linearly.
  const double b1 = ExpectedSkylineSizeBound(3, 1 << 12, 0.5, 0.3);
  const double b2 = ExpectedSkylineSizeBound(3, 1 << 16, 0.5, 0.3);
  EXPECT_LT(b2 / b1, 16.0);  // N grew 16x
}

TEST(ExpectedSizeBounds, CandidateBoundAtLeastSkylineBound) {
  for (double q : {0.2, 0.4}) {
    const double sky = ExpectedSkylineSizeBound(3, 5000, 0.5, q);
    const double cand = ExpectedCandidateSizeBound(3, 5000, 0.5, q);
    EXPECT_GE(cand, sky);
  }
}

// Empirical check of the paper's Theorem 6 / Theorem 8 quantities: the
// bound of Corollary 3 is on the *weighted* expected sizes — each
// q-skyline element counts with weight P_sky (the probability it actually
// appears undominated in the realized world), and each candidate with
// weight P_new. The measured weighted sums must stay below the bounds.
TEST(ExpectedSizeBounds, HoldEmpirically) {
  const int d = 2;
  const size_t n = 400;
  const double p = 0.5;
  const double q = 0.3;

  StreamConfig cfg;
  cfg.dims = d;
  cfg.spatial = SpatialDistribution::kIndependent;
  cfg.seed = 7;
  StreamGenerator gen(cfg);

  RunningStats sky_stats, cand_stats;
  const int windows = 30;
  for (int t = 0; t < windows; ++t) {
    NaiveSkylineOperator op(d, q);
    for (UncertainElement e : gen.Take(n)) {
      e.prob = p;  // constant probability as in the analysis
      op.Insert(e);
    }
    double sky_sum = 0.0, cand_sum = 0.0;
    for (const SkylineMember& m : op.Candidates()) {
      // NOTE: for the q-skyline, P_new computed over S_{N,q} equals the
      // true value (Theorem 2) and P_sky of skyline members is exact
      // (Corollary 1), so restricted values are valid here.
      cand_sum += m.pnew;
      if (m.in_skyline) sky_sum += m.psky;
    }
    sky_stats.Add(sky_sum);
    cand_stats.Add(cand_sum);
  }
  // The d = 2 skyline bound is tight (Theorem 7 holds with equality), so
  // compare with three standard errors of statistical slack.
  const double sky_se = sky_stats.stddev() / std::sqrt(windows);
  const double cand_se = cand_stats.stddev() / std::sqrt(windows);
  EXPECT_LE(sky_stats.mean(),
            ExpectedSkylineSizeBound(d, static_cast<int64_t>(n), p, q) +
                3.0 * sky_se);
  EXPECT_LE(cand_stats.mean(),
            ExpectedCandidateSizeBound(d, static_cast<int64_t>(n), p, q) +
                3.0 * cand_se);
  // The bounds should not be vacuous either (within ~100x of reality).
  EXPECT_LT(ExpectedSkylineSizeBound(d, static_cast<int64_t>(n), p, q),
            100.0 * (sky_stats.mean() + 1.0));
}

}  // namespace
}  // namespace psky
