// Tests for the worker pool (base/thread_pool.h) and its two consumers:
// the MSKY operator's parallel threshold fan-out (results must be
// identical to the sequential loop) and the auditor's asynchronous
// shadow-oracle replay (must catch the same corruptions the synchronous
// oracle catches, and stay silent on honest streams).

#include "base/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/audit.h"
#include "core/msky_operator.h"
#include "core/operator.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"

namespace psky {
namespace {

TEST(ThreadPool, RunsSubmittedWork) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AsyncReturnsValues) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Async([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ShutdownIsIdempotentAndDrains) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) pool.Submit([&count] { count.fetch_add(1); });
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);
}

// Regression: concurrent Shutdown() calls used to let later callers
// return while the first was still joining workers (and both touched
// workers_ unsynchronized). Every caller must return only after all
// workers are joined and all queued work ran.
TEST(ThreadPool, ConcurrentShutdownDrainsAndJoinsOnce) {
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    std::vector<std::thread> closers;
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&pool] { pool.Shutdown(); });
    }
    for (auto& t : closers) t.join();
    // Any caller returning early would race this read against live
    // workers (TSan) or observe a short count.
    EXPECT_EQ(count.load(), 64);
    EXPECT_EQ(pool.GetStatus().active, 0);
  }
}

TEST(ThreadPool, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  auto f = pool.Async([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

// --- MSKY parallel fan-out ------------------------------------------------

void LoadMsky(MskyOperator* op) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 21;
  StreamGenerator gen(cfg);
  CountWindow win(3000);
  for (int i = 0; i < 8000; ++i) {
    const UncertainElement e = gen.Next();
    if (auto expired = win.Push(e)) op->Expire(*expired);
    op->Insert(e);
  }
}

void ExpectSameMembers(const std::vector<SkylineMember>& a,
                       const std::vector<SkylineMember>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].element.seq, b[i].element.seq);
    EXPECT_EQ(a[i].psky, b[i].psky);
  }
}

TEST(MskyParallel, SkylineAllMatchesSequential) {
  MskyOperator op(3, {0.8, 0.55, 0.3});
  LoadMsky(&op);
  ThreadPool pool(4);
  const auto parallel = op.SkylineAll(&pool);
  const auto sequential = op.SkylineAll(nullptr);
  ASSERT_EQ(parallel.size(), sequential.size());
  ASSERT_EQ(parallel.size(), static_cast<size_t>(op.num_thresholds()));
  for (size_t i = 0; i < parallel.size(); ++i) {
    ExpectSameMembers(parallel[i], sequential[i]);
    ExpectSameMembers(parallel[i], op.Skyline(static_cast<int>(i) + 1));
  }
}

TEST(MskyParallel, AdHocManyMatchesSequential) {
  MskyOperator op(3, {0.8, 0.55, 0.3});
  LoadMsky(&op);
  ThreadPool pool(4);
  const std::vector<double> qs = {0.95, 0.8, 0.61, 0.45, 0.3};
  const auto par_results = op.AdHocQueryMany(qs, &pool);
  const auto seq_results = op.AdHocQueryMany(qs, nullptr);
  ASSERT_EQ(par_results.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    ExpectSameMembers(par_results[i], seq_results[i]);
    ExpectSameMembers(par_results[i], op.AdHocQuery(qs[i]));
  }
  const auto par_counts = op.AdHocCountMany(qs, &pool);
  ASSERT_EQ(par_counts.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(par_counts[i], op.AdHocCount(qs[i]));
    EXPECT_EQ(par_counts[i], par_results[i].size());
  }
}

// --- asynchronous shadow oracle -------------------------------------------

struct AuditRig {
  SskyOperator op{3, 0.3};
  CountWindow window{400};

  void Feed(StreamGenerator* gen, AuditManager* audit, int n,
            bool* all_ok = nullptr) {
    for (int i = 0; i < n; ++i) {
      const UncertainElement e = gen->Next();
      if (auto expired = window.Push(e)) op.Expire(*expired);
      op.Insert(e);
      const bool ok = audit->Step();
      if (all_ok != nullptr) *all_ok &= ok;
    }
  }
};

TEST(AsyncOracle, CleanStreamReplaysWithoutViolations) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kIndependent;
  cfg.seed = 31;
  StreamGenerator gen(cfg);
  ThreadPool pool(2);
  AuditRig rig;
  AuditOptions options;
  options.mode = AuditMode::kCheck;
  options.audit_every = 0;
  options.oracle_every = 100;
  options.pool = &pool;
  AuditManager audit(&rig.op, options,
                     [&rig] { return rig.window.Snapshot(); });
  bool all_ok = true;
  rig.Feed(&gen, &audit, 1200, &all_ok);
  EXPECT_TRUE(audit.Drain());
  EXPECT_TRUE(all_ok);
  EXPECT_GE(audit.report().oracle_replays, 10u);
  EXPECT_EQ(audit.report().oracle_mismatches, 0u);
  EXPECT_EQ(audit.report().violations_unrepaired, 0u);
}

TEST(AsyncOracle, DetectsInjectedCorruption) {
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kIndependent;
  cfg.seed = 32;
  StreamGenerator gen(cfg);
  ThreadPool pool(2);
  AuditRig rig;
  AuditOptions options;
  options.mode = AuditMode::kCheck;
  options.audit_every = 0;  // isolate the oracle path
  options.oracle_every = 50;
  options.pool = &pool;
  AuditManager audit(&rig.op, options,
                     [&rig] { return rig.window.Snapshot(); });
  rig.Feed(&gen, &audit, 600);

  // Corrupt a current skyline member's P_old so it silently drops out of
  // the reported q-skyline — exactly what accumulated drift would do.
  const auto window = rig.window.Snapshot();
  bool corrupted = false;
  for (auto it = window.rbegin(); it != window.rend() && !corrupted; ++it) {
    const auto view = rig.op.tree().LookupForAudit(it->pos, it->seq);
    if (view.found && view.band == 1) {
      rig.op.mutable_tree()->RepairElement(it->pos, it->seq, view.pnew_log,
                                           view.pold_log - 5.0);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);

  // Two oracle periods plus a drain guarantee the corruption is both
  // replayed against and harvested.
  rig.Feed(&gen, &audit, 120);
  audit.Drain();
  EXPECT_GE(audit.report().oracle_mismatches, 1u);
  EXPECT_GE(audit.report().violations_unrepaired, 1u);
}

}  // namespace
}  // namespace psky
