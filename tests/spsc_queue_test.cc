// SPSC queue unit tests. The two-thread cases are the interesting ones:
// they run under TSan in CI (sanitizers job), so the release/acquire
// index protocol and the seq-cst doorbell fences get checked against
// real interleavings, not just code review.

#include "base/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace psky {
namespace {

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueue, FifoOrderSingleThread) {
  SpscQueue<int> q(8);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.PopBatch(&out, 100), 5u);
  EXPECT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(SpscQueue, PopBatchAppendsWithoutClearing) {
  SpscQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(1));
  std::vector<int> out{7};
  EXPECT_EQ(q.PopBatch(&out, 4), 1u);
  EXPECT_EQ(out, (std::vector<int>{7, 1}));
}

TEST(SpscQueue, CloseDrainsThenReportsEmpty) {
  SpscQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(5));
  q.Close();
  EXPECT_FALSE(q.TryPush(6));
  std::vector<int> out;
  EXPECT_EQ(q.PopBatch(&out, 4), 1u);
  EXPECT_EQ(out, (std::vector<int>{5}));
  EXPECT_EQ(q.PopBatch(&out, 4), 0u);  // closed and drained, no block
}

TEST(SpscQueue, CloseWakesBlockedConsumer) {
  SpscQueue<int> q(4);
  std::thread consumer([&q] {
    std::vector<int> out;
    EXPECT_EQ(q.PopBatch(&out, 4), 0u);
  });
  q.Close();
  consumer.join();
}

// Tiny queue, big stream: the producer blocks on full and the consumer
// on empty constantly, hammering both doorbell directions.
TEST(SpscQueue, TwoThreadOrderAndCompleteness) {
  constexpr uint64_t kCount = 200000;
  SpscQueue<uint64_t> q(16);
  uint64_t sum = 0;
  std::thread consumer([&q, &sum] {
    std::vector<uint64_t> out;
    uint64_t expect = 0;
    while (true) {
      out.clear();
      const size_t n = q.PopBatch(&out, 64);
      if (n == 0) break;
      for (const uint64_t v : out) {
        ASSERT_EQ(v, expect);  // strict FIFO
        ++expect;
        sum += v;
      }
    }
  });
  for (uint64_t i = 0; i < kCount; ++i) ASSERT_TRUE(q.Push(i));
  q.Close();
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// Move-only payloads must pass through without copies compiling.
TEST(SpscQueue, MoveOnlyPayload) {
  SpscQueue<std::unique_ptr<int>> q(4);
  ASSERT_TRUE(q.Push(std::make_unique<int>(42)));
  std::vector<std::unique_ptr<int>> out;
  ASSERT_EQ(q.PopBatch(&out, 4), 1u);
  EXPECT_EQ(*out[0], 42);
}

}  // namespace
}  // namespace psky
