// Write-ahead log: record round trips, torn/corrupt tail handling on
// every byte class a crash can leave behind (truncated frame, torn body,
// bit flip, zero-length tail), repair idempotence, rotation and
// retention, and the disk-pressure governor's hysteresis.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injection.h"
#include "core/checkpoint.h"
#include "stream/generator.h"
#include "store/wal.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

std::string TempDir(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      (std::string("psky_wal_") + tag + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

WalRecord MakeRecord(int dims, uint64_t step, uint64_t seed) {
  StreamConfig cfg;
  cfg.dims = dims;
  cfg.seed = seed + step;
  StreamGenerator gen(cfg);
  WalRecord r;
  r.element = gen.Take(1).front();
  r.element.seq = step - 1;
  r.step_after = step;
  r.next_seq_after = step;
  r.lines_after = step * 2;
  r.skipped_total = step / 7;
  r.clamped_total = step / 11;
  r.ooo_total = step / 13;
  return r;
}

void ExpectRecordsEqual(const WalRecord& a, const WalRecord& b) {
  EXPECT_EQ(a.step_after, b.step_after);
  EXPECT_EQ(a.next_seq_after, b.next_seq_after);
  EXPECT_EQ(a.lines_after, b.lines_after);
  EXPECT_EQ(a.skipped_total, b.skipped_total);
  EXPECT_EQ(a.clamped_total, b.clamped_total);
  EXPECT_EQ(a.ooo_total, b.ooo_total);
  EXPECT_EQ(a.element.seq, b.element.seq);
  // Bitwise double equality: the format stores raw IEEE-754 bits.
  EXPECT_EQ(a.element.prob, b.element.prob);
  EXPECT_EQ(a.element.time, b.element.time);
  EXPECT_EQ(a.element.pos, b.element.pos);
}

// Writes `n` records into a fresh log and returns its path.
std::string WriteLog(const std::string& dir, int dims, uint64_t start,
                     int n) {
  const std::string path = dir + "/" + WalFileName(start);
  WalWriter w;
  std::string error;
  int err = 0;
  EXPECT_TRUE(
      w.Create(path, static_cast<uint32_t>(dims), start, &error, &err))
      << error;
  for (int i = 1; i <= n; ++i) {
    EXPECT_TRUE(w.Append(MakeRecord(dims, start + static_cast<uint64_t>(i),
                                    99),
                         &error, &err))
        << error;
  }
  EXPECT_TRUE(w.Sync(&error, &err)) << error;
  w.Close();
  return path;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(WalRecordFormat, EncodeDecodeRoundTrip) {
  for (int dims = 1; dims <= 5; ++dims) {
    const WalRecord r = MakeRecord(dims, 17, 42);
    WalRecord back;
    std::string error;
    ASSERT_TRUE(DecodeWalRecordBody(EncodeWalRecord(r), &back, &error))
        << error;
    ExpectRecordsEqual(r, back);
  }
}

TEST(WalRecordFormat, RejectsTruncatedBody) {
  const std::string body = EncodeWalRecord(MakeRecord(3, 1, 1));
  for (size_t cut = 0; cut < body.size(); ++cut) {
    WalRecord out;
    std::string error;
    EXPECT_FALSE(
        DecodeWalRecordBody(body.substr(0, cut), &out, &error))
        << "length " << cut << " decoded";
  }
}

TEST(WalFile, WriteReadRoundTrip) {
  const std::string dir = TempDir("roundtrip");
  const std::string path = WriteLog(dir, 3, 100, 20);
  WalContents contents;
  std::string error;
  ASSERT_TRUE(ReadWalFile(path, &contents, &error)) << error;
  EXPECT_EQ(contents.dims, 3u);
  EXPECT_EQ(contents.start_step, 100u);
  EXPECT_FALSE(contents.tail_truncated);
  ASSERT_EQ(contents.records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    ExpectRecordsEqual(MakeRecord(3, 100 + static_cast<uint64_t>(i) + 1, 99),
                       contents.records[static_cast<size_t>(i)]);
  }
}

TEST(WalFile, RejectsBadMagicAndShortHeader) {
  const std::string dir = TempDir("header");
  const std::string path = WriteLog(dir, 2, 0, 1);
  std::string bytes = Slurp(path);
  WalContents contents;
  std::string error;

  std::string bad = bytes;
  bad[0] = 'X';
  Spit(path, bad);
  EXPECT_FALSE(ReadWalFile(path, &contents, &error));

  Spit(path, bytes.substr(0, 10));  // shorter than a header
  EXPECT_FALSE(ReadWalFile(path, &contents, &error));
}

// Every truncation point inside the record area yields the longest valid
// record prefix — never an error, never a partial record.
TEST(WalFile, TruncatedTailRecoversValidPrefix) {
  const std::string dir = TempDir("trunc");
  const std::string path = WriteLog(dir, 2, 0, 8);
  const std::string bytes = Slurp(path);
  WalContents full;
  std::string error;
  ASSERT_TRUE(DecodeWalBytes(bytes, &full, &error)) << error;
  ASSERT_EQ(full.valid_bytes, bytes.size());

  for (size_t cut = 24; cut < bytes.size(); ++cut) {
    WalContents contents;
    ASSERT_TRUE(DecodeWalBytes(bytes.substr(0, cut), &contents, &error))
        << "cut at " << cut << ": " << error;
    EXPECT_LE(contents.valid_bytes, cut);
    EXPECT_EQ(contents.tail_truncated, contents.valid_bytes != cut);
    for (size_t i = 0; i < contents.records.size(); ++i) {
      ExpectRecordsEqual(full.records[i], contents.records[i]);
    }
  }
}

// A flipped bit anywhere in the final frame fails its CRC (or its frame
// geometry) and cuts the tail; earlier records survive untouched.
TEST(WalFile, BitFlipInTailRecordIsDetected) {
  const std::string dir = TempDir("bitflip");
  const std::string path = WriteLog(dir, 2, 0, 4);
  const std::string bytes = Slurp(path);
  WalContents full;
  std::string error;
  ASSERT_TRUE(DecodeWalBytes(bytes, &full, &error)) << error;
  const size_t last_frame_start =
      bytes.size() - (8 + EncodeWalRecord(full.records[3]).size());

  for (size_t pos = last_frame_start; pos < bytes.size(); ++pos) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    WalContents contents;
    ASSERT_TRUE(DecodeWalBytes(bad, &contents, &error)) << error;
    EXPECT_TRUE(contents.tail_truncated) << "flip at " << pos;
    EXPECT_LE(contents.records.size(), 3u) << "flip at " << pos;
    for (size_t i = 0; i < contents.records.size(); ++i) {
      ExpectRecordsEqual(full.records[i], contents.records[i]);
    }
  }
}

// A tail of zero bytes (preallocated-but-unwritten blocks after a crash)
// is a zero-length frame with CRC 0 over nothing — it must still be cut,
// not decoded as an empty record.
TEST(WalFile, ZeroFilledTailIsCut) {
  const std::string dir = TempDir("zeros");
  const std::string path = WriteLog(dir, 2, 0, 3);
  const std::string bytes = Slurp(path);
  for (size_t zeros : {1u, 7u, 8u, 9u, 64u}) {
    WalContents contents;
    std::string error;
    ASSERT_TRUE(DecodeWalBytes(bytes + std::string(zeros, '\0'), &contents,
                               &error))
        << error;
    EXPECT_TRUE(contents.tail_truncated) << zeros << " zero bytes";
    EXPECT_EQ(contents.records.size(), 3u);
    EXPECT_EQ(contents.valid_bytes, bytes.size());
  }
}

// An absurd frame length (corrupt length field) must not trigger a giant
// allocation; it is a torn tail like any other.
TEST(WalFile, OversizedFrameLengthIsCut) {
  const std::string dir = TempDir("oversize");
  const std::string path = WriteLog(dir, 2, 0, 2);
  std::string bytes = Slurp(path);
  const char huge[8] = {'\xff', '\xff', '\xff', '\x7f', 0, 0, 0, 0};
  bytes.append(huge, sizeof huge);
  WalContents contents;
  std::string error;
  ASSERT_TRUE(DecodeWalBytes(bytes, &contents, &error)) << error;
  EXPECT_TRUE(contents.tail_truncated);
  EXPECT_EQ(contents.records.size(), 2u);
}

TEST(WalFile, RepairTruncatesTornTailAndIsIdempotent) {
  const std::string dir = TempDir("repair");
  const std::string path = WriteLog(dir, 2, 0, 5);
  const std::string bytes = Slurp(path);
  Spit(path, bytes.substr(0, bytes.size() - 3));  // tear the last record

  std::string error;
  ASSERT_TRUE(RepairWalFile(path, &error)) << error;
  WalContents contents;
  ASSERT_TRUE(ReadWalFile(path, &contents, &error)) << error;
  EXPECT_FALSE(contents.tail_truncated);
  EXPECT_EQ(contents.records.size(), 4u);

  const std::string repaired = Slurp(path);
  ASSERT_TRUE(RepairWalFile(path, &error)) << error;  // no-op second pass
  EXPECT_EQ(Slurp(path), repaired);
}

TEST(WalWriterTest, AppendAfterTornTailContinuesCleanly) {
  const std::string dir = TempDir("append");
  const std::string path = WriteLog(dir, 2, 10, 4);
  const std::string bytes = Slurp(path);
  Spit(path, bytes.substr(0, bytes.size() - 5));

  WalWriter w;
  std::string error;
  int err = 0;
  uint64_t next_step = 0;
  ASSERT_TRUE(w.OpenForAppend(path, &error, &err, &next_step)) << error;
  EXPECT_EQ(next_step, 14u);  // 3 whole records survive after step 10
  ASSERT_TRUE(w.Append(MakeRecord(2, next_step, 99), &error, &err)) << error;
  ASSERT_TRUE(w.Sync(&error, &err)) << error;
  w.Close();

  WalContents contents;
  ASSERT_TRUE(ReadWalFile(path, &contents, &error)) << error;
  EXPECT_FALSE(contents.tail_truncated);
  ASSERT_EQ(contents.records.size(), 4u);
  EXPECT_EQ(contents.records.back().step_after, 14u);
}

TEST(WalWriterTest, CreateRefusesExistingFile) {
  const std::string dir = TempDir("exists");
  const std::string path = WriteLog(dir, 2, 0, 1);
  WalWriter w;
  std::string error;
  int err = 0;
  EXPECT_FALSE(w.Create(path, 2, 0, &error, &err));
}

TEST(WalWriterTest, RotationStartsNewLogAndListsInOrder) {
  const std::string dir = TempDir("rotate");
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      w.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  for (uint64_t step = 1; step <= 6; ++step) {
    ASSERT_TRUE(w.Append(MakeRecord(2, step, 5), &error, &err)) << error;
    if (step % 2 == 0) {
      ASSERT_TRUE(w.RotateTo(dir, step, &error, &err)) << error;
    }
  }
  w.Close();
  EXPECT_EQ(w.stats().rotations, 3u);

  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), 4u);
  uint64_t prev = 0;
  for (size_t i = 0; i < files.size(); ++i) {
    uint64_t start = 0;
    ASSERT_TRUE(ParseWalStartStep(files[i], &start)) << files[i];
    EXPECT_EQ(start, i == 0 ? 0 : prev + 2);
    prev = start;
    WalContents contents;
    ASSERT_TRUE(ReadWalFile(files[i], &contents, &error)) << error;
    EXPECT_EQ(contents.start_step, start);
    // Each rotation happened right after appending records 2k-1, 2k.
    EXPECT_EQ(contents.records.size(), i == files.size() - 1 ? 0u : 2u);
  }
}

TEST(WalWriterTest, PruneKeepsFilesACheckpointCanNeed) {
  const std::string dir = TempDir("prune");
  for (uint64_t start : {0u, 10u, 20u, 30u}) WriteLog(dir, 2, start, 2);
  // Oldest retained checkpoint is at step 20: wal-0 and wal-10 only hold
  // records at or before it (their successors start at 10 and 20).
  EXPECT_EQ(PruneWalFiles(dir, 20), 2u);
  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  uint64_t start = 0;
  ASSERT_TRUE(ParseWalStartStep(files[0], &start));
  EXPECT_EQ(start, 20u);
}

// The psky_stream startup sweep (RemoveStaleCheckpointTemps) reaps any
// "*.tmp" in the durable directory — which now includes WAL rotation
// temps a crash mid-rotation leaves behind. Finished logs stay put.
TEST(WalWriterTest, StartupSweepReapsOrphanedRotationTemps) {
  const std::string dir = TempDir("tmpsweep");
  WriteLog(dir, 2, 0, 2);
  std::ofstream(dir + "/" + WalFileName(50) + ".tmp") << "torn rotation";
  std::ofstream(dir + "/ckpt-00000000000000000009.psky.tmp") << "torn ckpt";
  EXPECT_EQ(RemoveStaleCheckpointTemps(dir), 2u);
  EXPECT_TRUE(fs::exists(dir + "/" + WalFileName(0)));
  EXPECT_FALSE(fs::exists(dir + "/" + WalFileName(50) + ".tmp"));
  EXPECT_EQ(ListWalFiles(dir).size(), 1u);  // temps are never listed
}

TEST(WalWriterTest, ParseRejectsUnrelatedNames) {
  uint64_t start = 0;
  EXPECT_FALSE(ParseWalStartStep("ckpt-00000000000000000001.psky", &start));
  EXPECT_FALSE(ParseWalStartStep("wal-123.pskywal", &start));
  EXPECT_FALSE(
      ParseWalStartStep("wal-0000000000000000000x.pskywal", &start));
  EXPECT_TRUE(ParseWalStartStep(WalFileName(42), &start));
  EXPECT_EQ(start, 42u);
}

TEST(WalWriterTest, FaultSitesInjectFailures) {
  const std::string dir = TempDir("faults");
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      w.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;

  ASSERT_TRUE(fault::LoadSchedule(
      "fail=wal-append@2;fail=wal-fsync@1:enospc", &error))
      << error;
  EXPECT_TRUE(w.Append(MakeRecord(2, 1, 3), &error, &err));
  err = 0;
  EXPECT_FALSE(w.Append(MakeRecord(2, 2, 3), &error, &err));
  EXPECT_EQ(err, EIO);
  err = 0;
  EXPECT_FALSE(w.Sync(&error, &err));
  EXPECT_EQ(err, ENOSPC);
  EXPECT_TRUE(w.Sync(&error, &err)) << error;  // second attempt succeeds
  fault::Clear();
  w.Close();
}

TEST(WalWriterTest, AsyncSyncDurableAfterBarrier) {
  const std::string dir = TempDir("async");
  const std::string path = dir + "/" + WalFileName(0);
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(w.Create(path, 2, 0, &error, &err)) << error;
  w.SetAsyncSync(true);
  EXPECT_TRUE(w.async_sync());

  constexpr uint64_t kRecords = 40;
  for (uint64_t step = 1; step <= kRecords; ++step) {
    ASSERT_TRUE(w.Append(MakeRecord(2, step, 7), &error, &err)) << error;
    if (step % 4 == 0) {
      ASSERT_TRUE(w.Sync(&error, &err)) << error;
    }
  }
  ASSERT_TRUE(w.SyncBarrier(&error, &err)) << error;
  EXPECT_GT(w.stats().async_syncs, 0u);
  EXPECT_EQ(w.stats().async_syncs, w.stats().syncs);
  // Latency is recorded per completed fdatasync and read-once.
  w.TakeAsyncSyncLatencyMs();
  EXPECT_EQ(w.TakeAsyncSyncLatencyMs(), 0u);
  w.Close();

  WalContents contents;
  ASSERT_TRUE(ReadWalFile(path, &contents, &error)) << error;
  EXPECT_FALSE(contents.tail_truncated);
  ASSERT_EQ(contents.records.size(), kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) {
    ExpectRecordsEqual(MakeRecord(2, i + 1, 7), contents.records[i]);
  }
}

// Rotation must not close an fd with a background fdatasync in flight:
// RotateTo barriers first. Both files decode cleanly afterwards.
TEST(WalWriterTest, AsyncSyncSurvivesRotation) {
  const std::string dir = TempDir("asyncrot");
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      w.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  w.SetAsyncSync(true);
  for (uint64_t step = 1; step <= 4; ++step) {
    ASSERT_TRUE(w.Append(MakeRecord(2, step, 9), &error, &err)) << error;
    ASSERT_TRUE(w.Sync(&error, &err)) << error;
    if (step == 2) {
      ASSERT_TRUE(w.RotateTo(dir, step, &error, &err)) << error;
    }
  }
  w.Close();

  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  for (const std::string& f : files) {
    WalContents contents;
    ASSERT_TRUE(ReadWalFile(f, &contents, &error)) << error;
    EXPECT_FALSE(contents.tail_truncated);
    EXPECT_EQ(contents.records.size(), 2u);
  }
}

// Regression (TSan): the background sync worker used to read the live
// path_ while the appender thread rewrote it during rotation; the fd and
// path are now published together under the async lock. Hammering
// RotateTo/Sync cycles in async mode exercises that publish protocol on
// every rotation — under TSan the pre-fix code reports a race here.
TEST(WalWriterTest, AsyncSyncRotationCyclesKeepEveryLogDecodable) {
  const std::string dir = TempDir("asynccycles");
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      w.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  w.SetAsyncSync(true);
  constexpr uint64_t kRotations = 8;
  constexpr uint64_t kPerLog = 5;
  uint64_t step = 0;
  for (uint64_t rot = 0; rot < kRotations; ++rot) {
    for (uint64_t i = 0; i < kPerLog; ++i) {
      ++step;
      ASSERT_TRUE(w.Append(MakeRecord(2, step, 3), &error, &err)) << error;
      ASSERT_TRUE(w.Sync(&error, &err)) << error;
    }
    ASSERT_TRUE(w.RotateTo(dir, step, &error, &err)) << error;
  }
  w.Close();
  EXPECT_EQ(w.stats().rotations, kRotations);

  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), kRotations + 1);
  uint64_t records = 0;
  for (const std::string& f : files) {
    WalContents contents;
    ASSERT_TRUE(ReadWalFile(f, &contents, &error)) << error;
    EXPECT_FALSE(contents.tail_truncated);
    records += contents.records.size();
  }
  EXPECT_EQ(records, kRotations * kPerLog);
}

// The wal-fsync fault site fires on the caller thread even in async
// mode, so chaos schedules behave identically in both sync modes.
TEST(WalWriterTest, AsyncSyncFaultSiteFiresOnCaller) {
  const std::string dir = TempDir("asyncfault");
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      w.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  w.SetAsyncSync(true);
  ASSERT_TRUE(w.Append(MakeRecord(2, 1, 11), &error, &err)) << error;

  ASSERT_TRUE(fault::LoadSchedule("fail=wal-fsync@1:enospc", &error))
      << error;
  err = 0;
  EXPECT_FALSE(w.Sync(&error, &err));
  EXPECT_EQ(err, ENOSPC);
  EXPECT_TRUE(w.Sync(&error, &err)) << error;  // retry succeeds
  fault::Clear();
  ASSERT_TRUE(w.SyncBarrier(&error, &err)) << error;
  w.Close();

  WalContents contents;
  ASSERT_TRUE(
      ReadWalFile(dir + "/" + WalFileName(0), &contents, &error))
      << error;
  EXPECT_EQ(contents.records.size(), 1u);
}

// Toggling async off drains the background thread; the writer then runs
// plain synchronous group commit again.
TEST(WalWriterTest, AsyncSyncToggleOffDrains) {
  const std::string dir = TempDir("asynctoggle");
  WalWriter w;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      w.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  w.SetAsyncSync(true);
  ASSERT_TRUE(w.Append(MakeRecord(2, 1, 13), &error, &err)) << error;
  ASSERT_TRUE(w.Sync(&error, &err)) << error;
  w.SetAsyncSync(false);
  EXPECT_FALSE(w.async_sync());
  ASSERT_TRUE(w.Append(MakeRecord(2, 2, 13), &error, &err)) << error;
  ASSERT_TRUE(w.Sync(&error, &err)) << error;
  EXPECT_EQ(w.stats().async_syncs, 1u);
  EXPECT_EQ(w.stats().syncs, 2u);
  w.Close();

  WalContents contents;
  ASSERT_TRUE(
      ReadWalFile(dir + "/" + WalFileName(0), &contents, &error))
      << error;
  EXPECT_EQ(contents.records.size(), 2u);
}

TEST(DiskPressureGovernorTest, EscalatesAndRecoversWithHysteresis) {
  DiskPressureGovernor::Options opts;
  opts.slow_sync_ms = 50;
  opts.escalate_factor = 4;
  opts.max_multiplier = 16;
  opts.recover_after = 3;
  DiskPressureGovernor gov(opts);
  EXPECT_EQ(gov.multiplier(), 1u);

  EXPECT_TRUE(gov.ObserveSync(true, 0));  // transient failure
  EXPECT_EQ(gov.multiplier(), 4u);
  EXPECT_TRUE(gov.ObserveSync(false, 80));  // slow sync
  EXPECT_EQ(gov.multiplier(), 16u);
  EXPECT_FALSE(gov.ObserveSync(true, 0));  // already at the ceiling
  EXPECT_EQ(gov.multiplier(), 16u);
  EXPECT_EQ(gov.escalations(), 2u);

  // Recovery needs recover_after *consecutive* clean syncs per step.
  EXPECT_FALSE(gov.ObserveSync(false, 1));
  EXPECT_FALSE(gov.ObserveSync(false, 1));
  EXPECT_TRUE(gov.ObserveSync(false, 1));
  EXPECT_EQ(gov.multiplier(), 4u);
  EXPECT_FALSE(gov.ObserveSync(false, 1));
  EXPECT_FALSE(gov.ObserveSync(false, 1));
  EXPECT_TRUE(gov.ObserveSync(false, 60));  // slow: re-escalates
  EXPECT_EQ(gov.multiplier(), 16u);
  EXPECT_EQ(gov.escalations(), 3u);
  for (int i = 0; i < 6; ++i) gov.ObserveSync(false, 1);
  EXPECT_EQ(gov.multiplier(), 1u);
  EXPECT_EQ(gov.recoveries(), 3u);
}

}  // namespace
}  // namespace psky
