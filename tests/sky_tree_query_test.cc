// Query-path coverage of the aggregate sky-tree: ForEach / CollectAtLeast
// / CountAtLeast / TopK consistency with each other and with oracles,
// across live streams with pending lazy state.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/sky_tree.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "test_util.h"

namespace psky {
namespace {

// A tree fed mid-stream so that lazy addends and dirty state are present
// when the queries run.
class SkyTreeQueryTest : public ::testing::Test {
 protected:
  void Feed(SkyTree* tree, size_t n, size_t window, uint64_t seed) {
    StreamConfig cfg;
    cfg.dims = 3;
    cfg.spatial = SpatialDistribution::kAntiCorrelated;
    cfg.seed = seed;
    StreamGenerator gen(cfg);
    CountWindow win(window);
    for (size_t i = 0; i < n; ++i) {
      UncertainElement e = gen.Next();
      e.prob = ClampProb(e.prob);
      if (auto expired = win.Push(e)) tree->Expire(*expired);
      tree->Arrive(e);
    }
  }
};

TEST_F(SkyTreeQueryTest, ForEachVisitsEveryCandidateOnce) {
  SkyTree tree(3, {0.3});
  Feed(&tree, 500, 80, 11);
  std::set<uint64_t> seen;
  size_t visits = 0;
  tree.ForEach([&](const SkylineMember& m, int band) {
    ++visits;
    EXPECT_TRUE(seen.insert(m.element.seq).second) << "duplicate visit";
    EXPECT_GE(band, 1);
    EXPECT_LE(band, 2);
    EXPECT_GT(m.psky, 0.0);
    EXPECT_LE(m.psky, 1.0 + 1e-12);
    EXPECT_LE(m.pnew, 1.0 + 1e-12);
    EXPECT_LE(m.pold, 1.0 + 1e-12);
  });
  EXPECT_EQ(visits, tree.size());
}

TEST_F(SkyTreeQueryTest, CollectAtLeastEqualsForEachFilter) {
  SkyTree tree(3, {0.2});
  Feed(&tree, 600, 100, 13);
  for (double qp : {0.2, 0.35, 0.6, 0.9}) {
    std::set<uint64_t> want;
    tree.ForEach([&](const SkylineMember& m, int) {
      if (m.psky >= qp) want.insert(m.element.seq);
    });
    const auto got = tree.CollectAtLeast(qp);
    std::set<uint64_t> got_set;
    for (const auto& m : got) got_set.insert(m.element.seq);
    // Tolerate only exact-boundary rounding differences.
    std::vector<uint64_t> diff;
    std::set_symmetric_difference(want.begin(), want.end(), got_set.begin(),
                                  got_set.end(), std::back_inserter(diff));
    EXPECT_TRUE(diff.empty())
        << diff.size() << " members differ at qp = " << qp;
  }
}

TEST_F(SkyTreeQueryTest, CountAtLeastEqualsCollectSize) {
  SkyTree tree(3, {0.25});
  Feed(&tree, 700, 120, 17);
  for (double qp : {0.25, 0.4, 0.55, 0.7, 0.85, 1.0}) {
    EXPECT_EQ(tree.CountAtLeast(qp), tree.CollectAtLeast(qp).size())
        << "qp = " << qp;
  }
}

TEST_F(SkyTreeQueryTest, CountAtLeastMonotoneInThreshold) {
  SkyTree tree(3, {0.2});
  Feed(&tree, 500, 90, 19);
  size_t prev = tree.size() + 1;
  for (double qp = 0.2; qp <= 1.0; qp += 0.1) {
    const size_t count = tree.CountAtLeast(qp);
    EXPECT_LE(count, prev);
    prev = count;
  }
}

TEST_F(SkyTreeQueryTest, TopKMatchesSortOfForEach) {
  SkyTree tree(3, {0.15});
  Feed(&tree, 600, 100, 23);
  std::vector<double> all;
  tree.ForEach([&all](const SkylineMember& m, int) { all.push_back(m.psky); });
  std::sort(all.rbegin(), all.rend());
  for (size_t k : {size_t{1}, size_t{5}, size_t{25}, all.size() + 10}) {
    const auto top = tree.TopK(k);
    ASSERT_EQ(top.size(), std::min(k, all.size()));
    for (size_t i = 0; i < top.size(); ++i) {
      EXPECT_NEAR(top[i].psky, all[i], 1e-9) << "rank " << i;
    }
  }
}

TEST_F(SkyTreeQueryTest, BandSizesSumToTreeSize) {
  SkyTree tree(3, {0.7, 0.4, 0.2});
  Feed(&tree, 800, 130, 29);
  size_t sum = 0;
  for (int b = 1; b <= tree.num_thresholds() + 1; ++b) {
    sum += tree.band_size(b);
  }
  EXPECT_EQ(sum, tree.size());
  EXPECT_EQ(tree.CountUpToBand(tree.num_thresholds() + 1), tree.size());
  // Band membership must match materialized P_sky.
  tree.ForEach([&tree](const SkylineMember& m, int band) {
    const auto& qs = tree.thresholds();
    const double hi = band == 1 ? 2.0 : qs[static_cast<size_t>(band) - 2];
    const double lo = band == tree.num_thresholds() + 1
                          ? 0.0
                          : qs[static_cast<size_t>(band) - 1];
    EXPECT_GE(m.psky, lo - 1e-9);
    EXPECT_LT(m.psky, hi + 1e-9);
  });
}

TEST_F(SkyTreeQueryTest, QueriesDoNotPerturbState) {
  SkyTree tree(3, {0.3});
  Feed(&tree, 400, 70, 31);
  const size_t size_before = tree.size();
  const size_t sky_before = tree.skyline_size();
  (void)tree.CollectAtLeast(0.5);
  (void)tree.CountAtLeast(0.4);
  (void)tree.TopK(7);
  tree.ForEach([](const SkylineMember&, int) {});
  EXPECT_EQ(tree.size(), size_before);
  EXPECT_EQ(tree.skyline_size(), sky_before);
  tree.CheckInvariants(true);
  // The tree must keep working after const queries.
  Feed(&tree, 100, 70, 37);
  tree.CheckInvariants(true);
}

TEST(SkyTreeEdge, ThresholdValidationAborts) {
  EXPECT_DEATH(SkyTree(2, std::vector<double>{}), "threshold");
  EXPECT_DEATH(SkyTree(2, {0.5, 0.5}), "decreasing");
  EXPECT_DEATH(SkyTree(2, {0.3, 0.5}), "decreasing");
  EXPECT_DEATH(SkyTree(2, {1.5}), "threshold");
}

TEST(SkyTreeEdge, RetentionNearQOne) {
  // q just below 1: only (near-)certain undominated elements qualify;
  // every element dominated by a certain one is evicted immediately.
  // (Exactly q = 1.0 is unreachable because probabilities are clamped to
  // 1 - 1e-12 — see ClampProb.)
  SskyOperator op(2, 1.0 - 1e-6);
  op.Insert(MakeElement({0.5, 0.5}, 1.0, 1));
  EXPECT_EQ(op.skyline_count(), 1u);
  op.Insert(MakeElement({0.6, 0.6}, 1.0, 2));  // dominated: evicted
  EXPECT_EQ(op.candidate_count(), 2u);  // arrival always enters with pnew=1
  EXPECT_EQ(op.skyline_count(), 1u);
  op.Insert(MakeElement({0.4, 0.4}, 1.0, 3));  // dominates seq 1 and 2
  EXPECT_EQ(op.candidate_count(), 1u);
  EXPECT_EQ(op.skyline_count(), 1u);
}

}  // namespace
}  // namespace psky
