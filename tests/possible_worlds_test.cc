#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "core/possible_worlds.h"
#include "core/snapshot.h"
#include "test_util.h"

namespace psky {
namespace {

// The running example of the paper (Figure 1a): coordinates reconstructed
// from the dominance relations stated in Examples 1-3, probabilities as
// given:
//   a1 = 0.9, a2 = 0.4, a3 = 0.3, a4 = 0.9, a5 = 0.1
//   a2 ≺ a1, a3 ≺ a1; a1, a2, a3, a5 ≺ a4; a5 incomparable with a1-a3.
std::vector<UncertainElement> PaperExample() {
  return {
      MakeElement({3.0, 4.0}, 0.9, 1),    // a1
      MakeElement({2.0, 2.0}, 0.4, 2),    // a2
      MakeElement({1.0, 3.0}, 0.3, 3),    // a3
      MakeElement({4.0, 5.0}, 0.9, 4),    // a4
      MakeElement({3.5, 4.5}, 0.1, 5),    // a5
  };
}

TEST(PossibleWorlds, PaperExample1Values) {
  const auto elems = PaperExample();
  // Example 1: P_new(a4) = 1 - P(a5) = 0.9,
  //            P_old(a4) = 0.6 * 0.7 * 0.1 = 0.042,
  //            P_sky(a4) = 0.9 * 0.9 * 0.042 ≈ 0.034.
  EXPECT_NEAR(PnewOf(elems, 3), 0.9, 1e-12);
  EXPECT_NEAR(PoldOf(elems, 3), 0.042, 1e-12);
  EXPECT_NEAR(SkylineProbabilityByFormula(elems, 3), 0.03402, 1e-12);
}

TEST(PossibleWorlds, PaperExample2CandidateSet) {
  const auto elems = PaperExample();
  // Example 2: with N = 5, q = 0.5: S = {a2, a3, a4, a5} because
  // P_new(a1) = 0.6 * 0.7 = 0.42 < 0.5.
  EXPECT_NEAR(PnewOf(elems, 0), 0.42, 1e-12);
  const std::vector<size_t> s = CandidateSetIndices(elems, 0.5);
  EXPECT_EQ(s, (std::vector<size_t>{1, 2, 3, 4}));
}

TEST(PossibleWorlds, EnumerationMatchesFormulaOnPaperExample) {
  const auto elems = PaperExample();
  for (size_t i = 0; i < elems.size(); ++i) {
    EXPECT_NEAR(SkylineProbabilityByEnumeration(elems, i),
                SkylineProbabilityByFormula(elems, i), 1e-12)
        << "element " << i;
  }
}

TEST(PossibleWorlds, SingleElement) {
  const std::vector<UncertainElement> one = {MakeElement({1.0, 1.0}, 0.7, 1)};
  EXPECT_NEAR(SkylineProbabilityByEnumeration(one, 0), 0.7, 1e-15);
  EXPECT_NEAR(SkylineProbabilityByFormula(one, 0), 0.7, 1e-15);
}

TEST(PossibleWorlds, DominatedByCertainElementHasZeroProbability) {
  const std::vector<UncertainElement> elems = {
      MakeElement({1.0, 1.0}, 1.0, 1),
      MakeElement({2.0, 2.0}, 0.8, 2),
  };
  EXPECT_NEAR(SkylineProbabilityByEnumeration(elems, 1), 0.0, 1e-15);
  EXPECT_NEAR(SkylineProbabilityByFormula(elems, 1), 0.0, 1e-15);
}

TEST(PossibleWorlds, EnumerationMatchesFormulaRandomized) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(3));
    const size_t n = 2 + rng.NextBounded(9);  // up to 10 elements
    std::vector<UncertainElement> elems;
    for (size_t i = 0; i < n; ++i) {
      UncertainElement e;
      e.pos = Point(d);
      for (int j = 0; j < d; ++j) e.pos[j] = rng.NextDouble();
      e.prob = 0.05 + 0.95 * rng.NextDouble();
      e.seq = i;
      elems.push_back(e);
    }
    const std::vector<double> all = AllSkylineProbabilities(elems);
    for (size_t i = 0; i < n; ++i) {
      const double enumerated = SkylineProbabilityByEnumeration(elems, i);
      EXPECT_NEAR(enumerated, all[i], 1e-10);
    }
  }
}

TEST(PossibleWorlds, DecompositionIdentity) {
  // Eq. (4): P_sky = P(a) * P_old(a) * P_new(a).
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<UncertainElement> elems;
    for (size_t i = 0; i < 12; ++i) {
      UncertainElement e;
      e.pos = Point(3);
      for (int j = 0; j < 3; ++j) e.pos[j] = rng.NextDouble();
      e.prob = 0.1 + 0.9 * rng.NextDouble();
      e.seq = i;
      elems.push_back(e);
    }
    for (size_t i = 0; i < elems.size(); ++i) {
      EXPECT_NEAR(
          SkylineProbabilityByFormula(elems, i),
          elems[i].prob * PnewOf(elems, i) * PoldOf(elems, i), 1e-12);
    }
  }
}

TEST(Snapshot, QSkylineSubsetOfCandidates) {
  Rng rng(9);
  std::vector<UncertainElement> elems;
  for (size_t i = 0; i < 40; ++i) {
    UncertainElement e;
    e.pos = Point(2);
    e.pos[0] = rng.NextDouble();
    e.pos[1] = rng.NextDouble();
    e.prob = 0.1 + 0.9 * rng.NextDouble();
    e.seq = i;
    elems.push_back(e);
  }
  for (double q : {0.1, 0.3, 0.7}) {
    const auto sky = QSkylineIndices(elems, q);
    const auto cand = CandidateSetIndices(elems, q);
    // Lemma 1: every q-skyline point is in S_{N,q}.
    for (size_t s : sky) {
      EXPECT_TRUE(std::find(cand.begin(), cand.end(), s) != cand.end());
    }
  }
}

TEST(Snapshot, ThresholdMonotonicity) {
  Rng rng(10);
  std::vector<UncertainElement> elems;
  for (size_t i = 0; i < 60; ++i) {
    UncertainElement e;
    e.pos = Point(3);
    for (int j = 0; j < 3; ++j) e.pos[j] = rng.NextDouble();
    e.prob = rng.NextDouble(0.05, 1.0);
    e.seq = i;
    elems.push_back(e);
  }
  size_t prev = elems.size() + 1;
  for (double q : {0.05, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const size_t count = QSkylineIndices(elems, q).size();
    EXPECT_LE(count, prev);
    prev = count;
  }
}

TEST(Snapshot, TopKOrderingAndCap) {
  Rng rng(11);
  std::vector<UncertainElement> elems;
  for (size_t i = 0; i < 50; ++i) {
    UncertainElement e;
    e.pos = Point(2);
    e.pos[0] = rng.NextDouble();
    e.pos[1] = rng.NextDouble();
    e.prob = rng.NextDouble(0.05, 1.0);
    e.seq = i;
    elems.push_back(e);
  }
  const auto psky = AllSkylineProbabilities(elems);
  const auto top = TopKSkylineIndices(elems, 0.1, 5);
  EXPECT_LE(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(psky[top[i - 1]], psky[top[i]]);
  }
  for (size_t idx : top) EXPECT_GE(psky[idx], 0.1);
}

}  // namespace
}  // namespace psky
