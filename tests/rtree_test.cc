#include <algorithm>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "base/random.h"
#include "rtree/rtree.h"

namespace psky {
namespace {

Point RandomPoint(Rng& rng, int d) {
  Point p(d);
  for (int i = 0; i < d; ++i) p[i] = rng.NextDouble();
  return p;
}

TEST(RTree, EmptyTree) {
  RTree tree(2);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_EQ(tree.Height(), 0);
  EXPECT_TRUE(tree.bounds().empty());
  tree.CheckInvariants();
  EXPECT_FALSE(tree.Erase(Point({0.0, 0.0}), 1));
}

TEST(RTree, InsertAndBounds) {
  RTree tree(2);
  tree.Insert(Point({1.0, 2.0}), 1);
  tree.Insert(Point({3.0, 0.5}), 2);
  EXPECT_EQ(tree.size(), 2u);
  EXPECT_EQ(tree.bounds().min(), Point({1.0, 0.5}));
  EXPECT_EQ(tree.bounds().max(), Point({3.0, 2.0}));
  tree.CheckInvariants();
}

TEST(RTree, RangeQueryMatchesLinearScan) {
  Rng rng(1);
  const int d = 3;
  RTree tree(d);
  std::vector<RTree::Item> all;
  for (uint64_t i = 0; i < 2000; ++i) {
    const Point p = RandomPoint(rng, d);
    tree.Insert(p, i);
    all.push_back({p, i});
  }
  tree.CheckInvariants();
  for (int trial = 0; trial < 50; ++trial) {
    Point lo(d), hi(d);
    for (int j = 0; j < d; ++j) {
      const double a = rng.NextDouble(), b = rng.NextDouble();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    const Mbr range(lo, hi);
    std::set<uint64_t> expected;
    for (const auto& item : all) {
      if (range.Contains(item.pos)) expected.insert(item.id);
    }
    std::set<uint64_t> got;
    tree.RangeQuery(range,
                    [&got](const RTree::Item& item) { got.insert(item.id); });
    EXPECT_EQ(expected, got);
  }
}

TEST(RTree, EraseExactMatchOnly) {
  RTree tree(2);
  tree.Insert(Point({1.0, 1.0}), 1);
  tree.Insert(Point({1.0, 1.0}), 2);  // same pos, different id
  EXPECT_FALSE(tree.Erase(Point({1.0, 1.0}), 3));
  EXPECT_TRUE(tree.Erase(Point({1.0, 1.0}), 1));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_FALSE(tree.Erase(Point({2.0, 1.0}), 2));  // wrong position
  EXPECT_TRUE(tree.Erase(Point({1.0, 1.0}), 2));
  EXPECT_TRUE(tree.empty());
  tree.CheckInvariants();
}

TEST(RTree, RandomInsertEraseChurnKeepsInvariants) {
  Rng rng(7);
  const int d = 2;
  RTree tree(d, RTree::Options{8, 3});
  std::vector<RTree::Item> live;
  uint64_t next_id = 0;
  for (int step = 0; step < 5000; ++step) {
    const bool insert = live.empty() || rng.NextBernoulli(0.6);
    if (insert) {
      const Point p = RandomPoint(rng, d);
      tree.Insert(p, next_id);
      live.push_back({p, next_id});
      ++next_id;
    } else {
      const size_t pick = rng.NextBounded(live.size());
      EXPECT_TRUE(tree.Erase(live[pick].pos, live[pick].id));
      live[pick] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(tree.size(), live.size());
    if (step % 500 == 0) tree.CheckInvariants();
  }
  tree.CheckInvariants();
  // Everything still present is findable.
  size_t found = 0;
  tree.RangeQuery(tree.bounds(), [&found](const RTree::Item&) { ++found; });
  EXPECT_EQ(found, live.size());
}

TEST(RTree, HeightGrowsLogarithmically) {
  Rng rng(3);
  RTree tree(2, RTree::Options{8, 3});
  for (uint64_t i = 0; i < 5000; ++i) tree.Insert(RandomPoint(rng, 2), i);
  // Fanout >= 3 above the leaves: height comfortably below 12 for 5000.
  EXPECT_GE(tree.Height(), 3);
  EXPECT_LE(tree.Height(), 12);
}

TEST(RTree, TraverseRespectsDescendPredicate) {
  Rng rng(9);
  RTree tree(2);
  for (uint64_t i = 0; i < 500; ++i) tree.Insert(RandomPoint(rng, 2), i);
  size_t visited = 0;
  tree.Traverse([](const Mbr&) { return false; },
                [&visited](const RTree::Item&) { ++visited; });
  EXPECT_EQ(visited, 0u);
  tree.Traverse([](const Mbr&) { return true; },
                [&visited](const RTree::Item&) { ++visited; });
  EXPECT_EQ(visited, 500u);
}

class RTreeFanoutTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(RTreeFanoutTest, ChurnAcrossFanouts) {
  const auto [max_entries, min_entries] = GetParam();
  Rng rng(11);
  RTree tree(3, RTree::Options{max_entries, min_entries});
  std::vector<RTree::Item> live;
  for (uint64_t i = 0; i < 1500; ++i) {
    const Point p = RandomPoint(rng, 3);
    tree.Insert(p, i);
    live.push_back({p, i});
  }
  for (int i = 0; i < 700; ++i) {
    const size_t pick = rng.NextBounded(live.size());
    ASSERT_TRUE(tree.Erase(live[pick].pos, live[pick].id));
    live[pick] = live.back();
    live.pop_back();
  }
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeFanoutTest,
                         ::testing::Values(std::make_tuple(4, 2),
                                           std::make_tuple(8, 3),
                                           std::make_tuple(16, 6),
                                           std::make_tuple(32, 12),
                                           std::make_tuple(64, 24)));

}  // namespace
}  // namespace psky
