#include <vector>
#include <algorithm>

#include <gtest/gtest.h>

#include "base/random.h"
#include "geom/dominance.h"
#include "geom/mbr.h"
#include "geom/point.h"

namespace psky {
namespace {

TEST(Point, ConstructionAndAccess) {
  Point p({1.0, 2.0, 3.0});
  EXPECT_EQ(p.dims(), 3);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[2], 3.0);
  p[1] = 9.0;
  EXPECT_DOUBLE_EQ(p[1], 9.0);
}

TEST(Point, FilledConstructor) {
  Point p(4, 0.5);
  EXPECT_EQ(p.dims(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(p[i], 0.5);
}

TEST(Point, Equality) {
  EXPECT_EQ(Point({1.0, 2.0}), Point({1.0, 2.0}));
  EXPECT_NE(Point({1.0, 2.0}), Point({1.0, 3.0}));
  EXPECT_NE(Point({1.0, 2.0}), Point({1.0, 2.0, 3.0}));
}

TEST(Dominance, StrictAndEqual) {
  EXPECT_TRUE(Dominates(Point({1.0, 2.0}), Point({2.0, 3.0})));
  EXPECT_TRUE(Dominates(Point({1.0, 2.0}), Point({1.0, 3.0})));
  EXPECT_FALSE(Dominates(Point({1.0, 2.0}), Point({1.0, 2.0})));  // equal
  EXPECT_FALSE(Dominates(Point({1.0, 4.0}), Point({2.0, 3.0})));  // incomp.
  EXPECT_FALSE(Dominates(Point({2.0, 3.0}), Point({1.0, 2.0})));
}

TEST(Dominance, DominatesOrEqual) {
  EXPECT_TRUE(DominatesOrEqual(Point({1.0, 2.0}), Point({1.0, 2.0})));
  EXPECT_TRUE(DominatesOrEqual(Point({1.0, 2.0}), Point({1.0, 3.0})));
  EXPECT_FALSE(DominatesOrEqual(Point({1.0, 4.0}), Point({2.0, 3.0})));
}

TEST(Dominance, AntisymmetricAndTransitiveRandomized) {
  Rng rng(42);
  for (int trial = 0; trial < 2000; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(4));
    Point a(d), b(d), c(d);
    for (int i = 0; i < d; ++i) {
      a[i] = rng.NextDouble();
      b[i] = rng.NextDouble();
      c[i] = rng.NextDouble();
    }
    // Antisymmetry.
    EXPECT_FALSE(Dominates(a, b) && Dominates(b, a));
    // Transitivity.
    if (Dominates(a, b) && Dominates(b, c)) {
      EXPECT_TRUE(Dominates(a, c));
    }
    // Irreflexivity.
    EXPECT_FALSE(Dominates(a, a));
  }
}

TEST(Mbr, ExpandAndContain) {
  Mbr m = Mbr::Empty(2);
  EXPECT_TRUE(m.empty());
  m.Expand(Point({1.0, 5.0}));
  EXPECT_FALSE(m.empty());
  m.Expand(Point({3.0, 2.0}));
  EXPECT_EQ(m.min(), Point({1.0, 2.0}));
  EXPECT_EQ(m.max(), Point({3.0, 5.0}));
  EXPECT_TRUE(m.Contains(Point({2.0, 3.0})));
  EXPECT_TRUE(m.Contains(Point({1.0, 2.0})));  // boundary inclusive
  EXPECT_FALSE(m.Contains(Point({0.5, 3.0})));
}

TEST(Mbr, AreaMarginOverlap) {
  Mbr a(Point({0.0, 0.0}), Point({2.0, 3.0}));
  EXPECT_DOUBLE_EQ(a.Area(), 6.0);
  EXPECT_DOUBLE_EQ(a.Margin(), 5.0);
  Mbr b(Point({1.0, 1.0}), Point({3.0, 2.0}));
  EXPECT_DOUBLE_EQ(a.OverlapArea(b), 1.0);
  EXPECT_TRUE(a.Intersects(b));
  Mbr c(Point({5.0, 5.0}), Point({6.0, 6.0}));
  EXPECT_DOUBLE_EQ(a.OverlapArea(c), 0.0);
  EXPECT_FALSE(a.Intersects(c));
}

TEST(Mbr, Enlargement) {
  Mbr a(Point({0.0, 0.0}), Point({2.0, 2.0}));
  Mbr b(Point({3.0, 0.0}), Point({4.0, 1.0}));
  // Union is [0,4]x[0,2] = 8; a is 4 -> enlargement 4.
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 4.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(Mbr, ContainsMbr) {
  Mbr outer(Point({0.0, 0.0}), Point({10.0, 10.0}));
  Mbr inner(Point({1.0, 1.0}), Point({2.0, 2.0}));
  EXPECT_TRUE(outer.Contains(inner));
  EXPECT_FALSE(inner.Contains(outer));
}

TEST(EntryDominance, FullPartialNone) {
  // Mirrors Figure 2 of the paper (minimization space).
  Mbr e(Point({2.0, 2.0}), Point({4.0, 4.0}));
  // E fully dominates E3: E.max strictly dominates E3.min.
  Mbr e3(Point({5.0, 5.0}), Point({7.0, 7.0}));
  EXPECT_EQ(Classify(e, e3), DomRelation::kFull);
  EXPECT_EQ(Classify(e3, e), DomRelation::kNone);
  // Partial: E.min dominates E1.max but E.max does not dominate E1.min.
  Mbr e1(Point({1.0, 3.0}), Point({3.0, 6.0}));
  EXPECT_EQ(Classify(e, e1), DomRelation::kPartial);
  // E1 does not dominate E (E1.min (1,3) !< E.max (4,4)? it does...).
  // Pick a genuine none case:
  Mbr above(Point({0.0, 5.0}), Point({1.0, 7.0}));
  EXPECT_EQ(Classify(above, e), DomRelation::kNone);
}

TEST(EntryDominance, SharedCornerIsConservativelyPartial) {
  // E.max == E'.min: the paper calls this full dominance when no element
  // sits on the shared corner; we classify it as partial (conservative).
  Mbr a(Point({0.0, 0.0}), Point({2.0, 2.0}));
  Mbr b(Point({2.0, 2.0}), Point({4.0, 4.0}));
  EXPECT_EQ(Classify(a, b), DomRelation::kPartial);
}

TEST(EntryDominance, PointVsMbr) {
  Mbr e(Point({2.0, 2.0}), Point({4.0, 4.0}));
  EXPECT_EQ(Classify(Point({1.0, 1.0}), e), DomRelation::kFull);
  EXPECT_EQ(Classify(Point({3.0, 1.0}), e), DomRelation::kPartial);
  EXPECT_EQ(Classify(Point({5.0, 5.0}), e), DomRelation::kNone);
  EXPECT_EQ(Classify(e, Point({5.0, 5.0})), DomRelation::kFull);
  EXPECT_EQ(Classify(e, Point({3.0, 5.0})), DomRelation::kPartial);
  EXPECT_EQ(Classify(e, Point({1.0, 1.0})), DomRelation::kNone);
}

TEST(Dominance, DominanceCompareMatchesDominates) {
  Rng rng(7);
  for (int trial = 0; trial < 5000; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(3));
    Point a(d), b(d);
    for (int i = 0; i < d; ++i) {
      // Coarse grid to exercise ties frequently.
      a[i] = static_cast<double>(rng.NextBounded(4));
      b[i] = static_cast<double>(rng.NextBounded(4));
    }
    const int rel = DominanceCompare(a, b);
    EXPECT_EQ((rel & 1) != 0, Dominates(a, b));
    EXPECT_EQ((rel & 2) != 0, Dominates(b, a));
  }
}

TEST(EntryDominance, ClassifyPointEntryMatchesClassify) {
  Rng rng(13);
  for (int trial = 0; trial < 5000; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(3));
    Point p(d), lo(d), hi(d);
    for (int i = 0; i < d; ++i) {
      p[i] = static_cast<double>(rng.NextBounded(5));
      const double a = static_cast<double>(rng.NextBounded(5));
      const double b = static_cast<double>(rng.NextBounded(5));
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const Mbr box(lo, hi);
    const PointEntryRelation rel = ClassifyPointEntry(p, box);
    EXPECT_EQ(rel.entry_over_point, Classify(box, Mbr(p)));
    EXPECT_EQ(rel.point_over_entry, Classify(Mbr(p), box));
  }
}

// Theorem 1 (soundness of the classification): FULL implies every element
// pair dominates; NONE implies no element of E' is dominated by any
// element of E.
TEST(EntryDominance, ClassificationSoundOnRandomBoxes) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const int d = 2 + static_cast<int>(rng.NextBounded(3));
    // Random boxes with a few random member points each.
    auto make_box = [&rng, d](std::vector<Point>* pts) {
      Mbr box = Mbr::Empty(d);
      const int n = 2 + static_cast<int>(rng.NextBounded(4));
      for (int i = 0; i < n; ++i) {
        Point p(d);
        for (int j = 0; j < d; ++j) p[j] = rng.NextDouble();
        pts->push_back(p);
        box.Expand(p);
      }
      return box;
    };
    std::vector<Point> pa, pb;
    const Mbr a = make_box(&pa);
    const Mbr b = make_box(&pb);
    const DomRelation rel = Classify(a, b);
    if (rel == DomRelation::kFull) {
      for (const Point& x : pa) {
        for (const Point& y : pb) EXPECT_TRUE(Dominates(x, y));
      }
    }
    if (rel == DomRelation::kNone) {
      for (const Point& x : pa) {
        for (const Point& y : pb) EXPECT_FALSE(Dominates(x, y));
      }
    }
  }
}

}  // namespace
}  // namespace psky
