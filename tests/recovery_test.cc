// Recovery and historical replay: checkpoint + WAL tail reconstruction
// equals a continuously-run operator, crash-before-first-checkpoint
// recovery, replay-target parsing and planning (position and timestamp
// targets), and the retention error paths.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/naive_operator.h"
#include "core/ssky_operator.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "store/recovery.h"
#include "store/wal.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

constexpr int kDims = 3;
constexpr double kQ = 0.3;
constexpr size_t kCapacity = 40;

std::string TempDir(const char* tag) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      (std::string("psky_rec_") + tag + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<UncertainElement> MakeStream(size_t n, uint64_t seed) {
  StreamConfig cfg;
  cfg.dims = kDims;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = seed;
  StreamGenerator gen(cfg);
  return gen.Take(n);
}

// Drives the stream prefix [0, steps) the way psky_stream does —
// checkpointing and rotating the WAL every `ckpt_every` elements — and
// leaves the durable state in `dir`. Returns the operator state after
// the full prefix for comparison.
void RunDurablePrefix(const std::string& dir,
                      const std::vector<UncertainElement>& stream,
                      size_t steps, uint64_t ckpt_every) {
  SskyOperator op(kDims, kQ);
  CountWindow window(kCapacity);
  WalWriter wal;
  std::string error;
  int err = 0;
  ASSERT_TRUE(wal.Create(dir + "/" + WalFileName(0),
                         static_cast<uint32_t>(kDims), 0, &error, &err))
      << error;
  for (size_t i = 0; i < steps; ++i) {
    const UncertainElement& e = stream[i];
    WalRecord r;
    r.element = e;
    r.step_after = i + 1;
    r.next_seq_after = e.seq + 1;
    r.lines_after = 0;
    ASSERT_TRUE(wal.Append(r, &error, &err)) << error;
    if (window.full()) op.Expire(window.PushRotate(e));
    else window.Push(e);
    op.Insert(e);
    const uint64_t step = static_cast<uint64_t>(i) + 1;
    if (step % ckpt_every == 0) {
      CheckpointState state;
      state.dims = kDims;
      state.q = kQ;
      state.window_kind = WindowKind::kCount;
      state.window_capacity = kCapacity;
      state.elements_consumed = step;
      state.next_seq = e.seq + 1;
      state.window = window.Snapshot();
      ASSERT_TRUE(WriteCheckpointFile(
          dir + "/" + CheckpointFileName(step), state, &error))
          << error;
      ASSERT_TRUE(wal.RotateTo(dir, step, &error, &err)) << error;
    }
  }
  ASSERT_TRUE(wal.Sync(&error, &err)) << error;
  wal.Close();
}

// Rebuilds an operator from a RecoveredState the way psky_stream resumes.
void Rebuild(const RecoveredState& rec, SskyOperator* op,
             CountWindow* window) {
  ReplayWindow(rec.checkpoint, op);
  for (const auto& e : rec.checkpoint.window) window->Push(e);
  for (const WalRecord& r : rec.tail) {
    if (window->full()) op->Expire(window->PushRotate(r.element));
    else window->Push(r.element);
    op->Insert(r.element);
  }
}

void ExpectSkylinesEqual(SskyOperator& a, SskyOperator& b) {
  const auto sa = a.Skyline();
  const auto sb = b.Skyline();
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].element.seq, sb[i].element.seq);
    EXPECT_EQ(sa[i].psky, sb[i].psky);  // bitwise
  }
}

TEST(RecoverStateTest, CheckpointPlusTailMatchesContinuousRun) {
  const std::string dir = TempDir("ckpt_tail");
  const std::vector<UncertainElement> stream = MakeStream(300, 11);
  RunDurablePrefix(dir, stream, 300, 120);  // checkpoints at 120, 240

  RecoveredState rec;
  std::string error;
  ASSERT_TRUE(RecoverState(dir, &rec, &error)) << error;
  EXPECT_TRUE(rec.has_checkpoint);
  EXPECT_EQ(rec.checkpoint.elements_consumed, 240u);
  ASSERT_EQ(rec.tail.size(), 60u);
  EXPECT_EQ(rec.tail.front().step_after, 241u);
  EXPECT_EQ(rec.tail.back().step_after, 300u);
  EXPECT_FALSE(rec.tail_truncated);

  SskyOperator recovered_op(kDims, kQ);
  CountWindow recovered_window(kCapacity);
  Rebuild(rec, &recovered_op, &recovered_window);

  SskyOperator continuous(kDims, kQ);
  CountWindow window(kCapacity);
  for (const auto& e : stream) {
    if (window.full()) continuous.Expire(window.PushRotate(e));
    else window.Push(e);
    continuous.Insert(e);
  }
  ExpectSkylinesEqual(continuous, recovered_op);
}

TEST(RecoverStateTest, CrashBeforeFirstCheckpointRecoversFromWalAlone) {
  const std::string dir = TempDir("no_ckpt");
  const std::vector<UncertainElement> stream = MakeStream(50, 3);
  RunDurablePrefix(dir, stream, 50, 1000);  // never checkpoints

  RecoveredState rec;
  std::string error;
  ASSERT_TRUE(RecoverState(dir, &rec, &error)) << error;
  EXPECT_FALSE(rec.has_checkpoint);
  ASSERT_EQ(rec.tail.size(), 50u);
  EXPECT_EQ(rec.tail.front().step_after, 1u);
}

TEST(RecoverStateTest, TornWalTailSurvivesWithValidPrefix) {
  const std::string dir = TempDir("torn");
  const std::vector<UncertainElement> stream = MakeStream(30, 9);
  RunDurablePrefix(dir, stream, 30, 1000);
  const std::vector<std::string> files = ListWalFiles(dir);
  ASSERT_EQ(files.size(), 1u);
  fs::resize_file(files[0], fs::file_size(files[0]) - 7);

  RecoveredState rec;
  std::string error;
  ASSERT_TRUE(RecoverState(dir, &rec, &error)) << error;
  EXPECT_TRUE(rec.tail_truncated);
  ASSERT_EQ(rec.tail.size(), 29u);
  EXPECT_FALSE(rec.notes.empty());
}

TEST(RecoverStateTest, EmptyDirectoryIsNotRecoverable) {
  const std::string dir = TempDir("empty");
  RecoveredState rec;
  std::string error;
  EXPECT_FALSE(RecoverState(dir, &rec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ReplayTargetTest, ParsesPositionsAndTimestamps) {
  ReplayTarget t;
  std::string error;
  ASSERT_TRUE(ParseReplayTarget("1234", &t, &error)) << error;
  EXPECT_EQ(t.kind, ReplayTarget::Kind::kStep);
  EXPECT_EQ(t.step, 1234u);
  ASSERT_TRUE(ParseReplayTarget("ts:17.5", &t, &error)) << error;
  EXPECT_EQ(t.kind, ReplayTarget::Kind::kTime);
  EXPECT_DOUBLE_EQ(t.time, 17.5);
  EXPECT_FALSE(ParseReplayTarget("", &t, &error));
  EXPECT_FALSE(ParseReplayTarget("12x4", &t, &error));
  EXPECT_FALSE(ParseReplayTarget("ts:", &t, &error));
  EXPECT_FALSE(ParseReplayTarget("ts:abc", &t, &error));
}

TEST(PlanReplayTest, PositionTargetMatchesFreshRunAndOracle) {
  const std::string dir = TempDir("plan_pos");
  const std::vector<UncertainElement> stream = MakeStream(300, 21);
  RunDurablePrefix(dir, stream, 300, 120);

  for (const uint64_t target_step : {130u, 240u, 299u}) {
    ReplayTarget target;
    target.kind = ReplayTarget::Kind::kStep;
    target.step = target_step;
    RecoveredState plan;
    std::string error;
    ASSERT_TRUE(PlanReplay(dir, target, &plan, &error)) << error;
    EXPECT_EQ(plan.checkpoint.elements_consumed +
                  static_cast<uint64_t>(plan.tail.size()),
              target_step);

    SskyOperator replayed(kDims, kQ);
    CountWindow window(kCapacity);
    Rebuild(plan, &replayed, &window);

    // Fresh-run equivalence.
    SskyOperator fresh(kDims, kQ);
    CountWindow fresh_window(kCapacity);
    for (size_t i = 0; i < target_step; ++i) {
      const UncertainElement& e = stream[i];
      if (fresh_window.full()) fresh.Expire(fresh_window.PushRotate(e));
      else fresh_window.Push(e);
      fresh.Insert(e);
    }
    ExpectSkylinesEqual(fresh, replayed);

    // Audit-oracle equivalence: the naive operator over the replayed
    // window derives the same skyline definitionally.
    NaiveSkylineOperator oracle(kDims, kQ);
    for (const auto& e : window.Snapshot()) oracle.Insert(e);
    const auto oracle_sky = oracle.Skyline();
    const auto replay_sky = replayed.Skyline();
    ASSERT_EQ(oracle_sky.size(), replay_sky.size());
    for (size_t i = 0; i < oracle_sky.size(); ++i) {
      EXPECT_EQ(oracle_sky[i].element.seq, replay_sky[i].element.seq);
      EXPECT_NEAR(oracle_sky[i].psky, replay_sky[i].psky, 1e-9);
    }
  }
}

TEST(PlanReplayTest, TimestampTargetStopsAtTheRightRecord) {
  const std::string dir = TempDir("plan_time");
  std::vector<UncertainElement> stream = MakeStream(200, 8);
  for (size_t i = 0; i < stream.size(); ++i) {
    stream[i].time = static_cast<double>(i + 1);  // admitted, monotonic
  }
  RunDurablePrefix(dir, stream, 200, 80);

  ReplayTarget target;
  std::string error;
  ASSERT_TRUE(ParseReplayTarget("ts:150.5", &target, &error)) << error;
  RecoveredState plan;
  ASSERT_TRUE(PlanReplay(dir, target, &plan, &error)) << error;
  ASSERT_FALSE(plan.tail.empty());
  EXPECT_EQ(plan.checkpoint.elements_consumed +
                static_cast<uint64_t>(plan.tail.size()),
            150u);
  EXPECT_LE(plan.tail.back().element.time, 150.5);
}

TEST(PlanReplayTest, RejectsTargetsOutsideRetention) {
  const std::string dir = TempDir("plan_err");
  const std::vector<UncertainElement> stream = MakeStream(300, 4);
  RunDurablePrefix(dir, stream, 300, 120);
  // Emulate retention pruning: drop everything before checkpoint 240.
  PruneCheckpoints(dir, 1);
  PruneWalFiles(dir, 240);

  ReplayTarget target;
  target.kind = ReplayTarget::Kind::kStep;
  RecoveredState plan;
  std::string error;

  target.step = 100;  // predates the oldest retained checkpoint
  EXPECT_FALSE(PlanReplay(dir, target, &plan, &error));
  EXPECT_FALSE(error.empty());

  target.step = 10000;  // beyond the end of the log
  EXPECT_FALSE(PlanReplay(dir, target, &plan, &error));
  EXPECT_FALSE(error.empty());

  target.step = 270;  // inside retention still works
  EXPECT_TRUE(PlanReplay(dir, target, &plan, &error)) << error;
}

TEST(ParseCheckpointStepTest, AcceptsOnlyCanonicalNames) {
  uint64_t step = 0;
  EXPECT_TRUE(ParseCheckpointStep(CheckpointFileName(77), &step));
  EXPECT_EQ(step, 77u);
  EXPECT_TRUE(
      ParseCheckpointStep("/some/dir/" + CheckpointFileName(8), &step));
  EXPECT_EQ(step, 8u);
  EXPECT_FALSE(ParseCheckpointStep("ckpt-12.psky", &step));
  EXPECT_FALSE(ParseCheckpointStep(WalFileName(3), &step));
}

}  // namespace
}  // namespace psky
