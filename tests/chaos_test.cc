// Chaos harness: the seeded fault-injection schedule language, retry with
// jittered backoff over injected transient I/O errors, the retrying
// checkpoint/quarantine writers (including the fsync/rename regression the
// retry path exists for), quarantine burst governance, and an end-to-end
// pipeline run under a fault schedule with exact accounting.

#include <cerrno>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/fault_injection.h"
#include "base/retry.h"
#include "core/audit.h"
#include "core/checkpoint.h"
#include "core/overload.h"
#include "core/ssky_operator.h"
#include "store/segment_store.h"
#include "store/wal.h"
#include "stream/generator.h"
#include "stream/window.h"
#include "test_util.h"

namespace psky {
namespace {

namespace fs = std::filesystem;

std::string TempTestDir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() /
      (std::string(tag) + "_" +
       std::to_string(::testing::UnitTest::GetInstance()->random_seed()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

// Every test arms its own schedule; always disarm afterwards so fault
// state never leaks across tests (or into other suites via sharding).
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Clear(); }

  std::string Arm(const std::string& spec) {
    std::string error;
    EXPECT_TRUE(fault::LoadSchedule(spec, &error)) << error;
    return error;
  }
};

// --- schedule language ---------------------------------------------------

TEST_F(ChaosTest, DisarmedHooksAreInert) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_EQ(fault::FailErrno(fault::Site::kCheckpointFsync), 0);
  EXPECT_EQ(fault::DelayMs(fault::Site::kStep), 0u);
}

TEST_F(ChaosTest, FailClauseHitsExactOccurrences) {
  Arm("fail=ckpt-fsync@2..3:enospc");
  EXPECT_EQ(fault::FailErrno(fault::Site::kCheckpointFsync), 0);
  EXPECT_EQ(fault::FailErrno(fault::Site::kCheckpointFsync), ENOSPC);
  EXPECT_EQ(fault::FailErrno(fault::Site::kCheckpointFsync), ENOSPC);
  EXPECT_EQ(fault::FailErrno(fault::Site::kCheckpointFsync), 0);
  // Other sites are untouched.
  EXPECT_EQ(fault::FailErrno(fault::Site::kCheckpointRename), 0);
  EXPECT_EQ(fault::StatsSnapshot().failures_injected, 2u);
  EXPECT_EQ(fault::Occurrences(fault::Site::kCheckpointFsync), 4u);
}

TEST_F(ChaosTest, OpenRangeFailsForever) {
  Arm("fail=qrtn-write@3+");
  EXPECT_EQ(fault::FailErrno(fault::Site::kQuarantineWrite), 0);
  EXPECT_EQ(fault::FailErrno(fault::Site::kQuarantineWrite), 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fault::FailErrno(fault::Site::kQuarantineWrite), EIO);
  }
}

TEST_F(ChaosTest, DelayClauseReportsMilliseconds) {
  Arm("delay=step@1..2:7");
  EXPECT_EQ(fault::DelayMs(fault::Site::kStep), 7u);
  EXPECT_EQ(fault::DelayMs(fault::Site::kStep), 7u);
  EXPECT_EQ(fault::DelayMs(fault::Site::kStep), 0u);
  const fault::Stats s = fault::StatsSnapshot();
  EXPECT_EQ(s.delays_injected, 2u);
  EXPECT_EQ(s.delay_ms_total, 14u);
}

TEST_F(ChaosTest, ProbabilisticFailureIsSeededAndReproducible) {
  auto run = [this]() {
    Arm("seed=11;pfail=pool-task:0.5");
    std::vector<int> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(fault::FailErrno(fault::Site::kPoolTask));
    }
    return outcomes;
  };
  const std::vector<int> first = run();
  const std::vector<int> second = run();
  EXPECT_EQ(first, second);  // same seed, same schedule, same outcomes
  int failures = 0;
  for (int e : first) failures += e != 0 ? 1 : 0;
  EXPECT_GT(failures, 10);  // p=0.5 over 64 draws
  EXPECT_LT(failures, 54);
}

TEST_F(ChaosTest, MalformedSchedulesAreRejectedWithDiagnostics) {
  const char* bad[] = {
      "nonsense",           "fail=bogus-site@1",  "fail=step@",
      "fail=step@5..3",     "fail=step@1:ebogus", "pfail=step:1.5",
      "delay=step@1",       "seed=notanumber",    "fail=@1",
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(fault::LoadSchedule(spec, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
  // A rejected schedule must not arm anything.
  EXPECT_FALSE(fault::Enabled());
}

TEST_F(ChaosTest, EmptyScheduleDisarms) {
  Arm("fail=step@1+");
  EXPECT_TRUE(fault::Enabled());
  std::string error;
  EXPECT_TRUE(fault::LoadSchedule("", &error));
  EXPECT_FALSE(fault::Enabled());
}

// --- retry over injected faults ------------------------------------------

TEST(RetryTest, TransientErrnoClassification) {
  for (int e : {EIO, ENOSPC, EINTR, EAGAIN, EBUSY, EDQUOT}) {
    EXPECT_TRUE(IsTransientIoError(e)) << e;
  }
  for (int e : {0, EACCES, EROFS, ENOENT, EINVAL}) {
    EXPECT_FALSE(IsTransientIoError(e)) << e;
  }
}

TEST(RetryTest, BackoffGrowsExponentiallyAndRespectsCap) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10;
  policy.max_backoff_ms = 100;
  policy.jitter = 0.0;
  EXPECT_EQ(BackoffMs(policy, 0, 0.0), 10u);
  EXPECT_EQ(BackoffMs(policy, 1, 0.0), 20u);
  EXPECT_EQ(BackoffMs(policy, 2, 0.0), 40u);
  EXPECT_EQ(BackoffMs(policy, 4, 0.0), 100u);   // capped
  EXPECT_EQ(BackoffMs(policy, 63, 0.0), 100u);  // shift overflow guarded
}

TEST(RetryTest, JitterShrinksBackoffWithinBounds) {
  RetryPolicy policy;
  policy.base_backoff_ms = 100;
  policy.jitter = 0.5;
  // u01=0 → full backoff; u01→1 → (1 - jitter) * backoff.
  EXPECT_EQ(BackoffMs(policy, 0, 0.0), 100u);
  const uint64_t jittered = BackoffMs(policy, 0, 0.999);
  EXPECT_GE(jittered, 50u);
  EXPECT_LT(jittered, 100u);
}

TEST(RetryTest, RecoversWithinBudgetAndCountsBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.jitter = 0.0;
  policy.base_backoff_ms = 5;
  RetryStats stats;
  std::vector<uint64_t> sleeps;
  int calls = 0;
  const bool ok = RetryWithBackoff(
      policy,
      [&](int* err) {
        if (++calls < 3) {
          *err = EIO;
          return false;
        }
        return true;
      },
      &stats, [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(sleeps, (std::vector<uint64_t>{5, 10}));
  EXPECT_EQ(stats.backoff_ms_total, 15u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, PermanentErrorFailsWithoutRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  int calls = 0;
  const bool ok = RetryWithBackoff(
      policy,
      [&](int* err) {
        ++calls;
        *err = EACCES;
        return false;
      },
      &stats, [](uint64_t) {});
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 1);  // no retry can fix a permission problem
  EXPECT_EQ(stats.permanent_failures, 1u);
  EXPECT_EQ(stats.exhausted, 0u);
}

TEST(RetryTest, BudgetExhaustionIsCounted) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  int calls = 0;
  const bool ok = RetryWithBackoff(
      policy,
      [&](int* err) {
        ++calls;
        *err = ENOSPC;
        return false;
      },
      &stats, [](uint64_t) {});
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.exhausted, 1u);
}

// --- retrying checkpoint / quarantine writers ----------------------------

CheckpointState SmallState() {
  CheckpointState state;
  state.dims = 2;
  state.q = 0.3;
  state.window_kind = WindowKind::kCount;
  state.window_capacity = 8;
  state.elements_consumed = 42;
  state.next_seq = 42;
  for (uint64_t i = 0; i < 4; ++i) {
    const double v = static_cast<double>(i);
    state.window.push_back(MakeElement({1.0 + v, 2.0 - v * 0.1}, 0.8, i));
  }
  return state;
}

RetryPolicy FastRetry(int attempts) {
  RetryPolicy policy;
  policy.max_attempts = attempts;
  policy.base_backoff_ms = 0;
  policy.jitter = 0.0;
  return policy;
}

class ChaosIoTest : public ChaosTest {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("psky_chaos_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    ChaosTest::TearDown();
    fs::remove_all(dir_);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  fs::path dir_;
};

// Satellite regression: a checkpoint whose fsync AND rename both hit
// transient errors must come back recoverable through the retry path —
// previously any such failure was terminal for the run.
TEST_F(ChaosIoTest, CheckpointSurvivesTransientFsyncAndRenameFailures) {
  // Attempt 1 dies at fsync; attempt 2 survives fsync but dies at its
  // first rename; attempt 3 completes. Occurrences count per site.
  Arm("fail=ckpt-fsync@1:eio;fail=ckpt-rename@1:enospc");
  const CheckpointState state = SmallState();
  RetryStats stats;
  std::string error;
  ASSERT_TRUE(WriteCheckpointFileRetry(Path("ck.psky"), state, FastRetry(4),
                                       &stats, &error))
      << error;
  EXPECT_EQ(stats.retries, 2u);  // one fsync hit, one rename hit
  // The file on disk is complete and loadable.
  CheckpointState loaded;
  ASSERT_TRUE(ReadCheckpointFile(Path("ck.psky"), &loaded, &error)) << error;
  EXPECT_EQ(loaded.elements_consumed, 42u);
  EXPECT_EQ(loaded.window.size(), 4u);
}

TEST_F(ChaosIoTest, CheckpointErrnoIsReportedAndBudgetExhaustionFails) {
  Arm("fail=ckpt-write@1+:eio");
  RetryStats stats;
  std::string error;
  int err = 0;
  EXPECT_FALSE(
      WriteCheckpointFile(Path("ck.psky"), SmallState(), &error, &err));
  EXPECT_EQ(err, EIO);
  EXPECT_NE(error.find("injected"), std::string::npos);
  // Every retry re-hits the open range: the budget runs out.
  EXPECT_FALSE(WriteCheckpointFileRetry(Path("ck.psky"), SmallState(),
                                        FastRetry(3), &stats, &error));
  EXPECT_EQ(stats.exhausted, 1u);
  // No half-written checkpoint left in place.
  EXPECT_FALSE(fs::exists(Path("ck.psky")));
}

TEST_F(ChaosIoTest, QuarantineWriteRetriesInjectedFault) {
  Arm("fail=qrtn-write@1:eintr");
  QuarantineDump dump;
  dump.reason = "chaos test";
  dump.state = SmallState();
  RetryStats stats;
  std::string error;
  ASSERT_TRUE(WriteQuarantineFileRetry(Path("q.pskyq"), dump, FastRetry(2),
                                       &stats, &error))
      << error;
  EXPECT_EQ(stats.retries, 1u);
  QuarantineDump loaded;
  ASSERT_TRUE(ReadQuarantineFile(Path("q.pskyq"), &loaded, &error)) << error;
  EXPECT_EQ(loaded.reason, "chaos test");
}

// --- quarantine burst governance -----------------------------------------

TEST(QuarantineGovernorTest, OneDumpPerBurstWithMonotonicSequence) {
  QuarantineGovernor::Options options;
  options.burst_window_steps = 100;
  QuarantineGovernor governor(options);
  uint64_t seq = 0;
  // First failure of a burst is admitted.
  ASSERT_TRUE(governor.Admit(1000, &seq));
  EXPECT_EQ(seq, 1u);
  // A CHECK storm at nearby steps is one burst: suppressed.
  EXPECT_FALSE(governor.Admit(1000, &seq));
  EXPECT_FALSE(governor.Admit(1050, &seq));
  EXPECT_EQ(governor.dumps_suppressed(), 2u);
  // A failure beyond the burst window is new evidence.
  ASSERT_TRUE(governor.Admit(1100, &seq));
  EXPECT_EQ(seq, 2u);
  EXPECT_EQ(governor.dumps_admitted(), 2u);
}

TEST(QuarantineGovernorTest, SequencedFileNamesStaySortable) {
  const std::string a = QuarantineFileName(500, 1);
  const std::string b = QuarantineFileName(500, 2);
  const std::string c = QuarantineFileName(1500, 1);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  // Both naming forms keep the .pskyq suffix the tooling globs for.
  EXPECT_NE(a.find(".pskyq"), std::string::npos);
  EXPECT_NE(QuarantineFileName(500).find(".pskyq"), std::string::npos);
}

// --- end-to-end pipeline under chaos -------------------------------------

// Drives a generator stream through the queue + operator pipeline twice —
// once clean, once under a fault schedule with retries — and requires the
// chaotic run to (a) survive, (b) account for every element exactly, and
// (c) when the schedule injects only recoverable faults under the block
// policy, reach the identical final skyline.
TEST_F(ChaosIoTest, PipelineUnderChaosMatchesCleanRunExactly) {
  constexpr uint64_t kCount = 4000;
  constexpr size_t kWindow = 300;

  auto run = [&](bool chaotic) {
    if (chaotic) {
      Arm("seed=5;delay=step@100..120:1;fail=ckpt-fsync@1:eio;"
          "fail=ckpt-rename@1:enospc");
    } else {
      fault::Clear();
    }
    StreamConfig cfg;
    cfg.dims = 3;
    cfg.seed = 77;
    StreamGenerator gen(cfg);
    SskyOperator op(3, 0.3);
    CountWindow window(kWindow);
    BoundedIngestQueue queue(32, OverloadPolicy::kBlock);
    std::thread producer([&] {
      for (uint64_t i = 0; i < kCount; ++i) {
        IngestItem item;
        item.element = gen.Next();
        item.next_seq_after = item.element.seq + 1;
        if (!queue.Push(std::move(item))) break;
      }
      queue.CloseProducer();
    });
    uint64_t processed = 0;
    uint64_t checkpoints = 0;
    std::vector<IngestItem> batch;
    for (;;) {
      const size_t n = queue.PopBatch(&batch, 64, 50);
      if (n == 0) {
        if (queue.drained()) break;
        continue;
      }
      for (const auto& item : batch) {
        if (fault::Enabled()) fault::MaybeDelay(fault::Site::kStep);
        if (window.full()) op.Expire(window.PushRotate(item.element));
        else window.Push(item.element);
        op.Insert(item.element);
        ++processed;
        if (processed % 1000 == 0) {
          CheckpointState state;
          state.dims = 3;
          state.q = 0.3;
          state.window_kind = WindowKind::kCount;
          state.window_capacity = kWindow;
          state.window = window.Snapshot();
          state.elements_consumed = processed;
          state.next_seq = processed;
          RetryStats stats;
          std::string error;
          EXPECT_TRUE(WriteCheckpointFileRetry(Path("chaos_ck.psky"), state,
                                               FastRetry(4), &stats, &error))
              << error;
          ++checkpoints;
        }
      }
    }
    producer.join();
    EXPECT_EQ(processed, kCount);
    EXPECT_EQ(checkpoints, kCount / 1000);
    const QueueStats s = queue.StatsSnapshot();
    EXPECT_EQ(s.enqueued, kCount);
    EXPECT_EQ(s.dequeued, kCount);
    EXPECT_EQ(s.shed_oldest + s.shed_low_prob + s.shed_incoming, 0u);
    return SeqsOf(op.Skyline());
  };

  const std::vector<uint64_t> clean = run(false);
  const std::vector<uint64_t> chaotic = run(true);
  EXPECT_EQ(clean, chaotic);
  const fault::Stats fs_after = fault::StatsSnapshot();
  EXPECT_EQ(fs_after.failures_injected, 2u);  // both recovered by retry
  EXPECT_GE(fs_after.delays_injected, 21u);
}

// --- durability fault sites ----------------------------------------------

TEST_F(ChaosTest, WalAppendSiteInjectsScheduledFailures) {
  const std::string dir = TempTestDir("chaos_wal_append");
  WalWriter wal;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      wal.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  Arm("fail=wal-append@2:enospc");
  WalRecord r;
  r.element.pos = Point(2);
  r.element.prob = 0.5;
  r.step_after = 1;
  EXPECT_TRUE(wal.Append(r, &error, &err)) << error;
  r.step_after = 2;
  err = 0;
  EXPECT_FALSE(wal.Append(r, &error, &err));
  EXPECT_EQ(err, ENOSPC);
  EXPECT_TRUE(wal.Append(r, &error, &err)) << error;  // 3rd occurrence clean
  wal.Close();
}

// The production response to a transiently failing group-commit fsync is
// retry-with-backoff — the WAL is never dropped. An injected EIO on the
// first attempt must be absorbed by the retry budget.
TEST_F(ChaosTest, WalFsyncSiteRecoversUnderRetry) {
  const std::string dir = TempTestDir("chaos_wal_fsync");
  WalWriter wal;
  std::string error;
  int err = 0;
  ASSERT_TRUE(
      wal.Create(dir + "/" + WalFileName(0), 2, 0, &error, &err))
      << error;
  WalRecord r;
  r.element.pos = Point(2);
  r.element.prob = 0.5;
  r.step_after = 1;
  ASSERT_TRUE(wal.Append(r, &error, &err)) << error;

  Arm("fail=wal-fsync@1");
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1;
  RetryStats stats;
  std::vector<uint64_t> sleeps;
  EXPECT_TRUE(RetryWithBackoff(
      policy, [&](int* e) { return wal.Sync(&error, e); }, &stats,
      [&](uint64_t ms) { sleeps.push_back(ms); }));
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(wal.pending(), 0u);
  wal.Close();

  WalContents contents;
  ASSERT_TRUE(ReadWalFile(dir + "/" + WalFileName(0), &contents, &error))
      << error;
  EXPECT_EQ(contents.records.size(), 1u);
}

TEST_F(ChaosTest, SegmentMapSiteInjectsScheduledFailures) {
  SegmentStore::Options opts;
  opts.dir = TempTestDir("chaos_seg_map");
  opts.dims = 2;
  opts.elements_per_segment = 2;
  SegmentStore store(opts);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  Arm("fail=segment-map@2:enospc");
  UncertainElement e;
  e.pos = Point(2);
  e.prob = 0.5;
  for (int i = 0; i < 2; ++i) {
    e.seq = static_cast<uint64_t>(i);
    ASSERT_TRUE(store.PushBack(e, &error)) << error;  // first map is clean
  }
  e.seq = 2;  // needs a second segment: the injected map failure fires
  EXPECT_FALSE(store.PushBack(e, &error));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.PushBack(e, &error)) << error;
  EXPECT_EQ(store.size(), 3u);
}

TEST_F(ChaosTest, SegmentRecycleSiteInjectsScheduledFailures) {
  SegmentStore::Options opts;
  opts.dir = TempTestDir("chaos_seg_recycle");
  opts.dims = 2;
  opts.elements_per_segment = 2;
  SegmentStore store(opts);
  std::string error;
  ASSERT_TRUE(store.Init(&error)) << error;
  UncertainElement e;
  e.pos = Point(2);
  e.prob = 0.5;
  for (int i = 0; i < 4; ++i) {
    e.seq = static_cast<uint64_t>(i);
    ASSERT_TRUE(store.PushBack(e, &error)) << error;
  }
  Arm("fail=segment-recycle@1");
  UncertainElement out;
  ASSERT_TRUE(store.PopFront(&out, &error)) << error;
  EXPECT_FALSE(store.PopFront(&out, &error));  // drain hits the injection
  EXPECT_EQ(store.size(), 3u);
  ASSERT_TRUE(store.PopFront(&out, &error)) << error;  // retry succeeds
  EXPECT_EQ(out.seq, 1u);
}

// --- documentation lockstep ----------------------------------------------

// docs/operations.md documents the chaos-schedule site grammar; this
// lint-style test fails whenever a site is added to fault_injection.cc
// without updating the runbook (or vice versa).
TEST(ChaosDocsTest, OperationsRunbookListsExactlyTheImplementedSites) {
  std::ifstream in(PSKY_DOCS_OPERATIONS_PATH);
  ASSERT_TRUE(in.is_open()) << "cannot open " << PSKY_DOCS_OPERATIONS_PATH;
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);

  // Collect the "<site> := a | b | ..." block: the marker line plus the
  // continuation lines, which all end with '|'.
  std::string block;
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t at = lines[i].find("<site> :=");
    if (at == std::string::npos) continue;
    block = lines[i].substr(at + std::string("<site> :=").size());
    while (!block.empty() &&
           block.find_last_not_of(" \t") != std::string::npos &&
           block[block.find_last_not_of(" \t")] == '|' &&
           i + 1 < lines.size()) {
      block += " " + lines[++i];
    }
    break;
  }
  ASSERT_FALSE(block.empty()) << "no '<site> :=' grammar block in the docs";

  std::set<std::string> documented;
  std::string token;
  std::istringstream tokens(block);
  while (tokens >> token) {
    if (token != "|") documented.insert(token);
  }
  std::set<std::string> implemented;
  for (int i = 0; i < fault::kSiteCount; ++i) {
    implemented.insert(fault::SiteName(static_cast<fault::Site>(i)));
  }
  EXPECT_EQ(documented, implemented)
      << "docs/operations.md chaos site list and fault_injection.cc "
         "disagree - update both together";
}

}  // namespace
}  // namespace psky
