// End-to-end integration: stream generators feeding windows feeding
// operators, time-based windows (Section VI), ad-hoc + continuous +
// top-k side by side, and long-run stability.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/msky_operator.h"
#include "geom/dominance.h"
#include "core/naive_operator.h"
#include "core/snapshot.h"
#include "core/ssky_operator.h"
#include "core/topk_operator.h"
#include "stream/generator.h"
#include "stream/stock.h"
#include "stream/window.h"
#include "test_util.h"

namespace psky {
namespace {

std::set<uint64_t> SeqSet(const std::vector<SkylineMember>& ms) {
  std::set<uint64_t> out;
  for (const auto& m : ms) out.insert(m.element.seq);
  return out;
}

TEST(Integration, TimeBasedWindowMatchesSnapshotOracle) {
  // Section VI: expire by timestamp instead of count. Drive SSKY from a
  // TimeWindow and compare against the definitional oracle on the window
  // contents after every step.
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 61;
  cfg.arrival_rate = 100.0;  // ~100 elements/second
  StreamGenerator gen(cfg);

  const double span = 0.25;  // ~25 live elements on average
  TimeWindow window(span);
  SskyOperator op(2, 0.3);
  std::vector<UncertainElement> expired;
  for (const UncertainElement& e : gen.Take(400)) {
    expired.clear();
    window.Push(e, &expired);
    for (const auto& old : expired) op.Expire(old);
    op.Insert(e);

    const auto snap = window.Snapshot();
    std::set<uint64_t> want;
    for (size_t idx : QSkylineIndices(snap, 0.3)) want.insert(snap[idx].seq);
    ASSERT_EQ(want, SeqSet(op.Skyline())) << "at seq " << e.seq;
  }
  op.tree().CheckInvariants(true);
}

TEST(Integration, AllOperatorsConsistentOnOneStream) {
  // SSKY, MSKY (whose first band equals SSKY's skyline at the same q) and
  // top-k (whose members are the highest-P_sky skyline elements) must all
  // tell one consistent story.
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 71;
  StreamGenerator gen(cfg);

  const double q = 0.3;
  SskyOperator ssky(3, q);
  MskyOperator msky(3, {0.7, 0.5, q});
  TopKSkylineOperator topk(3, q, 4);
  CountWindow window(60);

  for (const UncertainElement& e : gen.Take(400)) {
    if (auto expired = window.Push(e)) {
      ssky.Expire(*expired);
      msky.Expire(*expired);
      topk.Expire(*expired);
    }
    ssky.Insert(e);
    msky.Insert(e);
    topk.Insert(e);

    const auto sky = ssky.Skyline();
    ASSERT_EQ(SeqSet(sky), SeqSet(msky.Skyline(3)));

    // Top-k members must be among the skyline, with the largest P_sky.
    const auto top = topk.TopK();
    ASSERT_LE(top.size(), 4u);
    const auto sky_set = SeqSet(sky);
    double kth = 2.0;
    for (const auto& m : top) {
      EXPECT_TRUE(sky_set.count(m.element.seq));
      EXPECT_LE(m.psky, kth + 1e-9);
      kth = m.psky;
    }
    if (top.size() == 4) {
      // Every skyline element not reported must not beat the k-th.
      for (const auto& m : sky) {
        bool reported = false;
        for (const auto& t : top) {
          if (t.element.seq == m.element.seq) reported = true;
        }
        if (!reported) {
          EXPECT_LE(m.psky, kth + 1e-9);
        }
      }
    }
  }
}

TEST(Integration, StockMonitoringPipeline) {
  // The paper's motivating scenario: monitor "top deals" (cheap and large
  // trades) over the most recent N transactions.
  StockConfig scfg;
  scfg.seed = 2001;
  StockStreamGenerator gen(scfg);
  SskyOperator op(2, 0.3);
  StreamProcessor proc(&op, 500);
  for (const UncertainElement& e : gen.Take(3000)) proc.Step(e);

  // The skyline of (price, -volume) must be a staircase: sorted by price,
  // volumes strictly decrease in magnitude as price rises... i.e. no
  // member dominates another.
  const auto sky = op.Skyline();
  ASSERT_FALSE(sky.empty());
  for (size_t i = 0; i < sky.size(); ++i) {
    for (size_t j = 0; j < sky.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(sky[i].element.pos, sky[j].element.pos) &&
                   sky[j].psky >= 0.3 && sky[i].element.prob > 0.999)
          << "a near-certain dominator forbids skyline membership";
    }
  }
  op.tree().CheckInvariants(true);
}

TEST(Integration, WindowSizeOneDegenerates) {
  // With N = 1 every arrival instantly replaces the previous element; the
  // skyline is the single live element iff its own probability >= q.
  SskyOperator op(2, 0.5);
  StreamProcessor proc(&op, 1);
  StreamConfig cfg;
  cfg.seed = 81;
  cfg.dims = 2;
  StreamGenerator gen(cfg);
  for (const UncertainElement& e : gen.Take(200)) {
    proc.Step(e);
    ASSERT_EQ(op.candidate_count(), 1u);
    const size_t want = ClampProb(e.prob) >= 0.5 ? 1u : 0u;
    ASSERT_EQ(op.skyline_count(), want);
  }
}

TEST(Integration, LongRunCandidateSetStaysSmall) {
  // Sanity check of the paper's core space claim at test scale: the
  // candidate set stays orders of magnitude below the window size.
  StreamConfig cfg;
  cfg.dims = 3;
  cfg.spatial = SpatialDistribution::kAntiCorrelated;
  cfg.seed = 91;
  StreamGenerator gen(cfg);
  SskyOperator op(3, 0.3);
  StreamProcessor proc(&op, 2000);
  size_t peak = 0;
  for (const UncertainElement& e : gen.Take(6000)) {
    proc.Step(e);
    peak = std::max(peak, op.candidate_count());
  }
  EXPECT_LT(peak, 500u);  // << window size 2000
  op.tree().CheckInvariants(true);
}

TEST(Integration, OperatorStatsAreTracked) {
  StreamConfig cfg;
  cfg.dims = 2;
  cfg.seed = 95;
  StreamGenerator gen(cfg);
  SskyOperator op(2, 0.3);
  StreamProcessor proc(&op, 50);
  for (const UncertainElement& e : gen.Take(300)) proc.Step(e);
  const OperatorStats& stats = op.stats();
  EXPECT_EQ(stats.arrivals, 300u);
  EXPECT_EQ(stats.expirations, 250u);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

}  // namespace
}  // namespace psky
