file(REMOVE_RECURSE
  "CMakeFiles/bench_trivial_vs_ssky.dir/bench_trivial_vs_ssky.cc.o"
  "CMakeFiles/bench_trivial_vs_ssky.dir/bench_trivial_vs_ssky.cc.o.d"
  "bench_trivial_vs_ssky"
  "bench_trivial_vs_ssky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trivial_vs_ssky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
