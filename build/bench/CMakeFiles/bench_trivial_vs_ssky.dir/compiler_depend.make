# Empty compiler generated dependencies file for bench_trivial_vs_ssky.
# This may be replaced when dependencies are built.
