# Empty compiler generated dependencies file for bench_fig7_space_threshold.
# This may be replaced when dependencies are built.
