# Empty compiler generated dependencies file for bench_fig12_msky_qsky.
# This may be replaced when dependencies are built.
