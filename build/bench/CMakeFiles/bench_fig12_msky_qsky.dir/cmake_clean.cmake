file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_msky_qsky.dir/bench_fig12_msky_qsky.cc.o"
  "CMakeFiles/bench_fig12_msky_qsky.dir/bench_fig12_msky_qsky.cc.o.d"
  "bench_fig12_msky_qsky"
  "bench_fig12_msky_qsky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_msky_qsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
