file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_space_pmu.dir/bench_fig6_space_pmu.cc.o"
  "CMakeFiles/bench_fig6_space_pmu.dir/bench_fig6_space_pmu.cc.o.d"
  "bench_fig6_space_pmu"
  "bench_fig6_space_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_space_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
