file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_time_dims.dir/bench_fig8_time_dims.cc.o"
  "CMakeFiles/bench_fig8_time_dims.dir/bench_fig8_time_dims.cc.o.d"
  "bench_fig8_time_dims"
  "bench_fig8_time_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_time_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
