file(REMOVE_RECURSE
  "CMakeFiles/bench_theory_bounds.dir/bench_theory_bounds.cc.o"
  "CMakeFiles/bench_theory_bounds.dir/bench_theory_bounds.cc.o.d"
  "bench_theory_bounds"
  "bench_theory_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theory_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
