# Empty compiler generated dependencies file for bench_theory_bounds.
# This may be replaced when dependencies are built.
