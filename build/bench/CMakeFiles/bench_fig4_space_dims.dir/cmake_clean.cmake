file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_space_dims.dir/bench_fig4_space_dims.cc.o"
  "CMakeFiles/bench_fig4_space_dims.dir/bench_fig4_space_dims.cc.o.d"
  "bench_fig4_space_dims"
  "bench_fig4_space_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_space_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
