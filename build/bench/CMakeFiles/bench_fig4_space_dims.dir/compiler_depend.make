# Empty compiler generated dependencies file for bench_fig4_space_dims.
# This may be replaced when dependencies are built.
