file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_time_window.dir/bench_fig9_time_window.cc.o"
  "CMakeFiles/bench_fig9_time_window.dir/bench_fig9_time_window.cc.o.d"
  "bench_fig9_time_window"
  "bench_fig9_time_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_time_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
