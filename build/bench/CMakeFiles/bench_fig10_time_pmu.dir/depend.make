# Empty dependencies file for bench_fig10_time_pmu.
# This may be replaced when dependencies are built.
