file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_time_pmu.dir/bench_fig10_time_pmu.cc.o"
  "CMakeFiles/bench_fig10_time_pmu.dir/bench_fig10_time_pmu.cc.o.d"
  "bench_fig10_time_pmu"
  "bench_fig10_time_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_time_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
