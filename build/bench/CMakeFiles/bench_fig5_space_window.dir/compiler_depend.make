# Empty compiler generated dependencies file for bench_fig5_space_window.
# This may be replaced when dependencies are built.
