file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_space_window.dir/bench_fig5_space_window.cc.o"
  "CMakeFiles/bench_fig5_space_window.dir/bench_fig5_space_window.cc.o.d"
  "bench_fig5_space_window"
  "bench_fig5_space_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_space_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
