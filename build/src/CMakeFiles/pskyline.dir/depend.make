# Empty dependencies file for pskyline.
# This may be replaced when dependencies are built.
