
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/base/random.cc" "src/CMakeFiles/pskyline.dir/base/random.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/base/random.cc.o.d"
  "/root/repo/src/base/stats.cc" "src/CMakeFiles/pskyline.dir/base/stats.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/base/stats.cc.o.d"
  "/root/repo/src/core/msky_operator.cc" "src/CMakeFiles/pskyline.dir/core/msky_operator.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/msky_operator.cc.o.d"
  "/root/repo/src/core/naive_operator.cc" "src/CMakeFiles/pskyline.dir/core/naive_operator.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/naive_operator.cc.o.d"
  "/root/repo/src/core/object_skyline.cc" "src/CMakeFiles/pskyline.dir/core/object_skyline.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/object_skyline.cc.o.d"
  "/root/repo/src/core/possible_worlds.cc" "src/CMakeFiles/pskyline.dir/core/possible_worlds.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/possible_worlds.cc.o.d"
  "/root/repo/src/core/sky_tree.cc" "src/CMakeFiles/pskyline.dir/core/sky_tree.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/sky_tree.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/pskyline.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/ssky_operator.cc" "src/CMakeFiles/pskyline.dir/core/ssky_operator.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/ssky_operator.cc.o.d"
  "/root/repo/src/core/theory.cc" "src/CMakeFiles/pskyline.dir/core/theory.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/theory.cc.o.d"
  "/root/repo/src/core/topk_operator.cc" "src/CMakeFiles/pskyline.dir/core/topk_operator.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/core/topk_operator.cc.o.d"
  "/root/repo/src/geom/dominance.cc" "src/CMakeFiles/pskyline.dir/geom/dominance.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/geom/dominance.cc.o.d"
  "/root/repo/src/geom/mbr.cc" "src/CMakeFiles/pskyline.dir/geom/mbr.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/geom/mbr.cc.o.d"
  "/root/repo/src/rtree/rtree.cc" "src/CMakeFiles/pskyline.dir/rtree/rtree.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/rtree/rtree.cc.o.d"
  "/root/repo/src/skyline/bbs.cc" "src/CMakeFiles/pskyline.dir/skyline/bbs.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/skyline/bbs.cc.o.d"
  "/root/repo/src/skyline/bnl.cc" "src/CMakeFiles/pskyline.dir/skyline/bnl.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/skyline/bnl.cc.o.d"
  "/root/repo/src/skyline/dc.cc" "src/CMakeFiles/pskyline.dir/skyline/dc.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/skyline/dc.cc.o.d"
  "/root/repo/src/skyline/sfs.cc" "src/CMakeFiles/pskyline.dir/skyline/sfs.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/skyline/sfs.cc.o.d"
  "/root/repo/src/stream/csv.cc" "src/CMakeFiles/pskyline.dir/stream/csv.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/stream/csv.cc.o.d"
  "/root/repo/src/stream/generator.cc" "src/CMakeFiles/pskyline.dir/stream/generator.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/stream/generator.cc.o.d"
  "/root/repo/src/stream/prob_model.cc" "src/CMakeFiles/pskyline.dir/stream/prob_model.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/stream/prob_model.cc.o.d"
  "/root/repo/src/stream/stock.cc" "src/CMakeFiles/pskyline.dir/stream/stock.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/stream/stock.cc.o.d"
  "/root/repo/src/stream/window.cc" "src/CMakeFiles/pskyline.dir/stream/window.cc.o" "gcc" "src/CMakeFiles/pskyline.dir/stream/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
