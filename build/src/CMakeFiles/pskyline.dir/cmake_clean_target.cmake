file(REMOVE_RECURSE
  "libpskyline.a"
)
