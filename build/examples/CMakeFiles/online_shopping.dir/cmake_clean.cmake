file(REMOVE_RECURSE
  "CMakeFiles/online_shopping.dir/online_shopping.cpp.o"
  "CMakeFiles/online_shopping.dir/online_shopping.cpp.o.d"
  "online_shopping"
  "online_shopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_shopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
