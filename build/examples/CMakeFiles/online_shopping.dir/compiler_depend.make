# Empty compiler generated dependencies file for online_shopping.
# This may be replaced when dependencies are built.
