file(REMOVE_RECURSE
  "CMakeFiles/sensor_objects.dir/sensor_objects.cpp.o"
  "CMakeFiles/sensor_objects.dir/sensor_objects.cpp.o.d"
  "sensor_objects"
  "sensor_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
