# Empty dependencies file for sensor_objects.
# This may be replaced when dependencies are built.
