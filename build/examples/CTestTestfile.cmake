# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_online_shopping "/root/repo/build/examples/online_shopping")
set_tests_properties(example_online_shopping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stock_monitor "/root/repo/build/examples/stock_monitor")
set_tests_properties(example_stock_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_objects "/root/repo/build/examples/sensor_objects")
set_tests_properties(example_sensor_objects PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
