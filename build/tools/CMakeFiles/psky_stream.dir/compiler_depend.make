# Empty compiler generated dependencies file for psky_stream.
# This may be replaced when dependencies are built.
