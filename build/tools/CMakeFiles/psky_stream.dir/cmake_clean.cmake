file(REMOVE_RECURSE
  "CMakeFiles/psky_stream.dir/psky_stream.cc.o"
  "CMakeFiles/psky_stream.dir/psky_stream.cc.o.d"
  "psky_stream"
  "psky_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psky_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
