# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_generate "/root/repo/build/tools/psky_stream" "--generate" "anti" "--dims" "3" "--count" "5000" "--window" "1000" "--q" "0.3" "--emit" "counts" "--every" "2500")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_csv_final "sh" "-c" "printf '1,2,0.9\\n0.5,0.5,0.8\\n' |                         /root/repo/build/tools/psky_stream --dims 2 --q 0.3                         --window 10 --emit final | grep -q 'seq=1'")
set_tests_properties(cli_csv_final PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_rejects_bad_input "sh" "-c" "printf '1,x,0.9\\n' |                         /root/repo/build/tools/psky_stream --dims 2 --q 0.3                         --window 10; test \$? -eq 2")
set_tests_properties(cli_rejects_bad_input PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
