file(REMOVE_RECURSE
  "CMakeFiles/naive_operator_test.dir/naive_operator_test.cc.o"
  "CMakeFiles/naive_operator_test.dir/naive_operator_test.cc.o.d"
  "naive_operator_test"
  "naive_operator_test.pdb"
  "naive_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
