# Empty dependencies file for naive_operator_test.
# This may be replaced when dependencies are built.
