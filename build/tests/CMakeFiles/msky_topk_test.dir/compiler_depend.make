# Empty compiler generated dependencies file for msky_topk_test.
# This may be replaced when dependencies are built.
