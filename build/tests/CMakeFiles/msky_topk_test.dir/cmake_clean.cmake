file(REMOVE_RECURSE
  "CMakeFiles/msky_topk_test.dir/msky_topk_test.cc.o"
  "CMakeFiles/msky_topk_test.dir/msky_topk_test.cc.o.d"
  "msky_topk_test"
  "msky_topk_test.pdb"
  "msky_topk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msky_topk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
