file(REMOVE_RECURSE
  "CMakeFiles/sky_tree_test.dir/sky_tree_test.cc.o"
  "CMakeFiles/sky_tree_test.dir/sky_tree_test.cc.o.d"
  "sky_tree_test"
  "sky_tree_test.pdb"
  "sky_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sky_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
