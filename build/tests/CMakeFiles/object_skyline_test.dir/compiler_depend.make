# Empty compiler generated dependencies file for object_skyline_test.
# This may be replaced when dependencies are built.
