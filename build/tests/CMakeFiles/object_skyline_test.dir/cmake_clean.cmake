file(REMOVE_RECURSE
  "CMakeFiles/object_skyline_test.dir/object_skyline_test.cc.o"
  "CMakeFiles/object_skyline_test.dir/object_skyline_test.cc.o.d"
  "object_skyline_test"
  "object_skyline_test.pdb"
  "object_skyline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_skyline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
