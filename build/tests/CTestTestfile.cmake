# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/stream_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/skyline_test[1]_include.cmake")
include("/root/repo/build/tests/possible_worlds_test[1]_include.cmake")
include("/root/repo/build/tests/naive_operator_test[1]_include.cmake")
include("/root/repo/build/tests/sky_tree_test[1]_include.cmake")
include("/root/repo/build/tests/msky_topk_test[1]_include.cmake")
include("/root/repo/build/tests/theory_test[1]_include.cmake")
include("/root/repo/build/tests/object_skyline_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sky_tree_query_test[1]_include.cmake")
include("/root/repo/build/tests/events_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
