// psky_stream: command-line continuous probabilistic skyline over CSV
// streams (or built-in generators).
//
// Usage:
//   psky_stream --dims 3 --q 0.3 --window 100000 [--input FILE]
//               [--emit counts|deltas|final] [--every K] [--topk K]
//   psky_stream --generate anti|inde|corr|stock --count 100000 ...
//
// Input lines: v1,...,vd,prob[,timestamp]  ('#' comments allowed).
// With --time-span T the window is time-based (timestamps required).
//
// Fault tolerance (see docs/operations.md):
//   --checkpoint-dir DIR     durable snapshots of the window state
//   --checkpoint-every K     snapshot every K elements (plus one at exit)
//   --resume                 restore the newest valid snapshot, fast-forward
//                            the source, and continue the stream
//   --io-retries N           retry transient checkpoint/quarantine I/O
//                            failures up to N times with jittered backoff
//   --on-bad-input fail|skip|clamp   malformed-line policy (default fail)
//   --ooo-policy reject|clamp        late-timestamp policy (default reject)
//
// Durability & replay (see docs/operations.md "Durability & replay"):
//   --wal                    write-ahead log of every admitted element in
//                            the checkpoint dir; --resume then replays the
//                            WAL tail past the newest checkpoint, making
//                            recovery from SIGKILL bit-identical to an
//                            uninterrupted run (for replayable sources)
//   --wal-sync-every K       group-commit fsync cadence (default 4096);
//                            widened automatically under disk pressure.
//                            For replayable sources the cadence does not
//                            bound data loss (recovery re-reads the
//                            source tail); it only matters for inputs
//                            that cannot be re-read, e.g. piped CSV
//   --wal-sync-mode M        async (default) overlaps the fdatasync with
//                            the next batch on a background thread —
//                            same durability barrier at checkpoints,
//                            failures surface on the next sync; sync
//                            blocks the step path on every fdatasync
//   --keep-checkpoints N     checkpoint retention (default 2); WAL files
//                            are pruned against the oldest kept checkpoint
//   --window-store mem|disk  where the window buffer lives; disk keeps it
//                            in memory-mapped segment files so only the
//                            candidate set S_{N,q} stays in RAM
//   --store-dir DIR          segment directory (default <ckpt-dir>/segments)
//   --segment-elems K        elements per segment file (default 4096)
//   --replay-at P|ts:T       historical query: rebuild the window state at
//                            stream position P (or time T) from checkpoint
//                            + WAL, print the skyline, and exit
// SIGINT/SIGTERM drain gracefully: queued elements are processed, a final
// checkpoint is flushed (when a checkpoint dir is configured) and counters
// are reported before exit.
//
// Sharded parallel ingestion (see docs/algorithm.md "Sharded ingestion"):
//   --shards N               partition the stream across N per-shard
//                            sky-trees, each on its own worker thread
//                            behind a lock-free SPSC queue; queries run
//                            an exact cross-shard merge (bit-equivalent
//                            window state, same skyline within rounding).
//                            1 (default) keeps the sequential operator
//   --shard-by grid|band     partition function: spatial grid cell hash
//                            (default) or occurrence-probability band
//   Sharded runs support --emit counts|final (and --topk); deltas,
//   --window-store disk, --query-deadline-ms and --inject-drift-at
//   require the sequential operator. --threads only drives the audit
//   oracle pool and is ignored with --shards > 1 (each shard audits on
//   its own worker).
//
// Overload management (see docs/operations.md):
//   --max-queue N            bounded ingest queue in front of the operator;
//                            ingestion moves to its own thread (0 = direct)
//   --overload-policy P      what a full queue does with the next element:
//                            block | shed-oldest | shed-low-prob
//   --query-deadline-ms MS   deadline for the final skyline/top-k query
//   --stats-interval K       heartbeat line on stderr every K steps
//   --watchdog-stall-ms MS   alarm when no step completes for MS while busy
//   --chaos-schedule SPEC    seeded fault injection (base/fault_injection.h)
//
// Integrity auditing (see docs/operations.md):
//   --audit-mode off|check|repair  what to do with detected drift
//   --audit-every K          re-derive a slice of exact values every K steps
//   --audit-oracle-every K   replay the window through the naive oracle
//   --strict                 exit 4 on any violation the auditor could not
//                            repair (a quarantine dump is written first)
// On PSKY_CHECK failure or a fatal signal the window state and audit
// counters are dumped to a quarantine file in the checkpoint dir (or the
// working directory) for post-mortem replay. Dumps are rate-limited to one
// per failure burst and carry monotonic sequence numbers.
//
// Output (stdout), one line per report:
//   counts:  step=<n> candidates=<c> skyline=<s>
//   deltas:  +<seq> / -<seq> skyline membership changes as they happen
//   final:   the full skyline once, at end of stream
// Exit codes: 0 ok (including graceful signal stop), 1 bad usage or
// configuration, 2 malformed input, 3 checkpoint I/O failure, 4 unrepaired
// integrity violation under --strict.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <climits>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "base/build_info.h"
#include "base/cancel.h"
#include "base/check.h"
#include "base/fault_injection.h"
#include "base/retry.h"
#include "base/thread_pool.h"
#include "core/audit.h"
#include "core/checkpoint.h"
#include "core/overload.h"
#include "core/naive_operator.h"
#include "core/shard_engine.h"
#include "core/ssky_operator.h"
#include "core/topk_operator.h"
#include "store/recovery.h"
#include "store/segment_store.h"
#include "store/wal.h"
#include "stream/csv.h"
#include "stream/generator.h"
#include "stream/stock.h"
#include "stream/window.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

struct Args {
  int dims = 2;
  double q = 0.3;
  size_t window = 100000;
  double time_span = 0.0;  // > 0: time-based window
  std::string input;       // empty: stdin
  std::string generate;    // empty: read csv
  size_t count = 100000;   // generated elements
  uint64_t seed = 42;
  std::string emit = "counts";
  size_t every = 10000;
  size_t topk = 0;
  /// Elements pulled from the source and fed to the operator per loop
  /// iteration. Results are bit-identical for any value: the expire/insert
  /// interleaving per element is preserved (see StreamProcessor::StepBatch);
  /// batching amortizes source dispatch and the window-full test.
  size_t batch_size = 1;
  /// Worker threads for off-critical-path work (currently the audit
  /// shadow-oracle replay). 1 keeps everything on the main thread; 0
  /// means "one per hardware thread".
  int threads = 1;
  /// Stream partitions, each with its own sky-tree and worker thread;
  /// 1 keeps the sequential operator (the default, bit-identical to
  /// previous releases).
  int shards = 1;
  psky::ShardStrategy shard_by = psky::ShardStrategy::kGrid;
  std::string checkpoint_dir;       // empty: checkpointing disabled
  uint64_t checkpoint_every = 0;    // 0: only final/signal checkpoints
  bool resume = false;
  // --- durability & replay ---------------------------------------------
  /// Write-ahead log of every admitted element (requires checkpoint dir).
  bool wal = false;
  /// Group-commit cadence: fsync after this many appended records.
  uint64_t wal_sync_every = 4096;
  /// "async" (default) overlaps fdatasync with the next batch; "sync"
  /// blocks the step path on every group commit.
  std::string wal_sync_mode = "async";
  /// Checkpoint files kept by pruning (WAL retention follows).
  uint64_t keep_checkpoints = 2;
  /// Window buffer placement: "mem" (deque) or "disk" (segment store).
  std::string window_store = "mem";
  /// Segment directory; empty derives <checkpoint-dir>/segments.
  std::string store_dir;
  /// Elements per memory-mapped segment file.
  uint64_t segment_elems = 4096;
  /// Maximum concurrently mapped segments (0 = unlimited; values below
  /// the store's minimum of 3 are rounded up). Bounds the disk window's
  /// resident set: peak RSS is ~ budget * segment bytes + S_{N,q}.
  uint64_t segment_resident_budget = 8;
  /// Historical replay target ("<pos>" or "ts:<seconds>"); empty: off.
  std::string replay_at;
  psky::BadInputPolicy on_bad_input = psky::BadInputPolicy::kFail;
  psky::TimestampPolicy ooo_policy = psky::TimestampPolicy::kReject;
  psky::AuditMode audit_mode = psky::AuditMode::kOff;
  uint64_t audit_every = 64;
  uint64_t audit_oracle_every = 0;
  bool strict = false;
  // Test hook: at this step, corrupt one live element's probability state
  // in place, exactly the kind of damage the auditor exists to catch.
  uint64_t inject_drift_at = 0;
  // --- overload management ---------------------------------------------
  /// Ingest queue capacity; 0 keeps the classic single-threaded loop.
  size_t max_queue = 0;
  psky::OverloadPolicy overload_policy = psky::OverloadPolicy::kBlock;
  /// Deadline for the final skyline/top-k query; 0 = unbounded.
  uint64_t query_deadline_ms = 0;
  /// Heartbeat cadence in steps; 0 disables the heartbeat.
  uint64_t stats_interval = 0;
  /// Watchdog stall threshold; 0 disables the watchdog.
  uint64_t watchdog_stall_ms = 0;
  /// Extra attempts for transient checkpoint/quarantine I/O failures.
  int io_retries = 0;
  /// Base backoff between I/O retries (doubled per retry, jittered).
  uint64_t io_backoff_ms = 10;
  /// Fault-injection schedule (see base/fault_injection.h for grammar).
  std::string chaos_schedule;
};

[[noreturn]] void Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: psky_stream --dims D --q Q (--window N | "
               "--time-span T)\n"
               "                   [--input FILE | --generate "
               "anti|inde|corr|stock --count N]\n"
               "                   [--emit counts|deltas|final] [--every K] "
               "[--topk K] [--seed S]\n"
               "                   [--batch-size B] [--threads T]\n"
               "                   [--shards N] [--shard-by grid|band]\n"
               "                   [--checkpoint-dir DIR [--checkpoint-every "
               "K] [--resume]]\n"
               "                   [--wal] [--wal-sync-every K] "
               "[--wal-sync-mode sync|async]\n"
               "                   [--keep-checkpoints N]\n"
               "                   [--window-store mem|disk] [--store-dir "
               "DIR] [--segment-elems K]\n"
               "                   [--segment-resident-budget N]\n"
               "                   [--replay-at POS|ts:SECS]\n"
               "                   [--io-retries N] [--io-backoff-ms MS]\n"
               "                   [--max-queue N] [--overload-policy "
               "block|shed-oldest|shed-low-prob]\n"
               "                   [--query-deadline-ms MS] "
               "[--stats-interval K]\n"
               "                   [--watchdog-stall-ms MS] "
               "[--chaos-schedule SPEC]\n"
               "                   [--on-bad-input fail|skip|clamp] "
               "[--ooo-policy reject|clamp]\n"
               "                   [--audit-mode off|check|repair] "
               "[--audit-every K]\n"
               "                   [--audit-oracle-every K] [--strict] "
               "[--version]\n");
  std::exit(1);
}

// --- checked flag-value parsing -----------------------------------------
// atoi/atof silently turn garbage into 0; these reject any value that is
// not entirely a number of the right shape.

[[noreturn]] void BadValue(const std::string& flag, const char* value) {
  Usage(("bad value for " + flag + ": '" + value + "'").c_str());
}

double ParseDoubleValue(const std::string& flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) BadValue(flag, value);
  return v;
}

uint64_t ParseUint64Value(const std::string& flag, const char* value) {
  const char* p = value;
  while (*p == ' ') ++p;
  if (*p == '-' || *p == '\0') BadValue(flag, value);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) BadValue(flag, value);
  return v;
}

int ParseIntValue(const std::string& flag, const char* value) {
  const uint64_t v = ParseUint64Value(flag, value);
  if (v > static_cast<uint64_t>(INT_MAX)) BadValue(flag, value);
  return static_cast<int>(v);
}

Args Parse(int argc, char** argv) {
  Args args;
  auto need = [&](int i) {
    if (i + 1 >= argc) Usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--dims") {
      args.dims = ParseIntValue(flag, need(i++));
    } else if (flag == "--q") {
      args.q = ParseDoubleValue(flag, need(i++));
    } else if (flag == "--window") {
      args.window = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--time-span") {
      args.time_span = ParseDoubleValue(flag, need(i++));
    } else if (flag == "--input") {
      args.input = need(i++);
    } else if (flag == "--generate") {
      args.generate = need(i++);
    } else if (flag == "--count") {
      args.count = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--seed") {
      args.seed = ParseUint64Value(flag, need(i++));
    } else if (flag == "--emit") {
      args.emit = need(i++);
    } else if (flag == "--every") {
      args.every = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--topk") {
      args.topk = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--batch-size") {
      args.batch_size = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--threads") {
      args.threads = ParseIntValue(flag, need(i++));
    } else if (flag == "--shards") {
      args.shards = ParseIntValue(flag, need(i++));
    } else if (flag == "--shard-by") {
      const char* v = need(i++);
      if (!psky::ParseShardStrategy(v, &args.shard_by)) {
        Usage("--shard-by must be grid or band");
      }
    } else if (flag == "--checkpoint-dir") {
      args.checkpoint_dir = need(i++);
    } else if (flag == "--checkpoint-every") {
      args.checkpoint_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--wal") {
      args.wal = true;
    } else if (flag == "--wal-sync-every") {
      args.wal_sync_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--wal-sync-mode") {
      args.wal_sync_mode = need(i++);
    } else if (flag == "--keep-checkpoints") {
      args.keep_checkpoints = ParseUint64Value(flag, need(i++));
    } else if (flag == "--window-store") {
      args.window_store = need(i++);
    } else if (flag == "--store-dir") {
      args.store_dir = need(i++);
    } else if (flag == "--segment-elems") {
      args.segment_elems = ParseUint64Value(flag, need(i++));
    } else if (flag == "--segment-resident-budget") {
      args.segment_resident_budget = ParseUint64Value(flag, need(i++));
    } else if (flag == "--replay-at") {
      args.replay_at = need(i++);
    } else if (flag == "--max-queue") {
      args.max_queue = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--overload-policy") {
      const char* v = need(i++);
      if (!psky::ParseOverloadPolicy(v, &args.overload_policy)) {
        Usage("--overload-policy must be block, shed-oldest or shed-low-prob");
      }
    } else if (flag == "--query-deadline-ms") {
      args.query_deadline_ms = ParseUint64Value(flag, need(i++));
    } else if (flag == "--stats-interval") {
      args.stats_interval = ParseUint64Value(flag, need(i++));
    } else if (flag == "--watchdog-stall-ms") {
      args.watchdog_stall_ms = ParseUint64Value(flag, need(i++));
    } else if (flag == "--io-retries") {
      args.io_retries = ParseIntValue(flag, need(i++));
    } else if (flag == "--io-backoff-ms") {
      args.io_backoff_ms = ParseUint64Value(flag, need(i++));
    } else if (flag == "--chaos-schedule") {
      args.chaos_schedule = need(i++);
    } else if (flag == "--on-bad-input") {
      const std::string v = need(i++);
      if (v == "fail") {
        args.on_bad_input = psky::BadInputPolicy::kFail;
      } else if (v == "skip") {
        args.on_bad_input = psky::BadInputPolicy::kSkip;
      } else if (v == "clamp") {
        args.on_bad_input = psky::BadInputPolicy::kClamp;
      } else {
        Usage("--on-bad-input must be fail, skip or clamp");
      }
    } else if (flag == "--ooo-policy") {
      const std::string v = need(i++);
      if (v == "reject") {
        args.ooo_policy = psky::TimestampPolicy::kReject;
      } else if (v == "clamp") {
        args.ooo_policy = psky::TimestampPolicy::kClampToWatermark;
      } else {
        Usage("--ooo-policy must be reject or clamp");
      }
    } else if (flag == "--audit-mode") {
      const std::string v = need(i++);
      if (v == "off") {
        args.audit_mode = psky::AuditMode::kOff;
      } else if (v == "check") {
        args.audit_mode = psky::AuditMode::kCheck;
      } else if (v == "repair") {
        args.audit_mode = psky::AuditMode::kRepair;
      } else {
        Usage("--audit-mode must be off, check or repair");
      }
    } else if (flag == "--audit-every") {
      args.audit_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--audit-oracle-every") {
      args.audit_oracle_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--strict") {
      args.strict = true;
    } else if (flag == "--inject-drift-at") {
      args.inject_drift_at = ParseUint64Value(flag, need(i++));
    } else if (flag == "--version") {
      std::printf("%s\n", psky::BuildInfoString().c_str());
      std::exit(0);
    } else if (flag == "--help" || flag == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown flag: " + flag).c_str());
    }
  }
  if (args.dims < 1 || args.dims > psky::kMaxDims) Usage("bad --dims");
  if (args.q <= 1e-9 || args.q > 1.0) Usage("--q must be in (0, 1]");
  if (args.emit != "counts" && args.emit != "deltas" && args.emit != "final") {
    Usage("--emit must be counts, deltas or final");
  }
  if (args.window == 0 && args.time_span <= 0.0) {
    Usage("--window must be positive");
  }
  if (args.batch_size == 0) Usage("--batch-size must be positive");
  if (args.threads == 0) args.threads = psky::ThreadPool::DefaultThreads();
  if (args.shards < 1 || args.shards > 64) {
    Usage("--shards must be in [1, 64]");
  }
  if (args.shards > 1) {
    if (args.emit == "deltas") {
      Usage("--emit deltas requires the sequential operator (--shards 1)");
    }
    if (args.window_store == "disk") {
      Usage("--window-store disk requires --shards 1");
    }
    if (args.inject_drift_at != 0) {
      Usage("--inject-drift-at requires --shards 1");
    }
    if (args.query_deadline_ms != 0) {
      Usage("--query-deadline-ms requires --shards 1");
    }
  }
  if (args.wal_sync_mode != "sync" && args.wal_sync_mode != "async") {
    Usage("--wal-sync-mode must be sync or async");
  }
  if ((args.resume || args.checkpoint_every > 0) &&
      args.checkpoint_dir.empty()) {
    Usage("--resume / --checkpoint-every require --checkpoint-dir");
  }
  if ((args.wal || !args.replay_at.empty()) && args.checkpoint_dir.empty()) {
    Usage("--wal / --replay-at require --checkpoint-dir");
  }
  if (!args.replay_at.empty() && args.resume) {
    Usage("--replay-at is a read-only historical query; drop --resume");
  }
  if (args.wal_sync_every == 0) Usage("--wal-sync-every must be positive");
  if (args.keep_checkpoints == 0) {
    Usage("--keep-checkpoints must be positive");
  }
  if (args.window_store != "mem" && args.window_store != "disk") {
    Usage("--window-store must be mem or disk");
  }
  if (args.window_store == "disk" && args.time_span > 0.0) {
    Usage("--window-store disk supports count windows only (no --time-span)");
  }
  if (args.segment_elems == 0) Usage("--segment-elems must be positive");
  if (args.strict && args.audit_mode == psky::AuditMode::kOff) {
    Usage("--strict requires --audit-mode check or repair");
  }
  return args;
}

// Pulls elements from either a CSV reader or a built-in generator, and
// stamps every produced element with the source position *after* it
// (psky::IngestItem). The stamped positions are what checkpoints record:
// they travel with the element through the ingest queue, so the consumer
// never reads the live source state from another thread.
class Source {
 public:
  Source(const Args& args, const psky::CheckpointState* resume_from)
      : args_(args) {
    if (!args.generate.empty()) {
      if (args.generate == "stock") {
        psky::StockConfig cfg;
        cfg.seed = args.seed;
        stock_ = std::make_unique<psky::StockStreamGenerator>(cfg);
        if (args_.dims != 2) Usage("--generate stock implies --dims 2");
      } else {
        psky::StreamConfig cfg;
        cfg.dims = args.dims;
        cfg.seed = args.seed;
        if (args.generate == "anti") {
          cfg.spatial = psky::SpatialDistribution::kAntiCorrelated;
        } else if (args.generate == "inde") {
          cfg.spatial = psky::SpatialDistribution::kIndependent;
        } else if (args.generate == "corr") {
          cfg.spatial = psky::SpatialDistribution::kCorrelated;
        } else {
          Usage("--generate must be anti, inde, corr or stock");
        }
        synthetic_ = std::make_unique<psky::StreamGenerator>(cfg);
      }
      // Generators are deterministic in the seed: fast-forward by
      // regenerating and discarding everything already *produced*. The
      // checkpointed next_seq is the produced count (generators assign
      // seq 0, 1, 2, ... in production order), which under load shedding
      // can exceed elements_consumed — shed elements are not replayed.
      if (resume_from != nullptr) {
        for (uint64_t i = 0; i < resume_from->next_seq; ++i) {
          if (produced_ >= args_.count) break;
          ++produced_;
          if (stock_ != nullptr) {
            stock_->Next();
          } else {
            synthetic_->Next();
          }
        }
      }
      return;
    }
    psky::CsvReaderOptions options;
    options.policy = args.on_bad_input;
    if (resume_from != nullptr) {
      // Files re-read from the top and skip to the recorded position; a
      // pipe on stdin simply continues with whatever arrives next.
      options.start_line = args.input.empty() ? 0 : resume_from->lines_consumed;
      options.start_seq = resume_from->next_seq;
      // lines_read() restarts at the skipped prefix for files but from 0
      // for a resumed stdin pipe; carry the checkpointed base in that case.
      base_lines_ = args.input.empty() ? resume_from->lines_consumed : 0;
    }
    if (!args.input.empty()) {
      file_.open(args.input);
      if (!file_) {
        std::fprintf(stderr, "error: cannot open %s\n", args.input.c_str());
        std::exit(1);
      }
      csv_ = std::make_unique<psky::CsvElementReader>(&file_, args.dims,
                                                      options);
    } else {
      csv_ = std::make_unique<psky::CsvElementReader>(&std::cin, args.dims,
                                                      options);
    }
  }

  std::optional<psky::IngestItem> NextItem() {
    std::optional<psky::UncertainElement> e;
    if (csv_ != nullptr) {
      e = csv_->Next();
    } else if (produced_ < args_.count) {
      ++produced_;
      e = stock_ != nullptr ? stock_->Next() : synthetic_->Next();
    }
    if (!e.has_value()) return std::nullopt;
    psky::IngestItem item;
    item.element = *e;
    item.produced_after = ++total_produced_;
    if (csv_ != nullptr) {
      item.lines_after = base_lines_ + csv_->lines_read();
      item.next_seq_after = csv_->next_seq();
      item.skipped_after = csv_->skipped_lines();
      item.clamped_after = csv_->probs_clamped();
    } else {
      item.next_seq_after = e->seq + 1;
    }
    return item;
  }

  const psky::CsvElementReader* csv() const { return csv_.get(); }

 private:
  const Args& args_;
  std::ifstream file_;
  std::unique_ptr<psky::CsvElementReader> csv_;
  std::unique_ptr<psky::StreamGenerator> synthetic_;
  std::unique_ptr<psky::StockStreamGenerator> stock_;
  size_t produced_ = 0;        // generator elements produced
  uint64_t total_produced_ = 0;  // all items handed out (any source)
  uint64_t base_lines_ = 0;
};

// Counters carried across restarts via the checkpoint.
struct CarriedCounters {
  uint64_t bad_lines_skipped = 0;
  uint64_t probs_clamped = 0;
  uint64_t ooo_dropped = 0;
};

// --- crash quarantine ----------------------------------------------------
// On PSKY_CHECK failure, a fatal signal, or an unrepaired integrity
// violation, dump the window state and audit counters for post-mortem
// replay. Best-effort by design: the process is already dying, so the dump
// allocates and does file I/O; the recursion guard plus re-raising with
// SIG_DFL bound the damage if the dump itself faults. Dumps are governed:
// one per failure burst, each with a monotonic sequence number, so a CHECK
// storm cannot bury the evidence under thousands of files.

struct PostMortemContext {
  std::function<psky::CheckpointState()> snapshot;
  const psky::AuditManager* audit = nullptr;
  std::string dir = ".";
  psky::QuarantineGovernor governor;
  psky::RetryPolicy io_policy;            // transient write errors retried
  psky::RetryStats* io_stats = nullptr;   // shared with checkpoint writes
  bool dumping = false;                   // recursion guard
};
PostMortemContext g_postmortem;

void DumpQuarantine(const std::string& reason) {
  if (!g_postmortem.snapshot || g_postmortem.dumping) return;
  g_postmortem.dumping = true;
  psky::QuarantineDump dump;
  dump.reason = reason;
  if (g_postmortem.audit != nullptr) dump.report = g_postmortem.audit->report();
  dump.state = g_postmortem.snapshot();
  uint64_t dump_seq = 0;
  if (!g_postmortem.governor.Admit(dump.state.elements_consumed, &dump_seq)) {
    std::fprintf(stderr,
                 "quarantine dump suppressed (same failure burst; %llu "
                 "suppressed so far)\n",
                 static_cast<unsigned long long>(
                     g_postmortem.governor.dumps_suppressed()));
    g_postmortem.dumping = false;
    return;
  }
  const std::string path =
      g_postmortem.dir + "/" +
      psky::QuarantineFileName(dump.state.elements_consumed, dump_seq);
  std::string error;
  if (psky::WriteQuarantineFileRetry(path, dump, g_postmortem.io_policy,
                                     g_postmortem.io_stats, &error)) {
    std::fprintf(stderr, "quarantine dump written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: quarantine dump failed: %s\n", error.c_str());
  }
  g_postmortem.dumping = false;
}

void QuarantineOnCheckFailure(const char* condition, const char* file,
                              int line) {
  char reason[512];
  std::snprintf(reason, sizeof reason, "PSKY_CHECK failed: %s at %s:%d",
                condition, file, line);
  DumpQuarantine(reason);
}

void QuarantineOnFatalSignal(int signum) {
  std::signal(signum, SIG_DFL);  // a second fault dies immediately
  char reason[64];
  std::snprintf(reason, sizeof reason, "fatal signal %d", signum);
  DumpQuarantine(reason);
  std::raise(signum);
}

void InstallQuarantineHandlers() {
  psky::SetCheckFailureHandler(&QuarantineOnCheckFailure);
  for (int sig : {SIGSEGV, SIGFPE, SIGBUS, SIGILL, SIGABRT}) {
    std::signal(sig, &QuarantineOnFatalSignal);
  }
}

// Prints skyline members in the canonical "seq= psky= pos= prob=" format
// shared by --emit final and --replay-at (so outputs diff cleanly).
void PrintSkylineMembers(const std::vector<psky::SkylineMember>& members,
                         int dims) {
  for (const auto& m : members) {
    std::printf("seq=%llu psky=%.6f pos=",
                static_cast<unsigned long long>(m.element.seq), m.psky);
    for (int i = 0; i < dims; ++i) {
      std::printf(i == 0 ? "%g" : ",%g", m.element.pos[i]);
    }
    std::printf(" prob=%g\n", m.element.prob);
  }
}

// --- historical replay (--replay-at) -------------------------------------
// Rebuilds the exact window state at a past stream position (or time)
// from the newest covering checkpoint plus WAL records, prints the
// skyline at that point, and exits. Deterministic: the reconstructed
// state is a pure function of the admitted element sequence. With
// --audit-mode on, the naive oracle re-derives the skyline from the
// reconstructed window as an independent correctness check (exit 4 on
// disagreement).
int RunReplayAt(const Args& args) {
  psky::ReplayTarget target;
  std::string error;
  if (!psky::ParseReplayTarget(args.replay_at, &target, &error)) {
    Usage(error.c_str());
  }
  psky::RecoveredState plan;
  if (!psky::PlanReplay(args.checkpoint_dir, target, &plan, &error)) {
    std::fprintf(stderr, "error: --replay-at: %s\n", error.c_str());
    return 3;
  }
  if (!plan.notes.empty()) {
    std::fprintf(stderr, "warning: replay: %s\n", plan.notes.c_str());
  }

  const psky::WindowKind want_kind = args.time_span > 0.0
                                         ? psky::WindowKind::kTime
                                         : psky::WindowKind::kCount;
  if (plan.has_checkpoint) {
    const psky::CheckpointState& c = plan.checkpoint;
    if (c.dims != args.dims || c.q != args.q ||
        c.window_kind != want_kind ||
        (want_kind == psky::WindowKind::kCount &&
         c.window_capacity != args.window) ||
        (want_kind == psky::WindowKind::kTime &&
         c.time_span != args.time_span)) {
      std::fprintf(stderr,
                   "error: checkpoint was taken with a different "
                   "dims/q/window configuration\n");
      return 1;
    }
  } else if (!plan.tail.empty() &&
             plan.tail.front().element.pos.dims() != args.dims) {
    std::fprintf(stderr, "error: WAL records carry %d dims, --dims is %d\n",
                 plan.tail.front().element.pos.dims(), args.dims);
    return 1;
  }

  psky::SskyOperator op(args.dims, args.q, psky::SkyTree::Options());
  std::unique_ptr<psky::CountWindow> count_window;
  std::unique_ptr<psky::TimeWindow> time_window;
  if (args.time_span > 0.0) {
    time_window =
        std::make_unique<psky::TimeWindow>(args.time_span, args.ooo_policy);
  } else {
    count_window = std::make_unique<psky::CountWindow>(args.window);
  }

  uint64_t step = 0;
  if (plan.has_checkpoint) {
    psky::ReplayWindow(plan.checkpoint, &op);
    for (const auto& e : plan.checkpoint.window) {
      if (time_window != nullptr) {
        time_window->Push(e, nullptr);
      } else {
        count_window->Push(e);
      }
    }
    step = plan.checkpoint.elements_consumed;
  }
  std::vector<psky::UncertainElement> expired;
  for (const psky::WalRecord& r : plan.tail) {
    if (time_window != nullptr) {
      expired.clear();
      psky::UncertainElement incoming = r.element;
      // Logged elements were admitted once, so they re-admit here (the
      // WAL holds post-clamp timestamps); the guard is pure paranoia.
      if (!time_window->TryPush(&incoming, &expired)) continue;
      for (const auto& old : expired) op.Expire(old);
      op.Insert(incoming);
    } else {
      if (count_window->full()) {
        op.Expire(count_window->PushRotate(r.element));
      } else {
        count_window->Push(r.element);
      }
      op.Insert(r.element);
    }
    step = r.step_after;
  }

  const auto window_now = time_window != nullptr ? time_window->Snapshot()
                                                 : count_window->Snapshot();
  if (args.audit_mode != psky::AuditMode::kOff) {
    // Independent re-derivation: the naive oracle computes the exact
    // q-skyline of the reconstructed window from scratch.
    psky::NaiveSkylineOperator oracle(args.dims, args.q);
    for (const auto& e : window_now) oracle.Insert(e);
    auto by_seq = [](const psky::SkylineMember& a,
                     const psky::SkylineMember& b) {
      return a.element.seq < b.element.seq;
    };
    std::vector<psky::SkylineMember> want = oracle.Skyline();
    std::vector<psky::SkylineMember> got = op.Skyline();
    std::sort(want.begin(), want.end(), by_seq);
    std::sort(got.begin(), got.end(), by_seq);
    bool agree = want.size() == got.size();
    for (size_t i = 0; agree && i < want.size(); ++i) {
      agree = want[i].element.seq == got[i].element.seq &&
              std::fabs(want[i].psky - got[i].psky) <= 1e-6;
    }
    if (!agree) {
      std::fprintf(stderr,
                   "error: replay audit: oracle disagrees (oracle %zu vs "
                   "replay %zu skyline members)\n",
                   want.size(), got.size());
      return 4;
    }
    std::fprintf(stderr, "replay audit: oracle agrees (%zu skyline members)\n",
                 got.size());
  }

  PrintSkylineMembers(op.Skyline(), args.dims);
  std::fprintf(
      stderr,
      "replayed to step %llu (checkpoint base %llu + %zu WAL records; "
      "window holds %zu elements)\n",
      static_cast<unsigned long long>(step),
      static_cast<unsigned long long>(
          plan.has_checkpoint ? plan.checkpoint.elements_consumed : 0),
      plan.tail.size(), window_now.size());
  return 0;
}

// Joins the ingest producer thread on every exit path; leaving a joinable
// std::thread behind is std::terminate.
struct ProducerJoiner {
  psky::BoundedIngestQueue* queue = nullptr;
  std::thread thread;
  ~ProducerJoiner() {
    if (thread.joinable()) {
      if (queue != nullptr) queue->RequestStop();
      thread.join();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);

  if (!args.chaos_schedule.empty()) {
    std::string chaos_error;
    if (!psky::fault::LoadSchedule(args.chaos_schedule, &chaos_error)) {
      std::fprintf(stderr, "error: --chaos-schedule: %s\n",
                   chaos_error.c_str());
      return 1;
    }
    std::fprintf(stderr, "chaos schedule armed: %s\n",
                 args.chaos_schedule.c_str());
  }

  if (!args.checkpoint_dir.empty()) {
    std::string dir_error;
    if (!psky::EnsureCheckpointDir(args.checkpoint_dir, &dir_error)) {
      std::fprintf(stderr, "error: checkpoint dir: %s\n", dir_error.c_str());
      return 3;
    }
    // A crash mid-write leaves "*.tmp" wreckage behind; sweep it before
    // this run starts producing its own files.
    // ".tmp" also covers interrupted WAL rotations (wal-*.pskywal.tmp).
    const size_t removed =
        psky::RemoveStaleCheckpointTemps(args.checkpoint_dir);
    if (removed > 0) {
      std::fprintf(stderr, "removed %zu stale checkpoint temp file(s)\n",
                   removed);
    }
  }

  if (!args.replay_at.empty()) return RunReplayAt(args);

  // --- resume: load the newest valid checkpoint -------------------------
  // With --wal, recovery is checkpoint + WAL tail: the records past the
  // snapshot are replayed below, and a crash before the first checkpoint
  // still recovers (empty base + WAL from step 1).
  psky::CheckpointState resume_state;
  psky::RecoveredState recovered;  // WAL tail, under --wal --resume
  // Disk-window streamed resume: the chosen checkpoint file, replayed
  // element-by-element after the segment store exists (never
  // materialized into resume_state.window).
  std::string resume_ckpt_path;
  bool resumed = false;
  bool resumed_with_checkpoint = false;
  if (args.resume) {
    std::string error;
    if (args.wal) {
      if (!psky::RecoverState(args.checkpoint_dir, &recovered, &error)) {
        std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                     args.checkpoint_dir.c_str(), error.c_str());
        return 3;
      }
      if (!recovered.notes.empty()) {
        std::fprintf(stderr, "warning: recovery: %s\n",
                     recovered.notes.c_str());
      }
      resume_state = recovered.checkpoint;
      resumed_with_checkpoint = recovered.has_checkpoint;
      resumed = recovered.has_checkpoint || !recovered.tail.empty();
    } else if (args.window_store == "disk") {
      // Streamed resume: pick the newest checkpoint that validates
      // (full CRC + payload decode) without materializing its window.
      // The elements stream straight into the segment store below, once
      // it exists, so a 100M-element resume never builds an O(N) vector.
      for (const std::string& path :
           psky::ListCheckpointFiles(args.checkpoint_dir)) {
        psky::CheckpointState probe;
        std::string file_error;
        if (psky::ReadCheckpointFileStreamed(
                path, &probe, [](const psky::UncertainElement&) {},
                &file_error)) {
          resume_state = std::move(probe);
          resume_ckpt_path = path;
          break;
        }
        if (!error.empty()) error += "; ";
        error += path + ": " + file_error;
      }
      if (resume_ckpt_path.empty()) {
        std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                     args.checkpoint_dir.c_str(),
                     error.empty() ? "no checkpoint files found"
                                   : error.c_str());
        return 3;
      }
      if (!error.empty()) {
        std::fprintf(stderr, "warning: skipped corrupt checkpoint(s): %s\n",
                     error.c_str());
      }
      resumed = resumed_with_checkpoint = true;
    } else {
      if (!psky::LoadLatestCheckpoint(args.checkpoint_dir, &resume_state,
                                      &error)) {
        std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                     args.checkpoint_dir.c_str(), error.c_str());
        return 3;
      }
      if (!error.empty()) {
        std::fprintf(stderr, "warning: skipped corrupt checkpoint(s): %s\n",
                     error.c_str());
      }
      resumed = resumed_with_checkpoint = true;
    }
    const psky::WindowKind want_kind = args.time_span > 0.0
                                           ? psky::WindowKind::kTime
                                           : psky::WindowKind::kCount;
    if (resumed_with_checkpoint &&
        (resume_state.dims != args.dims || resume_state.q != args.q ||
         resume_state.window_kind != want_kind ||
         (want_kind == psky::WindowKind::kCount &&
          resume_state.window_capacity != args.window) ||
         (want_kind == psky::WindowKind::kTime &&
          resume_state.time_span != args.time_span))) {
      std::fprintf(stderr,
                   "error: checkpoint was taken with a different "
                   "dims/q/window configuration\n");
      return 1;
    }
    if (!resumed_with_checkpoint && !recovered.tail.empty() &&
        recovered.tail.front().element.pos.dims() != args.dims) {
      std::fprintf(stderr, "error: WAL records carry %d dims, --dims is %d\n",
                   recovered.tail.front().element.pos.dims(), args.dims);
      return 1;
    }
  }

  psky::SkyTree::Options options;
  options.record_events = args.emit == "deltas";
  psky::SskyOperator op(args.dims, args.q, options);

  // --shards > 1: the sharded engine replaces the sequential operator
  // and the window objects below — it owns windowing (router-side) and
  // runs one sky-tree per shard. Queries merge exactly (bit-equivalent
  // window state, same skyline within summation rounding).
  std::unique_ptr<psky::ShardEngine> engine;
  std::unique_ptr<psky::CountWindow> count_window;
  std::unique_ptr<psky::TimeWindow> time_window;
  std::unique_ptr<psky::StoredCountWindow> disk_window;
  if (args.shards > 1) {
    psky::ShardEngine::Options eng;
    eng.dims = args.dims;
    eng.q = args.q;
    eng.shards = args.shards;
    eng.strategy = args.shard_by;
    if (args.time_span > 0.0) {
      eng.time_span = args.time_span;
      eng.ooo_policy = args.ooo_policy;
    } else {
      eng.window_capacity = args.window;
    }
    // Per-shard auditing runs synchronously inside each shard worker
    // (the engine rejects a thread pool), over the shard's own substream.
    eng.audit.mode = args.audit_mode;
    eng.audit.audit_every = args.audit_every;
    eng.audit.oracle_every = args.audit_oracle_every;
    engine = std::make_unique<psky::ShardEngine>(eng);
  } else if (args.time_span > 0.0) {
    time_window =
        std::make_unique<psky::TimeWindow>(args.time_span, args.ooo_policy);
  } else if (args.window_store == "disk") {
    psky::SegmentStore::Options store_opts;
    store_opts.dir = !args.store_dir.empty() ? args.store_dir
                     : !args.checkpoint_dir.empty()
                         ? args.checkpoint_dir + "/segments"
                         : "psky-segments";
    store_opts.dims = args.dims;
    store_opts.elements_per_segment = args.segment_elems;
    store_opts.resident_budget =
        static_cast<size_t>(args.segment_resident_budget);
    disk_window =
        std::make_unique<psky::StoredCountWindow>(args.window, store_opts);
    std::string error;
    if (!disk_window->Init(&error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 3;
    }
    // Segments are per-run scratch: reap leftovers from a crashed run.
    const size_t stale = psky::SweepSegmentFiles(store_opts.dir);
    if (stale > 0) {
      std::fprintf(stderr, "removed %zu stale segment file(s) from %s\n",
                   stale, store_opts.dir.c_str());
    }
  } else {
    count_window = std::make_unique<psky::CountWindow>(args.window);
  }
  auto window_snapshot = [&]() {
    return engine != nullptr        ? engine->WindowSnapshot()
           : time_window != nullptr ? time_window->Snapshot()
           : disk_window != nullptr ? disk_window->Snapshot()
                                    : count_window->Snapshot();
  };
  // Out-of-order rejections under --ooo-policy reject, whichever side
  // owns the time-window watermark.
  auto ooo_rejected = [&]() -> uint64_t {
    if (time_window != nullptr) return time_window->rejected();
    if (engine != nullptr) return engine->rejected();
    return 0;
  };

  CarriedCounters carried;
  uint64_t step = 0;
  if (resumed) {
    // Deterministic replay: re-inserting the checkpointed window contents
    // oldest-first rebuilds the exact candidate-set state. Checkpoints
    // are shard-count-agnostic (the merged window snapshot is
    // byte-identical to a sequential one), so a sequential checkpoint
    // resumes into a sharded run and vice versa.
    if (engine != nullptr) {
      engine->Restore(resume_state.window);
    } else if (disk_window != nullptr && !resume_ckpt_path.empty()) {
      // Streamed replay: elements flow file -> segment store + operator
      // one decode batch at a time (ReadCheckpointFileStreamed already
      // CRC-validated the file during resume selection above).
      psky::CheckpointState replayed;
      std::string replay_error;
      if (!psky::ReadCheckpointFileStreamed(
              resume_ckpt_path, &replayed,
              [&](const psky::UncertainElement& e) {
                disk_window->Push(e);
                op.Insert(e);
              },
              &replay_error)) {
        std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                     resume_ckpt_path.c_str(), replay_error.c_str());
        return 3;
      }
    } else {
      psky::ReplayWindow(resume_state, &op);
      for (const auto& e : resume_state.window) {
        if (time_window != nullptr) {
          time_window->Push(e, nullptr);
        } else if (disk_window != nullptr) {
          disk_window->Push(e);
        } else {
          count_window->Push(e);
        }
      }
    }
    if (options.record_events) op.TakeSkylineDelta();  // replay is not news
    step = resume_state.elements_consumed;
    carried.bad_lines_skipped = resume_state.bad_lines_skipped;
    carried.probs_clamped = resume_state.probs_clamped;
    carried.ooo_dropped = resume_state.ooo_dropped;
    std::fprintf(stderr,
                 "resumed at step %llu (window holds %zu elements)\n",
                 static_cast<unsigned long long>(step),
                 disk_window != nullptr && !resume_ckpt_path.empty()
                     ? disk_window->size()
                     : resume_state.window.size());
  }

  // --- WAL tail replay (crash recovery past the checkpoint) -------------
  if (args.wal && !recovered.tail.empty()) {
    std::vector<psky::UncertainElement> tail_expired;
    for (const psky::WalRecord& r : recovered.tail) {
      psky::UncertainElement e = r.element;
      if (engine != nullptr) {
        // The WAL holds only admitted (post-clamp) elements, so the
        // router cannot reject them.
        PSKY_CHECK_MSG(engine->Route(e),
                       "WAL replay: admitted element rejected");
      } else if (time_window != nullptr) {
        tail_expired.clear();
        // The WAL holds only admitted elements with already-clamped
        // timestamps, so re-admission cannot fail.
        PSKY_CHECK_MSG(time_window->TryPush(&e, &tail_expired),
                       "WAL replay: admitted element rejected");
        for (const auto& old : tail_expired) op.Expire(old);
      } else if (disk_window != nullptr) {
        if (disk_window->full()) op.Expire(disk_window->PushRotate(e));
        else disk_window->Push(e);
      } else {
        if (count_window->full()) op.Expire(count_window->PushRotate(e));
        else count_window->Push(e);
      }
      if (engine == nullptr) op.Insert(e);
      step = r.step_after;
    }
    if (options.record_events) op.TakeSkylineDelta();  // replay is not news
    // The tip record carries the absolute source position and cumulative
    // counters: fast-forward the source from it (not the checkpoint) and
    // restart the run-relative counters at zero.
    const psky::WalRecord& tip = recovered.tail.back();
    resume_state.next_seq = tip.next_seq_after;
    resume_state.lines_consumed = tip.lines_after;
    carried.bad_lines_skipped = tip.skipped_total;
    carried.probs_clamped = tip.clamped_total;
    carried.ooo_dropped = tip.ooo_total;
    std::fprintf(stderr, "replayed %zu WAL record(s); now at step %llu\n",
                 recovered.tail.size(),
                 static_cast<unsigned long long>(step));
  }

  Source source(args, resumed ? &resume_state : nullptr);

  // Source position after the last *processed* element. Checkpoints are
  // built from these carried values, never from the live source — with a
  // producer thread, the source may already be far ahead (or being read
  // concurrently). Elements produced but shed or still queued at
  // checkpoint time are simply re-read on resume.
  struct SourcePos {
    uint64_t next_seq = 0;
    uint64_t lines = 0;
    uint64_t skipped = 0;
    uint64_t clamped = 0;
  } last;
  if (resumed) {
    last.next_seq = resume_state.next_seq;
    last.lines = resume_state.lines_consumed;
  }

  // Everything a checkpoint records except the window contents. The
  // disk-mode streamed writer pairs this header with a segment-store
  // cursor; build_state() adds the materialized window for every other
  // consumer (in-memory checkpoints, quarantine dumps).
  auto build_header = [&]() -> psky::CheckpointState {
    psky::CheckpointState state;
    state.dims = args.dims;
    state.q = args.q;
    if (args.time_span > 0.0) {
      state.window_kind = psky::WindowKind::kTime;
      state.time_span = args.time_span;
    } else {
      state.window_kind = psky::WindowKind::kCount;
      state.window_capacity = args.window;
    }
    state.elements_consumed = step;
    state.lines_consumed = last.lines;
    state.next_seq = last.next_seq;
    state.bad_lines_skipped = carried.bad_lines_skipped + last.skipped;
    state.probs_clamped = carried.probs_clamped + last.clamped;
    state.ooo_dropped = carried.ooo_dropped + ooo_rejected();
    return state;
  };
  auto build_state = [&]() -> psky::CheckpointState {
    psky::CheckpointState state = build_header();
    state.window = window_snapshot();
    return state;
  };

  psky::RetryPolicy io_policy;
  io_policy.max_attempts = args.io_retries + 1;
  io_policy.base_backoff_ms = args.io_backoff_ms;
  io_policy.seed = args.seed ^ 0x9E3779B97F4A7C15ull;
  psky::RetryStats io_stats;

  // --- write-ahead log ---------------------------------------------------
  psky::WalWriter wal;
  psky::DiskPressureGovernor wal_governor;
  if (args.wal) {
    std::string error;
    int saved_errno = 0;
    bool opened = false;
    if (resumed && !recovered.active_wal.empty()) {
      uint64_t next_step = 0;
      if (wal.OpenForAppend(recovered.active_wal, &error, &saved_errno,
                            &next_step)) {
        if (next_step == step + 1) {
          opened = true;
        } else {
          std::fprintf(stderr,
                       "warning: %s continues at step %llu but the run "
                       "resumes at %llu; starting a fresh log\n",
                       recovered.active_wal.c_str(),
                       static_cast<unsigned long long>(next_step),
                       static_cast<unsigned long long>(step + 1));
          wal.Close();
        }
      } else {
        std::fprintf(stderr,
                     "warning: cannot append to %s: %s; starting a fresh "
                     "log\n",
                     recovered.active_wal.c_str(), error.c_str());
      }
    }
    if (!opened) {
      std::error_code ec;
      if (!resumed) {
        // A fresh (non-resume) run starts a new element sequence; logs
        // from an abandoned stream would only confuse later recovery.
        size_t removed = 0;
        for (const std::string& old :
             psky::ListWalFiles(args.checkpoint_dir)) {
          if (std::filesystem::remove(old, ec)) ++removed;
        }
        if (removed > 0) {
          std::fprintf(stderr, "removed %zu abandoned WAL file(s) from %s\n",
                       removed, args.checkpoint_dir.c_str());
        }
      }
      const std::string path =
          args.checkpoint_dir + "/" + psky::WalFileName(step);
      std::filesystem::remove(path, ec);  // stale same-step log, if any
      if (!wal.Create(path, static_cast<uint32_t>(args.dims), step, &error,
                      &saved_errno)) {
        std::fprintf(stderr, "error: cannot create WAL: %s\n", error.c_str());
        return 3;
      }
    }
    // Overlapped group commit: the fdatasync runs on a background thread
    // while the step path continues; checkpoints barrier below, so the
    // durability contract is unchanged.
    if (args.wal_sync_mode == "async") wal.SetAsyncSync(true);
  }

  // Stamps one admitted element into the WAL (before it reaches the
  // operator) and drives the group-commit cadence, widened under disk
  // pressure by the governor. Exhausting the retry budget is fatal: the
  // WAL is never silently dropped (quarantine + exit 3 instead).
  auto wal_log = [&](const psky::UncertainElement& admitted,
                     const psky::IngestItem& item,
                     uint64_t step_after) -> bool {
    psky::WalRecord r;
    r.element = admitted;
    r.step_after = step_after;
    r.next_seq_after = item.next_seq_after;
    r.lines_after = item.lines_after;
    r.skipped_total = carried.bad_lines_skipped + item.skipped_after;
    r.clamped_total = carried.probs_clamped + item.clamped_after;
    r.ooo_total = carried.ooo_dropped + ooo_rejected();
    std::string error;
    const bool appended = psky::RetryWithBackoff(
        io_policy,
        [&](int* err) { return wal.Append(r, &error, err); }, &io_stats);
    if (!appended) {
      std::fprintf(stderr, "error: WAL append failed: %s\n", error.c_str());
      DumpQuarantine("WAL append failed: " + error);
      return false;
    }
    if (wal.pending() < args.wal_sync_every * wal_governor.multiplier()) {
      return true;
    }
    const auto sync_start = std::chrono::steady_clock::now();
    const uint64_t retries_before = io_stats.retries;
    const bool synced = psky::RetryWithBackoff(
        io_policy, [&](int* err) { return wal.Sync(&error, err); },
        &io_stats);
    if (!synced) {
      std::fprintf(stderr, "error: WAL sync failed: %s\n", error.c_str());
      DumpQuarantine("WAL sync failed: " + error);
      return false;
    }
    auto sync_ms = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - sync_start)
            .count());
    // Overlapped mode: the enqueue above is cheap by design; feed the
    // governor the latency of the last *completed* background fdatasync
    // so disk pressure is still observed.
    sync_ms = std::max(sync_ms, wal.TakeAsyncSyncLatencyMs());
    const bool strained = io_stats.retries > retries_before;
    if (wal_governor.ObserveSync(strained, sync_ms)) {
      std::fprintf(
          stderr, "disk-pressure: group-commit window now %llux%llu\n",
          static_cast<unsigned long long>(wal_governor.multiplier()),
          static_cast<unsigned long long>(args.wal_sync_every));
    }
    return true;
  };

  uint64_t checkpoints_written = 0;
  auto write_checkpoint = [&]() -> bool {
    // WAL-before-checkpoint: everything the snapshot covers must already
    // be durable, or a crash between the two could lose acknowledged
    // records that the next resume then skips past.
    if (args.wal) {
      std::string error;
      // Sync + SyncBarrier as one retried unit: in overlapped mode a
      // failed background fdatasync surfaces at the barrier, and the
      // retry waits on the fresh attempt ConsumeStickyError queued.
      if (!psky::RetryWithBackoff(
              io_policy,
              [&](int* err) {
                return wal.Sync(&error, err) && wal.SyncBarrier(&error, err);
              },
              &io_stats)) {
        std::fprintf(stderr, "error: WAL sync failed: %s\n", error.c_str());
        DumpQuarantine("WAL sync failed: " + error);
        return false;
      }
    }
    const std::string path =
        args.checkpoint_dir + "/" + psky::CheckpointFileName(step);
    std::string error;
    bool written;
    if (disk_window != nullptr) {
      // Streamed write: the window flows segment store -> file one
      // element at a time, so a giant-window checkpoint holds O(1)
      // elements in memory. Each retry attempt gets a fresh cursor.
      auto source_factory = [&]() -> psky::CheckpointElementSource {
        auto cur = std::make_shared<psky::SegmentStore::Cursor>(
            disk_window->NewCursor());
        return [cur](psky::UncertainElement* e) { return cur->Next(e); };
      };
      written = psky::WriteCheckpointFileStreamedRetry(
          path, build_header(), disk_window->size(), source_factory,
          io_policy, &io_stats, &error);
    } else {
      written = psky::WriteCheckpointFileRetry(path, build_state(),
                                               io_policy, &io_stats, &error);
    }
    if (!written) {
      std::fprintf(stderr, "error: checkpoint failed: %s\n", error.c_str());
      // The retry budget is exhausted (or the error was permanent): this
      // run is about to exit 3, so preserve the evidence.
      DumpQuarantine("checkpoint write failed: " + error);
      return false;
    }
    psky::PruneCheckpoints(args.checkpoint_dir, args.keep_checkpoints);
    ++checkpoints_written;
    if (args.wal &&
        wal.path() !=
            args.checkpoint_dir + "/" + psky::WalFileName(step)) {
      // Rotate so wal-<step>.pskywal holds exactly the records a resume
      // from this checkpoint needs, then drop logs no retained checkpoint
      // can reach. (Skipped when a final checkpoint repeats the last
      // periodic step: the rotation already happened.)
      std::string rot_error;
      if (!psky::RetryWithBackoff(
              io_policy,
              [&](int* err) {
                return wal.RotateTo(args.checkpoint_dir, step, &rot_error,
                                    err);
              },
              &io_stats)) {
        std::fprintf(stderr, "error: WAL rotation failed: %s\n",
                     rot_error.c_str());
        DumpQuarantine("WAL rotation failed: " + rot_error);
        return false;
      }
      uint64_t oldest_kept = step;
      for (const std::string& p :
           psky::ListCheckpointFiles(args.checkpoint_dir)) {
        uint64_t s = 0;
        if (psky::ParseCheckpointStep(p, &s)) oldest_kept = std::min(oldest_kept, s);
      }
      psky::PruneWalFiles(args.checkpoint_dir, oldest_kept);
    }
    return true;
  };

  // Declared before the AuditManager so workers are still alive when its
  // destructor waits on an in-flight oracle replay.
  std::unique_ptr<psky::ThreadPool> pool;
  if (args.threads > 1) {
    pool = std::make_unique<psky::ThreadPool>(args.threads);
  }

  psky::AuditOptions audit_options;
  // Sharded runs audit per shard inside the engine; the sequential
  // manager below stays off so it doesn't audit the unused operator.
  audit_options.mode =
      engine != nullptr ? psky::AuditMode::kOff : args.audit_mode;
  audit_options.audit_every = args.audit_every;
  audit_options.oracle_every = args.audit_oracle_every;
  audit_options.pool = pool.get();
  auto make_audit = [&]() -> psky::AuditManager {
    if (disk_window != nullptr) {
      // Streaming window access: slice audits and oracle replays visit
      // the segment store one mapped segment at a time instead of
      // snapshotting an O(N) vector (oracle replays run synchronously in
      // this mode; see AuditManager's streaming constructor).
      psky::StoredCountWindow* dw = disk_window.get();
      psky::AuditManager::WindowStream ws;
      ws.size = [dw]() { return static_cast<uint64_t>(dw->size()); };
      ws.at = [dw](uint64_t i) { return dw->At(static_cast<size_t>(i)); };
      ws.scan = [dw](const std::function<void(const psky::UncertainElement&)>&
                         visit) {
        psky::SegmentStore::Cursor cur = dw->NewCursor();
        psky::UncertainElement e;
        while (cur.Next(&e)) visit(e);
      };
      return psky::AuditManager(&op, audit_options, std::move(ws));
    }
    return psky::AuditManager(&op, audit_options, window_snapshot);
  };
  psky::AuditManager audit = make_audit();

  g_postmortem.snapshot = build_state;
  g_postmortem.audit = &audit;
  g_postmortem.dir = args.checkpoint_dir.empty() ? "." : args.checkpoint_dir;
  g_postmortem.io_policy = io_policy;
  g_postmortem.io_stats = &io_stats;
  InstallQuarantineHandlers();

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  // --- overload machinery ------------------------------------------------
  const bool queue_mode = args.max_queue > 0;
  std::unique_ptr<psky::BoundedIngestQueue> queue;
  psky::DegradationLadder ladder(
      psky::DegradationLadder::Options(),
      [](int old_rung, int new_rung, double pressure) {
        std::fprintf(stderr, "degradation: rung %d -> %d (pressure %.2f)\n",
                     old_rung, new_rung, pressure);
      });
  psky::DegradationLadder::Effects effects;  // defaults: no degradation
  size_t applied_budget_divisor = 1;  // last divisor applied to the store
  if (queue_mode) {
    queue = std::make_unique<psky::BoundedIngestQueue>(args.max_queue,
                                                       args.overload_policy);
  }

  std::unique_ptr<psky::Watchdog> watchdog;
  if (args.watchdog_stall_ms > 0) {
    psky::Watchdog::Options wd;
    wd.stall_ms = args.watchdog_stall_ms;
    wd.task_stall_ms = args.watchdog_stall_ms;
    wd.poll_ms = std::max<uint64_t>(10, std::min<uint64_t>(
                                            100, args.watchdog_stall_ms / 4));
    watchdog = std::make_unique<psky::Watchdog>(wd, [](const std::string& w) {
      std::fprintf(stderr, "watchdog: %s\n", w.c_str());
    });
    if (pool != nullptr) watchdog->WatchPool(pool.get());
    watchdog->Start();
  }

  const uint64_t resume_step = step;
  uint64_t processed_items = 0;
  auto heartbeat_last = std::chrono::steady_clock::now();
  uint64_t heartbeat_last_step = step;

  bool stopped_by_signal = false;
  std::vector<psky::UncertainElement> expired;

  // Processes one admitted element through the expire-before-insert cycle
  // plus all per-step bookkeeping. Returns -1 to continue, or an exit code.
  auto process_item = [&](const psky::IngestItem& item) -> int {
    if (psky::fault::Enabled()) {
      psky::fault::MaybeDelay(psky::fault::Site::kStep);
    }
    const psky::UncertainElement& element = item.element;
    if (engine != nullptr) {
      psky::UncertainElement admitted;
      if (!engine->Route(element, &admitted)) {
        // Late timestamp under --ooo-policy reject (time windows only):
        // same handling as the sequential TryPush rejection below.
        if (args.on_bad_input == psky::BadInputPolicy::kFail) {
          std::fprintf(
              stderr,
              "error: line %llu: out-of-order timestamp %g is behind "
              "watermark %g (see --ooo-policy)\n",
              static_cast<unsigned long long>(
                  source.csv() != nullptr ? item.lines_after : step + 1),
              element.time, engine->watermark());
          return 2;
        }
        last.next_seq = item.next_seq_after;
        last.lines = item.lines_after;
        last.skipped = item.skipped_after;
        last.clamped = item.clamped_after;
        return -1;
      }
      // The insert command is already in flight when the WAL is stamped;
      // that is safe because nothing is acknowledged until wal_log
      // returns, and checkpoints barrier on the WAL before snapshotting.
      if (args.wal && !wal_log(admitted, item, step + 1)) return 3;
    } else if (time_window != nullptr) {
      expired.clear();
      psky::UncertainElement incoming = element;
      if (!time_window->TryPush(&incoming, &expired)) {
        // Late timestamp under --ooo-policy reject: treat like a
        // malformed line.
        if (args.on_bad_input == psky::BadInputPolicy::kFail) {
          std::fprintf(
              stderr,
              "error: line %llu: out-of-order timestamp %g is behind "
              "watermark %g (see --ooo-policy)\n",
              static_cast<unsigned long long>(
                  source.csv() != nullptr ? item.lines_after : step + 1),
              incoming.time, time_window->watermark());
          return 2;
        }
        // The element was consumed even though it was dropped: advance the
        // carried source position so a checkpoint does not replay it.
        last.next_seq = item.next_seq_after;
        last.lines = item.lines_after;
        last.skipped = item.skipped_after;
        last.clamped = item.clamped_after;
        return -1;
      }
      // Stamp the admitted (clamp-adjusted) element into the WAL before
      // it reaches the operator.
      if (args.wal && !wal_log(incoming, item, step + 1)) return 3;
      for (const auto& old : expired) op.Expire(old);
      op.Insert(incoming);
    } else {
      if (args.wal && !wal_log(element, item, step + 1)) return 3;
      if (disk_window != nullptr) {
        if (disk_window->full()) {
          op.Expire(disk_window->PushRotate(element));
        } else {
          disk_window->Push(element);
        }
      } else if (count_window->full()) {
        op.Expire(count_window->PushRotate(element));
      } else {
        count_window->Push(element);
      }
      op.Insert(element);
    }
    ++step;
    last.next_seq = item.next_seq_after;
    last.lines = item.lines_after;
    last.skipped = item.skipped_after;
    last.clamped = item.clamped_after;

    if (args.inject_drift_at != 0 && step == args.inject_drift_at) {
      // Corrupt the newest live candidate's P_old in place — the class of
      // damage drift accumulation produces, writ large. P_new is left
      // alone: it also drives candidate retention, so damaging it can
      // cause an eviction (unrepairable by design) before the auditor's
      // next pass.
      const auto window = window_snapshot();
      for (auto it = window.rbegin(); it != window.rend(); ++it) {
        const auto view = op.tree().LookupForAudit(it->pos, it->seq);
        if (!view.found) continue;
        op.mutable_tree()->RepairElement(it->pos, it->seq, view.pnew_log,
                                         view.pold_log - 2.0);
        std::fprintf(stderr, "injected drift into seq %llu at step %llu\n",
                     static_cast<unsigned long long>(it->seq),
                     static_cast<unsigned long long>(step));
        break;
      }
    }

    if (!audit.Step() && args.strict) {
      char reason[96];
      std::snprintf(reason, sizeof reason,
                    "unrepaired integrity violation at step %llu",
                    static_cast<unsigned long long>(step));
      std::fprintf(stderr, "error: %s\n", reason);
      DumpQuarantine(reason);
      return 4;
    }

    if (args.emit == "deltas") {
      const auto delta = op.TakeSkylineDelta();
      for (uint64_t seq : delta.left) {
        std::printf("-%llu\n", static_cast<unsigned long long>(seq));
      }
      for (uint64_t seq : delta.entered) {
        std::printf("+%llu\n", static_cast<unsigned long long>(seq));
      }
    } else if (args.emit == "counts" && args.every > 0 &&
               step % args.every == 0) {
      if (engine != nullptr) {
        // Each report is a barrier + exact merge; |S*| equals the
        // sequential candidate count, so the line diffs cleanly against
        // a --shards 1 run.
        size_t candidates = 0;
        const auto members = engine->GlobalSkyline(&candidates);
        std::printf("step=%llu candidates=%zu skyline=%zu\n",
                    static_cast<unsigned long long>(step), candidates,
                    members.size());
      } else {
        std::printf("step=%llu candidates=%zu skyline=%zu\n",
                    static_cast<unsigned long long>(step),
                    op.candidate_count(), op.skyline_count());
      }
    }

    if (args.stats_interval > 0 && step % args.stats_interval == 0) {
      const auto now = std::chrono::steady_clock::now();
      const double secs =
          std::chrono::duration<double>(now - heartbeat_last).count();
      const double eps =
          secs > 0.0
              ? static_cast<double>(step - heartbeat_last_step) / secs
              : 0.0;
      heartbeat_last = now;
      heartbeat_last_step = step;
      const psky::QueueStats qs =
          queue != nullptr ? queue->StatsSnapshot() : psky::QueueStats{};
      std::fprintf(
          stderr,
          "heartbeat step=%llu eps=%.0f queue=%zu/%zu "
          "drops=oldest:%llu,lowprob:%llu,incoming:%llu rung=%d "
          "audit-lag=%llu\n",
          static_cast<unsigned long long>(step), eps,
          queue != nullptr ? queue->depth() : 0,
          queue != nullptr ? queue->capacity() : 0,
          static_cast<unsigned long long>(qs.shed_oldest),
          static_cast<unsigned long long>(qs.shed_low_prob),
          static_cast<unsigned long long>(qs.shed_incoming), ladder.rung(),
          static_cast<unsigned long long>(audit.steps_since_last_audit()));
      if (disk_window != nullptr) {
        // Out-of-core window health: residency should sit at the budget
        // (or 3 in steady state) and the readahead hit rate near 100%;
        // nonzero pressure means audits/cursors are fighting the budget.
        const psky::SegmentStore::Stats ss = disk_window->store_stats();
        const uint64_t ra_total = ss.readahead_hits + ss.readahead_misses;
        const double hit_rate =
            ra_total > 0 ? 100.0 * static_cast<double>(ss.readahead_hits) /
                               static_cast<double>(ra_total)
                         : 100.0;
        std::fprintf(
            stderr,
            "segment-heartbeat live=%llu resident=%llu budget=%zu "
            "recycled=%llu readahead-hit=%.0f%% pressure=%llu\n",
            static_cast<unsigned long long>(ss.segments_live),
            static_cast<unsigned long long>(ss.segments_resident),
            disk_window->resident_budget(),
            static_cast<unsigned long long>(ss.segments_recycled), hit_rate,
            static_cast<unsigned long long>(ss.recycle_pressure));
      }
      if (engine != nullptr) {
        // Per-shard health: SPSC backlog, window imbalance (1.0 = even),
        // merge-side counters. Readable without a barrier.
        const psky::ShardEngine::Stats es = engine->GetStats();
        size_t depth_max = 0;
        uint64_t lag = 0;
        uint64_t violations = 0;
        for (const auto& s : es.shards) {
          depth_max = std::max(depth_max, s.queue_depth);
          lag += s.routed - s.applied;
          violations += s.audit_violations;
        }
        std::fprintf(
            stderr,
            "shard-heartbeat shards=%zu depth-max=%zu lag=%llu "
            "imbalance=%.2f merges=%llu merge-cands=%llu probes=%llu "
            "cell-skips=%llu audit-violations=%llu\n",
            es.shards.size(), depth_max,
            static_cast<unsigned long long>(lag), es.imbalance,
            static_cast<unsigned long long>(es.merges),
            static_cast<unsigned long long>(es.merge_candidates),
            static_cast<unsigned long long>(es.merge_probes),
            static_cast<unsigned long long>(es.merge_cell_skips),
            static_cast<unsigned long long>(violations));
      }
    }

    const uint64_t ckpt_every =
        args.checkpoint_every * effects.checkpoint_stretch;
    if (args.checkpoint_every > 0 && step % ckpt_every == 0) {
      if (!write_checkpoint()) return 3;
    }
    return -1;
  };

  int exit_code = -1;
  if (!queue_mode) {
    // Classic synchronous loop: produce and consume on one thread. This
    // path is byte-identical to previous releases when the new flags are
    // off.
    std::vector<psky::IngestItem> batch;
    batch.reserve(args.batch_size);
    bool source_done = false;
    while (!source_done && exit_code < 0) {
      if (g_stop_requested != 0) {
        stopped_by_signal = true;
        break;
      }
      // Pull up to batch_size elements, then feed them through the
      // expire-before-insert cycle one by one — identical semantics to the
      // unbatched loop (see StreamProcessor::StepBatch), with source
      // dispatch and the stop-signal test amortized across the batch.
      batch.clear();
      while (batch.size() < args.batch_size) {
        auto item = source.NextItem();
        if (!item.has_value()) {
          source_done = true;
          break;
        }
        batch.push_back(std::move(*item));
      }
      if (watchdog != nullptr) watchdog->SetBusy(true);
      for (const auto& item : batch) {
        ++processed_items;
        exit_code = process_item(item);
        if (exit_code >= 0) break;
      }
      if (watchdog != nullptr) {
        watchdog->OnStep(step);
        watchdog->SetBusy(false);
      }
    }
  } else {
    // Threaded ingest: the producer owns the source and pushes stamped
    // items through the bounded queue; this thread consumes, observes
    // queue pressure, and walks the degradation ladder.
    std::atomic<uint64_t> produced_total{0};
    ProducerJoiner producer;
    producer.queue = queue.get();
    producer.thread = std::thread([&source, &produced_total, q = queue.get()]() {
      for (;;) {
        auto item = source.NextItem();
        if (!item.has_value()) break;
        produced_total.fetch_add(1, std::memory_order_relaxed);
        if (!q->Push(std::move(*item))) break;  // stop requested
      }
      q->CloseProducer();
    });

    std::vector<psky::IngestItem> items;
    bool stop_handled = false;
    while (exit_code < 0) {
      if (g_stop_requested != 0 && !stop_handled) {
        stop_handled = true;
        stopped_by_signal = true;
        // Graceful drain: stop the producer (a blocked push fails fast),
        // then keep consuming until the queue is empty so no admitted
        // element is lost.
        queue->RequestStop();
        producer.thread.join();
      }
      const size_t pop_max = args.batch_size * effects.batch_multiplier;
      const size_t n = queue->PopBatch(&items, pop_max, 50);
      if (n == 0) {
        if (queue->drained()) break;
        if (watchdog != nullptr) watchdog->SetBusy(false);
        continue;
      }
      if (watchdog != nullptr) watchdog->SetBusy(true);
      for (const auto& item : items) {
        ++processed_items;
        exit_code = process_item(item);
        if (exit_code >= 0) break;
      }
      if (watchdog != nullptr) {
        watchdog->OnStep(step);
        watchdog->SetBusy(false);
      }
      ladder.Observe(queue->pressure());
      effects = ladder.effects();
      audit.SetDegradation(effects.suspend_oracle, effects.audit_stretch);
      if (disk_window != nullptr &&
          effects.segment_budget_divisor != applied_budget_divisor) {
        // Rung >= 2 memory relief: shrink the mapped-segment budget (the
        // store clamps at its minimum of 3); divisor 1 restores the
        // configured budget. An unlimited budget (0) has no meaningful
        // fraction to shrink to, so it is left alone.
        applied_budget_divisor = effects.segment_budget_divisor;
        const size_t base =
            static_cast<size_t>(args.segment_resident_budget);
        if (base > 0) {
          disk_window->SetResidentBudget(
              std::max<size_t>(1, base / applied_budget_divisor));
        }
      }
    }
    if (producer.thread.joinable()) {
      queue->RequestStop();
      producer.thread.join();
    }

    if (exit_code < 0) {
      // Exact shed accounting: every produced element must be processed,
      // shed under a named policy, or refused after the stop request.
      const psky::QueueStats qs = queue->StatsSnapshot();
      // Acquire pairs with the producer's final relaxed increments: the
      // producer thread is joined above, so this observes its last count.
      const uint64_t produced = produced_total.load(std::memory_order_acquire);
      const uint64_t consumed_side = qs.dequeued + qs.shed_oldest +
                                     qs.shed_low_prob + queue->depth();
      const uint64_t produced_side =
          qs.enqueued + qs.shed_incoming + qs.dropped_on_stop;
      const bool exact = qs.enqueued == consumed_side &&
                         produced == produced_side &&
                         qs.dequeued == processed_items;
      const psky::DegradationLadder::Stats& ls = ladder.stats();
      std::fprintf(
          stderr,
          "overload: policy=%s enqueued=%llu dequeued=%llu "
          "shed-oldest=%llu shed-low-prob=%llu shed-incoming=%llu "
          "dropped-on-stop=%llu producer-blocks=%llu peak-depth=%zu "
          "rung=%d peak-rung=%d escalations=%llu recoveries=%llu "
          "shed-accounting=%s\n",
          psky::OverloadPolicyName(args.overload_policy),
          static_cast<unsigned long long>(qs.enqueued),
          static_cast<unsigned long long>(qs.dequeued),
          static_cast<unsigned long long>(qs.shed_oldest),
          static_cast<unsigned long long>(qs.shed_low_prob),
          static_cast<unsigned long long>(qs.shed_incoming),
          static_cast<unsigned long long>(qs.dropped_on_stop),
          static_cast<unsigned long long>(qs.producer_blocks),
          qs.peak_depth, ls.rung, ls.peak_rung,
          static_cast<unsigned long long>(ls.escalations),
          static_cast<unsigned long long>(ls.recoveries),
          exact ? "exact" : "BROKEN");
    }
  }
  if (exit_code >= 0) return exit_code;

  // A reader that stopped on malformed input (fail-fast, or the skip
  // budget ran out) is a hard input error: exit 2 with the line number.
  // Safe to touch the source here: the producer (if any) has been joined.
  const psky::CsvElementReader* csv = source.csv();
  if (!stopped_by_signal && csv != nullptr && !csv->ok()) {
    std::fprintf(stderr, "error: %s\n", csv->error().c_str());
    return 2;
  }

  if (!args.checkpoint_dir.empty()) {
    if (!write_checkpoint()) return 3;
  }

  // One final merge per sharded run: feeds --emit final / --topk and the
  // closing summary line (|S| = merged candidate count = the sequential
  // operator's).
  std::vector<psky::SkylineMember> merged_skyline;
  size_t merged_candidates = 0;
  if (engine != nullptr) {
    merged_skyline = engine->GlobalSkyline(&merged_candidates);
  }

  if (args.emit == "final" || args.topk > 0) {
    std::vector<psky::SkylineMember> members;
    bool complete = true;
    if (engine != nullptr) {
      members = merged_skyline;
      if (args.topk > 0) {
        // The merged skyline holds every member with psky >= q; the
        // sequential top-k printer stops below q anyway, so sorting by
        // psky (ties by arrival) and truncating matches its output.
        std::sort(members.begin(), members.end(),
                  [](const psky::SkylineMember& a,
                     const psky::SkylineMember& b) {
                    if (a.psky > b.psky) return true;
                    if (a.psky < b.psky) return false;
                    return a.element.seq < b.element.seq;
                  });
        if (members.size() > args.topk) members.resize(args.topk);
      }
    } else if (args.query_deadline_ms > 0) {
      const psky::QueryControl ctl = psky::QueryControl::WithDeadline(
          std::chrono::milliseconds(args.query_deadline_ms));
      complete = args.topk > 0
                     ? op.tree().TopK(args.topk, ctl, &members)
                     : op.tree().CollectAtLeast(args.q, ctl, &members);
    } else {
      members = args.topk > 0 ? op.tree().TopK(args.topk) : op.Skyline();
    }
    for (const auto& m : members) {
      if (args.topk > 0 && m.psky < args.q) break;
      std::printf("seq=%llu psky=%.6f pos=",
                  static_cast<unsigned long long>(m.element.seq), m.psky);
      for (int i = 0; i < args.dims; ++i) {
        std::printf(i == 0 ? "%g" : ",%g", m.element.pos[i]);
      }
      std::printf(" prob=%g\n", m.element.prob);
    }
    if (!complete) {
      std::fprintf(stderr,
                   "final query deadline of %llu ms exceeded; emitted %zu "
                   "partial result(s)\n",
                   static_cast<unsigned long long>(args.query_deadline_ms),
                   members.size());
    }
  }

  const uint64_t skipped = carried.bad_lines_skipped + last.skipped;
  const uint64_t clamped = carried.probs_clamped + last.clamped;
  const uint64_t ooo = carried.ooo_dropped + ooo_rejected();
  std::fprintf(stderr, "processed %llu elements; |S|=%zu |SKY|=%zu\n",
               static_cast<unsigned long long>(step),
               engine != nullptr ? merged_candidates : op.candidate_count(),
               engine != nullptr ? merged_skyline.size()
                                 : op.skyline_count());
  if (engine != nullptr) {
    const psky::ShardEngine::Stats es = engine->GetStats();
    std::fprintf(
        stderr,
        "shards: count=%zu imbalance=%.2f merges=%llu merge-cands=%llu "
        "probes=%llu cell-skips=%llu barriers=%llu\n",
        es.shards.size(), es.imbalance,
        static_cast<unsigned long long>(es.merges),
        static_cast<unsigned long long>(es.merge_candidates),
        static_cast<unsigned long long>(es.merge_probes),
        static_cast<unsigned long long>(es.merge_cell_skips),
        static_cast<unsigned long long>(es.barriers));
  }
  (void)resume_step;
  if (skipped > 0 || clamped > 0 || ooo > 0) {
    std::fprintf(stderr,
                 "skipped %llu malformed lines, clamped %llu probabilities, "
                 "dropped %llu out-of-order elements\n",
                 static_cast<unsigned long long>(skipped),
                 static_cast<unsigned long long>(clamped),
                 static_cast<unsigned long long>(ooo));
  }
  if (checkpoints_written > 0) {
    std::fprintf(stderr, "wrote %llu checkpoint(s) to %s\n",
                 static_cast<unsigned long long>(checkpoints_written),
                 args.checkpoint_dir.c_str());
  }
  if (args.wal) {
    wal.Close();  // syncs (and barriers) any post-checkpoint tail records
    const psky::WalWriter::Stats& ws = wal.stats();
    std::fprintf(stderr,
                 "wal: records=%llu syncs=%llu async-syncs=%llu "
                 "rotations=%llu group-commit=%llux%llu "
                 "pressure-escalations=%llu\n",
                 static_cast<unsigned long long>(ws.records_appended),
                 static_cast<unsigned long long>(ws.syncs),
                 static_cast<unsigned long long>(ws.async_syncs),
                 static_cast<unsigned long long>(ws.rotations),
                 static_cast<unsigned long long>(wal_governor.multiplier()),
                 static_cast<unsigned long long>(args.wal_sync_every),
                 static_cast<unsigned long long>(wal_governor.escalations()));
  }
  if (disk_window != nullptr) {
    const psky::SegmentStore::Stats ss = disk_window->store_stats();
    std::fprintf(stderr,
                 "segment-store: created=%llu recycled=%llu live=%llu "
                 "resident=%llu readahead-hits=%llu readahead-misses=%llu "
                 "recycle-pressure=%llu\n",
                 static_cast<unsigned long long>(ss.segments_created),
                 static_cast<unsigned long long>(ss.segments_recycled),
                 static_cast<unsigned long long>(ss.segments_live),
                 static_cast<unsigned long long>(ss.segments_resident),
                 static_cast<unsigned long long>(ss.readahead_hits),
                 static_cast<unsigned long long>(ss.readahead_misses),
                 static_cast<unsigned long long>(ss.recycle_pressure));
  }
  if (args.io_retries > 0 || io_stats.retries > 0) {
    std::fprintf(stderr,
                 "io-retry: attempts=%llu retries=%llu backoff-ms=%llu "
                 "exhausted=%llu permanent=%llu\n",
                 static_cast<unsigned long long>(io_stats.attempts),
                 static_cast<unsigned long long>(io_stats.retries),
                 static_cast<unsigned long long>(io_stats.backoff_ms_total),
                 static_cast<unsigned long long>(io_stats.exhausted),
                 static_cast<unsigned long long>(io_stats.permanent_failures));
  }
  if (psky::fault::Enabled()) {
    const psky::fault::Stats fs = psky::fault::StatsSnapshot();
    std::fprintf(stderr,
                 "chaos: failures=%llu delays=%llu delay-ms=%llu\n",
                 static_cast<unsigned long long>(fs.failures_injected),
                 static_cast<unsigned long long>(fs.delays_injected),
                 static_cast<unsigned long long>(fs.delay_ms_total));
  }
  if (watchdog != nullptr) {
    watchdog->Stop();
    const psky::Watchdog::Stats ws = watchdog->StatsSnapshot();
    std::fprintf(stderr,
                 "watchdog: step-stalls=%llu pool-stalls=%llu "
                 "max-gap-ms=%llu\n",
                 static_cast<unsigned long long>(ws.step_stalls),
                 static_cast<unsigned long long>(ws.pool_stalls),
                 static_cast<unsigned long long>(ws.max_step_gap_ms));
  }
  if (args.audit_mode != psky::AuditMode::kOff) {
    audit.Drain();  // harvest any in-flight asynchronous oracle verdict
    psky::AuditReport merged_report;
    if (engine != nullptr) {
      engine->Barrier();  // shard audit state is read directly
      merged_report = engine->AuditReportMerged();
    }
    const psky::AuditReport& r =
        engine != nullptr ? merged_report : audit.report();
    std::fprintf(
        stderr,
        "audit: %llu audited, max drift %.3g, %llu beyond tolerance, "
        "%llu repairs (%llu band flips prevented), %llu false evictions, "
        "%llu oracle replays (%llu mismatches), %llu unrepaired\n",
        static_cast<unsigned long long>(r.elements_audited), r.max_drift,
        static_cast<unsigned long long>(r.drift_beyond_tolerance),
        static_cast<unsigned long long>(r.repairs_applied),
        static_cast<unsigned long long>(r.band_flips_prevented),
        static_cast<unsigned long long>(r.false_evictions),
        static_cast<unsigned long long>(r.oracle_replays),
        static_cast<unsigned long long>(r.oracle_mismatches),
        static_cast<unsigned long long>(r.violations_unrepaired));
    if (args.strict && r.violations_unrepaired > 0) {
      DumpQuarantine("unrepaired integrity violation at end of stream");
      return 4;
    }
  }
  if (stopped_by_signal) {
    std::fprintf(stderr, "stopped by signal after %llu elements\n",
                 static_cast<unsigned long long>(step));
  }
  return 0;
}
