// psky_stream: command-line continuous probabilistic skyline over CSV
// streams (or built-in generators).
//
// Usage:
//   psky_stream --dims 3 --q 0.3 --window 100000 [--input FILE]
//               [--emit counts|deltas|final] [--every K] [--topk K]
//   psky_stream --generate anti|inde|corr|stock --count 100000 ...
//
// Input lines: v1,...,vd,prob[,timestamp]  ('#' comments allowed).
// With --time-span T the window is time-based (timestamps required).
//
// Fault tolerance (see docs/operations.md):
//   --checkpoint-dir DIR     durable snapshots of the window state
//   --checkpoint-every K     snapshot every K elements (plus one at exit)
//   --resume                 restore the newest valid snapshot, fast-forward
//                            the source, and continue the stream
//   --on-bad-input fail|skip|clamp   malformed-line policy (default fail)
//   --ooo-policy reject|clamp        late-timestamp policy (default reject)
// SIGINT/SIGTERM drain gracefully: a final checkpoint is flushed (when a
// checkpoint dir is configured) and counters are reported before exit.
//
// Integrity auditing (see docs/operations.md):
//   --audit-mode off|check|repair  what to do with detected drift
//   --audit-every K          re-derive a slice of exact values every K steps
//   --audit-oracle-every K   replay the window through the naive oracle
//   --strict                 exit 4 on any violation the auditor could not
//                            repair (a quarantine dump is written first)
// On PSKY_CHECK failure or a fatal signal the window state and audit
// counters are dumped to a quarantine file in the checkpoint dir (or the
// working directory) for post-mortem replay.
//
// Output (stdout), one line per report:
//   counts:  step=<n> candidates=<c> skyline=<s>
//   deltas:  +<seq> / -<seq> skyline membership changes as they happen
//   final:   the full skyline once, at end of stream
// Exit codes: 0 ok (including graceful signal stop), 1 bad usage or
// configuration, 2 malformed input, 3 checkpoint I/O failure, 4 unrepaired
// integrity violation under --strict.

#include <climits>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <string>

#include "base/build_info.h"
#include "base/check.h"
#include "base/thread_pool.h"
#include "core/audit.h"
#include "core/checkpoint.h"
#include "core/ssky_operator.h"
#include "core/topk_operator.h"
#include "stream/csv.h"
#include "stream/generator.h"
#include "stream/stock.h"
#include "stream/window.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int /*signum*/) { g_stop_requested = 1; }

struct Args {
  int dims = 2;
  double q = 0.3;
  size_t window = 100000;
  double time_span = 0.0;  // > 0: time-based window
  std::string input;       // empty: stdin
  std::string generate;    // empty: read csv
  size_t count = 100000;   // generated elements
  uint64_t seed = 42;
  std::string emit = "counts";
  size_t every = 10000;
  size_t topk = 0;
  /// Elements pulled from the source and fed to the operator per loop
  /// iteration. Results are bit-identical for any value: the expire/insert
  /// interleaving per element is preserved (see StreamProcessor::StepBatch);
  /// batching amortizes source dispatch and the window-full test.
  size_t batch_size = 1;
  /// Worker threads for off-critical-path work (currently the audit
  /// shadow-oracle replay). 1 keeps everything on the main thread; 0
  /// means "one per hardware thread".
  int threads = 1;
  std::string checkpoint_dir;       // empty: checkpointing disabled
  uint64_t checkpoint_every = 0;    // 0: only final/signal checkpoints
  bool resume = false;
  psky::BadInputPolicy on_bad_input = psky::BadInputPolicy::kFail;
  psky::TimestampPolicy ooo_policy = psky::TimestampPolicy::kReject;
  psky::AuditMode audit_mode = psky::AuditMode::kOff;
  uint64_t audit_every = 64;
  uint64_t audit_oracle_every = 0;
  bool strict = false;
  // Test hook: at this step, corrupt one live element's probability state
  // in place, exactly the kind of damage the auditor exists to catch.
  uint64_t inject_drift_at = 0;
};

[[noreturn]] void Usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: psky_stream --dims D --q Q (--window N | "
               "--time-span T)\n"
               "                   [--input FILE | --generate "
               "anti|inde|corr|stock --count N]\n"
               "                   [--emit counts|deltas|final] [--every K] "
               "[--topk K] [--seed S]\n"
               "                   [--batch-size B] [--threads T]\n"
               "                   [--checkpoint-dir DIR [--checkpoint-every "
               "K] [--resume]]\n"
               "                   [--on-bad-input fail|skip|clamp] "
               "[--ooo-policy reject|clamp]\n"
               "                   [--audit-mode off|check|repair] "
               "[--audit-every K]\n"
               "                   [--audit-oracle-every K] [--strict] "
               "[--version]\n");
  std::exit(1);
}

// --- checked flag-value parsing -----------------------------------------
// atoi/atof silently turn garbage into 0; these reject any value that is
// not entirely a number of the right shape.

[[noreturn]] void BadValue(const std::string& flag, const char* value) {
  Usage(("bad value for " + flag + ": '" + value + "'").c_str());
}

double ParseDoubleValue(const std::string& flag, const char* value) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (end == value || *end != '\0' || errno == ERANGE) BadValue(flag, value);
  return v;
}

uint64_t ParseUint64Value(const std::string& flag, const char* value) {
  const char* p = value;
  while (*p == ' ') ++p;
  if (*p == '-' || *p == '\0') BadValue(flag, value);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || errno == ERANGE) BadValue(flag, value);
  return v;
}

int ParseIntValue(const std::string& flag, const char* value) {
  const uint64_t v = ParseUint64Value(flag, value);
  if (v > static_cast<uint64_t>(INT_MAX)) BadValue(flag, value);
  return static_cast<int>(v);
}

Args Parse(int argc, char** argv) {
  Args args;
  auto need = [&](int i) {
    if (i + 1 >= argc) Usage("missing argument value");
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--dims") {
      args.dims = ParseIntValue(flag, need(i++));
    } else if (flag == "--q") {
      args.q = ParseDoubleValue(flag, need(i++));
    } else if (flag == "--window") {
      args.window = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--time-span") {
      args.time_span = ParseDoubleValue(flag, need(i++));
    } else if (flag == "--input") {
      args.input = need(i++);
    } else if (flag == "--generate") {
      args.generate = need(i++);
    } else if (flag == "--count") {
      args.count = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--seed") {
      args.seed = ParseUint64Value(flag, need(i++));
    } else if (flag == "--emit") {
      args.emit = need(i++);
    } else if (flag == "--every") {
      args.every = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--topk") {
      args.topk = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--batch-size") {
      args.batch_size = static_cast<size_t>(ParseUint64Value(flag, need(i++)));
    } else if (flag == "--threads") {
      args.threads = ParseIntValue(flag, need(i++));
    } else if (flag == "--checkpoint-dir") {
      args.checkpoint_dir = need(i++);
    } else if (flag == "--checkpoint-every") {
      args.checkpoint_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--resume") {
      args.resume = true;
    } else if (flag == "--on-bad-input") {
      const std::string v = need(i++);
      if (v == "fail") {
        args.on_bad_input = psky::BadInputPolicy::kFail;
      } else if (v == "skip") {
        args.on_bad_input = psky::BadInputPolicy::kSkip;
      } else if (v == "clamp") {
        args.on_bad_input = psky::BadInputPolicy::kClamp;
      } else {
        Usage("--on-bad-input must be fail, skip or clamp");
      }
    } else if (flag == "--ooo-policy") {
      const std::string v = need(i++);
      if (v == "reject") {
        args.ooo_policy = psky::TimestampPolicy::kReject;
      } else if (v == "clamp") {
        args.ooo_policy = psky::TimestampPolicy::kClampToWatermark;
      } else {
        Usage("--ooo-policy must be reject or clamp");
      }
    } else if (flag == "--audit-mode") {
      const std::string v = need(i++);
      if (v == "off") {
        args.audit_mode = psky::AuditMode::kOff;
      } else if (v == "check") {
        args.audit_mode = psky::AuditMode::kCheck;
      } else if (v == "repair") {
        args.audit_mode = psky::AuditMode::kRepair;
      } else {
        Usage("--audit-mode must be off, check or repair");
      }
    } else if (flag == "--audit-every") {
      args.audit_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--audit-oracle-every") {
      args.audit_oracle_every = ParseUint64Value(flag, need(i++));
    } else if (flag == "--strict") {
      args.strict = true;
    } else if (flag == "--inject-drift-at") {
      args.inject_drift_at = ParseUint64Value(flag, need(i++));
    } else if (flag == "--version") {
      std::printf("%s\n", psky::BuildInfoString().c_str());
      std::exit(0);
    } else if (flag == "--help" || flag == "-h") {
      Usage(nullptr);
    } else {
      Usage(("unknown flag: " + flag).c_str());
    }
  }
  if (args.dims < 1 || args.dims > psky::kMaxDims) Usage("bad --dims");
  if (args.q <= 1e-9 || args.q > 1.0) Usage("--q must be in (0, 1]");
  if (args.emit != "counts" && args.emit != "deltas" && args.emit != "final") {
    Usage("--emit must be counts, deltas or final");
  }
  if (args.window == 0 && args.time_span <= 0.0) {
    Usage("--window must be positive");
  }
  if (args.batch_size == 0) Usage("--batch-size must be positive");
  if (args.threads == 0) args.threads = psky::ThreadPool::DefaultThreads();
  if ((args.resume || args.checkpoint_every > 0) &&
      args.checkpoint_dir.empty()) {
    Usage("--resume / --checkpoint-every require --checkpoint-dir");
  }
  if (args.strict && args.audit_mode == psky::AuditMode::kOff) {
    Usage("--strict requires --audit-mode check or repair");
  }
  return args;
}

// Pulls elements from either a CSV reader or a built-in generator.
class Source {
 public:
  Source(const Args& args, const psky::CheckpointState* resume_from)
      : args_(args) {
    if (!args.generate.empty()) {
      if (args.generate == "stock") {
        psky::StockConfig cfg;
        cfg.seed = args.seed;
        stock_ = std::make_unique<psky::StockStreamGenerator>(cfg);
        if (args_.dims != 2) Usage("--generate stock implies --dims 2");
      } else {
        psky::StreamConfig cfg;
        cfg.dims = args.dims;
        cfg.seed = args.seed;
        if (args.generate == "anti") {
          cfg.spatial = psky::SpatialDistribution::kAntiCorrelated;
        } else if (args.generate == "inde") {
          cfg.spatial = psky::SpatialDistribution::kIndependent;
        } else if (args.generate == "corr") {
          cfg.spatial = psky::SpatialDistribution::kCorrelated;
        } else {
          Usage("--generate must be anti, inde, corr or stock");
        }
        synthetic_ = std::make_unique<psky::StreamGenerator>(cfg);
      }
      // Generators are deterministic in the seed: fast-forward by
      // regenerating and discarding everything already consumed.
      if (resume_from != nullptr) {
        for (uint64_t i = 0; i < resume_from->elements_consumed; ++i) {
          if (produced_ >= args_.count) break;
          ++produced_;
          if (stock_ != nullptr) {
            stock_->Next();
          } else {
            synthetic_->Next();
          }
        }
      }
      return;
    }
    psky::CsvReaderOptions options;
    options.policy = args.on_bad_input;
    if (resume_from != nullptr) {
      // Files re-read from the top and skip to the recorded position; a
      // pipe on stdin simply continues with whatever arrives next.
      options.start_line = args.input.empty() ? 0 : resume_from->lines_consumed;
      options.start_seq = resume_from->next_seq;
    }
    if (!args.input.empty()) {
      file_.open(args.input);
      if (!file_) {
        std::fprintf(stderr, "error: cannot open %s\n", args.input.c_str());
        std::exit(1);
      }
      csv_ = std::make_unique<psky::CsvElementReader>(&file_, args.dims,
                                                      options);
    } else {
      csv_ = std::make_unique<psky::CsvElementReader>(&std::cin, args.dims,
                                                      options);
    }
  }

  std::optional<psky::UncertainElement> Next() {
    if (csv_ != nullptr) return csv_->Next();
    if (produced_ >= args_.count) return std::nullopt;
    ++produced_;
    return stock_ != nullptr ? stock_->Next() : synthetic_->Next();
  }

  const psky::CsvElementReader* csv() const { return csv_.get(); }

 private:
  const Args& args_;
  std::ifstream file_;
  std::unique_ptr<psky::CsvElementReader> csv_;
  std::unique_ptr<psky::StreamGenerator> synthetic_;
  std::unique_ptr<psky::StockStreamGenerator> stock_;
  size_t produced_ = 0;
};

// Counters carried across restarts via the checkpoint.
struct CarriedCounters {
  uint64_t bad_lines_skipped = 0;
  uint64_t probs_clamped = 0;
  uint64_t ooo_dropped = 0;
};

// --- crash quarantine ----------------------------------------------------
// On PSKY_CHECK failure or a fatal signal, dump the window state and audit
// counters for post-mortem replay. Best-effort by design: the process is
// already dying, so the dump allocates and does file I/O; the reentrancy
// guard in CheckFailed plus re-raising with SIG_DFL bound the damage if the
// dump itself faults.

struct PostMortemContext {
  std::function<psky::CheckpointState()> snapshot;
  const psky::AuditManager* audit = nullptr;
  std::string dir = ".";
};
PostMortemContext g_postmortem;

void DumpQuarantine(const std::string& reason) {
  if (!g_postmortem.snapshot) return;
  // One-shot: a CHECK failure aborts, and the SIGABRT handler must not
  // dump a second time (nor should a fault inside the dump recurse).
  const auto snapshot = std::move(g_postmortem.snapshot);
  g_postmortem.snapshot = nullptr;
  psky::QuarantineDump dump;
  dump.reason = reason;
  if (g_postmortem.audit != nullptr) dump.report = g_postmortem.audit->report();
  dump.state = snapshot();
  const std::string path =
      g_postmortem.dir + "/" +
      psky::QuarantineFileName(dump.state.elements_consumed);
  std::string error;
  if (psky::WriteQuarantineFile(path, dump, &error)) {
    std::fprintf(stderr, "quarantine dump written to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: quarantine dump failed: %s\n", error.c_str());
  }
}

void QuarantineOnCheckFailure(const char* condition, const char* file,
                              int line) {
  char reason[512];
  std::snprintf(reason, sizeof reason, "PSKY_CHECK failed: %s at %s:%d",
                condition, file, line);
  DumpQuarantine(reason);
}

void QuarantineOnFatalSignal(int signum) {
  std::signal(signum, SIG_DFL);  // a second fault dies immediately
  char reason[64];
  std::snprintf(reason, sizeof reason, "fatal signal %d", signum);
  DumpQuarantine(reason);
  std::raise(signum);
}

void InstallQuarantineHandlers() {
  psky::SetCheckFailureHandler(&QuarantineOnCheckFailure);
  for (int sig : {SIGSEGV, SIGFPE, SIGBUS, SIGILL, SIGABRT}) {
    std::signal(sig, &QuarantineOnFatalSignal);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);

  if (!args.checkpoint_dir.empty()) {
    std::string dir_error;
    if (!psky::EnsureCheckpointDir(args.checkpoint_dir, &dir_error)) {
      std::fprintf(stderr, "error: checkpoint dir: %s\n", dir_error.c_str());
      return 3;
    }
    // A crash mid-write leaves "*.tmp" wreckage behind; sweep it before
    // this run starts producing its own files.
    const size_t removed =
        psky::RemoveStaleCheckpointTemps(args.checkpoint_dir);
    if (removed > 0) {
      std::fprintf(stderr, "removed %zu stale checkpoint temp file(s)\n",
                   removed);
    }
  }

  // --- resume: load the newest valid checkpoint -------------------------
  psky::CheckpointState resume_state;
  bool resumed = false;
  if (args.resume) {
    std::string error;
    if (!psky::LoadLatestCheckpoint(args.checkpoint_dir, &resume_state,
                                    &error)) {
      std::fprintf(stderr, "error: cannot resume from %s: %s\n",
                   args.checkpoint_dir.c_str(), error.c_str());
      return 3;
    }
    if (!error.empty()) {
      std::fprintf(stderr, "warning: skipped corrupt checkpoint(s): %s\n",
                   error.c_str());
    }
    const psky::WindowKind want_kind = args.time_span > 0.0
                                           ? psky::WindowKind::kTime
                                           : psky::WindowKind::kCount;
    if (resume_state.dims != args.dims || resume_state.q != args.q ||
        resume_state.window_kind != want_kind ||
        (want_kind == psky::WindowKind::kCount &&
         resume_state.window_capacity != args.window) ||
        (want_kind == psky::WindowKind::kTime &&
         resume_state.time_span != args.time_span)) {
      std::fprintf(stderr,
                   "error: checkpoint was taken with a different "
                   "dims/q/window configuration\n");
      return 1;
    }
    resumed = true;
  }

  psky::SkyTree::Options options;
  options.record_events = args.emit == "deltas";
  psky::SskyOperator op(args.dims, args.q, options);

  std::unique_ptr<psky::CountWindow> count_window;
  std::unique_ptr<psky::TimeWindow> time_window;
  if (args.time_span > 0.0) {
    time_window =
        std::make_unique<psky::TimeWindow>(args.time_span, args.ooo_policy);
  } else {
    count_window = std::make_unique<psky::CountWindow>(args.window);
  }

  CarriedCounters carried;
  uint64_t step = 0;
  if (resumed) {
    // Deterministic replay: re-inserting the checkpointed window contents
    // oldest-first rebuilds the exact candidate-set state.
    psky::ReplayWindow(resume_state, &op);
    for (const auto& e : resume_state.window) {
      if (time_window != nullptr) {
        time_window->Push(e, nullptr);
      } else {
        count_window->Push(e);
      }
    }
    if (options.record_events) op.TakeSkylineDelta();  // replay is not news
    step = resume_state.elements_consumed;
    carried.bad_lines_skipped = resume_state.bad_lines_skipped;
    carried.probs_clamped = resume_state.probs_clamped;
    carried.ooo_dropped = resume_state.ooo_dropped;
    std::fprintf(stderr,
                 "resumed at step %llu (window holds %zu elements)\n",
                 static_cast<unsigned long long>(step),
                 resume_state.window.size());
  }

  Source source(args, resumed ? &resume_state : nullptr);

  auto build_state = [&]() -> psky::CheckpointState {
    psky::CheckpointState state;
    state.dims = args.dims;
    state.q = args.q;
    if (time_window != nullptr) {
      state.window_kind = psky::WindowKind::kTime;
      state.time_span = args.time_span;
      state.window = time_window->Snapshot();
    } else {
      state.window_kind = psky::WindowKind::kCount;
      state.window_capacity = args.window;
      state.window = count_window->Snapshot();
    }
    state.elements_consumed = step;
    const psky::CsvElementReader* csv = source.csv();
    if (csv != nullptr) {
      state.lines_consumed =
          (resumed && args.input.empty() ? resume_state.lines_consumed : 0) +
          csv->lines_read();
      state.next_seq = csv->next_seq();
    } else {
      state.next_seq = step;
    }
    state.bad_lines_skipped =
        carried.bad_lines_skipped + (csv != nullptr ? csv->skipped_lines() : 0);
    state.probs_clamped =
        carried.probs_clamped + (csv != nullptr ? csv->probs_clamped() : 0);
    state.ooo_dropped =
        carried.ooo_dropped +
        (time_window != nullptr ? time_window->rejected() : 0);
    return state;
  };

  uint64_t checkpoints_written = 0;
  auto write_checkpoint = [&]() -> bool {
    const std::string path =
        args.checkpoint_dir + "/" + psky::CheckpointFileName(step);
    std::string error;
    if (!psky::WriteCheckpointFile(path, build_state(), &error)) {
      std::fprintf(stderr, "error: checkpoint failed: %s\n", error.c_str());
      return false;
    }
    psky::PruneCheckpoints(args.checkpoint_dir, 2);
    ++checkpoints_written;
    return true;
  };

  // Declared before the AuditManager so workers are still alive when its
  // destructor waits on an in-flight oracle replay.
  std::unique_ptr<psky::ThreadPool> pool;
  if (args.threads > 1) {
    pool = std::make_unique<psky::ThreadPool>(args.threads);
  }

  psky::AuditOptions audit_options;
  audit_options.mode = args.audit_mode;
  audit_options.audit_every = args.audit_every;
  audit_options.oracle_every = args.audit_oracle_every;
  audit_options.pool = pool.get();
  psky::AuditManager audit(&op, audit_options, [&]() {
    return time_window != nullptr ? time_window->Snapshot()
                                  : count_window->Snapshot();
  });

  g_postmortem.snapshot = build_state;
  g_postmortem.audit = &audit;
  g_postmortem.dir = args.checkpoint_dir.empty() ? "." : args.checkpoint_dir;
  InstallQuarantineHandlers();

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::vector<psky::UncertainElement> expired;
  std::vector<psky::UncertainElement> batch;
  batch.reserve(args.batch_size);
  bool stopped_by_signal = false;
  bool source_done = false;
  while (!source_done) {
    if (g_stop_requested != 0) {
      stopped_by_signal = true;
      break;
    }
    // Pull up to batch_size elements, then feed them through the
    // expire-before-insert cycle one by one — identical semantics to the
    // unbatched loop (see StreamProcessor::StepBatch), with source
    // dispatch and the stop-signal test amortized across the batch.
    batch.clear();
    while (batch.size() < args.batch_size) {
      auto element = source.Next();
      if (!element.has_value()) {
        source_done = true;
        break;
      }
      batch.push_back(*element);
    }
    for (const auto& element : batch) {
      if (time_window != nullptr) {
        expired.clear();
        psky::UncertainElement incoming = element;
        if (!time_window->TryPush(&incoming, &expired)) {
          // Late timestamp under --ooo-policy reject: treat like a
          // malformed line.
          if (args.on_bad_input == psky::BadInputPolicy::kFail) {
            const psky::CsvElementReader* csv = source.csv();
            std::fprintf(
                stderr,
                "error: line %llu: out-of-order timestamp %g is behind "
                "watermark %g (see --ooo-policy)\n",
                static_cast<unsigned long long>(
                    csv != nullptr ? csv->lines_read() : step + 1),
                incoming.time, time_window->watermark());
            return 2;
          }
          continue;
        }
        for (const auto& old : expired) op.Expire(old);
        op.Insert(incoming);
      } else {
        if (count_window->full()) {
          op.Expire(count_window->PushRotate(element));
        } else {
          count_window->Push(element);
        }
        op.Insert(element);
      }
      ++step;

      if (args.inject_drift_at != 0 && step == args.inject_drift_at) {
        // Corrupt the newest live candidate's P_old in place — the class of
        // damage drift accumulation produces, writ large. P_new is left
        // alone: it also drives candidate retention, so damaging it can
        // cause an eviction (unrepairable by design) before the auditor's
        // next pass.
        const auto window = time_window != nullptr ? time_window->Snapshot()
                                                   : count_window->Snapshot();
        for (auto it = window.rbegin(); it != window.rend(); ++it) {
          const auto view = op.tree().LookupForAudit(it->pos, it->seq);
          if (!view.found) continue;
          op.mutable_tree()->RepairElement(it->pos, it->seq, view.pnew_log,
                                           view.pold_log - 2.0);
          std::fprintf(stderr, "injected drift into seq %llu at step %llu\n",
                       static_cast<unsigned long long>(it->seq),
                       static_cast<unsigned long long>(step));
          break;
        }
      }

      if (!audit.Step() && args.strict) {
        char reason[96];
        std::snprintf(reason, sizeof reason,
                      "unrepaired integrity violation at step %llu",
                      static_cast<unsigned long long>(step));
        std::fprintf(stderr, "error: %s\n", reason);
        DumpQuarantine(reason);
        return 4;
      }

      if (args.emit == "deltas") {
        const auto delta = op.TakeSkylineDelta();
        for (uint64_t seq : delta.left) {
          std::printf("-%llu\n", static_cast<unsigned long long>(seq));
        }
        for (uint64_t seq : delta.entered) {
          std::printf("+%llu\n", static_cast<unsigned long long>(seq));
        }
      } else if (args.emit == "counts" && args.every > 0 &&
                 step % args.every == 0) {
        std::printf("step=%llu candidates=%zu skyline=%zu\n",
                    static_cast<unsigned long long>(step), op.candidate_count(),
                    op.skyline_count());
      }

      if (args.checkpoint_every > 0 && step % args.checkpoint_every == 0) {
        if (!write_checkpoint()) return 3;
      }
    }
  }

  // A reader that stopped on malformed input (fail-fast, or the skip
  // budget ran out) is a hard input error: exit 2 with the line number.
  const psky::CsvElementReader* csv = source.csv();
  if (!stopped_by_signal && csv != nullptr && !csv->ok()) {
    std::fprintf(stderr, "error: %s\n", csv->error().c_str());
    return 2;
  }

  if (!args.checkpoint_dir.empty()) {
    if (!write_checkpoint()) return 3;
  }

  if (args.emit == "final" || args.topk > 0) {
    const auto members =
        args.topk > 0 ? op.tree().TopK(args.topk) : op.Skyline();
    for (const auto& m : members) {
      if (args.topk > 0 && m.psky < args.q) break;
      std::printf("seq=%llu psky=%.6f pos=",
                  static_cast<unsigned long long>(m.element.seq), m.psky);
      for (int i = 0; i < args.dims; ++i) {
        std::printf(i == 0 ? "%g" : ",%g", m.element.pos[i]);
      }
      std::printf(" prob=%g\n", m.element.prob);
    }
  }

  const uint64_t skipped =
      carried.bad_lines_skipped + (csv != nullptr ? csv->skipped_lines() : 0);
  const uint64_t clamped =
      carried.probs_clamped + (csv != nullptr ? csv->probs_clamped() : 0);
  const uint64_t ooo =
      carried.ooo_dropped +
      (time_window != nullptr ? time_window->rejected() : 0);
  std::fprintf(stderr, "processed %llu elements; |S|=%zu |SKY|=%zu\n",
               static_cast<unsigned long long>(step), op.candidate_count(),
               op.skyline_count());
  if (skipped > 0 || clamped > 0 || ooo > 0) {
    std::fprintf(stderr,
                 "skipped %llu malformed lines, clamped %llu probabilities, "
                 "dropped %llu out-of-order elements\n",
                 static_cast<unsigned long long>(skipped),
                 static_cast<unsigned long long>(clamped),
                 static_cast<unsigned long long>(ooo));
  }
  if (checkpoints_written > 0) {
    std::fprintf(stderr, "wrote %llu checkpoint(s) to %s\n",
                 static_cast<unsigned long long>(checkpoints_written),
                 args.checkpoint_dir.c_str());
  }
  if (args.audit_mode != psky::AuditMode::kOff) {
    audit.Drain();  // harvest any in-flight asynchronous oracle verdict
    const psky::AuditReport& r = audit.report();
    std::fprintf(
        stderr,
        "audit: %llu audited, max drift %.3g, %llu beyond tolerance, "
        "%llu repairs (%llu band flips prevented), %llu false evictions, "
        "%llu oracle replays (%llu mismatches), %llu unrepaired\n",
        static_cast<unsigned long long>(r.elements_audited), r.max_drift,
        static_cast<unsigned long long>(r.drift_beyond_tolerance),
        static_cast<unsigned long long>(r.repairs_applied),
        static_cast<unsigned long long>(r.band_flips_prevented),
        static_cast<unsigned long long>(r.false_evictions),
        static_cast<unsigned long long>(r.oracle_replays),
        static_cast<unsigned long long>(r.oracle_mismatches),
        static_cast<unsigned long long>(r.violations_unrepaired));
    if (args.strict && r.violations_unrepaired > 0) {
      DumpQuarantine("unrepaired integrity violation at end of stream");
      return 4;
    }
  }
  if (stopped_by_signal) {
    std::fprintf(stderr, "stopped by signal after %llu elements\n",
                 static_cast<unsigned long long>(step));
  }
  return 0;
}
